package quickr

import "quickr/internal/metrics"

// RunMetrics is the JSON view of the simulated cluster costs.
type RunMetrics struct {
	MachineHours      float64 `json:"machine_hours"`
	Runtime           float64 `json:"runtime"`
	IntermediateBytes float64 `json:"intermediate_bytes"`
	ShuffledBytes     float64 `json:"shuffled_bytes"`
	Passes            float64 `json:"passes"`
	Tasks             int     `json:"tasks"`
	Stages            int     `json:"stages"`
	OptimizeSeconds   float64 `json:"optimize_seconds"`
	// PeakInflightBytes is the worst per-operator in-flight footprint
	// (max over operators of the bytes it held at once across tasks).
	PeakInflightBytes float64 `json:"peak_inflight_bytes"`
	// RowsPerSec is base-table rows processed per wall-clock second.
	RowsPerSec float64 `json:"rows_per_sec"`
	// ExecSeconds is the real (not simulated) execution wall time.
	ExecSeconds float64 `json:"exec_seconds"`
	// QueuedSeconds is the admission-gate wait before execution began.
	QueuedSeconds float64 `json:"queued_seconds"`
	// AdmittedBytes is the admission gate's byte reservation.
	AdmittedBytes int64 `json:"admitted_bytes"`
	// PoolWaitSeconds is the aggregate scheduling wait on the shared
	// worker pool.
	PoolWaitSeconds float64 `json:"pool_wait_seconds"`
	// PoolTasks and PoolStolen count partition tasks and how many ran
	// on shared pool workers.
	PoolTasks  int `json:"pool_tasks"`
	PoolStolen int `json:"pool_stolen"`
	// PartitionsScanned and PartitionsPruned count base-table partitions
	// read and skipped by the partition-selection pass. Always emitted
	// (schema-checked by benchcheck); both reflect full scans when the
	// pass is off or ineligible, with PartitionsPruned = 0.
	PartitionsScanned int64 `json:"partitions_scanned"`
	PartitionsPruned  int64 `json:"partitions_pruned"`
}

// RunReport is the machine-readable report of one executed query,
// emitted by `quickr --stats` and embedded per query in the BENCH_*.json
// files quickr-bench writes.
type RunReport struct {
	Query          string             `json:"query,omitempty"`
	Approx         bool               `json:"approx"`
	Sampled        bool               `json:"sampled"`
	Unapproximable bool               `json:"unapproximable"`
	PlanCached     bool               `json:"plan_cached"`
	Samplers       []SamplerInfo      `json:"samplers,omitempty"`
	Metrics        RunMetrics         `json:"metrics"`
	Operators      []metrics.OpReport `json:"operators"`
	// Contract reports the accuracy/latency contract outcome (absent
	// for queries without a contract clause).
	Contract *ContractReport `json:"contract,omitempty"`
}

// ContractReport is the JSON view of a ContractInfo.
type ContractReport struct {
	ErrorTarget     float64 `json:"error_target,omitempty"`
	Confidence      float64 `json:"confidence"`
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	ChosenP         float64 `json:"chosen_p"`
	Attempts        int     `json:"attempts"`
	Escalations     int     `json:"escalations"`
	PlanCacheHits   int     `json:"plan_cache_hits"`
	Satisfied       bool    `json:"satisfied"`
	Exact           bool    `json:"exact"`
	HistoryHit      bool    `json:"history_hit"`
	PredictedRelErr float64 `json:"predicted_rel_err,omitempty"`
	CorrectedRelErr float64 `json:"corrected_rel_err,omitempty"`
	RealizedRelErr  float64 `json:"realized_rel_err,omitempty"`
}

// ContractReport builds the JSON contract view, or nil when the query
// carried no contract.
func (r *Result) ContractReport() *ContractReport {
	c := r.Contract
	if c == nil {
		return nil
	}
	return &ContractReport{
		ErrorTarget:     c.ErrorTarget,
		Confidence:      c.Confidence,
		DeadlineSeconds: c.Deadline.Seconds(),
		ChosenP:         c.ChosenP,
		Attempts:        c.Attempts,
		Escalations:     c.Escalations,
		PlanCacheHits:   c.PlanCacheHits,
		Satisfied:       c.Satisfied,
		Exact:           c.Exact,
		HistoryHit:      c.HistoryHit,
		PredictedRelErr: c.PredictedRelErr,
		CorrectedRelErr: c.CorrectedRelErr,
		RealizedRelErr:  c.RealizedRelErr,
	}
}

// RunReport builds the JSON run report for this result.
func (r *Result) RunReport(query string, approx bool) *RunReport {
	rps := 0.0
	if r.ExecSeconds > 0 {
		rps = float64(r.RowsProcessed) / r.ExecSeconds
	}
	return &RunReport{
		Query:          query,
		Approx:         approx,
		Sampled:        r.Sampled,
		Unapproximable: r.Unapproximable,
		PlanCached:     r.PlanCached,
		Samplers:       r.Samplers,
		Metrics: RunMetrics{
			MachineHours:      r.Metrics.MachineHours,
			Runtime:           r.Metrics.Runtime,
			IntermediateBytes: r.Metrics.IntermediateBytes,
			ShuffledBytes:     r.Metrics.ShuffledBytes,
			Passes:            r.Metrics.Passes,
			Tasks:             r.Metrics.Tasks,
			Stages:            r.Metrics.Stages,
			OptimizeSeconds:   r.OptimizeTime,
			PeakInflightBytes: r.PeakInFlightBytes,
			RowsPerSec:        rps,
			ExecSeconds:       r.ExecSeconds,
			QueuedSeconds:     r.QueuedSeconds,
			AdmittedBytes:     r.AdmittedBytes,
			PoolWaitSeconds:   r.PoolWaitSeconds,
			PoolTasks:         r.PoolTasks,
			PoolStolen:        r.PoolStolen,
			PartitionsScanned: r.PartitionsScanned,
			PartitionsPruned:  r.PartitionsPruned,
		},
		Operators: r.Stats.Report(),
		Contract:  r.ContractReport(),
	}
}
