// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5), one testing.B benchmark per artifact, plus ablation
// benchmarks for the design choices called out in DESIGN.md. Each
// benchmark reports the headline numbers of its artifact through
// b.ReportMetric so `go test -bench` output doubles as the experiment
// record.
package quickr_test

import (
	"sync"
	"testing"

	"quickr/internal/core"
	"quickr/internal/experiments"
	"quickr/internal/lplan"
	"quickr/internal/sampler"
	"quickr/internal/table"
	"quickr/internal/workload"
)

var (
	envOnce sync.Once
	env     *experiments.Env
	f1Once  sync.Once
	f1Env   *experiments.Env
)

// benchEnv loads the shared datasets once (scale factor 1).
func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() { env = experiments.NewFullEnv(1) })
	return env
}

// benchF1Env loads the scale-factor-10 dataset the Fig. 1/Fig. 9
// universe plan needs (see EXPERIMENTS.md).
func benchF1Env(b *testing.B) *experiments.Env {
	b.Helper()
	f1Once.Do(func() { f1Env = experiments.NewTPCDSEnv(10) })
	return f1Env
}

func BenchmarkFig1MotivatingQuery(b *testing.B) {
	e := benchF1Env(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Outcome.GainMachineHours, "gainMH")
		b.ReportMetric(100*r.Outcome.AggErrorFull, "aggErr%")
	}
}

func BenchmarkFig2aHeavyTail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2a()
		b.ReportMetric(r.HalfPB, "PB@50%time")
		b.ReportMetric(r.TotalPB, "PBtotal")
	}
}

func BenchmarkFig2bTraceCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2b()
		b.ReportMetric(r.Rows["# of Passes over Data"][1], "medianPasses")
		b.ReportMetric(r.Rows["# Joins"][1], "medianJoins")
	}
}

func BenchmarkTable3QueryCharacteristics(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows["# of passes"][2], "medianPasses")
		b.ReportMetric(r.Rows["# Joins"][2], "medianJoins")
	}
}

func BenchmarkTable4OptimizationTime(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Baseline[2]*1000, "baselineQO_ms")
		b.ReportMetric(r.Quickr[2]*1000, "quickrQO_ms")
	}
}

func BenchmarkTable5SamplerLocations(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.SamplersPerQuery[0], "unapprox%")
		b.ReportMetric(100*r.SourceDistance[0], "firstPass%")
	}
}

func BenchmarkTable6BlinkDB(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table6(e, 10, []float64{1, 4})
		if err != nil {
			b.Fatal(err)
		}
		last := r.Rows[len(r.Rows)-1]
		b.ReportMetric(float64(last.Covered), "covered@4x")
		b.ReportMetric(100*last.MedianGainAll, "medGainAll%")
	}
}

func BenchmarkTable7SamplerFrequency(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table7(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Distribution["UNIFORM"], "uniform%")
		b.ReportMetric(100*r.Distribution["DISTINCT"], "distinct%")
		b.ReportMetric(100*r.Distribution["UNIVERSE"], "universe%")
	}
}

func BenchmarkTable9CrossBenchmark(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table9(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows["# Joins"][0][0], "tpcdsMedJoins")
		b.ReportMetric(r.Rows["# Joins"][1][0], "tpchMedJoins")
	}
}

func BenchmarkFig8aPerformanceGains(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(experiments.Median(r.GainMachineHours), "medianGainMH")
		b.ReportMetric(experiments.Median(r.GainRuntime), "medianGainRT")
	}
}

func BenchmarkFig8bErrors(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(e)
		if err != nil {
			b.Fatal(err)
		}
		within10 := 0
		for _, x := range r.AggErrorFull {
			if x <= 0.10 {
				within10++
			}
		}
		b.ReportMetric(100*float64(within10)/float64(len(r.AggErrorFull)), "within10%")
		b.ReportMetric(100*experiments.Median(r.MissedGroupsFull), "medianMissedFull%")
	}
}

func BenchmarkFig8cGainCorrelation(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(e)
		if err != nil {
			b.Fatal(err)
		}
		buckets := r.Fig8c(e)
		if n := len(buckets); n > 0 {
			b.ReportMetric(buckets[n-1].IntermRatio, "topBucketIntermRatio")
		}
	}
}

func BenchmarkFig9DominanceUnroll(b *testing.B) {
	e := benchF1Env(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Trace)), "ruleApplications")
	}
}

// BenchmarkExecutorPipeline compares the batch-streaming executor
// against the materializing baseline (batch size < 0: every operator
// sees whole partitions) over the CI smoke queries, reporting
// throughput and the peak in-flight intermediate footprint of each
// mode. The "streaming" sub-benchmark's peakB must come in below the
// "materializing" one — the same invariant cmd/benchcheck gates on the
// bench JSON.
func BenchmarkExecutorPipeline(b *testing.B) {
	e := benchEnv(b)
	queries := experiments.SmokeQueries()
	for _, mode := range []struct {
		name  string
		batch int
	}{{"streaming", 0}, {"materializing", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			e.Eng.SetBatchSize(mode.batch)
			defer e.Eng.SetBatchSize(0)
			var rows, secs, peak float64
			for i := 0; i < b.N; i++ {
				rows, secs, peak = 0, 0, 0
				for _, q := range queries {
					res, err := e.Eng.ExecApprox(q.SQL)
					if err != nil {
						b.Fatal(err)
					}
					rows += float64(res.RowsProcessed)
					secs += res.ExecSeconds
					// Summed across queries, like the benchcheck gate: ties
					// on breaker-dominated queries are fine as long as the
					// scan-dominated ones shrink.
					peak += res.PeakInFlightBytes
				}
			}
			if secs > 0 {
				b.ReportMetric(rows/secs, "rows/sec")
			}
			b.ReportMetric(peak, "peakB")
		})
	}
}

// ---------------------------------------------------------------------
// Ablation benchmarks (DESIGN.md §6)

// BenchmarkAblationUniverseVsUniform compares, at the same effective
// output sampling rate p, the error of a fact–fact join COUNT when both
// inputs are paired-universe sampled at p versus independently
// uniform-sampled at √p each (§3's quadratic-rate argument): the
// universe join is complete within its subspace, while uniform-sampled
// inputs join ambiguously and inflate the variance.
func BenchmarkAblationUniverseVsUniform(b *testing.B) {
	const keys, perKeyL, perKeyR = 400, 12, 4
	var left, right []table.Row
	for k := 0; k < keys; k++ {
		for j := 0; j < perKeyL; j++ {
			left = append(left, table.Row{table.NewInt(int64(k))})
		}
		for j := 0; j < perKeyR; j++ {
			right = append(right, table.Row{table.NewInt(int64(k))})
		}
	}
	const p = 0.1
	sqrtP := 0.316227766
	for i := 0; i < b.N; i++ {
		var unifCondErr float64
		var uniMiss, unifMiss float64
		var uniN, unifN float64
		const trials = 30
		truePerKey := float64(perKeyL * perKeyR)
		for seed := uint64(1); seed <= trials; seed++ {
			// Paired universe at p: every selected key's join is complete
			// and unambiguous, so the per-key (per-group) count is exact.
			u := sampler.NewUniverse(p, []int{0}, seed)
			for k := 0; k < keys; k++ {
				if pass, _ := u.Admit(table.Row{table.NewInt(int64(k))}, 1); pass {
					uniN++
					// |exact − true| / true == 0 within the subspace.
				} else {
					uniMiss++
				}
			}

			// Independent uniform at √p on both sides (same p² row rate):
			// per-key counts are products of two binomials — ambiguous.
			ul := sampler.NewUniform(sqrtP, seed*31+1)
			ur := sampler.NewUniform(sqrtP, seed*57+2)
			lKept := map[int64]float64{}
			rKept := map[int64]float64{}
			for _, r := range left {
				if pass, _ := ul.Admit(r, 1); pass {
					lKept[r[0].Int()]++
				}
			}
			for _, r := range right {
				if pass, _ := ur.Admit(r, 1); pass {
					rKept[r[0].Int()]++
				}
			}
			for k := 0; k < keys; k++ {
				est := lKept[int64(k)] * rKept[int64(k)] / p
				if est == 0 {
					unifMiss++
					continue
				}
				unifN++
				unifCondErr += abs(est-truePerKey) / truePerKey
			}
		}
		b.ReportMetric(0, "universePerKeyErr%") // exact within subspace
		b.ReportMetric(100*unifCondErr/unifN, "uniformPerKeyErr%")
		b.ReportMetric(100*uniMiss/(trials*keys), "universeKeyMiss%")
		b.ReportMetric(100*unifMiss/(trials*keys), "uniformKeyMiss%")
	}
}

// BenchmarkAblationDistinctBias compares the naive distinct sampler
// (pass the first δ rows, then coin-flip at p) against the
// reservoir-debiased implementation, for strata in the tricky
// (δ, δ+S/p] frequency band the paper calls out (§4.1.2): the reservoir
// flushes exactly S rows with weight (freq−δ)/S, collapsing the
// per-stratum variance that the naive coin-flip leaves behind.
func BenchmarkAblationDistinctBias(b *testing.B) {
	const groups, perGroup, delta = 300, 30, 10
	const p = 0.1
	var rows []table.Row
	for g := 0; g < groups; g++ {
		for j := 0; j < perGroup; j++ {
			rows = append(rows, table.Row{table.NewFloat(1), table.NewInt(int64(g))})
		}
	}
	const trials = 20
	for i := 0; i < b.N; i++ {
		var resErr, naiveErr float64
		for seed := uint64(1); seed <= trials; seed++ {
			// Reservoir-debiased sampler: per-group weighted counts.
			s := sampler.NewDistinct(p, []int{1}, delta, seed)
			got := map[string]float64{}
			add := func(r table.Row, w float64) { got[r[1].Key()] += w }
			for _, r := range rows {
				if pass, w := s.Admit(r, 1); pass {
					add(r, w)
				}
				for _, fl := range s.TakePending() {
					add(fl.Row, fl.W)
				}
			}
			for _, fl := range s.Flush() {
				add(fl.Row, fl.W)
			}
			for _, est := range got {
				resErr += abs(est-perGroup) / perGroup
			}
			// Naive: first δ pass with weight 1, rest coin-flip at p with
			// weight 1/p (no reservoir).
			rng := sampler.NewUniform(p, seed*101+3)
			seen := map[string]int{}
			naive := map[string]float64{}
			for _, r := range rows {
				k := r[1].Key()
				seen[k]++
				if seen[k] <= delta {
					naive[k]++
				} else if pass, _ := rng.Admit(r, 1); pass {
					naive[k] += 1 / p
				}
			}
			for _, est := range naive {
				naiveErr += abs(est-perGroup) / perGroup
			}
		}
		b.ReportMetric(100*resErr/(trials*groups), "reservoirPerGroupErr%")
		b.ReportMetric(100*naiveErr/(trials*groups), "naivePerGroupErr%")
	}
}

// BenchmarkAblationPushdown compares ASALQA's pushed-down sampler
// against the same sampler left at the root (just below the
// aggregation): pushdown is where the multi-pass gains come from.
func BenchmarkAblationPushdown(b *testing.B) {
	e := benchEnv(b)
	q := workload.TPCDSQueries()[1] // q02: two FK joins below the aggregate
	for i := 0; i < b.N; i++ {
		full, err := e.Eng.ExecApprox(q.SQL)
		if err != nil {
			b.Fatal(err)
		}
		exact, err := e.Eng.Exec(q.SQL)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(exact.Metrics.MachineHours/full.Metrics.MachineHours, "pushdownGain")
		b.ReportMetric(exact.Metrics.Passes/full.Metrics.Passes, "passesRatio")
	}
}

// BenchmarkAblationSketchMemory measures the distinct sampler's tracked
// state against the distinct-value count it would need exactly.
func BenchmarkAblationSketchMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sampler.NewDistinct(0.05, []int{0}, 3, 1)
		distinct := 400000
		for j := 0; j < distinct; j++ {
			s.Admit(table.Row{table.NewInt(int64(j))}, 1)
			s.TakePending()
		}
		b.ReportMetric(float64(s.MemoryFootprint()), "trackedEntries")
		b.ReportMetric(float64(distinct), "exactEntriesNeeded")
	}
}

// BenchmarkAblationSupportK sweeps the support threshold k (paper
// §4.2.6 claims plans are stable for k in [5,100]).
func BenchmarkAblationSupportK(b *testing.B) {
	e := benchEnv(b)
	// Queries whose group support is comfortable at scale factor 1; at
	// the paper's 500GB scale all of TPC-DS qualifies.
	qs := []workload.Query{workload.TPCDSQueries()[10], workload.TPCDSQueries()[7], workload.TPCDSQueries()[33]}
	for i := 0; i < b.N; i++ {
		stable := 0.0
		for _, q := range qs {
			var firstType string
			allSame := true
			for _, k := range []float64{5, 30, 100} {
				opts := core.DefaultOptions()
				opts.K = k
				e.Eng.SetOptions(opts)
				info, err := e.Eng.Plan(q.SQL, true)
				if err != nil {
					b.Fatal(err)
				}
				typ := "NONE"
				if len(info.Samplers) > 0 {
					typ = info.Samplers[0].Type
				}
				if firstType == "" {
					firstType = typ
				} else if typ != firstType {
					allSame = false
				}
			}
			if allSame {
				stable++
			}
		}
		e.Eng.SetOptions(core.DefaultOptions())
		b.ReportMetric(100*stable/float64(len(qs)), "planStable%")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

var _ = lplan.SamplerUniform // keep import for future benches
