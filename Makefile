GO ?= go

.PHONY: build test race bench smoke-bench lint fmt fmt-check vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race job covers the packages with real concurrency: the parallel
# executor and the samplers it drives.
race:
	$(GO) test -race ./internal/exec/... ./internal/sampler/...

bench:
	$(GO) test -bench=. -benchmem -run '^$$'

# Tiny-scale bench emitting a JSON run report, then a schema check that
# the per-operator counters survived.
smoke-bench:
	$(GO) run ./cmd/quickr-bench -exp SMOKE -sf 0.1 -json .
	$(GO) run ./cmd/benchcheck BENCH_SMOKE.json

vet:
	$(GO) vet ./...

lint: vet fmt-check

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
