GO ?= go
FUZZTIME ?= 15s

.PHONY: build test race hammer seed-sweep bench bench-gate smoke-bench lint quickrlint fuzz fmt fmt-check vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race job covers the packages with real concurrency: the parallel
# executor, the shared worker pool and admission gate, the query
# service, the samplers the executor drives, the per-partition metric
# slots, and the lazily-columnarized table storage. Keep this list in
# lockstep with the CI race job.
race:
	$(GO) test -race ./internal/exec/... ./internal/sampler/... ./internal/pool/... ./internal/service/... ./internal/metrics/... ./internal/table/...

# Concurrency hammer: 32+ mixed exact/approx queries on one engine under
# the race detector, plus cancellation and chaos interleavings.
hammer:
	$(GO) test -race -count=1 -timeout 10m -run 'TestConcurrent|TestCancel|TestDeadline' .

# Statistical acceptance sweep: ≥200 sampler seeds per query, CI95
# coverage against the reference evaluator and Proposition 4 missed-
# group bounds. Slow — skipped under -short, run nightly in CI.
seed-sweep:
	$(GO) test -count=1 -timeout 30m -run TestSeedSweepCoverage -v ./internal/experiments/

bench:
	$(GO) test -bench=. -benchmem -run '^$$'

# Allocation/CPU regression gate on the executor's hot-path
# microbenchmarks: run them with -benchmem and compare allocs/op (and,
# loosely, ns/op) against the committed pre-optimization baseline. The
# 0.7x allocs ceiling pins the hash-path overhaul's win permanently;
# the 0.5x ceiling on the *Kernel benchmarks pins the columnar kernels
# at no more than half the row path's allocations (the baseline records
# the BenchmarkRowPath* twins' numbers under the kernel names).
# BenchmarkSummaryBuild (internal/table) gates the partition-summary
# builder the pruning pass depends on.
bench-gate:
	$(GO) test ./internal/exec/ ./internal/table/ -run '^$$' \
		-bench 'BenchmarkJoinBroadcast|BenchmarkJoinCoPartitioned|BenchmarkGroupedAgg|BenchmarkWindowPartition|BenchmarkSortPartitions|BenchmarkFilterKernel|BenchmarkProjectKernel|BenchmarkSamplerKernel|BenchmarkPreAggKernel|BenchmarkSummaryBuild' \
		-benchmem -benchtime 5x -count 1 | tee bench_micro.txt
	$(GO) run ./cmd/benchcheck -micro -baseline internal/exec/testdata/bench_baseline.json bench_micro.txt
	@rm -f bench_micro.txt

# Tiny-scale bench emitting a JSON run report, then a schema check that
# the per-operator counters survived.
smoke-bench:
	$(GO) run ./cmd/quickr-bench -exp SMOKE -sf 0.1 -json .
	$(GO) run ./cmd/benchcheck BENCH_SMOKE.json

vet:
	$(GO) vet ./...

# Project-specific analyzers (see internal/lint and DESIGN.md §8/§13):
# the syntactic walkers (norawrand, slotdiscipline, weightprop,
# noprintf), the dataflow analyzers (lockdiscipline, ctxflow, hotalloc,
# arenasafe) and //lint:ignore hygiene. Zero findings required. The
# same invocation then proves the optimizer's rewrite registry sound
# over $(SOUNDNESS_PLANS) generated plans (internal/opt/soundness);
# nightly CI raises the sweep to 5000.
SOUNDNESS_PLANS ?= 500
quickrlint:
	$(GO) run ./cmd/quickrlint -soundness $(SOUNDNESS_PLANS) ./...

# lint = vet + gofmt + quickrlint, plus staticcheck/govulncheck when
# they are installed (the hermetic dev container has no network, so
# they are optional here; CI installs and runs them unconditionally).
lint: vet fmt-check quickrlint
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it)"; \
	fi

# Short coverage-guided fuzz of the SQL lexer and parser; fuzz-found
# regressions live in internal/sql/testdata/fuzz and run under plain
# `go test` too.
fuzz:
	$(GO) test ./internal/sql -run '^$$' -fuzz FuzzLex -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sql -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
