// Package sampler implements Quickr's three sampler operators (§4.1).
// All samplers run in a single pass with bounded memory and are
// partitionable: many instances over different partitions of the input
// together mimic one instance over the whole input. Each passed row
// carries a weight — the inverse of its inclusion probability — used by
// the Horvitz–Thompson estimators downstream.
package sampler

import (
	"crypto/sha256"
	"encoding/binary"
	"math/rand"

	"quickr/internal/table"
)

// Weighted is a row with its sampling weight.
type Weighted struct {
	Row table.Row
	W   float64
}

// Sampler consumes rows one at a time and emits a (usually smaller)
// weighted stream. Admit processes one row with its incoming weight and
// reports whether it passes immediately and with what weight; Flush
// returns rows the sampler buffered (only the distinct sampler buffers).
type Sampler interface {
	Admit(r table.Row, w float64) (pass bool, weight float64)
	Flush() []Weighted
	// CostPerRow is the relative CPU cost of examining one row; the
	// uniform sampler only tosses a coin, the universe sampler computes a
	// cryptographic hash, the distinct sampler updates a sketch (§A).
	CostPerRow() float64
}

// ---------------------------------------------------------------------
// Uniform sampler Γ^U_p (§4.1.1)

// Uniform lets each row through independently with probability p and
// weight 1/p (a Poisson/Bernoulli sampler: streaming and partitionable,
// unlike fixed-size reservoir designs).
type Uniform struct {
	P   float64
	rng *rand.Rand
}

// NewUniform creates a uniform sampler with pass probability p, with
// its own private rng seeded from seed.
func NewUniform(p float64, seed uint64) *Uniform {
	return NewUniformRand(p, rand.New(rand.NewSource(int64(seed))))
}

// NewUniformRand creates a uniform sampler drawing from an injected
// rng. The sampler owns rng afterwards: callers must not share one rng
// between samplers running on different goroutines.
func NewUniformRand(p float64, rng *rand.Rand) *Uniform {
	return &Uniform{P: p, rng: rng}
}

// Admit implements Sampler.
func (u *Uniform) Admit(r table.Row, w float64) (bool, float64) {
	if u.rng.Float64() < u.P {
		return true, w / u.P
	}
	return false, 0
}

// Flush implements Sampler.
func (u *Uniform) Flush() []Weighted { return nil }

// CostPerRow implements Sampler.
func (u *Uniform) CostPerRow() float64 { return 1 }

// ---------------------------------------------------------------------
// Universe sampler Γ^V_{p,C} (§4.1.3)

// Universe projects the value of columns C through a strong hash into
// [0,1) and passes rows landing in the chosen p-fraction subspace.
// Samplers sharing (C, seed, p) pick the same subspace, so both inputs
// of an equi-join sample consistently: joining p-probability universe
// samples is statistically equivalent to a p-probability universe
// sample of the join output.
type Universe struct {
	P    float64
	Cols []int // positions of the universe columns in the input row
	Seed uint64

	threshold uint64
}

// NewUniverse creates a universe sampler over the given row positions.
func NewUniverse(p float64, cols []int, seed uint64) *Universe {
	t := uint64(p * float64(^uint64(0)))
	return &Universe{P: p, Cols: cols, Seed: seed, threshold: t}
}

// HashValues computes the 64-bit subspace coordinate of the column
// values using SHA-256 (a cryptographically strong hash, per the paper,
// so the subspace is independent of the key distribution).
func HashValues(vals []table.Value, seed uint64) uint64 {
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seed)
	h.Write(b[:])
	for _, v := range vals {
		h.Write([]byte(v.Key()))
		h.Write([]byte{0})
	}
	sum := h.Sum(nil)
	return binary.LittleEndian.Uint64(sum[:8])
}

// Admit implements Sampler. Whether a row passes depends only on the
// values of the universe columns, so the sampler is stateless and all
// parallel instances agree.
func (u *Universe) Admit(r table.Row, w float64) (bool, float64) {
	vals := make([]table.Value, len(u.Cols))
	for i, c := range u.Cols {
		vals[i] = r[c]
	}
	if HashValues(vals, u.Seed) <= u.threshold {
		return true, w / u.P
	}
	return false, 0
}

// Flush implements Sampler.
func (u *Universe) Flush() []Weighted { return nil }

// CostPerRow implements Sampler.
func (u *Universe) CostPerRow() float64 { return 3 }
