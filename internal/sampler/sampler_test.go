package sampler

import (
	"fmt"
	"math"
	"testing"

	"quickr/internal/table"
)

// estimateSum runs a sampler over rows and returns the HT estimate of
// SUM(col 0).
func estimateSum(s Sampler, rows []table.Row) float64 {
	var sum float64
	for _, r := range rows {
		if pass, w := s.Admit(r, 1); pass {
			sum += w * r[0].Float()
		}
		if d, ok := s.(*Distinct); ok {
			for _, fl := range d.TakePending() {
				sum += fl.W * fl.Row[0].Float()
			}
		}
	}
	for _, fl := range s.Flush() {
		sum += fl.W * fl.Row[0].Float()
	}
	return sum
}

func makeRows(n int) ([]table.Row, float64) {
	rows := make([]table.Row, n)
	var total float64
	for i := 0; i < n; i++ {
		v := float64(1 + i%7)
		rows[i] = table.Row{table.NewFloat(v), table.NewInt(int64(i % 50))}
		total += v
	}
	return rows, total
}

func TestUniformUnbiased(t *testing.T) {
	rows, total := makeRows(20000)
	var sum float64
	const trials = 40
	for seed := 0; seed < trials; seed++ {
		s := NewUniform(0.1, uint64(seed+1))
		sum += estimateSum(s, rows)
	}
	mean := sum / trials
	if rel := math.Abs(mean-total) / total; rel > 0.03 {
		t.Errorf("uniform estimator biased: mean %.0f vs true %.0f (%.3f)", mean, total, rel)
	}
}

func TestUniformSampleFraction(t *testing.T) {
	rows, _ := makeRows(50000)
	s := NewUniform(0.05, 7)
	kept := 0
	for _, r := range rows {
		if pass, w := s.Admit(r, 1); pass {
			kept++
			if math.Abs(w-20) > 1e-9 {
				t.Fatalf("weight %v want 20", w)
			}
		}
	}
	frac := float64(kept) / 50000
	if frac < 0.04 || frac > 0.06 {
		t.Errorf("pass fraction %.4f want ~0.05", frac)
	}
}

func TestUniverseConsistencyAcrossInstances(t *testing.T) {
	// Two independent instances (e.g. on the two join inputs, or two
	// parallel partitions) must admit exactly the same key values.
	rows, _ := makeRows(5000)
	a := NewUniverse(0.2, []int{1}, 99)
	b := NewUniverse(0.2, []int{1}, 99)
	for _, r := range rows {
		pa, _ := a.Admit(r, 1)
		pb, _ := b.Admit(r, 1)
		if pa != pb {
			t.Fatalf("instances disagree on row %v", r)
		}
	}
}

func TestUniverseWholeSubspaces(t *testing.T) {
	// Every row of an admitted key value must be admitted.
	rows, _ := makeRows(10000)
	s := NewUniverse(0.3, []int{1}, 5)
	decision := map[string]bool{}
	for _, r := range rows {
		pass, w := s.Admit(r, 1)
		key := r[1].Key()
		if prev, seen := decision[key]; seen && prev != pass {
			t.Fatalf("inconsistent decision for key %s", key)
		}
		decision[key] = pass
		if pass && math.Abs(w-1/0.3) > 1e-9 {
			t.Fatalf("universe weight %v want %v", w, 1/0.3)
		}
	}
	// Roughly p fraction of the 50 key values chosen.
	chosen := 0
	for _, v := range decision {
		if v {
			chosen++
		}
	}
	if chosen < 5 || chosen > 28 {
		t.Errorf("chose %d of 50 key values at p=0.3", chosen)
	}
}

func TestUniverseUnbiased(t *testing.T) {
	rows, total := makeRows(20000)
	var sum float64
	const trials = 60
	for seed := 0; seed < trials; seed++ {
		s := NewUniverse(0.2, []int{1}, uint64(seed)*7919+1)
		sum += estimateSum(s, rows)
	}
	mean := sum / trials
	if rel := math.Abs(mean-total) / total; rel > 0.06 {
		t.Errorf("universe estimator biased: mean %.0f vs true %.0f (%.3f)", mean, total, rel)
	}
}

func TestUniverseJoinEquivalence(t *testing.T) {
	// Joining p-samples of both inputs on the universe key must equal
	// the p-universe-sample of the exact join (§4.1.3).
	type fact struct {
		key int64
		val float64
	}
	var left, right []fact
	for i := 0; i < 600; i++ {
		left = append(left, fact{key: int64(i % 40), val: float64(i%5 + 1)})
	}
	for i := 0; i < 300; i++ {
		right = append(right, fact{key: int64(i % 40), val: 2})
	}
	const p, seed = 0.25, 31

	admit := func(k int64) bool {
		u := NewUniverse(p, []int{0}, seed)
		pass, _ := u.Admit(table.Row{table.NewInt(k)}, 1)
		return pass
	}

	// sample-then-join
	var stj float64
	for _, l := range left {
		if !admit(l.key) {
			continue
		}
		for _, r := range right {
			if r.key == l.key && admit(r.key) {
				// paired samplers: corrected weight is 1/p, not 1/p².
				stj += (1 / p) * l.val * r.val
			}
		}
	}
	// join-then-sample
	var jts float64
	for _, l := range left {
		for _, r := range right {
			if r.key == l.key && admit(l.key) {
				jts += (1 / p) * l.val * r.val
			}
		}
	}
	if math.Abs(stj-jts) > 1e-6 {
		t.Errorf("sample-then-join %.1f != join-then-sample %.1f", stj, jts)
	}
}

func TestDistinctGuaranteesStrata(t *testing.T) {
	// Every distinct value of the stratification column must appear in
	// the output at least min(δ, freq) times.
	var rows []table.Row
	freqs := map[string]int{}
	for i := 0; i < 3000; i++ {
		g := int64(i % 30) // 100 rows per group
		rows = append(rows, table.Row{table.NewFloat(1), table.NewInt(g)})
		freqs[table.NewInt(g).Key()]++
	}
	// Plus some rare groups.
	for g := 100; g < 110; g++ {
		rows = append(rows, table.Row{table.NewFloat(1), table.NewInt(int64(g))})
		freqs[table.NewInt(int64(g)).Key()]++
	}
	const delta = 4
	s := NewDistinct(0.05, []int{1}, delta, 11)
	got := map[string]int{}
	collect := func(r table.Row) { got[r[1].Key()]++ }
	for _, r := range rows {
		if pass, _ := s.Admit(r, 1); pass {
			collect(r)
		}
		for _, fl := range s.TakePending() {
			collect(fl.Row)
		}
	}
	for _, fl := range s.Flush() {
		collect(fl.Row)
	}
	for key, f := range freqs {
		want := delta
		if f < delta {
			want = f
		}
		if got[key] < want {
			t.Errorf("stratum %s got %d rows, want >= %d", key, got[key], want)
		}
	}
}

func TestDistinctUnbiased(t *testing.T) {
	// The reservoir de-biasing should make SUM estimates unbiased even
	// for values in the tricky (δ, δ+S/p] frequency band.
	var rows []table.Row
	var total float64
	for i := 0; i < 4000; i++ {
		v := float64(1 + i%3)
		rows = append(rows, table.Row{table.NewFloat(v), table.NewInt(int64(i % 80))}) // freq 50
		total += v
	}
	var sum float64
	const trials = 50
	for seed := 0; seed < trials; seed++ {
		s := NewDistinct(0.1, []int{1}, 5, uint64(seed)+1)
		sum += estimateSum(s, rows)
	}
	mean := sum / trials
	if rel := math.Abs(mean-total) / total; rel > 0.04 {
		t.Errorf("distinct estimator biased: mean %.0f vs true %.0f (%.3f)", mean, total, rel)
	}
}

func TestDistinctReducesData(t *testing.T) {
	var rows []table.Row
	for i := 0; i < 20000; i++ {
		rows = append(rows, table.Row{table.NewFloat(1), table.NewInt(int64(i % 10))})
	}
	s := NewDistinct(0.05, []int{1}, 10, 3)
	kept := 0
	for _, r := range rows {
		if pass, _ := s.Admit(r, 1); pass {
			kept++
		}
		kept += len(s.TakePending())
	}
	kept += len(s.Flush())
	if kept > 20000/5 {
		t.Errorf("distinct sampler kept %d of 20000 rows", kept)
	}
}

func TestDeltaForParallelism(t *testing.T) {
	if got := DeltaForParallelism(30, 1); got != 30 {
		t.Errorf("D=1: %d", got)
	}
	// ⌈δ/D⌉+ε with ε=δ/D (paper §4.1.2).
	if got := DeltaForParallelism(30, 3); got != 10+10 {
		t.Errorf("D=3: %d want 20", got)
	}
	if got := DeltaForParallelism(4, 8); got < 2 {
		t.Errorf("small delta: %d", got)
	}
}

func TestDistinctMemoryFootprintBounded(t *testing.T) {
	s := NewDistinct(0.01, []int{0}, 3, 5)
	for i := 0; i < 200000; i++ {
		r := table.Row{table.NewString(fmt.Sprintf("k%d", i%100000))}
		s.Admit(r, 1)
		s.TakePending()
	}
	// The exact map is capped; the sketch holds O(1/eps log eps N).
	if fp := s.MemoryFootprint(); fp > 400000 {
		t.Errorf("memory footprint %d unbounded", fp)
	}
}

func TestSamplerCosts(t *testing.T) {
	// §A: uniform cheapest, universe next (crypto hash), distinct most
	// expensive (sketch + reservoirs).
	u := NewUniform(0.1, 1).CostPerRow()
	v := NewUniverse(0.1, []int{0}, 1).CostPerRow()
	d := NewDistinct(0.1, []int{0}, 3, 1).CostPerRow()
	if !(u < v && v < d) {
		t.Errorf("cost ordering broken: %v %v %v", u, v, d)
	}
}
