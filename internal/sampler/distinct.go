package sampler

import (
	"math"
	"math/rand"
	"sort"
	"strings"

	"quickr/internal/sketch"
	"quickr/internal/table"
)

// Distinct is the stratified sampler Γ^D_{p,C,δ} (§4.1.2): it guarantees
// that at least δ rows pass for every distinct combination of values of
// the column set C (or of functions over C), then passes further rows
// with probability p.
//
// The naive design (always pass the first δ rows, then flip coins) is
// biased, needs per-value exact counts, and cannot be partitioned. This
// implementation follows the paper's fixes:
//
//   - Bias: rows that arrive early in the probabilistic mode are held in
//     a small per-value reservoir and flushed with their correct weight —
//     either 1/p once the value provably has more than δ+S/p rows, or
//     (freq−δ)/|reservoir| at end-of-stream.
//   - Memory: per-value frequencies come from a lossy-counting
//     heavy-hitter sketch (τ=1e-4, s=1e-2) rather than an exact map; the
//     sampler's gains come from dropping rows of very frequent values, so
//     approximate counts for heavy hitters suffice.
//   - Partitioning: with D parallel instances, each takes the modified
//     guarantee ⌈δ/D⌉+ε with ε=δ/D, trading off the all-rows-in-one-
//     instance and rows-spread-evenly extremes.
type Distinct struct {
	P     float64
	Cols  []int // positions of the stratification columns
	Delta int   // per-instance δ (already adjusted for parallelism)
	// ReservoirSize is S; reservoirs exist only for values with observed
	// frequency in (δ, δ+S/p].
	ReservoirSize int
	// KeyFuncs stratify on computed values in addition to Cols — the
	// paper's "stratification over functions of columns" (§4.1.2), e.g.
	// ⌈Y/100⌉ so rare extreme values of a skewed aggregate survive.
	KeyFuncs []func(table.Row) table.Value

	counts     *sketch.LossyCounter
	exact      map[string]int64 // exact count fallback while small
	exactLimit int
	reservoirs map[string]*reservoir
	pending    []Weighted // reservoir overflows awaiting emission
	rng        *rand.Rand
	keyBuf     strings.Builder
}

type reservoir struct {
	rows []table.Row
	ws   []float64
	seen int64 // rows offered to the reservoir (freq − δ)
	done bool  // flushed at overflow; value is in probabilistic mode
}

// DeltaForParallelism returns the per-instance δ for D parallel
// instances: ⌈δ/D⌉ + ε with ε = δ/D (§4.1.2).
func DeltaForParallelism(delta, d int) int {
	if d <= 1 {
		return delta
	}
	per := int(math.Ceil(float64(delta) / float64(d)))
	eps := delta / d
	if eps < 1 {
		eps = 1
	}
	return per + eps
}

// NewDistinct creates a distinct sampler with its own private rng
// seeded from seed. cols are row positions of the stratification
// columns; delta is the per-instance guarantee.
func NewDistinct(p float64, cols []int, delta int, seed uint64) *Distinct {
	return NewDistinctRand(p, cols, delta, rand.New(rand.NewSource(int64(seed))))
}

// NewDistinctRand creates a distinct sampler drawing from an injected
// rng. The sampler owns rng afterwards: callers must not share one rng
// between samplers running on different goroutines.
func NewDistinctRand(p float64, cols []int, delta int, rng *rand.Rand) *Distinct {
	if delta < 1 {
		delta = 1
	}
	return &Distinct{
		P:             p,
		Cols:          cols,
		Delta:         delta,
		ReservoirSize: 10,
		counts:        sketch.NewLossyCounter(1e-4),
		exact:         map[string]int64{},
		exactLimit:    1 << 16,
		reservoirs:    map[string]*reservoir{},
		rng:           rng,
	}
}

func (d *Distinct) key(r table.Row) string {
	d.keyBuf.Reset()
	for _, c := range d.Cols {
		d.keyBuf.WriteString(r[c].Key())
		d.keyBuf.WriteByte(0)
	}
	for _, f := range d.KeyFuncs {
		d.keyBuf.WriteString(f(r).Key())
		d.keyBuf.WriteByte(0)
	}
	return d.keyBuf.String()
}

// count returns the observed frequency of key after this occurrence.
func (d *Distinct) count(key string) int64 {
	d.counts.Add(key)
	if d.exact != nil {
		d.exact[key]++
		c := d.exact[key]
		if len(d.exact) > d.exactLimit {
			d.exact = nil // rely on the sketch beyond the memory bound
		} else {
			return c
		}
	}
	if c, ok := d.counts.Count(key); ok {
		return c
	}
	// Untracked by the sketch ⇒ infrequent ⇒ within the guarantee.
	return 1
}

// Admit implements Sampler.
func (d *Distinct) Admit(r table.Row, w float64) (bool, float64) {
	key := d.key(r)
	c := d.count(key)
	delta := int64(d.Delta)
	switch {
	case c <= delta:
		// Frequency mode: pass with weight 1 (times incoming weight).
		return true, w
	default:
		res, ok := d.reservoirs[key]
		if !ok {
			res = &reservoir{}
			d.reservoirs[key] = res
		}
		if res.done {
			// Probabilistic mode.
			if d.rng.Float64() < d.P {
				return true, w / d.P
			}
			return false, 0
		}
		// Reservoir mode: hold the row; it may be emitted by Flush or at
		// overflow with the corrected weight.
		res.seen++
		if len(res.rows) < d.ReservoirSize {
			res.rows = append(res.rows, r.Clone())
			res.ws = append(res.ws, w)
		} else if j := d.rng.Int63n(res.seen); j < int64(d.ReservoirSize) {
			res.rows[j] = r.Clone()
			res.ws[j] = w
		}
		if res.seen >= int64(float64(d.ReservoirSize)/d.P) {
			// Overflow: each retained row represents 1/p observed rows.
			d.pending = append(d.pending, d.drain(res, 1/d.P)...)
			res.done = true
		}
		return false, 0
	}
}

func (d *Distinct) drain(res *reservoir, weightMult float64) []Weighted {
	out := make([]Weighted, 0, len(res.rows))
	for i, row := range res.rows {
		out = append(out, Weighted{Row: row, W: res.ws[i] * weightMult})
	}
	res.rows, res.ws = nil, nil
	return out
}

// TakePending returns rows whose reservoirs overflowed since the last
// call; the executor must emit them into the output stream.
func (d *Distinct) TakePending() []Weighted {
	p := d.pending
	d.pending = nil
	return p
}

// Flush implements Sampler: emits all remaining reservoirs with weight
// (freq−δ)/|reservoir| each, which makes the estimator unbiased for
// values that never reached the probabilistic mode.
func (d *Distinct) Flush() []Weighted {
	var out []Weighted
	keys := make([]string, 0, len(d.reservoirs))
	for k := range d.reservoirs {
		keys = append(keys, k)
	}
	// Deterministic order for reproducible runs.
	sort.Strings(keys)
	for _, k := range keys {
		res := d.reservoirs[k]
		if res.done || len(res.rows) == 0 {
			continue
		}
		mult := float64(res.seen) / float64(len(res.rows))
		out = append(out, d.drain(res, mult)...)
	}
	return out
}

// CostPerRow implements Sampler.
func (d *Distinct) CostPerRow() float64 { return 5 }

// MemoryFootprint returns an estimate of tracked state size (sketch
// entries plus live reservoir rows) for the ablation benchmarks.
func (d *Distinct) MemoryFootprint() int {
	n := d.counts.EntryCount()
	for _, r := range d.reservoirs {
		n += len(r.rows)
	}
	return n
}
