package sampler

import (
	"math/rand"
	"testing"

	"quickr/internal/table"
)

func row(v int64) table.Row { return table.Row{table.NewInt(v)} }

// The seed-based constructors must behave exactly like the injected-rng
// constructors over the same source, so callers can move to injected
// rngs without changing which rows pass.
func TestUniformSeedMatchesInjectedRand(t *testing.T) {
	a := NewUniform(0.3, 42)
	b := NewUniformRand(0.3, rand.New(rand.NewSource(42)))
	for i := int64(0); i < 5000; i++ {
		pa, wa := a.Admit(row(i), 1)
		pb, wb := b.Admit(row(i), 1)
		if pa != pb || wa != wb {
			t.Fatalf("row %d: seeded (%v,%v) != injected (%v,%v)", i, pa, wa, pb, wb)
		}
	}
}

func TestDistinctSeedMatchesInjectedRand(t *testing.T) {
	a := NewDistinct(0.2, []int{0}, 2, 7)
	b := NewDistinctRand(0.2, []int{0}, 2, rand.New(rand.NewSource(7)))
	for i := int64(0); i < 5000; i++ {
		v := i % 17 // skewed enough to exercise reservoirs and coin flips
		pa, wa := a.Admit(row(v), 1)
		pb, wb := b.Admit(row(v), 1)
		if pa != pb || wa != wb {
			t.Fatalf("row %d: seeded (%v,%v) != injected (%v,%v)", i, pa, wa, pb, wb)
		}
	}
	fa, fb := a.Flush(), b.Flush()
	if len(fa) != len(fb) {
		t.Fatalf("flush lengths differ: %d vs %d", len(fa), len(fb))
	}
}

// Two samplers with the same seed must pass an identical row set.
func TestUniformDeterministicForSeed(t *testing.T) {
	pass := func(seed uint64) []int64 {
		u := NewUniform(0.5, seed)
		var out []int64
		for i := int64(0); i < 2000; i++ {
			if ok, _ := u.Admit(row(i), 1); ok {
				out = append(out, i)
			}
		}
		return out
	}
	a, b := pass(99), pass(99)
	if len(a) != len(b) {
		t.Fatalf("same seed gave %d vs %d rows", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := pass(100)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced an identical pass set")
		}
	}
}
