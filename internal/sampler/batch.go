package sampler

// Batch-mode entry points for the vectorized executor: samplers thin a
// selection vector and scale the weight column in place instead of
// admitting materialized rows. Each draws exactly the per-row decision
// sequence Admit would for the same live rows in the same order, so a
// columnar run is bit-identical to a row-at-a-time run over the same
// partition.

// AdmitBatch admits the live lanes listed in sel, in order. Passing
// lanes keep their slot in the (in-place thinned) selection and have
// their weight scaled by 1/P; the thinned selection is returned.
func (u *Uniform) AdmitBatch(sel []int32, weights []float64) []int32 {
	out := sel[:0]
	for _, lane := range sel {
		if u.rng.Float64() < u.P {
			weights[lane] /= u.P
			out = append(out, lane)
		}
	}
	return out
}

// AdmitBatch admits the live lanes listed in sel, in order. hash must
// return the lane's subspace coordinate — HashValues over the same
// universe-column values Admit would gather from the materialized row.
func (u *Universe) AdmitBatch(sel []int32, weights []float64, hash func(lane int32) uint64) []int32 {
	out := sel[:0]
	for _, lane := range sel {
		if hash(lane) <= u.threshold {
			weights[lane] /= u.P
			out = append(out, lane)
		}
	}
	return out
}
