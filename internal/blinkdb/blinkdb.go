// Package blinkdb implements the apriori input-sampling baseline the
// paper compares against in §5.5 (BlinkDB, EuroSys 2013): a set of
// stratified samples of one large fact table, chosen under a storage
// budget, with per-row weights so aggregates computed over a sample are
// unbiased.
//
// Substitutions versus the original (documented in DESIGN.md): the MILP
// that picks which column sets to stratify on is replaced by a greedy
// knapsack over the same objective (maximize the number of covered
// queries within the budget) — the Go standard library has no MILP
// solver — and, exactly as §5.5 does, query-to-sample matching is made
// perfect by running each query on every stored sample and keeping the
// best qualifying answer.
package blinkdb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"quickr/internal/table"
)

// Config controls sample construction.
type Config struct {
	// K caps the number of rows stored per stratum (the paper's default
	// K=M=1e5; the "tuned for small group size" variant uses K=M=10).
	K int
	// BudgetFactor is the storage budget as a multiple of the base
	// table's row count (paper sweeps 0.5×, 1×, 4×, 10×).
	BudgetFactor float64
	Seed         int64
}

// Candidate is one potential stratified sample: a column set to
// stratify the base table on.
type Candidate struct {
	Cols []string
	// Queries lists the query ids whose QCS this candidate covers.
	Queries []string
	// Rows is the size of the stratified sample under the K cap.
	Rows int
}

// Sample is one stored stratified sample.
type Sample struct {
	Cols []string
	// Table holds the sampled rows; its schema is the base schema plus
	// a trailing `_w` weight column consumed by the weighted scan.
	Table *table.Table
}

// Store is the set of samples chosen for one base table.
type Store struct {
	Base       *table.Table
	Samples    []*Sample
	Candidates []Candidate
	BudgetRows int
	UsedRows   int
}

// strataCount computes, per distinct value combination of cols, the
// row count of the base table.
func strataCount(base *table.Table, cols []string) map[string]int {
	idx := make([]int, 0, len(cols))
	for _, c := range cols {
		if i := base.Schema.Index(c); i >= 0 {
			idx = append(idx, i)
		}
	}
	counts := map[string]int{}
	var sb strings.Builder
	for _, part := range base.Partitions {
		for _, row := range part {
			sb.Reset()
			for _, i := range idx {
				sb.WriteString(row[i].Key())
				sb.WriteByte(0)
			}
			counts[sb.String()]++
		}
	}
	return counts
}

// SampleSize returns the stored size of a stratified sample on cols
// with per-stratum cap k.
func SampleSize(base *table.Table, cols []string, k int) int {
	total := 0
	for _, n := range strataCount(base, cols) {
		if n > k {
			n = k
		}
		total += n
	}
	return total
}

// BuildCandidates sizes one candidate per distinct QCS in the query
// workload. qcsByQuery maps query id to its QCS on the base table.
func BuildCandidates(base *table.Table, qcsByQuery map[string][]string, k int) []Candidate {
	type cand struct {
		cols    []string
		queries []string
	}
	byKey := map[string]*cand{}
	for qid, cols := range qcsByQuery {
		if len(cols) == 0 {
			continue
		}
		sorted := append([]string{}, cols...)
		sort.Strings(sorted)
		key := strings.Join(sorted, ",")
		c, ok := byKey[key]
		if !ok {
			c = &cand{cols: sorted}
			byKey[key] = c
		}
		c.queries = append(c.queries, qid)
	}
	var out []Candidate
	for _, c := range byKey {
		out = append(out, Candidate{
			Cols:    c.cols,
			Queries: c.queries,
			Rows:    SampleSize(base, c.cols, k),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].Cols, ",") < strings.Join(out[j].Cols, ",")
	})
	return out
}

// coversQCS reports whether a sample stratified on sampleCols serves a
// query with the given QCS (the sample's strata must refine the
// query's: QCS ⊆ sampleCols).
func coversQCS(sampleCols, qcs []string) bool {
	set := map[string]bool{}
	for _, c := range sampleCols {
		set[c] = true
	}
	for _, c := range qcs {
		if !set[c] {
			return false
		}
	}
	return true
}

// Build selects candidates greedily under the budget (most newly
// covered queries per stored row first) and materializes the samples.
func Build(base *table.Table, qcsByQuery map[string][]string, cfg Config) *Store {
	if cfg.K <= 0 {
		cfg.K = 100000
	}
	cands := BuildCandidates(base, qcsByQuery, cfg.K)
	budget := int(cfg.BudgetFactor * float64(base.NumRows()))
	st := &Store{Base: base, Candidates: cands, BudgetRows: budget}

	covered := map[string]bool{}
	remaining := append([]Candidate{}, cands...)
	for {
		bestIdx := -1
		bestScore := 0.0
		for i, c := range remaining {
			if c.Rows == 0 || c.Rows > budget-st.UsedRows {
				continue
			}
			// A sample nearly as large as the input can never produce a
			// benefit (the paper's Fig. 1 point: stratifying store_sales
			// on {item, date, customer} "is likely as large as the input
			// ... leading to zero performance gains"); storing it only
			// burns budget.
			if float64(c.Rows) >= 0.9*float64(base.NumRows()) {
				continue
			}
			newCov := 0
			for q, qcs := range qcsByQuery {
				if !covered[q] && coversQCS(c.Cols, qcs) {
					newCov++
				}
			}
			if newCov == 0 {
				continue
			}
			score := float64(newCov) / float64(c.Rows)
			if score > bestScore {
				bestScore = score
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		chosen := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		smp := materialize(base, chosen.Cols, cfg.K, cfg.Seed+int64(len(st.Samples)))
		st.Samples = append(st.Samples, smp)
		st.UsedRows += chosen.Rows
		for q, qcs := range qcsByQuery {
			if coversQCS(chosen.Cols, qcs) {
				covered[q] = true
			}
		}
	}
	return st
}

// materialize draws the stratified sample: per stratum, a uniform
// random subset of up to k rows, each weighted by stratumSize/kept.
func materialize(base *table.Table, cols []string, k int, seed int64) *Sample {
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, 0, len(cols))
	for _, c := range cols {
		if i := base.Schema.Index(c); i >= 0 {
			idx = append(idx, i)
		}
	}
	// Reservoir per stratum.
	type res struct {
		rows []table.Row
		seen int
	}
	strata := map[string]*res{}
	var sb strings.Builder
	for _, part := range base.Partitions {
		for _, row := range part {
			sb.Reset()
			for _, i := range idx {
				sb.WriteString(row[i].Key())
				sb.WriteByte(0)
			}
			key := sb.String()
			r, ok := strata[key]
			if !ok {
				r = &res{}
				strata[key] = r
			}
			r.seen++
			if len(r.rows) < k {
				r.rows = append(r.rows, row)
			} else if j := rng.Intn(r.seen); j < k {
				r.rows[j] = row
			}
		}
	}

	sc := &table.Schema{Cols: append(append([]table.Column{}, base.Schema.Cols...),
		table.Column{Name: "_w", Kind: table.KindFloat})}
	name := fmt.Sprintf("%s_strat_k%d_%s", base.Name, k, strings.Join(cols, "_"))
	out := table.New(name, sc, len(base.Partitions))
	keys := make([]string, 0, len(strata))
	for key := range strata {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	n := 0
	for _, key := range keys {
		r := strata[key]
		w := float64(r.seen) / float64(len(r.rows))
		for _, row := range r.rows {
			wrow := append(append(table.Row{}, row...), table.NewFloat(w))
			out.Append(n, wrow)
			n++
		}
	}
	return &Sample{Cols: cols, Table: out}
}
