package blinkdb

import (
	"math"
	"testing"

	"quickr/internal/table"
)

func baseTable() *table.Table {
	sc := table.NewSchema(
		table.Column{Name: "grp", Kind: table.KindInt},
		table.Column{Name: "sub", Kind: table.KindInt},
		table.Column{Name: "val", Kind: table.KindFloat},
	)
	t := table.New("base", sc, 4)
	for i := 0; i < 10000; i++ {
		t.Append(i, table.Row{
			table.NewInt(int64(i % 10)),
			table.NewInt(int64(i % 500)),
			table.NewFloat(1),
		})
	}
	return t
}

func TestSampleSizeCapsStrata(t *testing.T) {
	base := baseTable()
	// 10 strata of 1000 rows each, cap 50 → 500 rows.
	if got := SampleSize(base, []string{"grp"}, 50); got != 500 {
		t.Errorf("sample size %d want 500", got)
	}
	// 500 strata of 20 rows, cap 50 keeps everything.
	if got := SampleSize(base, []string{"sub"}, 50); got != 10000 {
		t.Errorf("sample size %d want 10000", got)
	}
}

func TestBuildRespectsBudget(t *testing.T) {
	base := baseTable()
	qcs := map[string][]string{
		"q1": {"grp"},
		"q2": {"sub"},
		"q3": {"grp"},
	}
	st := Build(base, qcs, Config{K: 50, BudgetFactor: 0.1, Seed: 1}) // 1000 rows budget
	if st.UsedRows > st.BudgetRows {
		t.Fatalf("budget exceeded: %d > %d", st.UsedRows, st.BudgetRows)
	}
	// Only the grp sample (500 rows, 2 queries) fits; sub needs 10000.
	if len(st.Samples) != 1 || st.Samples[0].Cols[0] != "grp" {
		t.Fatalf("samples: %+v", st.Samples)
	}
}

func TestCandidatesDeduplicateByQCS(t *testing.T) {
	base := baseTable()
	qcs := map[string][]string{"a": {"grp"}, "b": {"grp"}, "c": {"sub", "grp"}}
	cands := BuildCandidates(base, qcs, 50)
	if len(cands) != 2 {
		t.Fatalf("candidates: %+v", cands)
	}
}

func TestMaterializedWeightsUnbiased(t *testing.T) {
	base := baseTable()
	s := materialize(base, []string{"grp"}, 50, 7)
	wIdx := s.Table.Schema.Index("_w")
	if wIdx < 0 {
		t.Fatal("weight column missing")
	}
	// Per-stratum weighted counts must reconstruct the stratum sizes.
	perGroup := map[int64]float64{}
	for _, row := range s.Table.AllRows() {
		perGroup[row[0].Int()] += row[wIdx].Float()
	}
	for g, wsum := range perGroup {
		if math.Abs(wsum-1000) > 1e-6 {
			t.Errorf("group %d weighted count %.1f want 1000", g, wsum)
		}
	}
	if s.Table.NumRows() != 500 {
		t.Errorf("stored rows %d want 500", s.Table.NumRows())
	}
}

func TestCoversQCS(t *testing.T) {
	if !coversQCS([]string{"a", "b"}, []string{"a"}) {
		t.Error("superset must cover")
	}
	if coversQCS([]string{"a"}, []string{"a", "b"}) {
		t.Error("subset must not cover")
	}
}
