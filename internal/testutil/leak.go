// Package testutil holds shared test helpers, chiefly a goroutine leak
// checker used by the concurrency test battery.
package testutil

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// ignoredStacks marks goroutines that are allowed to outlive a test: the
// process-wide worker pool (its workers are persistent by design), the
// testing harness itself, and runtime service goroutines.
var ignoredStacks = []string{
	"quickr/internal/pool.(*Pool).worker",
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"testing.runFuzzing(",
	"testing.runTests(",
	"runtime.gc",
	"runtime.forcegchelper",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.runfinq",
	"runtime.ReadTrace",
	"gcBgMarkWorker",
	"os/signal.signal_recv",
}

// VerifyNoLeaks snapshots live goroutines and registers a cleanup that
// fails the test if new goroutines (beyond the ignore list) are still
// running when the test ends. The check retries briefly so goroutines
// mid-teardown can finish — a real leak stays stuck and is reported with
// its stack.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	base := map[int]bool{}
	for id := range stacks() {
		base[id] = true
	}
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leaked[:0]
			for id, stack := range stacks() {
				if !base[id] && !ignorable(stack) {
					leaked = append(leaked, stack)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leaked %d goroutine(s):\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	})
}

func ignorable(stack string) bool {
	for _, ig := range ignoredStacks {
		if strings.Contains(stack, ig) {
			return true
		}
	}
	return false
}

// stacks returns every live goroutine's stack keyed by goroutine ID.
func stacks() map[int]string {
	buf := make([]byte, 2<<20)
	buf = buf[:runtime.Stack(buf, true)]
	out := map[int]string{}
	for _, g := range strings.Split(string(buf), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" {
			continue
		}
		// Header: "goroutine 123 [running]:"
		rest, ok := strings.CutPrefix(g, "goroutine ")
		if !ok {
			continue
		}
		idStr, _, ok := strings.Cut(rest, " ")
		if !ok {
			continue
		}
		id, err := strconv.Atoi(idStr)
		if err != nil {
			continue
		}
		out[id] = g
	}
	return out
}
