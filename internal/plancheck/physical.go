package plancheck

import (
	"fmt"

	"quickr/internal/exec"
	"quickr/internal/lplan"
)

// Physical checks a compiled physical plan and returns an error joining
// all violations, or nil.
func Physical(p exec.PNode) error { return asError(New().CheckPhysical(p)) }

// CheckPhysical verifies the physical-plan invariants: the exchange and
// breaker discipline the fused-pipeline executor keys off (every
// partition-sensitive operator sits on a correctly shaped exchange),
// sampler legality after compilation, cross-join universe agreement
// including the §4.1.3 shared-weight correction, and weight
// propagation into a Horvitz–Thompson aggregation.
func (c *Checker) CheckPhysical(root exec.PNode) []Violation {
	var vs []Violation
	if root == nil {
		return vs
	}
	vs = append(vs, c.checkPSamplers(root)...)
	vs = append(vs, checkPNestedSamplers(root)...)
	vs = append(vs, checkBreakerPlacement(root)...)
	vs = append(vs, checkExchanges(root)...)
	vs = append(vs, checkEstimatorConfig(root)...)
	vs = append(vs, checkPUniverseGroups(root)...)
	vs = append(vs, checkSharedUniverse(root)...)
	vs = append(vs, checkPWeightReachesAggregate(root)...)
	vs = append(vs, checkPPruning(root)...)
	vs = append(vs, checkPruneInflation(root)...)
	vs = append(vs, checkCachedSample(root)...)
	return annotatePaths(vs, physicalPaths(root))
}

// physicalPaths mirrors logicalPaths on the compiled plan: every node
// mapped to its root→node Describe() chain.
func physicalPaths(root exec.PNode) map[any]string {
	paths := map[any]string{}
	var rec func(n exec.PNode, prefix string)
	rec = func(n exec.PNode, prefix string) {
		p := prefix + n.Describe()
		if _, seen := paths[n]; !seen {
			paths[n] = p
		}
		for _, k := range n.Kids() {
			rec(k, p+" > ")
		}
	}
	rec(root, "")
	return paths
}

// isRealP reports whether p is a non-pass-through physical sampler.
func isRealP(p *exec.PSample) bool { return p.Def.Type != lplan.SamplerPassThrough }

// pSamplers collects the real samplers of a physical subtree.
func pSamplers(n exec.PNode) []*exec.PSample {
	var out []*exec.PSample
	exec.WalkP(n, func(x exec.PNode) {
		if s, ok := x.(*exec.PSample); ok && isRealP(s) {
			out = append(out, s)
		}
	})
	return out
}

// colIDs returns the set of column IDs a physical node produces.
func colIDs(n exec.PNode) lplan.ColSet {
	s := lplan.ColSet{}
	for _, c := range n.Cols() {
		s.Add(c.ID)
	}
	return s
}

// checkPSamplers mirrors checkSamplerDefs on the compiled plan: the
// probability cap and the availability of the sampler's columns at its
// input survive physical planning.
func (c *Checker) checkPSamplers(root exec.PNode) []Violation {
	var vs []Violation
	for _, s := range pSamplers(root) {
		if s.Def.P <= 0 || s.Def.P > c.maxP() {
			vs = append(vs, Violation{
				Rule: "p-sampler-p", Node: s.Describe(),
				Detail: fmt.Sprintf("probability %g outside (0, %g] (§4.2.6)", s.Def.P, c.maxP()),
				node:   s,
			})
		}
		in := colIDs(s.In)
		for _, id := range s.Def.Cols {
			if !in.Has(id) {
				vs = append(vs, Violation{
					Rule: "p-sampler-support", Node: s.Describe(),
					Detail: fmt.Sprintf("sampler column #%d not produced by input", id),
					node:   s,
				})
			}
		}
		if s.Def.Type == lplan.SamplerUniverse && s.Def.Seed == 0 {
			vs = append(vs, Violation{
				Rule: "p-sampler-def", Node: s.Describe(),
				Detail: "universe sampler with zero subspace seed",
				node:   s,
			})
		}
	}
	return vs
}

// checkPNestedSamplers enforces §A's no-nested-samplers rule on the
// compiled plan.
func checkPNestedSamplers(root exec.PNode) []Violation {
	var vs []Violation
	var rec func(n exec.PNode, above *exec.PSample)
	rec = func(n exec.PNode, above *exec.PSample) {
		if s, ok := n.(*exec.PSample); ok && isRealP(s) {
			if above != nil {
				vs = append(vs, Violation{
					Rule: "p-nested-sampler", Node: s.Describe(),
					Detail: fmt.Sprintf("nested under %s (§A)", above.Describe()),
					node:   s,
				})
			}
			above = s
		}
		for _, k := range n.Kids() {
			rec(k, above)
		}
	}
	rec(root, nil)
	return vs
}

// gatherExchange reports whether n is a single-partition exchange.
func gatherExchange(n exec.PNode) bool {
	x, ok := n.(*exec.PExchange)
	return ok && x.Parts == 1
}

// checkBreakerPlacement verifies the contract between the physical
// planner and the fused-pipeline executor: operators that must see (or
// hand off) whole partitions report Breaker() true and sit on an
// exchange of the right shape — sorts and global limits on a gather,
// aggregations on an exchange over their group columns, partitioned
// joins on co-partitioned exchanges. Streaming operators (scan, filter,
// project, sample) must be unary non-breakers so pipelines fuse.
func checkBreakerPlacement(root exec.PNode) []Violation {
	var vs []Violation
	bad := func(n exec.PNode, format string, args ...any) {
		vs = append(vs, Violation{Rule: "p-breaker", Node: n.Describe(), Detail: fmt.Sprintf(format, args...), node: n})
	}
	exec.WalkP(root, func(n exec.PNode) {
		if len(n.Kids()) > 1 && !n.Breaker() {
			bad(n, "multi-input operator must be a pipeline breaker")
		}
		switch x := n.(type) {
		case *exec.PScan, *exec.PFilter, *exec.PProject, *exec.PSample:
			if n.Breaker() {
				bad(n, "streaming operator must not report Breaker()")
			}
		case *exec.PSort:
			if !gatherExchange(x.In) {
				bad(n, "sort input must be a gather exchange (Parts=1), got %s", x.In.Describe())
			}
		case *exec.PLimit:
			if _, overSort := x.In.(*exec.PSort); !overSort && !gatherExchange(x.In) {
				bad(n, "limit input must be a sort or a gather exchange, got %s", x.In.Describe())
			}
		case *exec.PHashAgg:
			ex, ok := x.In.(*exec.PExchange)
			if !ok {
				bad(n, "aggregation input must be an exchange, got %s", x.In.Describe())
				break
			}
			if len(x.GroupCols) == 0 {
				if ex.Parts != 1 {
					bad(n, "global aggregation must gather to one partition, exchange has %d", ex.Parts)
				}
				break
			}
			if len(ex.Keys) != len(x.GroupCols) {
				bad(n, "aggregation exchange keys %v do not match group columns %v", ex.Keys, x.GroupCols)
				break
			}
			for i, k := range ex.Keys {
				if k != x.GroupCols[i] {
					bad(n, "aggregation exchange keys %v do not match group columns %v", ex.Keys, x.GroupCols)
					break
				}
			}
		case *exec.PHashJoin:
			if x.Broadcast {
				break
			}
			lx, lok := x.Left.(*exec.PExchange)
			rx, rok := x.Right.(*exec.PExchange)
			if !lok || !rok {
				bad(n, "partitioned join inputs must both be exchanges")
				break
			}
			if lx.Parts != rx.Parts {
				bad(n, "join inputs partitioned %d vs %d ways: partitions would not line up", lx.Parts, rx.Parts)
			}
			if !sameKeys(lx.Keys, x.LeftKeys) || !sameKeys(rx.Keys, x.RightKeys) {
				bad(n, "join exchanges partition on %v/%v but join keys are %v/%v", lx.Keys, rx.Keys, x.LeftKeys, x.RightKeys)
			}
		}
	})
	return vs
}

func sameKeys(a, b []lplan.ColumnID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkExchanges verifies exchange shape: a positive partition count
// and hash keys the input actually produces.
func checkExchanges(root exec.PNode) []Violation {
	var vs []Violation
	exec.WalkP(root, func(n exec.PNode) {
		x, ok := n.(*exec.PExchange)
		if !ok {
			return
		}
		if x.Parts < 1 {
			vs = append(vs, Violation{
				Rule: "p-exchange", Node: n.Describe(),
				Detail: fmt.Sprintf("partition count %d < 1", x.Parts),
				node:   n,
			})
		}
		in := colIDs(x.In)
		for _, k := range x.Keys {
			if !in.Has(k) {
				vs = append(vs, Violation{
					Rule: "p-exchange", Node: n.Describe(),
					Detail: fmt.Sprintf("hash key #%d not produced by input", k),
					node:   n,
				})
			}
		}
	})
	return vs
}

// checkEstimatorConfig verifies the Horvitz–Thompson estimator wiring:
// estimator configs only appear on the one Top aggregate, and carry a
// legal effective probability.
func checkEstimatorConfig(root exec.PNode) []Violation {
	var vs []Violation
	tops := 0
	exec.WalkP(root, func(n exec.PNode) {
		a, ok := n.(*exec.PHashAgg)
		if !ok {
			return
		}
		if a.Top {
			tops++
			if tops > 1 {
				vs = append(vs, Violation{
					Rule: "p-estimator", Node: n.Describe(),
					Detail: "more than one Top aggregate: result estimates would be ambiguous",
					node:   n,
				})
			}
		}
		if a.Est != nil {
			if !a.Top {
				vs = append(vs, Violation{
					Rule: "p-estimator", Node: n.Describe(),
					Detail: "estimator config on a non-Top aggregate (dominance analysis applies at the root only, §4.3)",
					node:   n,
				})
			}
			if a.Est.P <= 0 || a.Est.P > 1 {
				vs = append(vs, Violation{
					Rule: "p-estimator", Node: n.Describe(),
					Detail: fmt.Sprintf("effective probability %g outside (0, 1]", a.Est.P),
					node:   n,
				})
			}
		}
	})
	return vs
}

// checkPUniverseGroups mirrors checkUniverseGroups after compilation:
// universe samplers sharing a subspace seed must agree on probability
// and column count.
func checkPUniverseGroups(root exec.PNode) []Violation {
	var vs []Violation
	groups := map[uint64][]*exec.PSample{}
	for _, s := range pSamplers(root) {
		if s.Def.Type == lplan.SamplerUniverse {
			groups[s.Def.Seed] = append(groups[s.Def.Seed], s)
		}
	}
	for _, members := range groups {
		first := members[0]
		for _, m := range members[1:] {
			if m.Def.P != first.Def.P || len(m.Def.Cols) != len(first.Def.Cols) {
				vs = append(vs, Violation{
					Rule: "p-universe-group", Node: m.Describe(),
					Detail: fmt.Sprintf("disagrees with paired sampler %s (same seed %d must share fraction and column count, §A)", first.Describe(), m.Def.Seed),
					node:   m,
				})
			}
		}
	}
	return vs
}

// checkSharedUniverse verifies the §4.1.3 weight correction wiring: a
// join's SharedUniverseP must be set exactly when both inputs carry
// universe samplers from the same subspace, and must equal their
// probability — without it joined weights stay 1/p² and every estimate
// is off by 1/p.
func checkSharedUniverse(root exec.PNode) []Violation {
	var vs []Violation
	exec.WalkP(root, func(n exec.PNode) {
		j, ok := n.(*exec.PHashJoin)
		if !ok {
			return
		}
		shared := 0.0
		left := map[uint64]float64{}
		for _, s := range pSamplers(j.Left) {
			if s.Def.Type == lplan.SamplerUniverse {
				left[s.Def.Seed] = s.Def.P
			}
		}
		for _, s := range pSamplers(j.Right) {
			if s.Def.Type == lplan.SamplerUniverse {
				if p, ok := left[s.Def.Seed]; ok {
					shared = p
				}
			}
		}
		if j.SharedUniverseP != shared {
			vs = append(vs, Violation{
				Rule: "p-shared-universe", Node: j.Describe(),
				Detail: fmt.Sprintf("SharedUniverseP=%g but paired universe samplers imply %g (weight correction §4.1.3)", j.SharedUniverseP, shared),
				node:   j,
			})
		}
	})
	return vs
}

// checkPPruning verifies the optimizer's partition-selection decisions:
// a pruned scan needs a real sampler above it in the same streaming
// chain (skipping partitions of an exact scan would bias the answer),
// its kept-partition subset must be well-formed with Horvitz–Thompson
// inflation factors ≥ 1, and the table's summaries must actually
// certify the sampler's stratification/universe columns (the C1/C2
// dominance precondition for pruning eligibility).
func checkPPruning(root exec.PNode) []Violation {
	var vs []Violation
	bad := func(n exec.PNode, format string, args ...any) {
		vs = append(vs, Violation{Rule: "p-prune", Node: n.Describe(), Detail: fmt.Sprintf(format, args...), node: n})
	}
	var rec func(n exec.PNode, samp *exec.PSample)
	rec = func(n exec.PNode, samp *exec.PSample) {
		switch x := n.(type) {
		case *exec.PSample:
			if isRealP(x) {
				samp = x
			}
			rec(x.In, samp)
		case *exec.PFilter:
			rec(x.In, samp)
		case *exec.PScan:
			if x.Prune == nil {
				return
			}
			pr := x.Prune
			total := len(x.Tbl.Partitions)
			if samp == nil {
				bad(n, "pruned scan has no sampler above it: skipping partitions would bias an exact answer")
			}
			if len(pr.Keep) == 0 {
				bad(n, "empty kept-partition subset")
				return
			}
			if len(pr.Inflate) != len(pr.Keep) {
				bad(n, "inflation factors (%d) not aligned with kept partitions (%d)", len(pr.Inflate), len(pr.Keep))
				return
			}
			for i, p := range pr.Keep {
				if p < 0 || p >= total {
					bad(n, "kept partition %d out of range [0, %d)", p, total)
				}
				if i > 0 && pr.Keep[i-1] >= p {
					bad(n, "kept partitions not strictly ascending at index %d", i)
				}
				if pr.Inflate[i] < 1 {
					bad(n, "inflation %g < 1 for partition %d would deflate row weights", pr.Inflate[i], p)
				}
			}
			if pr.Pruned != total-len(pr.Keep) {
				bad(n, "Pruned=%d inconsistent with %d of %d partitions kept", pr.Pruned, len(pr.Keep), total)
			}
			if pr.TailP <= 0 || pr.TailP > 1 {
				bad(n, "tail inclusion probability %g outside (0, 1]", pr.TailP)
			}
			if samp != nil && len(x.OutCols) == len(x.ColIdx) {
				pos := map[lplan.ColumnID]int{}
				for i, ci := range x.OutCols {
					pos[ci.ID] = x.ColIdx[i]
				}
				need := append(append([]lplan.ColumnID{}, samp.Def.Cols...), samp.Def.BucketCols...)
				for _, id := range need {
					c, ok := pos[id]
					if !ok {
						bad(n, "sampler column #%d is not stored in the pruned table: summaries cannot dominate it", id)
						continue
					}
					for p := range x.Tbl.Partitions {
						if !x.Tbl.Summary(p).Cols[c].Complete {
							bad(n, "partition %d summary does not certify sampler column #%d: pruning eligibility (C1/C2) violated", p, id)
							break
						}
					}
				}
			}
		default:
			for _, k := range n.Kids() {
				rec(k, nil)
			}
		}
	}
	rec(root, nil)
	return vs
}

// checkPruneInflation verifies that a pruned scan's weight inflation
// actually reaches a Horvitz–Thompson aggregate: an estimator-bearing
// aggregation must sit above the scan with no sort or limit between,
// and the estimator's partition terms must match the scan's decision
// (otherwise reported error bars would ignore the cluster-sampling
// variance the pruning introduced).
func checkPruneInflation(root exec.PNode) []Violation {
	var vs []Violation
	bad := func(n exec.PNode, format string, args ...any) {
		vs = append(vs, Violation{Rule: "p-prune-inflation", Node: n.Describe(), Detail: fmt.Sprintf(format, args...), node: n})
	}
	var rec func(n exec.PNode, est *exec.EstimatorConfig, blocked string)
	rec = func(n exec.PNode, est *exec.EstimatorConfig, blocked string) {
		switch x := n.(type) {
		case *exec.PHashAgg:
			if x.Est != nil {
				est, blocked = x.Est, ""
			}
		case *exec.PSort, *exec.PLimit:
			if est != nil && blocked == "" {
				blocked = n.Describe()
			}
		case *exec.PScan:
			if x.Prune != nil {
				switch {
				case est == nil:
					bad(n, "pruned scan has no estimator-bearing aggregate above it: partition inflation would never enter an estimate")
				case blocked != "":
					bad(n, "%s between the pruned scan and its aggregate reorders or truncates the inflated stream", blocked)
				case est.PartP != x.Prune.TailP:
					bad(n, "estimator PartP=%g disagrees with the scan's tail probability %g: variance would be computed for a different design", est.PartP, x.Prune.TailP)
				}
			}
		}
		for _, k := range n.Kids() {
			rec(k, est, blocked)
		}
	}
	rec(root, nil, "")
	return vs
}

// checkCachedSample verifies hot-sample-reuse nodes: the replaced
// fragment must still be present as the node's child, have the
// cacheable shape the rewrite recognizes (a real sampler over
// filters/projects over one base-table scan), and the node's claims
// about it — the root sampler probability (which fixes the cached rows'
// Horvitz–Thompson weights) and the fragment fingerprint the executor
// keys the cache on — must match the fragment exactly. A hand-built
// plan that swaps fragments or claims different weights is rejected
// before it can serve cached rows as if they were the lazy stream.
func checkCachedSample(root exec.PNode) []Violation {
	var vs []Violation
	bad := func(n exec.PNode, format string, args ...any) {
		vs = append(vs, Violation{Rule: "p-cached-sample", Node: n.Describe(), Detail: fmt.Sprintf(format, args...), node: n})
	}
	exec.WalkP(root, func(n exec.PNode) {
		cs, ok := n.(*exec.PCachedSample)
		if !ok {
			return
		}
		if cs.Frag == nil {
			bad(n, "cached-sample node without a fragment: there is no lazy fallback to run")
			return
		}
		if !exec.CacheableFragment(cs.Frag) {
			bad(n, "fragment %s is not cacheable (must be a real sampler over filters/projects over one scan)", cs.Frag.Describe())
			return
		}
		s := cs.Frag.(*exec.PSample)
		if cs.SamplerP != s.Def.P {
			bad(n, "node claims sampler p=%g but the fragment samples at p=%g: cached rows would carry different HT weights than the lazy path", cs.SamplerP, s.Def.P)
		}
		if cs.Key != exec.FragmentKey(cs.Frag) {
			bad(n, "cache key does not fingerprint this fragment: a warm run could replay a different sampler/filter/prune combination")
		}
	})
	return vs
}

// checkPWeightReachesAggregate verifies weight propagation on the
// compiled plan: any weighted source — a real sampler or a scan with an
// apriori weight column — must have a hash aggregation above it (the
// only operator that consumes row weights), with no sort or limit in
// between (both would reorder or truncate the weighted stream before
// estimation).
func checkPWeightReachesAggregate(root exec.PNode) []Violation {
	var vs []Violation
	// blocked is "" outside any aggregation, the Describe() of the most
	// recent sort/limit when one sits between here and the nearest
	// aggregation above, and "ok" when an aggregation is directly
	// reachable upward through weight-preserving operators.
	var rec func(n exec.PNode, blocked string)
	rec = func(n exec.PNode, blocked string) {
		weighted := ""
		switch x := n.(type) {
		case *exec.PSample:
			if isRealP(x) {
				weighted = "sampler"
			}
		case *exec.PScan:
			if x.WeightIdx >= 0 {
				weighted = "weighted scan"
			}
		case *exec.PHashAgg:
			blocked = "ok"
		case *exec.PSort, *exec.PLimit:
			if blocked == "ok" {
				blocked = n.Describe()
			}
		}
		if weighted != "" && blocked != "ok" {
			detail := fmt.Sprintf("%s has no aggregation above it: row weights would be dropped, biasing the answer", weighted)
			if blocked != "" {
				detail = fmt.Sprintf("%s between %s and its aggregation reorders or truncates the weighted stream before estimation", blocked, weighted)
			}
			vs = append(vs, Violation{Rule: "p-weight-propagation", Node: n.Describe(), Detail: detail, node: n})
		}
		for _, k := range n.Kids() {
			rec(k, blocked)
		}
	}
	rec(root, "")
	return vs
}
