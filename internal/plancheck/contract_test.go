package plancheck

import (
	"strings"
	"testing"

	"quickr/internal/exec"
	"quickr/internal/lplan"
)

func contractPlan(p float64, est *exec.EstimatorConfig) exec.PNode {
	var in exec.PNode = pscan(col(1, "a"))
	if p > 0 {
		in = &exec.PSample{
			In:   in,
			Def:  lplan.SamplerDef{Type: lplan.SamplerUniform, P: p},
			Seed: 1,
		}
	}
	a := pagg(&exec.PExchange{In: in, Keys: []lplan.ColumnID{1}, Parts: 2}, true, 1)
	a.Est = est
	return a
}

func TestCheckContractSampledNeedsEstimator(t *testing.T) {
	c := New()
	// Sampled plan without estimator: violation.
	vs := c.CheckContract(contractPlan(0.1, nil))
	if len(vs) != 1 || vs[0].Rule != "contract-estimator" {
		t.Fatalf("want one contract-estimator violation, got %v", vs)
	}
	if err := c.ContractError(contractPlan(0.1, nil)); err == nil ||
		!strings.Contains(err.Error(), "contract-estimator") {
		t.Fatalf("ContractError = %v", err)
	}
	// Sampled plan with estimator: clean.
	if vs := c.CheckContract(contractPlan(0.1, &exec.EstimatorConfig{P: 0.1})); len(vs) != 0 {
		t.Fatalf("estimator-bearing plan flagged: %v", vs)
	}
	// Exact plan needs no estimator.
	if vs := c.CheckContract(contractPlan(0, nil)); len(vs) != 0 {
		t.Fatalf("exact plan flagged: %v", vs)
	}
	if vs := c.CheckContract(nil); len(vs) != 0 {
		t.Fatalf("nil plan flagged: %v", vs)
	}
}

func TestCheckerErrorWrappers(t *testing.T) {
	// A checker with a raised cap accepts ladder rungs above 0.1 that
	// the default checker rejects.
	plan := contractPlan(0.33, &exec.EstimatorConfig{P: 0.33})
	if err := New().PhysicalError(plan); err == nil {
		t.Fatal("default cap should reject p=0.33")
	}
	raised := &Checker{MaxP: 0.5}
	if err := raised.PhysicalError(plan); err != nil {
		t.Fatalf("raised cap rejected p=0.33: %v", err)
	}
	// Logical wrapper mirrors package-level Logical.
	sampled := &lplan.Aggregate{
		Input: &lplan.Sample{
			Input: &lplan.Scan{Table: "t"},
			Def:   &lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.33},
		},
	}
	if err := New().LogicalError(sampled); err == nil {
		t.Fatal("default cap should reject logical p=0.33")
	}
	if err := raised.LogicalError(sampled); err != nil {
		t.Fatalf("raised cap rejected logical p=0.33: %v", err)
	}
}
