package plancheck

import (
	"quickr/internal/exec"
	"quickr/internal/lplan"
)

// Contract-specific checks and checker-scoped error wrappers. Contract
// escalation runs the planner with a raised probability cap (the
// ladder's rung can exceed the paper's 0.1 default), so the engine
// builds a Checker with the widened MaxP and calls these instead of the
// package-level Logical/Physical.

// LogicalError checks a logical plan with this checker's configuration
// and returns all violations joined into one error, or nil.
func (c *Checker) LogicalError(n lplan.Node) error { return asError(c.CheckLogical(n)) }

// PhysicalError checks a physical plan with this checker's
// configuration and returns all violations joined into one error, or
// nil.
func (c *Checker) PhysicalError(p exec.PNode) error { return asError(c.CheckPhysical(p)) }

// CheckContract verifies the invariant specific to contract-bearing
// plans: a sampled physical plan answering an error contract must carry
// an estimator on its top aggregate, because the contract check
// compares realized per-group CI bounds — without an estimator there
// are no bounds to compare and the contract silently becomes
// unenforceable.
func (c *Checker) CheckContract(root exec.PNode) []Violation {
	var vs []Violation
	if root == nil {
		return vs
	}
	sampled := false
	exec.WalkP(root, func(n exec.PNode) {
		if s, ok := n.(*exec.PSample); ok &&
			s.Def.Type != lplan.SamplerPassThrough && s.Def.P > 0 && s.Def.P < 1 {
			sampled = true
		}
	})
	if !sampled {
		return vs
	}
	hasEst := false
	exec.WalkP(root, func(n exec.PNode) {
		if a, ok := n.(*exec.PHashAgg); ok && a.Top && a.Est != nil {
			hasEst = true
		}
	})
	if !hasEst {
		vs = append(vs, Violation{
			Rule: "contract-estimator",
			Node: "plan",
			Detail: "sampled contract plan carries no estimator on its top aggregate: " +
				"realized CI bounds cannot be computed, so the contract cannot be checked",
		})
	}
	return vs
}

// ContractError wraps CheckContract's violations into one error, or
// nil.
func (c *Checker) ContractError(root exec.PNode) error { return asError(c.CheckContract(root)) }
