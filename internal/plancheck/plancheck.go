// Package plancheck verifies the plan invariants Quickr's correctness
// depends on but which no compiler or unit test sees end to end: the
// sampler-dominance discipline of §4.2 (Props 7–9), the C1/C2 support
// requirements at the chosen sampler site (§4.2.6), the global
// universe-pairing requirements of §A, the §B.1 requirement that
// universe columns reach the aggregate, and the physical planner's
// exchange/breaker discipline the fused-pipeline executor keys off.
//
// The checker is intentionally independent of the optimizer: it imports
// only the plan algebras (internal/lplan, internal/exec) and re-derives
// every invariant from first principles, so a bug in ASALQA or the
// physical planner cannot hide inside a shared helper. It runs
//
//   - over every optimized TPC-DS / TPC-H / Other workload plan in the
//     experiment test suite,
//   - behind Engine.SetPlanChecks(true) / `quickr -check` at optimize
//     time, and
//   - inside the core and opt unit tests on the outputs of fixup and
//     normalize rewrites.
package plancheck

import (
	"fmt"
	"strings"

	"quickr/internal/lplan"
)

// Violation is one broken invariant.
type Violation struct {
	// Rule is the stable identifier of the invariant (e.g.
	// "nested-sampler", "universe-pair").
	Rule string
	// Node is the Describe() text of the offending operator.
	Node string
	// Path is the root→node operator chain (Describe() texts joined
	// with " > "), filled in by CheckLogical / CheckPhysical when the
	// offending operator is part of the checked tree. In a plan with
	// several look-alike operators (two scans of the same table, say)
	// the path is what tells them apart.
	Path string
	// Detail explains what was expected and what was found.
	Detail string

	// node is the offending operator object, recorded at the
	// construction site so the path annotation can key on identity
	// rather than on Describe() text.
	node any
}

func (v Violation) String() string {
	if v.Path != "" {
		return fmt.Sprintf("%s: %s: %s (path: %s)", v.Rule, v.Node, v.Detail, v.Path)
	}
	return fmt.Sprintf("%s: %s: %s", v.Rule, v.Node, v.Detail)
}

// annotatePaths fills each violation's Path from the node recorded at
// its construction site. Violations whose node is not in the map (or
// was never recorded) keep an empty Path.
func annotatePaths(vs []Violation, paths map[any]string) []Violation {
	for i := range vs {
		if p, ok := paths[vs[i].node]; ok {
			vs[i].Path = p
		}
	}
	return vs
}

// logicalPaths maps every node of a logical plan to its root→node
// chain. If the same node object appears twice (a shared subtree), the
// first — leftmost, outermost — path wins.
func logicalPaths(root lplan.Node) map[any]string {
	paths := map[any]string{}
	var rec func(n lplan.Node, prefix string)
	rec = func(n lplan.Node, prefix string) {
		p := prefix + n.Describe()
		if _, seen := paths[n]; !seen {
			paths[n] = p
		}
		for _, ch := range n.Children() {
			rec(ch, p+" > ")
		}
	}
	rec(root, "")
	return paths
}

// Checker verifies plans. The zero value uses the paper's parameters.
type Checker struct {
	// MaxP is the largest legal sampling probability (paper §4.2.6:
	// p ≤ 0.1 "to ensure that the performance gains are high").
	MaxP float64
}

// New returns a Checker with the paper's probability cap.
func New() *Checker { return &Checker{MaxP: 0.1} }

func (c *Checker) maxP() float64 {
	if c.MaxP <= 0 {
		return 0.1
	}
	return c.MaxP
}

// Logical checks an optimized logical plan and returns an error joining
// all violations, or nil.
func Logical(n lplan.Node) error { return asError(New().CheckLogical(n)) }

func asError(vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return fmt.Errorf("plancheck: %d violation(s):\n  %s", len(vs), strings.Join(parts, "\n  "))
}

// CheckLogical verifies all logical-plan invariants.
func (c *Checker) CheckLogical(root lplan.Node) []Violation {
	var vs []Violation
	if root == nil {
		return vs
	}
	vs = append(vs, c.checkSamplerDefs(root)...)
	vs = append(vs, checkNestedSamplers(root)...)
	vs = append(vs, checkSamplerDominance(root)...)
	vs = append(vs, checkUniversePropagation(root)...)
	vs = append(vs, checkUniverseGroups(root)...)
	vs = append(vs, checkUniversePairs(root)...)
	vs = append(vs, checkWeightReachesAggregate(root)...)
	return annotatePaths(vs, logicalPaths(root))
}

// isReal reports whether s is a materialized, non-pass-through sampler.
func isReal(s *lplan.Sample) bool {
	return s.Def != nil && s.Def.Type != lplan.SamplerPassThrough
}

// checkSamplerDefs verifies each sampler's physical definition is
// internally consistent and its column requirements are satisfiable at
// the chosen site — the site-local residue of C1/C2 (§4.2.6): the
// stratification / universe columns the costing step reasoned about
// must actually be produced by the sampler's input.
func (c *Checker) checkSamplerDefs(root lplan.Node) []Violation {
	var vs []Violation
	bad := func(s *lplan.Sample, rule, format string, args ...any) {
		vs = append(vs, Violation{Rule: rule, Node: s.Describe(), Detail: fmt.Sprintf(format, args...), node: s})
	}
	for _, s := range lplan.FindSamplers(root) {
		if s.Def == nil {
			bad(s, "sampler-def", "sampler not costed: Def is nil (exploration state leaked out of ASALQA)")
			continue
		}
		d := s.Def
		switch d.Type {
		case lplan.SamplerPassThrough:
			continue
		case lplan.SamplerUniform, lplan.SamplerDistinct, lplan.SamplerUniverse:
			if d.P <= 0 || d.P > c.maxP() {
				bad(s, "sampler-p", "probability %g outside (0, %g] (§4.2.6)", d.P, c.maxP())
			}
		default:
			bad(s, "sampler-def", "unknown sampler type %d", d.Type)
			continue
		}
		inputIDs := lplan.OutputIDs(s.Input)
		for _, id := range d.Cols {
			if !inputIDs.Has(id) {
				bad(s, "sampler-support", "sampler column #%d not produced by input (C1/C2 unsupported at this site)", id)
			}
		}
		switch d.Type {
		case lplan.SamplerDistinct:
			if d.Delta < 1 {
				bad(s, "sampler-def", "distinct sampler delta %d < 1 (must guarantee rows per stratum, §4.1.2)", d.Delta)
			}
			if len(d.Cols) == 0 && len(d.BucketCols) == 0 {
				bad(s, "sampler-def", "distinct sampler with no stratification columns")
			}
			if len(d.BucketCols) != len(d.BucketWidths) {
				bad(s, "sampler-def", "bucket columns/widths mismatch: %d vs %d", len(d.BucketCols), len(d.BucketWidths))
			}
			for _, id := range d.BucketCols {
				if !inputIDs.Has(id) {
					bad(s, "sampler-support", "bucket column #%d not produced by input", id)
				}
			}
			for _, w := range d.BucketWidths {
				if w <= 0 {
					bad(s, "sampler-def", "bucket width %g not positive", w)
				}
			}
		case lplan.SamplerUniverse:
			if len(d.Cols) == 0 {
				bad(s, "sampler-def", "universe sampler with no universe columns (§4.1.3)")
			}
			if d.Seed == 0 {
				bad(s, "sampler-def", "universe sampler with zero subspace seed: paired samplers could not agree")
			}
		}
	}
	return vs
}

// checkNestedSamplers enforces §A: "Quickr does not allow nested
// samplers" — no root-to-leaf path may contain more than one real
// sampler.
func checkNestedSamplers(root lplan.Node) []Violation {
	var vs []Violation
	var rec func(n lplan.Node, above *lplan.Sample)
	rec = func(n lplan.Node, above *lplan.Sample) {
		if s, ok := n.(*lplan.Sample); ok && isReal(s) {
			if above != nil {
				vs = append(vs, Violation{
					Rule: "nested-sampler", Node: s.Describe(),
					Detail: fmt.Sprintf("nested under %s (§A forbids nested samplers)", above.Describe()),
					node:   s,
				})
			}
			above = s
		}
		for _, ch := range n.Children() {
			rec(ch, above)
		}
	}
	rec(root, nil)
	return vs
}

// checkSamplerDominance enforces the dominance discipline behind Props
// 7–9 (§4.2): a sampler is only ever seeded directly below an aggregate
// and pushed down past selects, projects and joins, so in a legal plan
// every real sampler (a) has an Aggregate ancestor, and (b) the path up
// to the nearest Aggregate crosses only Select, Project, Join and
// pass-through Sample operators — never Sort, Limit, Window, UnionAll
// or another Aggregate's output, whose semantics sampling below would
// change.
func checkSamplerDominance(root lplan.Node) []Violation {
	var vs []Violation
	var rec func(n lplan.Node, path []lplan.Node)
	rec = func(n lplan.Node, path []lplan.Node) {
		if s, ok := n.(*lplan.Sample); ok && isReal(s) {
			agg := -1
			for i := len(path) - 1; i >= 0; i-- {
				if _, isAgg := path[i].(*lplan.Aggregate); isAgg {
					agg = i
					break
				}
			}
			if agg < 0 {
				vs = append(vs, Violation{
					Rule: "sampler-dominance", Node: s.Describe(),
					Detail: "no Aggregate above the sampler: sample weights would never reach an estimator",
					node:   s,
				})
			} else {
				for _, anc := range path[agg+1:] {
					switch a := anc.(type) {
					case *lplan.Select, *lplan.Project, *lplan.Join:
					case *lplan.Sample:
						if isReal(a) {
							// Reported separately by nested-sampler.
							continue
						}
					default:
						vs = append(vs, Violation{
							Rule: "sampler-dominance", Node: s.Describe(),
							Detail: fmt.Sprintf("%s between sampler and its aggregate (Props 7–9 cover only select/project/join)", anc.Describe()),
							node:   s,
						})
					}
				}
			}
		}
		path = append(path, n)
		for _, ch := range n.Children() {
			rec(ch, path)
		}
	}
	rec(root, nil)
	return vs
}

// checkUniversePropagation enforces §B.1: the universe columns of every
// universe sampler must stay visible at each operator between the
// sampler and its nearest enclosing Aggregate, because the estimator
// computes per-group variance over subspace subgroups and needs the
// subspace identity alongside each row (core's addUniversePassthrough
// widens projections to guarantee exactly this).
func checkUniversePropagation(root lplan.Node) []Violation {
	var vs []Violation
	var rec func(n lplan.Node, path []lplan.Node)
	rec = func(n lplan.Node, path []lplan.Node) {
		if s, ok := n.(*lplan.Sample); ok && isReal(s) && s.Def.Type == lplan.SamplerUniverse {
			for i := len(path) - 1; i >= 0; i-- {
				if _, isAgg := path[i].(*lplan.Aggregate); isAgg {
					break
				}
				out := lplan.OutputIDs(path[i])
				for _, id := range s.Def.Cols {
					if !out.Has(id) {
						vs = append(vs, Violation{
							Rule: "universe-propagation", Node: s.Describe(),
							Detail: fmt.Sprintf("universe column #%d dropped by %s before reaching the aggregate (§B.1)", id, path[i].Describe()),
							node:   s,
						})
					}
				}
			}
		}
		path = append(path, n)
		for _, ch := range n.Children() {
			rec(ch, path)
		}
	}
	rec(root, nil)
	return vs
}

// universeSamplers returns the real universe samplers in the subtree.
func universeSamplers(n lplan.Node) []*lplan.Sample {
	var out []*lplan.Sample
	for _, s := range lplan.FindSamplers(n) {
		if isReal(s) && s.Def.Type == lplan.SamplerUniverse {
			out = append(out, s)
		}
	}
	return out
}

// checkUniverseGroups enforces the subspace-seed contract: all universe
// samplers sharing a subspace seed must pick the same p-fraction (§A:
// "identical ... probability"). Column IDs legitimately differ between
// the members of a cross-join pair (each side samples its own join
// keys); checkUniversePairs verifies that correspondence at the join.
func checkUniverseGroups(root lplan.Node) []Violation {
	var vs []Violation
	groups := map[uint64][]*lplan.Sample{}
	for _, s := range universeSamplers(root) {
		groups[s.Def.Seed] = append(groups[s.Def.Seed], s)
	}
	for _, members := range groups {
		first := members[0]
		for _, m := range members[1:] {
			if m.Def.P != first.Def.P {
				vs = append(vs, Violation{
					Rule: "universe-group", Node: m.Describe(),
					Detail: fmt.Sprintf("probability %g differs from paired sampler's %g (same seed %d must sample the same subspace fraction, §A)", m.Def.P, first.Def.P, m.Def.Seed),
					node:   m,
				})
			}
			if len(m.Def.Cols) != len(first.Def.Cols) {
				vs = append(vs, Violation{
					Rule: "universe-group", Node: m.Describe(),
					Detail: fmt.Sprintf("%d universe columns vs paired sampler's %d (seed %d): subspaces cannot line up", len(m.Def.Cols), len(first.Def.Cols), m.Def.Seed),
					node:   m,
				})
			}
		}
	}
	return vs
}

// checkUniversePairs verifies cross-join universe consistency (§4.1.3,
// §A): when the two inputs of a join carry universe samplers with the
// same subspace seed, each side must universe-sample columns that the
// join's key equivalence maps onto the other side's columns — otherwise
// the two samplers keep different subspaces and the join silently loses
// the matching rows.
func checkUniversePairs(root lplan.Node) []Violation {
	var vs []Violation
	lplan.Walk(root, func(n lplan.Node) {
		j, ok := n.(*lplan.Join)
		if !ok {
			return
		}
		left := map[uint64]*lplan.Sample{}
		for _, s := range universeSamplers(j.Left) {
			left[s.Def.Seed] = s
		}
		for _, rs := range universeSamplers(j.Right) {
			ls, shared := left[rs.Def.Seed]
			if !shared {
				continue
			}
			// Map the left sampler's columns through the join-key
			// equivalence and compare with the right sampler's columns.
			l2r := map[lplan.ColumnID]lplan.ColumnID{}
			for i := range j.LeftKeys {
				l2r[j.LeftKeys[i]] = j.RightKeys[i]
			}
			want := lplan.ColSet{}
			mappable := true
			for _, id := range ls.Def.Cols {
				img, ok := l2r[id]
				if !ok {
					mappable = false
					break
				}
				want.Add(img)
			}
			have := lplan.NewColSet(rs.Def.Cols...)
			if !mappable || len(want) != len(have) || !want.SubsetOf(have) {
				vs = append(vs, Violation{
					Rule: "universe-pair", Node: j.Describe(),
					Detail: fmt.Sprintf("paired universe samplers (seed %d) sample %v on the left and %v on the right, which the join keys do not identify (§A)", rs.Def.Seed, ls.Def.Cols, rs.Def.Cols),
					node:   j,
				})
			}
		}
	})
	return vs
}

// checkWeightReachesAggregate enforces weight propagation for the
// apriori-sample path: a Scan with a weight column produces rows whose
// weights only the Horvitz–Thompson aggregation consumes, so such a
// scan without an Aggregate above it silently discards its weights and
// the answer is biased by 1/p.
func checkWeightReachesAggregate(root lplan.Node) []Violation {
	var vs []Violation
	var rec func(n lplan.Node, underAgg bool)
	rec = func(n lplan.Node, underAgg bool) {
		if s, ok := n.(*lplan.Scan); ok && s.WeightColumn != "" && !underAgg {
			vs = append(vs, Violation{
				Rule: "weight-propagation", Node: s.Describe(),
				Detail: fmt.Sprintf("weight column %q has no Aggregate above it: sampling weights would be dropped, biasing the answer", s.WeightColumn),
				node:   s,
			})
		}
		if _, ok := n.(*lplan.Aggregate); ok {
			underAgg = true
		}
		for _, ch := range n.Children() {
			rec(ch, underAgg)
		}
	}
	rec(root, false)
	return vs
}
