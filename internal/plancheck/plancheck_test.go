package plancheck

import (
	"strings"
	"testing"

	"quickr/internal/exec"
	"quickr/internal/lplan"
	"quickr/internal/table"
)

// --- logical-plan fixtures ------------------------------------------

func col(id lplan.ColumnID, name string) lplan.ColumnInfo {
	return lplan.ColumnInfo{ID: id, Name: name, Kind: table.KindInt}
}

func scan(cols ...lplan.ColumnInfo) *lplan.Scan {
	return &lplan.Scan{Table: "t", Cols: cols}
}

func uniform(in lplan.Node, p float64) *lplan.Sample {
	return &lplan.Sample{Input: in, Def: &lplan.SamplerDef{Type: lplan.SamplerUniform, P: p}}
}

func agg(in lplan.Node, groups ...lplan.ColumnID) *lplan.Aggregate {
	infos := make([]lplan.ColumnInfo, len(groups))
	for i, g := range groups {
		infos[i] = col(g, "g")
	}
	return &lplan.Aggregate{
		Input: in, GroupCols: groups, GroupInfo: infos,
		Aggs: []lplan.AggSpec{{Kind: lplan.AggCount, Out: col(99, "cnt")}},
	}
}

// expectRule asserts that exactly the given rules fire (each at least
// once) and nothing else does.
func expectRules(t *testing.T, vs []Violation, rules ...string) {
	t.Helper()
	want := map[string]bool{}
	for _, r := range rules {
		want[r] = false
	}
	for _, v := range vs {
		if _, ok := want[v.Rule]; !ok {
			t.Errorf("unexpected violation %s", v)
			continue
		}
		want[v.Rule] = true
	}
	for r, seen := range want {
		if !seen {
			t.Errorf("expected a %s violation, got %v", r, vs)
		}
	}
}

func TestLogicalCleanPlanPasses(t *testing.T) {
	base := scan(col(1, "a"), col(2, "b"))
	plan := agg(uniform(base, 0.05), 1)
	if vs := New().CheckLogical(plan); len(vs) != 0 {
		t.Fatalf("clean plan flagged: %v", vs)
	}
	if err := Logical(plan); err != nil {
		t.Fatalf("Logical: %v", err)
	}
}

func TestLogicalUncostedSampler(t *testing.T) {
	plan := agg(&lplan.Sample{Input: scan(col(1, "a"))}, 1)
	expectRules(t, New().CheckLogical(plan), "sampler-def")
}

func TestLogicalProbabilityCap(t *testing.T) {
	plan := agg(uniform(scan(col(1, "a")), 0.5), 1)
	expectRules(t, New().CheckLogical(plan), "sampler-p")
}

func TestLogicalSamplerSupport(t *testing.T) {
	s := &lplan.Sample{
		Input: scan(col(1, "a")),
		Def:   &lplan.SamplerDef{Type: lplan.SamplerDistinct, P: 0.05, Cols: []lplan.ColumnID{7}, Delta: 3},
	}
	expectRules(t, New().CheckLogical(agg(s, 1)), "sampler-support")
}

func TestLogicalNestedSamplers(t *testing.T) {
	inner := uniform(scan(col(1, "a")), 0.05)
	outer := uniform(inner, 0.05)
	expectRules(t, New().CheckLogical(agg(outer, 1)), "nested-sampler")
}

func TestLogicalSamplerWithoutAggregate(t *testing.T) {
	plan := &lplan.Sort{Input: uniform(scan(col(1, "a")), 0.05), Keys: []lplan.SortKey{{Col: 1}}}
	expectRules(t, New().CheckLogical(plan), "sampler-dominance")
}

func TestLogicalSortBetweenSamplerAndAggregate(t *testing.T) {
	sorted := &lplan.Sort{Input: uniform(scan(col(1, "a")), 0.05), Keys: []lplan.SortKey{{Col: 1}}}
	expectRules(t, New().CheckLogical(agg(sorted, 1)), "sampler-dominance")
}

func TestLogicalUniversePropagation(t *testing.T) {
	base := scan(col(1, "a"), col(2, "b"))
	univ := &lplan.Sample{
		Input: base,
		Def:   &lplan.SamplerDef{Type: lplan.SamplerUniverse, P: 0.05, Cols: []lplan.ColumnID{2}, Seed: 9},
	}
	// The projection drops column 2, severing the subspace identity.
	proj := &lplan.Project{
		Input: univ,
		Exprs: []lplan.Expr{&lplan.ColRef{ID: 1, Name: "a", Kind: table.KindInt}},
		Cols:  []lplan.ColumnInfo{col(1, "a")},
	}
	expectRules(t, New().CheckLogical(agg(proj, 1)), "universe-propagation")
}

func TestLogicalUniverseGroupDisagreement(t *testing.T) {
	mk := func(p float64, c lplan.ColumnID) *lplan.Sample {
		return &lplan.Sample{
			Input: scan(col(c, "k")),
			Def:   &lplan.SamplerDef{Type: lplan.SamplerUniverse, P: p, Cols: []lplan.ColumnID{c}, Seed: 7},
		}
	}
	j := &lplan.Join{
		Left: mk(0.05, 1), Right: mk(0.02, 2),
		LeftKeys: []lplan.ColumnID{1}, RightKeys: []lplan.ColumnID{2},
	}
	expectRules(t, New().CheckLogical(agg(j, 1)), "universe-group")
}

func TestLogicalUniversePairColumnsMismatch(t *testing.T) {
	// Both sides share seed 7 and probability, but the right side
	// universe-samples a column the join keys do not identify with the
	// left side's.
	left := &lplan.Sample{
		Input: scan(col(1, "k")),
		Def:   &lplan.SamplerDef{Type: lplan.SamplerUniverse, P: 0.05, Cols: []lplan.ColumnID{1}, Seed: 7},
	}
	right := &lplan.Sample{
		Input: scan(col(2, "k"), col(3, "other")),
		Def:   &lplan.SamplerDef{Type: lplan.SamplerUniverse, P: 0.05, Cols: []lplan.ColumnID{3}, Seed: 7},
	}
	j := &lplan.Join{
		Left: left, Right: right,
		LeftKeys: []lplan.ColumnID{1}, RightKeys: []lplan.ColumnID{2},
	}
	expectRules(t, New().CheckLogical(agg(j, 1)), "universe-pair")
}

func TestLogicalWeightedScanNeedsAggregate(t *testing.T) {
	weighted := &lplan.Scan{Table: "t", Cols: []lplan.ColumnInfo{col(1, "a")}, WeightColumn: "_w"}
	plan := &lplan.Limit{Input: weighted, N: 10}
	expectRules(t, New().CheckLogical(plan), "weight-propagation")

	if vs := New().CheckLogical(agg(weighted, 1)); len(vs) != 0 {
		t.Fatalf("weighted scan under aggregate flagged: %v", vs)
	}
}

// --- physical-plan fixtures -----------------------------------------

func ptable() *table.Table {
	return table.New("t", table.NewSchema(table.Column{Name: "a", Kind: table.KindInt}), 1)
}

func pscan(cols ...lplan.ColumnInfo) *exec.PScan {
	idx := make([]int, len(cols))
	return &exec.PScan{Tbl: ptable(), OutCols: cols, ColIdx: idx, WeightIdx: -1}
}

func pagg(in exec.PNode, top bool, groups ...lplan.ColumnID) *exec.PHashAgg {
	infos := make([]lplan.ColumnInfo, len(groups))
	for i, g := range groups {
		infos[i] = col(g, "g")
	}
	return &exec.PHashAgg{
		In: in, GroupCols: groups, GroupInfo: infos,
		Aggs: []lplan.AggSpec{{Kind: lplan.AggCount, Out: col(99, "cnt")}},
		Top:  top,
	}
}

func TestPhysicalCleanPlanPasses(t *testing.T) {
	src := pscan(col(1, "a"))
	samp := &exec.PSample{In: src, Def: lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.05}, Seed: 1}
	plan := pagg(&exec.PExchange{In: samp, Keys: []lplan.ColumnID{1}, Parts: 4}, true, 1)
	plan.Est = &exec.EstimatorConfig{Type: lplan.SamplerUniform, P: 0.05}
	if vs := New().CheckPhysical(plan); len(vs) != 0 {
		t.Fatalf("clean physical plan flagged: %v", vs)
	}
	if err := Physical(plan); err != nil {
		t.Fatalf("Physical: %v", err)
	}
}

func TestPhysicalSortNeedsGather(t *testing.T) {
	plan := &exec.PSort{In: pscan(col(1, "a")), Keys: []lplan.SortKey{{Col: 1}}}
	expectRules(t, New().CheckPhysical(plan), "p-breaker")
}

func TestPhysicalAggExchangeKeysMismatch(t *testing.T) {
	src := pscan(col(1, "a"), col(2, "b"))
	plan := pagg(&exec.PExchange{In: src, Keys: []lplan.ColumnID{2}, Parts: 4}, true, 1)
	expectRules(t, New().CheckPhysical(plan), "p-breaker")
}

func TestPhysicalJoinCoPartitioning(t *testing.T) {
	l := pscan(col(1, "a"))
	r := pscan(col(2, "b"))
	j := &exec.PHashJoin{
		Kind: lplan.InnerJoin,
		Left: &exec.PExchange{In: l, Keys: []lplan.ColumnID{1}, Parts: 4},
		// Wrong partition count on the build side.
		Right:    &exec.PExchange{In: r, Keys: []lplan.ColumnID{2}, Parts: 8},
		LeftKeys: []lplan.ColumnID{1}, RightKeys: []lplan.ColumnID{2},
	}
	expectRules(t, New().CheckPhysical(j), "p-breaker")
}

func TestPhysicalExchangeKeyMissing(t *testing.T) {
	plan := &exec.PExchange{In: pscan(col(1, "a")), Keys: []lplan.ColumnID{9}, Parts: 4}
	expectRules(t, New().CheckPhysical(plan), "p-exchange")
}

func TestPhysicalEstimatorOnNonTopAgg(t *testing.T) {
	inner := pagg(&exec.PExchange{In: pscan(col(1, "a")), Keys: []lplan.ColumnID{1}, Parts: 2}, false, 1)
	inner.Est = &exec.EstimatorConfig{Type: lplan.SamplerUniform, P: 0.05}
	outer := pagg(&exec.PExchange{In: inner, Keys: []lplan.ColumnID{1}, Parts: 2}, true, 1)
	expectRules(t, New().CheckPhysical(outer), "p-estimator")
}

func TestPhysicalSharedUniverseMissing(t *testing.T) {
	mk := func(c lplan.ColumnID) *exec.PSample {
		return &exec.PSample{
			In:  pscan(col(c, "k")),
			Def: lplan.SamplerDef{Type: lplan.SamplerUniverse, P: 0.05, Cols: []lplan.ColumnID{c}, Seed: 7},
		}
	}
	j := &exec.PHashJoin{
		Kind: lplan.InnerJoin,
		Left: &exec.PExchange{In: mk(1), Keys: []lplan.ColumnID{1}, Parts: 2},
		Right: &exec.PExchange{
			In: mk(2), Keys: []lplan.ColumnID{2}, Parts: 2,
		},
		LeftKeys: []lplan.ColumnID{1}, RightKeys: []lplan.ColumnID{2},
		// SharedUniverseP left 0: the §4.1.3 weight correction is missing.
	}
	plan := pagg(&exec.PExchange{In: j, Parts: 1}, true)
	expectRules(t, New().CheckPhysical(plan), "p-shared-universe")
}

func TestPhysicalNestedSamplers(t *testing.T) {
	inner := &exec.PSample{In: pscan(col(1, "a")), Def: lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.05}}
	outer := &exec.PSample{In: inner, Def: lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.05}}
	plan := pagg(&exec.PExchange{In: outer, Parts: 1}, true)
	expectRules(t, New().CheckPhysical(plan), "p-nested-sampler")
}

func TestPhysicalWeightPropagation(t *testing.T) {
	ws := pscan(col(1, "a"))
	ws.WeightIdx = 0
	plan := &exec.PLimit{In: &exec.PExchange{In: ws, Parts: 1}, N: 5}
	expectRules(t, New().CheckPhysical(plan), "p-weight-propagation")
}

func TestPhysicalSamplerProbabilityCap(t *testing.T) {
	s := &exec.PSample{In: pscan(col(1, "a")), Def: lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.9}}
	plan := pagg(&exec.PExchange{In: s, Parts: 1}, true)
	expectRules(t, New().CheckPhysical(plan), "p-sampler-p")
}

// prunedTable has 4 partitions of a low-cardinality int column, so the
// per-partition summaries certify it completely.
func prunedTable() *table.Table {
	tbl := table.New("pt", table.NewSchema(table.Column{Name: "a", Kind: table.KindInt}), 4)
	for i := 0; i < 80; i++ {
		tbl.Append(i, table.Row{table.NewInt(int64(i % 5))})
	}
	return tbl
}

// prunedScan keeps partitions 0 (certainty) and 2 (tail, inflated 2×)
// out of 4.
func prunedScan() *exec.PScan {
	return &exec.PScan{
		Tbl: prunedTable(), OutCols: []lplan.ColumnInfo{col(1, "a")},
		ColIdx: []int{0}, WeightIdx: -1,
		Prune: &exec.PrunedScan{
			Keep: []int{0, 2}, Inflate: []float64{1, 2},
			Pruned: 2, TailP: 0.5, TailTotal: 2,
		},
	}
}

func prunedPlan(src *exec.PScan, samplerCols ...lplan.ColumnID) *exec.PHashAgg {
	samp := &exec.PSample{
		In:   src,
		Def:  lplan.SamplerDef{Type: lplan.SamplerDistinct, P: 0.05, Cols: samplerCols, Delta: 1},
		Seed: 1,
	}
	plan := pagg(&exec.PExchange{In: samp, Keys: []lplan.ColumnID{1}, Parts: 2}, true, 1)
	plan.Est = &exec.EstimatorConfig{
		Type: lplan.SamplerDistinct, P: 0.05,
		PartP: 0.5, PartTail: 1, PartTailFrac: 0.5,
	}
	return plan
}

func TestPhysicalPruningCleanPlanPasses(t *testing.T) {
	if vs := New().CheckPhysical(prunedPlan(prunedScan(), 1)); len(vs) != 0 {
		t.Fatalf("clean pruned plan flagged: %v", vs)
	}
}

func TestPhysicalPruningNeedsSampler(t *testing.T) {
	src := prunedScan()
	plan := pagg(&exec.PExchange{In: src, Keys: []lplan.ColumnID{1}, Parts: 2}, true, 1)
	plan.Est = &exec.EstimatorConfig{Type: lplan.SamplerUniform, P: 0.05, PartP: 0.5, PartTail: 1, PartTailFrac: 0.5}
	expectRules(t, New().CheckPhysical(plan), "p-prune")
}

func TestPhysicalPruningMalformedSubset(t *testing.T) {
	src := prunedScan()
	src.Prune.Keep = []int{2, 0}       // not ascending
	src.Prune.Inflate = []float64{0.5} // misaligned and deflating
	expectRules(t, New().CheckPhysical(prunedPlan(src, 1)), "p-prune")
}

func TestPhysicalPruningInflationBelowOne(t *testing.T) {
	src := prunedScan()
	src.Prune.Inflate = []float64{1, 0.25}
	expectRules(t, New().CheckPhysical(prunedPlan(src, 1)), "p-prune")
}

func TestPhysicalPruningSummariesMustDominate(t *testing.T) {
	src := prunedScan()
	// Overwrite the table with unique keys per row: per-partition
	// distinct counts blow the exact-summary budget, so no partition
	// summary can certify the sampler's stratification column.
	src.Tbl = table.New("pt", table.NewSchema(table.Column{Name: "a", Kind: table.KindInt}), 4)
	for i := 0; i < 4096; i++ {
		src.Tbl.Append(i, table.Row{table.NewInt(int64(i))})
	}
	expectRules(t, New().CheckPhysical(prunedPlan(src, 1)), "p-prune")
}

func TestPhysicalPruningInflationMismatch(t *testing.T) {
	plan := prunedPlan(prunedScan(), 1)
	plan.Est.PartP = 0.25 // disagrees with the scan's TailP=0.5
	expectRules(t, New().CheckPhysical(plan), "p-prune-inflation")
}

func TestPhysicalPruningNeedsEstimatorAggregate(t *testing.T) {
	src := prunedScan()
	samp := &exec.PSample{In: src, Def: lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.05}, Seed: 1}
	plan := &exec.PLimit{In: &exec.PExchange{In: samp, Parts: 1}, N: 5}
	// The sampler also trips weight propagation: both rules report the
	// same root cause (no aggregate consumes the weighted stream).
	expectRules(t, New().CheckPhysical(plan), "p-prune-inflation", "p-weight-propagation")
}

func TestViolationFormatting(t *testing.T) {
	err := asError([]Violation{{Rule: "r", Node: "n", Detail: "d"}})
	if err == nil || !strings.Contains(err.Error(), "r: n: d") {
		t.Fatalf("asError formatting: %v", err)
	}
	withPath := Violation{Rule: "r", Node: "n", Detail: "d", Path: "Root > n"}
	if got := withPath.String(); got != "r: n: d (path: Root > n)" {
		t.Fatalf("path formatting: %q", got)
	}
}

// TestLogicalViolationPath: a violation reported deep in the plan
// carries the full root→node operator chain, so two look-alike
// operators in different branches are distinguishable.
func TestLogicalViolationPath(t *testing.T) {
	base := scan(col(1, "a"))
	s := uniform(base, 0.5) // probability above the cap
	plan := agg(s, 1)
	vs := New().CheckLogical(plan)
	expectRules(t, vs, "sampler-p")
	wantPath := plan.Describe() + " > " + s.Describe()
	if vs[0].Path != wantPath {
		t.Errorf("violation path %q, want %q", vs[0].Path, wantPath)
	}
	if !strings.Contains(vs[0].String(), "(path: "+wantPath+")") {
		t.Errorf("String() does not include the path: %s", vs[0])
	}
}

// TestPhysicalViolationPath: same contract on the compiled plan.
func TestPhysicalViolationPath(t *testing.T) {
	src := pscan(col(1, "a"))
	samp := &exec.PSample{In: src, Def: lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.5}, Seed: 1}
	ex := &exec.PExchange{In: samp, Keys: []lplan.ColumnID{1}, Parts: 4}
	plan := pagg(ex, true, 1)
	plan.Est = &exec.EstimatorConfig{Type: lplan.SamplerUniform, P: 0.05}
	vs := New().CheckPhysical(plan)
	expectRules(t, vs, "p-sampler-p")
	wantPath := strings.Join([]string{plan.Describe(), ex.Describe(), samp.Describe()}, " > ")
	if vs[0].Path != wantPath {
		t.Errorf("violation path %q, want %q", vs[0].Path, wantPath)
	}
}
