package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"quickr"
	"quickr/internal/metrics"
	"quickr/internal/testutil"
)

// newTestEngine builds an engine with one table of n rows: k = i%53,
// v = i.
func newTestEngine(t *testing.T, n int) *quickr.Engine {
	t.Helper()
	eng := quickr.New()
	if err := eng.CreateTable("t", []quickr.Column{
		{Name: "k", Type: quickr.Int},
		{Name: "v", Type: quickr.Float},
	}, 8); err != nil {
		t.Fatal(err)
	}
	rows := make([][]any, n)
	for i := 0; i < n; i++ {
		rows[i] = []any{i % 53, float64(i)}
	}
	if err := eng.Insert("t", rows); err != nil {
		t.Fatal(err)
	}
	return eng
}

type testClient struct {
	t    *testing.T
	base string
	c    *http.Client
}

func newTestClient(t *testing.T, srv *Server) *testClient {
	ts := httptest.NewServer(srv.Handler())
	c := &testClient{t: t, base: ts.URL, c: ts.Client()}
	t.Cleanup(func() {
		c.c.CloseIdleConnections()
		ts.Close()
	})
	return c
}

func (c *testClient) do(method, path string, body any, out any) int {
	c.t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			c.t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, c.base+path, &buf)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.c.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func (c *testClient) submit(sql, mode string) string {
	c.t.Helper()
	var resp submitResponse
	code := c.do(http.MethodPost, "/query", submitRequest{SQL: sql, Mode: mode}, &resp)
	if code != http.StatusAccepted || resp.ID == "" {
		c.t.Fatalf("submit: code=%d resp=%+v", code, resp)
	}
	return resp.ID
}

func (c *testClient) status(id string) statusResponse {
	c.t.Helper()
	var st statusResponse
	if code := c.do(http.MethodGet, "/query/"+id, nil, &st); code != http.StatusOK {
		c.t.Fatalf("status %s: code=%d", id, code)
	}
	return st
}

// wait polls until the query leaves "running" (fails the test after a
// generous deadline).
func (c *testClient) wait(id string) statusResponse {
	c.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := c.status(id)
		if st.Status != "running" {
			return st
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("query %s still running after 60s", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestServiceSubmitStatusResult(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := newTestEngine(t, 5000)
	c := newTestClient(t, New(eng))

	id := c.submit("SELECT k, SUM(v) FROM t GROUP BY k", "exact")
	st := c.wait(id)
	if st.Status != "done" {
		t.Fatalf("status %q (err=%q), want done", st.Status, st.Error)
	}
	if st.Result == nil || len(st.Result.Rows) != 53 {
		t.Fatalf("result missing or wrong: %+v", st.Result)
	}
	if len(st.Result.Columns) != 2 {
		t.Fatalf("columns %v", st.Result.Columns)
	}
	if st.Result.Report == nil || st.Result.Report.Metrics.AdmittedBytes <= 0 {
		t.Fatalf("run report missing admission telemetry: %+v", st.Result.Report)
	}
	if len(st.Result.Estimates) != 53 {
		t.Fatalf("estimates carry %d groups, want 53", len(st.Result.Estimates))
	}
}

// Approx queries report error bars (CI95 per aggregate) in the result.
func TestServiceApproxCarriesErrorBars(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := newTestEngine(t, 20000)
	c := newTestClient(t, New(eng))

	id := c.submit("SELECT k, SUM(v) FROM t GROUP BY k", "approx")
	st := c.wait(id)
	if st.Status != "done" {
		t.Fatalf("status %q (err=%q)", st.Status, st.Error)
	}
	if st.Mode != "approx" {
		t.Fatalf("mode %q", st.Mode)
	}
	if st.Result == nil || len(st.Result.Estimates) == 0 {
		t.Fatal("no estimates in approx result")
	}
	for _, g := range st.Result.Estimates {
		if len(g.CI95) != 1 || len(g.StdErr) != 1 {
			t.Fatalf("estimate missing error bars: %+v", g)
		}
	}
}

// The acceptance bar: the service answers concurrent submit / status /
// cancel traffic, every query reaching a terminal state.
func TestServiceConcurrentTraffic(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := newTestEngine(t, 20000)
	c := newTestClient(t, New(eng))

	const n = 24
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mode := "exact"
			if i%2 == 1 {
				mode = "approx"
			}
			sql := fmt.Sprintf("SELECT k, SUM(v), COUNT(*) FROM t WHERE v > %d GROUP BY k", i*10)
			ids[i] = c.submit(sql, mode)
		}(i)
	}
	wg.Wait()

	canceled := map[int]bool{}
	for i := 0; i < n; i += 5 {
		// Cancel a fifth of the queries mid-flight (or after they finish
		// — both are legal; the terminal state differs).
		c.do(http.MethodPost, "/query/"+ids[i]+"/cancel", nil, nil)
		canceled[i] = true
	}

	for i, id := range ids {
		st := c.wait(id)
		switch st.Status {
		case "done":
			if st.Result == nil || len(st.Result.Rows) == 0 {
				t.Fatalf("query %d done with no rows", i)
			}
		case "canceled":
			if !canceled[i] {
				t.Fatalf("query %d canceled but never asked to be", i)
			}
			if st.Error == "" {
				t.Fatalf("canceled query %d carries no error", i)
			}
		default:
			t.Fatalf("query %d ended %q (err=%q)", i, st.Status, st.Error)
		}
	}
}

// A canceled long query reaches "canceled" with the typed error text,
// while a concurrent query completes unaffected.
func TestServiceCancelRunningQuery(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := newTestEngine(t, 300000)
	eng.SetBatchSize(32) // many batch boundaries → prompt cancellation
	c := newTestClient(t, New(eng))

	victim := c.submit("SELECT k, SUM(v), COUNT(*) FROM t GROUP BY k", "exact")
	bystander := c.submit("SELECT COUNT(*) FROM t WHERE k < 5", "exact")
	if code := c.do(http.MethodPost, "/query/"+victim+"/cancel", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel: code=%d", code)
	}
	st := c.wait(victim)
	if st.Status != "canceled" {
		t.Fatalf("victim ended %q (err=%q), want canceled", st.Status, st.Error)
	}
	if st.Error != quickr.ErrCanceled.Error() {
		t.Fatalf("victim error %q, want %q", st.Error, quickr.ErrCanceled)
	}
	if by := c.wait(bystander); by.Status != "done" {
		t.Fatalf("bystander ended %q (err=%q)", by.Status, by.Error)
	}
}

func TestServiceMetricsEndpoint(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := newTestEngine(t, 2000)
	c := newTestClient(t, New(eng))
	id := c.submit("SELECT COUNT(*) FROM t", "exact")
	c.wait(id)

	var g metrics.GaugeSnapshot
	if code := c.do(http.MethodGet, "/metrics", nil, &g); code != http.StatusOK {
		t.Fatalf("metrics: code=%d", code)
	}
	if g.PoolWorkers < 1 {
		t.Fatalf("gauges report %d pool workers", g.PoolWorkers)
	}
	if g.PoolCompletedTasks < 1 {
		t.Fatalf("no completed pool tasks recorded: %+v", g)
	}
}

func TestServiceBadRequests(t *testing.T) {
	eng := newTestEngine(t, 100)
	c := newTestClient(t, New(eng))
	if code := c.do(http.MethodGet, "/query/nosuch", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown id: code=%d", code)
	}
	var out map[string]string
	if code := c.do(http.MethodPost, "/query", submitRequest{SQL: "SELECT 1", Mode: "turbo"}, &out); code != http.StatusBadRequest {
		t.Fatalf("bad mode: code=%d", code)
	}
	if code := c.do(http.MethodPost, "/query", submitRequest{SQL: "   "}, &out); code != http.StatusBadRequest {
		t.Fatalf("empty sql: code=%d", code)
	}
	if code := c.do(http.MethodGet, "/query", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: code=%d", code)
	}
	// A parse error surfaces as a terminal "error" status, not a hang.
	id := c.submit("SELEC nonsense", "exact")
	if st := c.wait(id); st.Status != "error" || st.Error == "" {
		t.Fatalf("parse failure ended %q (err=%q)", st.Status, st.Error)
	}
}
