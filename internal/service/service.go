// Package service exposes a quickr Engine over HTTP/JSON: a small
// asynchronous query service with submit, status, cancel and result
// endpoints plus process-wide gauges, so one engine can serve many
// concurrent clients through the shared worker pool and the byte-budget
// admission gate.
//
// Endpoints:
//
//	POST /query               {"sql": "...", "mode": "exact"|"approx"} → {"id": "..."}
//	GET  /query/{id}          status; includes the result (with error bars) once done
//	POST /query/{id}/cancel   cancel a queued or running query
//	GET  /metrics             process-wide pool/admission/cache gauges
//	GET  /debug/pprof/        live CPU/heap/goroutine profiles (net/http/pprof)
//
// A submitted query runs on its own goroutine under a cancellable
// context; cancellation takes effect within one executor batch boundary
// (the query returns quickr.ErrCanceled and its status becomes
// "canceled"). Results are kept until the server is discarded — the
// service is a harness for interactive and test traffic, not a durable
// job store.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"quickr"
	"quickr/internal/metrics"
)

// Server is the HTTP query service over one Engine.
type Server struct {
	eng *quickr.Engine

	mu sync.Mutex
	// guarded-by: mu
	nextID uint64
	// guarded-by: mu
	queries map[string]*query
}

// query tracks one submitted query through its lifecycle.
type query struct {
	id     string
	sql    string
	approx bool
	cancel context.CancelFunc

	mu sync.Mutex
	// guarded-by: mu
	status string // "running" | "done" | "error" | "canceled"
	// guarded-by: mu
	res *quickr.Result
	// guarded-by: mu
	err       error
	submitted time.Time
	// guarded-by: mu
	finished time.Time

	done chan struct{}
}

// New builds a Server over the engine.
func New(eng *quickr.Engine) *Server {
	return &Server{eng: eng, queries: map[string]*query{}}
}

// Handler returns the HTTP handler serving the query API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleSubmit)
	mux.HandleFunc("/query/", s.handleQuery)
	mux.HandleFunc("/metrics", s.handleMetrics)
	// Live profiling of a serving engine: `go tool pprof
	// host/debug/pprof/profile` against the hash-path hot loops. Routed
	// explicitly so the service never depends on http.DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// submitRequest is the POST /query body.
type submitRequest struct {
	SQL  string `json:"sql"`
	Mode string `json:"mode"` // "exact" (default) or "approx"
}

// submitResponse is the POST /query reply.
type submitResponse struct {
	ID string `json:"id"`
}

// estimateJSON is one aggregated group with its error bars.
type estimateJSON struct {
	Key        []any     `json:"key"`
	Values     []any     `json:"values"`
	StdErr     []float64 `json:"stderr"`
	CI95       []float64 `json:"ci95"`
	SampleRows int64     `json:"sample_rows"`
}

// resultJSON is the completed-query payload inside a status response.
type resultJSON struct {
	Columns   []string          `json:"columns"`
	Rows      [][]any           `json:"rows"`
	Estimates []estimateJSON    `json:"estimates,omitempty"`
	Report    *quickr.RunReport `json:"report"`
	// Contract is the accuracy/latency contract outcome, present only
	// for contract-bearing queries.
	Contract *quickr.ContractReport `json:"contract,omitempty"`
}

// statusResponse is the GET /query/{id} (and cancel) reply.
type statusResponse struct {
	ID      string      `json:"id"`
	SQL     string      `json:"sql"`
	Mode    string      `json:"mode"`
	Status  string      `json:"status"`
	Error   string      `json:"error,omitempty"`
	Seconds float64     `json:"seconds"`
	Result  *resultJSON `json:"result,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST /query")
		return
	}
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		httpError(w, http.StatusBadRequest, "empty sql")
		return
	}
	var approx bool
	switch req.Mode {
	case "", "exact":
	case "approx":
		approx = true
	default:
		httpError(w, http.StatusBadRequest, `mode must be "exact" or "approx"`)
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	q := &query{
		sql:       req.SQL,
		approx:    approx,
		cancel:    cancel,
		status:    "running",
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	s.mu.Lock()
	s.nextID++
	q.id = fmt.Sprintf("q%d", s.nextID)
	s.queries[q.id] = q
	s.mu.Unlock()

	go s.run(ctx, q)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(submitResponse{ID: q.id})
}

// run executes the query and records its outcome.
func (s *Server) run(ctx context.Context, q *query) {
	defer q.cancel()
	var res *quickr.Result
	var err error
	if q.approx {
		res, err = s.eng.ExecApproxContext(ctx, q.sql)
	} else {
		res, err = s.eng.ExecContext(ctx, q.sql)
	}
	q.mu.Lock()
	q.res, q.err = res, err
	q.finished = time.Now()
	switch {
	case err == nil:
		q.status = "done"
	case errors.Is(err, quickr.ErrCanceled) || errors.Is(err, quickr.ErrDeadline):
		q.status = "canceled"
	default:
		q.status = "error"
	}
	q.mu.Unlock()
	close(q.done)
}

// handleQuery dispatches GET /query/{id} and POST /query/{id}/cancel.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/query/")
	id, action, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	q := s.queries[id]
	s.mu.Unlock()
	if q == nil {
		httpError(w, http.StatusNotFound, "unknown query "+id)
		return
	}
	switch {
	case action == "" && r.Method == http.MethodGet:
		s.writeStatus(w, q)
	case action == "cancel" && r.Method == http.MethodPost:
		q.cancel()
		s.writeStatus(w, q)
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET /query/{id} or POST /query/{id}/cancel")
	}
}

func (s *Server) writeStatus(w http.ResponseWriter, q *query) {
	q.mu.Lock()
	resp := statusResponse{ID: q.id, SQL: q.sql, Mode: "exact", Status: q.status}
	if q.approx {
		resp.Mode = "approx"
	}
	end := q.finished
	if end.IsZero() {
		end = time.Now()
	}
	resp.Seconds = end.Sub(q.submitted).Seconds()
	if q.err != nil {
		resp.Error = q.err.Error()
	}
	if q.status == "done" && q.res != nil {
		rj := &resultJSON{
			Columns:  q.res.Columns,
			Rows:     q.res.Rows,
			Report:   q.res.RunReport(q.sql, q.approx),
			Contract: q.res.ContractReport(),
		}
		for _, g := range q.res.Estimates {
			rj.Estimates = append(rj.Estimates, estimateJSON{
				Key:        g.Key,
				Values:     g.Values,
				StdErr:     g.StdErr,
				CI95:       g.CI95,
				SampleRows: g.SampleRows,
			})
		}
		resp.Result = rj
	}
	q.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleMetrics serves the process-wide gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET /metrics")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(metrics.Gauges())
}

// Wait blocks until the query finishes (test hook; also used by the
// CLI's graceful shutdown).
func (s *Server) Wait(id string) bool {
	s.mu.Lock()
	q := s.queries[id]
	s.mu.Unlock()
	if q == nil {
		return false
	}
	<-q.done
	return true
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
