package table

import (
	"fmt"
	"sync"
	"testing"
)

// colRows builds a row set exercising every columnar representation:
// typed int/float/string/bool columns with and without NULLs, an
// all-NULL column, a mixed-kind (Any) column, and a short row.
func colRows(n int) []Row {
	rows := make([]Row, 0, n)
	for i := 0; i < n; i++ {
		iv := NewInt(int64(i - n/2))
		fv := NewFloat(float64(i) / 7)
		sv := NewString(fmt.Sprintf("s%03d", i%200))
		bv := NewBool(i%2 == 0)
		var mv Value
		switch i % 3 {
		case 1:
			mv = NewInt(int64(i))
		case 2:
			mv = NewString("mix")
		}
		if i%5 == 0 {
			iv = Value{}
		}
		if i%7 == 0 {
			sv = Value{}
		}
		row := Row{iv, fv, sv, bv, Value{}, mv}
		if i == n-1 {
			row = row[:3] // short row: trailing columns read as NULL
		}
		rows = append(rows, row)
	}
	return rows
}

// Columnarize must reconstruct every lane bit-identically to the rows,
// including NULLs, the all-NULL column, mixed-kind columns and padded
// short rows.
func TestColumnarizeRoundTrip(t *testing.T) {
	const width = 6
	rows := colRows(300)
	cp := Columnarize(rows, width)
	if cp.NumRows != len(rows) {
		t.Fatalf("NumRows=%d, want %d", cp.NumRows, len(rows))
	}
	for c := 0; c < width; c++ {
		cv := &cp.Cols[c]
		if cv.Len() != len(rows) {
			t.Fatalf("col %d Len=%d, want %d", c, cv.Len(), len(rows))
		}
		for i, r := range rows {
			want := Null
			if c < len(r) {
				want = r[c]
			}
			got := cv.Value(i)
			if want.IsNull() != got.IsNull() || want.IsNull() != cv.IsNull(i) ||
				(!want.IsNull() && CompareRows(Row{want}, Row{got}) != 0) {
				t.Fatalf("col %d lane %d: got %v, want %v", c, i, got, want)
			}
		}
	}
	// Representation spot checks: the typed columns must actually be
	// typed, the mixed one Any, the empty one KindNull.
	if cp.Cols[0].Kind != KindInt || cp.Cols[0].Nulls == nil {
		t.Fatalf("int column repr: %+v", cp.Cols[0].Kind)
	}
	if cp.Cols[1].Kind != KindFloat || cp.Cols[1].Nulls != nil {
		t.Fatal("float column should have no null bitmap")
	}
	distinct := map[string]bool{}
	for _, r := range rows {
		if len(r) > 2 && !r[2].IsNull() {
			distinct[r[2].Str()] = true
		}
	}
	if cp.Cols[2].Kind != KindString || len(cp.Cols[2].Dict) != len(distinct) {
		t.Fatalf("string dict size %d, want %d", len(cp.Cols[2].Dict), len(distinct))
	}
	if cp.Cols[4].Kind != KindNull {
		t.Fatal("all-null column should use KindNull repr")
	}
	if !cp.Cols[5].Any {
		t.Fatal("mixed column should degrade to Any")
	}
}

func TestColumnarizeEmptyPartition(t *testing.T) {
	cp := Columnarize(nil, 3)
	if cp.NumRows != 0 {
		t.Fatalf("NumRows=%d", cp.NumRows)
	}
	for c := range cp.Cols {
		if cp.Cols[c].Len() != 0 {
			t.Fatalf("col %d Len=%d", c, cp.Cols[c].Len())
		}
	}
}

// Table.Columnar must cache per partition and invalidate on Append.
func TestTableColumnarCacheInvalidation(t *testing.T) {
	sc := NewSchema(Column{Name: "a", Kind: KindInt})
	tbl := New("cc", sc, 2)
	tbl.Append(0, Row{NewInt(1)})
	cp1 := tbl.Columnar(0)
	if tbl.Columnar(0) != cp1 {
		t.Fatal("columnar form not cached")
	}
	tbl.Append(0, Row{NewInt(2)})
	cp2 := tbl.Columnar(0)
	if cp2 == cp1 {
		t.Fatal("Append did not invalidate the columnar cache")
	}
	if cp2.NumRows != 2 || cp2.Cols[0].Value(1).Int() != 2 {
		t.Fatalf("rebuilt partition wrong: %+v", cp2)
	}
	// The untouched partition keeps its own cache line independent.
	if tbl.Columnar(1).NumRows != 0 {
		t.Fatal("partition 1 should be empty")
	}
}

// Concurrent readers racing first-use columnarization must all observe
// a consistent column form (run with -race).
func TestTableColumnarConcurrent(t *testing.T) {
	sc := NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "s", Kind: KindString})
	tbl := New("ccr", sc, 8)
	for i := 0; i < 4000; i++ {
		tbl.Append(i, Row{NewInt(int64(i)), NewString(fmt.Sprintf("v%d", i%50))})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 0; p < 8; p++ {
				cp := tbl.Columnar(p)
				if cp.NumRows != len(tbl.Partitions[p]) {
					t.Errorf("partition %d: NumRows=%d, want %d", p, cp.NumRows, len(tbl.Partitions[p]))
					return
				}
				for i := 0; i < cp.NumRows; i += 97 {
					if !cp.Cols[0].Value(i).Equal(tbl.Partitions[p][i][0]) {
						t.Errorf("partition %d lane %d mismatch", p, i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// Appends racing cached scans (run with -race): Append shares one
// critical section with both cache invalidations, so a reader must
// never see a columnar form or summary whose row count disagrees with
// what it was built from — any snapshot it gets is internally
// consistent even while writes continue.
func TestTableAppendVsScanConcurrent(t *testing.T) {
	sc := NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "s", Kind: KindString})
	tbl := New("avs", sc, 4)
	for i := 0; i < 400; i++ {
		tbl.Append(i, Row{NewInt(int64(i)), NewString(fmt.Sprintf("v%d", i%10))})
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for i := 400; i < 4400; i++ {
			tbl.Append(i, Row{NewInt(int64(i)), NewString(fmt.Sprintf("v%d", i%10))})
		}
		close(done)
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) { // readers alternate columnar and summary scans
			defer wg.Done()
			for {
				for p := 0; p < 4; p++ {
					cp := tbl.Columnar(p)
					var lanes int
					for c := range cp.Cols {
						if l := cp.Cols[c].Len(); c == 0 {
							lanes = l
						} else if l != lanes {
							t.Errorf("partition %d: ragged columnar form (%d vs %d lanes)", p, l, lanes)
							return
						}
					}
					if cp.NumRows != lanes {
						t.Errorf("partition %d: NumRows=%d but %d lanes", p, cp.NumRows, lanes)
						return
					}
					ps := tbl.Summary(p)
					if ps.Cols[0].NonNull != int64(ps.NumRows) {
						t.Errorf("partition %d: summary NonNull=%d over %d rows", p, ps.Cols[0].NonNull, ps.NumRows)
						return
					}
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}(g)
	}
	wg.Wait()
	// After the writer drains, fresh scans must see every row.
	total := 0
	for p := 0; p < 4; p++ {
		total += tbl.Columnar(p).NumRows
		if tbl.Summary(p).NumRows != tbl.Columnar(p).NumRows {
			t.Fatalf("partition %d: summary and columnar disagree post-drain", p)
		}
	}
	if total != 4400 {
		t.Fatalf("post-drain rows=%d, want 4400", total)
	}
}
