package table

import (
	"fmt"
	"math"
	"testing"
)

// sumRows builds n rows of (int key with skew, float measure, string
// group with few distincts, occasional NULL measure).
func sumRows(n int) []Row {
	rows := make([]Row, 0, n)
	for i := 0; i < n; i++ {
		g := NewString(fmt.Sprintf("g%d", i%7))
		m := NewFloat(float64(i % 100))
		if i%11 == 0 {
			m = Value{}
		}
		rows = append(rows, Row{NewInt(int64(i)), m, g})
	}
	return rows
}

func TestBuildSummaryMoments(t *testing.T) {
	rows := sumRows(1000)
	ps := BuildSummary(rows, 3)
	if ps.NumRows != 1000 {
		t.Fatalf("NumRows=%d", ps.NumRows)
	}
	m := &ps.Cols[1]
	var wantSum float64
	var wantNonNull int64
	wantMin, wantMax := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		if r[1].IsNull() {
			continue
		}
		f := r[1].Float()
		wantSum += f
		wantNonNull++
		wantMin = math.Min(wantMin, f)
		wantMax = math.Max(wantMax, f)
	}
	if m.NonNull != wantNonNull || !m.Numeric {
		t.Fatalf("measure NonNull=%d Numeric=%v, want %d true", m.NonNull, m.Numeric, wantNonNull)
	}
	if math.Abs(m.Sum-wantSum) > 1e-9 || m.Min != wantMin || m.Max != wantMax {
		t.Fatalf("moments sum=%v min=%v max=%v, want %v %v %v", m.Sum, m.Min, m.Max, wantSum, wantMin, wantMax)
	}
	g := &ps.Cols[2]
	if g.Numeric {
		t.Fatal("string column reported numeric")
	}
	if !g.Complete || g.Distinct != 7 || len(g.Heavy) != 7 {
		t.Fatalf("group col: Complete=%v Distinct=%v Heavy=%d, want complete 7/7", g.Complete, g.Distinct, len(g.Heavy))
	}
	// Heavy frequencies over a complete low-cardinality column are exact.
	var hfreq int64
	for _, h := range g.Heavy {
		hfreq += h.Freq
	}
	if hfreq != 1000 {
		t.Fatalf("heavy freqs sum to %d, want 1000", hfreq)
	}
	// The int key is unique per row: too many distincts for exact mode.
	k := &ps.Cols[0]
	if k.Complete {
		t.Fatal("1000-distinct column should not be Complete")
	}
	if rel := math.Abs(k.Distinct-1000) / 1000; rel > 0.25 {
		t.Fatalf("key Distinct=%v too far from 1000", k.Distinct)
	}
}

func TestBuildSummaryEmpty(t *testing.T) {
	ps := BuildSummary(nil, 2)
	if ps.NumRows != 0 || len(ps.Cols) != 2 {
		t.Fatalf("%+v", ps)
	}
	c := &ps.Cols[0]
	if c.NonNull != 0 || !c.Complete || c.Distinct != 0 || len(c.Heavy) != 0 {
		t.Fatalf("empty column summary: %+v", c)
	}
}

// Summary must cache per partition and be invalidated by Append in the
// same critical section as the columnar cache.
func TestTableSummaryCacheInvalidation(t *testing.T) {
	sc := NewSchema(Column{Name: "a", Kind: KindInt})
	tbl := New("sc", sc, 2)
	tbl.Append(0, Row{NewInt(1)})
	s1 := tbl.Summary(0)
	cp1 := tbl.Columnar(0)
	if tbl.Summary(0) != s1 {
		t.Fatal("summary not cached")
	}
	tbl.Append(0, Row{NewInt(2)})
	s2 := tbl.Summary(0)
	cp2 := tbl.Columnar(0)
	if s2 == s1 || cp2 == cp1 {
		t.Fatal("Append must invalidate both summary and columnar caches")
	}
	if s2.NumRows != 2 || s2.Cols[0].Sum != 3 {
		t.Fatalf("rebuilt summary wrong: %+v", s2)
	}
	if tbl.Summary(1).NumRows != 0 {
		t.Fatal("partition 1 should be empty")
	}
}

func TestTableMergedColumn(t *testing.T) {
	sc := NewSchema(Column{Name: "g", Kind: KindString}, Column{Name: "m", Kind: KindFloat})
	tbl := New("mc", sc, 4)
	for i := 0; i < 800; i++ {
		tbl.Append(i, Row{NewString(fmt.Sprintf("g%d", i%5)), NewFloat(1)})
	}
	g := tbl.MergedColumn(0)
	if !g.Complete || g.Distinct != 5 || len(g.Heavy) != 5 {
		t.Fatalf("merged group col: Complete=%v Distinct=%v Heavy=%d", g.Complete, g.Distinct, len(g.Heavy))
	}
	if g.NonNull != 800 {
		t.Fatalf("merged NonNull=%d", g.NonNull)
	}
	m := tbl.MergedColumn(1)
	if !m.Numeric || m.Sum != 800 || m.Min != 1 || m.Max != 1 {
		t.Fatalf("merged measure: %+v", m)
	}
}

func BenchmarkSummaryBuild(b *testing.B) {
	rows := sumRows(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps := BuildSummary(rows, 3)
		if ps.NumRows != len(rows) {
			b.Fatal("bad summary")
		}
	}
}
