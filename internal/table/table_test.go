package table

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null, KindNull, "NULL"},
		{NewInt(42), KindInt, "42"},
		{NewInt(-7), KindInt, "-7"},
		{NewFloat(2.5), KindFloat, "2.5"},
		{NewString("abc"), KindString, "abc"},
		{NewBool(true), KindBool, "true"},
		{NewBool(false), KindBool, "false"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind %v want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("%v: string %q want %q", c.v, c.v.String(), c.str)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	if Null.Equal(Null) {
		t.Error("NULL must not equal NULL")
	}
	if Null.Equal(NewInt(0)) || NewInt(0).Equal(Null) {
		t.Error("NULL must not equal 0")
	}
	if Null.Compare(NewInt(-999)) != -1 {
		t.Error("NULL must sort first")
	}
	if !Add(Null, NewInt(1)).IsNull() {
		t.Error("NULL + 1 must be NULL")
	}
}

func TestCrossKindNumericEquality(t *testing.T) {
	if !NewInt(2).Equal(NewFloat(2.0)) {
		t.Error("2 must equal 2.0")
	}
	if NewInt(2).Compare(NewFloat(2.5)) != -1 {
		t.Error("2 < 2.5")
	}
	if NewInt(2).Key() != NewFloat(2.0).Key() {
		t.Error("map keys of 2 and 2.0 must collide (Equal consistency)")
	}
	if NewInt(2).Hash64() != NewFloat(2.0).Hash64() {
		t.Error("hashes of 2 and 2.0 must collide (Equal consistency)")
	}
}

func TestArithmetic(t *testing.T) {
	if got := Add(NewInt(2), NewInt(3)); got.Kind() != KindInt || got.Int() != 5 {
		t.Errorf("2+3 = %v", got)
	}
	if got := Div(NewInt(7), NewInt(2)); math.Abs(got.Float()-3.5) > 1e-12 {
		t.Errorf("7/2 = %v", got)
	}
	if !Div(NewInt(1), NewInt(0)).IsNull() {
		t.Error("division by zero must be NULL")
	}
	if got := Mod(NewInt(7), NewInt(3)); got.Int() != 1 {
		t.Errorf("7%%3 = %v", got)
	}
	if !Mod(NewFloat(7), NewInt(3)).IsNull() {
		t.Error("float mod must be NULL")
	}
	if got := Mul(NewInt(4), NewFloat(0.5)); got.Kind() != KindFloat || got.Float() != 2 {
		t.Errorf("4*0.5 = %v", got)
	}
}

// Property: Compare is antisymmetric and consistent with Equal for
// non-null numeric values.
func TestCompareProperties(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		c1, c2 := va.Compare(vb), vb.Compare(va)
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equal values have equal hashes and keys.
func TestHashKeyConsistency(t *testing.T) {
	f := func(x int64, s string) bool {
		a, b := NewInt(x), NewInt(x)
		if a.Hash64() != b.Hash64() || a.Key() != b.Key() {
			return false
		}
		sa, sb := NewString(s), NewString(s)
		return sa.Hash64() == sb.Hash64() && sa.Key() == sb.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTablePartitioning(t *testing.T) {
	sc := NewSchema(Column{Name: "a", Kind: KindInt})
	tbl := New("t", sc, 4)
	for i := 0; i < 10; i++ {
		tbl.Append(i, Row{NewInt(int64(i))})
	}
	if tbl.NumRows() != 10 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	if len(tbl.Partitions) != 4 {
		t.Fatalf("partitions = %d", len(tbl.Partitions))
	}
	if got := len(tbl.AllRows()); got != 10 {
		t.Fatalf("AllRows = %d", got)
	}
}

func TestCompareRowsLexicographic(t *testing.T) {
	a := Row{NewInt(1), NewString("b")}
	b := Row{NewInt(1), NewString("c")}
	if CompareRows(a, b) != -1 || CompareRows(b, a) != 1 || CompareRows(a, a) != 0 {
		t.Error("lexicographic row comparison broken")
	}
	short := Row{NewInt(1)}
	if CompareRows(short, a) != -1 {
		t.Error("shorter row must sort first on tie")
	}
}

func TestHashRowDependsOnlyOnIndexedCols(t *testing.T) {
	r1 := Row{NewInt(1), NewString("x"), NewFloat(9)}
	r2 := Row{NewInt(1), NewString("y"), NewFloat(8)}
	if HashRow(r1, []int{0}, 3) != HashRow(r2, []int{0}, 3) {
		t.Error("hash over col 0 must ignore other columns")
	}
	if HashRow(r1, []int{0}, 3) == HashRow(r1, []int{0}, 4) {
		t.Error("different seeds should give different hashes (overwhelmingly)")
	}
}

func TestSchemaIndex(t *testing.T) {
	sc := NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindString})
	if sc.Index("b") != 1 || sc.Index("missing") != -1 {
		t.Error("schema index lookup broken")
	}
	if sc.String() != "(a BIGINT, b VARCHAR)" {
		t.Errorf("schema string: %s", sc.String())
	}
}
