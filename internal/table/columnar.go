package table

// Columnar storage: a per-partition, column-major mirror of the stored
// rows. The vectorized executor (internal/exec) reads these directly so
// its scan kernels touch one typed slice per column instead of walking
// []Row. Columnarization is lazy and cached per partition; Append
// invalidates the affected partition's cache.

// ColVec is one stored column of a partition in columnar form.
//
// The representation is chosen per column from the data:
//   - Kind==KindInt: Ints holds the payload (0 for NULL lanes).
//   - Kind==KindFloat: Floats holds the payload.
//   - Kind==KindString: Ints holds dictionary codes into Dict.
//   - Kind==KindBool: Ints holds 0/1.
//   - Kind==KindNull: every lane is NULL; no payload is stored.
//   - Any==true: the column mixes kinds; Vals holds the exact values and
//     the typed fields are unused.
//
// Nulls is a little-endian bitmap (bit i set = lane i is NULL); nil when
// the column has no NULLs. It is unused when Any is set (Vals carries
// NULL lanes directly).
type ColVec struct {
	Kind   Kind
	Any    bool
	Ints   []int64
	Floats []float64
	Dict   []string
	Vals   []Value
	Nulls  []uint64
}

// Len returns the number of lanes in the column.
func (c *ColVec) Len() int {
	if c.Any {
		return len(c.Vals)
	}
	switch c.Kind {
	case KindFloat:
		return len(c.Floats)
	case KindNull:
		return nullLen(c)
	default:
		return len(c.Ints)
	}
}

// nullLen recovers the lane count of an all-NULL column from the bitmap.
func nullLen(c *ColVec) int { return int(c.Ints[0]) }

// IsNull reports whether lane i is NULL.
func (c *ColVec) IsNull(i int) bool {
	if c.Any {
		return c.Vals[i].IsNull()
	}
	if c.Kind == KindNull {
		return true
	}
	if c.Nulls == nil {
		return false
	}
	return c.Nulls[i>>6]&(1<<(uint(i)&63)) != 0
}

// Value reconstructs lane i as a Value, bit-identical to the stored row.
func (c *ColVec) Value(i int) Value {
	if c.Any {
		return c.Vals[i]
	}
	if c.Kind == KindNull || c.IsNull(i) {
		return Null
	}
	switch c.Kind {
	case KindInt:
		return NewInt(c.Ints[i])
	case KindFloat:
		return NewFloat(c.Floats[i])
	case KindString:
		return NewString(c.Dict[c.Ints[i]])
	case KindBool:
		return NewBool(c.Ints[i] != 0)
	}
	return Null
}

// ColPartition is one table partition in column-major form.
type ColPartition struct {
	NumRows int
	Cols    []ColVec
}

// Columnarize converts a row-major partition into column-major form.
// width is the schema width; short rows are padded with NULL lanes.
func Columnarize(rows []Row, width int) *ColPartition {
	cp := &ColPartition{NumRows: len(rows), Cols: make([]ColVec, width)}
	for c := 0; c < width; c++ {
		cp.Cols[c] = buildColVec(rows, c)
	}
	return cp
}

func buildColVec(rows []Row, c int) ColVec {
	n := len(rows)
	// First pass: find the column kind; degrade to Any on a mix.
	kind := KindNull
	mixed := false
	hasNull := false
	for _, r := range rows {
		v := colAt(r, c)
		if v.IsNull() {
			hasNull = true
			continue
		}
		if kind == KindNull {
			kind = v.Kind()
		} else if v.Kind() != kind {
			mixed = true
			break
		}
	}
	if mixed {
		vals := make([]Value, n)
		for i, r := range rows {
			vals[i] = colAt(r, c)
		}
		return ColVec{Any: true, Vals: vals}
	}
	if kind == KindNull {
		// All lanes NULL: store only the lane count.
		return ColVec{Kind: KindNull, Ints: []int64{int64(n)}}
	}
	cv := ColVec{Kind: kind}
	if hasNull {
		cv.Nulls = make([]uint64, (n+63)/64)
	}
	switch kind {
	case KindFloat:
		cv.Floats = make([]float64, n)
	default:
		cv.Ints = make([]int64, n)
	}
	var dictIdx map[string]int32
	if kind == KindString {
		dictIdx = make(map[string]int32)
	}
	for i, r := range rows {
		v := colAt(r, c)
		if v.IsNull() {
			cv.Nulls[i>>6] |= 1 << (uint(i) & 63)
			continue
		}
		switch kind {
		case KindInt:
			cv.Ints[i] = v.Int()
		case KindFloat:
			cv.Floats[i] = v.Float()
		case KindBool:
			if v.Bool() {
				cv.Ints[i] = 1
			}
		case KindString:
			s := v.Str()
			code, ok := dictIdx[s]
			if !ok {
				code = int32(len(cv.Dict))
				cv.Dict = append(cv.Dict, s)
				dictIdx[s] = code
			}
			cv.Ints[i] = int64(code)
		}
	}
	return cv
}

func colAt(r Row, c int) Value {
	if c >= len(r) {
		return Null
	}
	return r[c]
}

// Columnar returns the cached column-major form of partition i, building
// it on first use. Safe for concurrent use; Append invalidates the
// affected partition's cache.
func (t *Table) Columnar(i int) *ColPartition {
	t.cacheMu.Lock()
	defer t.cacheMu.Unlock()
	if t.colCache == nil {
		t.colCache = make([]*ColPartition, len(t.Partitions))
	}
	if cp := t.colCache[i]; cp != nil && cp.NumRows == len(t.Partitions[i]) {
		return cp
	}
	cp := Columnarize(t.Partitions[i], t.Schema.Len())
	t.colCache[i] = cp
	return cp
}

// EnsureColumnar eagerly builds the columnar form of every partition;
// used to warm caches before benchmarking columnar runs.
func (t *Table) EnsureColumnar() {
	for i := range t.Partitions {
		t.Columnar(i)
	}
}
