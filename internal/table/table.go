package table

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Row is one tuple: a slice of values positionally aligned with a schema.
type Row []Value

// Clone returns a deep-enough copy of the row (values are immutable).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// ByteSize approximates the serialized size of the row.
func (r Row) ByteSize() int {
	n := 0
	for _, v := range r {
		n += v.ByteSize()
	}
	return n
}

// Column describes one column of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered set of named, typed columns.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from (name, kind) pairs.
func NewSchema(cols ...Column) *Schema { return &Schema{Cols: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as "(a BIGINT, b VARCHAR)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// Table is an immutable in-memory table, horizontally split into
// partitions. Partitioning mimics the distributed file system layout:
// scans schedule one task per partition.
type Table struct {
	Name       string
	Schema     *Schema
	Partitions [][]Row

	// Lazily-built per-partition caches: a column-major mirror for the
	// vectorized executor (columnar.go) and summary statistics for the
	// optimizer's partition-selection pass (summary.go). One mutex
	// guards both so Append invalidates them atomically — a scan must
	// never observe a fresh columnar partition paired with a stale
	// summary or vice versa.
	cacheMu sync.Mutex
	// guarded-by: cacheMu
	colCache []*ColPartition
	// guarded-by: cacheMu
	sumCache []*PartitionSummary
	// version counts Appends; caches keyed outside the table (the
	// engine's sample cache) fold it into their keys so entries built
	// over older contents become unreachable. guarded-by: cacheMu
	version uint64
}

// New creates a table with the given number of empty partitions.
func New(name string, schema *Schema, parts int) *Table {
	if parts < 1 {
		parts = 1
	}
	return &Table{Name: name, Schema: schema, Partitions: make([][]Row, parts)}
}

// Append adds a row to partition i%len(partitions) (round-robin helper).
// The append and the invalidation of both derived caches share one
// critical section: a concurrent Columnar/Summary call can never pair
// the new row count with a stale cached form of either kind.
func (t *Table) Append(i int, r Row) {
	p := i % len(t.Partitions)
	t.cacheMu.Lock()
	t.Partitions[p] = append(t.Partitions[p], r)
	if t.colCache != nil {
		t.colCache[p] = nil
	}
	if t.sumCache != nil {
		t.sumCache[p] = nil
	}
	t.version++
	t.cacheMu.Unlock()
}

// Version returns the table's append counter. Externally-keyed caches
// (the engine's materialized-sample cache) embed it in their keys, the
// same invalidation discipline the per-partition caches above get from
// Append's in-place nil-out.
func (t *Table) Version() uint64 {
	t.cacheMu.Lock()
	defer t.cacheMu.Unlock()
	return t.version
}

// NumRows returns the total number of rows in the table.
func (t *Table) NumRows() int {
	n := 0
	for _, p := range t.Partitions {
		n += len(p)
	}
	return n
}

// ByteSize approximates the total stored bytes of the table.
func (t *Table) ByteSize() int64 {
	var n int64
	for _, p := range t.Partitions {
		for _, r := range p {
			n += int64(r.ByteSize())
		}
	}
	return n
}

// AllRows flattens the table into a single slice (test/debug helper).
func (t *Table) AllRows() []Row {
	out := make([]Row, 0, t.NumRows())
	for _, p := range t.Partitions {
		out = append(out, p...)
	}
	return out
}

// SortRows sorts a row slice lexicographically; used to compare result
// sets deterministically in tests and experiments.
func SortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool { return CompareRows(rows[i], rows[j]) < 0 })
}

// CompareRows lexicographically compares two rows.
func CompareRows(a, b Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// HashRow hashes the projection of row r onto column indexes idx, with a
// seed; used by exchanges and joins for partitioning.
func HashRow(r Row, idx []int, seed uint64) uint64 {
	h := uint64(14695981039346656037) ^ seed*1099511628211
	for _, i := range idx {
		h ^= r[i].Hash64()
		h *= 1099511628211
	}
	return h
}
