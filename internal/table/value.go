// Package table provides the typed value model, row and schema types, and
// in-memory partitioned tables that the rest of the engine operates on.
//
// Values are a compact tagged union rather than interface{} so that hot
// operator loops (filters, hash joins, samplers) avoid per-row allocation.
package table

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types a Value can hold.
type Kind uint8

const (
	// KindNull is the SQL NULL of any type.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer. Dates are stored as KindInt
	// counting days since an arbitrary epoch.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is a UTF-8 string.
	KindString
	// KindBool is a boolean.
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a compact tagged union holding one SQL value.
// The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	if v {
		return Value{kind: KindBool, i: 1}
	}
	return Value{kind: KindBool}
}

// Kind reports the runtime kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It is valid only when Kind()==KindInt or
// KindBool.
func (v Value) Int() int64 { return v.i }

// Float returns the float payload when KindFloat, or the integer payload
// widened to float when KindInt.
func (v Value) Float() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// Str returns the string payload. Valid only when Kind()==KindString.
func (v Value) Str() string { return v.s }

// Bool returns the boolean payload. Valid only when Kind()==KindBool.
func (v Value) Bool() bool { return v.i != 0 }

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Equal reports SQL equality; NULL equals nothing, including NULL.
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return false
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.kind == KindInt && o.kind == KindInt {
			return v.i == o.i
		}
		return v.Float() == o.Float()
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.s == o.s
	case KindBool:
		return v.i == o.i
	}
	return false
}

// Compare returns -1, 0 or +1 ordering v relative to o. NULL sorts first.
// Cross-kind numeric comparisons are performed in float space.
func (v Value) Compare(o Value) int {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == KindNull && o.kind == KindNull:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.kind == KindInt && o.kind == KindInt {
			switch {
			case v.i < o.i:
				return -1
			case v.i > o.i:
				return 1
			}
			return 0
		}
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	if v.kind != o.kind {
		// Deterministic but arbitrary cross-kind ordering.
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, o.s)
	case KindBool:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
	}
	return 0
}

// FNV-1a constants, inlined so hot hashing loops never allocate a
// hash.Hash (fnv.New64a escapes to the heap on every call).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvUint64(h uint64, u uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(u>>(8*i)))
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// Hash64 hashes the value with FNV-1a. Numeric values hash by canonical
// form so NewInt(2) and NewFloat(2.0) collide, matching Equal. The
// digest is bit-identical to feeding the tagged encoding through
// hash/fnv, but allocation-free.
func (v Value) Hash64() uint64 {
	switch v.kind {
	case KindNull:
		return fnvByte(fnvOffset64, 0)
	case KindInt, KindFloat:
		f := v.Float()
		if v.kind == KindInt || f == math.Trunc(f) && !math.IsInf(f, 0) {
			u := uint64(int64(f))
			if v.kind == KindInt {
				u = uint64(v.i)
			}
			return fnvUint64(fnvByte(fnvOffset64, 1), u)
		}
		return fnvUint64(fnvByte(fnvOffset64, 2), math.Float64bits(f))
	case KindString:
		return fnvString(fnvByte(fnvOffset64, 3), v.s)
	case KindBool:
		return fnvByte(fnvByte(fnvOffset64, 4), byte(v.i))
	}
	return fnvOffset64
}

// keyClass canonicalizes the value exactly like Key() does: class 1
// covers ints and integral floats below 1e18 (payload: the int64),
// class 2 the remaining floats (payload: IEEE bits), strings compare by
// content (class 3), booleans and NULL by tag. Two values have equal
// Key() strings iff their classes, payloads and string contents match.
func (v Value) keyClass() (uint8, uint64) {
	switch v.kind {
	case KindNull:
		return 0, 0
	case KindInt:
		return 1, uint64(v.i)
	case KindFloat:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && math.Abs(v.f) < 1e18 {
			return 1, uint64(int64(v.f))
		}
		return 2, math.Float64bits(v.f)
	case KindString:
		return 3, 0
	case KindBool:
		return 4, uint64(v.i)
	}
	return 255, 0
}

// KeyEqual reports whether v.Key() == o.Key() without materializing
// either canonical key string; grouping by KeyEqual partitions values
// exactly like grouping by Key().
func (v Value) KeyEqual(o Value) bool {
	vc, vp := v.keyClass()
	oc, op := o.keyClass()
	if vc != oc {
		return false
	}
	if vc == 3 {
		return v.s == o.s
	}
	return vp == op
}

// KeyHash folds the value's canonical key form into the running FNV-1a
// state h, allocation-free and consistent with KeyEqual: values with
// equal Key() strings fold identically. Start chains at KeyHashSeed.
func (v Value) KeyHash(h uint64) uint64 {
	c, p := v.keyClass()
	h = fnvByte(h, c)
	if c == 3 {
		return fnvString(h, v.s)
	}
	return fnvUint64(h, p)
}

// KeyHashSeed is the canonical starting state for KeyHash chains.
const KeyHashSeed = fnvOffset64

// AppendKey appends the value's canonical key (the exact bytes Key()
// returns) to b, avoiding the per-call string allocation of Key().
func (v Value) AppendKey(b []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(b, 0)
	case KindInt:
		return strconv.AppendInt(append(b, 'i'), v.i, 10)
	case KindFloat:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && math.Abs(v.f) < 1e18 {
			return strconv.AppendInt(append(b, 'i'), int64(v.f), 10)
		}
		return strconv.AppendUint(append(b, 'f'), math.Float64bits(v.f), 16)
	case KindString:
		return append(append(b, 's'), v.s...)
	case KindBool:
		if v.i != 0 {
			return append(b, 'b', 't')
		}
		return append(b, 'b', 'f')
	}
	return append(b, '?')
}

// Key returns a canonical string key of the value, usable as a map key
// with the same collision semantics as Equal.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindInt:
		return "i" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && math.Abs(v.f) < 1e18 {
			return "i" + strconv.FormatInt(int64(v.f), 10)
		}
		return "f" + strconv.FormatUint(math.Float64bits(v.f), 16)
	case KindString:
		return "s" + v.s
	case KindBool:
		if v.i != 0 {
			return "bt"
		}
		return "bf"
	}
	return "?"
}

// ByteSize approximates the in-flight size of the value in bytes; used by
// the cluster simulator to account for shuffled and intermediate data.
func (v Value) ByteSize() int {
	switch v.kind {
	case KindString:
		return 8 + len(v.s)
	case KindNull:
		return 1
	default:
		return 8
	}
}

// Arithmetic helpers. Operations involving NULL yield NULL. Integer
// arithmetic stays integral; mixed int/float widens to float.

// Add returns v + o.
func Add(v, o Value) Value { return arith(v, o, '+') }

// Sub returns v - o.
func Sub(v, o Value) Value { return arith(v, o, '-') }

// Mul returns v * o.
func Mul(v, o Value) Value { return arith(v, o, '*') }

// Div returns v / o; division by zero yields NULL.
func Div(v, o Value) Value { return arith(v, o, '/') }

// Mod returns v % o for integers; NULL otherwise or on zero divisor.
func Mod(v, o Value) Value {
	if v.kind != KindInt || o.kind != KindInt || o.i == 0 {
		return Null
	}
	return NewInt(v.i % o.i)
}

func arith(v, o Value, op byte) Value {
	if !v.IsNumeric() || !o.IsNumeric() {
		return Null
	}
	if v.kind == KindInt && o.kind == KindInt && op != '/' {
		switch op {
		case '+':
			return NewInt(v.i + o.i)
		case '-':
			return NewInt(v.i - o.i)
		case '*':
			return NewInt(v.i * o.i)
		}
	}
	a, b := v.Float(), o.Float()
	switch op {
	case '+':
		return NewFloat(a + b)
	case '-':
		return NewFloat(a - b)
	case '*':
		return NewFloat(a * b)
	case '/':
		if b == 0 {
			return Null
		}
		return NewFloat(a / b)
	}
	return Null
}
