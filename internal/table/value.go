// Package table provides the typed value model, row and schema types, and
// in-memory partitioned tables that the rest of the engine operates on.
//
// Values are a compact tagged union rather than interface{} so that hot
// operator loops (filters, hash joins, samplers) avoid per-row allocation.
package table

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types a Value can hold.
type Kind uint8

const (
	// KindNull is the SQL NULL of any type.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer. Dates are stored as KindInt
	// counting days since an arbitrary epoch.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is a UTF-8 string.
	KindString
	// KindBool is a boolean.
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a compact tagged union holding one SQL value.
// The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	if v {
		return Value{kind: KindBool, i: 1}
	}
	return Value{kind: KindBool}
}

// Kind reports the runtime kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It is valid only when Kind()==KindInt or
// KindBool.
func (v Value) Int() int64 { return v.i }

// Float returns the float payload when KindFloat, or the integer payload
// widened to float when KindInt.
func (v Value) Float() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// Str returns the string payload. Valid only when Kind()==KindString.
func (v Value) Str() string { return v.s }

// Bool returns the boolean payload. Valid only when Kind()==KindBool.
func (v Value) Bool() bool { return v.i != 0 }

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Equal reports SQL equality; NULL equals nothing, including NULL.
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return false
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.kind == KindInt && o.kind == KindInt {
			return v.i == o.i
		}
		return v.Float() == o.Float()
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.s == o.s
	case KindBool:
		return v.i == o.i
	}
	return false
}

// Compare returns -1, 0 or +1 ordering v relative to o. NULL sorts first.
// Cross-kind numeric comparisons are performed in float space.
func (v Value) Compare(o Value) int {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == KindNull && o.kind == KindNull:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.kind == KindInt && o.kind == KindInt {
			switch {
			case v.i < o.i:
				return -1
			case v.i > o.i:
				return 1
			}
			return 0
		}
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	if v.kind != o.kind {
		// Deterministic but arbitrary cross-kind ordering.
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, o.s)
	case KindBool:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
	}
	return 0
}

// Hash64 hashes the value with FNV-1a. Numeric values hash by canonical
// form so NewInt(2) and NewFloat(2.0) collide, matching Equal.
func (v Value) Hash64() uint64 {
	h := fnv.New64a()
	v.hashInto(h)
	return h.Sum64()
}

type hasher interface{ Write([]byte) (int, error) }

func (v Value) hashInto(h hasher) {
	var tag [1]byte
	switch v.kind {
	case KindNull:
		tag[0] = 0
		h.Write(tag[:])
	case KindInt, KindFloat:
		f := v.Float()
		if v.kind == KindInt || f == math.Trunc(f) && !math.IsInf(f, 0) {
			tag[0] = 1
			h.Write(tag[:])
			var b [8]byte
			u := uint64(int64(f))
			if v.kind == KindInt {
				u = uint64(v.i)
			}
			putUint64(b[:], u)
			h.Write(b[:])
		} else {
			tag[0] = 2
			h.Write(tag[:])
			var b [8]byte
			putUint64(b[:], math.Float64bits(f))
			h.Write(b[:])
		}
	case KindString:
		tag[0] = 3
		h.Write(tag[:])
		h.Write([]byte(v.s))
	case KindBool:
		tag[0] = 4
		h.Write(tag[:])
		var b [1]byte
		b[0] = byte(v.i)
		h.Write(b[:])
	}
}

func putUint64(b []byte, u uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

// Key returns a canonical string key of the value, usable as a map key
// with the same collision semantics as Equal.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindInt:
		return "i" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && math.Abs(v.f) < 1e18 {
			return "i" + strconv.FormatInt(int64(v.f), 10)
		}
		return "f" + strconv.FormatUint(math.Float64bits(v.f), 16)
	case KindString:
		return "s" + v.s
	case KindBool:
		if v.i != 0 {
			return "bt"
		}
		return "bf"
	}
	return "?"
}

// ByteSize approximates the in-flight size of the value in bytes; used by
// the cluster simulator to account for shuffled and intermediate data.
func (v Value) ByteSize() int {
	switch v.kind {
	case KindString:
		return 8 + len(v.s)
	case KindNull:
		return 1
	default:
		return 8
	}
}

// Arithmetic helpers. Operations involving NULL yield NULL. Integer
// arithmetic stays integral; mixed int/float widens to float.

// Add returns v + o.
func Add(v, o Value) Value { return arith(v, o, '+') }

// Sub returns v - o.
func Sub(v, o Value) Value { return arith(v, o, '-') }

// Mul returns v * o.
func Mul(v, o Value) Value { return arith(v, o, '*') }

// Div returns v / o; division by zero yields NULL.
func Div(v, o Value) Value { return arith(v, o, '/') }

// Mod returns v % o for integers; NULL otherwise or on zero divisor.
func Mod(v, o Value) Value {
	if v.kind != KindInt || o.kind != KindInt || o.i == 0 {
		return Null
	}
	return NewInt(v.i % o.i)
}

func arith(v, o Value, op byte) Value {
	if !v.IsNumeric() || !o.IsNumeric() {
		return Null
	}
	if v.kind == KindInt && o.kind == KindInt && op != '/' {
		switch op {
		case '+':
			return NewInt(v.i + o.i)
		case '-':
			return NewInt(v.i - o.i)
		case '*':
			return NewInt(v.i * o.i)
		}
	}
	a, b := v.Float(), o.Float()
	switch op {
	case '+':
		return NewFloat(a + b)
	case '-':
		return NewFloat(a - b)
	case '*':
		return NewFloat(a * b)
	case '/':
		if b == 0 {
			return Null
		}
		return NewFloat(a / b)
	}
	return Null
}
