package table

// Per-partition summary statistics: row counts, per-column measure
// moments (sum/min/max over numeric lanes), heavy hitters (lossy
// counting) and KMV distinct sketches. The optimizer's partition-
// selection pass reads these to decide which partitions a sampled scan
// may skip; summaries are lazy and cached beside the columnar cache,
// and Append invalidates both caches for the touched partition under
// one lock acquisition.

import "quickr/internal/sketch"

const (
	// summaryKMVK sizes the per-column KMV sketch: exact distinct
	// counts up to 4·k values, ~9% relative error beyond.
	summaryKMVK = 128
	// summaryEps is the lossy-counting error bound: every key with
	// frequency ≥ eps·n in the partition is guaranteed tracked.
	summaryEps = 1.0 / 1024
)

// ColumnSummary summarizes one column of one partition.
type ColumnSummary struct {
	// NonNull counts non-NULL lanes. Numeric reports that every
	// non-NULL lane was numeric, making Sum/Min/Max meaningful.
	NonNull int64
	Numeric bool
	Sum     float64
	Min     float64
	Max     float64
	// Heavy lists the tracked keys (canonical Value.Key form) with
	// their approximate frequencies, most frequent first.
	Heavy []sketch.HeavyHitter
	// Distinct estimates the number of distinct non-NULL keys.
	Distinct float64
	// Complete reports that Heavy is the complete key set of the
	// column (the distinct count stayed small enough for the sketches
	// to track every key), so a reader may treat it as the exact
	// partition-level value dictionary.
	Complete bool

	kmv *sketch.KMV
	hh  *sketch.LossyCounter
}

// PartitionSummary summarizes one stored partition.
type PartitionSummary struct {
	NumRows int
	Cols    []ColumnSummary
}

func newColumnSummary() ColumnSummary {
	return ColumnSummary{
		Numeric: true,
		kmv:     sketch.NewKMV(summaryKMVK),
		hh:      sketch.NewLossyCounter(summaryEps),
	}
}

// observe folds one lane into the column's moments and sketches.
func (c *ColumnSummary) observe(v Value) {
	if v.IsNull() {
		return
	}
	c.NonNull++
	if v.IsNumeric() {
		f := v.Float()
		c.Sum += f
		if c.NonNull == 1 || f < c.Min {
			c.Min = f
		}
		if c.NonNull == 1 || f > c.Max {
			c.Max = f
		}
	} else {
		c.Numeric = false
	}
	key := v.Key()
	c.kmv.Add(key)
	c.hh.Add(key)
}

// finish freezes the sketch-derived fields after the last observe.
func (c *ColumnSummary) finish() {
	c.Heavy = c.hh.HeavyHitters(0) // threshold < 0: every tracked entry
	exact, ok := c.kmv.ExactCount()
	if ok {
		c.Distinct = float64(exact)
		c.Complete = exact == c.hh.EntryCount()
	} else {
		c.Distinct = c.kmv.Estimate()
	}
}

// mergeFrom folds another partition's column summary into c (table-
// level rollup). Sketches merge via KMV.Merge / LossyCounter.Merge.
func (c *ColumnSummary) mergeFrom(o *ColumnSummary) {
	if o.NonNull > 0 {
		if c.NonNull == 0 {
			c.Min, c.Max = o.Min, o.Max
		} else {
			if o.Min < c.Min {
				c.Min = o.Min
			}
			if o.Max > c.Max {
				c.Max = o.Max
			}
		}
	}
	c.NonNull += o.NonNull
	c.Sum += o.Sum
	c.Numeric = c.Numeric && o.Numeric
	c.kmv.Merge(o.kmv)
	c.hh.Merge(o.hh)
}

// BuildSummary computes the summary of a row-major partition. width is
// the schema width; short rows are padded with NULL lanes.
func BuildSummary(rows []Row, width int) *PartitionSummary {
	ps := &PartitionSummary{NumRows: len(rows), Cols: make([]ColumnSummary, width)}
	for c := 0; c < width; c++ {
		ps.Cols[c] = newColumnSummary()
	}
	for _, r := range rows {
		for c := 0; c < width; c++ {
			ps.Cols[c].observe(colAt(r, c))
		}
	}
	for c := 0; c < width; c++ {
		ps.Cols[c].finish()
	}
	return ps
}

// Summary returns the cached summary of partition i, building it on
// first use. Safe for concurrent use; Append invalidates the affected
// partition's cache (atomically with the columnar cache).
func (t *Table) Summary(i int) *PartitionSummary {
	t.cacheMu.Lock()
	defer t.cacheMu.Unlock()
	if t.sumCache == nil {
		t.sumCache = make([]*PartitionSummary, len(t.Partitions))
	}
	if ps := t.sumCache[i]; ps != nil && ps.NumRows == len(t.Partitions[i]) {
		return ps
	}
	ps := BuildSummary(t.Partitions[i], t.Schema.Len())
	t.sumCache[i] = ps
	return ps
}

// EnsureSummaries eagerly builds every partition's summary.
func (t *Table) EnsureSummaries() {
	for i := range t.Partitions {
		t.Summary(i)
	}
}

// Summaries returns one summary per partition, building missing ones.
func (t *Table) Summaries() []*PartitionSummary {
	out := make([]*PartitionSummary, len(t.Partitions))
	for i := range t.Partitions {
		out[i] = t.Summary(i)
	}
	return out
}

// MergedColumn rolls the per-partition summaries of one column up into
// a table-level summary (partition sketches combine via KMV.Merge and
// LossyCounter.Merge; Complete survives only when every partition was
// complete and the union stayed exactly countable).
func (t *Table) MergedColumn(col int) ColumnSummary {
	out := newColumnSummary()
	allComplete := true
	for i := range t.Partitions {
		ps := t.Summary(i)
		out.mergeFrom(&ps.Cols[col])
		allComplete = allComplete && ps.Cols[col].Complete
	}
	out.finish()
	out.Complete = out.Complete && allComplete
	return out
}
