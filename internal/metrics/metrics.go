// Package metrics collects cheap, race-safe per-operator execution
// counters for one query run: rows and bytes in/out, wall time, sampler
// pass/seen counts, heavy-hitter sketch occupancy, and join build/probe
// sizes. The executor gives every physical operator an Op collector
// with one Slot per partition; parallel partition workers write only
// their own slot (index-disjoint, no locks or atomics), and slots are
// merged with Total only after the parallel region ends. This is the
// observability substrate behind EXPLAIN ANALYZE, the --stats JSON run
// report, and the checked sampler-rate invariants in the experiment
// harness.
package metrics

import "time"

// Slot holds the counters one partition (task) accumulates for one
// operator. Concurrent partitions must touch only their own slot; the
// struct is kept at exactly 128 bytes (two cache lines) so partition
// workers do not false-share.
type Slot struct {
	RowsIn, RowsOut   int64
	BytesIn, BytesOut float64
	// SamplerSeen/SamplerPassed count rows offered to and emitted by a
	// sampler operator (emitted includes reservoir flushes, so for the
	// distinct sampler Passed/Seen can exceed the configured p).
	SamplerSeen, SamplerPassed int64
	// SketchEntries is the heavy-hitter sketch occupancy (tracked
	// entries plus live reservoir rows) at end of partition.
	SketchEntries int64
	// BuildRows/ProbeRows size the two sides of a hash join as the task
	// saw them (the build side is replicated under broadcast joins).
	BuildRows, ProbeRows int64
	// Batches counts the row batches the operator emitted in this
	// partition (one per materialized partition for pipeline breakers).
	Batches int64
	// PeakBytes is the largest in-flight output this partition held at
	// once: the biggest batch for pipelined operators, the whole
	// materialized partition for breakers. Total sums partition peaks,
	// approximating the operator's worst-case concurrent footprint.
	PeakBytes float64
	// WallNanos accumulates wall time the partition spent inside the
	// operator's own per-batch work (machine time, not elapsed; the
	// operator's elapsed time takes the max across partitions).
	WallNanos int64
	// KernelLanes counts physical vector lanes processed by columnar
	// kernels (Options.Columnar); FallbackRows counts live rows the
	// columnar pipeline routed through row-at-a-time expression
	// fallbacks. Both stay zero in row mode.
	KernelLanes  int64
	FallbackRows int64
	// PartsScanned/PartsPruned report a pruned scan's partition
	// selection: each kept partition's slot records PartsScanned=1, and
	// the skipped-partition count lands on slot 0. Both stay zero for
	// unpruned scans.
	PartsScanned int64
	PartsPruned  int64
}

func (s *Slot) add(o *Slot) {
	s.RowsIn += o.RowsIn
	s.RowsOut += o.RowsOut
	s.BytesIn += o.BytesIn
	s.BytesOut += o.BytesOut
	s.SamplerSeen += o.SamplerSeen
	s.SamplerPassed += o.SamplerPassed
	s.SketchEntries += o.SketchEntries
	s.BuildRows += o.BuildRows
	s.ProbeRows += o.ProbeRows
	s.Batches += o.Batches
	s.PeakBytes += o.PeakBytes
	s.WallNanos += o.WallNanos
	s.KernelLanes += o.KernelLanes
	s.FallbackRows += o.FallbackRows
	s.PartsScanned += o.PartsScanned
	s.PartsPruned += o.PartsPruned
}

// NoteBatch records one emitted batch of the given byte size, tracking
// the partition's peak in-flight footprint.
func (s *Slot) NoteBatch(bytes float64) {
	s.Batches++
	if bytes > s.PeakBytes {
		s.PeakBytes = bytes
	}
}

// Op is the collector for one physical operator.
type Op struct {
	// ID is the operator's position in plan pre-order.
	ID int
	// Kind is the operator class ("Scan", "Filter", "Sample", ...).
	Kind string
	// Detail is the operator's Describe() text.
	Detail string
	// Depth is the operator's depth in the plan tree.
	Depth int
	// EstRows is the optimizer's estimated output cardinality, or -1
	// when no estimate was attached.
	EstRows float64
	// CorrRows is the history-corrected cardinality estimate, or -1
	// when no learned correction applied (cold history or learning
	// disabled). Shown by EXPLAIN ANALYZE as `corrected=`.
	CorrRows float64
	// SamplerType and SamplerP describe a sampler operator's
	// configuration ("" / 0 for everything else).
	SamplerType string
	SamplerP    float64

	wallNanos int64
	slots     []Slot
}

// Grow ensures the operator has at least n slots. It must be called
// before the parallel region that writes them (it is not safe
// concurrently with Slot).
func (o *Op) Grow(n int) {
	if n <= len(o.slots) {
		return
	}
	ns := make([]Slot, n)
	copy(ns, o.slots)
	o.slots = ns
}

// Slot returns partition i's counter slot. Callers must Grow first;
// like the cluster simulator's task accounting, out-of-range indexes
// wrap so a misconfigured caller degrades accounting rather than
// panicking.
func (o *Op) Slot(i int) *Slot {
	if len(o.slots) == 0 {
		o.slots = make([]Slot, 1)
	}
	return &o.slots[i%len(o.slots)]
}

// Partitions returns the number of slots (the operator's degree of
// parallelism as executed).
func (o *Op) Partitions() int { return len(o.slots) }

// AddWall adds wall-clock time spent in the operator's own work
// (excluding its children). Call only from the coordinating goroutine.
func (o *Op) AddWall(d time.Duration) { o.wallNanos += int64(d) }

// WallNanos returns the operator's elapsed wall time: coordinator-side
// time plus the slowest partition's in-pipeline time (partitions run
// concurrently, so the max approximates the elapsed contribution).
func (o *Op) WallNanos() int64 {
	w := o.wallNanos
	var slowest int64
	for i := range o.slots {
		if o.slots[i].WallNanos > slowest {
			slowest = o.slots[i].WallNanos
		}
	}
	return w + slowest
}

// Total merges all partition slots. Call only after the operator's
// parallel region has completed.
func (o *Op) Total() Slot {
	var t Slot
	for i := range o.slots {
		t.add(&o.slots[i])
	}
	return t
}

// Query collects the per-operator metrics of one plan execution, in
// plan pre-order.
type Query struct {
	ops    []*Op
	byNode map[any]*Op
}

// NewQuery creates an empty per-query collector.
func NewQuery() *Query {
	return &Query{byNode: map[any]*Op{}}
}

// Register creates the collector for one plan node. Nodes are keyed by
// identity, so the same physical plan can later be walked to look its
// operators up again.
func (q *Query) Register(node any, kind, detail string, depth int, estRows float64) *Op {
	op := &Op{ID: len(q.ops), Kind: kind, Detail: detail, Depth: depth, EstRows: estRows, CorrRows: -1}
	q.ops = append(q.ops, op)
	q.byNode[node] = op
	return op
}

// Op returns the collector registered for node, or nil.
func (q *Query) Op(node any) *Op {
	if q == nil {
		return nil
	}
	return q.byNode[node]
}

// Ops returns all collectors in plan pre-order.
func (q *Query) Ops() []*Op {
	if q == nil {
		return nil
	}
	return q.ops
}
