package metrics

// OpReport is the JSON-serializable view of one operator's executed
// metrics, consumed by the --stats run report and BENCH_*.json. The
// core numeric fields are always emitted (never omitempty) so report
// consumers can schema-check them.
type OpReport struct {
	ID      int     `json:"id"`
	Kind    string  `json:"kind"`
	Detail  string  `json:"detail"`
	Depth   int     `json:"depth"`
	EstRows float64 `json:"est_rows"` // -1 when no optimizer estimate
	// CorrRows is the history-corrected estimate; omitted when no
	// learned correction applied.
	CorrRows float64 `json:"corrected_rows,omitempty"`

	Partitions int     `json:"partitions"`
	RowsIn     int64   `json:"rows_in"`
	RowsOut    int64   `json:"rows_out"`
	BytesIn    float64 `json:"bytes_in"`
	BytesOut   float64 `json:"bytes_out"`
	WallMillis float64 `json:"wall_ms"`
	// Batches counts emitted row batches; PeakBytes sums the partitions'
	// peak in-flight bytes (worst-case concurrent footprint).
	Batches   int64   `json:"batches"`
	PeakBytes float64 `json:"peak_bytes"`

	SamplerType   string  `json:"sampler_type,omitempty"`
	SamplerP      float64 `json:"sampler_p"`
	SamplerSeen   int64   `json:"sampler_seen"`
	SamplerPassed int64   `json:"sampler_passed"`
	// SamplerRate is SamplerPassed/SamplerSeen (0 when nothing seen).
	SamplerRate   float64 `json:"sampler_rate"`
	SketchEntries int64   `json:"sketch_entries"`

	BuildRows int64 `json:"build_rows"`
	ProbeRows int64 `json:"probe_rows"`

	// Columnar-mode kernel counters (omitted in row mode so row-path
	// reports are byte-identical to before the columnar executor).
	KernelLanes  int64 `json:"kernel_lanes,omitempty"`
	FallbackRows int64 `json:"fallback_rows,omitempty"`

	// Partition-pruning counters (omitted for unpruned scans so
	// pruning-off reports are byte-identical to before the pass).
	PartsScanned int64 `json:"partitions_scanned,omitempty"`
	PartsPruned  int64 `json:"partitions_pruned,omitempty"`
}

// Report flattens the query's operators (plan pre-order, with depths,
// so consumers can rebuild the tree).
func (q *Query) Report() []OpReport {
	if q == nil {
		return nil
	}
	out := make([]OpReport, 0, len(q.ops))
	for _, op := range q.ops {
		t := op.Total()
		r := OpReport{
			ID:            op.ID,
			Kind:          op.Kind,
			Detail:        op.Detail,
			Depth:         op.Depth,
			EstRows:       op.EstRows,
			CorrRows:      corrOrZero(op.CorrRows),
			Partitions:    op.Partitions(),
			RowsIn:        t.RowsIn,
			RowsOut:       t.RowsOut,
			BytesIn:       t.BytesIn,
			BytesOut:      t.BytesOut,
			WallMillis:    float64(op.WallNanos()) / 1e6,
			Batches:       t.Batches,
			PeakBytes:     t.PeakBytes,
			SamplerType:   op.SamplerType,
			SamplerP:      op.SamplerP,
			SamplerSeen:   t.SamplerSeen,
			SamplerPassed: t.SamplerPassed,
			SketchEntries: t.SketchEntries,
			BuildRows:     t.BuildRows,
			ProbeRows:     t.ProbeRows,
			KernelLanes:   t.KernelLanes,
			FallbackRows:  t.FallbackRows,
			PartsScanned:  t.PartsScanned,
			PartsPruned:   t.PartsPruned,
		}
		if t.SamplerSeen > 0 {
			r.SamplerRate = float64(t.SamplerPassed) / float64(t.SamplerSeen)
		}
		out = append(out, r)
	}
	return out
}

// corrOrZero maps the "no correction" sentinel (-1) to the JSON zero
// value so corrected_rows is omitted for uncorrected operators.
func corrOrZero(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
