package metrics

import "sync/atomic"

// Process-wide gauges for the concurrent query service: the shared
// worker pool, the byte-budget admission gate, and the plan cache all
// publish here, and the `quickr -serve` /metrics endpoint (plus tests)
// reads consistent snapshots via Gauges(). Unlike the per-query Op
// collectors these are cross-query and therefore atomic.
var (
	// PoolWorkers is the number of live pool workers.
	PoolWorkers atomic.Int64
	// PoolRunningTasks is the number of partition tasks executing now.
	PoolRunningTasks atomic.Int64
	// PoolQueuedJobs is the number of jobs with unclaimed tasks.
	PoolQueuedJobs atomic.Int64
	// PoolCompletedTasks counts tasks finished since process start.
	PoolCompletedTasks atomic.Int64

	// AdmittedBytes is the admission gate's currently reserved bytes.
	AdmittedBytes atomic.Int64
	// QueuedQueries is the number of queries waiting at the gate.
	QueuedQueries atomic.Int64

	// PlanCacheHits and PlanCacheMisses count prepared-plan cache
	// lookups across all engines in the process.
	PlanCacheHits   atomic.Int64
	PlanCacheMisses atomic.Int64

	// ActiveQueries is the number of queries between admission and
	// completion.
	ActiveQueries atomic.Int64

	// ContractEscalations counts contract misses that escalated p one
	// ladder rung and re-ran.
	ContractEscalations atomic.Int64
	// ContractViolations counts contract queries whose FINAL answer
	// still missed the bound (the exact fallback makes this zero in a
	// healthy system; benchcheck -contract gates on it).
	ContractViolations atomic.Int64
	// HistoryHits counts runs that found learned corrections for their
	// plan fingerprint; HistoryRecords counts observations written.
	HistoryHits    atomic.Int64
	HistoryRecords atomic.Int64

	// Sample-cache gauges: lookups against the materialized sampler-
	// output cache (hot-sample reuse), LRU evictions, admission rejects
	// (entries over the per-entry ceiling fall back to the lazy path),
	// and the currently resident payload bytes.
	SampleCacheHits      atomic.Int64
	SampleCacheMisses    atomic.Int64
	SampleCacheEvictions atomic.Int64
	SampleCacheRejects   atomic.Int64
	SampleCacheBytes     atomic.Int64
)

// GaugeSnapshot is a point-in-time copy of the process gauges.
type GaugeSnapshot struct {
	PoolWorkers        int64 `json:"pool_workers"`
	PoolRunningTasks   int64 `json:"pool_running_tasks"`
	PoolQueuedJobs     int64 `json:"pool_queued_jobs"`
	PoolCompletedTasks int64 `json:"pool_completed_tasks"`
	AdmittedBytes      int64 `json:"admitted_bytes"`
	QueuedQueries      int64 `json:"queued_queries"`
	PlanCacheHits      int64 `json:"plan_cache_hits"`
	PlanCacheMisses    int64 `json:"plan_cache_misses"`
	ActiveQueries      int64 `json:"active_queries"`

	ContractEscalations int64 `json:"contract_escalations"`
	ContractViolations  int64 `json:"contract_violations"`
	HistoryHits         int64 `json:"history_hits"`
	HistoryRecords      int64 `json:"history_records"`

	SampleCacheHits      int64 `json:"sample_cache_hits"`
	SampleCacheMisses    int64 `json:"sample_cache_misses"`
	SampleCacheEvictions int64 `json:"sample_cache_evictions"`
	SampleCacheRejects   int64 `json:"sample_cache_rejects"`
	SampleCacheBytes     int64 `json:"sample_cache_bytes"`
}

// Gauges snapshots the process-wide service gauges.
func Gauges() GaugeSnapshot {
	return GaugeSnapshot{
		PoolWorkers:        PoolWorkers.Load(),
		PoolRunningTasks:   PoolRunningTasks.Load(),
		PoolQueuedJobs:     PoolQueuedJobs.Load(),
		PoolCompletedTasks: PoolCompletedTasks.Load(),
		AdmittedBytes:      AdmittedBytes.Load(),
		QueuedQueries:      QueuedQueries.Load(),
		PlanCacheHits:      PlanCacheHits.Load(),
		PlanCacheMisses:    PlanCacheMisses.Load(),
		ActiveQueries:      ActiveQueries.Load(),

		ContractEscalations: ContractEscalations.Load(),
		ContractViolations:  ContractViolations.Load(),
		HistoryHits:         HistoryHits.Load(),
		HistoryRecords:      HistoryRecords.Load(),

		SampleCacheHits:      SampleCacheHits.Load(),
		SampleCacheMisses:    SampleCacheMisses.Load(),
		SampleCacheEvictions: SampleCacheEvictions.Load(),
		SampleCacheRejects:   SampleCacheRejects.Load(),
		SampleCacheBytes:     SampleCacheBytes.Load(),
	}
}
