package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
	"unsafe"
)

func TestSlotPadding(t *testing.T) {
	// Index-disjoint slots only avoid false sharing if adjacent slots
	// sit on distinct cache lines.
	if sz := unsafe.Sizeof(Slot{}); sz%64 != 0 {
		t.Errorf("Slot size %d is not a multiple of the 64-byte cache line", sz)
	}
}

func TestOpTotalMergesSlots(t *testing.T) {
	op := &Op{Kind: "Filter"}
	op.Grow(4)
	for i := 0; i < 4; i++ {
		sl := op.Slot(i)
		sl.RowsIn = int64(10 * (i + 1))
		sl.RowsOut = int64(i + 1)
		sl.BytesIn = float64(i)
	}
	tot := op.Total()
	if tot.RowsIn != 100 || tot.RowsOut != 10 || tot.BytesIn != 6 {
		t.Errorf("Total = %+v", tot)
	}
}

func TestGrowPreservesCounts(t *testing.T) {
	op := &Op{}
	op.Grow(2)
	op.Slot(0).RowsIn = 5
	op.Grow(8)
	if op.Slot(0).RowsIn != 5 {
		t.Error("Grow lost slot contents")
	}
	if op.Partitions() != 8 {
		t.Errorf("Partitions = %d, want 8", op.Partitions())
	}
	op.Grow(4) // shrinking is a no-op
	if op.Partitions() != 8 {
		t.Error("Grow shrank the slot array")
	}
}

// TestConcurrentSlotWrites hammers index-disjoint slots from many
// goroutines; run with -race to verify lock-free slot accounting.
func TestConcurrentSlotWrites(t *testing.T) {
	op := &Op{Kind: "Scan"}
	const parts = 32
	op.Grow(parts)
	var wg sync.WaitGroup
	for i := 0; i < parts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sl := op.Slot(i)
			for j := 0; j < 10000; j++ {
				sl.RowsIn++
				sl.RowsOut++
				sl.BytesIn += 8
				sl.SamplerSeen++
			}
		}(i)
	}
	wg.Wait()
	tot := op.Total()
	if tot.RowsIn != parts*10000 || tot.SamplerSeen != parts*10000 {
		t.Errorf("Total = %+v", tot)
	}
}

func TestNoteBatchTracksPeakAndWall(t *testing.T) {
	op := &Op{Kind: "Filter"}
	op.Grow(2)
	op.Slot(0).NoteBatch(100)
	op.Slot(0).NoteBatch(40) // smaller batch must not lower the peak
	op.Slot(1).NoteBatch(70)
	tot := op.Total()
	if tot.Batches != 3 {
		t.Errorf("Batches = %d, want 3", tot.Batches)
	}
	// Total sums per-partition peaks (worst-case concurrent footprint).
	if tot.PeakBytes != 170 {
		t.Errorf("PeakBytes = %v, want 170", tot.PeakBytes)
	}
	// Elapsed wall is coordinator time plus the slowest partition.
	op.Slot(0).WallNanos = 50
	op.Slot(1).WallNanos = 80
	op.AddWall(20 * time.Nanosecond)
	if got := op.WallNanos(); got != 100 {
		t.Errorf("WallNanos = %d, want 100", got)
	}
}

func TestQueryRegisterAndReport(t *testing.T) {
	q := NewQuery()
	type node struct{ name string }
	n1, n2 := &node{"a"}, &node{"b"}
	op1 := q.Register(n1, "Scan", "Scan t", 0, 1000)
	op2 := q.Register(n2, "Sample", "Sample UNIFORM", 1, -1)
	op2.SamplerType = "UNIFORM"
	op2.SamplerP = 0.1
	op1.Grow(2)
	op1.Slot(0).RowsOut = 7
	op1.Slot(1).RowsOut = 3
	op1.AddWall(2 * time.Millisecond)
	op2.Grow(1)
	op2.Slot(0).SamplerSeen = 100
	op2.Slot(0).SamplerPassed = 9

	if q.Op(n1) != op1 || q.Op(n2) != op2 {
		t.Fatal("Op lookup by node identity failed")
	}
	if q.Op(&node{"a"}) != nil {
		t.Fatal("Op lookup must be by identity, not value")
	}

	rep := q.Report()
	if len(rep) != 2 {
		t.Fatalf("report has %d ops", len(rep))
	}
	if rep[0].RowsOut != 10 || rep[0].EstRows != 1000 || rep[0].WallMillis < 2 {
		t.Errorf("op1 report: %+v", rep[0])
	}
	if rep[1].SamplerRate != 0.09 || rep[1].SamplerType != "UNIFORM" {
		t.Errorf("op2 report: %+v", rep[1])
	}

	// Core numeric fields must serialize even when zero (the CI bench
	// schema check depends on them being present).
	b, err := json.Marshal(rep[1])
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"rows_in", "rows_out", "bytes_in", "bytes_out", "wall_ms",
		"est_rows", "partitions", "sampler_seen", "sampler_passed", "sampler_rate",
		"sketch_entries", "build_rows", "probe_rows", "batches", "peak_bytes"} {
		if _, ok := m[k]; !ok {
			t.Errorf("serialized OpReport missing %q", k)
		}
	}
}

func TestNilQuerySafe(t *testing.T) {
	var q *Query
	if q.Op("x") != nil || q.Ops() != nil || q.Report() != nil {
		t.Error("nil Query methods must be safe no-ops")
	}
}
