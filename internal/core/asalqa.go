// Package core implements ASALQA — "place Appropriate Samplers at
// Appropriate Locations in the Query plan Automatically" (paper §4.2) —
// Quickr's primary contribution: a sampler-aware query optimization
// phase built on the cost model and cardinality estimator of
// internal/opt.
//
// The algorithm:
//
//  1. Seed an optimistic sampler immediately below every aggregation
//     (§4.2.2), stratified on the answer's group columns and the *IF
//     condition columns.
//  2. Explore alternatives that push each sampler toward the raw inputs
//     past selects (§4.2.3), projects and joins (§4.2.4, Figure 7),
//     tracking the logical sampler state {S, U, ds, sfm}. Exploration
//     is a beam search over the (large) space of sampled plans.
//  3. Cost each alternative (§4.2.6): check the stratification
//     requirement C1 (can some p ≤ 0.1 give every group at least k rows,
//     using support scaled by ds·sfm?) and the universe requirement C2,
//     then materialize the physical sampler — uniform when both hold,
//     universe when stratification is satisfiable but universe columns
//     are required, distinct when stratification cannot be met by a
//     uniform probability (if it still reduces data), and a pass-through
//     otherwise.
//  4. Enforce global requirements bottom-up (§A): paired universe
//     samplers on both join inputs use identical columns, probability
//     and subspace seed; nested samplers are forbidden.
//
// A query whose every seeded sampler degrades to a pass-through is
// declared unapproximable (roughly 25% of TPC-DS queries in the paper).
package core

import (
	"fmt"
	"sort"

	"quickr/internal/lplan"
	"quickr/internal/opt"
)

// Options tune ASALQA; defaults follow the paper.
type Options struct {
	// K is the minimum per-group sample support (central limit theorem
	// anecdote: 30).
	K float64
	// KL is the minimum rows per distinct stratification value for the
	// distinct sampler to be worthwhile (paper: 3).
	KL float64
	// MaxP is the largest allowed sampling probability (paper: 0.1,
	// "to ensure that the performance gains are high").
	MaxP float64
	// MinP, when >0, floors the sampling probability of every placed
	// sampler. Error contracts use it to force a ladder rung without
	// disturbing ASALQA's own choice when that choice is already
	// higher.
	MinP float64
	// BeamWidth caps alternatives kept per subtree during exploration.
	BeamWidth int
	// MaxSubsetKeys caps the join-key subsets enumerated in
	// OneSideHelper (Figure 7 line 12).
	MaxSubsetKeys int
}

// DefaultOptions returns the paper's parameter choices.
func DefaultOptions() Options {
	return Options{K: 30, KL: 3, MaxP: 0.1, BeamWidth: 6, MaxSubsetKeys: 3}
}

// Result is the outcome of sampler placement.
type Result struct {
	// Plan is the output plan: the input plan with physical samplers
	// materialized (possibly none).
	Plan lplan.Node
	// Sampled reports whether any non-pass-through sampler remains.
	Sampled bool
	// Unapproximable is set when every seeded sampler degraded to a
	// pass-through.
	Unapproximable bool
	// Samplers lists the materialized samplers.
	Samplers []*lplan.Sample
	// Notes records decisions for EXPLAIN output.
	Notes []string
}

// Asalqa runs sampler placement over a normalized logical plan.
type Asalqa struct {
	Est  *opt.Estimator
	CM   *opt.CostModel
	Opts Options

	univGroupSeq uint64
	notes        []string
	// extended holds the exploration-only state (CountDistinct columns,
	// universe pairing group) per Sample node.
	extended map[*lplan.Sample]samplerState
}

// New creates an ASALQA instance sharing the optimizer's estimator and
// cost model.
func New(est *opt.Estimator, cm *opt.CostModel, opts Options) *Asalqa {
	if opts.K == 0 {
		opts = DefaultOptions()
	}
	return &Asalqa{Est: est, CM: cm, Opts: opts}
}

// Place seeds, explores, costs and finalizes samplers in the plan.
func (a *Asalqa) Place(plan lplan.Node) (*Result, error) {
	a.notes = nil
	out := a.rewrite(plan)
	out = a.dropNestedSamplers(out)
	a.enforceUniverseGroups(out)
	out = addUniversePassthrough(out)
	res := &Result{Plan: out, Notes: a.notes}
	for _, s := range lplan.FindSamplers(out) {
		if s.Def != nil && s.Def.Type != lplan.SamplerPassThrough {
			res.Sampled = true
			res.Samplers = append(res.Samplers, s)
		}
	}
	if !res.Sampled {
		res.Unapproximable = true
	}
	return res, nil
}

// rewrite walks the plan; at each Aggregate it seeds a sampler below
// the aggregation, explores pushdown alternatives for that subtree, and
// substitutes the cheapest accuracy-feasible alternative.
func (a *Asalqa) rewrite(n lplan.Node) lplan.Node {
	// Rewrite children first (inner query blocks get their samplers
	// before outer blocks; the nested-sampler pass resolves conflicts).
	ch := n.Children()
	if len(ch) > 0 {
		newCh := make([]lplan.Node, len(ch))
		for i, c := range ch {
			newCh[i] = a.rewrite(c)
		}
		n = n.WithChildren(newCh)
	}
	agg, ok := n.(*lplan.Aggregate)
	if !ok {
		return n
	}
	state, approximable := a.seedState(agg)
	if !approximable {
		a.notef("aggregate %s: not approximable (MIN/MAX or no samplable aggregate)", agg.Describe())
		return n
	}
	best := a.bestSampledInput(agg, state)
	if best == nil {
		a.notef("aggregate: no feasible sampled plan; keeping exact input")
		return n
	}
	return best
}

// seedState builds the optimistic initial sampler state for an
// aggregate (§4.2.2): stratify on the group columns plus the condition
// columns of *IF aggregates. COUNT(DISTINCT) argument columns are noted
// separately — they may overlap universe columns without dissonance
// (§4.2.4).
func (a *Asalqa) seedState(agg *lplan.Aggregate) (samplerState, bool) {
	st := samplerState{SamplerState: lplan.NewSamplerState(nil)}
	for _, g := range agg.GroupCols {
		st.Strat.Add(g)
	}
	for _, spec := range agg.Aggs {
		switch spec.Kind {
		case lplan.AggMin, lplan.AggMax:
			// Sampling cannot bound extreme statistics (Table 1 lists only
			// COUNT/SUM/AVG/DISTINCT and *IF variants as supported).
			return st, false
		case lplan.AggSumIf, lplan.AggCountIf:
			if spec.Cond != lplan.NoColumn {
				st.Strat.Add(spec.Cond)
			}
		case lplan.AggCountDistinct:
			// COUNT(DISTINCT X) columns join the stratification set
			// (§4.2.2); costing exempts them when a universe sampler on X
			// can estimate the count directly (Table 8).
			if spec.Arg != lplan.NoColumn {
				st.CountDistinct = st.CountDistinct.Union(lplan.NewColSet(spec.Arg))
				st.Strat.Add(spec.Arg)
			}
		}
		// Value-skewed SUM/AVG arguments: record a bucket width so the
		// materialized sampler can stratify on ⌈X/width⌉ (§4.1.2).
		switch spec.Kind {
		case lplan.AggSum, lplan.AggSumIf, lplan.AggAvg:
			if spec.Arg != lplan.NoColumn {
				if width, ok := a.skewBucketWidth(agg.Input, spec.Arg); ok {
					if st.SkewBuckets == nil {
						st.SkewBuckets = map[lplan.ColumnID]float64{}
					}
					st.SkewBuckets[spec.Arg] = width
				}
			}
		}
	}
	return st, true
}

// skewBucketWidth inspects the base-column statistics behind col and,
// when the coefficient of variation is large (CV² > 4), returns a
// bucket width of a tenth of the value range.
func (a *Asalqa) skewBucketWidth(input lplan.Node, col lplan.ColumnID) (float64, bool) {
	ci, ok := lplan.ColumnByID(input.Columns(), col)
	if !ok || len(ci.Origins) != 1 {
		return 0, false
	}
	o := ci.Origins[0]
	ts, err := a.Est.Cat.TableStats(o.Table)
	if err != nil {
		return 0, false
	}
	cs := ts.Columns[o.Column]
	if cs == nil || cs.Min.IsNull() || !cs.Min.IsNumeric() {
		return 0, false
	}
	mean := cs.Avg
	if cs.Var <= 4*mean*mean {
		return 0, false
	}
	width := (cs.Max.Float() - cs.Min.Float()) / 10
	if width <= 0 {
		return 0, false
	}
	return width, true
}

// samplerState augments the paper's {S,U,ds,sfm} with bookkeeping for
// the COUNT DISTINCT dissonance exemption, the universe pairing group,
// and the provenance of sfm corrections.
type samplerState struct {
	lplan.SamplerState
	// CountDistinct columns may overlap universe columns (Table 8's
	// COUNT DISTINCT estimator remains unbiased under universe sampling).
	CountDistinct lplan.ColSet
	// UnivGroup pairs the two sides of a both-sides universe push; it
	// becomes the physical sampler's subspace seed.
	UnivGroup uint64
	// SFMEntries record each stratification-frequency correction with
	// the join-key columns it was accrued for. When a later push drops
	// those columns from the stratification set, the correction is
	// dropped with them (a single scalar sfm would go stale).
	SFMEntries []sfmEntry
	// SkewBuckets maps value-skewed aggregate argument columns to a
	// bucket width: if such a column is visible at the sampler, the
	// materialized distinct sampler additionally stratifies on
	// ⌈col/width⌉ so rare extreme values survive (§4.1.2's skewed-SUM
	// example). Detected from base-column variance, mirroring the
	// paper's implementation which "obtains column value variance at the
	// inputs".
	SkewBuckets map[lplan.ColumnID]float64
}

type sfmEntry struct {
	cols   lplan.ColSet
	factor float64
	// groups is the distinct-value count of the columns this entry's
	// join keys replaced (e.g. 5 for d_year standing behind date_sk):
	// the support check multiplies entry group counts directly instead
	// of relying on NDV products factorizing, which observed column-set
	// NDVs do not.
	groups float64
}

func (s samplerState) clone() samplerState {
	out := s
	out.SamplerState = s.SamplerState.Clone()
	if s.CountDistinct != nil {
		out.CountDistinct = s.CountDistinct.Union(lplan.ColSet{})
	}
	out.SFMEntries = append([]sfmEntry{}, s.SFMEntries...)
	if s.SkewBuckets != nil {
		out.SkewBuckets = make(map[lplan.ColumnID]float64, len(s.SkewBuckets))
		for k, v := range s.SkewBuckets {
			out.SkewBuckets[k] = v
		}
	}
	return out
}

// refreshSFM recomputes the scalar sfm from the entries that still
// apply (all their columns remain stratified or universe-sampled).
func (s *samplerState) refreshSFM() {
	live := s.Strat.Union(s.Univ)
	sfm := 1.0
	kept := s.SFMEntries[:0]
	for _, e := range s.SFMEntries {
		if e.cols.SubsetOf(live) {
			if e.factor > 0 {
				sfm *= e.factor
			}
			kept = append(kept, e)
		}
	}
	s.SFMEntries = kept
	s.SFM = sfm
}

// projectSFMEntries maps entry columns through a join-key equivalence.
func (s *samplerState) projectSFMEntries(m map[lplan.ColumnID]lplan.ColumnID) {
	for i, e := range s.SFMEntries {
		out := lplan.ColSet{}
		for id := range e.cols {
			if img, ok := m[id]; ok {
				out.Add(img)
			} else {
				out.Add(id)
			}
		}
		s.SFMEntries[i].cols = out
	}
}

// alternative is one explored subtree with samplers placed and costed.
type alternative struct {
	node lplan.Node
	cost float64
}

// bestSampledInput explores sampler placements below the aggregate and
// returns the cheapest feasible aggregate subtree (including the
// aggregation itself — the sampler's payoff lands at the aggregation's
// shuffle and beyond, so costs must be compared at that level), or nil
// when the exact plan wins.
func (a *Asalqa) bestSampledInput(agg *lplan.Aggregate, st samplerState) lplan.Node {
	alts := a.explore(agg.Input, st, 0)
	exactCost := a.CM.Cost(agg)
	var best lplan.Node
	bestCost := exactCost
	for _, alt := range alts {
		// Materialize physical samplers; infeasible ones degrade to
		// pass-through which adds no benefit, so costing handles both.
		// Universe pairs that did not survive costing intact are demoted
		// before the alternative is priced (§A's bottom-up rejection).
		mat := a.materialize(alt.node)
		a.enforceUniverseGroups(mat)
		if !hasRealSampler(mat) {
			continue
		}
		whole := agg.WithChildren([]lplan.Node{mat})
		c := a.CM.Cost(whole)
		if c < bestCost {
			bestCost = c
			best = whole
		}
	}
	return best
}

func hasRealSampler(n lplan.Node) bool {
	for _, s := range lplan.FindSamplers(n) {
		if s.Def != nil && s.Def.Type != lplan.SamplerPassThrough {
			return true
		}
	}
	return false
}

// explore generates sampled alternatives for placing a sampler with
// state st over input (§4.2.3–§4.2.5). Every alternative embeds one or
// more Sample nodes with logical states; physical materialization
// happens later.
func (a *Asalqa) explore(input lplan.Node, st samplerState, depth int) []alternative {
	if depth > 24 {
		return a.here(input, st)
	}
	alts := a.here(input, st)
	switch x := input.(type) {
	case *lplan.Select:
		alts = append(alts, a.pushPastSelect(x, st, depth)...)
	case *lplan.Project:
		alts = append(alts, a.pushPastProject(x, st, depth)...)
	case *lplan.Join:
		alts = append(alts, a.pushPastJoin(x, st, depth)...)
	case *lplan.Sample, *lplan.Aggregate, *lplan.Scan:
		// Stop: never nest samplers; never push past an aggregation;
		// a scan is already the deepest location.
	case *lplan.UnionAll:
		// Pushing into union arms requires positional column translation
		// across arms, which the binder's wrapper supports only for its
		// own columns; keep the sampler above the union.
	}
	return a.trim(alts)
}

// here places the sampler at the root of the subtree.
func (a *Asalqa) here(input lplan.Node, st samplerState) []alternative {
	s := &lplan.Sample{Input: input, State: st.SamplerState}
	s.State.Strat = st.Strat.Union(lplan.ColSet{})
	node := lplan.Node(s)
	a.stash(s, st)
	return []alternative{{node: node, cost: a.CM.Cost(node)}}
}

// stash associates extended state with a Sample node for later costing.
func (a *Asalqa) stash(s *lplan.Sample, st samplerState) {
	if a.extended == nil {
		a.extended = map[*lplan.Sample]samplerState{}
	}
	a.extended[s] = st
}

// trim keeps the cheapest BeamWidth alternatives.
func (a *Asalqa) trim(alts []alternative) []alternative {
	sort.Slice(alts, func(i, j int) bool { return alts[i].cost < alts[j].cost })
	if len(alts) > a.Opts.BeamWidth {
		alts = alts[:a.Opts.BeamWidth]
	}
	return alts
}

func (a *Asalqa) notef(format string, args ...any) {
	a.notes = append(a.notes, fmt.Sprintf(format, args...))
}

// pushPastSelect generates the two alternatives of §4.2.3:
// A1 stratifies additionally on the predicate columns (no accuracy
// loss, possibly worse performance); A2 keeps the stratification set
// but divides the downstream selectivity by the predicate selectivity.
func (a *Asalqa) pushPastSelect(sel *lplan.Select, st samplerState, depth int) []alternative {
	predCols := lplan.ColSet{}
	for id := range lplan.ExprColumns(sel.Pred) {
		predCols.Add(id)
	}
	var out []alternative

	// A1: Γ_{S∪C} below the select.
	st1 := st.clone()
	st1.Strat = st1.Strat.Union(predCols)
	if a.compatible(st1) {
		for _, alt := range a.explore(sel.Input, st1, depth+1) {
			node := sel.WithChildren([]lplan.Node{alt.node})
			out = append(out, alternative{node: node, cost: a.CM.Cost(node)})
		}
	}

	// A2: Γ_S below the select with ds scaled by the selectivity of the
	// conjuncts not already covered by stratification columns.
	st2 := st.clone()
	sel2 := a.uncoveredSelectivity(sel, st2.Strat)
	st2.DS *= sel2
	for _, alt := range a.explore(sel.Input, st2, depth+1) {
		node := sel.WithChildren([]lplan.Node{alt.node})
		out = append(out, alternative{node: node, cost: a.CM.Cost(node)})
	}
	return out
}

// uncoveredSelectivity multiplies the selectivities of the conjuncts
// whose columns are not all in the stratification set (covered
// conjuncts cannot lose groups, §4.2.3's per-conjunction refinement).
func (a *Asalqa) uncoveredSelectivity(sel *lplan.Select, strat lplan.ColSet) float64 {
	out := 1.0
	for _, conj := range splitConjuncts(sel.Pred) {
		refs := lplan.ColSet{}
		for id := range lplan.ExprColumns(conj) {
			refs.Add(id)
		}
		if refs.SubsetOf(strat) {
			continue
		}
		out *= a.Est.Selectivity(conj, sel.Input)
	}
	return out
}

func splitConjuncts(e lplan.Expr) []lplan.Expr {
	if b, ok := e.(*lplan.Binary); ok && b.Op == lplan.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []lplan.Expr{e}
}

// compatible checks the dissonance condition (§4.2.4): stratification
// and universe columns may overlap only slightly, except for COUNT
// DISTINCT columns.
func (a *Asalqa) compatible(st samplerState) bool {
	if len(st.Univ) == 0 || len(st.Strat) == 0 {
		return true
	}
	overlap := st.Strat.Intersect(st.Univ).Minus(st.CountDistinct)
	limit := len(st.Strat)
	if len(st.Univ) < limit {
		limit = len(st.Univ)
	}
	return len(overlap)*2 < limit || len(overlap) == 0
}

// pushPastProject pushes the sampler below a projection (Prop 7).
// Stratification columns that are computed by the projection are
// replaced by their generating columns (a finer stratification — never
// less accurate); universe columns must pass through unchanged.
func (a *Asalqa) pushPastProject(pr *lplan.Project, st samplerState, depth int) []alternative {
	inputIDs := lplan.OutputIDs(pr.Input)
	mapped := st.clone()

	// Universe columns must be pass-through.
	for id := range st.Univ {
		if !inputIDs.Has(id) {
			return nil
		}
	}
	newStrat := lplan.ColSet{}
	for id := range st.Strat {
		if inputIDs.Has(id) {
			newStrat.Add(id)
			continue
		}
		// Find the generating expression and stratify on its inputs.
		found := false
		for i, c := range pr.Cols {
			if c.ID == id {
				for ref := range lplan.ExprColumns(pr.Exprs[i]) {
					newStrat.Add(ref)
				}
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	mapped.Strat = newStrat
	mapped.refreshSFM()
	if !a.compatible(mapped) {
		return nil
	}
	var out []alternative
	for _, alt := range a.explore(pr.Input, mapped, depth+1) {
		node := pr.WithChildren([]lplan.Node{alt.node})
		out = append(out, alternative{node: node, cost: a.CM.Cost(node)})
	}
	return out
}
