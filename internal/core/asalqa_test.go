package core

import (
	"strings"
	"testing"

	"quickr/internal/catalog"
	"quickr/internal/cluster"
	"quickr/internal/lplan"
	"quickr/internal/opt"
	"quickr/internal/plancheck"
	"quickr/internal/sql"
	"quickr/internal/table"
)

// fixture builds a star schema with two fact tables sharing a customer
// key (so universe pairing applies), plus a small dimension.
func fixture(t *testing.T) (*catalog.Catalog, *Asalqa) {
	t.Helper()
	cat := catalog.New()

	sales := table.New("sales", table.NewSchema(
		table.Column{Name: "s_cust", Kind: table.KindInt},
		table.Column{Name: "s_dim", Kind: table.KindInt},
		table.Column{Name: "s_val", Kind: table.KindFloat},
		table.Column{Name: "s_detail", Kind: table.KindInt},
	), 4)
	for i := 0; i < 40000; i++ {
		sales.Append(i, table.Row{
			table.NewInt(int64(i % 4000)),
			table.NewInt(int64(i % 8)),
			table.NewFloat(float64(i%100) + 1),
			table.NewInt(int64(i)),
		})
	}
	returns := table.New("returns", table.NewSchema(
		table.Column{Name: "r_cust", Kind: table.KindInt},
		table.Column{Name: "r_amt", Kind: table.KindFloat},
	), 4)
	for i := 0; i < 8000; i++ {
		returns.Append(i, table.Row{table.NewInt(int64(i % 4000)), table.NewFloat(3)})
	}
	dim := table.New("dims", table.NewSchema(
		table.Column{Name: "d_key", Kind: table.KindInt},
		table.Column{Name: "d_grp", Kind: table.KindString},
	), 1)
	for i := 0; i < 8; i++ {
		dim.Append(i, table.Row{table.NewInt(int64(i)), table.NewString(string(rune('a' + i%4)))})
	}
	cat.Register(sales)
	cat.Register(returns)
	cat.Register(dim)
	cat.SetPrimaryKey("dims", "d_key")

	est := opt.NewEstimator(cat)
	cm := opt.NewCostModel(est, cluster.DefaultConfig())
	return cat, New(est, cm, DefaultOptions())
}

func place(t *testing.T, cat *catalog.Catalog, a *Asalqa, src string) *Result {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := catalog.NewBinder(cat).Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	plan = opt.Normalize(plan, a.Est)
	res, err := a.Place(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Every sampler placement these tests exercise must satisfy the
	// paper's plan invariants (dominance, C1/C2 support at the site,
	// universe pairing, no nesting) — fixup rewrites included.
	if err := plancheck.Logical(res.Plan); err != nil {
		t.Fatalf("ASALQA output violates plan invariants: %v\n%s", err, lplan.Format(res.Plan))
	}
	return res
}

func TestUniformChosenForHighSupportGroups(t *testing.T) {
	cat, a := fixture(t)
	res := place(t, cat, a, "SELECT s_dim, SUM(s_val) FROM sales GROUP BY s_dim")
	if !res.Sampled {
		t.Fatalf("expected sampled plan; notes: %v", res.Notes)
	}
	if len(res.Samplers) != 1 || res.Samplers[0].Def.Type != lplan.SamplerUniform {
		t.Fatalf("samplers: %v", describeSamplers(res))
	}
	if p := res.Samplers[0].Def.P; p <= 0 || p > 0.1 {
		t.Errorf("p=%v out of range", p)
	}
}

func TestSamplerPushedToScan(t *testing.T) {
	cat, a := fixture(t)
	res := place(t, cat, a, `SELECT d_grp, COUNT(*) FROM sales JOIN dims ON s_dim = d_key GROUP BY d_grp`)
	if !res.Sampled {
		t.Fatalf("expected sampled plan; notes: %v", res.Notes)
	}
	// The sampler should sit directly above the sales scan (first pass).
	text := lplan.Format(res.Plan)
	idx := strings.Index(text, "Sample")
	scanIdx := strings.Index(text, "Scan sales")
	if idx < 0 || scanIdx < idx {
		t.Errorf("sampler not pushed to the sales scan:\n%s", text)
	}
}

func TestMinMaxUnapproximable(t *testing.T) {
	cat, a := fixture(t)
	res := place(t, cat, a, "SELECT s_dim, MAX(s_val) FROM sales GROUP BY s_dim")
	if res.Sampled || !res.Unapproximable {
		t.Errorf("MIN/MAX queries must be unapproximable; got %v", describeSamplers(res))
	}
}

func TestHighCardinalityGroupUnapproximable(t *testing.T) {
	cat, a := fixture(t)
	// One group per detail row: no support, stratification keeps all.
	res := place(t, cat, a, "SELECT s_detail, SUM(s_val) FROM sales GROUP BY s_detail")
	if res.Sampled {
		t.Errorf("per-row grouping must be unapproximable; got %v", describeSamplers(res))
	}
}

func TestUniversePairForFactFactJoin(t *testing.T) {
	cat, a := fixture(t)
	res := place(t, cat, a, `SELECT s_dim, COUNT(DISTINCT s_cust), SUM(s_val)
		FROM sales JOIN returns ON s_cust = r_cust GROUP BY s_dim`)
	if !res.Sampled {
		t.Fatalf("expected sampled plan; notes: %v", res.Notes)
	}
	var universe []*lplan.Sample
	for _, s := range res.Samplers {
		if s.Def.Type == lplan.SamplerUniverse {
			universe = append(universe, s)
		}
	}
	if len(universe) != 2 {
		t.Fatalf("expected a universe pair, got %v\n%s", describeSamplers(res), lplan.Format(res.Plan))
	}
	if universe[0].Def.Seed != universe[1].Def.Seed {
		t.Error("pair must share the subspace seed")
	}
	if universe[0].Def.P != universe[1].Def.P {
		t.Error("pair must share the probability (§A global requirement)")
	}
}

func TestNoNestedSamplers(t *testing.T) {
	cat, a := fixture(t)
	res := place(t, cat, a, `SELECT d_grp, AVG(per_cust) FROM (
			SELECT s_cust AS cust, s_dim AS sd, SUM(s_val) AS per_cust
			FROM sales GROUP BY s_cust, s_dim
		) AS inner_q
		JOIN dims ON sd = d_key
		GROUP BY d_grp`)
	// Whatever the decision, no sampler may contain another in its
	// subtree.
	for _, s := range lplan.FindSamplers(res.Plan) {
		if s.Def == nil || s.Def.Type == lplan.SamplerPassThrough {
			continue
		}
		for _, inner := range lplan.FindSamplers(s.Input) {
			if inner.Def != nil && inner.Def.Type != lplan.SamplerPassThrough {
				t.Fatalf("nested samplers:\n%s", lplan.Format(res.Plan))
			}
		}
	}
}

func TestPlanStabilityAcrossK(t *testing.T) {
	// §4.2.6: plans are similar for k in [5, 100].
	cat, _ := fixture(t)
	types := map[float64]string{}
	for _, k := range []float64{5, 30, 100} {
		est := opt.NewEstimator(cat)
		cm := opt.NewCostModel(est, cluster.DefaultConfig())
		opts := DefaultOptions()
		opts.K = k
		a := New(est, cm, opts)
		res := place(t, cat, a, "SELECT s_dim, SUM(s_val) FROM sales GROUP BY s_dim")
		if !res.Sampled {
			t.Fatalf("k=%v: unapproximable", k)
		}
		types[k] = res.Samplers[0].Def.Type.String()
	}
	if types[5] != types[30] || types[30] != types[100] {
		t.Errorf("sampler type unstable across k: %v", types)
	}
}

func TestSelectPushdownAlternativeA2(t *testing.T) {
	cat, a := fixture(t)
	// The filter column has few values; pushing the sampler below the
	// select (A2) keeps performance, trading ds.
	res := place(t, cat, a, `SELECT s_dim, SUM(s_val) FROM sales WHERE s_val > 50 GROUP BY s_dim`)
	if !res.Sampled {
		t.Fatalf("expected sampled plan; notes: %v", res.Notes)
	}
	// Sampler must not be a pass-through and must sit below the Select
	// or stratify on its columns.
	text := lplan.Format(res.Plan)
	if !strings.Contains(text, "Sample") {
		t.Fatalf("no sampler:\n%s", text)
	}
}

func describeSamplers(res *Result) []string {
	var out []string
	for _, s := range res.Samplers {
		out = append(out, s.Def.String())
	}
	return out
}

func TestSkewedSumGetsBucketStratification(t *testing.T) {
	cat := catalog.New()
	tbl := table.New("skewed", table.NewSchema(
		table.Column{Name: "grp", Kind: table.KindInt},
		table.Column{Name: "val", Kind: table.KindFloat},
	), 4)
	for i := 0; i < 40000; i++ {
		v := 1.0
		if i%50 == 0 {
			v = 5000 // rare extreme values: CV² >> 4
		}
		tbl.Append(i, table.Row{table.NewInt(int64(i % 8)), table.NewFloat(v)})
	}
	cat.Register(tbl)
	est := opt.NewEstimator(cat)
	cm := opt.NewCostModel(est, cluster.DefaultConfig())
	a := New(est, cm, DefaultOptions())
	res := place(t, cat, a, "SELECT grp, SUM(val) FROM skewed GROUP BY grp")
	if !res.Sampled {
		t.Fatalf("expected sampled plan; notes: %v", res.Notes)
	}
	def := res.Samplers[0].Def
	if def.Type != lplan.SamplerDistinct || len(def.BucketCols) == 0 {
		t.Fatalf("skewed SUM must trigger bucket-stratified distinct sampling, got %s", def)
	}
	if def.BucketWidths[0] <= 0 {
		t.Fatalf("bucket width: %v", def.BucketWidths)
	}
}

func TestUnskewedSumStaysUniform(t *testing.T) {
	cat := catalog.New()
	tbl := table.New("flat", table.NewSchema(
		table.Column{Name: "grp", Kind: table.KindInt},
		table.Column{Name: "val", Kind: table.KindFloat},
	), 4)
	for i := 0; i < 40000; i++ {
		tbl.Append(i, table.Row{table.NewInt(int64(i % 8)), table.NewFloat(10 + float64(i%5))})
	}
	cat.Register(tbl)
	est := opt.NewEstimator(cat)
	cm := opt.NewCostModel(est, cluster.DefaultConfig())
	a := New(est, cm, DefaultOptions())
	res := place(t, cat, a, "SELECT grp, SUM(val) FROM flat GROUP BY grp")
	if !res.Sampled || res.Samplers[0].Def.Type != lplan.SamplerUniform {
		t.Fatalf("low-variance SUM should use the uniform sampler, got %v", describeSamplers(res))
	}
}
