package core

import (
	"math"

	"quickr/internal/lplan"
)

// materialize performs the costing step of §4.2.6 on every Sample node
// in the subtree: given the logical state {S, U, ds, sfm}, check
//
//	C1 — the stratification requirement is empty, or some p ≤ MaxP gives
//	     every distinct value of S at least K rows, where per-group
//	     support is estimated as rows/NDV(S) scaled by ds·sfm;
//	C2 — the universe requirement is empty;
//
// and pick: uniform (C1∧C2), universe (C1∧¬C2), distinct (¬C1∧C2, only
// if it still reduces data), pass-through otherwise.
func (a *Asalqa) materialize(n lplan.Node) lplan.Node {
	// Look up the extended exploration state by the ORIGINAL Sample
	// pointer before any rebuilding copies the node.
	if s, ok := n.(*lplan.Sample); ok {
		st, okx := a.extended[s]
		if !okx {
			st = samplerState{SamplerState: s.State}
		}
		def := a.chooseSampler(s.Input, st)
		out := &lplan.Sample{Input: a.materialize(s.Input), State: s.State, Def: &def}
		// Re-stash under the materialized copy so the pair-consistency
		// pass can recover the universe group.
		a.stash(out, st)
		return out
	}
	ch := n.Children()
	if len(ch) > 0 {
		newCh := make([]lplan.Node, len(ch))
		for i, c := range ch {
			newCh[i] = a.materialize(c)
		}
		n = n.WithChildren(newCh)
	}
	return n
}

// chooseSampler decides the physical sampler for a logical state at a
// given input.
func (a *Asalqa) chooseSampler(input lplan.Node, st samplerState) lplan.SamplerDef {
	rows := a.Est.Props(input).Rows
	if rows <= 0 {
		return lplan.SamplerDef{Type: lplan.SamplerPassThrough}
	}
	ds := math.Max(st.DS, 1e-9)

	// Columns that are stratified only because of COUNT DISTINCT are
	// exempt when the universe sampler covers them: the distinct count
	// over the chosen subspace scales up by 1/p (Table 8), so no
	// stratification is needed (§4.2.4's dissonance exception).
	strat := st.Strat
	if len(st.Univ) > 0 {
		strat = strat.Minus(st.CountDistinct.Intersect(st.Univ))
	}

	// Effective number of answer groups: join keys that replaced
	// other-side stratification columns contribute those columns' group
	// counts (the sfm correction of §4.2.4); unreplaced columns
	// contribute their own distinct-value count. Entries attached to
	// universe columns count even when the exemption emptied the strat
	// set — the answer still has those groups.
	stratCols := strat.Sorted()
	covered := lplan.ColSet{}
	live := strat.Union(st.Univ)
	groupDV := 1.0
	for _, e := range st.SFMEntries {
		if e.cols.SubsetOf(live) && e.groups > 0 {
			groupDV *= e.groups
			covered = covered.Union(e.cols)
		}
	}
	if residual := strat.Minus(covered); len(residual) > 0 {
		groupDV *= a.Est.NDVNoCap(input, residual.Sorted())
	}
	if st.SFMEntries == nil && st.SFM > 0 && st.SFM != 1 && len(stratCols) > 0 {
		// Fallback when only the scalar sfm survived.
		groupDV = a.Est.NDVNoCap(input, stratCols) * st.SFM
	}
	groupDV = math.Min(math.Max(1, groupDV), math.Max(1, rows))
	support := rows * ds / groupDV

	// Smallest p meeting C1 with binomial headroom (≥1.5K expected rows
	// per group, whp ≥ K actual), floored so aggregate values stay
	// within a small ratio of truth.
	need := 1.5 * a.Opts.K
	p := need / support
	if p < 0.01 {
		// Floor: below 1% the marginal performance gain is negligible but
		// per-group variance keeps growing; the paper's ±10% goal needs a
		// few hundred rows per group.
		p = 0.01
	}
	if p < a.Opts.MinP {
		// Contract-imposed floor: escalation rungs raise p above the
		// coverage-driven choice (callers raise MaxP alongside, so the
		// floor never flips C1 on its own).
		p = a.Opts.MinP
	}
	c1 := p <= a.Opts.MaxP
	c2 := len(st.Univ) == 0
	if p > a.Opts.MaxP {
		p = a.Opts.MaxP
	}

	// Bucketized stratification for value-skewed aggregate arguments:
	// applies to row-level samplers when the skewed column is visible at
	// this location (the paper stratifies on functions of columns,
	// §4.1.2; it does not apply to universe sampling, whose subspaces
	// must stay value-independent).
	inputIDs := lplan.OutputIDs(input)
	var bucketCols []lplan.ColumnID
	var bucketWidths []float64
	for _, id := range sortedSkewCols(st.SkewBuckets) {
		if inputIDs.Has(id) {
			bucketCols = append(bucketCols, id)
			bucketWidths = append(bucketWidths, st.SkewBuckets[id])
		}
	}

	switch {
	case c1 && c2:
		if len(bucketCols) > 0 {
			delta := int(math.Ceil(a.Opts.K / math.Min(1, ds)))
			return lplan.SamplerDef{
				Type: lplan.SamplerDistinct, P: p, Cols: stratCols, Delta: delta,
				BucketCols: bucketCols, BucketWidths: bucketWidths,
			}
		}
		return lplan.SamplerDef{Type: lplan.SamplerUniform, P: p}
	case c1 && !c2:
		// Universe sampling includes or excludes whole key subspaces, so
		// both group coverage (Prop. 4: 1−(1−p)^|G(C)|) and estimator
		// variance are governed by the number of distinct universe values
		// per group, not by rows. Require p·|G(C)| ≥ 8 effective
		// subspaces per group; below that the plan is rejected.
		univDV := a.Est.NDVNoCap(input, st.Univ.Sorted())
		perGroupUniv := math.Max(1, univDV/groupDV)
		if pU := a.Opts.K / perGroupUniv; pU > p {
			p = pU
		}
		if p > a.Opts.MaxP {
			return lplan.SamplerDef{Type: lplan.SamplerPassThrough}
		}
		seed := st.UnivGroup
		if seed == 0 {
			a.univGroupSeq++
			seed = a.univGroupSeq
		}
		return lplan.SamplerDef{Type: lplan.SamplerUniverse, P: p, Cols: st.Univ.Sorted(), Seed: seed}
	case !c1 && c2:
		if len(stratCols) == 0 {
			// Insufficient support for the whole answer and nothing to
			// stratify on: sampling cannot help.
			return lplan.SamplerDef{Type: lplan.SamplerPassThrough}
		}
		// Distinct sampler: worthwhile only when values repeat enough
		// that dropping the excess reduces data (≥ KL rows per value).
		perValue := rows / math.Max(1, a.Est.NDV(input, stratCols))
		if perValue < a.Opts.KL {
			return lplan.SamplerDef{Type: lplan.SamplerPassThrough}
		}
		delta := int(math.Ceil(a.Opts.K / math.Min(1, ds)))
		if delta < int(a.Opts.KL) {
			delta = int(a.Opts.KL)
		}
		if delta > 10000 {
			return lplan.SamplerDef{Type: lplan.SamplerPassThrough}
		}
		// Estimated output must still shrink meaningfully.
		outRows := rows*p + float64(delta)*a.Est.NDV(input, stratCols)
		if outRows > 0.8*rows {
			return lplan.SamplerDef{Type: lplan.SamplerPassThrough}
		}
		return lplan.SamplerDef{
			Type: lplan.SamplerDistinct, P: p, Cols: stratCols, Delta: delta,
			BucketCols: bucketCols, BucketWidths: bucketWidths,
		}
	default:
		return lplan.SamplerDef{Type: lplan.SamplerPassThrough}
	}
}

// sortedSkewCols returns the skew-bucket columns in deterministic order.
func sortedSkewCols(m map[lplan.ColumnID]float64) []lplan.ColumnID {
	out := make([]lplan.ColumnID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// dropNestedSamplers removes samplers that have another sampler in
// their subtree (§A: "Quickr does not allow nested samplers"). The
// deeper sampler — closer to the first pass, where gains are largest —
// is kept.
func (a *Asalqa) dropNestedSamplers(n lplan.Node) lplan.Node {
	ch := n.Children()
	if len(ch) > 0 {
		newCh := make([]lplan.Node, len(ch))
		for i, c := range ch {
			newCh[i] = a.dropNestedSamplers(c)
		}
		n = n.WithChildren(newCh)
	}
	s, ok := n.(*lplan.Sample)
	if !ok {
		return n
	}
	if inner := lplan.FindSamplers(s.Input); len(inner) > 0 {
		for _, in := range inner {
			if in.Def == nil || in.Def.Type != lplan.SamplerPassThrough {
				a.notef("dropped nested sampler above %s", in.Describe())
				return s.Input
			}
		}
	}
	return n
}

// enforceUniverseGroups applies the global requirement of §A: paired
// universe samplers (both sides of a join) must use identical column
// sets and probabilities. If costing demoted one member of a pair to a
// pass-through or a different type, the whole pair is demoted — a join
// of a universe sample of one input with the full other input is only
// valid when planned that way (a one-sided push), never as half of a
// pair. Surviving pairs unify on the minimum probability.
func (a *Asalqa) enforceUniverseGroups(n lplan.Node) {
	groups := map[uint64][]*lplan.Sample{}
	lplan.Walk(n, func(x lplan.Node) {
		s, ok := x.(*lplan.Sample)
		if !ok || s.Def == nil {
			return
		}
		st, okx := a.extended[s]
		if okx && st.UnivGroup != 0 {
			groups[st.UnivGroup] = append(groups[st.UnivGroup], s)
		} else if s.Def.Type == lplan.SamplerUniverse {
			groups[s.Def.Seed] = append(groups[s.Def.Seed], s)
		}
	})
	for _, members := range groups {
		if len(members) < 2 {
			continue
		}
		// Members unify on the LARGEST chosen probability: each member's
		// own p already satisfies its accuracy requirement, and raising p
		// never hurts accuracy (it costs performance, which costing has
		// already accepted within the 0.1 cap).
		p := 0.0
		allUniverse := true
		for _, m := range members {
			if m.Def.Type != lplan.SamplerUniverse {
				allUniverse = false
				break
			}
			if m.Def.P > p {
				p = m.Def.P
			}
		}
		if !allUniverse {
			for _, m := range members {
				m.Def = &lplan.SamplerDef{Type: lplan.SamplerPassThrough}
			}
			continue
		}
		for _, m := range members {
			m.Def.P = p
		}
	}
}
