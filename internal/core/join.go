package core

import (
	"math"

	"quickr/internal/lplan"
)

// pushPastJoin implements Figure 7 of the paper: pushing a sampler past
// an equi-join, either onto one input (PushSamplerOnOneSide) or onto
// both inputs as a paired universe sampler (PushSamplerOntoBothSides).
func (a *Asalqa) pushPastJoin(j *lplan.Join, st samplerState, depth int) []alternative {
	if len(j.LeftKeys) == 0 {
		return nil // cross joins: keep the sampler above
	}
	var out []alternative

	// One side: left, then right (outer joins only allow the preserved
	// side — sampling the null-supplying side of a left outer join can
	// only turn matches into padded rows, which dominance does not
	// cover, so we restrict to the left input for outer joins).
	for _, side := range []struct {
		left bool
	}{{true}, {false}} {
		if !side.left && j.Kind == lplan.LeftOuterJoin {
			continue
		}
		states := a.pushOneSide(j, st, side.left)
		for _, ns := range states {
			child := j.Left
			if !side.left {
				child = j.Right
			}
			for _, alt := range a.explore(child, ns, depth+1) {
				var node lplan.Node
				if side.left {
					node = j.WithChildren([]lplan.Node{alt.node, j.Right})
				} else {
					node = j.WithChildren([]lplan.Node{j.Left, alt.node})
				}
				out = append(out, alternative{node: node, cost: a.CM.Cost(node)})
			}
		}
	}

	// Both sides with a paired universe sampler.
	if j.Kind == lplan.InnerJoin {
		out = append(out, a.pushBothSides(j, st, depth)...)
	}
	return out
}

// keyMap returns the projection of column IDs across the join's key
// equivalence (πK_from→K_to).
func keyMap(from, to []lplan.ColumnID) map[lplan.ColumnID]lplan.ColumnID {
	m := make(map[lplan.ColumnID]lplan.ColumnID, len(from))
	for i := range from {
		m[from[i]] = to[i]
	}
	return m
}

// projectColSet replaces columns of s present in the map with their
// images (Figure 7 ProjectColSet).
func projectColSet(s lplan.ColSet, m map[lplan.ColumnID]lplan.ColumnID) lplan.ColSet {
	out := lplan.ColSet{}
	for id := range s {
		if img, ok := m[id]; ok {
			out.Add(img)
		} else {
			out.Add(id)
		}
	}
	return out
}

// pushOneSide computes the candidate sampler states for pushing the
// sampler to one input of the join (Figure 7 PushSamplerOnOneSide +
// OneSideHelper). left selects which input.
func (a *Asalqa) pushOneSide(j *lplan.Join, st samplerState, left bool) []samplerState {
	L, R := j.Left, j.Right
	Kl, Kr := j.LeftKeys, j.RightKeys
	if !left {
		L, R = R, L
		Kl, Kr = Kr, Kl
	}
	toL := keyMap(Kr, Kl)

	// Universe requirement: every universe column must exist on this
	// side (possibly through the key equivalence).
	Lc := lplan.OutputIDs(L)
	Ul := projectColSet(st.Univ, toL)
	if !Ul.SubsetOf(Lc) {
		return nil
	}
	return a.oneSideHelper(j, st, L, R, Kl, Kr, Ul)
}

// oneSideHelper is Figure 7's OneSideHelper: satisfy stratification on
// this side (replacing missing stratification columns by the join keys
// with an sfm correction) and enumerate join-key subsets to either
// stratify on or to penalize through ds.
func (a *Asalqa) oneSideHelper(j *lplan.Join, st samplerState, L, R lplan.Node, Kl, Kr []lplan.ColumnID, Ul lplan.ColSet) []samplerState {
	toL := keyMap(Kr, Kl)
	toR := keyMap(Kl, Kr)
	Lc := lplan.OutputIDs(L)

	base := st.clone()
	base.projectSFMEntries(toL)
	base.CountDistinct = projectColSet(base.CountDistinct, toL)
	if base.SkewBuckets != nil {
		mapped := map[lplan.ColumnID]float64{}
		for id, w := range base.SkewBuckets {
			if img, ok := toL[id]; ok {
				mapped[img] = w
			} else {
				mapped[id] = w
			}
		}
		base.SkewBuckets = mapped
	}

	Sf := projectColSet(base.Strat, toL) // normalized "full" strat cols
	Sl := Sf.Intersect(Lc)               // strat cols available on this side
	KlSet := lplan.NewColSet(Kl...)

	missing := Sf.Minus(Sl)
	keysNotInStrat := KlSet.Minus(Sl)
	var newEntry *sfmEntry
	if len(missing) > 0 && len(keysNotInStrat) > 0 {
		// Some stratification columns live on the other side: stratify on
		// the join keys instead and correct the group-support estimate by
		// sfm — the keys may have many more (or fewer) distinct values
		// than the columns they stand in for (§4.2.4's date_sk-for-d_year
		// example).
		numer := math.Min(
			a.Est.NDVNoCap(L, keysNotInStrat.Sorted()),
			a.Est.NDVNoCap(R, missing.Sorted()),
		)
		denom := a.Est.NDVNoCap(R, projectColSet(keysNotInStrat, toR).Sorted())
		if denom > 0 {
			newEntry = &sfmEntry{cols: keysNotInStrat, factor: numer / denom, groups: numer}
		}
		Sl = Sl.Union(KlSet)
	}
	// Stratification columns that are unavailable on this side and not
	// replaced by join keys are dropped: when the join keys are already
	// stratified, every key value keeps rows, so the group coverage
	// transfers through the join; any sfm corrections accrued for
	// dropped columns are removed by refreshSFM below. For universe
	// pushes, the dropped columns' group count still divides the
	// universe values per answer group, so it is re-attached to the
	// universe column set (costing filters entries by strat ∪ univ).
	var univEntry *sfmEntry
	if len(missing) > 0 && len(keysNotInStrat) == 0 && len(Ul) > 0 {
		g := 1.0
		for id := range missing {
			covered := false
			for _, e := range base.SFMEntries {
				if e.cols.Has(id) && e.groups > 0 {
					g *= e.groups
					covered = true
					break
				}
			}
			if !covered {
				g *= a.Est.NDVNoCap(R, []lplan.ColumnID{id})
			}
		}
		if g > 1 {
			univEntry = &sfmEntry{cols: Ul.Union(lplan.ColSet{}), groups: g}
		}
	}

	// Enumerate subsets of the remaining join keys to stratify on; the
	// skipped keys penalize ds because sampled key values may miss their
	// match on the other side.
	Krem := KlSet.Minus(Sl).Sorted()
	if len(Krem) > a.Opts.MaxSubsetKeys {
		Krem = Krem[:a.Opts.MaxSubsetKeys]
	}
	var out []samplerState
	for _, sub := range subsets(Krem) {
		subSet := lplan.NewColSet(sub...)
		skip := lplan.NewColSet(Krem...).Minus(subSet)
		ds := base.DS
		if len(skip) > 0 {
			dvL := a.Est.NDV(L, skip.Sorted())
			dvR := a.Est.NDV(R, projectColSet(skip, toR).Sorted())
			if dvL > 0 {
				ds = ds / dvL * math.Min(dvL, dvR)
			}
		}
		ns := base.clone()
		ns.Strat = Sl.Union(subSet)
		ns.Univ = Ul
		ns.DS = ds
		if newEntry != nil {
			ns.SFMEntries = append(ns.SFMEntries, *newEntry)
		}
		if univEntry != nil {
			ns.SFMEntries = append(ns.SFMEntries, *univEntry)
		}
		ns.refreshSFM()
		if !a.compatible(ns) {
			continue
		}
		out = append(out, ns)
	}
	return out
}

// subsets enumerates all subsets of ids (ids is small, capped by
// MaxSubsetKeys).
func subsets(ids []lplan.ColumnID) [][]lplan.ColumnID {
	n := len(ids)
	out := make([][]lplan.ColumnID, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		var s []lplan.ColumnID
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, ids[i])
			}
		}
		out = append(out, s)
	}
	return out
}

// prepareUnivCols is Figure 7's PrepareUnivCol: a universe requirement
// can attach to this join only when there is no existing requirement or
// the existing requirement is exactly the join keys.
func prepareUnivCols(existing lplan.ColSet, keys []lplan.ColumnID) lplan.ColSet {
	keySet := lplan.NewColSet(keys...)
	if len(existing) == 0 {
		return keySet
	}
	if len(existing) == len(keySet) && existing.SubsetOf(keySet) {
		return keySet
	}
	return nil
}

// pushBothSides pushes a paired universe sampler onto both join inputs
// (Figure 7 PushSamplerOntoBothSides). Both sides share a universe
// group so the physical samplers pick the same subspace.
func (a *Asalqa) pushBothSides(j *lplan.Join, st samplerState, depth int) []alternative {
	toL := keyMap(j.RightKeys, j.LeftKeys)
	toR := keyMap(j.LeftKeys, j.RightKeys)
	Ul := prepareUnivCols(projectColSet(st.Univ, toL), j.LeftKeys)
	Ur := prepareUnivCols(projectColSet(st.Univ, toR), j.RightKeys)
	if Ul == nil || Ur == nil {
		return nil
	}
	// Universe sampling applies to exactly one column set per query
	// sub-tree (§4.1.4): when an outer join already established a
	// universe requirement (st.Univ == these join keys), this pair joins
	// the existing group so all members pick the same subspace; only a
	// fresh requirement allocates a new group.
	group := st.UnivGroup
	if group == 0 {
		a.univGroupSeq++
		group = a.univGroupSeq
	}

	mk := func(L, R lplan.Node, Kl, Kr []lplan.ColumnID, u lplan.ColSet) []samplerState {
		states := a.oneSideHelper(j, st, L, R, Kl, Kr, u)
		for i := range states {
			states[i].UnivGroup = group
		}
		return states
	}
	ls := mk(j.Left, j.Right, j.LeftKeys, j.RightKeys, Ul)
	rs := mk(j.Right, j.Left, j.RightKeys, j.LeftKeys, Ur)
	if len(ls) == 0 || len(rs) == 0 {
		return nil
	}

	var out []alternative
	// Cap the cross product via the beam on each side's exploration.
	for _, lst := range ls {
		lAlts := a.explore(j.Left, lst, depth+1)
		for _, rst := range rs {
			rAlts := a.explore(j.Right, rst, depth+1)
			for _, la := range lAlts {
				for _, ra := range rAlts {
					node := j.WithChildren([]lplan.Node{la.node, ra.node})
					out = append(out, alternative{node: node, cost: a.CM.Cost(node)})
				}
			}
			if len(out) > 4*a.Opts.BeamWidth {
				return a.trim(out)
			}
		}
	}
	return a.trim(out)
}
