package core

import (
	"quickr/internal/lplan"
)

// addUniversePassthrough widens projections between a universe sampler
// and its aggregate so the universe columns reach the aggregation: the
// variance of a universe-sampled plan is computed over subspace
// subgroups (§B.1, "we maintain per-group values in parallel"), which
// requires the subspace identity alongside each row.
func addUniversePassthrough(n lplan.Node) lplan.Node {
	ch := n.Children()
	if len(ch) > 0 {
		newCh := make([]lplan.Node, len(ch))
		for i, c := range ch {
			newCh[i] = addUniversePassthrough(c)
		}
		n = n.WithChildren(newCh)
	}
	pr, ok := n.(*lplan.Project)
	if !ok {
		return n
	}
	needed := universeColsBelow(pr.Input)
	if len(needed) == 0 {
		return n
	}
	have := lplan.OutputIDs(pr)
	inputCols := pr.Input.Columns()
	exprs := append([]lplan.Expr{}, pr.Exprs...)
	cols := append([]lplan.ColumnInfo{}, pr.Cols...)
	changed := false
	for _, id := range needed.Sorted() {
		if have.Has(id) {
			continue
		}
		ci, ok := lplan.ColumnByID(inputCols, id)
		if !ok {
			continue
		}
		exprs = append(exprs, &lplan.ColRef{ID: ci.ID, Name: ci.Name, Kind: ci.Kind})
		cols = append(cols, ci)
		changed = true
	}
	if !changed {
		return n
	}
	return &lplan.Project{Input: pr.Input, Exprs: exprs, Cols: cols}
}

// universeColsBelow collects universe sampler columns in the subtree,
// not descending past aggregates (whose output re-keys the data).
func universeColsBelow(n lplan.Node) lplan.ColSet {
	out := lplan.ColSet{}
	var rec func(lplan.Node)
	rec = func(x lplan.Node) {
		if x == nil {
			return
		}
		if _, ok := x.(*lplan.Aggregate); ok {
			return
		}
		if s, ok := x.(*lplan.Sample); ok && s.Def != nil && s.Def.Type == lplan.SamplerUniverse {
			for _, c := range s.Def.Cols {
				out.Add(c)
			}
		}
		for _, c := range x.Children() {
			rec(c)
		}
	}
	rec(n)
	return out
}
