package lint

import (
	"go/ast"
	"strings"
)

// NoPrintf forbids writing to stdout from library packages. The
// engine's outputs flow through typed results (quickr.Result, run
// reports, EXPLAIN ANALYZE strings) so the CLI and the experiment
// harness decide what reaches the terminal; a stray fmt.Println in an
// operator corrupts -stats JSON piped to stdout and spams every test
// run. Commands under cmd/ own their stdout and are exempt, as are
// explicit fmt.Fprint* calls (the writer is then spelled out and
// reviewable). "Library" means any non-main package: commands and the
// runnable examples own their stdout.
var NoPrintf = &Analyzer{
	Name: "noprintf",
	Doc: "no fmt.Print/Printf/Println or builtin print/println in library " +
		"packages; return strings or write to an explicit io.Writer",
	Run: runNoPrintf,
}

var printFns = map[string]bool{"Print": true, "Printf": true, "Println": true}

func runNoPrintf(pass *Pass) error {
	if strings.Contains(pass.Path, "/cmd/") {
		return nil
	}
	if len(pass.Files) > 0 && pass.Files[0].Name.Name == "main" {
		return nil
	}
	for _, f := range pass.Files {
		fmtName := importName(f, "fmt")
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recv, fn := selectorCall(call); recv == fmtName && fmtName != "" && printFns[fn] {
				pass.Reportf(call.Pos(),
					"fmt.%s writes to stdout from a library package; return the string "+
						"or take an io.Writer", fn)
			}
			if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "print" || id.Name == "println") {
				pass.Reportf(call.Pos(),
					"builtin %s writes to stderr and survives into release builds; "+
						"use a logger or remove the debug print", id.Name)
			}
			return true
		})
	}
	return nil
}
