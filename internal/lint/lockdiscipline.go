package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// LockDiscipline enforces guarded-by annotations. A struct field whose
// doc or line comment contains
//
//	// guarded-by: <mutexField>
//
// may only be read or written while <mutexField> of the same receiver
// is held. The analyzer builds a per-function CFG, runs the lock-held
// dataflow (dataflow.go: Lock/RLock add a mutex to the held set,
// Unlock/RUnlock remove it, deferred unlocks keep it held until
// return, and the meet at join points is intersection so a mutex
// counts as held only when every path holds it), then checks every
// access to an annotated field.
//
// Accesses are checked through variables whose static type is known
// syntactically: method receivers and parameters declared with the
// annotated struct's type (plain or pointer). Helper functions that
// legitimately run with the lock already held declare it with
//
//	// caller-holds: <recv>.<mutexField>
//
// in their doc comment, which seeds the entry state of the analysis
// (the annotation is also a reviewable statement of the contract,
// mirroring the "...requires p.mu" comments it replaces).
//
// Composite-literal construction is exempt: a value still being built
// is not yet shared. Accesses inside nested function literals are
// checked with an empty entry state, because a closure may run on
// another goroutine after the enclosing critical section ended; if the
// closure genuinely runs synchronously under the lock, hoist the access
// or suppress with a reasoned //lint:ignore.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "fields annotated `// guarded-by: mu` may only be accessed with " +
		"the named mutex held (CFG lock-held dataflow; `// caller-holds:` " +
		"declares a lock inherited from the caller)",
	Run: runLockDiscipline,
}

var (
	guardedByRE   = regexp.MustCompile(`//\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)`)
	callerHoldsRE = regexp.MustCompile(`//\s*caller-holds:\s*([A-Za-z_][A-Za-z0-9_.]*)`)
)

// guardedType records one struct's annotated fields.
type guardedType struct {
	name   string
	fields map[string]string // field name -> guarding mutex field name
}

func runLockDiscipline(pass *Pass) error {
	types := collectGuardedTypes(pass.Files)
	if len(types) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLockFunc(pass, fn, types)
		}
	}
	return nil
}

// collectGuardedTypes finds `// guarded-by:` field annotations on
// struct type declarations across the package files.
func collectGuardedTypes(files []*ast.File) map[string]*guardedType {
	out := map[string]*guardedType{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				mu := guardAnnotation(fld)
				if mu == "" {
					continue
				}
				gt := out[ts.Name.Name]
				if gt == nil {
					gt = &guardedType{name: ts.Name.Name, fields: map[string]string{}}
					out[ts.Name.Name] = gt
				}
				for _, name := range fld.Names {
					gt.fields[name.Name] = mu
				}
			}
			return true
		})
	}
	return out
}

func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardedByRE.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

// typedVars maps local variable names to the guarded struct type they
// are statically declared with (receiver and parameters only — the
// honest syntactic type information available without go/types).
func typedVars(fn *ast.FuncDecl, types map[string]*guardedType) map[string]*guardedType {
	vars := map[string]*guardedType{}
	bind := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			tname := typeName(fld.Type)
			gt := types[tname]
			if gt == nil {
				continue
			}
			for _, name := range fld.Names {
				vars[name.Name] = gt
			}
		}
	}
	bind(fn.Recv)
	bind(fn.Type.Params)
	return vars
}

// typeName unwraps *T, (T) to the base type identifier.
func typeName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.StarExpr:
		return typeName(x.X)
	case *ast.ParenExpr:
		return typeName(x.X)
	}
	return ""
}

// callerHolds extracts the // caller-holds: annotations from a doc
// comment, resolving bare mutex names against the receiver/first typed
// parameter name.
func callerHolds(fn *ast.FuncDecl, vars map[string]*guardedType) lockState {
	st := lockState{}
	if fn.Doc == nil {
		return st
	}
	var firstVar string
	if fn.Recv != nil && len(fn.Recv.List) > 0 && len(fn.Recv.List[0].Names) > 0 {
		firstVar = fn.Recv.List[0].Names[0].Name
	} else {
		for name := range vars {
			if firstVar == "" || name < firstVar {
				firstVar = name
			}
		}
	}
	for _, c := range fn.Doc.List {
		for _, m := range callerHoldsRE.FindAllStringSubmatch(c.Text, -1) {
			path := m[1]
			if !strings.Contains(path, ".") && firstVar != "" {
				path = firstVar + "." + path
			}
			st[path] = true
		}
	}
	return st
}

func checkLockFunc(pass *Pass, fn *ast.FuncDecl, types map[string]*guardedType) {
	vars := typedVars(fn, types)
	graphs := cfgFuncs(fn)
	entry := callerHolds(fn, vars)
	for node, g := range graphs {
		st := entry
		if node != ast.Node(fn) {
			// Closures: no lock inherited — they may outlive the
			// critical section.
			st = lockState{}
		}
		la := lockFlow(g, st)
		for _, blk := range g.blocks {
			for _, s := range blk.stmts {
				checkGuardedAccesses(pass, s, la, vars)
			}
		}
	}
}

// checkGuardedAccesses inspects one CFG statement for accesses to
// guarded fields of statically-typed variables.
func checkGuardedAccesses(pass *Pass, s ast.Node, la *lockAnalysis, vars map[string]*guardedType) {
	forEachNode(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed as its own graph
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		gt := vars[base.Name]
		if gt == nil {
			return true
		}
		mu, guarded := gt.fields[sel.Sel.Name]
		if !guarded {
			return true
		}
		need := base.Name + "." + mu
		if !la.heldAt(s, need) {
			pass.Reportf(sel.Pos(),
				"%s.%s is guarded-by %s but %s is not held here (lock it, or annotate the function `// caller-holds: %s`)",
				base.Name, sel.Sel.Name, mu, need, need)
		}
		return true
	})
}
