package lint

import (
	"go/ast"
)

// SlotDiscipline enforces the internal/metrics write discipline inside
// the executor's fork/join regions. parallelParts(n, fn) runs fn(i)
// concurrently for each partition, and the per-operator metric slots
// are the lock-free mechanism that keeps those writers from racing:
// the coordinator calls op.Grow(n) once, each worker writes only
// op.Slot(i) for its own partition index i, and the coordinator reads
// Total() / adds AddWall() after the join. Violations are data races
// that go test -race only catches if the racing schedule happens to
// fire; this analyzer catches them at lint time:
//
//   - Grow / Total / AddWall called inside a parallelParts closure
//     (resizing or folding the slot slice while workers write to it);
//   - Slot(x) where x is not the closure's own partition-index
//     parameter (two workers sharing one slot is a silent race AND
//     double-counts rows in EXPLAIN ANALYZE).
var SlotDiscipline = &Analyzer{
	Name: "slotdiscipline",
	Doc: "inside parallelParts closures, per-partition metric slots must be " +
		"indexed by the closure's partition parameter, and Grow/Total/AddWall " +
		"are coordinator-only",
	Run: runSlotDiscipline,
}

var coordinatorOnly = map[string]string{
	"Grow":    "resizes the slot slice while workers hold slot pointers",
	"Total":   "folds all slots while workers are still writing them",
	"AddWall": "accumulates coordinator wall time; calling it per-worker double-counts",
}

func runSlotDiscipline(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "parallelParts" {
				return true
			}
			if len(call.Args) != 2 {
				return true
			}
			lit, ok := call.Args[1].(*ast.FuncLit)
			if !ok || len(lit.Type.Params.List) == 0 || len(lit.Type.Params.List[0].Names) == 0 {
				return true
			}
			checkClosure(pass, lit.Body, lit.Type.Params.List[0].Names[0].Name)
			return true
		})
	}
	return nil
}

// checkClosure walks one parallelParts worker body. Nested
// parallelParts closures are skipped here — the outer Inspect visits
// them as their own region with their own index parameter.
func checkClosure(pass *Pass, body ast.Node, indexParam string) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "parallelParts" {
			return false
		}
		_, method := selectorCall(call)
		if why, bad := coordinatorOnly[method]; bad {
			pass.Reportf(call.Pos(),
				"%s called inside a parallelParts closure: %s; call it from the coordinator", method, why)
		}
		if method == "Slot" && len(call.Args) == 1 {
			if id, ok := call.Args[0].(*ast.Ident); !ok || id.Name != indexParam {
				pass.Reportf(call.Pos(),
					"Slot argument must be this closure's partition index %q; "+
						"any other index races with the goroutine that owns that slot", indexParam)
			}
		}
		return true
	})
}
