package lint

import (
	"go/ast"
	"strings"
)

// globalRandFns are the math/rand top-level functions that draw from
// the shared global source. Sampling decisions made through them are
// irreproducible across runs and racy across goroutines, which breaks
// the paired-universe-sampler guarantee (both sides of a join must hash
// the same subspace from the same seed) and makes error bars
// unrepeatable. rand.New / rand.NewSource / rand.NewZipf construct
// explicitly seeded generators and stay legal.
var globalRandFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint32N": true, "Uint64N": true,
	"N": true,
}

// deterministicPkgs are packages whose output must be a pure function
// of their seeds: samplers (every kept-row decision feeds an unbiased
// Horvitz–Thompson estimate), the synthetic data generators, the BlinkDB
// baseline's offline sample builder, and the workload trace generator.
// Wall-clock reads there smuggle nondeterminism into results; the
// executor and CLI keep time.Now for wall-time metrics, which is fine.
var deterministicPkgs = []string{
	"/internal/sampler",
	"/internal/data",
	"/internal/blinkdb",
	"/internal/trace",
}

// NoRawRand forbids the global math/rand source everywhere in library
// code, and wall-clock reads inside the deterministic packages.
var NoRawRand = &Analyzer{
	Name: "norawrand",
	Doc: "forbid global math/rand functions (sampling must flow through seeded " +
		"*rand.Rand constructors) and time.Now/time.Since in deterministic " +
		"packages (samplers, data generators, baselines, traces)",
	Run: runNoRawRand,
}

func runNoRawRand(pass *Pass) error {
	deterministic := false
	for _, suffix := range deterministicPkgs {
		if strings.HasSuffix(pass.Path, suffix) || strings.Contains(pass.Path, suffix+"/") {
			deterministic = true
		}
	}
	for _, f := range pass.Files {
		randName := importName(f, "math/rand")
		randV2 := importName(f, "math/rand/v2")
		timeName := importName(f, "time")
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, fn := selectorCall(call)
			if recv == "" {
				return true
			}
			if (recv == randName || recv == randV2) && recv != "" && globalRandFns[fn] {
				pass.Reportf(call.Pos(),
					"%s.%s draws from the global math/rand source; use a seeded *rand.Rand "+
						"(rand.New(rand.NewSource(seed))) so sampling is reproducible", recv, fn)
			}
			if deterministic && recv == timeName && timeName != "" && (fn == "Now" || fn == "Since") {
				pass.Reportf(call.Pos(),
					"time.%s in %s makes a deterministic package depend on the wall clock; "+
						"thread a seed or an explicit timestamp instead", fn, pass.Path)
			}
			return true
		})
	}
	return nil
}
