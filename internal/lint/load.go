package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one directory's worth of parsed non-test Go files.
type Package struct {
	// Path is the module-qualified import path.
	Path string
	// Dir is the directory relative to the load root.
	Dir   string
	Files []*ast.File
}

// load expands patterns ("./...", "dir/...", plain directories) into
// packages under root and parses them. Test files, testdata trees,
// hidden directories and underscore-prefixed directories are skipped,
// matching the go tool's package-walking rules; files excluded by a
// //go:build constraint for the linter's own platform are skipped too.
// Parse errors do not abort the walk: every broken file across every
// package is collected and reported in one combined error.
func load(root string, patterns []string) ([]*Package, *token.FileSet, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	module, err := modulePath(root)
	if err != nil {
		return nil, nil, err
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "..." || pat == "./...":
			if err := walkDirs(root, ".", dirs); err != nil {
				return nil, nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Clean(strings.TrimSuffix(pat, "/..."))
			if err := walkDirs(root, base, dirs); err != nil {
				return nil, nil, err
			}
		default:
			dirs[filepath.Clean(pat)] = true
		}
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	var parseErrs []string
	for dir := range dirs {
		pkg, errs := parseDir(fset, root, module, dir)
		for _, e := range errs {
			parseErrs = append(parseErrs, e.Error())
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	if len(parseErrs) > 0 {
		sort.Strings(parseErrs)
		return nil, nil, fmt.Errorf("%d file(s) failed to parse:\n  %s",
			len(parseErrs), strings.Join(parseErrs, "\n  "))
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Dir < pkgs[j].Dir })
	return pkgs, fset, nil
}

func walkDirs(root, base string, into map[string]bool) error {
	start := filepath.Join(root, base)
	return filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != start && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		into[rel] = true
		return nil
	})
}

// parseDir parses one directory's package. Unparseable files are
// returned as errors (one per scanner error, so a file with several
// syntax problems reports them all) while the parseable rest of the
// package is still returned for analysis.
func parseDir(fset *token.FileSet, root, module, dir string) (*Package, []error) {
	entries, err := os.ReadDir(filepath.Join(root, dir))
	if err != nil {
		return nil, []error{err}
	}
	var files []*ast.File
	var errs []error
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(root, dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if !buildOK(src) {
			continue
		}
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments)
		if err != nil {
			if list, ok := err.(scanner.ErrorList); ok {
				for _, pe := range list {
					errs = append(errs, pe)
				}
			} else {
				errs = append(errs, err)
			}
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, errs
	}
	path := module
	if dir != "." {
		path = module + "/" + filepath.ToSlash(dir)
	}
	return &Package{Path: path, Dir: dir, Files: files}, errs
}

// buildOK evaluates a file's //go:build constraint (the first one
// before the package clause, per the spec) against the linter's own
// build context. Files constrained away — most commonly `//go:build
// ignore` helper programs and foreign-platform shims — would otherwise
// be analyzed as if they were part of the package.
func buildOK(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if !constraint.IsGoBuild(trimmed) {
			continue
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			return true // malformed constraint: let the parser see the file
		}
		return expr.Eval(buildTagOK)
	}
	return true
}

// buildTagOK reports whether one build tag holds for the linter's
// context: the host OS and architecture, and any Go release tag (the
// toolchain running the linter is at least as new as the sources it
// lints).
func buildTagOK(tag string) bool {
	if tag == runtime.GOOS || tag == runtime.GOARCH {
		return true
	}
	return strings.HasPrefix(tag, "go1.")
}

// modulePath reads the module path from root's go.mod.
func modulePath(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}
