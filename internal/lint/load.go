package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one directory's worth of parsed non-test Go files.
type Package struct {
	// Path is the module-qualified import path.
	Path string
	// Dir is the directory relative to the load root.
	Dir   string
	Files []*ast.File
}

// load expands patterns ("./...", "dir/...", plain directories) into
// packages under root and parses them. Test files, testdata trees,
// hidden directories and underscore-prefixed directories are skipped,
// matching the go tool's package-walking rules.
func load(root string, patterns []string) ([]*Package, *token.FileSet, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	module, err := modulePath(root)
	if err != nil {
		return nil, nil, err
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "..." || pat == "./...":
			if err := walkDirs(root, ".", dirs); err != nil {
				return nil, nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Clean(strings.TrimSuffix(pat, "/..."))
			if err := walkDirs(root, base, dirs); err != nil {
				return nil, nil, err
			}
		default:
			dirs[filepath.Clean(pat)] = true
		}
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	for dir := range dirs {
		pkg, err := parseDir(fset, root, module, dir)
		if err != nil {
			return nil, nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Dir < pkgs[j].Dir })
	return pkgs, fset, nil
}

func walkDirs(root, base string, into map[string]bool) error {
	start := filepath.Join(root, base)
	return filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != start && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		into[rel] = true
		return nil
	})
}

func parseDir(fset *token.FileSet, root, module, dir string) (*Package, error) {
	entries, err := os.ReadDir(filepath.Join(root, dir))
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(root, dir, name)
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	path := module
	if dir != "." {
		path = module + "/" + filepath.ToSlash(dir)
	}
	return &Package{Path: path, Dir: dir, Files: files}, nil
}

// modulePath reads the module path from root's go.mod.
func modulePath(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}
