package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// writeTree lays out a module under a temp dir: keys are slash paths
// relative to the root, values file contents. A go.mod is always
// written (load needs the module path).
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	if _, ok := files["go.mod"]; !ok {
		files["go.mod"] = "module tmp\n"
	}
	for rel, src := range files {
		full := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoadMultiPackage(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a.go":              "package tmp\n",
		"inner/one.go":      "package inner\n",
		"inner/two.go":      "package inner\nvar X = 1\n",
		"inner/sub/s.go":    "package sub\n",
		"inner/one_test.go": "package inner\nbroken{", // test files are never parsed
		"testdata/x.go":     "package broken{{{",      // testdata is skipped
		"_tools/t.go":       "package broken{{{",      // underscore dirs are skipped
		".hidden/h.go":      "package broken{{{",      // hidden dirs are skipped
	})
	pkgs, _, err := load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, p := range pkgs {
		got = append(got, fmt.Sprintf("%s(%d)", p.Path, len(p.Files)))
	}
	want := "tmp(1), tmp/inner(2), tmp/inner/sub(1)"
	if strings.Join(got, ", ") != want {
		t.Errorf("loaded %s, want %s", strings.Join(got, ", "), want)
	}
}

func TestLoadDirPattern(t *testing.T) {
	root := writeTree(t, map[string]string{
		"top.go":         "package tmp\n",
		"inner/one.go":   "package inner\n",
		"inner/sub/s.go": "package sub\n",
	})
	pkgs, _, err := load(root, []string{"inner"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "tmp/inner" {
		t.Fatalf("pattern \"inner\" loaded %+v, want just tmp/inner", pkgs)
	}
	pkgs, _, err = load(root, []string{"inner/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("pattern \"inner/...\" loaded %d packages, want 2", len(pkgs))
	}
}

// TestLoadBuildConstraints: files constrained away from the linter's
// platform — `//go:build ignore` helpers above all — must not be
// analyzed as part of the package, while files whose constraint holds
// must be.
func TestLoadBuildConstraints(t *testing.T) {
	root := writeTree(t, map[string]string{
		"keep.go": "package tmp\n",
		"gen.go":  "//go:build ignore\n\npackage main\n",
		"host.go": fmt.Sprintf("//go:build %s\n\npackage tmp\nvar H = 1\n", runtime.GOOS),
		"not.go":  fmt.Sprintf("//go:build !%s\n\npackage other\n", runtime.GOOS),
		"rel.go":  "//go:build go1.21\n\npackage tmp\nvar R = 1\n",
	})
	pkgs, _, err := load(root, []string{"."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	if n := len(pkgs[0].Files); n != 3 {
		t.Errorf("kept %d files, want 3 (keep.go, host.go, rel.go)", n)
	}
}

// TestLoadParseErrorsAggregated: every broken file is reported, in one
// error, with positions — not a panic and not just the first failure.
func TestLoadParseErrorsAggregated(t *testing.T) {
	root := writeTree(t, map[string]string{
		"ok.go":       "package tmp\n",
		"bad1.go":     "package tmp\nfunc f( {\n",
		"sub/bad2.go": "package sub\nvar x = \n",
		"sub/good.go": "package sub\n",
	})
	_, _, err := load(root, []string{"./..."})
	if err == nil {
		t.Fatal("load succeeded despite two unparseable files")
	}
	msg := err.Error()
	for _, want := range []string{"bad1.go", "bad2.go"} {
		if !strings.Contains(msg, want) {
			t.Errorf("combined parse error does not mention %s:\n%s", want, msg)
		}
	}
}

func TestLoadMissingGoMod(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "p.go"), []byte("package p\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := load(root, []string{"."}); err == nil {
		t.Fatal("load without go.mod succeeded; the module path would be unknowable")
	}
}
