// True-negative fixture for ctxflow: a service-layer package whose
// unbounded loops all observe cancellation.
package service

import "context"

type server struct {
	ctx  context.Context
	work chan func()
}

func (s *server) ServeHTTP() {
	s.loop()
}

func (s *server) loop() {
	for {
		select {
		case <-s.ctx.Done():
			return
		case fn, ok := <-s.work:
			if !ok {
				return
			}
			fn()
		}
	}
}

// bounded loops (a condition) are out of scope entirely.
func (s *server) boundedRetry(n int) {
	for i := 0; i < n; i++ {
		fn, ok := <-s.work
		if !ok {
			return
		}
		fn()
	}
}
