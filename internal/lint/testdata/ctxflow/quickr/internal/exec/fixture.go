// Fixture for the ctxflow analyzer: unbounded loops reachable from
// Run must observe context cancellation.
package exec

import "context"

type op struct {
	ctx   context.Context
	input chan int
	total int
}

// Run seeds the reachability walk.
func Run(ctx context.Context, o *op) {
	o.drain()
	o.drainChecked(ctx)
	o.drainViaHelper()
	o.drainIgnored()
}

// drain pulls until the channel closes, never checking cancellation.
func (o *op) drain() {
	for { // want "never observes context cancellation"
		v, ok := <-o.input
		if !ok {
			return
		}
		o.total += v
	}
}

// drainChecked selects on ctx.Done alongside the input.
func (o *op) drainChecked(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case v, ok := <-o.input:
			if !ok {
				return
			}
			o.total += v
		}
	}
}

// drainViaHelper observes through a same-package callee.
func (o *op) drainViaHelper() {
	for {
		if o.ctxErr() != nil {
			return
		}
		v, ok := <-o.input
		if !ok {
			return
		}
		o.total += v
	}
}

func (o *op) ctxErr() error {
	return o.ctx.Err()
}

// drainIgnored is structurally bounded by its caller's contract; the
// reasoned suppression keeps it out of the findings.
func (o *op) drainIgnored() {
	//lint:ignore ctxflow drains a pre-closed staging channel; bounded by construction
	for {
		_, ok := <-o.input
		if !ok {
			return
		}
	}
}

// notReachable is never called from an entry point, so its loop is
// not flagged even though it never checks cancellation.
func notReachable(c chan int) {
	for {
		if _, ok := <-c; !ok {
			return
		}
	}
}
