// ctxflow is scoped to internal/exec and internal/service; this
// optimizer package may loop however it likes.
package opt

func RunFixpoint(steps chan func() bool) {
	for {
		step, ok := <-steps
		if !ok || !step() {
			return
		}
	}
}
