// Fixture for the norawrand analyzer: quickr/internal/sampler is a
// deterministic package, so both the global math/rand source and the
// wall clock are banned here.
package sampler

import (
	"math/rand"
	"time"
)

func bad(seed int64) {
	_ = rand.Intn(10)     // want "global math/rand source"
	_ = rand.Float64()    // want "global math/rand source"
	rand.Shuffle(3, swap) // want "global math/rand source"
	rand.Seed(seed)       // want "global math/rand source"
	now := time.Now()     // want "wall clock"
	_ = time.Since(now)   // want "wall clock"
}

func good(seed int64) {
	rng := rand.New(rand.NewSource(seed)) // seeded constructors stay legal
	_ = rng.Intn(10)                      // methods on an explicit generator are fine
	_ = rand.NewZipf(rng, 1.2, 1, 100)
	//lint:ignore norawrand exercising the suppression directive
	_ = rand.Intn(3)
}

func swap(i, j int) {}
