// Fixture for the norawrand analyzer outside the deterministic
// packages: the executor may read the wall clock for operator metrics,
// but the global math/rand source is still banned.
package exec

import (
	"math/rand"
	"time"
)

func mixed() time.Duration {
	t0 := time.Now() // wall-time metrics are legitimate here
	_ = rand.Int63() // want "global math/rand source"
	return time.Since(t0)
}
