// True-negative fixture for lockdiscipline: a package that uses
// guarded-by annotations correctly everywhere must produce no
// findings.
package pool

import "sync"

type gauge struct {
	mu sync.Mutex
	// guarded-by: mu
	val int64
}

func (g *gauge) Add(d int64) {
	g.mu.Lock()
	g.val += d
	g.mu.Unlock()
}

func (g *gauge) Load() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.val
}

// caller-holds: mu
func (g *gauge) addLocked(d int64) {
	g.val += d
}
