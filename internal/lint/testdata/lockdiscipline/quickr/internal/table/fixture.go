// Fixture for the lockdiscipline analyzer: seeded violations of
// guarded-by annotations, checked through receiver- and
// parameter-typed variables.
package table

import "sync"

type cache struct {
	mu sync.Mutex
	// guarded-by: mu
	entries map[string]int
	hits    int // guarded-by: mu
	name    string
}

func (c *cache) bad() int {
	return c.entries["k"] // want "guarded-by mu"
}

func (c *cache) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries["k"]
}

func (c *cache) goodExplicit() int {
	c.mu.Lock()
	n := c.hits
	c.mu.Unlock()
	return n
}

// branchy locks on only one path, so the meet at the join point must
// drop the mutex from the held set.
func (c *cache) branchy(cond bool) {
	if cond {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.hits++ // want "guarded-by mu"
}

// unlockEarly releases before the second access.
func (c *cache) unlockEarly() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
	c.entries["k"] = 1 // want "guarded-by mu"
}

// hitsLocked runs with the lock already held by its caller.
// caller-holds: mu
func (c *cache) hitsLocked() int {
	return c.hits // ok: caller-holds annotation seeds the entry state
}

// closureEscape hands out a closure that may run after the critical
// section ends; closures are analyzed with an empty entry state.
func (c *cache) closureEscape() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.hits // want "guarded-by mu"
	}
}

// reset goes through a parameter, not a receiver.
func reset(c *cache) {
	c.entries = nil // want "guarded-by mu"
}

func resetLocked(c *cache) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = nil
}

// unguarded fields need no lock.
func (c *cache) title() string {
	return c.name
}
