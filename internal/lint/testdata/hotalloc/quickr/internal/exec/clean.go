// True-negative fixture for hotalloc: a //hot: function whose loops
// use the allocation-free idioms the analyzer is steering toward.
package exec

import "strconv"

//hot:verified allocation-free kernel loop
func goodKernel(rows []int, buf []byte) ([]int, []byte) {
	out := make([]int, 0, len(rows))
	for _, r := range rows {
		out = append(out, r*2)                     // preallocated: fine
		buf = strconv.AppendInt(buf, int64(r), 10) // no fmt, no concat
	}
	return out, buf
}

//hot:buffer-reuse loop
func goodReuse(batches [][]int, scratch []int) int {
	n := 0
	for _, b := range batches {
		scratch = scratch[:0]
		for _, v := range b {
			scratch = append(scratch, v)
		}
		n += len(scratch)
	}
	return n
}
