// Fixture for the hotalloc analyzer: allocating constructs inside
// loops of //hot:-marked functions.
package exec

import "fmt"

//hot:per-row formatting path (seeded violation)
func badFmt(rows []int) int {
	n := 0
	for _, r := range rows {
		s := fmt.Sprintf("%d", r) // want "fmt.Sprintf in a //hot: loop"
		n += len(s)
	}
	return n
}

//hot:group-key construction path (seeded violation)
func badConcat(keys []string) int {
	h := 0
	for _, k := range keys {
		key := "g:" + k // want "string concatenation in a //hot: loop"
		h += len(key)
	}
	return h
}

//hot:result accumulation path (seeded violation)
func badAppend(rows []int) []int {
	var out []int
	for _, r := range rows {
		out = append(out, r) // want `append grows "out" inside a //hot: loop`
	}
	return out
}

//hot:interface boxing path (seeded violation)
func badBox(vals []int) int {
	n := 0
	for _, v := range vals {
		x := any(v) // want `any\(...\) conversion in a //hot: loop`
		if x != nil {
			n++
		}
		args := []any{v} // want `\[\]any literal in a //hot: loop`
		n += len(args)
	}
	return n
}

//hot:loop inside a closure is still hot
func badClosure(rows []int) func() []int {
	return func() []int {
		var out []int
		for _, r := range rows {
			out = append(out, r) // want `append grows "out" inside a //hot: loop`
		}
		return out
	}
}

// coldPath has no //hot: marker: the same constructs are legal.
func coldPath(rows []int) []string {
	var out []string
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%d", r))
	}
	return out
}
