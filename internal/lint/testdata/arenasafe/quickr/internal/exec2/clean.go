// True-negative fixture for arenasafe: the joinRows idiom — one arena
// per call, rows filled in place, results consumed before the next
// task starts.
package exec2

type rowArena struct{ buf []int }

func (a *rowArena) alloc(n int) []int {
	out := make([]int, 0, n)
	return out
}

func serialFan(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func joinLocal(left, right []int) []int {
	var ar rowArena
	row := ar.alloc(len(left) + len(right))
	for _, v := range left {
		row = append(row, v)
	}
	for _, v := range right {
		row = append(row, v)
	}
	return row
}

// serial fan-out shares no goroutines, so a shared arena is fine.
func serialShared(n int) {
	var ar rowArena
	serialFan(n, func(i int) {
		row := ar.alloc(2)
		row = append(row, i)
		_ = row
	})
}
