// Fixture for the arenasafe analyzer: the three ways arena rows go
// wrong — cross-worker slab sharing, aliasing appends, and escapes.
package exec

type rowArena struct{ buf []any }

func (a *rowArena) alloc(n int) []any {
	if cap(a.buf) < n {
		a.buf = make([]any, 4096)
	}
	out := a.buf[0:0:n]
	a.buf = a.buf[n:]
	return out
}

func parallelParts(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

type sink struct {
	last []any
	rows [][]any
}

// badShared allocates from one slab inside concurrent workers.
func badShared(n int) {
	var ar rowArena
	parallelParts(n, func(i int) {
		row := ar.alloc(4) // want "declared outside this worker closure"
		row = append(row, i)
		_ = row
	})
}

// badAlias forks a second variable off an arena row.
func badAlias(ar *rowArena) {
	row := ar.alloc(4)
	row2 := append(row, nil) // want `append aliases arena row "row"`
	_ = row2
}

// badCopyAlias does the same through one level of copying.
func badCopyAlias(ar *rowArena) {
	row := ar.alloc(4)
	alias := row
	more := append(alias, nil) // want `append aliases arena row "alias"`
	_ = more
}

// badSend publishes a row to another goroutine.
func badSend(ar *rowArena, out chan []any) {
	row := ar.alloc(4)
	out <- row // want `arena row "row" sent on a channel`
}

// badStore pins the slab through a longer-lived struct.
func badStore(ar *rowArena, s *sink) {
	row := ar.alloc(4)
	s.last = row // want `arena row "row" stored into field`
}

// badStoreIndexed pins the slab through an indexed field.
func badStoreIndexed(ar *rowArena, s *sink) {
	row := ar.alloc(4)
	s.rows[0] = row // want `arena row "row" stored into`
}

// badGo leaks a row into a goroutine that may outlive the task.
func badGo(ar *rowArena) {
	row := ar.alloc(4)
	go func() {
		_ = row // want `arena row "row" captured by a go-closure`
	}()
}

// goodPerTask declares the arena inside the per-task closure.
func goodPerTask(n int) {
	parallelParts(n, func(i int) {
		var ar rowArena
		row := ar.alloc(4)
		row = append(row, i)
		_ = row
	})
}

// goodFill fills a row in place — the self-append is the intended use.
func goodFill(ar *rowArena) []any {
	row := ar.alloc(0)
	for i := 0; i < 4; i++ {
		row = append(row, i)
	}
	return row
}
