// Fixture for the slotdiscipline analyzer: metric-slot access inside
// parallelParts worker closures.
package exec

type op struct{}

func (op) Grow(n int)      {}
func (op) Slot(i int) *int { return nil }
func (op) Total() int      { return 0 }
func (op) AddWall(d int)   {}

func parallelParts(n int, fn func(i int) error) error { return nil }

func region(o op, parts int) {
	o.Grow(parts) // coordinator side: legal
	_ = parallelParts(parts, func(i int) error {
		o.Grow(parts) // want "coordinator"
		_ = o.Slot(i) // own partition index: legal
		_ = o.Slot(0) // want "partition index"
		j := i + 1
		_ = o.Slot(j) // want "partition index"
		_ = o.Total() // want "coordinator"
		o.AddWall(1)  // want "coordinator"
		return nil
	})
	_ = o.Total() // coordinator side after the join: legal
}

func nested(o op, parts int) {
	_ = parallelParts(parts, func(pi int) error {
		// An inner fork/join region is governed by its own index.
		return parallelParts(2, func(k int) error {
			_ = o.Slot(k)  // inner closure's own index: legal
			_ = o.Slot(pi) // want "partition index"
			return nil
		})
	})
}

func suppressed(o op, parts int) {
	_ = parallelParts(parts, func(i int) error {
		//lint:ignore slotdiscipline single-partition fallback owns slot 0
		_ = o.Slot(0)
		return nil
	})
}
