// Fixture for the noprintf analyzer: stdout writes from a library
// package.
package report

import (
	"fmt"
	"io"
)

func bad(x int) {
	fmt.Println("debug", x) // want "stdout"
	fmt.Printf("%d\n", x)   // want "stdout"
	fmt.Print(x)            // want "stdout"
	println("here")         // want "builtin println"
	print("here")           // want "builtin print"
}

func good(w io.Writer, x int) string {
	fmt.Fprintln(w, x) // explicit writer: legal
	return fmt.Sprintf("%d", x)
}
