// Fixture for the noprintf analyzer: main packages own their stdout.
package main

import "fmt"

func main() {
	fmt.Println("commands may print")
}
