// Fixture for the weightprop analyzer: plan-node literals constructed
// from another package must spell out their weight field.
package opt

import (
	"quickr/internal/exec"
	"quickr/internal/lplan"
)

func rebuild(cols []lplan.ColumnInfo, tbl *exec.Table) {
	_ = &lplan.Scan{Table: "t", Cols: cols}                   // want "WeightColumn"
	_ = &lplan.Scan{Table: "t", Cols: cols, WeightColumn: ""} // explicit: legal
	_ = lplan.Scan{Table: "t"}                                // want "WeightColumn"
	_ = &exec.PScan{Tbl: tbl}                                 // want "WeightIdx"
	_ = &exec.PScan{Tbl: tbl, WeightIdx: -1}                  // explicit: legal
	_ = &lplan.Select{}                                       // other node types carry no weight field
	//lint:ignore weightprop constructed for a shape-only unit test
	_ = &lplan.Scan{Table: "t"}
}
