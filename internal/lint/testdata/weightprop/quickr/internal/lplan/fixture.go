// Fixture for the weightprop analyzer inside the defining package,
// where the literal is unqualified.
package lplan

type Scan struct {
	Table        string
	WeightColumn string
}

func clone(s *Scan) *Scan {
	return &Scan{Table: s.Table} // want "WeightColumn"
}

func cloneOK(s *Scan) *Scan {
	return &Scan{Table: s.Table, WeightColumn: s.WeightColumn}
}

func positional(s *Scan) Scan {
	// Positional literals necessarily include every field.
	return Scan{s.Table, s.WeightColumn}
}
