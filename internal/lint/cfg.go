package lint

import (
	"go/ast"
	"go/token"
)

// This file builds per-function control-flow graphs from go/ast, the
// substrate the dataflow analyzers (dataflow.go) run on. The design
// mirrors golang.org/x/tools/go/cfg at a smaller scale: a function body
// becomes basic blocks of simple statements connected by successor
// edges, with structured control flow (if/for/range/switch/select),
// labeled break/continue, fallthrough and return all lowered to edges.
//
// Two deliberate simplifications keep the builder small and the
// analyses conservative:
//
//   - goto is not modeled precisely: a goto ends its block with an edge
//     to every labeled block (the repo has no gotos; analyses stay
//     sound-for-our-rules because extra edges only widen the meet).
//   - panic/os.Exit are not treated as terminators; the spurious
//     fallthrough edge again only makes analyses more conservative.
//
// Function literals are NOT inlined into the enclosing CFG: a closure
// runs at an unknown time (possibly on another goroutine), so each
// FuncLit gets its own graph via cfgFuncs.

// cfgBlock is one basic block: a straight-line run of simple statements
// executed in order, then a jump to one of succs.
type cfgBlock struct {
	// stmts holds "simple" statements and control-expression carriers:
	// ExprStmt, AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt,
	// DeferStmt, ReturnStmt, plus bare ast.Expr entries for if/for/
	// switch conditions so transfer functions see every evaluation.
	stmts []ast.Node
	succs []*cfgBlock
	// index is the block's position in cfg.blocks (stable iteration).
	index int
}

// cfg is the control-flow graph of one function body.
type cfg struct {
	entry  *cfgBlock
	exit   *cfgBlock // every return/body-end edge lands here; no stmts
	blocks []*cfgBlock
}

// buildCFG lowers a function body. A nil body (declaration without a
// definition) yields a trivial entry→exit graph.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{g: &cfg{}}
	b.g.entry = b.newBlock()
	b.g.exit = b.newBlock()
	cur := b.g.entry
	if body != nil {
		cur = b.stmtList(body.List, cur)
	}
	b.edge(cur, b.g.exit)
	return b.g
}

type loopFrame struct {
	label          string
	breakTo        *cfgBlock
	continueTo     *cfgBlock // nil for switch/select frames
	isBreakTarget  bool      // switches/selects accept break but not continue
	labeledBlockTo *cfgBlock // labeled plain blocks accept labeled break
}

type cfgBuilder struct {
	g       *cfg
	frames  []loopFrame
	labeled map[string]*cfgBlock // goto targets (conservative)
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt, cur *cfgBlock) *cfgBlock {
	for _, s := range list {
		cur = b.stmt(s, cur, "")
	}
	return cur
}

// stmt lowers one statement, returning the block control falls out
// into. label is the pending label when the statement was wrapped in a
// LabeledStmt. A nil return means control cannot fall through (return,
// break, continue); callers must start a fresh block for any following
// statements — stmtList handles that by passing nil onward, and edge()
// tolerates nil.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *cfgBlock, label string) *cfgBlock {
	if cur == nil {
		// Unreachable code after a terminator still gets a block so its
		// statements are visited (with no predecessors, analyses treat
		// the facts as top).
		cur = b.newBlock()
	}
	switch x := s.(type) {
	case *ast.LabeledStmt:
		if b.labeled == nil {
			b.labeled = map[string]*cfgBlock{}
		}
		head := b.newBlock()
		b.edge(cur, head)
		b.labeled[x.Label.Name] = head
		return b.stmt(x.Stmt, head, x.Label.Name)

	case *ast.BlockStmt:
		return b.stmtList(x.List, cur)

	case *ast.IfStmt:
		if x.Init != nil {
			cur = b.stmt(x.Init, cur, "")
		}
		cur.stmts = append(cur.stmts, x.Cond)
		thenB := b.newBlock()
		b.edge(cur, thenB)
		after := b.newBlock()
		thenEnd := b.stmtList(x.Body.List, thenB)
		b.edge(thenEnd, after)
		if x.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			elseEnd := b.stmt(x.Else, elseB, "")
			b.edge(elseEnd, after)
		} else {
			b.edge(cur, after)
		}
		return after

	case *ast.ForStmt:
		if x.Init != nil {
			cur = b.stmt(x.Init, cur, "")
		}
		head := b.newBlock()
		b.edge(cur, head)
		if x.Cond != nil {
			head.stmts = append(head.stmts, x.Cond)
		}
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		if x.Cond != nil {
			b.edge(head, after)
		}
		post := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, breakTo: after, continueTo: post, isBreakTarget: true})
		bodyEnd := b.stmtList(x.Body.List, body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(bodyEnd, post)
		if x.Post != nil {
			b.stmt(x.Post, post, "")
		}
		b.edge(post, head)
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(cur, head)
		// The range expression and key/value assignment happen at the
		// head on every iteration.
		head.stmts = append(head.stmts, x)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after) // empty collection
		b.frames = append(b.frames, loopFrame{label: label, breakTo: after, continueTo: head, isBreakTarget: true})
		bodyEnd := b.stmtList(x.Body.List, body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(bodyEnd, head)
		return after

	case *ast.SwitchStmt:
		if x.Init != nil {
			cur = b.stmt(x.Init, cur, "")
		}
		if x.Tag != nil {
			cur.stmts = append(cur.stmts, x.Tag)
		}
		return b.switchBody(x.Body, cur, label, nil)

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			cur = b.stmt(x.Init, cur, "")
		}
		cur.stmts = append(cur.stmts, x.Assign)
		return b.switchBody(x.Body, cur, label, nil)

	case *ast.SelectStmt:
		after := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, breakTo: after, isBreakTarget: true})
		hasDefault := false
		for _, cl := range x.Body.List {
			cc := cl.(*ast.CommClause)
			caseB := b.newBlock()
			b.edge(cur, caseB)
			if cc.Comm != nil {
				caseB = b.stmt(cc.Comm, caseB, "")
			} else {
				hasDefault = true
			}
			end := b.stmtList(cc.Body, caseB)
			b.edge(end, after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if len(x.Body.List) == 0 || !hasDefault {
			// A select with no default can block forever; modeling that
			// precisely does not matter for our analyses.
			_ = hasDefault
		}
		return after

	case *ast.BranchStmt:
		switch x.Tok {
		case token.BREAK:
			for i := len(b.frames) - 1; i >= 0; i-- {
				fr := b.frames[i]
				if !fr.isBreakTarget {
					continue
				}
				if x.Label == nil || fr.label == x.Label.Name {
					b.edge(cur, fr.breakTo)
					return nil
				}
			}
			b.edge(cur, b.g.exit)
			return nil
		case token.CONTINUE:
			for i := len(b.frames) - 1; i >= 0; i-- {
				fr := b.frames[i]
				if fr.continueTo == nil {
					continue
				}
				if x.Label == nil || fr.label == x.Label.Name {
					b.edge(cur, fr.continueTo)
					return nil
				}
			}
			b.edge(cur, b.g.exit)
			return nil
		case token.GOTO:
			// Conservative: edge to the named label if seen, else to
			// every labeled block and the exit.
			if tgt, ok := b.labeled[x.Label.Name]; ok {
				b.edge(cur, tgt)
			} else {
				for _, tgt := range b.labeled {
					b.edge(cur, tgt)
				}
				b.edge(cur, b.g.exit)
			}
			return nil
		case token.FALLTHROUGH:
			// Handled structurally by switchBody via clause ordering;
			// treat as fallthrough-to-next by returning cur so the edge
			// is drawn there.
			return cur
		}
		return cur

	case *ast.ReturnStmt:
		cur.stmts = append(cur.stmts, x)
		b.edge(cur, b.g.exit)
		return nil

	default:
		// Simple statements: ExprStmt, AssignStmt, DeclStmt, IncDecStmt,
		// SendStmt, GoStmt, DeferStmt, EmptyStmt.
		if _, ok := s.(*ast.EmptyStmt); !ok {
			cur.stmts = append(cur.stmts, s)
		}
		return cur
	}
}

// switchBody lowers expression/type switch clauses. Each clause starts
// its own block off the dispatch block; fallthrough chains a clause's
// end into the next clause's body.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, dispatch *cfgBlock, label string, _ []*cfgBlock) *cfgBlock {
	after := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, breakTo: after, isBreakTarget: true})
	clauses := body.List
	caseBlocks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i := range clauses {
		caseBlocks[i] = b.newBlock()
		b.edge(dispatch, caseBlocks[i])
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := caseBlocks[i]
		for _, e := range cc.List {
			blk.stmts = append(blk.stmts, e)
		}
		end, falls := b.clauseBody(cc.Body, blk)
		if falls && i+1 < len(clauses) {
			b.edge(end, caseBlocks[i+1])
		} else {
			b.edge(end, after)
		}
	}
	if !hasDefault {
		b.edge(dispatch, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	return after
}

// clauseBody lowers a case clause body, reporting whether it ends in
// fallthrough.
func (b *cfgBuilder) clauseBody(list []ast.Stmt, cur *cfgBlock) (*cfgBlock, bool) {
	for i, s := range list {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i == len(list)-1 {
			return cur, true
		}
		cur = b.stmt(s, cur, "")
	}
	return cur, false
}

// cfgFuncs returns the CFGs of fn's body and of every function literal
// nested inside it, each keyed by its syntax node. The enclosing
// function's graph is keyed by the *ast.FuncDecl; literals by their
// *ast.FuncLit. Literal bodies are excluded from the enclosing graph's
// blocks (a closure's statements do not execute where it is defined).
func cfgFuncs(fn *ast.FuncDecl) map[ast.Node]*cfg {
	out := map[ast.Node]*cfg{}
	if fn.Body == nil {
		out[fn] = buildCFG(nil)
		return out
	}
	out[fn] = buildCFG(stripFuncLits(fn.Body))
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out[lit] = buildCFG(stripFuncLits(lit.Body))
		}
		return true
	})
	return out
}

// stripFuncLits returns body unchanged: the CFG builder appends whole
// statements (which may contain FuncLits) to blocks, and the dataflow
// walkers are responsible for not descending into nested FuncLits.
// Kept as a named hook so the contract is explicit at the call sites.
func stripFuncLits(body *ast.BlockStmt) *ast.BlockStmt { return body }

// forEachNode applies fn to every sub-node of root, NOT descending into
// nested function literals. This is the traversal the dataflow transfer
// functions must use so closure bodies don't leak into the enclosing
// function's facts.
func forEachNode(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			fn(n) // the literal itself is visible (e.g. for capture checks)
			return false
		}
		return fn(n)
	})
}
