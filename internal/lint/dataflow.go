package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Forward dataflow over the CFGs built in cfg.go. Two concrete
// analyses live here:
//
//   - reaching definitions (union meet): which assignments to a
//     variable can reach a given statement — the substrate hotalloc
//     uses to decide whether an appended-to slice was preallocated and
//     arenasafe uses to track which variables hold arena-backed rows;
//   - lock-held sets (intersection meet): which "<path>.<mutex>"
//     mutexes are provably held at each statement — the substrate of
//     lockdiscipline's guarded-by checking.
//
// Both analyses iterate to a fixpoint over the block graph; functions
// are small, so a simple worklist converges in a handful of passes.

// ---------------------------------------------------------------------
// Reaching definitions.

// def is one definition site of a named variable.
type def struct {
	id   int
	name string
	// rhs is the defining expression (nil for `var x T` without an
	// initializer and for range-bound variables).
	rhs ast.Expr
	// node is the statement that performed the definition.
	node ast.Node
}

// defSet is a small set of definition ids.
type defSet map[int]bool

func (s defSet) clone() defSet {
	c := make(defSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s defSet) equal(o defSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// reachState maps variable name -> reaching definition ids.
type reachState map[string]defSet

func (st reachState) clone() reachState {
	c := make(reachState, len(st))
	for k, v := range st {
		c[k] = v.clone()
	}
	return c
}

func (st reachState) mergeFrom(o reachState) bool {
	changed := false
	for k, v := range o {
		dst := st[k]
		if dst == nil {
			st[k] = v.clone()
			changed = true
			continue
		}
		for id := range v {
			if !dst[id] {
				dst[id] = true
				changed = true
			}
		}
	}
	return changed
}

func (st reachState) equal(o reachState) bool {
	if len(st) != len(o) {
		return false
	}
	for k, v := range st {
		if !v.equal(o[k]) {
			return false
		}
	}
	return true
}

// reachAnalysis is the result of running reaching definitions over one
// function graph.
type reachAnalysis struct {
	defs []*def
	// at maps each statement node in the CFG to the state holding
	// BEFORE the statement executes.
	at map[ast.Node]reachState
}

// defsOf returns the definitions of name reaching node n (nil when n is
// not a CFG statement or name has no tracked defs there).
func (r *reachAnalysis) defsOf(n ast.Node, name string) []*def {
	st := r.at[n]
	if st == nil {
		return nil
	}
	var out []*def
	for id := range st[name] {
		out = append(out, r.defs[id])
	}
	return out
}

// reachingDefs runs the analysis over one CFG.
func reachingDefs(g *cfg) *reachAnalysis {
	ra := &reachAnalysis{at: map[ast.Node]reachState{}}
	newDef := func(name string, rhs ast.Expr, node ast.Node) int {
		d := &def{id: len(ra.defs), name: name, rhs: rhs, node: node}
		ra.defs = append(ra.defs, d)
		return d.id
	}
	// Pre-assign def ids per statement so transfer is deterministic.
	stmtDefs := map[ast.Node][]int{}
	for _, blk := range g.blocks {
		for _, s := range blk.stmts {
			for _, nd := range defsIn(s) {
				stmtDefs[s] = append(stmtDefs[s], newDef(nd.name, nd.rhs, s))
			}
		}
	}

	in := make([]reachState, len(g.blocks))
	out := make([]reachState, len(g.blocks))
	for i := range g.blocks {
		in[i] = reachState{}
		out[i] = reachState{}
	}
	preds := predecessors(g)

	work := []int{g.entry.index}
	inWork := map[int]bool{g.entry.index: true}
	for i := range g.blocks {
		if !inWork[i] {
			work = append(work, i)
			inWork[i] = true
		}
	}
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		blk := g.blocks[bi]
		st := reachState{}
		for _, p := range preds[bi] {
			st.mergeFrom(out[p])
		}
		in[bi] = st
		cur := st.clone()
		for _, s := range blk.stmts {
			ra.at[s] = cur.clone()
			if ids := stmtDefs[s]; len(ids) > 0 {
				for _, id := range ids {
					d := ra.defs[id]
					cur[d.name] = defSet{id: true}
				}
			}
		}
		if !cur.equal(out[bi]) {
			out[bi] = cur
			for _, succ := range blk.succs {
				if !inWork[succ.index] {
					work = append(work, succ.index)
					inWork[succ.index] = true
				}
			}
		}
	}
	return ra
}

type namedDef struct {
	name string
	rhs  ast.Expr
}

// defsIn lists the variable definitions a single CFG statement makes.
// Nested function literals are opaque (their assignments run at an
// unknown time, so treating them as non-defs is the conservative
// choice for how hotalloc/arenasafe consume this analysis).
func defsIn(s ast.Node) []namedDef {
	var out []namedDef
	switch x := s.(type) {
	case *ast.AssignStmt:
		for i, lhs := range x.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			var rhs ast.Expr
			if len(x.Rhs) == len(x.Lhs) {
				rhs = x.Rhs[i]
			} else if len(x.Rhs) == 1 {
				rhs = x.Rhs[0] // multi-value call/type-assert/map read
			}
			out = append(out, namedDef{name: id.Name, rhs: rhs})
		}
	case *ast.DeclStmt:
		gd, ok := x.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return nil
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if name.Name == "_" {
					continue
				}
				var rhs ast.Expr
				if i < len(vs.Values) {
					rhs = vs.Values[i]
				}
				out = append(out, namedDef{name: name.Name, rhs: rhs})
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{x.Key, x.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				out = append(out, namedDef{name: id.Name, rhs: nil})
			}
		}
	case *ast.IncDecStmt:
		if id, ok := x.X.(*ast.Ident); ok {
			out = append(out, namedDef{name: id.Name, rhs: nil})
		}
	case *ast.TypeSwitchStmt:
		// `switch v := x.(type)` — v rebinds per clause; treat as one def.
		if as, ok := x.Assign.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				out = append(out, namedDef{name: id.Name, rhs: as.Rhs[0]})
			}
		}
	}
	return out
}

func predecessors(g *cfg) [][]int {
	preds := make([][]int, len(g.blocks))
	for _, blk := range g.blocks {
		for _, s := range blk.succs {
			preds[s.index] = append(preds[s.index], blk.index)
		}
	}
	return preds
}

// ---------------------------------------------------------------------
// Lock-held analysis.

// lockState is the set of mutex paths ("t.cacheMu", "s.mu") provably
// held. Meet is intersection: a mutex is held at a join point only if
// it is held on every incoming edge.
type lockState map[string]bool

func (st lockState) clone() lockState {
	c := make(lockState, len(st))
	for k := range st {
		c[k] = true
	}
	return c
}

func (st lockState) equal(o lockState) bool {
	if len(st) != len(o) {
		return false
	}
	for k := range st {
		if !o[k] {
			return false
		}
	}
	return true
}

func intersect(sts []lockState) lockState {
	if len(sts) == 0 {
		return lockState{}
	}
	out := sts[0].clone()
	for _, st := range sts[1:] {
		for k := range out {
			if !st[k] {
				delete(out, k)
			}
		}
	}
	return out
}

// lockAnalysis records, for every CFG statement, the locks held before
// it executes.
type lockAnalysis struct {
	at map[ast.Node]lockState
}

// heldAt reports whether mutex path mu is provably held entering n.
func (l *lockAnalysis) heldAt(n ast.Node, mu string) bool { return l.at[n][mu] }

// lockOps extracts the lock transfer of one statement: paths locked and
// unlocked by direct Lock/RLock/Unlock/RUnlock calls. Deferred unlocks
// are ignored (they fire at function exit, so the mutex stays held for
// the rest of the body — exactly the held-until-return semantics we
// want). Lock calls inside nested function literals don't execute here
// and are skipped by forEachNode.
func lockOps(s ast.Node) (locked, unlocked []string) {
	forEachNode(s, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path := renderPath(sel.X)
		if path == "" {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			locked = append(locked, path)
		case "Unlock", "RUnlock":
			unlocked = append(unlocked, path)
		}
		return true
	})
	if d, ok := s.(*ast.DeferStmt); ok {
		// The defer's own call runs at exit: cancel any unlock it
		// contributed, keep any lock (rare, but conservative).
		if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Unlock", "RUnlock":
				path := renderPath(sel.X)
				kept := unlocked[:0]
				for _, u := range unlocked {
					if u != path {
						kept = append(kept, u)
					}
				}
				unlocked = kept
			}
		}
	}
	return locked, unlocked
}

// lockFlow runs the held-mutex analysis over one CFG. entry is the set
// of locks assumed held on entry (from caller-holds annotations).
func lockFlow(g *cfg, entry lockState) *lockAnalysis {
	la := &lockAnalysis{at: map[ast.Node]lockState{}}
	in := make([]lockState, len(g.blocks))
	out := make([]lockState, len(g.blocks))
	seen := make([]bool, len(g.blocks))
	preds := predecessors(g)

	work := []int{g.entry.index}
	inWork := map[int]bool{g.entry.index: true}
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		blk := g.blocks[bi]

		var incoming []lockState
		if bi == g.entry.index {
			incoming = []lockState{entry}
		}
		for _, p := range preds[bi] {
			if seen[p] {
				incoming = append(incoming, out[p])
			}
		}
		st := intersect(incoming)
		in[bi] = st
		cur := st.clone()
		for _, s := range blk.stmts {
			la.at[s] = cur.clone()
			locked, unlocked := lockOps(s)
			for _, m := range unlocked {
				delete(cur, m)
			}
			for _, m := range locked {
				cur[m] = true
			}
		}
		if !seen[bi] || !cur.equal(out[bi]) {
			out[bi] = cur
			seen[bi] = true
			for _, succ := range blk.succs {
				if !inWork[succ.index] {
					work = append(work, succ.index)
					inWork[succ.index] = true
				}
			}
		}
	}
	return la
}

// renderPath renders a variable path expression ("t", "s.eng",
// "q.mu") or "" for anything that is not an ident/selector chain.
// Parenthesized and pointer-dereference wrappers are unwrapped so
// (*t).mu and t.mu agree.
func renderPath(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := renderPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return renderPath(x.X)
	case *ast.StarExpr:
		return renderPath(x.X)
	}
	return ""
}

// baseIdent returns the root identifier of an ident/selector chain.
func baseIdent(e ast.Expr) string {
	p := renderPath(e)
	if p == "" {
		return ""
	}
	if i := strings.IndexByte(p, '.'); i >= 0 {
		return p[:i]
	}
	return p
}
