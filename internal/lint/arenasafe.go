package lint

import (
	"go/ast"
	"strings"
)

// ArenaSafe enforces the usage contract of the executor's row arena
// (internal/exec/arena.go). Arena slabs are strictly per-task and the
// handed-out windows are capacity-capped, which makes exactly three
// things dangerous, all of which this analyzer flags:
//
//  1. sharing: calling alloc on an arena declared OUTSIDE a worker
//     closure (parallelParts / ex.parallel / pool task bodies) — two
//     workers carving one slab is a data race the capacity caps do
//     nothing about;
//  2. aliasing: `y := append(x, ...)` where x is arena-backed and y is
//     a different variable — within capacity the append writes the
//     shared slab tail; past capacity it silently forks a copy, so
//     either way y's relationship to x is schedule-dependent;
//  3. escape: storing an arena row somewhere that outlives the task —
//     a struct field, a package-level variable, a channel send, or a
//     `go` closure — pins the whole slab (memory bloat) and publishes
//     unsynchronized per-task memory to other goroutines.
//
// Variables are classified arena-backed via reaching definitions: a
// def whose RHS is `<arenaVar>.alloc(...)` where <arenaVar>'s own
// defs/declaration are of a type named like an arena ("rowArena", or
// any `*Arena`/`arena` suffix). One level of copy propagation
// (`y := x`) is followed.
var ArenaSafe = &Analyzer{
	Name: "arenasafe",
	Doc: "arena-allocated rows must stay task-local: no cross-closure " +
		"arena sharing, no aliasing appends, no escape via fields, " +
		"globals, channels or go-closures",
	Run: runArenaSafe,
}

// workerSpawners are the call names whose closure argument runs
// concurrently per task.
var workerSpawners = map[string]bool{
	"parallelParts": true,
	"parallel":      true,
	"serialFan":     false, // serial: one goroutine, sharing is fine
	"Run":           true,  // pool.Run(ctx, n, fn)
}

func runArenaSafe(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkArenaFunc(pass, fn)
		}
	}
	return nil
}

// isArenaTypeName matches type names that denote a row arena.
func isArenaTypeName(name string) bool {
	return name == "rowArena" || strings.HasSuffix(name, "Arena") || strings.HasSuffix(name, "arena")
}

// arenaVars returns the names of variables in fn (including closure
// bodies — names are function-unique enough in practice) that denote
// an arena: declared `var x rowArena`, `x := rowArena{...}` /
// `&rowArena{...}` / `new(rowArena)`, or a parameter of arena type.
func arenaVars(fn *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if fn.Recv != nil {
		for _, fld := range fn.Recv.List {
			if isArenaTypeName(typeName(fld.Type)) {
				for _, n := range fld.Names {
					out[n.Name] = true
				}
			}
		}
	}
	if fn.Type.Params != nil {
		for _, fld := range fn.Type.Params.List {
			if isArenaTypeName(typeName(fld.Type)) {
				for _, n := range fld.Names {
					out[n.Name] = true
				}
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeclStmt:
			gd, ok := x.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || !isArenaTypeName(typeName(vs.Type)) {
					continue
				}
				for _, name := range vs.Names {
					out[name.Name] = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(x.Rhs) {
					continue
				}
				if isArenaCtor(x.Rhs[i]) {
					out[id.Name] = true
				}
			}
		}
		return true
	})
	return out
}

func isArenaCtor(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return isArenaTypeName(typeName(x.Type))
	case *ast.UnaryExpr:
		return isArenaCtor(x.X)
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "new" && len(x.Args) == 1 {
			return isArenaTypeName(typeName(x.Args[0]))
		}
	}
	return false
}

// isAllocCall reports whether e is `<arena>.alloc(...)` for a known
// arena variable, returning the arena variable name.
func isAllocCall(e ast.Expr, arenas map[string]bool) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "alloc" {
		return "", false
	}
	base := baseIdent(sel.X)
	if base == "" || !arenas[base] {
		return "", false
	}
	return base, true
}

func checkArenaFunc(pass *Pass, fn *ast.FuncDecl) {
	arenas := arenaVars(fn)
	if len(arenas) == 0 {
		return
	}

	// Rule 1: arena declared outside a worker closure must not alloc
	// inside one. Find worker closures and the arena declarations they
	// contain; any alloc on an arena not declared within the closure is
	// shared-slab use.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if !workerSpawners[name] {
			return true
		}
		for _, arg := range call.Args {
			lit, ok := arg.(*ast.FuncLit)
			if !ok {
				continue
			}
			local := map[string]bool{}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				switch x := m.(type) {
				case *ast.DeclStmt:
					if gd, ok := x.Decl.(*ast.GenDecl); ok {
						for _, spec := range gd.Specs {
							if vs, ok := spec.(*ast.ValueSpec); ok && isArenaTypeName(typeName(vs.Type)) {
								for _, nm := range vs.Names {
									local[nm.Name] = true
								}
							}
						}
					}
				case *ast.AssignStmt:
					for i, lhs := range x.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && i < len(x.Rhs) && isArenaCtor(x.Rhs[i]) {
							local[id.Name] = true
						}
					}
				}
				return true
			})
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if av, ok := isAllocCall(exprOf(m), arenas); ok && !local[av] {
					pass.Reportf(m.Pos(),
						"arena %q is declared outside this worker closure: concurrent tasks would "+
							"carve the same slab (declare the arena inside the per-task function)", av)
				}
				return true
			})
		}
		return true
	})

	// Rules 2 and 3 need to know which variables hold arena rows: use
	// reaching definitions per graph.
	graphs := cfgFuncs(fn)
	for _, g := range graphs {
		ra := reachingDefs(g)
		rowVars := arenaRowDefs(ra, arenas)
		if len(rowVars) == 0 {
			continue
		}
		for _, blk := range g.blocks {
			for _, s := range blk.stmts {
				checkArenaStmt(pass, s, ra, rowVars)
			}
		}
	}
}

func exprOf(n ast.Node) ast.Expr {
	e, _ := n.(ast.Expr)
	return e
}

// arenaRowDefs returns the def ids whose RHS is an arena alloc, plus
// one level of copy propagation: `y := x` where x's defs include an
// alloc def.
func arenaRowDefs(ra *reachAnalysis, arenas map[string]bool) map[int]bool {
	rows := map[int]bool{}
	for _, d := range ra.defs {
		if d.rhs == nil {
			continue
		}
		if _, ok := isAllocCall(d.rhs, arenas); ok {
			rows[d.id] = true
		}
	}
	// Copy propagation: y := x.
	for _, d := range ra.defs {
		if d.rhs == nil {
			continue
		}
		src, ok := d.rhs.(*ast.Ident)
		if !ok {
			continue
		}
		for _, sd := range ra.defsOf(d.node, src.Name) {
			if rows[sd.id] {
				rows[d.id] = true
			}
		}
	}
	return rows
}

// isArenaRow reports whether ident e holds an arena row at statement s.
func isArenaRow(ra *reachAnalysis, rows map[int]bool, s ast.Node, name string) bool {
	for _, d := range ra.defsOf(s, name) {
		if rows[d.id] {
			return true
		}
	}
	return false
}

func checkArenaStmt(pass *Pass, s ast.Node, ra *reachAnalysis, rows map[int]bool) {
	// Rule 2: aliasing append.
	if as, ok := s.(*ast.AssignStmt); ok {
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
				continue
			}
			src, ok := call.Args[0].(*ast.Ident)
			if !ok || !isArenaRow(ra, rows, s, src.Name) {
				continue
			}
			if i < len(as.Lhs) {
				if dst, ok := as.Lhs[i].(*ast.Ident); ok && dst.Name == src.Name {
					continue // x = append(x, ...): filling the row in place
				}
			}
			pass.Reportf(call.Pos(),
				"append aliases arena row %q into a new variable: within capacity both share "+
					"slab memory, past it they silently diverge; copy explicitly or fill in place", src.Name)
		}
	}

	forEachNode(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if id, ok := x.Value.(*ast.Ident); ok && isArenaRow(ra, rows, s, id.Name) {
				pass.Reportf(x.Pos(),
					"arena row %q sent on a channel escapes its task: the receiver outlives "+
						"the arena's task scope and pins the slab", id.Name)
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				rhsID, ok := x.Rhs[i].(*ast.Ident)
				if !ok || !isArenaRow(ra, rows, s, rhsID.Name) {
					continue
				}
				if sel, ok := lhs.(*ast.SelectorExpr); ok {
					pass.Reportf(x.Pos(),
						"arena row %q stored into field %s escapes its task scope; "+
							"copy the row before publishing it", rhsID.Name, renderPath(sel))
				}
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if sel, ok := ix.X.(*ast.SelectorExpr); ok {
						pass.Reportf(x.Pos(),
							"arena row %q stored into %s escapes its task scope; "+
								"copy the row before publishing it", rhsID.Name, renderPath(sel))
					}
				}
			}
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && isArenaRow(ra, rows, s, id.Name) {
						pass.Reportf(id.Pos(),
							"arena row %q captured by a go-closure escapes its task scope", id.Name)
						return false
					}
					return true
				})
			}
		}
		return true
	})
}
