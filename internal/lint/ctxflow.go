package lint

import (
	"go/ast"
	"strings"
)

// CtxFlow enforces cancellation discipline in the execution and
// service layers: an unbounded loop (`for { ... }` with no condition)
// in a function reachable from the package's Run/serve entry points
// must observe context cancellation, directly or through a callee.
// Without this, a canceled query keeps pulling batches until its input
// is exhausted — cancellation latency becomes O(input), not O(batch) —
// and a wedged source pins a pool worker forever.
//
// "Observes cancellation" means the loop body (or a same-package
// callee, computed as a fixpoint over the package call graph) contains
// one of:
//
//   - ctx.Done() / ctx.Err() on an identifier or field named ctx
//     (any receiver path ending in "ctx" counts: ex.ctx, f.ctx, ...);
//   - a call to a same-package function that itself observes.
//
// The call graph is syntactic: edges are drawn by callee name, so all
// methods sharing a name are merged. Merging is handled
// conservatively in both directions — a name is reachable if any
// function bearing it is reachable, and a called name only counts as
// observing when every function bearing it observes.
//
// Seeds are the layer entry points: exported functions named Run* plus
// HTTP entry points (ServeHTTP, Handler, handle*). Loops that are
// structurally bounded (walking a plan tree, draining a fixed chain)
// should carry a reasoned `//lint:ignore ctxflow <why bounded>` on the
// `for` line.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "unbounded `for {}` loops in internal/exec and internal/service " +
		"code reachable from Run must observe context cancellation " +
		"(ctx.Done/ctx.Err or a callee that checks)",
	Run: runCtxFlow,
}

// ctxFlowPkgs scopes the analyzer: execution and service layers only.
var ctxFlowPkgs = []string{"internal/exec", "internal/service"}

func runCtxFlow(pass *Pass) error {
	inScope := false
	for _, p := range ctxFlowPkgs {
		if strings.HasSuffix(pass.Path, p) {
			inScope = true
		}
	}
	if !inScope {
		return nil
	}

	fns := collectFuncs(pass.Files)
	observes := observingFuncs(fns)
	reach := reachableFromRun(fns)

	for name, decls := range fns {
		if !reach[name] {
			continue
		}
		for _, fn := range decls {
			if fn.Body == nil {
				continue
			}
			fnName := name
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				loop, ok := n.(*ast.ForStmt)
				if !ok || loop.Cond != nil {
					return true
				}
				if loopObserves(loop.Body, observes) {
					return true
				}
				pass.Reportf(loop.Pos(),
					"unbounded for-loop in %s (reachable from Run) never observes context cancellation; "+
						"check ctx between iterations or call a helper that does", fnName)
				return true
			})
		}
	}
	return nil
}

// collectFuncs indexes the package's function declarations by bare
// name; methods of different receivers share a key.
func collectFuncs(files []*ast.File) map[string][]*ast.FuncDecl {
	out := map[string][]*ast.FuncDecl{}
	for _, f := range files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok {
				out[fn.Name.Name] = append(out[fn.Name.Name], fn)
			}
		}
	}
	return out
}

// calleeNames lists the names of functions/methods called inside n,
// including calls inside nested function literals (a closure defined
// here is almost always invoked by the spawning construct it is passed
// to — parallelParts, pool.Run — so its callees are reachable too).
func calleeNames(n ast.Node) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			out[fun.Name] = true
		case *ast.SelectorExpr:
			out[fun.Sel.Name] = true
		}
		return true
	})
	return out
}

// directlyObservesCtx reports whether n syntactically checks a context:
// a call or receive on <path>.Done()/<path>.Err() where the path's last
// element is named ctx.
func directlyObservesCtx(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Done" && sel.Sel.Name != "Err" {
			return true
		}
		path := renderPath(sel.X)
		if path == "ctx" || strings.HasSuffix(path, ".ctx") || strings.HasSuffix(path, "Ctx") {
			found = true
			return false
		}
		return true
	})
	return found
}

// observingFuncs computes the fixpoint set of function NAMES that
// observe cancellation. A name observes only if every function bearing
// it observes (directly or via an observing callee name) — a call site
// cannot tell same-named methods apart, so partial coverage earns no
// credit.
func observingFuncs(fns map[string][]*ast.FuncDecl) map[string]bool {
	declObserves := map[*ast.FuncDecl]bool{}
	for _, decls := range fns {
		for _, fn := range decls {
			if fn.Body != nil && directlyObservesCtx(fn.Body) {
				declObserves[fn] = true
			}
		}
	}
	nameObserves := func() map[string]bool {
		out := map[string]bool{}
		for name, decls := range fns {
			all := len(decls) > 0
			for _, fn := range decls {
				if !declObserves[fn] {
					all = false
					break
				}
			}
			if all {
				out[name] = true
			}
		}
		return out
	}
	for changed := true; changed; {
		changed = false
		byName := nameObserves()
		for _, decls := range fns {
			for _, fn := range decls {
				if declObserves[fn] || fn.Body == nil {
					continue
				}
				for callee := range calleeNames(fn.Body) {
					if byName[callee] {
						declObserves[fn] = true
						changed = true
						break
					}
				}
			}
		}
	}
	return nameObserves()
}

// reachableFromRun walks the name-based call graph from the package's
// entry points.
func reachableFromRun(fns map[string][]*ast.FuncDecl) map[string]bool {
	reach := map[string]bool{}
	var visit func(name string)
	visit = func(name string) {
		decls, ok := fns[name]
		if !ok || reach[name] {
			return
		}
		reach[name] = true
		for _, fn := range decls {
			if fn.Body == nil {
				continue
			}
			for callee := range calleeNames(fn.Body) {
				visit(callee)
			}
		}
	}
	for name := range fns {
		if strings.HasPrefix(name, "Run") || name == "ServeHTTP" || name == "Handler" ||
			strings.HasPrefix(name, "handle") {
			visit(name)
		}
	}
	return reach
}

// loopObserves reports whether a loop body observes cancellation
// directly or through an observing callee.
func loopObserves(body *ast.BlockStmt, observes map[string]bool) bool {
	if directlyObservesCtx(body) {
		return true
	}
	for callee := range calleeNames(body) {
		if observes[callee] {
			return true
		}
	}
	return false
}
