package lint

import (
	"go/ast"
	"strings"
)

// WeightProp enforces weight-column threading at plan-construction
// sites. Quickr's answers are unbiased only because every row carries
// its inverse sampling probability from the sampler (or apriori
// sample) all the way to the aggregates (§4.1: Horvitz–Thompson
// weighting). The plan nodes thread that weight through two fields:
// lplan.Scan.WeightColumn (logical, set by apriori-sample
// substitution) and exec.PScan.WeightIdx (physical, -1 when
// unweighted). A composite literal that rebuilds either node and
// forgets the field silently resets every weight to 1 and biases the
// estimate by a factor of 1/p — the exact bug pruneColumns shipped
// with. Requiring the field to be spelled out makes the choice
// explicit and reviewable.
var WeightProp = &Analyzer{
	Name: "weightprop",
	Doc: "lplan.Scan literals must set WeightColumn and exec.PScan literals " +
		"must set WeightIdx explicitly, so sample weights are never dropped " +
		"by a node rebuild",
	Run: runWeightProp,
}

// weightFields maps (import path, type name) to the field a literal
// must spell out.
var weightFields = []struct {
	pkg   string // import path; "" matches only inside that package itself
	typ   string
	field string
	hint  string
}{
	{"quickr/internal/lplan", "Scan", "WeightColumn", `"" for an unweighted base-table scan`},
	{"quickr/internal/exec", "PScan", "WeightIdx", "-1 for an unweighted scan"},
}

func runWeightProp(pass *Pass) error {
	for _, f := range pass.Files {
		names := map[string]string{} // local import name -> path
		for _, w := range weightFields {
			if n := importName(f, w.pkg); n != "" {
				names[n] = w.pkg
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			var pkgPath, typName string
			switch t := lit.Type.(type) {
			case *ast.SelectorExpr:
				id, ok := t.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgPath, typName = names[id.Name], t.Sel.Name
			case *ast.Ident:
				// Unqualified literal: only relevant inside the defining
				// package itself.
				pkgPath, typName = pass.Path, t.Name
			default:
				return true
			}
			for _, w := range weightFields {
				if pkgPath != w.pkg || typName != w.typ {
					continue
				}
				if len(lit.Elts) > 0 {
					if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
						// Positional literal: every field, weight included,
						// is necessarily present.
						continue
					}
				}
				if !hasKey(lit, w.field) {
					pass.Reportf(lit.Pos(),
						"%s.%s literal without %s: an omitted weight silently resets "+
							"row weights and biases estimates by 1/p; set it explicitly (%s)",
						pkgPath[strings.LastIndex(pkgPath, "/")+1:], w.typ, w.field, w.hint)
				}
			}
			return true
		})
	}
	return nil
}

func hasKey(lit *ast.CompositeLit, field string) bool {
	for _, e := range lit.Elts {
		kv, ok := e.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field {
			return true
		}
	}
	return false
}
