package lint

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The analyzers are self-tested the analysistest way: each has a
// fixture tree under testdata/<name>/ whose directory layout IS the
// package import path (so path-scoped rules see the path they gate
// on), with expected findings declared as `// want "regexp"` trailing
// comments. Every want must be matched by a diagnostic on its line and
// every diagnostic must be claimed by a want — seeded violations that
// stop firing fail the test just like false positives do.

func TestAnalyzersOnFixtures(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) { runFixture(t, a) })
	}
}

func runFixture(t *testing.T, a *Analyzer) {
	root := filepath.Join("testdata", a.Name)
	fset := token.NewFileSet()
	var diags []Diagnostic
	wants := map[string][]*want{} // "file:line" -> pending expectations
	found := false

	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		pkg := &Package{Files: nil}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(path, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return err
			}
			pkg.Files = append(pkg.Files, f)
		}
		if len(pkg.Files) == 0 {
			return nil
		}
		found = true
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		pkg.Path = filepath.ToSlash(rel)
		collectWants(t, fset, pkg, wants)
		ignores := ignoreIndex{}
		for _, f := range pkg.Files {
			collectIgnores(fset, f, ignores)
		}
		pass := &Pass{Analyzer: a, Fset: fset, Files: pkg.Files, Path: pkg.Path, diags: &diags, ignores: ignores}
		return a.Run(pass)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatalf("no fixture packages under %s", root)
	}

	for _, d := range diags {
		key := d.Pos.Filename + ":" + strconv.Itoa(d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q did not fire", key, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var (
	wantRE   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")
)

func collectWants(t *testing.T, fset *token.FileSet, pkg *Package, into map[string][]*want) {
	t.Helper()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := pos.Filename + ":" + strconv.Itoa(pos.Line)
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					text := q[1]
					if q[2] != "" {
						text = q[2]
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, text, err)
					}
					into[key] = append(into[key], &want{re: re})
				}
			}
		}
	}
}

// TestRunOnRepo is the self-hosting gate: the whole module must lint
// clean (the Makefile and CI run the same check via cmd/quickrlint).
func TestRunOnRepo(t *testing.T) {
	diags, err := Run("../..", []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestIgnoreDirective checks the suppression comment end to end at the
// Run level (fixtures also exercise it per-analyzer).
func TestIgnoreDirective(t *testing.T) {
	dir := t.TempDir()
	src := `package p

import "fmt"

func f() {
	//lint:ignore noprintf demo output is intentional
	fmt.Println("kept")
	fmt.Println("flagged")
}
`
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmp\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := Run(dir, []string{"."}, []*Analyzer{NoPrintf})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Pos.Line != 8 {
		t.Fatalf("want exactly the unsuppressed line-8 finding, got %v", diags)
	}
}

// runHygiene lints one source file with NoPrintf and returns only the
// ignorehygiene findings.
func runHygiene(t *testing.T, src string) []Diagnostic {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmp\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := Run(dir, []string{"."}, []*Analyzer{NoPrintf})
	if err != nil {
		t.Fatal(err)
	}
	var out []Diagnostic
	for _, d := range diags {
		if d.Analyzer == IgnoreHygiene {
			out = append(out, d)
		}
	}
	return out
}

// TestBareIgnoreReported: a directive without a reason is itself a
// finding, even though it still suppresses.
func TestBareIgnoreReported(t *testing.T) {
	diags := runHygiene(t, `package p

import "fmt"

func f() {
	//lint:ignore noprintf
	fmt.Println("suppressed but undocumented")
}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "bare //lint:ignore") {
		t.Fatalf("want one bare-ignore finding, got %v", diags)
	}
	if diags[0].Pos.Line != 6 {
		t.Errorf("bare-ignore reported at line %d, want the directive's line 6", diags[0].Pos.Line)
	}
}

// TestStaleIgnoreReported: a reasoned directive whose analyzer ran but
// fired nothing on its lines must be flagged for deletion.
func TestStaleIgnoreReported(t *testing.T) {
	diags := runHygiene(t, `package p

func f() int {
	//lint:ignore noprintf there was a Println here once
	return 1
}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "stale //lint:ignore") {
		t.Fatalf("want one stale-ignore finding, got %v", diags)
	}
}

// TestLiveIgnoreNotStale: a directive that suppresses a real finding is
// neither bare nor stale.
func TestLiveIgnoreNotStale(t *testing.T) {
	diags := runHygiene(t, `package p

import "fmt"

func f() {
	//lint:ignore noprintf demo output is intentional
	fmt.Println("kept")
}
`)
	if len(diags) != 0 {
		t.Fatalf("live reasoned directive flagged: %v", diags)
	}
}

// TestForeignIgnoreNotStale: a directive naming an analyzer that did
// not run cannot be judged stale — partial runs (quickrlint with a
// subset) must not demand deleting directives for the analyzers they
// skipped.
func TestForeignIgnoreNotStale(t *testing.T) {
	diags := runHygiene(t, `package p

func f() int {
	//lint:ignore ctxflow the loop below terminates by the pigeonhole principle
	return 1
}
`)
	if len(diags) != 0 {
		t.Fatalf("directive for an analyzer outside the run set flagged: %v", diags)
	}
}
