package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// HotAlloc is the static twin of the cmd/benchcheck allocation gate:
// functions marked with a `//hot:` doc-comment line (the PR 5/6 kernel
// and hash paths whose allocs/op the bench gate pins) must keep their
// loop bodies free of the allocating constructs that historically
// regressed them:
//
//   - any fmt call (Sprintf and friends allocate AND box every
//     argument);
//   - string concatenation where an operand is visibly a string
//     (literal, string(...) conversion, or a variable whose reaching
//     definitions are string-typed expressions) — building keys with
//     `+` in a loop is the exact per-row pattern the PR 5 KeyHash
//     overhaul removed;
//   - append to a slice whose reaching definition outside the loop is
//     un-preallocated (`var s []T`, `s := []T{}`, or 2-arg make) —
//     growth reallocates O(log n) times inside the loop where a
//     capacity hint or a reused `s[:0]` buffer would not;
//   - explicit interface boxing: conversions to any/interface{} and
//     []any{...}/[]interface{}{...} literals.
//
// The un-preallocated-append check is where the reaching-definitions
// dataflow earns its keep: `out := make([]T, 0, n)` before the loop,
// `out = out[:0]` buffer reuse, and appends to a slice freshly made
// each iteration are all fine, and the analyzer proves which case it
// is looking at instead of guessing from the nearest assignment.
//
// The marker form is `//hot:<why this path is hot>` on the function's
// doc comment, e.g. `//hot:per-probe-row join path, bench-gated`. No
// space after the colon: that is the shape gofmt preserves verbatim
// (like //go:build); a spaced variant gets reformatted to `// hot:`,
// which isHotFunc also accepts so a stray gofmt cannot silently
// disarm a marker.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "loops in functions marked `//hot:` must not allocate: no fmt " +
		"calls, string concatenation, un-preallocated append growth, or " +
		"explicit interface boxing",
	Run: runHotAlloc,
}

// hotMarker is matched against the comment text with the leading
// slashes and any space stripped, so `//hot:x` and gofmt's spaced
// rendering `// hot: x` both count.
const hotMarker = "hot:"

func isHotComment(text string) bool {
	rest, ok := strings.CutPrefix(text, "//")
	if !ok {
		return false
	}
	return strings.HasPrefix(strings.TrimLeft(rest, " \t"), hotMarker)
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotFunc(fn) {
				continue
			}
			checkHotFunc(pass, f, fn)
		}
	}
	return nil
}

func isHotFunc(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if isHotComment(c.Text) {
			return true
		}
	}
	return false
}

// hotLoop is one loop inside a hot function, with its position span so
// defs can be classified as inside/outside.
type hotLoop struct {
	body       *ast.BlockStmt
	start, end token.Pos
}

func checkHotFunc(pass *Pass, file *ast.File, fn *ast.FuncDecl) {
	fmtName := importName(file, "fmt")
	graphs := cfgFuncs(fn)
	// One reaching-defs analysis per graph (closures separately).
	reach := map[ast.Node]*reachAnalysis{}
	for node, g := range graphs {
		reach[node] = reachingDefs(g)
	}

	// Collect loops per graph owner: loops in the main body belong to
	// fn's graph; loops inside a closure to that closure's graph.
	var loops []struct {
		owner ast.Node
		loop  hotLoop
	}
	var visit func(owner ast.Node, root ast.Node)
	visit = func(owner ast.Node, root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && n != root {
				visit(lit, lit.Body)
				return false
			}
			var body *ast.BlockStmt
			switch x := n.(type) {
			case *ast.ForStmt:
				body = x.Body
			case *ast.RangeStmt:
				body = x.Body
			default:
				return true
			}
			loops = append(loops, struct {
				owner ast.Node
				loop  hotLoop
			}{owner, hotLoop{body: body, start: n.Pos(), end: n.End()}})
			return true
		})
	}
	visit(fn, fn.Body)

	for _, l := range loops {
		checkHotLoop(pass, fmtName, l.loop, reach[l.owner])
	}
}

func checkHotLoop(pass *Pass, fmtName string, loop hotLoop, ra *reachAnalysis) {
	forEachNode(loop.body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, fmtName, x, loop, ra)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && (isStringy(x.X, n, ra) || isStringy(x.Y, n, ra)) {
				pass.Reportf(x.Pos(),
					"string concatenation in a //hot: loop allocates per iteration; "+
						"hash or append to a reused []byte instead")
			}
		case *ast.CompositeLit:
			if isAnySliceType(x.Type) {
				pass.Reportf(x.Pos(),
					"[]any literal in a //hot: loop boxes every element; use typed values")
			}
		}
		return true
	})
}

func checkHotCall(pass *Pass, fmtName string, call *ast.CallExpr, loop hotLoop, ra *reachAnalysis) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok && fmtName != "" && id.Name == fmtName {
			pass.Reportf(call.Pos(),
				"fmt.%s in a //hot: loop allocates and boxes its arguments; "+
					"move formatting out of the loop or append to a byte buffer", fun.Sel.Name)
		}
	case *ast.Ident:
		switch fun.Name {
		case "append":
			checkHotAppend(pass, call, loop, ra)
		case "any":
			// shadowable, but `any(x)` conversion in a hot loop is boxing.
			pass.Reportf(call.Pos(), "any(...) conversion in a //hot: loop boxes its operand")
		}
	case *ast.InterfaceType:
		pass.Reportf(call.Pos(), "interface{}(...) conversion in a //hot: loop boxes its operand")
	}
}

// checkHotAppend flags appends (growing inside the loop) to slices
// whose reaching definition outside the loop carries no capacity.
func checkHotAppend(pass *Pass, call *ast.CallExpr, loop hotLoop, ra *reachAnalysis) {
	if len(call.Args) == 0 {
		return
	}
	target, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	// Find the CFG statement containing this call to query reaching
	// defs: the analysis keyed states by statement; walk defs of the
	// target name across all recorded statements' states is wrong, so
	// instead use the loop-entry approximation: defs of the name that
	// reach any statement inside the loop span.
	for _, d := range ra.defsOf(containingStmt(ra, call, target.Name), target.Name) {
		if d.node != nil && d.node.Pos() >= loop.start && d.node.End() <= loop.end {
			// Defined inside the loop: either the self-append (fine —
			// growth amortizes against the outer def's capacity) or a
			// fresh per-iteration slice (a different smell, not this one).
			continue
		}
		if unpreallocated(d.rhs) {
			pass.Reportf(call.Pos(),
				"append grows %q inside a //hot: loop but its definition has no capacity "+
					"(use make(..., 0, n) or reuse a buffer with %s[:0])", target.Name, target.Name)
			return
		}
	}
}

// containingStmt finds the recorded CFG statement whose span contains
// the expression — reaching-def states are keyed per statement.
func containingStmt(ra *reachAnalysis, e ast.Expr, name string) ast.Node {
	var best ast.Node
	for s := range ra.at {
		if s.Pos() <= e.Pos() && e.End() <= s.End() {
			if best == nil || (s.Pos() >= best.Pos() && s.End() <= best.End()) {
				best = s
			}
		}
	}
	return best
}

// unpreallocated reports whether a defining expression yields a slice
// with no useful capacity: nil (`var s []T`), an empty literal, or a
// make without a capacity argument.
func unpreallocated(rhs ast.Expr) bool {
	switch x := rhs.(type) {
	case nil:
		return true // var s []T
	case *ast.CompositeLit:
		return len(x.Elts) == 0 && isSliceType(x.Type)
	case *ast.CallExpr:
		id, ok := x.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(x.Args) == 0 {
			return false
		}
		if !isSliceType(x.Args[0]) {
			return false
		}
		return len(x.Args) < 3 // make([]T) illegal anyway; make([]T, n) grows on append
	}
	return false
}

func isSliceType(e ast.Expr) bool {
	_, ok := e.(*ast.ArrayType)
	return ok
}

func isAnySliceType(e ast.Expr) bool {
	at, ok := e.(*ast.ArrayType)
	if !ok || at.Len != nil {
		return false
	}
	switch elt := at.Elt.(type) {
	case *ast.Ident:
		return elt.Name == "any"
	case *ast.InterfaceType:
		return len(elt.Methods.List) == 0
	}
	return false
}

// isStringy reports whether an expression is visibly a string: a
// string literal, a string(...) conversion, or an identifier whose
// reaching definitions are all stringy.
func isStringy(e ast.Expr, at ast.Node, ra *reachAnalysis) bool {
	switch x := e.(type) {
	case *ast.BasicLit:
		return x.Kind == token.STRING
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "string" {
			return true
		}
	case *ast.BinaryExpr:
		return x.Op == token.ADD && (isStringy(x.X, at, ra) || isStringy(x.Y, at, ra))
	case *ast.Ident:
		defs := ra.defsOf(containingStmt(ra, e, x.Name), x.Name)
		if len(defs) == 0 {
			return false
		}
		for _, d := range defs {
			if d.rhs == nil {
				return false
			}
			if lit, ok := d.rhs.(*ast.BasicLit); ok && lit.Kind == token.STRING {
				continue
			}
			return false
		}
		return true
	}
	return false
}
