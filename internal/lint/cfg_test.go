package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFunc parses a single function declaration from source and
// returns it with its fileset.
func parseFunc(t *testing.T, src string) (*token.FileSet, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", "package p\n"+src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			return fset, fn
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

// reachableBlocks counts blocks reachable from entry.
func reachableBlocks(g *cfg) int {
	seen := map[*cfgBlock]bool{}
	var visit func(b *cfgBlock)
	visit = func(b *cfgBlock) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.succs {
			visit(s)
		}
	}
	visit(g.entry)
	return len(seen)
}

func TestCFGStraightLine(t *testing.T) {
	_, fn := parseFunc(t, `func f() { x := 1; y := x; _ = y }`)
	g := buildCFG(fn.Body)
	if got := len(g.entry.stmts); got != 3 {
		t.Fatalf("entry block stmts = %d, want 3", got)
	}
	if len(g.entry.succs) != 1 || g.entry.succs[0] != g.exit {
		t.Fatalf("straight-line body should fall into exit")
	}
}

func TestCFGIfElseJoins(t *testing.T) {
	_, fn := parseFunc(t, `func f(c bool) int {
		x := 0
		if c {
			x = 1
		} else {
			x = 2
		}
		return x
	}`)
	g := buildCFG(fn.Body)
	// entry(x:=0, c) -> then, else; both -> join(return) -> exit.
	if len(g.entry.succs) != 2 {
		t.Fatalf("if dispatch should have 2 successors, got %d", len(g.entry.succs))
	}
	if reachableBlocks(g) < 5 {
		t.Fatalf("expected at least 5 reachable blocks, got %d", reachableBlocks(g))
	}
}

func TestCFGForLoopBackedge(t *testing.T) {
	_, fn := parseFunc(t, `func f(n int) {
		for i := 0; i < n; i++ {
			_ = i
		}
	}`)
	g := buildCFG(fn.Body)
	// Find the head block (holds the condition) and check it has both a
	// body successor and an after successor, and that the body leads
	// back around.
	var head *cfgBlock
	for _, b := range g.blocks {
		for _, s := range b.stmts {
			if be, ok := s.(ast.Expr); ok {
				if bin, ok2 := be.(*ast.BinaryExpr); ok2 && bin.Op == token.LSS {
					head = b
				}
			}
		}
	}
	if head == nil {
		t.Fatal("no condition block found")
	}
	if len(head.succs) != 2 {
		t.Fatalf("loop head should have 2 successors, got %d", len(head.succs))
	}
	// One of head's transitive successors must reach head again.
	seen := map[*cfgBlock]bool{}
	var reaches func(b *cfgBlock) bool
	reaches = func(b *cfgBlock) bool {
		if b == head {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.succs {
			if reaches(s) {
				return true
			}
		}
		return false
	}
	if !reaches(head.succs[0]) && !reaches(head.succs[1]) {
		t.Fatal("no backedge to loop head")
	}
}

func TestCFGInfiniteLoopNoExitEdge(t *testing.T) {
	_, fn := parseFunc(t, `func f() {
		for {
			g()
		}
	}`)
	g := buildCFG(fn.Body)
	// exit must be unreachable from entry (no break, no cond).
	seen := map[*cfgBlock]bool{}
	var visit func(b *cfgBlock)
	visit = func(b *cfgBlock) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.succs {
			visit(s)
		}
	}
	visit(g.entry)
	if seen[g.exit] {
		t.Fatal("infinite loop should not reach exit")
	}
}

func TestCFGBreakReachesAfter(t *testing.T) {
	_, fn := parseFunc(t, `func f(c bool) {
		for {
			if c {
				break
			}
		}
		done()
	}`)
	g := buildCFG(fn.Body)
	seen := map[*cfgBlock]bool{}
	var visit func(b *cfgBlock)
	visit = func(b *cfgBlock) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.succs {
			visit(s)
		}
	}
	visit(g.entry)
	if !seen[g.exit] {
		t.Fatal("break should make exit reachable")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	_, fn := parseFunc(t, `func f(xs []int) {
	outer:
		for _, x := range xs {
			for {
				if x > 0 {
					break outer
				}
				continue outer
			}
		}
		done()
	}`)
	g := buildCFG(fn.Body)
	if reachableBlocks(g) < 4 {
		t.Fatalf("labeled loops built too few blocks: %d", reachableBlocks(g))
	}
	// Must reach exit via the labeled break.
	seen := map[*cfgBlock]bool{}
	var visit func(b *cfgBlock)
	visit = func(b *cfgBlock) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.succs {
			visit(s)
		}
	}
	visit(g.entry)
	if !seen[g.exit] {
		t.Fatal("labeled break should reach function exit")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	_, fn := parseFunc(t, `func f(x int) {
		switch x {
		case 1:
			a()
			fallthrough
		case 2:
			b()
		default:
			c()
		}
	}`)
	g := buildCFG(fn.Body)
	find := func(name string) *cfgBlock {
		for _, blk := range g.blocks {
			for _, s := range blk.stmts {
				if es, ok := s.(*ast.ExprStmt); ok {
					if call, ok := es.X.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
							return blk
						}
					}
				}
			}
		}
		return nil
	}
	ab, bb := find("a"), find("b")
	if ab == nil || bb == nil {
		t.Fatal("case bodies not found in CFG")
	}
	// a()'s block must flow into b()'s block via the fallthrough edge.
	for _, s := range ab.succs {
		if s == bb {
			return
		}
	}
	t.Errorf("fallthrough edge from case 1 to case 2 missing (succs=%d)", len(ab.succs))
}

func TestReachingDefsPreallocationVisible(t *testing.T) {
	_, fn := parseFunc(t, `func f(n int, rows []int) {
		out := make([]int, 0, n)
		var bad []int
		for _, r := range rows {
			out = append(out, r)
			bad = append(bad, r)
		}
		_ = bad
	}`)
	g := buildCFG(fn.Body)
	ra := reachingDefs(g)

	// Find the append statements inside the loop.
	var appendStmts []ast.Node
	for _, b := range g.blocks {
		for _, s := range b.stmts {
			if as, ok := s.(*ast.AssignStmt); ok {
				if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
						appendStmts = append(appendStmts, s)
					}
				}
			}
		}
	}
	if len(appendStmts) != 2 {
		t.Fatalf("found %d append stmts, want 2", len(appendStmts))
	}
	for _, s := range appendStmts {
		name := s.(*ast.AssignStmt).Lhs[0].(*ast.Ident).Name
		defs := ra.defsOf(s, name)
		if len(defs) == 0 {
			t.Fatalf("no reaching defs for %s at its append", name)
		}
		// Both the outer def and (after one iteration) the self-def
		// must reach: 2 defs each.
		if len(defs) != 2 {
			t.Errorf("%s: got %d reaching defs, want 2 (outer + loop self-def)", name, len(defs))
		}
		var outer *def
		for _, d := range defs {
			if d.node != s {
				outer = d
			}
		}
		if outer == nil {
			t.Fatalf("%s: outer def not reaching", name)
		}
		wantPrealloc := name == "out"
		if got := !unpreallocated(outer.rhs); got != wantPrealloc {
			t.Errorf("%s: preallocated = %v, want %v", name, got, wantPrealloc)
		}
	}
}

func TestReachingDefsKillOnReassign(t *testing.T) {
	_, fn := parseFunc(t, `func f() {
		x := 1
		x = 2
		use(x)
	}`)
	g := buildCFG(fn.Body)
	ra := reachingDefs(g)
	var useStmt ast.Node
	for _, b := range g.blocks {
		for _, s := range b.stmts {
			if es, ok := s.(*ast.ExprStmt); ok {
				if _, ok := es.X.(*ast.CallExpr); ok {
					useStmt = s
				}
			}
		}
	}
	defs := ra.defsOf(useStmt, "x")
	if len(defs) != 1 {
		t.Fatalf("got %d defs of x at use, want 1 (reassignment kills)", len(defs))
	}
}

func TestLockFlowBranchesIntersect(t *testing.T) {
	_, fn := parseFunc(t, `func f(c bool) {
		if c {
			mu.Lock()
		}
		touch()
		mu.Lock()
		touch2()
		mu.Unlock()
		touch3()
	}`)
	g := buildCFG(fn.Body)
	la := lockFlow(g, lockState{})
	stmts := map[string]ast.Node{}
	for _, b := range g.blocks {
		for _, s := range b.stmts {
			if es, ok := s.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						stmts[id.Name] = s
					}
				}
			}
		}
	}
	if la.heldAt(stmts["touch"], "mu") {
		t.Error("mu should NOT be held at touch (only one branch locked)")
	}
	if !la.heldAt(stmts["touch2"], "mu") {
		t.Error("mu should be held at touch2")
	}
	if la.heldAt(stmts["touch3"], "mu") {
		t.Error("mu should not be held after Unlock")
	}
}

func TestLockFlowDeferKeepsHeld(t *testing.T) {
	_, fn := parseFunc(t, `func f() {
		mu.Lock()
		defer mu.Unlock()
		touch()
	}`)
	g := buildCFG(fn.Body)
	la := lockFlow(g, lockState{})
	var touch ast.Node
	for _, b := range g.blocks {
		for _, s := range b.stmts {
			if es, ok := s.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "touch" {
						touch = s
					}
				}
			}
		}
	}
	if !la.heldAt(touch, "mu") {
		t.Error("deferred unlock must keep mu held for the rest of the body")
	}
}

func TestLockFlowLoopReacquire(t *testing.T) {
	// The classic gate pattern: lock, loop { unlock, relock }, unlock.
	// Inside the loop after re-Lock the mutex is held; right after the
	// Unlock inside the loop it is not.
	_, fn := parseFunc(t, `func f(n int) {
		mu.Lock()
		for i := 0; i < n; i++ {
			mu.Unlock()
			work()
			mu.Lock()
			touch()
		}
		mu.Unlock()
	}`)
	g := buildCFG(fn.Body)
	la := lockFlow(g, lockState{})
	stmts := map[string]ast.Node{}
	for _, b := range g.blocks {
		for _, s := range b.stmts {
			if es, ok := s.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						stmts[id.Name] = s
					}
				}
			}
		}
	}
	if la.heldAt(stmts["work"], "mu") {
		t.Error("mu should not be held at work() (unlocked at loop top)")
	}
	if !la.heldAt(stmts["touch"], "mu") {
		t.Error("mu should be held at touch() (re-locked)")
	}
}
