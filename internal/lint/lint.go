// Package lint is a small, dependency-free static-analysis framework
// for project-specific correctness rules, plus the four analyzers the
// quickrlint multichecker runs.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic, testdata fixtures with `// want`
// expectations) so the analyzers could be ported to a real multichecker
// verbatim; the framework itself sticks to the go/ast, go/parser and
// go/token standard-library packages because the build environment is
// hermetic — no module downloads.
//
// Analyzers see one package at a time: all non-test files of a
// directory, parsed with comments, plus the module-qualified import
// path (used to scope rules to e.g. quickr/internal/sampler). Analysis
// is purely syntactic — no type checking — which is sufficient for the
// rules here because they key on import names and well-known method
// names, and keeps a whole-repo run under a second.
//
// A finding can be suppressed by the line-oriented directive
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it, matching
// the staticcheck convention. The reason is mandatory: Run reports a
// bare directive as a finding of its own (ignorehygiene), and a
// directive that no longer suppresses anything — the analyzer it names
// ran and did not fire on its lines — is reported as stale, so
// suppressions cannot outlive the code smell they were written for.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis rule.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description, shown by `quickrlint -help`.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass carries one package's syntax to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's non-test files, parsed with comments.
	Files []*ast.File
	// Path is the module-qualified import path ("quickr/internal/exec").
	Path string

	diags   *[]Diagnostic
	ignores ignoreIndex
}

// ignoreIndex is filename -> line -> the directives written there.
type ignoreIndex map[string]map[int][]*ignoreDirective

// ignoreDirective is one parsed //lint:ignore comment. used flips when
// the directive actually suppresses a finding, which is what separates
// a live suppression from a stale one.
type ignoreDirective struct {
	name   string // analyzer name, or "*" for all
	reason string
	pos    token.Position
	used   bool
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos unless an ignore directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignored(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) ignored(pos token.Position) bool {
	byLine := p.ignores[pos.Filename]
	hit := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.name == p.Analyzer.Name || d.name == "*" {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}

var ignoreRE = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)[ \t]*(.*)$`)

// collectIgnores scans a file's comments for //lint:ignore directives.
func collectIgnores(fset *token.FileSet, f *ast.File, into ignoreIndex) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := ignoreRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			byLine := into[pos.Filename]
			if byLine == nil {
				byLine = map[int][]*ignoreDirective{}
				into[pos.Filename] = byLine
			}
			byLine[pos.Line] = append(byLine[pos.Line], &ignoreDirective{
				name:   m[1],
				reason: strings.TrimSpace(m[2]),
				pos:    pos,
			})
		}
	}
}

// IgnoreHygiene is the pseudo-analyzer name under which Run reports
// broken //lint:ignore directives (bare or stale). It cannot itself be
// suppressed: a suppression of the suppression checker would defeat it.
const IgnoreHygiene = "ignorehygiene"

// checkIgnores audits a package's directives after every analyzer ran:
// a directive without a reason is an error outright, and a directive
// whose analyzer ran but fired nothing on its lines suppresses nothing
// and must be deleted.
func checkIgnores(ignores ignoreIndex, analyzers []*Analyzer) []Diagnostic {
	ran := map[string]bool{"*": len(analyzers) > 0}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var out []Diagnostic
	for _, byLine := range ignores {
		for _, ds := range byLine {
			for _, d := range ds {
				switch {
				case d.reason == "":
					out = append(out, Diagnostic{
						Analyzer: IgnoreHygiene, Pos: d.pos,
						Message: fmt.Sprintf("bare //lint:ignore %s: a suppression must state its reason", d.name),
					})
				case ran[d.name] && !d.used:
					out = append(out, Diagnostic{
						Analyzer: IgnoreHygiene, Pos: d.pos,
						Message: fmt.Sprintf("stale //lint:ignore %s: the analyzer no longer fires here; delete the directive", d.name),
					})
				}
			}
		}
	}
	return out
}

// Run loads the packages matched by patterns (relative to root) and
// applies every analyzer, returning the combined findings sorted by
// position. A non-nil error means the run itself failed (unparseable
// source, bad pattern) — findings are not errors.
func Run(root string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, fset, err := load(root, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := ignoreIndex{}
		for _, f := range pkg.Files {
			collectIgnores(fset, f, ignores)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Path:     pkg.Path,
				diags:    &diags,
				ignores:  ignores,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		// Directive hygiene runs after the full suite so "unused" is
		// meaningful: every analyzer a directive could suppress has run.
		diags = append(diags, checkIgnores(ignores, analyzers)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// All returns the full quickrlint analyzer suite: the original
// syntactic walkers plus the dataflow analyzers built on the CFG
// framework (cfg.go, dataflow.go).
func All() []*Analyzer {
	return []*Analyzer{
		NoRawRand, SlotDiscipline, WeightProp, NoPrintf,
		LockDiscipline, CtxFlow, HotAlloc, ArenaSafe,
	}
}

// importName returns the local name the file binds for the package
// with the given import path ("" if not imported). A dot or blank
// import returns "" — selector-based rules cannot apply to those.
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." || imp.Name.Name == "_" {
				return ""
			}
			return imp.Name.Name
		}
		return p[strings.LastIndex(p, "/")+1:]
	}
	return ""
}

// selectorCall returns (receiver name, method name) for calls of the
// form recv.Method(...), or ("", "") otherwise.
func selectorCall(call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	return id.Name, sel.Sel.Name
}
