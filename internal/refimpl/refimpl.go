// Package refimpl is a deliberately naive reference evaluator for bound
// logical plans: nested-loop joins, row-at-a-time maps of selections and
// projections, and straightforward aggregation. It exists purely to
// cross-check the optimized partitioned executor — every workload query
// is executed by both and the answers must match exactly.
package refimpl

import (
	"fmt"
	"sort"
	"strings"

	"quickr/internal/catalog"
	"quickr/internal/lplan"
	"quickr/internal/table"
)

// Run evaluates the plan against the catalog and returns the result
// rows (in the plan's output order where the plan sorts, otherwise in
// deterministic row order).
func Run(cat *catalog.Catalog, plan lplan.Node) ([]table.Row, error) {
	e := &evaluator{cat: cat}
	rel, err := e.eval(plan)
	if err != nil {
		return nil, err
	}
	return rel.rows, nil
}

// relation is an intermediate result: rows positionally aligned with
// cols.
type relation struct {
	cols []lplan.ColumnInfo
	rows []table.Row
}

func (r *relation) colIndex() map[lplan.ColumnID]int {
	m := make(map[lplan.ColumnID]int, len(r.cols))
	for i, c := range r.cols {
		if _, ok := m[c.ID]; !ok {
			m[c.ID] = i
		}
	}
	return m
}

type evaluator struct {
	cat *catalog.Catalog
}

func (e *evaluator) eval(n lplan.Node) (*relation, error) {
	switch x := n.(type) {
	case *lplan.Scan:
		return e.evalScan(x)
	case *lplan.Select:
		return e.evalSelect(x)
	case *lplan.Project:
		return e.evalProject(x)
	case *lplan.Join:
		return e.evalJoin(x)
	case *lplan.Aggregate:
		return e.evalAggregate(x)
	case *lplan.Window:
		return e.evalWindow(x)
	case *lplan.Sort:
		return e.evalSort(x)
	case *lplan.Limit:
		in, err := e.eval(x.Input)
		if err != nil {
			return nil, err
		}
		if int64(len(in.rows)) > x.N {
			in.rows = in.rows[:x.N]
		}
		return in, nil
	case *lplan.Sample:
		// The reference implementation evaluates exact plans only;
		// pass-throughs are transparent.
		if x.Def != nil && x.Def.Type != lplan.SamplerPassThrough {
			return nil, fmt.Errorf("refimpl: cannot evaluate sampled plans")
		}
		return e.eval(x.Input)
	}
	// Union-like nodes (including the binder's wrapper).
	if len(n.Children()) > 1 {
		out := &relation{cols: n.Columns()}
		for _, c := range n.Children() {
			sub, err := e.eval(c)
			if err != nil {
				return nil, err
			}
			out.rows = append(out.rows, sub.rows...)
		}
		return out, nil
	}
	if len(n.Children()) == 1 {
		return e.eval(n.Children()[0])
	}
	return nil, fmt.Errorf("refimpl: unsupported node %T", n)
}

func (e *evaluator) evalScan(s *lplan.Scan) (*relation, error) {
	tbl, err := e.cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(s.Cols))
	for i, c := range s.Cols {
		pos := tbl.Schema.Index(c.Name)
		if pos < 0 {
			return nil, fmt.Errorf("refimpl: column %s missing from %s", c.Name, s.Table)
		}
		idx[i] = pos
	}
	out := &relation{cols: s.Cols}
	for _, part := range tbl.Partitions {
		for _, row := range part {
			pr := make(table.Row, len(idx))
			for i, p := range idx {
				pr[i] = row[p]
			}
			out.rows = append(out.rows, pr)
		}
	}
	return out, nil
}

func (e *evaluator) evalSelect(s *lplan.Select) (*relation, error) {
	in, err := e.eval(s.Input)
	if err != nil {
		return nil, err
	}
	cm := in.colIndex()
	out := &relation{cols: in.cols}
	for _, row := range in.rows {
		v, err := evalExpr(s.Pred, cm, row)
		if err != nil {
			return nil, err
		}
		if v.Kind() == table.KindBool && v.Bool() {
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

func (e *evaluator) evalProject(p *lplan.Project) (*relation, error) {
	in, err := e.eval(p.Input)
	if err != nil {
		return nil, err
	}
	cm := in.colIndex()
	out := &relation{cols: p.Cols}
	for _, row := range in.rows {
		pr := make(table.Row, len(p.Exprs))
		for i, ex := range p.Exprs {
			v, err := evalExpr(ex, cm, row)
			if err != nil {
				return nil, err
			}
			pr[i] = v
		}
		out.rows = append(out.rows, pr)
	}
	return out, nil
}

// evalJoin is a nested-loop join (quadratic on purpose — obviously
// correct).
func (e *evaluator) evalJoin(j *lplan.Join) (*relation, error) {
	left, err := e.eval(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := e.eval(j.Right)
	if err != nil {
		return nil, err
	}
	out := &relation{cols: append(append([]lplan.ColumnInfo{}, left.cols...), right.cols...)}
	lcm := left.colIndex()
	rcm := right.colIndex()
	combined := out.colIndex()

	lIdx := make([]int, len(j.LeftKeys))
	for i, k := range j.LeftKeys {
		lIdx[i] = lcm[k]
	}
	rIdx := make([]int, len(j.RightKeys))
	for i, k := range j.RightKeys {
		rIdx[i] = rcm[k]
	}

	for _, l := range left.rows {
		matched := false
		for _, r := range right.rows {
			ok := true
			for i := range lIdx {
				if !l[lIdx[i]].Equal(r[rIdx[i]]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			row := append(append(table.Row{}, l...), r...)
			if j.Residual != nil {
				v, err := evalExpr(j.Residual, combined, row)
				if err != nil {
					return nil, err
				}
				if !(v.Kind() == table.KindBool && v.Bool()) {
					continue
				}
			}
			out.rows = append(out.rows, row)
			matched = true
		}
		if !matched && j.Kind == lplan.LeftOuterJoin {
			row := append(append(table.Row{}, l...), make(table.Row, len(right.cols))...)
			for i := len(l); i < len(row); i++ {
				row[i] = table.Null
			}
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

type refAgg struct {
	sum      float64
	count    int64
	avgSum   float64
	avgCnt   int64
	distinct map[string]bool
	min, max table.Value
	seen     bool
}

func (e *evaluator) evalAggregate(a *lplan.Aggregate) (*relation, error) {
	in, err := e.eval(a.Input)
	if err != nil {
		return nil, err
	}
	cm := in.colIndex()
	gIdx := make([]int, len(a.GroupCols))
	for i, g := range a.GroupCols {
		pos, ok := cm[g]
		if !ok {
			return nil, fmt.Errorf("refimpl: group column #%d missing", g)
		}
		gIdx[i] = pos
	}

	type group struct {
		key  table.Row
		aggs []*refAgg
	}
	groups := map[string]*group{}
	var order []string
	for _, row := range in.rows {
		var kb strings.Builder
		for _, i := range gIdx {
			kb.WriteString(row[i].Key())
			kb.WriteByte(0)
		}
		key := kb.String()
		g, ok := groups[key]
		if !ok {
			g = &group{key: make(table.Row, len(gIdx)), aggs: make([]*refAgg, len(a.Aggs))}
			for i, idx := range gIdx {
				g.key[i] = row[idx]
			}
			for i := range g.aggs {
				g.aggs[i] = &refAgg{distinct: map[string]bool{}, min: table.Null, max: table.Null}
			}
			groups[key] = g
			order = append(order, key)
		}
		for i, spec := range a.Aggs {
			acc := g.aggs[i]
			var arg table.Value = table.Null
			if spec.Arg != lplan.NoColumn {
				arg = row[cm[spec.Arg]]
			}
			cond := true
			if spec.Cond != lplan.NoColumn {
				cv := row[cm[spec.Cond]]
				cond = cv.Kind() == table.KindBool && cv.Bool()
			}
			switch spec.Kind {
			case lplan.AggCount:
				if spec.Arg == lplan.NoColumn || !arg.IsNull() {
					acc.count++
				}
			case lplan.AggCountIf:
				if cond {
					acc.count++
				}
			case lplan.AggSum:
				if !arg.IsNull() {
					acc.sum += arg.Float()
					acc.seen = true
				}
			case lplan.AggSumIf:
				if cond && !arg.IsNull() {
					acc.sum += arg.Float()
					acc.seen = true
				}
			case lplan.AggAvg:
				if cond && !arg.IsNull() {
					acc.avgSum += arg.Float()
					acc.avgCnt++
				}
			case lplan.AggCountDistinct:
				if !arg.IsNull() {
					acc.distinct[arg.Key()] = true
				}
			case lplan.AggMin:
				if !arg.IsNull() && (acc.min.IsNull() || arg.Compare(acc.min) < 0) {
					acc.min = arg
				}
			case lplan.AggMax:
				if !arg.IsNull() && (acc.max.IsNull() || arg.Compare(acc.max) > 0) {
					acc.max = arg
				}
			}
		}
	}
	sort.Strings(order)

	out := &relation{cols: a.Columns()}
	for _, key := range order {
		g := groups[key]
		row := append(table.Row{}, g.key...)
		for i, spec := range a.Aggs {
			acc := g.aggs[i]
			switch spec.Kind {
			case lplan.AggCount, lplan.AggCountIf:
				row = append(row, table.NewInt(acc.count))
			case lplan.AggSum, lplan.AggSumIf:
				if spec.Out.Kind == table.KindInt {
					row = append(row, table.NewInt(int64(acc.sum+0.5)))
				} else {
					row = append(row, table.NewFloat(acc.sum))
				}
			case lplan.AggAvg:
				if acc.avgCnt == 0 {
					row = append(row, table.Null)
				} else {
					row = append(row, table.NewFloat(acc.avgSum/float64(acc.avgCnt)))
				}
			case lplan.AggCountDistinct:
				row = append(row, table.NewInt(int64(len(acc.distinct))))
			case lplan.AggMin:
				row = append(row, acc.min)
			case lplan.AggMax:
				row = append(row, acc.max)
			}
		}
		out.rows = append(out.rows, row)
	}
	// Global aggregate over empty input yields one row.
	if len(groups) == 0 && len(a.GroupCols) == 0 {
		row := make(table.Row, len(a.Aggs))
		for i, spec := range a.Aggs {
			switch spec.Kind {
			case lplan.AggCount, lplan.AggCountIf, lplan.AggCountDistinct:
				row[i] = table.NewInt(0)
			default:
				row[i] = table.Null
			}
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

func (e *evaluator) evalSort(s *lplan.Sort) (*relation, error) {
	in, err := e.eval(s.Input)
	if err != nil {
		return nil, err
	}
	cm := in.colIndex()
	idx := make([]int, len(s.Keys))
	for i, k := range s.Keys {
		pos, ok := cm[k.Col]
		if !ok {
			return nil, fmt.Errorf("refimpl: sort key #%d missing", k.Col)
		}
		idx[i] = pos
	}
	sort.SliceStable(in.rows, func(a, b int) bool {
		ra, rb := in.rows[a], in.rows[b]
		for i, k := range s.Keys {
			c := ra[idx[i]].Compare(rb[idx[i]])
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return table.CompareRows(ra, rb) < 0
	})
	return in, nil
}

// evalExpr is a tiny tree-walking expression interpreter, independent of
// the executor's compiled closures.
func evalExpr(ex lplan.Expr, cm map[lplan.ColumnID]int, row table.Row) (table.Value, error) {
	switch x := ex.(type) {
	case *lplan.ColRef:
		i, ok := cm[x.ID]
		if !ok {
			return table.Null, fmt.Errorf("refimpl: column %s#%d missing", x.Name, x.ID)
		}
		return row[i], nil
	case *lplan.Const:
		return x.Val, nil
	case *lplan.Binary:
		l, err := evalExpr(x.L, cm, row)
		if err != nil {
			return table.Null, err
		}
		// Short-circuiting must match SQL three-valued-ish semantics used
		// by the engine (NULL comparisons are false).
		if x.Op == lplan.OpAnd && l.Kind() == table.KindBool && !l.Bool() {
			return table.NewBool(false), nil
		}
		if x.Op == lplan.OpOr && l.Kind() == table.KindBool && l.Bool() {
			return table.NewBool(true), nil
		}
		r, err := evalExpr(x.R, cm, row)
		if err != nil {
			return table.Null, err
		}
		switch x.Op {
		case lplan.OpAdd:
			return table.Add(l, r), nil
		case lplan.OpSub:
			return table.Sub(l, r), nil
		case lplan.OpMul:
			return table.Mul(l, r), nil
		case lplan.OpDiv:
			return table.Div(l, r), nil
		case lplan.OpMod:
			return table.Mod(l, r), nil
		case lplan.OpAnd:
			return table.NewBool(l.Kind() == table.KindBool && l.Bool() &&
				r.Kind() == table.KindBool && r.Bool()), nil
		case lplan.OpOr:
			return table.NewBool((l.Kind() == table.KindBool && l.Bool()) ||
				(r.Kind() == table.KindBool && r.Bool())), nil
		default:
			if l.IsNull() || r.IsNull() {
				return table.NewBool(false), nil
			}
			c := l.Compare(r)
			switch x.Op {
			case lplan.OpEq:
				return table.NewBool(l.Equal(r)), nil
			case lplan.OpNe:
				return table.NewBool(!l.Equal(r)), nil
			case lplan.OpLt:
				return table.NewBool(c < 0), nil
			case lplan.OpLe:
				return table.NewBool(c <= 0), nil
			case lplan.OpGt:
				return table.NewBool(c > 0), nil
			case lplan.OpGe:
				return table.NewBool(c >= 0), nil
			}
		}
		return table.Null, fmt.Errorf("refimpl: bad binary op")
	case *lplan.Not:
		v, err := evalExpr(x.X, cm, row)
		if err != nil {
			return table.Null, err
		}
		return table.NewBool(!(v.Kind() == table.KindBool && v.Bool())), nil
	case *lplan.Neg:
		v, err := evalExpr(x.X, cm, row)
		if err != nil {
			return table.Null, err
		}
		switch v.Kind() {
		case table.KindInt:
			return table.NewInt(-v.Int()), nil
		case table.KindFloat:
			return table.NewFloat(-v.Float()), nil
		}
		return table.Null, nil
	case *lplan.Func:
		args := make([]table.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := evalExpr(a, cm, row)
			if err != nil {
				return table.Null, err
			}
			args[i] = v
		}
		return lplan.CallFunc(x.Name, args), nil
	case *lplan.In:
		v, err := evalExpr(x.X, cm, row)
		if err != nil {
			return table.Null, err
		}
		if v.IsNull() {
			return table.NewBool(false), nil
		}
		found := false
		for _, item := range x.Vals {
			if v.Equal(item) {
				found = true
				break
			}
		}
		return table.NewBool(found != x.Inv), nil
	case *lplan.IsNull:
		v, err := evalExpr(x.X, cm, row)
		if err != nil {
			return table.Null, err
		}
		return table.NewBool(v.IsNull() != x.Inv), nil
	case *lplan.Like:
		v, err := evalExpr(x.X, cm, row)
		if err != nil {
			return table.Null, err
		}
		if v.Kind() != table.KindString {
			return table.NewBool(false), nil
		}
		return table.NewBool(likeMatch(v.Str(), x.Pattern) != x.Inv), nil
	case *lplan.Case:
		for _, w := range x.Whens {
			c, err := evalExpr(w.Cond, cm, row)
			if err != nil {
				return table.Null, err
			}
			if c.Kind() == table.KindBool && c.Bool() {
				return evalExpr(w.Then, cm, row)
			}
		}
		if x.Else != nil {
			return evalExpr(x.Else, cm, row)
		}
		return table.Null, nil
	}
	return table.Null, fmt.Errorf("refimpl: unsupported expression %T", ex)
}

// likeMatch is an independent (recursive) LIKE implementation.
func likeMatch(s, p string) bool {
	if p == "" {
		return s == ""
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeMatch(s[i:], p[1:]) {
				return true
			}
		}
		return false
	case '_':
		return len(s) > 0 && likeMatch(s[1:], p[1:])
	default:
		return len(s) > 0 && s[0] == p[0] && likeMatch(s[1:], p[1:])
	}
}
