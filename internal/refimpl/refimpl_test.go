package refimpl

import (
	"testing"
	"testing/quick"

	"quickr/internal/catalog"
	"quickr/internal/lplan"
	"quickr/internal/table"
)

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "%%c", true},
		{"abc", "a%b%c%", true},
		{"abc", "_b_", true},
		{"ab", "_b_", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v want %v", c.s, c.p, got, c.want)
		}
	}
}

// Property: %-only patterns reduce to substring-anchored matching.
// Inputs are mapped to ASCII since LIKE matching is byte-based.
func TestLikePercentProperties(t *testing.T) {
	f := func(raw []byte) bool {
		b := make([]byte, len(raw))
		for i, c := range raw {
			b[i] = 'a' + c%26
		}
		s := string(b)
		return likeMatch(s, "%") &&
			likeMatch(s, s) &&
			(len(s) == 0 || likeMatch(s, s[:1]+"%"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRunSmallPlan(t *testing.T) {
	cat := catalog.New()
	tbl := table.New("t", table.NewSchema(
		table.Column{Name: "k", Kind: table.KindInt},
		table.Column{Name: "v", Kind: table.KindFloat},
	), 2)
	for i := 0; i < 10; i++ {
		tbl.Append(i, table.Row{table.NewInt(int64(i % 3)), table.NewFloat(float64(i))})
	}
	cat.Register(tbl)

	cols := []lplan.ColumnInfo{
		{ID: 1, Name: "k", Kind: table.KindInt},
		{ID: 2, Name: "v", Kind: table.KindFloat},
	}
	scan := &lplan.Scan{Table: "t", Cols: cols}
	agg := &lplan.Aggregate{
		Input:     scan,
		GroupCols: []lplan.ColumnID{1},
		GroupInfo: cols[:1],
		Aggs: []lplan.AggSpec{{
			Kind: lplan.AggSum, Arg: 2,
			Out: lplan.ColumnInfo{ID: 3, Name: "s", Kind: table.KindFloat},
		}},
	}
	rows, err := Run(cat, agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups: %v", rows)
	}
	var total float64
	for _, r := range rows {
		total += r[1].Float()
	}
	if total != 45 {
		t.Errorf("sum of sums %v want 45", total)
	}
}

func TestRunRejectsSampledPlans(t *testing.T) {
	cat := catalog.New()
	tbl := table.New("t", table.NewSchema(table.Column{Name: "k", Kind: table.KindInt}), 1)
	cat.Register(tbl)
	scan := &lplan.Scan{Table: "t", Cols: []lplan.ColumnInfo{{ID: 1, Name: "k", Kind: table.KindInt}}}
	sampled := &lplan.Sample{
		Input: scan,
		State: lplan.NewSamplerState(nil),
		Def:   &lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.1},
	}
	if _, err := Run(cat, sampled); err == nil {
		t.Error("reference evaluator must refuse sampled plans")
	}
	passthrough := &lplan.Sample{
		Input: scan,
		State: lplan.NewSamplerState(nil),
		Def:   &lplan.SamplerDef{Type: lplan.SamplerPassThrough},
	}
	if _, err := Run(cat, passthrough); err != nil {
		t.Errorf("pass-through must be transparent: %v", err)
	}
}
