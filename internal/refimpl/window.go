package refimpl

import (
	"fmt"
	"sort"
	"strings"

	"quickr/internal/lplan"
	"quickr/internal/table"
)

// evalWindow is the reference window-function evaluator: for every spec
// it materializes each partition, sorts it, and recomputes the frame
// aggregate from scratch per row — O(n²) per partition on purpose.
func (e *evaluator) evalWindow(w *lplan.Window) (*relation, error) {
	in, err := e.eval(w.Input)
	if err != nil {
		return nil, err
	}
	cm := in.colIndex()
	out := &relation{cols: w.Columns()}
	extras := make([][]table.Value, len(w.Specs))
	for si, spec := range w.Specs {
		vals, err := refWindow(spec, cm, in.rows)
		if err != nil {
			return nil, err
		}
		extras[si] = vals
	}
	for j, row := range in.rows {
		r := append(table.Row{}, row...)
		for si := range w.Specs {
			r = append(r, extras[si][j])
		}
		out.rows = append(out.rows, r)
	}
	return out, nil
}

func refWindow(spec lplan.WinSpec, cm map[lplan.ColumnID]int, rows []table.Row) ([]table.Value, error) {
	pIdx := make([]int, len(spec.PartitionBy))
	for i, id := range spec.PartitionBy {
		pos, ok := cm[id]
		if !ok {
			return nil, fmt.Errorf("refimpl: window partition column #%d missing", id)
		}
		pIdx[i] = pos
	}
	oIdx := make([]int, len(spec.OrderBy))
	for i, k := range spec.OrderBy {
		pos, ok := cm[k.Col]
		if !ok {
			return nil, fmt.Errorf("refimpl: window order column #%d missing", k.Col)
		}
		oIdx[i] = pos
	}
	aIdx := -1
	if spec.Arg != lplan.NoColumn {
		pos, ok := cm[spec.Arg]
		if !ok {
			return nil, fmt.Errorf("refimpl: window arg column #%d missing", spec.Arg)
		}
		aIdx = pos
	}

	key := func(j int) string {
		var b strings.Builder
		for _, pi := range pIdx {
			b.WriteString(rows[j][pi].Key())
			b.WriteByte(0)
		}
		return b.String()
	}
	less := func(a, b int) bool {
		for i, k := range spec.OrderBy {
			c := rows[a][oIdx[i]].Compare(rows[b][oIdx[i]])
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return table.CompareRows(rows[a], rows[b]) < 0
	}
	sameOrderKeys := func(a, b int) bool {
		for _, oi := range oIdx {
			if rows[a][oi].Compare(rows[b][oi]) != 0 {
				return false
			}
		}
		return true
	}

	parts := map[string][]int{}
	for j := range rows {
		k := key(j)
		parts[k] = append(parts[k], j)
	}
	out := make([]table.Value, len(rows))
	for _, idxs := range parts {
		sort.SliceStable(idxs, func(a, b int) bool { return less(idxs[a], idxs[b]) })
		for n, j := range idxs {
			switch spec.Kind {
			case lplan.WinRowNumber:
				out[j] = table.NewInt(int64(n + 1))
			case lplan.WinRank:
				rank := 1
				for m := 0; m < n; m++ {
					if !sameOrderKeys(idxs[m], j) {
						rank = m + 2
					}
				}
				out[j] = table.NewInt(int64(rank))
			default:
				// Frame: whole partition without ORDER BY, else all rows up
				// to and including the current row's peers.
				var sum float64
				var cnt int64
				minV, maxV := table.Null, table.Null
				for m, mj := range idxs {
					inFrame := len(spec.OrderBy) == 0 || m <= n || sameOrderKeys(mj, j)
					if len(spec.OrderBy) > 0 && m > n && !sameOrderKeys(mj, j) {
						inFrame = false
					}
					if !inFrame {
						continue
					}
					var v table.Value = table.Null
					if aIdx >= 0 {
						v = rows[mj][aIdx]
					}
					if spec.Kind == lplan.WinCount {
						if aIdx < 0 || !v.IsNull() {
							cnt++
						}
						continue
					}
					if v.IsNull() {
						continue
					}
					sum += v.Float()
					cnt++
					if minV.IsNull() || v.Compare(minV) < 0 {
						minV = v
					}
					if maxV.IsNull() || v.Compare(maxV) > 0 {
						maxV = v
					}
				}
				switch spec.Kind {
				case lplan.WinSum:
					if cnt == 0 {
						out[j] = table.Null
					} else if spec.Out.Kind == table.KindInt {
						out[j] = table.NewInt(int64(sum))
					} else {
						out[j] = table.NewFloat(sum)
					}
				case lplan.WinCount:
					out[j] = table.NewInt(cnt)
				case lplan.WinAvg:
					if cnt == 0 {
						out[j] = table.Null
					} else {
						out[j] = table.NewFloat(sum / float64(cnt))
					}
				case lplan.WinMin:
					out[j] = minV
				case lplan.WinMax:
					out[j] = maxV
				}
			}
		}
	}
	return out, nil
}
