// Package data provides deterministic synthetic dataset generators that
// stand in for the paper's evaluation inputs: a TPC-DS-like retail star
// schema (the paper evaluates on TPC-DS at scale factor 500), a
// TPC-H-like schema and a log-analytics dataset (for the Table 9
// cross-benchmark comparison). The generators preserve the features the
// paper's results depend on: fact tables sharing join keys (customer,
// ticket/order numbers) so fact–fact joins and universe sampling apply,
// Zipf-skewed key popularity, heavy-hitter values, dimension tables
// with small foreign-key domains, and group columns that are
// independent of the join keys.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"quickr/internal/lplan"
	"quickr/internal/table"
)

// TPCDSConfig controls the scale of the generated retail schema.
type TPCDSConfig struct {
	// ScaleFactor scales the fact-table row counts; 1.0 generates about
	// 30k store_sales rows.
	ScaleFactor float64
	// Seed makes generation deterministic.
	Seed int64
	// FactParts and DimParts set the stored partition counts.
	FactParts int
	DimParts  int
}

// DefaultTPCDS returns the configuration used by tests and experiments.
func DefaultTPCDS() TPCDSConfig {
	return TPCDSConfig{ScaleFactor: 1, Seed: 20160626, FactParts: 8, DimParts: 2}
}

// TPCDS holds the generated tables keyed by name, plus the declared
// primary keys.
type TPCDS struct {
	Tables map[string]*table.Table
	PKs    map[string][]string
}

// zipf draws Zipf-skewed indexes in [0,n).
type zipfGen struct {
	z *rand.Zipf
	n uint64
}

func newZipf(rng *rand.Rand, s float64, n int) *zipfGen {
	if n < 2 {
		n = 2
	}
	return &zipfGen{z: rand.NewZipf(rng, s, 1, uint64(n-1)), n: uint64(n)}
}

func (z *zipfGen) Next() int { return int(z.z.Uint64()) }

// keyGen draws join-key values that are mostly uniform with a small
// heavy-hitter head. Fact–fact joins (customer_sk and friends) need
// bounded multiplicity per key — real TPC-DS surrogate keys are
// near-uniform — while statistics and selectivity estimation still see
// a few frequent values.
type keyGen struct {
	rng  *rand.Rand
	n    int
	head int
}

func newKeyGen(rng *rand.Rand, n int) *keyGen {
	head := n/100 + 1
	return &keyGen{rng: rng, n: n, head: head}
}

func (k *keyGen) Next() int {
	// A mild 2% head keeps a few frequent keys for the statistics layer
	// without violating the universe sampler's independence assumption
	// (group values must be uncorrelated with join keys, §4.1.3).
	if k.rng.Float64() < 0.02 {
		return k.rng.Intn(k.head)
	}
	return k.rng.Intn(k.n)
}

// GenerateTPCDS builds the full schema.
func GenerateTPCDS(cfg TPCDSConfig) *TPCDS {
	if cfg.ScaleFactor <= 0 {
		cfg = DefaultTPCDS()
	}
	if cfg.FactParts == 0 {
		cfg.FactParts = 8
	}
	if cfg.DimParts == 0 {
		cfg.DimParts = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &TPCDS{Tables: map[string]*table.Table{}, PKs: map[string][]string{}}

	numItems := 1000
	numCustomers := int(3000 * math.Max(1, cfg.ScaleFactor))
	numStores := 12
	numPromos := 50
	numWarehouses := 8

	dates := d.genDateDim(cfg)
	d.genItem(cfg, rng, numItems)
	d.genCustomer(cfg, rng, numCustomers)
	d.genStore(cfg, rng, numStores)
	d.genPromotion(cfg, rng, numPromos)
	d.genWarehouse(cfg, rng, numWarehouses)

	ssRows := int(30000 * cfg.ScaleFactor)
	csRows := int(15000 * cfg.ScaleFactor)
	wsRows := int(8000 * cfg.ScaleFactor)

	ssKeys := d.genStoreSales(cfg, rng, ssRows, dates, numItems, numCustomers, numStores, numPromos)
	d.genStoreReturns(cfg, rng, ssKeys, dates)
	csKeys := d.genCatalogSales(cfg, rng, csRows, dates, numItems, numCustomers, numWarehouses, numPromos)
	d.genCatalogReturns(cfg, rng, csKeys, dates)
	wsKeys := d.genWebSales(cfg, rng, wsRows, dates, numItems, numCustomers, numPromos)
	d.genWebReturns(cfg, rng, wsKeys, dates)
	return d
}

func intc(n string) table.Column    { return table.Column{Name: n, Kind: table.KindInt} }
func floatc(n string) table.Column  { return table.Column{Name: n, Kind: table.KindFloat} }
func stringc(n string) table.Column { return table.Column{Name: n, Kind: table.KindString} }
func boolc(n string) table.Column   { return table.Column{Name: n, Kind: table.KindBool} }

func (d *TPCDS) add(t *table.Table, pk ...string) {
	d.Tables[t.Name] = t
	d.PKs[t.Name] = pk
}

// genDateDim generates four years of calendar days; returns the date
// surrogate keys.
func (d *TPCDS) genDateDim(cfg TPCDSConfig) []int64 {
	sc := table.NewSchema(
		intc("d_date_sk"), intc("d_date"), intc("d_year"), intc("d_moy"),
		intc("d_dom"), intc("d_qoy"), stringc("d_day_name"), boolc("d_weekend"),
	)
	t := table.New("date_dim", sc, cfg.DimParts)
	dayNames := []string{"Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"}
	start := lplan.DaysFromCivil(2000, 1, 1)
	var keys []int64
	i := 0
	for days := start; days < start+4*365+1; days++ {
		y, m, dom := lplan.CivilFromDays(days)
		dow := int((days%7 + 7 + 3) % 7) // 1970-01-01 was a Thursday
		sk := int64(2415022 + (days - start))
		t.Append(i, table.Row{
			table.NewInt(sk), table.NewInt(days), table.NewInt(int64(y)),
			table.NewInt(int64(m)), table.NewInt(int64(dom)), table.NewInt(int64((m-1)/3 + 1)),
			table.NewString(dayNames[dow]), table.NewBool(dow >= 5),
		})
		keys = append(keys, sk)
		i++
	}
	d.add(t, "d_date_sk")
	return keys
}

var (
	categories = []string{"Books", "Music", "Electronics", "Home", "Sports", "Shoes", "Jewelry", "Women", "Men", "Children"}
	colors     = []string{"red", "blue", "green", "black", "white", "yellow", "purple", "orange", "pink", "brown",
		"gray", "cyan", "magenta", "olive", "navy", "teal", "maroon", "silver", "gold", "beige"}
	sizes     = []string{"small", "medium", "large", "extra large", "petite"}
	states    = []string{"TN", "CA", "WA", "TX", "NY", "FL", "OH", "GA", "IL", "MI"}
	countries = []string{"United States", "Canada", "Mexico", "Germany", "France", "Japan", "Brazil", "India",
		"China", "United Kingdom", "Italy", "Spain", "Australia", "Chile", "Peru", "Norway", "Sweden",
		"Poland", "Kenya", "Egypt", "Nigeria", "Vietnam", "Thailand", "Greece", "Turkey", "Israel",
		"Portugal", "Austria", "Belgium", "Ireland"}
)

func (d *TPCDS) genItem(cfg TPCDSConfig, rng *rand.Rand, n int) {
	sc := table.NewSchema(
		intc("i_item_sk"), stringc("i_item_id"), stringc("i_category"), stringc("i_class"),
		stringc("i_brand"), stringc("i_color"), stringc("i_size"),
		floatc("i_current_price"), floatc("i_wholesale_cost"), intc("i_manager_id"),
	)
	t := table.New("item", sc, cfg.DimParts)
	for i := 0; i < n; i++ {
		cat := categories[i%len(categories)]
		price := 0.5 + rng.Float64()*99
		// Brands and classes are contiguous item ranges: sales skew is
		// Zipf over item ids, so high-numbered brands have tiny support —
		// the rare answer groups that make apriori samples miss rows and
		// that Quickr's stratification checks must guard against.
		t.Append(i, table.Row{
			table.NewInt(int64(i + 1)),
			table.NewString(fmt.Sprintf("AAAAAAAA%08d", i+1)),
			table.NewString(cat),
			table.NewString(fmt.Sprintf("%s-class-%d", cat, i/200)),
			table.NewString(fmt.Sprintf("brand-%d", i/10)),
			table.NewString(colors[rng.Intn(len(colors))]),
			table.NewString(sizes[rng.Intn(len(sizes))]),
			table.NewFloat(price),
			table.NewFloat(price * (0.4 + 0.3*rng.Float64())),
			table.NewInt(int64(1 + rng.Intn(100))),
		})
	}
	d.add(t, "i_item_sk")
}

func (d *TPCDS) genCustomer(cfg TPCDSConfig, rng *rand.Rand, n int) {
	sc := table.NewSchema(
		intc("c_customer_sk"), stringc("c_customer_id"), intc("c_birth_year"),
		stringc("c_birth_country"), stringc("c_gender"), boolc("c_preferred_flag"),
	)
	t := table.New("customer", sc, cfg.DimParts)
	genders := []string{"M", "F"}
	for i := 0; i < n; i++ {
		t.Append(i, table.Row{
			table.NewInt(int64(i + 1)),
			table.NewString(fmt.Sprintf("CUST%09d", i+1)),
			table.NewInt(int64(1930 + rng.Intn(70))),
			table.NewString(countries[rng.Intn(len(countries))]),
			table.NewString(genders[rng.Intn(2)]),
			table.NewBool(rng.Float64() < 0.3),
		})
	}
	d.add(t, "c_customer_sk")
}

func (d *TPCDS) genStore(cfg TPCDSConfig, rng *rand.Rand, n int) {
	sc := table.NewSchema(
		intc("s_store_sk"), stringc("s_store_id"), stringc("s_state"),
		stringc("s_city"), intc("s_market_id"), intc("s_floor_space"),
	)
	t := table.New("store", sc, cfg.DimParts)
	for i := 0; i < n; i++ {
		t.Append(i, table.Row{
			table.NewInt(int64(i + 1)),
			table.NewString(fmt.Sprintf("STORE%04d", i+1)),
			table.NewString(states[i%len(states)]),
			table.NewString(fmt.Sprintf("city-%d", i%40)),
			table.NewInt(int64(1 + i%10)),
			table.NewInt(int64(5000 + rng.Intn(90000))),
		})
	}
	d.add(t, "s_store_sk")
}

func (d *TPCDS) genPromotion(cfg TPCDSConfig, rng *rand.Rand, n int) {
	sc := table.NewSchema(
		intc("p_promo_sk"), stringc("p_promo_id"), boolc("p_channel_email"),
		boolc("p_channel_tv"), floatc("p_cost"),
	)
	t := table.New("promotion", sc, cfg.DimParts)
	for i := 0; i < n; i++ {
		t.Append(i, table.Row{
			table.NewInt(int64(i + 1)),
			table.NewString(fmt.Sprintf("PROMO%05d", i+1)),
			table.NewBool(rng.Float64() < 0.5),
			table.NewBool(rng.Float64() < 0.3),
			table.NewFloat(1000 * rng.Float64()),
		})
	}
	d.add(t, "p_promo_sk")
}

func (d *TPCDS) genWarehouse(cfg TPCDSConfig, rng *rand.Rand, n int) {
	sc := table.NewSchema(
		intc("w_warehouse_sk"), stringc("w_warehouse_id"), stringc("w_state"), intc("w_sq_ft"),
	)
	t := table.New("warehouse", sc, cfg.DimParts)
	for i := 0; i < n; i++ {
		t.Append(i, table.Row{
			table.NewInt(int64(i + 1)),
			table.NewString(fmt.Sprintf("WH%03d", i+1)),
			table.NewString(states[i%len(states)]),
			table.NewInt(int64(50000 + rng.Intn(500000))),
		})
	}
	d.add(t, "w_warehouse_sk")
}

// saleKey links a sale row to its potential return.
type saleKey struct {
	order int64
	item  int64
	cust  int64
	qty   int64
	price float64
}

func (d *TPCDS) genStoreSales(cfg TPCDSConfig, rng *rand.Rand, n int, dates []int64, items, custs, stores, promos int) []saleKey {
	sc := table.NewSchema(
		intc("ss_sold_date_sk"), intc("ss_item_sk"), intc("ss_customer_sk"), intc("ss_store_sk"),
		intc("ss_promo_sk"), intc("ss_ticket_number"), intc("ss_quantity"),
		floatc("ss_wholesale_cost"), floatc("ss_list_price"), floatc("ss_sales_price"),
		floatc("ss_ext_sales_price"), floatc("ss_net_profit"), floatc("ss_coupon_amt"),
	)
	t := table.New("store_sales", sc, cfg.FactParts)
	itemZipf := newZipf(rng, 1.2, items)
	custKeys := newKeyGen(rng, custs)
	keys := make([]saleKey, 0, n)
	for i := 0; i < n; i++ {
		item := int64(itemZipf.Next() + 1)
		cust := int64(custKeys.Next() + 1)
		date := dates[rng.Intn(len(dates))]
		qty := int64(1 + rng.Intn(20))
		list := 1 + rng.Float64()*100
		price := list * (0.5 + 0.5*rng.Float64())
		cost := list * (0.3 + 0.3*rng.Float64())
		ext := price * float64(qty)
		profit := (price - cost) * float64(qty)
		ticket := int64(i + 1)
		// Coupons are heavily value-skewed: ~95% of sales have none, a
		// few carry large amounts — the §4.1.2 skewed-SUM scenario.
		coupon := 0.0
		if rng.Float64() < 0.05 {
			coupon = 20 + rng.ExpFloat64()*120
		}
		t.Append(i, table.Row{
			table.NewInt(date), table.NewInt(item), table.NewInt(cust),
			table.NewInt(int64(1 + rng.Intn(stores))),
			table.NewInt(int64(1 + rng.Intn(promos))),
			table.NewInt(ticket), table.NewInt(qty),
			table.NewFloat(cost), table.NewFloat(list), table.NewFloat(price),
			table.NewFloat(ext), table.NewFloat(profit), table.NewFloat(coupon),
		})
		keys = append(keys, saleKey{order: ticket, item: item, cust: cust, qty: qty, price: price})
	}
	d.add(t)
	return keys
}

func (d *TPCDS) genStoreReturns(cfg TPCDSConfig, rng *rand.Rand, sales []saleKey, dates []int64) {
	sc := table.NewSchema(
		intc("sr_returned_date_sk"), intc("sr_item_sk"), intc("sr_customer_sk"),
		intc("sr_ticket_number"), intc("sr_return_quantity"),
		floatc("sr_return_amt"), floatc("sr_net_loss"),
	)
	t := table.New("store_returns", sc, cfg.FactParts)
	i := 0
	for _, s := range sales {
		if rng.Float64() >= 0.10 { // ~10% of sales are returned
			continue
		}
		retQty := 1 + rng.Int63n(s.qty)
		amt := s.price * float64(retQty)
		t.Append(i, table.Row{
			table.NewInt(dates[rng.Intn(len(dates))]),
			table.NewInt(s.item), table.NewInt(s.cust), table.NewInt(s.order),
			table.NewInt(retQty), table.NewFloat(amt), table.NewFloat(amt * 0.1),
		})
		i++
	}
	d.add(t)
}

func (d *TPCDS) genCatalogSales(cfg TPCDSConfig, rng *rand.Rand, n int, dates []int64, items, custs, whs, promos int) []saleKey {
	sc := table.NewSchema(
		intc("cs_sold_date_sk"), intc("cs_item_sk"), intc("cs_bill_customer_sk"),
		intc("cs_warehouse_sk"), intc("cs_promo_sk"), intc("cs_order_number"),
		intc("cs_quantity"), floatc("cs_sales_price"), floatc("cs_ext_sales_price"),
		floatc("cs_net_profit"),
	)
	t := table.New("catalog_sales", sc, cfg.FactParts)
	itemKeys := newKeyGen(rng, items)
	custKeys := newKeyGen(rng, custs)
	keys := make([]saleKey, 0, n)
	for i := 0; i < n; i++ {
		item := int64(itemKeys.Next() + 1)
		cust := int64(custKeys.Next() + 1)
		qty := int64(1 + rng.Intn(30))
		price := 1 + rng.Float64()*120
		ext := price * float64(qty)
		order := int64(i + 1)
		t.Append(i, table.Row{
			table.NewInt(dates[rng.Intn(len(dates))]),
			table.NewInt(item), table.NewInt(cust),
			table.NewInt(int64(1 + rng.Intn(whs))),
			table.NewInt(int64(1 + rng.Intn(promos))),
			table.NewInt(order), table.NewInt(qty),
			table.NewFloat(price), table.NewFloat(ext),
			table.NewFloat(ext * (0.05 + 0.25*rng.Float64())),
		})
		keys = append(keys, saleKey{order: order, item: item, cust: cust, qty: qty, price: price})
	}
	d.add(t)
	return keys
}

func (d *TPCDS) genCatalogReturns(cfg TPCDSConfig, rng *rand.Rand, sales []saleKey, dates []int64) {
	sc := table.NewSchema(
		intc("cr_returned_date_sk"), intc("cr_item_sk"), intc("cr_refunded_customer_sk"),
		intc("cr_order_number"), intc("cr_return_quantity"), floatc("cr_return_amount"),
	)
	t := table.New("catalog_returns", sc, cfg.FactParts)
	i := 0
	for _, s := range sales {
		if rng.Float64() >= 0.08 {
			continue
		}
		retQty := 1 + rng.Int63n(s.qty)
		t.Append(i, table.Row{
			table.NewInt(dates[rng.Intn(len(dates))]),
			table.NewInt(s.item), table.NewInt(s.cust), table.NewInt(s.order),
			table.NewInt(retQty), table.NewFloat(s.price * float64(retQty)),
		})
		i++
	}
	d.add(t)
}

func (d *TPCDS) genWebSales(cfg TPCDSConfig, rng *rand.Rand, n int, dates []int64, items, custs, promos int) []saleKey {
	sc := table.NewSchema(
		intc("ws_sold_date_sk"), intc("ws_item_sk"), intc("ws_bill_customer_sk"),
		intc("ws_promo_sk"), intc("ws_order_number"), intc("ws_quantity"),
		floatc("ws_sales_price"), floatc("ws_ext_sales_price"), floatc("ws_net_profit"),
	)
	t := table.New("web_sales", sc, cfg.FactParts)
	itemKeys := newKeyGen(rng, items)
	custKeys := newKeyGen(rng, custs)
	keys := make([]saleKey, 0, n)
	for i := 0; i < n; i++ {
		item := int64(itemKeys.Next() + 1)
		cust := int64(custKeys.Next() + 1)
		qty := int64(1 + rng.Intn(10))
		price := 1 + rng.Float64()*150
		ext := price * float64(qty)
		order := int64(i + 1)
		t.Append(i, table.Row{
			table.NewInt(dates[rng.Intn(len(dates))]),
			table.NewInt(item), table.NewInt(cust),
			table.NewInt(int64(1 + rng.Intn(promos))),
			table.NewInt(order), table.NewInt(qty),
			table.NewFloat(price), table.NewFloat(ext),
			table.NewFloat(ext * (0.02 + 0.3*rng.Float64())),
		})
		keys = append(keys, saleKey{order: order, item: item, cust: cust, qty: qty, price: price})
	}
	d.add(t)
	return keys
}

func (d *TPCDS) genWebReturns(cfg TPCDSConfig, rng *rand.Rand, sales []saleKey, dates []int64) {
	sc := table.NewSchema(
		intc("wr_returned_date_sk"), intc("wr_item_sk"), intc("wr_refunded_customer_sk"),
		intc("wr_order_number"), intc("wr_return_quantity"), floatc("wr_return_amt"),
	)
	t := table.New("web_returns", sc, cfg.FactParts)
	i := 0
	for _, s := range sales {
		if rng.Float64() >= 0.12 {
			continue
		}
		retQty := 1 + rng.Int63n(s.qty)
		t.Append(i, table.Row{
			table.NewInt(dates[rng.Intn(len(dates))]),
			table.NewInt(s.item), table.NewInt(s.cust), table.NewInt(s.order),
			table.NewInt(retQty), table.NewFloat(s.price * float64(retQty)),
		})
		i++
	}
	d.add(t)
}
