package data

import (
	"fmt"
	"math/rand"

	"quickr/internal/lplan"
	"quickr/internal/table"
)

// TPCH holds a TPC-H-like schema: lineitem/orders/customer/part/
// supplier plus nation and region dimensions, used by the Table 9
// cross-benchmark characteristics comparison.
type TPCH struct {
	Tables map[string]*table.Table
	PKs    map[string][]string
}

// TPCHConfig scales the TPC-H-like generator.
type TPCHConfig struct {
	ScaleFactor float64
	Seed        int64
	FactParts   int
	DimParts    int
}

// DefaultTPCH returns the configuration used by tests and experiments.
func DefaultTPCH() TPCHConfig {
	return TPCHConfig{ScaleFactor: 1, Seed: 19920522, FactParts: 8, DimParts: 2}
}

// GenerateTPCH builds the schema.
func GenerateTPCH(cfg TPCHConfig) *TPCH {
	if cfg.ScaleFactor <= 0 {
		cfg = DefaultTPCH()
	}
	if cfg.FactParts == 0 {
		cfg.FactParts = 8
	}
	if cfg.DimParts == 0 {
		cfg.DimParts = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := &TPCH{Tables: map[string]*table.Table{}, PKs: map[string][]string{}}

	nations := []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
		"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO",
		"MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA",
		"UNITED KINGDOM", "UNITED STATES"}
	regions := []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

	// region
	rt := table.New("region", table.NewSchema(intc("r_regionkey"), stringc("r_name")), 1)
	for i, r := range regions {
		rt.Append(i, table.Row{table.NewInt(int64(i)), table.NewString(r)})
	}
	h.add(rt, "r_regionkey")

	// nation
	nt := table.New("nation", table.NewSchema(intc("n_nationkey"), stringc("n_name"), intc("n_regionkey")), 1)
	for i, n := range nations {
		nt.Append(i, table.Row{table.NewInt(int64(i)), table.NewString(n), table.NewInt(int64(i % 5))})
	}
	h.add(nt, "n_nationkey")

	numCust := int(1500 * cfg.ScaleFactor)
	numPart := int(2000 * cfg.ScaleFactor)
	numSupp := int(100 * cfg.ScaleFactor)
	numOrders := int(15000 * cfg.ScaleFactor)

	segments := []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	ct := table.New("h_customer", table.NewSchema(
		intc("c_custkey"), stringc("c_name"), intc("c_nationkey"),
		stringc("c_mktsegment"), floatc("c_acctbal"),
	), cfg.DimParts)
	for i := 0; i < numCust; i++ {
		ct.Append(i, table.Row{
			table.NewInt(int64(i + 1)),
			table.NewString(fmt.Sprintf("Customer#%09d", i+1)),
			table.NewInt(int64(rng.Intn(len(nations)))),
			table.NewString(segments[rng.Intn(len(segments))]),
			table.NewFloat(-999 + rng.Float64()*10999),
		})
	}
	h.add(ct, "c_custkey")

	types := []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	pt := table.New("part", table.NewSchema(
		intc("p_partkey"), stringc("p_name"), stringc("p_type"),
		stringc("p_brand"), intc("p_size"), floatc("p_retailprice"),
	), cfg.DimParts)
	for i := 0; i < numPart; i++ {
		pt.Append(i, table.Row{
			table.NewInt(int64(i + 1)),
			table.NewString(fmt.Sprintf("part-%d", i+1)),
			table.NewString(types[rng.Intn(len(types))] + " ANODIZED"),
			table.NewString(fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5))),
			table.NewInt(int64(1 + rng.Intn(50))),
			table.NewFloat(900 + rng.Float64()*1100),
		})
	}
	h.add(pt, "p_partkey")

	st := table.New("supplier", table.NewSchema(
		intc("s_suppkey"), stringc("s_name"), intc("s_nationkey"), floatc("s_acctbal"),
	), cfg.DimParts)
	for i := 0; i < numSupp; i++ {
		st.Append(i, table.Row{
			table.NewInt(int64(i + 1)),
			table.NewString(fmt.Sprintf("Supplier#%09d", i+1)),
			table.NewInt(int64(rng.Intn(len(nations)))),
			table.NewFloat(-999 + rng.Float64()*10999),
		})
	}
	h.add(st, "s_suppkey")

	prios := []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	statuses := []string{"O", "F", "P"}
	ot := table.New("orders", table.NewSchema(
		intc("o_orderkey"), intc("o_custkey"), stringc("o_orderstatus"),
		floatc("o_totalprice"), intc("o_orderdate"), stringc("o_orderpriority"),
	), cfg.FactParts)
	startDate := lplan.DaysFromCivil(1995, 1, 1)
	custKeys := newKeyGen(rng, numCust)
	for i := 0; i < numOrders; i++ {
		ot.Append(i, table.Row{
			table.NewInt(int64(i + 1)),
			table.NewInt(int64(custKeys.Next() + 1)),
			table.NewString(statuses[rng.Intn(len(statuses))]),
			table.NewFloat(1000 + rng.Float64()*400000),
			table.NewInt(startDate + int64(rng.Intn(4*365))),
			table.NewString(prios[rng.Intn(len(prios))]),
		})
	}
	h.add(ot, "o_orderkey")

	flags := []string{"A", "N", "R"}
	lt := table.New("lineitem", table.NewSchema(
		intc("l_orderkey"), intc("l_partkey"), intc("l_suppkey"), intc("l_linenumber"),
		floatc("l_quantity"), floatc("l_extendedprice"), floatc("l_discount"),
		floatc("l_tax"), stringc("l_returnflag"), intc("l_shipdate"),
	), cfg.FactParts)
	partZipf := newZipf(rng, 1.05, numPart)
	row := 0
	for o := 0; o < numOrders; o++ {
		lines := 1 + rng.Intn(6)
		for ln := 0; ln < lines; ln++ {
			lt.Append(row, table.Row{
				table.NewInt(int64(o + 1)),
				table.NewInt(int64(partZipf.Next() + 1)),
				table.NewInt(int64(1 + rng.Intn(numSupp))),
				table.NewInt(int64(ln + 1)),
				table.NewFloat(float64(1 + rng.Intn(50))),
				table.NewFloat(900 + rng.Float64()*104000),
				table.NewFloat(float64(rng.Intn(11)) / 100),
				table.NewFloat(float64(rng.Intn(9)) / 100),
				table.NewString(flags[rng.Intn(len(flags))]),
				table.NewInt(startDate + int64(rng.Intn(4*365))),
			})
			row++
		}
	}
	h.add(lt)
	return h
}

func (h *TPCH) add(t *table.Table, pk ...string) {
	h.Tables[t.Name] = t
	h.PKs[t.Name] = pk
}

// Logs generates the "Other" workload dataset: a web request log with
// heavy-hitter URLs and users, for dashboard-style aggregation queries.
func Logs(rows int, seed int64, parts int) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	sc := table.NewSchema(
		intc("log_ts"), intc("log_uid"), stringc("log_url"), stringc("log_country"),
		intc("log_status"), intc("log_bytes"), floatc("log_latency_ms"),
	)
	if parts < 1 {
		parts = 8
	}
	t := table.New("weblogs", sc, parts)
	urlZipf := newZipf(rng, 1.3, 500)
	uidZipf := newZipf(rng, 1.1, rows/20+2)
	statuses := []int64{200, 200, 200, 200, 200, 200, 301, 304, 404, 500}
	for i := 0; i < rows; i++ {
		t.Append(i, table.Row{
			table.NewInt(int64(i) * 250),
			table.NewInt(int64(uidZipf.Next() + 1)),
			table.NewString(fmt.Sprintf("/page/%d", urlZipf.Next())),
			table.NewString(countries[rng.Intn(len(countries))]),
			table.NewInt(statuses[rng.Intn(len(statuses))]),
			table.NewInt(int64(200 + rng.Intn(100000))),
			table.NewFloat(1 + rng.ExpFloat64()*40),
		})
	}
	return t
}
