package data

import (
	"testing"

	"quickr/internal/table"
)

func TestTPCDSDeterministic(t *testing.T) {
	cfg := DefaultTPCDS()
	cfg.ScaleFactor = 0.1
	a := GenerateTPCDS(cfg)
	b := GenerateTPCDS(cfg)
	for name, ta := range a.Tables {
		tb := b.Tables[name]
		if tb == nil || ta.NumRows() != tb.NumRows() {
			t.Fatalf("%s: nondeterministic row counts", name)
		}
	}
	ra := a.Tables["store_sales"].AllRows()
	rb := b.Tables["store_sales"].AllRows()
	for i := range ra {
		if table.CompareRows(ra[i], rb[i]) != 0 {
			t.Fatalf("store_sales row %d differs between runs", i)
		}
	}
}

func TestTPCDSScaling(t *testing.T) {
	small := GenerateTPCDS(TPCDSConfig{ScaleFactor: 0.5, Seed: 1})
	big := GenerateTPCDS(TPCDSConfig{ScaleFactor: 1, Seed: 1})
	if 2*small.Tables["store_sales"].NumRows() != big.Tables["store_sales"].NumRows() {
		t.Errorf("store_sales does not scale linearly: %d vs %d",
			small.Tables["store_sales"].NumRows(), big.Tables["store_sales"].NumRows())
	}
	// Dimensions stay fixed.
	if small.Tables["item"].NumRows() != big.Tables["item"].NumRows() {
		t.Error("item table must not scale")
	}
}

func TestTPCDSReferentialIntegrity(t *testing.T) {
	d := GenerateTPCDS(TPCDSConfig{ScaleFactor: 0.2, Seed: 3})
	items := map[int64]bool{}
	for _, r := range d.Tables["item"].AllRows() {
		items[r[0].Int()] = true
	}
	dates := map[int64]bool{}
	for _, r := range d.Tables["date_dim"].AllRows() {
		dates[r[0].Int()] = true
	}
	ss := d.Tables["store_sales"]
	itemIdx := ss.Schema.Index("ss_item_sk")
	dateIdx := ss.Schema.Index("ss_sold_date_sk")
	for _, r := range ss.AllRows() {
		if !items[r[itemIdx].Int()] {
			t.Fatalf("dangling ss_item_sk %d", r[itemIdx].Int())
		}
		if !dates[r[dateIdx].Int()] {
			t.Fatalf("dangling ss_sold_date_sk %d", r[dateIdx].Int())
		}
	}
}

func TestReturnsDeriveFromSales(t *testing.T) {
	// Every store return must reference a real (ticket, item) sale —
	// the shared keys that make fact–fact joins meaningful.
	d := GenerateTPCDS(TPCDSConfig{ScaleFactor: 0.2, Seed: 3})
	ss := d.Tables["store_sales"]
	tIdx := ss.Schema.Index("ss_ticket_number")
	iIdx := ss.Schema.Index("ss_item_sk")
	sold := map[[2]int64]bool{}
	for _, r := range ss.AllRows() {
		sold[[2]int64{r[tIdx].Int(), r[iIdx].Int()}] = true
	}
	sr := d.Tables["store_returns"]
	rtIdx := sr.Schema.Index("sr_ticket_number")
	riIdx := sr.Schema.Index("sr_item_sk")
	n := sr.NumRows()
	if n == 0 {
		t.Fatal("no returns generated")
	}
	for _, r := range sr.AllRows() {
		if !sold[[2]int64{r[rtIdx].Int(), r[riIdx].Int()}] {
			t.Fatalf("return references nonexistent sale %v/%v", r[rtIdx], r[riIdx])
		}
	}
	// Return rate around 10%.
	rate := float64(n) / float64(ss.NumRows())
	if rate < 0.07 || rate > 0.13 {
		t.Errorf("return rate %.3f want ~0.10", rate)
	}
}

func TestTPCHShape(t *testing.T) {
	h := GenerateTPCH(TPCHConfig{ScaleFactor: 0.2, Seed: 5})
	for _, name := range []string{"lineitem", "orders", "h_customer", "part", "supplier", "nation", "region"} {
		if h.Tables[name] == nil || h.Tables[name].NumRows() == 0 {
			t.Fatalf("missing table %s", name)
		}
	}
	// Lineitems per order between 1 and 6.
	ratio := float64(h.Tables["lineitem"].NumRows()) / float64(h.Tables["orders"].NumRows())
	if ratio < 1 || ratio > 6 {
		t.Errorf("lineitems per order %.2f", ratio)
	}
}

func TestLogs(t *testing.T) {
	l := Logs(5000, 1, 4)
	if l.NumRows() != 5000 {
		t.Fatalf("rows %d", l.NumRows())
	}
	statusIdx := l.Schema.Index("log_status")
	ok := 0
	for _, r := range l.AllRows() {
		if r[statusIdx].Int() == 200 {
			ok++
		}
	}
	if frac := float64(ok) / 5000; frac < 0.4 || frac > 0.8 {
		t.Errorf("200-status fraction %.2f", frac)
	}
}

func TestCouponColumnIsSkewed(t *testing.T) {
	d := GenerateTPCDS(TPCDSConfig{ScaleFactor: 0.3, Seed: 9})
	ss := d.Tables["store_sales"]
	ci := ss.Schema.Index("ss_coupon_amt")
	if ci < 0 {
		t.Fatal("coupon column missing")
	}
	var n, zero int
	var sum, sumsq float64
	for _, r := range ss.AllRows() {
		v := r[ci].Float()
		n++
		if v == 0 {
			zero++
		}
		sum += v
		sumsq += v * v
	}
	frac := float64(zero) / float64(n)
	if frac < 0.9 || frac > 0.99 {
		t.Errorf("zero-coupon fraction %.3f want ~0.95", frac)
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	// The skew detector triggers on CV² > 4.
	if variance <= 4*mean*mean {
		t.Errorf("coupon column not skewed enough: var %.1f mean %.1f", variance, mean)
	}
}
