package opt

import "quickr/internal/lplan"

// RetainColumns threads the given columns through the projections under
// the topmost Aggregate so they are still visible in the aggregate's
// input. The accuracy analysis can decide post-placement that a plan is
// effectively universe-sampled on its join key (a uniform sampler on
// the dimension side of an FK join cluster-samples the join output);
// the per-subspace variance estimator then needs that key column at the
// aggregate, but normalization has usually pruned it away right above
// the join. Appending pass-through ColRefs to the pruned Projects is
// semantically invisible — the aggregate reads only the columns it
// resolves by ID — and restores the subspace identity the estimator
// keys on.
func RetainColumns(n lplan.Node, cols []lplan.ColumnID) lplan.Node {
	if len(cols) == 0 {
		return n
	}
	if agg, ok := n.(*lplan.Aggregate); ok {
		c := *agg
		c.Input = retainThrough(agg.Input, cols)
		return &c
	}
	ch := n.Children()
	if len(ch) == 0 {
		return n
	}
	newCh := make([]lplan.Node, len(ch))
	changed := false
	for i, child := range ch {
		newCh[i] = RetainColumns(child, cols)
		if newCh[i] != child {
			changed = true
		}
	}
	if !changed {
		return n
	}
	return n.WithChildren(newCh)
}

// retainThrough rewrites Projects in the subtree to pass the requested
// columns along whenever their input still carries them.
func retainThrough(n lplan.Node, cols []lplan.ColumnID) lplan.Node {
	if n == nil {
		return nil
	}
	// Stop at nested aggregates: columns below them are a different
	// scope and the samplers this rewrite serves sit above them.
	if _, ok := n.(*lplan.Aggregate); ok {
		return n
	}
	ch := n.Children()
	newCh := make([]lplan.Node, len(ch))
	changed := false
	for i, child := range ch {
		newCh[i] = retainThrough(child, cols)
		if newCh[i] != child {
			changed = true
		}
	}
	if changed {
		n = n.WithChildren(newCh)
	}
	p, ok := n.(*lplan.Project)
	if !ok {
		return n
	}
	have := map[lplan.ColumnID]lplan.ColumnInfo{}
	for _, ci := range p.Input.Columns() {
		have[ci.ID] = ci
	}
	out := map[lplan.ColumnID]bool{}
	for _, ci := range p.Cols {
		out[ci.ID] = true
	}
	var addExprs []lplan.Expr
	var addCols []lplan.ColumnInfo
	for _, id := range cols {
		ci, avail := have[id]
		if !avail || out[id] {
			continue
		}
		out[id] = true
		addExprs = append(addExprs, &lplan.ColRef{ID: ci.ID, Name: ci.Name, Kind: ci.Kind})
		addCols = append(addCols, ci)
	}
	if len(addExprs) == 0 {
		return n
	}
	c := *p
	c.Exprs = append(append([]lplan.Expr{}, p.Exprs...), addExprs...)
	c.Cols = append(append([]lplan.ColumnInfo{}, p.Cols...), addCols...)
	return &c
}
