package opt

import (
	"strings"
	"testing"

	"quickr/internal/lplan"
	"quickr/internal/plancheck"
	"quickr/internal/table"
)

// mustVerify asserts that a normalized plan satisfies every logical
// plan invariant — each transformation-rule test below checks its
// output shape AND its invariant-cleanliness, so a rewrite can neither
// produce the wrong tree nor a subtly illegal one.
func mustVerify(t *testing.T, plan lplan.Node) {
	t.Helper()
	if err := plancheck.Logical(plan); err != nil {
		t.Fatalf("normalized plan violates invariants: %v\n%s", err, lplan.Format(plan))
	}
}

func findScan(plan lplan.Node, tbl string) *lplan.Scan {
	var out *lplan.Scan
	lplan.Walk(plan, func(n lplan.Node) {
		if s, ok := n.(*lplan.Scan); ok && s.Table == tbl {
			out = s
		}
	})
	return out
}

func countNodes(plan lplan.Node, match func(lplan.Node) bool) int {
	c := 0
	lplan.Walk(plan, func(n lplan.Node) {
		if match(n) {
			c++
		}
	})
	return c
}

func isSelect(n lplan.Node) bool { _, ok := n.(*lplan.Select); return ok }

// TestNormalizeMergesStackedSelects: stacked Select operators collapse
// into conjuncts pushed to the scan — afterwards exactly one Select
// remains, directly over the scan.
func TestNormalizeMergesStackedSelects(t *testing.T) {
	cat, est := fixture(t)
	inner := bindQ(t, cat, "SELECT f_dim, f_val FROM fact WHERE f_val > 10")
	col := inner.Columns()[0]
	stacked := &lplan.Select{
		Input: inner,
		Pred: &lplan.Binary{Op: lplan.OpGt,
			L: &lplan.ColRef{ID: col.ID, Name: col.Name, Kind: col.Kind},
			R: &lplan.Const{Val: table.NewInt(3)}},
	}
	if got := countNodes(stacked, isSelect); got != 2 {
		t.Fatalf("before: %d selects, want 2\n%s", got, lplan.Format(stacked))
	}
	plan := Normalize(stacked, est)
	if got := countNodes(plan, isSelect); got != 1 {
		t.Fatalf("after: %d selects, want 1 merged\n%s", got, lplan.Format(plan))
	}
	sel := &lplan.Select{}
	lplan.Walk(plan, func(n lplan.Node) {
		if s, ok := n.(*lplan.Select); ok {
			sel = s
		}
	})
	if _, ok := sel.Input.(*lplan.Scan); !ok {
		t.Errorf("merged select not directly over the scan:\n%s", lplan.Format(plan))
	}
	mustVerify(t, plan)
}

// TestNormalizePushesThroughPassthroughProject: a predicate over a
// column the projection passes through untouched moves below the
// projection.
func TestNormalizePushesThroughPassthroughProject(t *testing.T) {
	cat, est := fixture(t)
	base := bindQ(t, cat, "SELECT f_dim, f_val FROM fact")
	col := base.Columns()[0] // f_dim, a pass-through ColRef
	sel := &lplan.Select{
		Input: base,
		Pred: &lplan.Binary{Op: lplan.OpGt,
			L: &lplan.ColRef{ID: col.ID, Name: col.Name, Kind: col.Kind},
			R: &lplan.Const{Val: table.NewInt(3)}},
	}
	plan := Normalize(sel, est)
	// The select must now sit under every Project.
	sawSelect := false
	lplan.Walk(plan, func(n lplan.Node) {
		if _, ok := n.(*lplan.Project); ok && sawSelect {
			t.Errorf("a project ended up below the pushed select:\n%s", lplan.Format(plan))
		}
		if isSelect(n) {
			sawSelect = true
		}
	})
	if !sawSelect {
		t.Fatalf("select disappeared:\n%s", lplan.Format(plan))
	}
	mustVerify(t, plan)
}

// TestNormalizeKeepsComputedColumnPredicate: a predicate over a column
// the projection computes cannot move below it.
func TestNormalizeKeepsComputedColumnPredicate(t *testing.T) {
	cat, est := fixture(t)
	base := bindQ(t, cat, "SELECT f_val + 1 AS v FROM fact")
	col := base.Columns()[0]
	sel := &lplan.Select{
		Input: base,
		Pred: &lplan.Binary{Op: lplan.OpGt,
			L: &lplan.ColRef{ID: col.ID, Name: col.Name, Kind: col.Kind},
			R: &lplan.Const{Val: table.NewInt(3)}},
	}
	plan := Normalize(sel, est)
	// Root must still be a select over the computing project.
	root, ok := plan.(*lplan.Select)
	if !ok {
		t.Fatalf("computed-column predicate moved; root is %T:\n%s", plan, lplan.Format(plan))
	}
	if _, ok := root.Input.(*lplan.Project); !ok {
		t.Fatalf("select no longer over the project:\n%s", lplan.Format(plan))
	}
	mustVerify(t, plan)
}

// TestNormalizePrunesProjectExpressions: projection expressions whose
// outputs nothing consumes are dropped.
func TestNormalizePrunesProjectExpressions(t *testing.T) {
	cat, est := fixture(t)
	base := bindQ(t, cat, "SELECT f_dim, f_val + 1 AS v FROM fact")
	keep := base.Columns()[0]
	top := &lplan.Project{
		Input: base,
		Exprs: []lplan.Expr{&lplan.ColRef{ID: keep.ID, Name: keep.Name, Kind: keep.Kind}},
		Cols:  []lplan.ColumnInfo{keep},
	}
	plan := Normalize(top, est)
	text := lplan.Format(plan)
	if strings.Contains(text, "+") {
		t.Errorf("unused computed expression survived pruning:\n%s", text)
	}
	if sc := findScan(plan, "fact"); sc == nil || len(sc.Cols) != 1 {
		t.Errorf("scan not pruned to the single consumed column:\n%s", text)
	}
	mustVerify(t, plan)
}

// TestNormalizePreservesScanWeightColumn is the regression test for
// pruneColumns rebuilding a Scan without its apriori-sample weight
// column: the rebuilt scan silently reset every row weight to 1 and
// biased BlinkDB-baseline estimates by 1/p. plancheck's
// weight-propagation rule and the quickrlint weightprop analyzer both
// guard this threading now.
func TestNormalizePreservesScanWeightColumn(t *testing.T) {
	cat, est := fixture(t)
	plan := bindQ(t, cat, "SELECT f_dim, COUNT(*) FROM fact GROUP BY f_dim")
	// Attach a weight column to the fact scan, as the BlinkDB baseline's
	// substituteScan does, then re-normalize (which prunes f_val/f_tag
	// and therefore rebuilds the scan node).
	var rewrite func(n lplan.Node) lplan.Node
	rewrite = func(n lplan.Node) lplan.Node {
		if s, ok := n.(*lplan.Scan); ok && s.Table == "fact" {
			return &lplan.Scan{Table: s.Table, Cols: s.Cols, WeightColumn: "_w"}
		}
		ch := n.Children()
		if len(ch) == 0 {
			return n
		}
		newCh := make([]lplan.Node, len(ch))
		for i, c := range ch {
			newCh[i] = rewrite(c)
		}
		return n.WithChildren(newCh)
	}
	plan = rewrite(plan)
	plan = Normalize(plan, est)
	sc := findScan(plan, "fact")
	if sc == nil {
		t.Fatalf("fact scan disappeared:\n%s", lplan.Format(plan))
	}
	if len(sc.Cols) >= 4 {
		t.Fatalf("scan not pruned (%d cols), regression setup broken", len(sc.Cols))
	}
	if sc.WeightColumn != "_w" {
		t.Fatalf("pruneColumns dropped the weight column: %+v", sc)
	}
	mustVerify(t, plan)
}

// TestNormalizeOrdersJoinInputsBySize: a non-FK inner join puts the
// estimated-smaller input on the right (the hash-join build side); FK
// joins keep their fact-left/dimension-right orientation.
func TestNormalizeOrdersJoinInputsBySize(t *testing.T) {
	cat, est := fixture(t)
	small := bindQ(t, cat, "SELECT d_key FROM dim")
	big := bindQ(t, cat, "SELECT f_dim, f_val FROM fact")
	join := &lplan.Join{
		Kind:      lplan.InnerJoin,
		Left:      small,
		Right:     big,
		LeftKeys:  []lplan.ColumnID{small.Columns()[0].ID},
		RightKeys: []lplan.ColumnID{big.Columns()[0].ID},
	}
	if est.Props(join.Left).Bytes() >= est.Props(join.Right).Bytes() {
		t.Fatalf("fixture broken: left side not smaller")
	}
	plan := Normalize(join, est)
	j, ok := plan.(*lplan.Join)
	if !ok {
		t.Fatalf("root is %T", plan)
	}
	if findScan(j.Right, "dim") == nil {
		t.Errorf("smaller input not moved to the build side:\n%s", lplan.Format(plan))
	}
	if findScan(j.Left, "fact") == nil {
		t.Errorf("larger input not moved to the probe side:\n%s", lplan.Format(plan))
	}
	mustVerify(t, plan)

	// FK join: same shape query through the binder keeps the dimension
	// on the right and is not reordered (it is already oriented).
	fk := bindQ(t, cat, "SELECT f_val FROM fact JOIN dim ON f_dim = d_key")
	fkPlan := Normalize(fk, est)
	var fkJoin *lplan.Join
	lplan.Walk(fkPlan, func(n lplan.Node) {
		if jn, ok := n.(*lplan.Join); ok {
			fkJoin = jn
		}
	})
	if fkJoin == nil || !fkJoin.FKJoin {
		t.Fatalf("expected an FK join:\n%s", lplan.Format(fkPlan))
	}
	if findScan(fkJoin.Right, "dim") == nil {
		t.Errorf("FK join lost its dimension-right orientation:\n%s", lplan.Format(fkPlan))
	}
	mustVerify(t, fkPlan)
}
