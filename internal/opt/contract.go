package opt

import (
	"time"

	"quickr/internal/accuracy"
	"quickr/internal/lplan"
)

// ContractLadder is the bounded escalation ladder of sampling
// probabilities tried for error contracts, in ascending order. A
// contract run starts at the smallest rung whose predicted CI fits the
// target and climbs one rung per miss; past the last rung the engine
// falls back to an exact plan.
var ContractLadder = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.33, 0.5}

// ContractFacts are the cardinality facts that drive contract p
// selection, extracted from the logical plan before physical planning.
type ContractFacts struct {
	// InputRows is the estimated row count flowing into the top
	// aggregate (post-filter, post-join).
	InputRows float64
	// Groups is the estimated number of output groups (1 when
	// ungrouped).
	Groups float64
	// Support is the estimated per-group input rows
	// (InputRows/Groups).
	Support float64
	// CV2 is the worst squared coefficient of variation Var/Avg^2
	// across SUM/AVG aggregate arguments, from catalog column stats;
	// 1.0 when no stats are available (a deliberately middling default
	// that the learned history correction refines).
	CV2 float64
}

// ContractFactsFor derives ContractFacts from the first Aggregate in
// the bound+normalized logical plan. Returns ok=false for plans
// without an aggregate (contracts degenerate to exact execution).
func ContractFactsFor(est *Estimator, root lplan.Node) (ContractFacts, bool) {
	var agg *lplan.Aggregate
	lplan.Walk(root, func(n lplan.Node) {
		if a, isAgg := n.(*lplan.Aggregate); isAgg && agg == nil {
			agg = a
		}
	})
	if agg == nil {
		return ContractFacts{}, false
	}
	rows := est.Props(agg.Input).Rows
	if rows < 1 {
		rows = 1
	}
	groups := 1.0
	if len(agg.GroupCols) > 0 {
		groups = est.NDV(agg.Input, agg.GroupCols)
		if groups < 1 {
			groups = 1
		}
		if groups > rows {
			groups = rows
		}
	}
	cv2 := 0.0
	haveStats := false
	for i := range agg.Aggs {
		a := &agg.Aggs[i]
		if a.Kind != lplan.AggSum && a.Kind != lplan.AggAvg && a.Kind != lplan.AggSumIf {
			continue
		}
		if a.Arg == lplan.NoColumn {
			continue
		}
		cs := est.originStats(agg.Input, &lplan.ColRef{ID: a.Arg})
		if cs == nil || cs.Avg == 0 {
			// No usable stats for this argument: fall back to the
			// middling default below.
			continue
		}
		haveStats = true
		if v := cs.Var / (cs.Avg * cs.Avg); v > cv2 {
			cv2 = v
		}
	}
	if !haveStats {
		for i := range agg.Aggs {
			a := &agg.Aggs[i]
			if a.Kind == lplan.AggSum || a.Kind == lplan.AggAvg || a.Kind == lplan.AggSumIf {
				cv2 = 1.0
				break
			}
		}
	}
	return ContractFacts{
		InputRows: rows,
		Groups:    groups,
		Support:   rows / groups,
		CV2:       cv2,
	}, true
}

// ChooseContractP picks the smallest ladder rung whose predicted
// relative CI (scaled by corr, the learned realized/predicted ratio;
// pass 1 with no history) fits maxRelErr at the given confidence.
// Returns ok=false when no rung qualifies, meaning the engine should
// plan exact. minIdx skips rungs below a warm-start floor.
func ChooseContractP(f ContractFacts, maxRelErr, confidence, corr float64, minIdx int) (p float64, idx int, ok bool) {
	if corr <= 0 {
		corr = 1
	}
	if minIdx < 0 {
		minIdx = 0
	}
	for i := minIdx; i < len(ContractLadder); i++ {
		rung := ContractLadder[i]
		pred := accuracy.PredictRelCI(confidence, rung, f.Support, f.CV2) * corr
		if pred <= maxRelErr {
			return rung, i, true
		}
	}
	return 0, len(ContractLadder), false
}

// PredictedRelErr is the predicted relative CI at rung p for the facts,
// scaled by the learned correction ratio.
func PredictedRelErr(f ContractFacts, confidence, p, corr float64) float64 {
	if corr <= 0 {
		corr = 1
	}
	return accuracy.PredictRelCI(confidence, p, f.Support, f.CV2) * corr
}

// ChooseDeadlineP picks the largest ladder rung whose predicted wall
// time fits the deadline, using measured rows/sec from history (pass
// rowsPerSec<=0 for the cold default). The cost model is a scan of all
// InputRows plus downstream work proportional to the pass rate:
// t(p) = rows*(0.5+0.5p)/rps. Returns ok=false when even the smallest
// rung is predicted to blow the budget (the engine still runs it — a
// deadline is best-effort — but flags the contract).
func ChooseDeadlineP(f ContractFacts, deadline time.Duration, rowsPerSec float64) (p float64, ok bool) {
	if rowsPerSec <= 0 {
		rowsPerSec = 2e6 // cold default: ~2M rows/sec single-node
	}
	budget := deadline.Seconds()
	for i := len(ContractLadder) - 1; i >= 0; i-- {
		rung := ContractLadder[i]
		t := f.InputRows * (0.5 + 0.5*rung) / rowsPerSec
		if t <= budget {
			return rung, true
		}
	}
	return ContractLadder[0], false
}
