package opt

import (
	"math"
	"strings"
	"testing"

	"quickr/internal/catalog"
	"quickr/internal/cluster"
	"quickr/internal/exec"
	"quickr/internal/lplan"
	"quickr/internal/sql"
	"quickr/internal/table"
)

func fixture(t *testing.T) (*catalog.Catalog, *Estimator) {
	t.Helper()
	cat := catalog.New()
	fact := table.New("fact", table.NewSchema(
		table.Column{Name: "f_key", Kind: table.KindInt},
		table.Column{Name: "f_dim", Kind: table.KindInt},
		table.Column{Name: "f_val", Kind: table.KindFloat},
		table.Column{Name: "f_tag", Kind: table.KindString},
	), 4)
	for i := 0; i < 10000; i++ {
		tag := "cold"
		if i%5 == 0 {
			tag = "hot" // 20% heavy hitter
		}
		fact.Append(i, table.Row{
			table.NewInt(int64(i)), table.NewInt(int64(i % 20)),
			table.NewFloat(float64(i % 100)), table.NewString(tag),
		})
	}
	dim := table.New("dim", table.NewSchema(
		table.Column{Name: "d_key", Kind: table.KindInt},
		table.Column{Name: "d_cat", Kind: table.KindString},
	), 1)
	for i := 0; i < 20; i++ {
		dim.Append(i, table.Row{table.NewInt(int64(i)), table.NewString(string(rune('a' + i%4)))})
	}
	cat.Register(fact)
	cat.Register(dim)
	cat.SetPrimaryKey("dim", "d_key")
	return cat, NewEstimator(cat)
}

func bindQ(t *testing.T, cat *catalog.Catalog, src string) lplan.Node {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := catalog.NewBinder(cat).Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestEstimatorScanAndSelect(t *testing.T) {
	cat, est := fixture(t)
	plan := bindQ(t, cat, "SELECT f_val FROM fact WHERE f_dim = 7")
	plan = Normalize(plan, est)
	p := est.Props(plan)
	// 10000 rows / 20 distinct dims = 500 expected.
	if p.Rows < 200 || p.Rows > 1200 {
		t.Errorf("estimated rows %.0f want ~500", p.Rows)
	}
}

func TestEstimatorHeavyHitterEquality(t *testing.T) {
	cat, est := fixture(t)
	hot := bindQ(t, cat, "SELECT f_val FROM fact WHERE f_tag = 'hot'")
	hot = Normalize(hot, est)
	cold := bindQ(t, cat, "SELECT f_val FROM fact WHERE f_tag = 'rare_value'")
	cold = Normalize(cold, est)
	ph, pc := est.Props(hot), est.Props(cold)
	// The heavy hitter 'hot' covers 20% of rows; the estimator must use
	// its observed frequency rather than 1/NDV.
	if ph.Rows < 1500 || ph.Rows > 2500 {
		t.Errorf("hot estimate %.0f want ~2000", ph.Rows)
	}
	if pc.Rows >= ph.Rows {
		t.Errorf("non-heavy value estimate %.0f must be below heavy %.0f", pc.Rows, ph.Rows)
	}
}

func TestEstimatorFKJoin(t *testing.T) {
	cat, est := fixture(t)
	plan := bindQ(t, cat, "SELECT f_val FROM fact JOIN dim ON f_dim = d_key")
	plan = Normalize(plan, est)
	p := est.Props(plan)
	// FK join preserves fact cardinality.
	if math.Abs(p.Rows-10000)/10000 > 0.2 {
		t.Errorf("FK join estimate %.0f want ~10000", p.Rows)
	}
}

func TestEstimatorAggregateRows(t *testing.T) {
	cat, est := fixture(t)
	plan := bindQ(t, cat, "SELECT f_dim, COUNT(*) FROM fact GROUP BY f_dim")
	plan = Normalize(plan, est)
	p := est.Props(plan)
	if p.Rows < 15 || p.Rows > 25 {
		t.Errorf("group estimate %.0f want ~20", p.Rows)
	}
}

func TestNormalizePushesPredicatesBelowJoin(t *testing.T) {
	cat, est := fixture(t)
	plan := bindQ(t, cat, `SELECT f_val FROM fact JOIN dim ON f_dim = d_key
		WHERE f_val > 50 AND d_cat = 'a'`)
	plan = Normalize(plan, est)
	// Both conjuncts must sit below the join, directly over their scans.
	var joins []*lplan.Join
	lplan.Walk(plan, func(n lplan.Node) {
		if j, ok := n.(*lplan.Join); ok {
			joins = append(joins, j)
		}
	})
	if len(joins) != 1 {
		t.Fatalf("joins: %d", len(joins))
	}
	countSelectsAbove := 0
	lplan.Walk(plan, func(n lplan.Node) {
		if s, ok := n.(*lplan.Select); ok {
			under := false
			lplan.Walk(joins[0], func(x lplan.Node) {
				if x == lplan.Node(s) {
					under = true
				}
			})
			if !under {
				countSelectsAbove++
			}
		}
	})
	if countSelectsAbove != 0 {
		t.Errorf("%d selects stayed above the join:\n%s", countSelectsAbove, lplan.Format(plan))
	}
}

func TestNormalizePrunesScanColumns(t *testing.T) {
	cat, est := fixture(t)
	plan := bindQ(t, cat, "SELECT f_val FROM fact WHERE f_dim > 3")
	plan = Normalize(plan, est)
	var scan *lplan.Scan
	lplan.Walk(plan, func(n lplan.Node) {
		if s, ok := n.(*lplan.Scan); ok && s.Table == "fact" {
			scan = s
		}
	})
	if scan == nil || len(scan.Cols) != 2 {
		t.Fatalf("pruned scan cols: %+v", scan)
	}
}

func TestNormalizeDoesNotPushRightPredBelowOuterJoin(t *testing.T) {
	cat, est := fixture(t)
	plan := bindQ(t, cat, `SELECT f_val FROM fact LEFT JOIN dim ON f_dim = d_key
		WHERE d_cat = 'a'`)
	plan = Normalize(plan, est)
	// The d_cat predicate must NOT move below the left outer join.
	var join *lplan.Join
	lplan.Walk(plan, func(n lplan.Node) {
		if j, ok := n.(*lplan.Join); ok {
			join = j
		}
	})
	selBelowRight := false
	lplan.Walk(join.Right, func(n lplan.Node) {
		if _, ok := n.(*lplan.Select); ok {
			selBelowRight = true
		}
	})
	if selBelowRight {
		t.Errorf("right-side predicate pushed below outer join:\n%s", lplan.Format(plan))
	}
}

func TestCostPrefersCheaperPlans(t *testing.T) {
	cat, est := fixture(t)
	cm := NewCostModel(est, cluster.DefaultConfig())
	full := bindQ(t, cat, "SELECT f_dim, SUM(f_val) FROM fact GROUP BY f_dim")
	full = Normalize(full, est)
	// A sampled version of the same plan must cost less.
	sampled := addSamplerAboveScan(full)
	if cm.Cost(sampled) >= cm.Cost(full) {
		t.Errorf("sampled plan must be cheaper: %.0f vs %.0f", cm.Cost(sampled), cm.Cost(full))
	}
}

func addSamplerAboveScan(n lplan.Node) lplan.Node {
	if s, ok := n.(*lplan.Scan); ok {
		return &lplan.Sample{
			Input: s,
			State: lplan.NewSamplerState(nil),
			Def:   &lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.05},
		}
	}
	ch := n.Children()
	if len(ch) == 0 {
		return n
	}
	newCh := make([]lplan.Node, len(ch))
	for i, c := range ch {
		newCh[i] = addSamplerAboveScan(c)
	}
	return n.WithChildren(newCh)
}

func TestDOPScalesWithRows(t *testing.T) {
	_, est := fixture(t)
	cm := NewCostModel(est, cluster.DefaultConfig())
	if cm.DOP(100) != 1 {
		t.Errorf("small input DOP %d", cm.DOP(100))
	}
	if cm.DOP(100000) <= cm.DOP(10000) {
		t.Error("DOP must grow with data")
	}
	if cm.DOP(1e12) != cm.MaxParts {
		t.Error("DOP must cap at MaxParts")
	}
}

func TestPhysicalPlanShape(t *testing.T) {
	cat, est := fixture(t)
	cm := NewCostModel(est, cluster.DefaultConfig())
	plan := bindQ(t, cat, `SELECT d_cat, SUM(f_val) FROM fact JOIN dim ON f_dim = d_key GROUP BY d_cat`)
	plan = Normalize(plan, est)
	pl := &Planner{CM: cm}
	phys, err := pl.Plan(plan)
	if err != nil {
		t.Fatal(err)
	}
	text := exec.FormatPlan(phys)
	// Dim table is tiny: broadcast join expected; group-by needs a hash
	// exchange.
	if !strings.Contains(text, "broadcast") {
		t.Errorf("expected broadcast join:\n%s", text)
	}
	if !strings.Contains(text, "Exchange hash") {
		t.Errorf("expected hash exchange for group-by:\n%s", text)
	}
	if !strings.Contains(text, "HashAgg") {
		t.Errorf("expected hash aggregate:\n%s", text)
	}
}

func TestEstimatorSamplerCardinality(t *testing.T) {
	cat, est := fixture(t)
	plan := bindQ(t, cat, "SELECT f_val FROM fact")
	plan = Normalize(plan, est)
	var scan lplan.Node
	lplan.Walk(plan, func(n lplan.Node) {
		if s, ok := n.(*lplan.Scan); ok {
			scan = s
		}
	})
	uni := &lplan.Sample{Input: scan, State: lplan.NewSamplerState(nil),
		Def: &lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.05}}
	if rows := est.Props(uni).Rows; rows < 400 || rows > 600 {
		t.Errorf("uniform sampler cardinality %.0f want ~500", rows)
	}
	pt := &lplan.Sample{Input: scan, State: lplan.NewSamplerState(nil),
		Def: &lplan.SamplerDef{Type: lplan.SamplerPassThrough}}
	if rows := est.Props(pt).Rows; rows != 10000 {
		t.Errorf("pass-through cardinality %.0f want 10000", rows)
	}
	dist := &lplan.Sample{Input: scan, State: lplan.NewSamplerState(nil),
		Def: &lplan.SamplerDef{Type: lplan.SamplerDistinct, P: 0.05,
			Cols: []lplan.ColumnID{scan.Columns()[0].ID}, Delta: 10}}
	// The distinct sampler leaks δ per distinct value on top of p·rows.
	if rows := est.Props(dist).Rows; rows <= 500 {
		t.Errorf("distinct sampler must leak more than p·rows: %.0f", rows)
	}
}

func TestSelectivityShapes(t *testing.T) {
	cat, est := fixture(t)
	plan := bindQ(t, cat, "SELECT f_val FROM fact")
	plan = Normalize(plan, est)
	var scan lplan.Node
	lplan.Walk(plan, func(n lplan.Node) {
		if s, ok := n.(*lplan.Scan); ok && s.Table == "fact" {
			scan = n
		}
	})
	// Re-bind against unpruned scan for the columns we need.
	full := bindQ(t, cat, "SELECT f_key, f_dim, f_val, f_tag FROM fact")
	var fscan *lplan.Scan
	lplan.Walk(full, func(n lplan.Node) {
		if s, ok := n.(*lplan.Scan); ok {
			fscan = s
		}
	})
	_ = scan
	dim := fscan.Cols[1]
	col := &lplan.ColRef{ID: dim.ID, Name: dim.Name, Kind: dim.Kind}

	in := &lplan.In{X: col, Vals: []table.Value{table.NewInt(1), table.NewInt(2)}}
	if s := est.Selectivity(in, fscan); s < 0.05 || s > 0.2 {
		t.Errorf("IN selectivity %v want ~2/20", s)
	}
	isNull := &lplan.IsNull{X: col}
	if s := est.Selectivity(isNull, fscan); s > 0.1 {
		t.Errorf("IS NULL selectivity %v", s)
	}
	rng := &lplan.Binary{Op: lplan.OpLt, L: col, R: &lplan.Const{Val: table.NewInt(10)}}
	if s := est.Selectivity(rng, fscan); s < 0.3 || s > 0.7 {
		t.Errorf("range selectivity %v want ~0.5 over [0,19]", s)
	}
	and := &lplan.Binary{Op: lplan.OpAnd, L: in, R: rng}
	if s := est.Selectivity(and, fscan); s >= est.Selectivity(in, fscan) {
		t.Errorf("AND must shrink selectivity: %v", s)
	}
}
