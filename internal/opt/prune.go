package opt

// Partition-selection pass (ROADMAP item 2): for pruning-eligible
// sampled plans, pick a weighted subset of a scan's stored partitions
// from the per-partition summary statistics (internal/table/summary.go)
// instead of reading every partition and discarding rows afterwards.
// The shape follows "Approximate Partition Selection for Big-Data
// Workloads using Summary Statistics" (Rong, Lu, Kandula et al., VLDB
// 2020): partitions that are sole or dominant holders of a
// stratification/group key form a certainty stratum kept with weight 1;
// the remaining tail is subsampled without replacement and inflated by
// the inverse inclusion probability, keeping downstream aggregates
// Horvitz–Thompson-unbiased.

import (
	"hash/fnv"
	"sort"

	"quickr/internal/exec"
	"quickr/internal/lplan"
)

const (
	// pruneMinParts is the smallest table (in partitions) worth pruning.
	pruneMinParts = 4
	// pruneMaxKeys caps the distinct keys per guarded column: beyond
	// this the summaries cannot certify the complete key→partition map.
	pruneMaxKeys = 1024
	// pruneTailR is the target tail-partition inclusion probability.
	pruneTailR = 0.3
)

// pruneCandidate pairs a scan with the nearest real sampler above it in
// the same streaming chain (only filters between — projections remap
// ColumnIDs and breakers end the chain).
type pruneCandidate struct {
	scan *exec.PScan
	samp *exec.PSample
}

// applyPruning decides partition selection for at most one scan of the
// compiled plan (the widest eligible one) and records the decision on
// the scan and in the estimator config so the accuracy analysis can
// charge the added cluster-sampling variance.
func (pl *Planner) applyPruning(root exec.PNode) {
	if pl.EstCfg == nil || hasCountDistinct(root) {
		// Unsampled plans must stay exact; COUNT DISTINCT has no
		// partition-level HT correction (Table 8 scales by 1/p only).
		return
	}
	cands := collectPruneCandidates(root)
	var best *pruneCandidate
	for i := range cands {
		if len(cands[i].scan.Tbl.Partitions) < pruneMinParts || cands[i].scan.Prune != nil {
			continue
		}
		if best == nil || len(cands[i].scan.Tbl.Partitions) > len(best.scan.Tbl.Partitions) {
			best = &cands[i]
		}
	}
	if best == nil {
		return
	}
	pr, tailFrac := selectPartitions(best.scan, best.samp, topGroupCols(root), pl.Seed)
	if pr == nil {
		return
	}
	best.scan.Prune = pr
	pl.EstCfg.PartP = pr.TailP
	pl.EstCfg.PartTail = keptTail(pr)
	pl.EstCfg.PartTailFrac = tailFrac
}

// keptTail counts the kept tail-stratum partitions (Inflate > 1).
func keptTail(pr *exec.PrunedScan) int {
	n := 0
	for _, f := range pr.Inflate {
		if f > 1 {
			n++
		}
	}
	return n
}

// collectPruneCandidates walks the plan pairing scans with the nearest
// real sampler above them through filter-only chains.
func collectPruneCandidates(root exec.PNode) []pruneCandidate {
	var out []pruneCandidate
	var rec func(n exec.PNode, samp *exec.PSample)
	rec = func(n exec.PNode, samp *exec.PSample) {
		switch x := n.(type) {
		case *exec.PSample:
			if x.Def.Type != lplan.SamplerPassThrough && x.Def.P > 0 && x.Def.P < 1 {
				samp = x
			}
			rec(x.In, samp)
		case *exec.PFilter:
			rec(x.In, samp)
		case *exec.PScan:
			if samp != nil {
				out = append(out, pruneCandidate{scan: x, samp: samp})
			}
		default:
			for _, k := range n.Kids() {
				rec(k, nil)
			}
		}
	}
	rec(root, nil)
	return out
}

// hasCountDistinct reports whether any aggregate in the plan computes
// COUNT DISTINCT.
func hasCountDistinct(root exec.PNode) bool {
	found := false
	exec.WalkP(root, func(n exec.PNode) {
		if a, ok := n.(*exec.PHashAgg); ok {
			for _, s := range a.Aggs {
				if s.Kind == lplan.AggCountDistinct {
					found = true
				}
			}
		}
	})
	return found
}

// topGroupCols returns the group columns of the top aggregate, if any.
func topGroupCols(root exec.PNode) []lplan.ColumnID {
	var out []lplan.ColumnID
	exec.WalkP(root, func(n exec.PNode) {
		if a, ok := n.(*exec.PHashAgg); ok && a.Top {
			out = a.GroupCols
		}
	})
	return out
}

// selectPartitions picks the weighted partition subset for one scan, or
// nil when the summaries cannot certify eligibility. Also returns the
// fraction of table rows held by the tail stratum (for the variance
// model).
func selectPartitions(scan *exec.PScan, samp *exec.PSample, groupCols []lplan.ColumnID, seed uint64) (*exec.PrunedScan, float64) {
	tbl := scan.Tbl
	parts := len(tbl.Partitions)
	pos := func(id lplan.ColumnID) int {
		for i, ci := range scan.OutCols {
			if ci.ID == id {
				return scan.ColIdx[i]
			}
		}
		return -1
	}
	sums := tbl.Summaries()
	colComplete := func(c int) bool {
		distinct := map[string]bool{}
		for _, ps := range sums {
			cs := &ps.Cols[c]
			if !cs.Complete {
				return false
			}
			for _, h := range cs.Heavy {
				distinct[h.Key] = true
			}
			if len(distinct) > pruneMaxKeys {
				return false
			}
		}
		return true
	}
	// Sampler stratification/universe columns must be fully covered by
	// the summaries (strict eligibility, ISSUE C1/C2); the top agg's
	// group columns are guarded best-effort when they resolve to this
	// table and stayed exactly countable.
	var guard []int
	seenGuard := map[int]bool{}
	need := append(append([]lplan.ColumnID{}, samp.Def.Cols...), samp.Def.BucketCols...)
	for _, id := range need {
		c := pos(id)
		if c < 0 || !colComplete(c) {
			return nil, 0
		}
		if !seenGuard[c] {
			seenGuard[c] = true
			guard = append(guard, c)
		}
	}
	for _, id := range groupCols {
		if c := pos(id); c >= 0 && !seenGuard[c] && colComplete(c) {
			seenGuard[c] = true
			guard = append(guard, c)
		}
	}
	// Certainty stratum: for every guarded key, keep its dominant
	// partition; keys spread over ≤2 partitions keep every holder (a
	// rare key must not depend on a tail coin flip for coverage).
	certain := make([]bool, parts)
	for _, c := range guard {
		type loc struct {
			part int
			freq int64
		}
		byKey := map[string][]loc{}
		for p, ps := range sums {
			for _, h := range ps.Cols[c].Heavy {
				byKey[h.Key] = append(byKey[h.Key], loc{p, h.Freq})
			}
		}
		for _, locs := range byKey {
			if len(locs) <= 2 {
				for _, l := range locs {
					certain[l.part] = true
				}
				continue
			}
			top := locs[0]
			for _, l := range locs[1:] {
				if l.freq > top.freq || (l.freq == top.freq && l.part < top.part) {
					top = l
				}
			}
			certain[top.part] = true
		}
	}
	var tail []int
	for p := 0; p < parts; p++ {
		if !certain[p] {
			tail = append(tail, p)
		}
	}
	m := len(tail)
	if m < 2 {
		// Everything is certainty stratum: nothing to subsample.
		return nil, 0
	}
	// Tail subsample without replacement: order tail partitions by a
	// deterministic per-(seed, table, partition) hash and keep the k
	// smallest, so every tail partition has inclusion probability k/m
	// and at least one survives (no math/rand: runs must replay).
	k := int(float64(m)*pruneTailR + 0.5)
	if k < 1 {
		k = 1
	}
	nameH := fnvHash(tbl.Name)
	order := append([]int{}, tail...)
	sort.Slice(order, func(i, j int) bool {
		hi := pruneMix(seed ^ nameH ^ uint64(order[i])*0x9E3779B97F4A7C15)
		hj := pruneMix(seed ^ nameH ^ uint64(order[j])*0x9E3779B97F4A7C15)
		if hi != hj {
			return hi < hj
		}
		return order[i] < order[j]
	})
	tailP := float64(k) / float64(m)
	inflate := float64(m) / float64(k)
	keepSet := map[int]float64{}
	for p := 0; p < parts; p++ {
		if certain[p] {
			keepSet[p] = 1
		}
	}
	for _, p := range order[:k] {
		keepSet[p] = inflate
	}
	pr := &exec.PrunedScan{TailP: tailP, TailTotal: m}
	for p := 0; p < parts; p++ {
		if f, ok := keepSet[p]; ok {
			pr.Keep = append(pr.Keep, p)
			pr.Inflate = append(pr.Inflate, f)
		}
	}
	pr.Pruned = parts - len(pr.Keep)
	if pr.Pruned == 0 {
		return nil, 0
	}
	var tailRows, totalRows int64
	for p, ps := range sums {
		totalRows += int64(ps.NumRows)
		if !certain[p] {
			tailRows += int64(ps.NumRows)
		}
	}
	tailFrac := 0.0
	if totalRows > 0 {
		tailFrac = float64(tailRows) / float64(totalRows)
	}
	return pr, tailFrac
}

// pruneMix is a splitmix64 finalizer: the tail draw must avalanche well
// on consecutive partition indexes.
func pruneMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
