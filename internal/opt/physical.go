package opt

import (
	"fmt"
	"math"

	"quickr/internal/exec"
	"quickr/internal/lplan"
)

// Planner compiles an optimized logical plan into the physical algebra:
// it places exchanges (stage boundaries), chooses join strategies,
// assigns degrees of parallelism from estimated cardinalities (so a
// sampler's cardinality reduction propagates into cheaper, less
// parallel sub-plans, §A), and wires the Horvitz–Thompson estimator
// configuration into the top aggregate.
type Planner struct {
	CM *CostModel
	// EstCfg configures the top aggregate's estimators (from the
	// accuracy analysis); nil for unsampled plans.
	EstCfg *exec.EstimatorConfig
	// Seed perturbs the per-plan sampler instance seeds so whole runs
	// can be re-randomized from one config knob; 0 (the default)
	// reproduces the historical seed sequence 1,2,3,...
	Seed uint64
	// Ests records the optimizer's estimated output cardinality for
	// every emitted physical node (EXPLAIN ANALYZE compares these
	// against executed counts). Plan initializes it if nil.
	Ests map[exec.PNode]float64
	// Prune enables the partition-selection pass (prune.go): sampled
	// plans whose summaries cover the sampler's columns scan a weighted
	// partition subset instead of every partition. Off by default;
	// plans compiled with Prune=false are bit-identical to before the
	// pass existed.
	Prune bool
	// SampleCache enables the hot-sample-reuse pass (samplecache.go):
	// cacheable sampler fragments are wrapped in PCachedSample nodes so
	// the executor can replay materialized sampler output on repeated
	// queries. Runs after pruning so fragment keys cover the pruned
	// partition subset. Off by default.
	SampleCache bool

	topAgg     *lplan.Aggregate
	samplerSeq uint64
}

// Plan compiles the logical plan.
func (pl *Planner) Plan(n lplan.Node) (exec.PNode, error) {
	pl.topAgg = findTopAggregate(n)
	if pl.Ests == nil {
		pl.Ests = map[exec.PNode]float64{}
	}
	p, err := pl.compile(n)
	if err == nil && p != nil && pl.Prune {
		pl.applyPruning(p)
	}
	if err == nil && p != nil && pl.SampleCache {
		pl.applySampleCache(p)
	}
	return p, err
}

// compile wraps compileNode, tagging the emitted operator with the
// logical node's estimated cardinality.
func (pl *Planner) compile(n lplan.Node) (exec.PNode, error) {
	p, err := pl.compileNode(n)
	if err != nil || p == nil {
		return p, err
	}
	pl.setEst(p, pl.CM.Est.Props(n).Rows)
	return p, nil
}

// setEst records an estimate for a physical node, without overwriting
// one already attached (compileNode tags synthesized exchanges itself).
func (pl *Planner) setEst(p exec.PNode, rows float64) {
	if pl.Ests == nil {
		return
	}
	if _, ok := pl.Ests[p]; !ok {
		pl.Ests[p] = rows
	}
}

// findTopAggregate locates the outermost Aggregate (whose estimates the
// result exposes) by walking down from the root.
func findTopAggregate(n lplan.Node) *lplan.Aggregate {
	for n != nil {
		if a, ok := n.(*lplan.Aggregate); ok {
			return a
		}
		ch := n.Children()
		if len(ch) != 1 {
			return nil
		}
		n = ch[0]
	}
	return nil
}

func (pl *Planner) compileNode(n lplan.Node) (exec.PNode, error) {
	switch x := n.(type) {
	case *lplan.Scan:
		tbl, err := pl.CM.Est.Cat.Table(x.Table)
		if err != nil {
			return nil, err
		}
		idx := make([]int, len(x.Cols))
		for i, c := range x.Cols {
			pos := tbl.Schema.Index(c.Name)
			if pos < 0 {
				return nil, fmt.Errorf("opt: column %s missing from table %s", c.Name, x.Table)
			}
			idx[i] = pos
		}
		wIdx := -1
		if x.WeightColumn != "" {
			wIdx = tbl.Schema.Index(x.WeightColumn)
		}
		return &exec.PScan{Tbl: tbl, OutCols: x.Cols, ColIdx: idx, WeightIdx: wIdx}, nil
	case *lplan.Select:
		in, err := pl.compile(x.Input)
		if err != nil {
			return nil, err
		}
		return &exec.PFilter{In: in, Pred: x.Pred}, nil
	case *lplan.Project:
		in, err := pl.compile(x.Input)
		if err != nil {
			return nil, err
		}
		return &exec.PProject{In: in, Exprs: x.Exprs, OutCols: x.Cols}, nil
	case *lplan.Sample:
		in, err := pl.compile(x.Input)
		if err != nil {
			return nil, err
		}
		def := lplan.SamplerDef{Type: lplan.SamplerPassThrough}
		if x.Def != nil {
			def = *x.Def
		}
		pl.samplerSeq++
		seed := pl.samplerSeq
		if pl.Seed != 0 {
			// Mix the config seed in so a different Engine seed draws a
			// different (still deterministic) sampler stream.
			seed = pl.Seed*0x9E3779B97F4A7C15 + pl.samplerSeq
		}
		return &exec.PSample{In: in, Def: def, Seed: seed}, nil
	case *lplan.Join:
		return pl.compileJoin(x)
	case *lplan.Aggregate:
		return pl.compileAgg(x)
	case *lplan.Window:
		return pl.compileWindow(x)
	case *lplan.Sort:
		in, err := pl.compile(x.Input)
		if err != nil {
			return nil, err
		}
		gathered := &exec.PExchange{In: in, Parts: 1}
		pl.setEst(gathered, pl.CM.Est.Props(x.Input).Rows)
		return &exec.PSort{In: gathered, Keys: x.Keys}, nil
	case *lplan.Limit:
		in, err := pl.compile(x.Input)
		if err != nil {
			return nil, err
		}
		if _, isSort := x.Input.(*lplan.Sort); !isSort {
			in = &exec.PExchange{In: in, Parts: 1}
			pl.setEst(in, pl.CM.Est.Props(x.Input).Rows)
		}
		return &exec.PLimit{In: in, N: x.N}, nil
	}
	// UnionAll and the binder's wrapper.
	if len(n.Children()) > 0 {
		if _, ok := n.(*lplan.UnionAll); ok || isUnionLike(n) {
			ins := make([]exec.PNode, len(n.Children()))
			for i, c := range n.Children() {
				p, err := pl.compile(c)
				if err != nil {
					return nil, err
				}
				ins[i] = p
			}
			return &exec.PUnion{Ins: ins, OutCols: n.Columns()}, nil
		}
	}
	return nil, fmt.Errorf("opt: cannot compile logical node %T", n)
}

func isUnionLike(n lplan.Node) bool {
	_, single := n.(interface{ Columns() []lplan.ColumnInfo })
	return single && len(n.Children()) > 1
}

func (pl *Planner) compileJoin(j *lplan.Join) (exec.PNode, error) {
	shared := sharedUniverseP(j)
	if pl.CM.Broadcast(j) {
		left, err := pl.compile(j.Left)
		if err != nil {
			return nil, err
		}
		right, err := pl.compile(j.Right)
		if err != nil {
			return nil, err
		}
		return &exec.PHashJoin{
			Kind: j.Kind, Left: left, Right: right,
			LeftKeys: j.LeftKeys, RightKeys: j.RightKeys,
			Residual: j.Residual, Broadcast: true,
			SharedUniverseP: shared,
			EstOutRows:      pl.CM.Est.Props(j).Rows,
		}, nil
	}
	parts := pl.CM.DOP(math.Max(pl.CM.Est.Props(j.Left).Rows, pl.CM.Est.Props(j.Right).Rows))
	left, err := pl.compile(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := pl.compile(j.Right)
	if err != nil {
		return nil, err
	}
	lx := &exec.PExchange{In: left, Keys: j.LeftKeys, Parts: parts}
	rx := &exec.PExchange{In: right, Keys: j.RightKeys, Parts: parts}
	pl.setEst(lx, pl.CM.Est.Props(j.Left).Rows)
	pl.setEst(rx, pl.CM.Est.Props(j.Right).Rows)
	return &exec.PHashJoin{
		Kind:     j.Kind,
		Left:     lx,
		Right:    rx,
		LeftKeys: j.LeftKeys, RightKeys: j.RightKeys,
		Residual: j.Residual, SharedUniverseP: shared,
		EstOutRows: pl.CM.Est.Props(j).Rows,
	}, nil
}

// sharedUniverseP detects the paper's paired-universe-sampler case: both
// join inputs contain universe samplers drawn from the same subspace
// (same seed). Returns the shared probability, or 0.
func sharedUniverseP(j *lplan.Join) float64 {
	collect := func(n lplan.Node) map[uint64]float64 {
		out := map[uint64]float64{}
		lplan.Walk(n, func(x lplan.Node) {
			if s, ok := x.(*lplan.Sample); ok && s.Def != nil && s.Def.Type == lplan.SamplerUniverse {
				out[s.Def.Seed] = s.Def.P
			}
		})
		return out
	}
	l, r := collect(j.Left), collect(j.Right)
	for seed, p := range l {
		if _, ok := r[seed]; ok {
			return p
		}
	}
	return 0
}

// compileWindow co-partitions the input on the specs' shared PARTITION
// BY columns (gathering to one task when specs disagree or have none),
// so every task holds whole window partitions.
func (pl *Planner) compileWindow(w *lplan.Window) (exec.PNode, error) {
	in, err := pl.compile(w.Input)
	if err != nil {
		return nil, err
	}
	shared := sharedPartitionCols(w.Specs)
	var exch *exec.PExchange
	if len(shared) > 0 {
		exch = &exec.PExchange{In: in, Keys: shared, Parts: pl.CM.DOP(pl.CM.Est.Props(w.Input).Rows)}
	} else {
		exch = &exec.PExchange{In: in, Parts: 1}
	}
	pl.setEst(exch, pl.CM.Est.Props(w.Input).Rows)
	return &exec.PWindow{In: exch, Specs: w.Specs}, nil
}

// sharedPartitionCols returns the common PARTITION BY columns when all
// specs agree, else nil.
func sharedPartitionCols(specs []lplan.WinSpec) []lplan.ColumnID {
	if len(specs) == 0 {
		return nil
	}
	first := specs[0].PartitionBy
	if len(first) == 0 {
		return nil
	}
	for _, s := range specs[1:] {
		if len(s.PartitionBy) != len(first) {
			return nil
		}
		for i := range first {
			if s.PartitionBy[i] != first[i] {
				return nil
			}
		}
	}
	return first
}

func (pl *Planner) compileAgg(a *lplan.Aggregate) (exec.PNode, error) {
	in, err := pl.compile(a.Input)
	if err != nil {
		return nil, err
	}
	inProps := pl.CM.Est.Props(a.Input)
	var exch *exec.PExchange
	if len(a.GroupCols) > 0 {
		exch = &exec.PExchange{In: in, Keys: a.GroupCols, Parts: pl.CM.DOP(inProps.Rows)}
	} else {
		exch = &exec.PExchange{In: in, Parts: 1}
	}
	pl.setEst(exch, inProps.Rows)
	agg := &exec.PHashAgg{
		In:        exch,
		GroupCols: a.GroupCols,
		GroupInfo: a.GroupInfo,
		Aggs:      a.Aggs,
	}
	if a == pl.topAgg {
		agg.Top = true
		agg.Est = pl.EstCfg
	}
	return agg, nil
}
