package opt

import (
	"math"

	"quickr/internal/cluster"
	"quickr/internal/lplan"
)

// CostModel prices logical plans consistently with the cluster
// simulator, so that the plan ASALQA picks as cheapest really is
// cheapest when executed. The join-strategy and degree-of-parallelism
// decisions live here and are shared with the physical planner.
type CostModel struct {
	Est *Estimator
	Cfg cluster.Config
	// BroadcastBytes is the build-side size threshold below which a
	// broadcast hash join beats a pair (shuffle) join.
	BroadcastBytes float64
	// RowsPerPart sizes exchange partitions; fewer in-flight rows after
	// a sampler means fewer tasks (§A's DOP reduction).
	RowsPerPart float64
	// MaxParts caps the degree of parallelism of any exchange.
	MaxParts int
}

// NewCostModel returns a cost model with the experiment defaults.
func NewCostModel(est *Estimator, cfg cluster.Config) *CostModel {
	return &CostModel{
		Est:            est,
		Cfg:            cfg,
		BroadcastBytes: 1 << 19,
		RowsPerPart:    20000,
		MaxParts:       32,
	}
}

// DOP returns the exchange partition count for an estimated row count.
func (c *CostModel) DOP(rows float64) int {
	p := int(math.Ceil(rows / c.RowsPerPart))
	if p < 1 {
		p = 1
	}
	if p > c.MaxParts {
		p = c.MaxParts
	}
	return p
}

// Broadcast reports whether the join's build (right) side should be
// broadcast rather than shuffling both sides.
func (c *CostModel) Broadcast(j *lplan.Join) bool {
	if len(j.LeftKeys) == 0 {
		return true // cross join has no shuffle keys
	}
	return c.Est.Props(j.Right).Bytes() <= c.BroadcastBytes
}

// Cost estimates the total machine-time of executing n, in the
// simulator's units.
func (c *CostModel) Cost(n lplan.Node) float64 {
	cost, _ := c.cost(n)
	return cost
}

// cost returns (cumulative cost, current pipeline partition count).
func (c *CostModel) cost(n lplan.Node) (float64, int) {
	cfg := c.Cfg
	switch x := n.(type) {
	case *lplan.Scan:
		p := c.Est.Props(x)
		tbl, err := c.Est.Cat.Table(x.Table)
		parts := 8
		if err == nil {
			parts = len(tbl.Partitions)
		}
		cost := float64(parts)*cfg.TaskStartup + p.Rows*cfg.CPURate + p.Bytes()*cfg.IORate
		return cost, parts
	case *lplan.Select:
		in, parts := c.cost(x.Input)
		return in + c.Est.Props(x.Input).Rows*cfg.CPURate, parts
	case *lplan.Project:
		in, parts := c.cost(x.Input)
		rows := c.Est.Props(x.Input).Rows
		return in + rows*(0.5+0.3*float64(len(x.Exprs)))*cfg.CPURate, parts
	case *lplan.Sample:
		in, parts := c.cost(x.Input)
		rows := c.Est.Props(x.Input).Rows
		perRow := 1.0
		if x.Def != nil {
			switch x.Def.Type {
			case lplan.SamplerUniverse:
				perRow = 3
			case lplan.SamplerDistinct:
				perRow = 5
			case lplan.SamplerPassThrough:
				perRow = 0
			}
		}
		return in + rows*perRow*cfg.CPURate, parts
	case *lplan.Join:
		return c.costJoin(x)
	case *lplan.Aggregate:
		in, _ := c.cost(x.Input)
		inProps := c.Est.Props(x.Input)
		parts := 1
		if len(x.GroupCols) > 0 {
			parts = c.DOP(inProps.Rows)
		}
		cost := in +
			inProps.Bytes()*(cfg.IORate+cfg.NetRate) + // shuffle to group
			float64(parts)*cfg.TaskStartup +
			inProps.Rows*2*cfg.CPURate
		return cost, parts
	case *lplan.Window:
		in, _ := c.cost(x.Input)
		p := c.Est.Props(x.Input)
		n := math.Max(1, p.Rows)
		parts := 1
		if len(x.Specs) > 0 && len(x.Specs[0].PartitionBy) > 0 {
			parts = c.DOP(p.Rows)
		}
		cost := in + p.Bytes()*(cfg.IORate+cfg.NetRate) + float64(parts)*cfg.TaskStartup +
			2*n*math.Log2(n+1)*cfg.CPURate
		return cost, parts
	case *lplan.Sort:
		in, _ := c.cost(x.Input)
		p := c.Est.Props(x.Input)
		n := math.Max(1, p.Rows)
		cost := in + p.Bytes()*(cfg.IORate+cfg.NetRate) + cfg.TaskStartup + n*math.Log2(n+1)*cfg.CPURate
		return cost, 1
	case *lplan.Limit:
		in, parts := c.cost(x.Input)
		return in, parts
	default:
		total := 0.0
		parts := 0
		for _, ch := range n.Children() {
			ci, p := c.cost(ch)
			total += ci
			parts += p
		}
		if parts == 0 {
			parts = 1
		}
		return total, parts
	}
}

func (c *CostModel) costJoin(j *lplan.Join) (float64, int) {
	cfg := c.Cfg
	lCost, lParts := c.cost(j.Left)
	rCost, _ := c.cost(j.Right)
	lp, rp := c.Est.Props(j.Left), c.Est.Props(j.Right)
	if c.Broadcast(j) {
		// Build side replicated to every probe task; probe pipelined.
		cost := lCost + rCost +
			rp.Bytes()*float64(lParts)*cfg.NetRate +
			(lp.Rows+rp.Rows*float64(lParts))*2*cfg.CPURate
		return cost, lParts
	}
	parts := c.DOP(math.Max(lp.Rows, rp.Rows))
	cost := lCost + rCost +
		(lp.Bytes()+rp.Bytes())*(cfg.IORate+cfg.NetRate) + // shuffle both
		float64(parts)*cfg.TaskStartup +
		(lp.Rows+rp.Rows)*2*cfg.CPURate
	return cost, parts
}
