package opt

import (
	"testing"
	"time"
)

func TestContractLadderSorted(t *testing.T) {
	for i := 1; i < len(ContractLadder); i++ {
		if ContractLadder[i] <= ContractLadder[i-1] {
			t.Fatalf("ladder not strictly ascending at %d: %v", i, ContractLadder)
		}
	}
	if ContractLadder[0] <= 0 || ContractLadder[len(ContractLadder)-1] >= 1 {
		t.Fatalf("ladder rungs must lie in (0,1): %v", ContractLadder)
	}
}

func TestChooseContractPMonotone(t *testing.T) {
	f := ContractFacts{InputRows: 1e6, Groups: 100, Support: 1e4, CV2: 1}
	// Tighter error targets must pick non-decreasing p.
	prevIdx := -1
	for _, target := range []float64{0.50, 0.20, 0.10, 0.05, 0.02} {
		_, idx, ok := ChooseContractP(f, target, 0.95, 1, 0)
		if !ok {
			// Once a target is unsatisfiable, all tighter ones are too.
			prevIdx = len(ContractLadder)
			continue
		}
		if idx < prevIdx {
			t.Fatalf("target %g chose rung %d below previous %d", target, idx, prevIdx)
		}
		prevIdx = idx
	}
}

func TestChooseContractPUnsatisfiable(t *testing.T) {
	// Tiny support: even the top rung cannot hit 1%.
	f := ContractFacts{InputRows: 50, Groups: 50, Support: 1, CV2: 1}
	if _, _, ok := ChooseContractP(f, 0.01, 0.95, 1, 0); ok {
		t.Fatal("expected no qualifying rung for support=1, target=1%")
	}
}

func TestChooseContractPCorrection(t *testing.T) {
	f := ContractFacts{InputRows: 1e6, Groups: 10, Support: 1e5, CV2: 1}
	_, coldIdx, ok := ChooseContractP(f, 0.05, 0.95, 1, 0)
	if !ok {
		t.Fatal("cold choice should qualify")
	}
	// A learned corr > 1 (realized CIs wider than predicted) must pick
	// an equal-or-higher rung.
	_, corrIdx, ok := ChooseContractP(f, 0.05, 0.95, 4, 0)
	if !ok {
		t.Fatal("corrected choice should still qualify")
	}
	if corrIdx < coldIdx {
		t.Fatalf("corr=4 picked rung %d below cold rung %d", corrIdx, coldIdx)
	}
	// minIdx floors the search (warm-start above a known-bad rung).
	p, idx, ok := ChooseContractP(f, 0.5, 0.95, 1, 3)
	if !ok || idx < 3 || p != ContractLadder[idx] {
		t.Fatalf("minIdx floor ignored: p=%g idx=%d ok=%v", p, idx, ok)
	}
}

func TestChooseDeadlineP(t *testing.T) {
	f := ContractFacts{InputRows: 2e6}
	// Generous budget -> largest rung.
	p, ok := ChooseDeadlineP(f, 10*time.Second, 2e6)
	if !ok || p != ContractLadder[len(ContractLadder)-1] {
		t.Fatalf("generous budget picked %g ok=%v", p, ok)
	}
	// Tight budget -> smaller rung, and monotone in budget.
	prev := 2.0
	for _, d := range []time.Duration{10 * time.Second, time.Second, 600 * time.Millisecond, 520 * time.Millisecond} {
		p, _ := ChooseDeadlineP(f, d, 2e6)
		if p > prev {
			t.Fatalf("deadline %v picked p=%g above %g", d, p, prev)
		}
		prev = p
	}
	// Impossible budget: flags !ok but still returns the floor rung.
	p, ok = ChooseDeadlineP(f, time.Microsecond, 2e6)
	if ok || p != ContractLadder[0] {
		t.Fatalf("impossible budget: p=%g ok=%v", p, ok)
	}
}
