package opt

// Rule registry: every optimizer rewrite — the logical normalization
// rules of normalize.go and the physical passes of prune.go — is
// registered here under a stable name. The registry is the contract
// with the rewrite-soundness prover (internal/opt/soundness): the
// prover iterates Rules() and proves, over seeded randomized plans,
// that each rule preserves the plancheck invariants and the symbolic
// per-aggregate weight algebra. The prover's registry-completeness test
// parses normalize.go, prune.go and samplecache.go, so adding a rewrite
// function without registering it here fails CI — an unregistered rule
// is an unproven rule.

import (
	"quickr/internal/exec"
	"quickr/internal/lplan"
)

// RuleKind classifies rewrites by the algebra they act on.
type RuleKind int

const (
	// LogicalRule rewrites a logical plan functionally
	// (lplan.Node → lplan.Node); Normalize applies these in registry
	// order.
	LogicalRule RuleKind = iota
	// PhysicalRule mutates a compiled physical plan in place
	// (Planner pass over exec.PNode); Planner.Plan applies these after
	// compilation when enabled.
	PhysicalRule
)

func (k RuleKind) String() string {
	if k == PhysicalRule {
		return "physical"
	}
	return "logical"
}

// Rule is one registered optimizer rewrite.
type Rule struct {
	// Name is the stable identifier used in soundness reports.
	Name string
	Kind RuleKind
	// Func is the name of the implementing function in this package;
	// the soundness completeness test matches registry entries against
	// source declarations by it.
	Func string
	// Doc states the soundness argument the prover checks.
	Doc string
	// Logical applies a LogicalRule. The estimator argument is ignored
	// by rules that do not consult statistics.
	Logical func(lplan.Node, *Estimator) lplan.Node
	// Physical applies a PhysicalRule to a compiled plan in place.
	Physical func(*Planner, exec.PNode)
}

// Rules returns every registered rewrite in application order.
func Rules() []Rule {
	return []Rule{
		{
			Name: "push-selections", Kind: LogicalRule, Func: "pushSelections",
			Doc: "splits conjuncts and pushes predicates toward the scans; must not move a predicate below a sampler or past an outer join's null-padding side",
			Logical: func(n lplan.Node, _ *Estimator) lplan.Node {
				return pushSelections(n)
			},
		},
		{
			Name: "prune-columns", Kind: LogicalRule, Func: "pruneColumns",
			Doc: "drops unused columns from scans and projections; must keep sampler stratification/universe/bucket columns and scan weight columns alive",
			Logical: func(n lplan.Node, _ *Estimator) lplan.Node {
				return pruneColumns(n)
			},
		},
		{
			Name: "order-join-inputs", Kind: LogicalRule, Func: "orderJoinInputs",
			Doc:     "swaps inner-join inputs so the smaller side builds the hash table; must mirror the key lists and leave outer/FK joins alone",
			Logical: orderJoinInputs,
		},
		{
			Name: "partition-prune", Kind: PhysicalRule, Func: "applyPruning",
			Doc: "replaces at most one sampled scan's partition list with a certainty stratum (inflation 1) plus a tail subsample inflated by m/k, keeping aggregates Horvitz-Thompson-unbiased",
			Physical: func(pl *Planner, root exec.PNode) {
				pl.applyPruning(root)
			},
		},
		{
			Name: "sample-cache", Kind: PhysicalRule, Func: "applySampleCache",
			Doc: "wraps each cacheable sampler fragment (real sampler over filters/projects over one scan) in a transparent cached-sample node whose key fingerprints the fragment; the fragment stays in place as the miss path, so schema, weights and estimator wiring are unchanged",
			Physical: func(pl *Planner, root exec.PNode) {
				pl.applySampleCache(root)
			},
		},
	}
}
