package opt

import (
	"quickr/internal/lplan"
)

// Normalize applies the heuristic rewrites that run before exploration:
// splitting and pushing selection predicates toward the scans, pruning
// unused columns out of scans and projections, and ordering inner-join
// inputs so the smaller side is the build side. Both the Baseline plans
// and Quickr plans share this pass. The rewrite sequence is the logical
// half of the rule registry (rules.go), so the soundness prover checks
// exactly the composition that runs here.
func Normalize(n lplan.Node, est *Estimator) lplan.Node {
	for _, r := range Rules() {
		if r.Kind == LogicalRule {
			n = r.Logical(n, est)
		}
	}
	return n
}

// pushSelections pushes predicates as close to the inputs as possible.
func pushSelections(n lplan.Node) lplan.Node {
	// Bottom-up: normalize children first.
	ch := n.Children()
	if len(ch) > 0 {
		newCh := make([]lplan.Node, len(ch))
		changed := false
		for i, c := range ch {
			newCh[i] = pushSelections(c)
			if newCh[i] != c {
				changed = true
			}
		}
		if changed {
			n = n.WithChildren(newCh)
		}
	}
	sel, ok := n.(*lplan.Select)
	if !ok {
		return n
	}
	conj := splitConjuncts(sel.Pred)
	pushed, err := pushConjuncts(sel.Input, conj)
	if err != nil {
		return n
	}
	return pushed
}

// splitConjuncts flattens AND trees.
func splitConjuncts(e lplan.Expr) []lplan.Expr {
	if b, ok := e.(*lplan.Binary); ok && b.Op == lplan.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []lplan.Expr{e}
}

func conjoin(es []lplan.Expr) lplan.Expr {
	var out lplan.Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &lplan.Binary{Op: lplan.OpAnd, L: out, R: e}
		}
	}
	return out
}

// pushConjuncts pushes each conjunct into n as deep as legal, wrapping
// what remains in a Select above n.
func pushConjuncts(n lplan.Node, conj []lplan.Expr) (lplan.Node, error) {
	if len(conj) == 0 {
		return n, nil
	}
	switch x := n.(type) {
	case *lplan.Join:
		leftIDs := lplan.OutputIDs(x.Left)
		rightIDs := lplan.OutputIDs(x.Right)
		var toLeft, toRight, stay []lplan.Expr
		for _, c := range conj {
			refs := exprColSet(c)
			switch {
			case refs.SubsetOf(leftIDs):
				toLeft = append(toLeft, c)
			case refs.SubsetOf(rightIDs) && x.Kind == lplan.InnerJoin:
				// Right-side predicates only push through inner joins: below
				// a left outer join they would change padding semantics.
				toRight = append(toRight, c)
			default:
				stay = append(stay, c)
			}
		}
		left, err := pushConjuncts(x.Left, toLeft)
		if err != nil {
			return nil, err
		}
		right, err := pushConjuncts(x.Right, toRight)
		if err != nil {
			return nil, err
		}
		out := x.WithChildren([]lplan.Node{left, right})
		return wrapSelect(out, stay), nil
	case *lplan.Select:
		return pushConjuncts(x.Input, append(conj, splitConjuncts(x.Pred)...))
	case *lplan.Project:
		// Push conjuncts that reference only pass-through columns.
		pass := lplan.ColSet{}
		for i, e := range x.Exprs {
			if cr, ok := e.(*lplan.ColRef); ok && cr.ID == x.Cols[i].ID {
				pass.Add(cr.ID)
			}
		}
		var down, stay []lplan.Expr
		for _, c := range conj {
			if exprColSet(c).SubsetOf(pass) {
				down = append(down, c)
			} else {
				stay = append(stay, c)
			}
		}
		in, err := pushConjuncts(x.Input, down)
		if err != nil {
			return nil, err
		}
		return wrapSelect(x.WithChildren([]lplan.Node{in}), stay), nil
	default:
		return wrapSelect(n, conj), nil
	}
}

func wrapSelect(n lplan.Node, conj []lplan.Expr) lplan.Node {
	if len(conj) == 0 {
		return n
	}
	return &lplan.Select{Input: n, Pred: conjoin(conj)}
}

func exprColSet(e lplan.Expr) lplan.ColSet {
	s := lplan.ColSet{}
	for id := range lplan.ExprColumns(e) {
		s.Add(id)
	}
	return s
}

// pruneColumns removes unused columns from scans (early projection in
// the storage layer) and unused expressions from projections.
func pruneColumns(n lplan.Node) lplan.Node {
	required := lplan.ColSet{}
	for _, c := range n.Columns() {
		required.Add(c.ID)
	}
	return pruneNode(n, required)
}

func pruneNode(n lplan.Node, required lplan.ColSet) lplan.Node {
	switch x := n.(type) {
	case *lplan.Scan:
		kept := make([]lplan.ColumnInfo, 0, len(x.Cols))
		for _, c := range x.Cols {
			if required.Has(c.ID) {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			kept = x.Cols[:1]
		}
		if len(kept) == len(x.Cols) {
			return x
		}
		// The rebuilt scan must carry the apriori-sample weight column:
		// dropping it here would silently reset every row weight to 1 and
		// bias the BlinkDB-baseline estimates by 1/p.
		return &lplan.Scan{Table: x.Table, Cols: kept, WeightColumn: x.WeightColumn}
	case *lplan.Select:
		need := required.Union(exprColSet(x.Pred))
		return x.WithChildren([]lplan.Node{pruneNode(x.Input, need)})
	case *lplan.Project:
		keptExprs := make([]lplan.Expr, 0, len(x.Exprs))
		keptCols := make([]lplan.ColumnInfo, 0, len(x.Cols))
		need := lplan.ColSet{}
		for i, c := range x.Cols {
			if required.Has(c.ID) {
				keptExprs = append(keptExprs, x.Exprs[i])
				keptCols = append(keptCols, c)
				need = need.Union(exprColSet(x.Exprs[i]))
			}
		}
		if len(keptExprs) == 0 && len(x.Exprs) > 0 {
			keptExprs = x.Exprs[:1]
			keptCols = x.Cols[:1]
			need = exprColSet(x.Exprs[0])
		}
		return &lplan.Project{Input: pruneNode(x.Input, need), Exprs: keptExprs, Cols: keptCols}
	case *lplan.Join:
		need := required.Union(lplan.NewColSet(x.LeftKeys...)).Union(lplan.NewColSet(x.RightKeys...))
		if x.Residual != nil {
			need = need.Union(exprColSet(x.Residual))
		}
		left := pruneNode(x.Left, need)
		right := pruneNode(x.Right, need)
		return x.WithChildren([]lplan.Node{left, right})
	case *lplan.Aggregate:
		need := lplan.NewColSet(x.GroupCols...)
		for _, a := range x.Aggs {
			if a.Arg != lplan.NoColumn {
				need.Add(a.Arg)
			}
			if a.Cond != lplan.NoColumn {
				need.Add(a.Cond)
			}
		}
		return x.WithChildren([]lplan.Node{pruneNode(x.Input, need)})
	case *lplan.Sort:
		need := required.Union(lplan.ColSet{})
		for _, k := range x.Keys {
			need.Add(k.Col)
		}
		return x.WithChildren([]lplan.Node{pruneNode(x.Input, need)})
	case *lplan.Limit:
		return x.WithChildren([]lplan.Node{pruneNode(x.Input, required)})
	case *lplan.Sample:
		need := required.Union(lplan.NewColSet(x.State.Strat.Sorted()...)).
			Union(lplan.NewColSet(x.State.Univ.Sorted()...))
		if x.Def != nil {
			need = need.Union(lplan.NewColSet(x.Def.Cols...))
			// Bucket-stratification columns (§4.1.2) are sampler inputs
			// just like Cols: pruning one out from under a costed
			// distinct sampler would leave the sampler unable to compute
			// its ⌈col/width⌉ stratum. Found by the soundness prover.
			need = need.Union(lplan.NewColSet(x.Def.BucketCols...))
		}
		return x.WithChildren([]lplan.Node{pruneNode(x.Input, need)})
	default:
		// Union wrappers and anything else: prune children with all of
		// their own outputs required (IDs differ across union arms).
		ch := n.Children()
		if len(ch) == 0 {
			return n
		}
		newCh := make([]lplan.Node, len(ch))
		for i, c := range ch {
			req := lplan.ColSet{}
			for _, col := range c.Columns() {
				req.Add(col.ID)
			}
			newCh[i] = pruneNode(c, req)
		}
		return n.WithChildren(newCh)
	}
}

// orderJoinInputs swaps inner-join inputs so the estimated-smaller side
// is on the right (the build side for the physical hash join).
func orderJoinInputs(n lplan.Node, est *Estimator) lplan.Node {
	ch := n.Children()
	if len(ch) > 0 {
		newCh := make([]lplan.Node, len(ch))
		for i, c := range ch {
			newCh[i] = orderJoinInputs(c, est)
		}
		n = n.WithChildren(newCh)
	}
	j, ok := n.(*lplan.Join)
	if !ok || j.Kind != lplan.InnerJoin || j.FKJoin {
		return n
	}
	if est.Props(j.Left).Bytes() < est.Props(j.Right).Bytes() {
		return &lplan.Join{
			Kind:      j.Kind,
			Left:      j.Right,
			Right:     j.Left,
			LeftKeys:  j.RightKeys,
			RightKeys: j.LeftKeys,
			Residual:  j.Residual,
		}
	}
	return n
}
