package soundness

// Symbolic weight algebra. Every Quickr estimate is a Horvitz–Thompson
// sum: each row reaching an aggregate carries the product of the
// inverse inclusion probabilities of the weight sources below it — real
// samplers (1/p per §4.1) and apriori-weighted scans (the stored
// BlinkDB-style weight column). A rewrite is weight-sound iff it
// preserves, for every aggregate, the multiset of weight sources
// feeding it: moving a sampler out of an aggregate's subtree, dropping
// a scan's weight column, or retyping a sampler all change the symbolic
// product and therefore the expectation of the estimate, even when the
// plan stays plancheck-clean.

import (
	"fmt"
	"sort"
	"strings"

	"quickr/internal/lplan"
)

// topKey is the signature key for weight sources not under any
// aggregate (plancheck flags those separately; the algebra still tracks
// them so a rewrite cannot silently move a source out from under its
// aggregate without changing some signature entry).
const topKey = "⊤"

// weightSig maps each aggregate in the plan — keyed by its rewrite-
// stable identity — to the sorted multiset of weight-source tokens in
// its subtree. Sampler tokens render the full SamplerDef (type,
// probability, columns, delta, buckets, seed), so any tampering with
// the sampling design shows up, not just adding/removing samplers.
func weightSig(root lplan.Node) map[string][]string {
	sig := map[string][]string{}
	var rec func(n lplan.Node, agg string)
	rec = func(n lplan.Node, agg string) {
		switch x := n.(type) {
		case *lplan.Aggregate:
			agg = aggKey(x)
			if _, ok := sig[agg]; !ok {
				sig[agg] = []string{}
			}
		case *lplan.Sample:
			if x.Def != nil && x.Def.Type != lplan.SamplerPassThrough {
				sig[agg] = append(sig[agg], "Γ "+x.Def.String())
			}
		case *lplan.Scan:
			if x.WeightColumn != "" {
				sig[agg] = append(sig[agg], "W "+x.Table+"."+x.WeightColumn)
			}
		}
		for _, ch := range n.Children() {
			rec(ch, agg)
		}
	}
	rec(root, topKey)
	for k := range sig {
		sort.Strings(sig[k])
	}
	return sig
}

// aggKey identifies an aggregate across rewrites: normalization rules
// rebuild Aggregate nodes via WithChildren but never renumber group
// columns or aggregate outputs, so the column IDs are a stable name.
func aggKey(a *lplan.Aggregate) string {
	var b strings.Builder
	b.WriteString("agg")
	for _, id := range a.GroupCols {
		fmt.Fprintf(&b, " g#%d", id)
	}
	for _, s := range a.Aggs {
		fmt.Fprintf(&b, " %s#%d", s.Kind, s.Out.ID)
	}
	return b.String()
}

// sigDiff describes the first difference between two weight signatures,
// or "" when they are equal.
func sigDiff(before, after map[string][]string) string {
	for k, bs := range before {
		as, ok := after[k]
		if !ok {
			return fmt.Sprintf("aggregate [%s] disappeared", k)
		}
		if strings.Join(bs, "; ") != strings.Join(as, "; ") {
			return fmt.Sprintf("aggregate [%s]: weight sources [%s] became [%s]",
				k, strings.Join(bs, "; "), strings.Join(as, "; "))
		}
	}
	for k := range after {
		if _, ok := before[k]; !ok {
			return fmt.Sprintf("aggregate [%s] appeared", k)
		}
	}
	return ""
}
