package soundness

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strconv"
	"testing"

	"quickr/internal/cluster"
	"quickr/internal/exec"
	"quickr/internal/lplan"
	"quickr/internal/opt"
	"quickr/internal/plancheck"
)

// sweepN returns the sweep size: QUICKR_SOUNDNESS_PLANS when set (the
// nightly CI job raises it to 5000), else DefaultPlans.
func sweepN(t *testing.T) int {
	t.Helper()
	if v := os.Getenv("QUICKR_SOUNDNESS_PLANS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("QUICKR_SOUNDNESS_PLANS=%q is not a positive integer", v)
		}
		return n
	}
	if testing.Short() {
		return 60
	}
	return DefaultPlans
}

// TestSoundnessSweep is the prover's CI entry point: every registered
// rule over sweepN seeded plans, with non-vacuity assertions so a rule
// the generator never triggers cannot silently pass as "sound".
func TestSoundnessSweep(t *testing.T) {
	n := sweepN(t)
	st := Sweep(n, 1)
	t.Logf("soundness: %s", st.Summary())
	for _, p := range st.Problems {
		t.Errorf("%s", p)
	}
	if st.Plans != n {
		t.Errorf("swept %d plans, want %d", st.Plans, n)
	}
	if st.Sampled < n/10 {
		t.Errorf("only %d of %d plans carried a sampler: generator coverage collapsed", st.Sampled, n)
	}
	if st.Weighted == 0 {
		t.Errorf("no plan used an apriori-weighted scan: weight-propagation checks are vacuous")
	}
	for _, r := range opt.Rules() {
		if st.RuleChanged[r.Name] == 0 {
			t.Errorf("rule %s never rewrote any of %d plans: its soundness proof is vacuous", r.Name, n)
		}
	}
	if st.Pruned == 0 {
		t.Errorf("partition-prune never fired: the prune algebra checks are vacuous")
	}
	if st.Pruned == st.Sampled {
		t.Errorf("every sampled plan pruned: the ineligibility paths (wide keys, COUNT DISTINCT) are never exercised")
	}
}

// TestRegistryComplete parses the optimizer sources and proves the rule
// registry complete in both directions: every rewrite-shaped function
// in normalize.go (func(lplan.Node) lplan.Node, optionally with an
// *Estimator) and every Planner pass in prune.go or samplecache.go
// (method taking an exec.PNode) must be registered in opt.Rules(), and
// every registered Func must still exist in the sources. Adding a
// rewrite without registering it — leaving it unproven — fails here.
func TestRegistryComplete(t *testing.T) {
	found := map[string]bool{}
	for _, fn := range rewriteFuncs(t, "../normalize.go") {
		found[fn] = true
	}
	for _, fn := range plannerPasses(t, "../prune.go") {
		found[fn] = true
	}
	for _, fn := range plannerPasses(t, "../samplecache.go") {
		found[fn] = true
	}
	registered := map[string]bool{}
	for _, r := range opt.Rules() {
		if registered[r.Func] {
			t.Errorf("rule %s: function %s registered twice", r.Name, r.Func)
		}
		registered[r.Func] = true
		if r.Name == "" || r.Doc == "" {
			t.Errorf("rule for %s must carry a name and a soundness doc", r.Func)
		}
		switch r.Kind {
		case opt.LogicalRule:
			if r.Logical == nil {
				t.Errorf("logical rule %s has no Logical closure", r.Name)
			}
		case opt.PhysicalRule:
			if r.Physical == nil {
				t.Errorf("physical rule %s has no Physical closure", r.Name)
			}
		}
	}
	for fn := range found {
		if !registered[fn] {
			t.Errorf("rewrite %s exists in the optimizer sources but is not registered in opt.Rules(): unregistered rules are unproven rules", fn)
		}
	}
	for fn := range registered {
		if !found[fn] {
			t.Errorf("registered rule function %s no longer exists in normalize.go/prune.go/samplecache.go", fn)
		}
	}
}

// rewriteFuncs returns the top-level functions of file shaped like
// logical rewrites: plan in, plan out, optionally consulting the
// estimator. Normalize itself is the driver that applies the registry,
// not a rule.
func rewriteFuncs(t *testing.T, file string) []string {
	t.Helper()
	var out []string
	for _, fd := range parseFuncs(t, file) {
		if fd.Recv != nil || fd.Name.Name == "Normalize" {
			continue
		}
		params := fd.Type.Params.List
		if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 ||
			typeStr(fd.Type.Results.List[0].Type) != "lplan.Node" {
			continue
		}
		sig := make([]string, 0, len(params))
		for _, p := range params {
			ts := typeStr(p.Type)
			for range p.Names {
				sig = append(sig, ts)
			}
			if len(p.Names) == 0 {
				sig = append(sig, ts)
			}
		}
		switch {
		case len(sig) == 1 && sig[0] == "lplan.Node":
			out = append(out, fd.Name.Name)
		case len(sig) == 2 && sig[0] == "lplan.Node" && sig[1] == "*Estimator":
			out = append(out, fd.Name.Name)
		}
	}
	return out
}

// plannerPasses returns the Planner methods of file that take a
// physical plan — the shape of an in-place physical pass.
func plannerPasses(t *testing.T, file string) []string {
	t.Helper()
	var out []string
	for _, fd := range parseFuncs(t, file) {
		if fd.Recv == nil || len(fd.Recv.List) != 1 || typeStr(fd.Recv.List[0].Type) != "*Planner" {
			continue
		}
		for _, p := range fd.Type.Params.List {
			if typeStr(p.Type) == "exec.PNode" {
				out = append(out, fd.Name.Name)
				break
			}
		}
	}
	return out
}

func parseFuncs(t *testing.T, file string) []*ast.FuncDecl {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), file, nil, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", file, err)
	}
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			out = append(out, fd)
		}
	}
	return out
}

// typeStr renders the type expressions the matchers care about.
func typeStr(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.StarExpr:
		return "*" + typeStr(x.X)
	case *ast.SelectorExpr:
		return typeStr(x.X) + "." + x.Sel.Name
	case *ast.ArrayType:
		return "[]" + typeStr(x.Elt)
	default:
		return fmt.Sprintf("%T", e)
	}
}

// sampledSeed finds a seed whose plan carries a real sampler.
func sampledSeed(t *testing.T) (uint64, lplan.Node) {
	t.Helper()
	for seed := uint64(1); seed < 200; seed++ {
		root, info := genPlan(seed)
		if info.samplerP > 0 {
			return seed, root
		}
	}
	t.Fatal("no sampled plan in 200 seeds")
	return 0, nil
}

// TestProverCatchesSamplerStripping plants the classic unsound rewrite
// — dropping samplers from the plan, which silently turns approximate
// answers into differently-scaled exact ones — and proves the weight
// algebra rejects it.
func TestProverCatchesSamplerStripping(t *testing.T) {
	_, root := sampledSeed(t)
	strip := func(n lplan.Node) lplan.Node {
		var rec func(lplan.Node) lplan.Node
		rec = func(n lplan.Node) lplan.Node {
			if s, ok := n.(*lplan.Sample); ok {
				return rec(s.Input)
			}
			ch := n.Children()
			if len(ch) == 0 {
				return n
			}
			newCh := make([]lplan.Node, len(ch))
			for i, c := range ch {
				newCh[i] = rec(c)
			}
			return n.WithChildren(newCh)
		}
		return rec(n)
	}
	_, probs := CheckLogicalRewrite(root, strip)
	if len(probs) == 0 {
		t.Fatal("sampler-stripping rewrite passed the prover")
	}
}

// TestProverCatchesColumnDrop plants a rewrite that narrows the root
// schema and proves the schema invariant rejects it.
func TestProverCatchesColumnDrop(t *testing.T) {
	root, _ := genPlan(7)
	drop := func(n lplan.Node) lplan.Node {
		cols := n.Columns()
		if len(cols) < 2 {
			return n
		}
		kept := cols[1:]
		exprs := make([]lplan.Expr, len(kept))
		for i, c := range kept {
			exprs[i] = &lplan.ColRef{ID: c.ID, Name: c.Name, Kind: c.Kind}
		}
		return &lplan.Project{Input: n, Exprs: exprs, Cols: kept}
	}
	if len(root.Columns()) < 2 {
		t.Fatal("seed 7 plan has fewer than 2 output columns; pick another seed")
	}
	_, probs := CheckLogicalRewrite(root, drop)
	if len(probs) == 0 {
		t.Fatal("column-dropping rewrite passed the prover")
	}
}

// TestProverCatchesProbabilityTampering plants a rewrite that inflates
// a sampler's probability beyond the §4.2.6 cap and proves the
// plancheck invariants reject it through the prover.
func TestProverCatchesProbabilityTampering(t *testing.T) {
	_, root := sampledSeed(t)
	tamper := func(n lplan.Node) lplan.Node {
		for _, s := range lplan.FindSamplers(n) {
			if s.Def != nil && s.Def.Type != lplan.SamplerPassThrough {
				d := *s.Def
				d.P = 0.5
				s.Def = &d
			}
		}
		return n
	}
	_, probs := CheckLogicalRewrite(root, tamper)
	if len(probs) == 0 {
		t.Fatal("probability-tampering rewrite passed the prover")
	}
}

// TestProverCatchesNonIdempotentRule plants a rule that keeps wrapping
// the plan and proves the idempotence invariant rejects it.
func TestProverCatchesNonIdempotentRule(t *testing.T) {
	root, _ := genPlan(3)
	wrap := func(n lplan.Node) lplan.Node {
		return &lplan.Limit{Input: n, N: 10}
	}
	_, probs := CheckLogicalRewrite(root, wrap)
	if len(probs) == 0 {
		t.Fatal("ever-wrapping rewrite passed the prover")
	}
}

// prunedCompile finds a seed whose compiled plan prunes a scan and
// returns the compiled plan plus its estimator config.
func prunedCompile(t *testing.T) (exec.PNode, *exec.EstimatorConfig) {
	t.Helper()
	est := opt.NewEstimator(sharedCatalog())
	for seed := uint64(1); seed < 500; seed++ {
		root, info := genPlan(seed)
		if info.samplerP <= 0 {
			continue
		}
		var norm lplan.Node = root
		for _, r := range opt.Rules() {
			if r.Kind == opt.LogicalRule {
				norm = r.Logical(norm, est)
			}
		}
		cfg := estCfg(info)
		pl := &opt.Planner{CM: opt.NewCostModel(est, cluster.DefaultConfig()), EstCfg: cfg, Seed: seed, Prune: true}
		proot, err := pl.Plan(norm)
		if err != nil {
			continue
		}
		if len(prunedScans(proot)) == 1 {
			return proot, cfg
		}
	}
	t.Fatal("no pruned plan in 500 seeds")
	return nil, nil
}

// TestProverCatchesInflationTampering corrupts a pruned scan's
// Horvitz–Thompson inflation factors and proves the exact prune
// algebra rejects each corruption.
func TestProverCatchesInflationTampering(t *testing.T) {
	proot, cfg := prunedCompile(t)
	if probs := CheckPrunedPlan(proot, cfg); len(probs) != 0 {
		t.Fatalf("honest pruned plan rejected: %v", probs)
	}
	scan := prunedScans(proot)[0]
	tailAt := -1
	for i, f := range scan.Prune.Inflate {
		if f > 1 {
			tailAt = i
			break
		}
	}
	if tailAt < 0 {
		t.Fatal("pruned scan kept no tail partition")
	}
	orig := scan.Prune.Inflate[tailAt]

	scan.Prune.Inflate[tailAt] = orig * 2 // breaks exact m/k and the mass identity
	if probs := CheckPrunedPlan(proot, cfg); len(probs) == 0 {
		t.Error("doubled tail inflation passed the prune algebra")
	}
	scan.Prune.Inflate[tailAt] = orig

	origP := scan.Prune.TailP
	scan.Prune.TailP = origP / 2 // estimator config no longer matches the design
	if probs := CheckPrunedPlan(proot, cfg); len(probs) == 0 {
		t.Error("tampered TailP passed the prune algebra")
	}
	scan.Prune.TailP = origP

	if probs := CheckPrunedPlan(proot, nil); len(probs) == 0 {
		t.Error("pruned scan without estimator config passed the prune algebra")
	}
	if probs := CheckPrunedPlan(proot, cfg); len(probs) != 0 {
		t.Fatalf("restored plan rejected: %v", probs)
	}
}

// cachedCompile finds a seed whose compiled plan wraps a sampler
// fragment in a cached-sample node and returns the compiled plan.
func cachedCompile(t *testing.T) exec.PNode {
	t.Helper()
	est := opt.NewEstimator(sharedCatalog())
	for seed := uint64(1); seed < 200; seed++ {
		root, info := genPlan(seed)
		if info.samplerP <= 0 {
			continue
		}
		var norm lplan.Node = root
		for _, r := range opt.Rules() {
			if r.Kind == opt.LogicalRule {
				norm = r.Logical(norm, est)
			}
		}
		pl := &opt.Planner{CM: opt.NewCostModel(est, cluster.DefaultConfig()), EstCfg: estCfg(info), Seed: seed, SampleCache: true}
		proot, err := pl.Plan(norm)
		if err != nil {
			continue
		}
		if len(cachedSamples(proot)) > 0 {
			return proot
		}
	}
	t.Fatal("no cached-sample plan in 200 seeds")
	return nil
}

// TestProverCatchesCachedSampleTampering corrupts a cached-sample
// node's key and sampler probability — the two fields a warm replay
// trusts — and proves the plancheck invariant the prover runs after
// every physical rule rejects each corruption.
func TestProverCatchesCachedSampleTampering(t *testing.T) {
	proot := cachedCompile(t)
	ck := plancheck.New()
	if vs := ck.CheckPhysical(proot); len(vs) != 0 {
		t.Fatalf("honest cached plan rejected: %v", vs)
	}
	cs := cachedSamples(proot)[0]

	origP := cs.SamplerP
	cs.SamplerP = origP / 2 // cached rows would carry wrong HT weights
	if vs := ck.CheckPhysical(proot); len(vs) == 0 {
		t.Error("tampered sampler probability passed the physical checks")
	}
	cs.SamplerP = origP

	origKey := cs.Key
	cs.Key = origKey + "|stale" // key no longer fingerprints the fragment
	if vs := ck.CheckPhysical(proot); len(vs) == 0 {
		t.Error("tampered cache key passed the physical checks")
	}
	cs.Key = origKey

	origFrag := cs.Frag
	cs.Frag = nil // no lazy fallback to run on a miss
	if vs := ck.CheckPhysical(proot); len(vs) == 0 {
		t.Error("cached node without a fragment passed the physical checks")
	}
	cs.Frag = origFrag

	if vs := ck.CheckPhysical(proot); len(vs) != 0 {
		t.Fatalf("restored plan rejected: %v", vs)
	}
}

// TestCheckSeedReplays proves a sweep entry is replayable: running the
// same seed twice yields the same problems and counters.
func TestCheckSeedReplays(t *testing.T) {
	var a, b Stats
	for seed := uint64(1); seed < 40; seed++ {
		CheckSeed(seed, &a)
		CheckSeed(seed, &b)
	}
	if a.Summary() != b.Summary() {
		t.Errorf("replay diverged:\n  first:  %s\n  second: %s", a.Summary(), b.Summary())
	}
}
