package soundness

// Seeded randomized logical-plan generator. Every plan it produces is
// legal by construction — plancheck-clean before any rewrite runs — so
// a violation appearing after a rule fires is attributable to that
// rule. The generator draws every decision from one rand.New(
// rand.NewSource(seed)) stream (the global math/rand source is banned
// by the norawrand analyzer), so a failing seed replays exactly.
//
// Shapes covered: single-table and joined (fact⋈dim FK, fact⋈dim
// non-FK, fact⋈fact with paired universe samplers) chains of selects
// and pass-through projects, an optional real sampler per branch
// (uniform / distinct / distinct-with-buckets / universe), apriori
// weighted scans, a grouping or global aggregate, and optional
// sort/limit on top. UnionAll and windows are out of scope: the
// registered rules only see them through their generic
// children-rewrite path.

import (
	"math/rand"
	"sync"

	"quickr/internal/catalog"
	"quickr/internal/lplan"
	"quickr/internal/table"
)

// Catalog column layout shared by every generated plan. factKeyCol has
// more distinct values than the optimizer's pruneMaxKeys cap, so plans
// that stratify on it exercise the "summaries cannot certify
// eligibility" rejection path of the partition-prune rule.
const (
	factRows  = 1200
	factParts = 6
	dimRows   = 24
)

var (
	catOnce sync.Once
	cat     *catalog.Catalog
)

// sharedCatalog builds the generator's catalog once: summary statistics
// and table stats are derived lazily and cached on the tables, so the
// whole sweep pays the build cost a single time.
func sharedCatalog() *catalog.Catalog {
	catOnce.Do(func() {
		cat = catalog.New()
		fact := table.New("fact", table.NewSchema(
			table.Column{Name: "f_key", Kind: table.KindInt},
			table.Column{Name: "f_dim", Kind: table.KindInt},
			table.Column{Name: "f_val", Kind: table.KindFloat},
			table.Column{Name: "f_tag", Kind: table.KindString},
			table.Column{Name: "f_w", Kind: table.KindFloat},
		), factParts)
		for i := 0; i < factRows; i++ {
			tag := "cold"
			if i%5 == 0 {
				tag = "hot"
			}
			fact.Append(i, table.Row{
				table.NewInt(int64(i)),
				table.NewInt(int64(i % 8)),
				table.NewFloat(float64(i % 50)),
				table.NewString(tag),
				table.NewFloat(10), // uniform apriori weight (p = 0.1)
			})
		}
		dim := table.New("dim", table.NewSchema(
			table.Column{Name: "d_key", Kind: table.KindInt},
			table.Column{Name: "d_cat", Kind: table.KindString},
		), 1)
		for i := 0; i < dimRows; i++ {
			dim.Append(i, table.Row{
				table.NewInt(int64(i % 8)),
				table.NewString(string(rune('a' + i%4))),
			})
		}
		cat.Register(fact)
		cat.Register(dim)
		cat.SetPrimaryKey("dim", "d_key")
	})
	return cat
}

// genInfo summarizes the generated plan for the physical checks.
type genInfo struct {
	// samplerP is the probability of the plan's real sampler (0 when
	// the plan is unsampled): it seeds the estimator config the
	// physical planner wires into the top aggregate.
	samplerP    float64
	samplerType lplan.SamplerType
	// universeCols are the universe-sampled columns, if any.
	universeCols []lplan.ColumnID
	// weighted reports an apriori-weighted scan.
	weighted bool
}

// gen carries the per-plan random stream and column-ID allocator.
type gen struct {
	r    *rand.Rand
	next lplan.ColumnID
	// seedSeq allocates distinct universe subspace seeds within a plan.
	seedSeq uint64
	info    genInfo
}

func (g *gen) id() lplan.ColumnID {
	g.next++
	return g.next
}

// branch is one join input under construction.
type branch struct {
	node lplan.Node
	// cols are the branch's visible output columns; scanCols the
	// original scan columns (join keys and predicates draw from these —
	// they stay visible because generated projects pass them through).
	cols []lplan.ColumnInfo
	// key is the branch's join-key column.
	key lplan.ColumnInfo
	// sampled reports a real sampler in the branch.
	sampled bool
}

// genPlan builds one legal logical plan from the seed.
func genPlan(seed uint64) (lplan.Node, *genInfo) {
	g := &gen{r: rand.New(rand.NewSource(int64(seed)))}

	left := g.genBranch("fact", g.r.Float64() < 0.15)
	root := left.node
	cols := left.cols

	var join *lplan.Join
	switch {
	case g.r.Float64() < 0.35: // fact ⋈ dim
		right := g.genBranch("dim", false)
		join = &lplan.Join{
			Kind:      lplan.InnerJoin,
			Left:      left.node,
			Right:     right.node,
			LeftKeys:  []lplan.ColumnID{left.key.ID},
			RightKeys: []lplan.ColumnID{right.key.ID},
			FKJoin:    g.r.Float64() < 0.5,
		}
		if !join.FKJoin && g.r.Float64() < 0.25 && !right.sampled {
			join.Kind = lplan.LeftOuterJoin
		}
		root = join
		cols = append(append([]lplan.ColumnInfo{}, left.cols...), right.cols...)
	case g.r.Float64() < 0.3 && !left.sampled: // fact ⋈ fact, paired universe
		right := g.genBranch("fact", false)
		if !right.sampled {
			p := g.legalP()
			useed := g.universeSeed()
			left.node = g.universeSampler(left.node, left.key, p, useed)
			right.node = g.universeSampler(right.node, right.key, p, useed)
			left.sampled, right.sampled = true, true
			g.info.samplerP = p
			g.info.samplerType = lplan.SamplerUniverse
			g.info.universeCols = []lplan.ColumnID{left.key.ID}
		}
		join = &lplan.Join{
			Kind:      lplan.InnerJoin,
			Left:      left.node,
			Right:     right.node,
			LeftKeys:  []lplan.ColumnID{left.key.ID},
			RightKeys: []lplan.ColumnID{right.key.ID},
		}
		root = join
		cols = append(append([]lplan.ColumnInfo{}, left.cols...), right.cols...)
	}

	// A predicate above the join exercises pushdown through it; one
	// referencing only a single side moves, a cross-side OR stays.
	if join != nil && g.r.Float64() < 0.6 {
		root = &lplan.Select{Input: root, Pred: g.pred(cols)}
	}

	root = g.aggregate(root, cols)

	if g.r.Float64() < 0.3 {
		root = g.sort(root)
	}
	if g.r.Float64() < 0.25 {
		root = &lplan.Limit{Input: root, N: int64(1 + g.r.Intn(40))}
	}
	info := g.info
	return root, &info
}

// genBranch builds scan → selects → (project) → (sampler).
func (g *gen) genBranch(tbl string, weighted bool) *branch {
	b := &branch{}
	switch tbl {
	case "fact":
		b.cols = []lplan.ColumnInfo{
			g.col("fact", "f_key", table.KindInt),
			g.col("fact", "f_dim", table.KindInt),
			g.col("fact", "f_val", table.KindFloat),
			g.col("fact", "f_tag", table.KindString),
		}
		b.key = b.cols[1] // f_dim joins d_key; fact⋈fact also uses it
		wcol := ""
		if weighted {
			wcol = "f_w"
			g.info.weighted = true
		}
		b.node = &lplan.Scan{Table: "fact", Cols: b.cols, WeightColumn: wcol}
	default:
		b.cols = []lplan.ColumnInfo{
			g.col("dim", "d_key", table.KindInt),
			g.col("dim", "d_cat", table.KindString),
		}
		b.key = b.cols[0]
		b.node = &lplan.Scan{Table: "dim", Cols: b.cols, WeightColumn: ""}
	}

	for n := g.r.Intn(3); n > 0; n-- {
		b.node = &lplan.Select{Input: b.node, Pred: g.pred(b.cols)}
	}

	// Pass-through project plus one computed column, below any sampler
	// so the sampler→aggregate path stays project-free (§B.1).
	if tbl == "fact" && g.r.Float64() < 0.3 {
		exprs := make([]lplan.Expr, 0, len(b.cols)+1)
		outs := make([]lplan.ColumnInfo, 0, len(b.cols)+1)
		for _, c := range b.cols {
			exprs = append(exprs, &lplan.ColRef{ID: c.ID, Name: c.Name, Kind: c.Kind})
			outs = append(outs, c)
		}
		val := b.cols[2]
		exprs = append(exprs, &lplan.Binary{
			Op: lplan.OpMul,
			L:  &lplan.ColRef{ID: val.ID, Name: val.Name, Kind: val.Kind},
			R:  &lplan.Const{Val: table.NewFloat(2)},
		})
		outs = append(outs, lplan.ColumnInfo{
			ID: g.id(), Name: "f_val2", Kind: table.KindFloat, Origins: val.Origins,
		})
		b.node = &lplan.Project{Input: b.node, Exprs: exprs, Cols: outs}
		b.cols = outs
	}

	if !weighted && g.r.Float64() < 0.45 {
		b.node, b.sampled = g.sampler(b.node, b.cols, tbl)
	}
	return b
}

// sampler wraps n in a random sampler; pass-through samplers count as
// unsampled for the plan-level bookkeeping.
func (g *gen) sampler(n lplan.Node, cols []lplan.ColumnInfo, tbl string) (lplan.Node, bool) {
	p := g.legalP()
	switch g.r.Intn(10) {
	case 0: // pass-through: costing declined to sample
		return &lplan.Sample{
			Input: n,
			State: lplan.NewSamplerState(nil),
			Def:   &lplan.SamplerDef{Type: lplan.SamplerPassThrough},
		}, false
	case 1, 2, 3: // distinct, sometimes bucket-stratified
		strat := cols[g.r.Intn(len(cols))]
		def := &lplan.SamplerDef{
			Type:  lplan.SamplerDistinct,
			P:     p,
			Cols:  []lplan.ColumnID{strat.ID},
			Delta: 1 + g.r.Intn(20),
		}
		if tbl == "fact" && g.r.Float64() < 0.4 {
			def.BucketCols = []lplan.ColumnID{cols[2].ID} // f_val
			def.BucketWidths = []float64{float64(5 + g.r.Intn(20))}
		}
		g.info.samplerP = p
		g.info.samplerType = lplan.SamplerDistinct
		return &lplan.Sample{
			Input: n,
			State: lplan.NewSamplerState(lplan.NewColSet(def.Cols...)),
			Def:   def,
		}, true
	case 4, 5: // solo universe
		u := cols[g.r.Intn(len(cols))]
		g.info.samplerP = p
		g.info.samplerType = lplan.SamplerUniverse
		g.info.universeCols = []lplan.ColumnID{u.ID}
		return g.universeSampler(n, u, p, g.universeSeed()), true
	default: // uniform
		g.info.samplerP = p
		g.info.samplerType = lplan.SamplerUniform
		return &lplan.Sample{
			Input: n,
			State: lplan.NewSamplerState(nil),
			Def:   &lplan.SamplerDef{Type: lplan.SamplerUniform, P: p},
		}, true
	}
}

func (g *gen) universeSampler(n lplan.Node, col lplan.ColumnInfo, p float64, seed uint64) lplan.Node {
	st := lplan.NewSamplerState(nil)
	st.Univ = lplan.NewColSet(col.ID)
	return &lplan.Sample{
		Input: n,
		State: st,
		Def: &lplan.SamplerDef{
			Type: lplan.SamplerUniverse,
			P:    p,
			Cols: []lplan.ColumnID{col.ID},
			Seed: seed,
		},
	}
}

// legalP draws a sampling probability in (0, 0.1], the §4.2.6 cap
// plancheck enforces.
func (g *gen) legalP() float64 {
	return 0.01 + 0.09*g.r.Float64()
}

// universeSeed allocates a nonzero subspace seed, distinct per call so
// unpaired universe samplers never trip the pairing checks.
func (g *gen) universeSeed() uint64 {
	g.seedSeq++
	return g.seedSeq<<8 | 1
}

func (g *gen) col(tbl, name string, kind table.Kind) lplan.ColumnInfo {
	return lplan.ColumnInfo{
		ID: g.id(), Name: name, Kind: kind,
		Origins: []lplan.BaseCol{{Table: tbl, Column: name}},
	}
}

// pred builds a random predicate over cols; ~1/4 are conjunctions so
// push-selections always has conjuncts to split.
func (g *gen) pred(cols []lplan.ColumnInfo) lplan.Expr {
	p := g.atom(cols)
	switch g.r.Intn(4) {
	case 0:
		return &lplan.Binary{Op: lplan.OpAnd, L: p, R: g.atom(cols)}
	case 1:
		return &lplan.Binary{Op: lplan.OpOr, L: p, R: g.atom(cols)}
	default:
		return p
	}
}

func (g *gen) atom(cols []lplan.ColumnInfo) lplan.Expr {
	c := cols[g.r.Intn(len(cols))]
	ref := &lplan.ColRef{ID: c.ID, Name: c.Name, Kind: c.Kind}
	switch c.Kind {
	case table.KindString:
		vals := []string{"hot", "cold", "a", "b"}
		return &lplan.Binary{Op: lplan.OpEq, L: ref, R: &lplan.Const{Val: table.NewString(vals[g.r.Intn(len(vals))])}}
	case table.KindFloat:
		ops := []lplan.BinOp{lplan.OpLt, lplan.OpGe}
		return &lplan.Binary{Op: ops[g.r.Intn(2)], L: ref, R: &lplan.Const{Val: table.NewFloat(float64(g.r.Intn(100)))}}
	default:
		ops := []lplan.BinOp{lplan.OpLt, lplan.OpGt, lplan.OpEq, lplan.OpNe}
		return &lplan.Binary{Op: ops[g.r.Intn(4)], L: ref, R: &lplan.Const{Val: table.NewInt(int64(g.r.Intn(20)))}}
	}
}

// aggregate tops the plan with a grouped or global aggregate whose
// arguments draw from the visible columns.
func (g *gen) aggregate(n lplan.Node, cols []lplan.ColumnInfo) lplan.Node {
	a := &lplan.Aggregate{Input: n}
	for i := g.r.Intn(3); i > 0; i-- {
		c := cols[g.r.Intn(len(cols))]
		if !hasCol(a.GroupCols, c.ID) {
			a.GroupCols = append(a.GroupCols, c.ID)
			a.GroupInfo = append(a.GroupInfo, c)
		}
	}
	var numeric []lplan.ColumnInfo
	for _, c := range cols {
		if c.Kind == table.KindInt || c.Kind == table.KindFloat {
			numeric = append(numeric, c)
		}
	}
	nAggs := 1 + g.r.Intn(3)
	for i := 0; i < nAggs; i++ {
		spec := lplan.AggSpec{Kind: lplan.AggCount, Arg: lplan.NoColumn}
		kind := table.KindInt
		switch g.r.Intn(6) {
		case 0, 1:
			arg := numeric[g.r.Intn(len(numeric))]
			spec = lplan.AggSpec{Kind: lplan.AggSum, Arg: arg.ID}
			kind = table.KindFloat
		case 2:
			arg := numeric[g.r.Intn(len(numeric))]
			spec = lplan.AggSpec{Kind: lplan.AggAvg, Arg: arg.ID}
			kind = table.KindFloat
		case 3:
			arg := cols[g.r.Intn(len(cols))]
			k := lplan.AggMin
			if g.r.Intn(2) == 0 {
				k = lplan.AggMax
			}
			spec = lplan.AggSpec{Kind: k, Arg: arg.ID}
			kind = arg.Kind
		case 4:
			if g.r.Float64() < 0.5 { // COUNT DISTINCT disables pruning
				arg := cols[g.r.Intn(len(cols))]
				spec = lplan.AggSpec{Kind: lplan.AggCountDistinct, Arg: arg.ID}
			}
		}
		spec.Out = lplan.ColumnInfo{ID: g.id(), Name: "agg", Kind: kind}
		a.Aggs = append(a.Aggs, spec)
	}
	return a
}

func (g *gen) sort(n lplan.Node) lplan.Node {
	out := n.Columns()
	s := &lplan.Sort{Input: n}
	for i := 1 + g.r.Intn(2); i > 0 && len(out) > 0; i-- {
		c := out[g.r.Intn(len(out))]
		s.Keys = append(s.Keys, lplan.SortKey{Col: c.ID, Desc: g.r.Intn(2) == 0})
	}
	if len(s.Keys) == 0 {
		return n
	}
	return s
}

func hasCol(ids []lplan.ColumnID, id lplan.ColumnID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
