// Package soundness proves the optimizer's rewrite rules sound over
// seeded randomized plans. For every registered rule (opt.Rules) it
// generates legal-by-construction logical plans, applies the rule, and
// checks that the rewrite preserved
//
//   - the plan's root schema (same columns, same order),
//   - the symbolic per-aggregate weight algebra (algebra.go): the
//     multiset of samplers and weighted scans feeding each aggregate,
//     which determines the Horvitz–Thompson expectation,
//   - every plancheck invariant (sampler defs, dominance, universe
//     pairing, weight propagation), and
//   - idempotence: a normalization rule must be a no-op on its own
//     output, or Normalize's single pass leaves plans half-rewritten.
//
// Physical rules are checked on the compiled plan with plancheck's
// physical suite plus an exact re-derivation of the partition-prune
// algebra: inflation factors must be exactly {1, m/k}, the tail mass
// must sum back to the tail partition count (the HT unbiasedness
// identity), the estimator config must match the scan's decision, and
// the decision must replay bit-identically from the same seed. The
// sample-cache rewrite is proven through the same suite (plancheck's
// p-cached-sample invariant pins each cached node's key and sampler
// probability to the fragment it replaced) plus key determinism: a
// recompilation from the same seed must produce identical cache keys,
// or warm runs could replay a different sampler's output.
//
// The prover is wired into `quickrlint -soundness N`, `make lint`, and
// CI (500 plans per push, 5000 nightly); soundness_test.go additionally
// proves completeness (every rewrite function in normalize.go,
// prune.go and samplecache.go is registered) and sensitivity (planted
// unsound rules are caught).
package soundness

import (
	"fmt"
	"math"

	"quickr/internal/cluster"
	"quickr/internal/exec"
	"quickr/internal/lplan"
	"quickr/internal/opt"
	"quickr/internal/plancheck"
)

// DefaultPlans is the per-rule sweep size CI runs on every push; the
// nightly job raises it via QUICKR_SOUNDNESS_PLANS.
const DefaultPlans = 500

// tailR mirrors the optimizer's target tail inclusion probability. It
// is re-declared rather than imported so the prover re-derives the
// expected tail size independently (the plancheck philosophy: a bug in
// prune.go cannot hide inside a shared constant).
const tailR = 0.3

// Problem is one soundness violation found during a sweep.
type Problem struct {
	// Seed regenerates the offending plan via the same generator.
	Seed uint64
	// Rule is the registry name of the rule that broke the invariant
	// ("generator" / "compile" for failures outside any rule).
	Rule string
	// Detail states the broken invariant.
	Detail string
}

func (p Problem) String() string {
	return fmt.Sprintf("seed %d: rule %s: %s", p.Seed, p.Rule, p.Detail)
}

// Stats aggregates a sweep, including the non-vacuity counters the
// tests assert on: a rule that never fires on any generated plan is
// not being proven sound, only left unexercised.
type Stats struct {
	Plans    int
	Sampled  int // plans carrying a real sampler
	Weighted int // plans with an apriori-weighted scan
	Pruned   int // plans where partition-prune actually fired
	// RuleChanged counts, per registry rule, the plans the rule
	// rewrote (logical: plan text changed; physical: the rule's marker
	// nodes appeared — pruned scans or cached-sample wrappers).
	RuleChanged map[string]int
	Problems    []Problem
}

// Summary renders the sweep counters on one line.
func (s Stats) Summary() string {
	per := ""
	for _, r := range opt.Rules() {
		per += fmt.Sprintf(" %s=%d", r.Name, s.RuleChanged[r.Name])
	}
	return fmt.Sprintf("%d plans (%d sampled, %d weighted, %d pruned), %d problem(s); rewrites:%s",
		s.Plans, s.Sampled, s.Weighted, s.Pruned, len(s.Problems), per)
}

// Sweep proves every registered rule over n seeded plans starting at
// base. Sequential seeds are deliberate: a reported seed replays with
// CheckSeed(seed, ...) and nothing else.
func Sweep(n int, base uint64) Stats {
	st := Stats{RuleChanged: map[string]int{}}
	for i := 0; i < n; i++ {
		CheckSeed(base+uint64(i), &st)
	}
	return st
}

// CheckSeed generates the plan for one seed and proves every registered
// rule on it, appending problems and counters to st.
func CheckSeed(seed uint64, st *Stats) {
	if st.RuleChanged == nil {
		st.RuleChanged = map[string]int{}
	}
	report := func(rule, format string, args ...any) {
		st.Problems = append(st.Problems, Problem{Seed: seed, Rule: rule, Detail: fmt.Sprintf(format, args...)})
	}
	root, info := genPlan(seed)
	st.Plans++
	if info.samplerP > 0 {
		st.Sampled++
	}
	if info.weighted {
		st.Weighted++
	}
	ck := plancheck.New()
	if vs := ck.CheckLogical(root); len(vs) > 0 {
		// A dirty input would misattribute every later violation, so a
		// generator bug fails loudly and skips the rules.
		report("generator", "generated plan not clean: %s", vs[0])
		return
	}

	est := opt.NewEstimator(sharedCatalog())
	cur := root
	for _, r := range opt.Rules() {
		if r.Kind != opt.LogicalRule {
			continue
		}
		rule := r // capture
		after, probs := CheckLogicalRewrite(cur, func(n lplan.Node) lplan.Node {
			return rule.Logical(n, est)
		})
		for _, p := range probs {
			report(r.Name, "%s", p)
		}
		if len(probs) > 0 {
			return // downstream rules would inherit the broken plan
		}
		if lplan.Format(after) != lplan.Format(cur) {
			st.RuleChanged[r.Name]++
		}
		cur = after
	}

	// Physical half: compile the normalized plan, prove it clean, apply
	// each physical rule, and re-derive the prune algebra exactly.
	compile := func() (*opt.Planner, exec.PNode, error) {
		cm := opt.NewCostModel(est, cluster.DefaultConfig())
		pl := &opt.Planner{CM: cm, EstCfg: estCfg(info), Seed: seed}
		p, err := pl.Plan(cur)
		return pl, p, err
	}
	pl, proot, err := compile()
	if err != nil {
		report("compile", "physical compilation failed: %v", err)
		return
	}
	if vs := ck.CheckPhysical(proot); len(vs) > 0 {
		report("compile", "compiled plan not clean before physical rules: %s", vs[0])
		return
	}
	for _, r := range opt.Rules() {
		if r.Kind != opt.PhysicalRule {
			continue
		}
		// Physical rules mutate the plan in place, so "did it fire?" is
		// detected by the rule's own marker nodes appearing: pruned scans
		// for partition-prune, cached-sample wrappers for sample-cache. A
		// delta keeps the counters per-rule even though the rules share
		// one plan.
		beforePruned, beforeCached := len(prunedScans(proot)), len(cachedSamples(proot))
		r.Physical(pl, proot)
		for _, v := range ck.CheckPhysical(proot) {
			report(r.Name, "invariant broken: %s", v)
		}
		if len(prunedScans(proot)) > beforePruned || len(cachedSamples(proot)) > beforeCached {
			st.RuleChanged[r.Name]++
		}
	}
	for _, p := range CheckPrunedPlan(proot, pl.EstCfg) {
		report("partition-prune", "%s", p)
	}
	pruned := len(prunedScans(proot)) > 0
	cached := len(cachedSamples(proot)) > 0
	if pruned {
		st.Pruned++
	}
	if pruned || cached {
		// Determinism: the same seed must reproduce the same decisions —
		// partition selection feeds error bars and cache keys gate warm
		// replays, so a replay that prunes differently makes confidence
		// intervals unfalsifiable, and one that keys differently could
		// serve another sampler's rows from the cache.
		pl2, proot2, err2 := compile()
		if err2 != nil {
			report("partition-prune", "replay compilation failed: %v", err2)
			return
		}
		for _, r := range opt.Rules() {
			if r.Kind == opt.PhysicalRule {
				r.Physical(pl2, proot2)
			}
		}
		if d := pruneDiff(proot, proot2); d != "" {
			report("partition-prune", "decision not deterministic: %s", d)
		}
		if d := cachedDiff(proot, proot2); d != "" {
			report("sample-cache", "cache keying not deterministic: %s", d)
		}
	}
}

// CheckLogicalRewrite applies one logical rewrite to a plancheck-clean
// plan and returns the rewritten plan plus the soundness invariants it
// broke. It is exported so the mutation tests can prove the prover
// catches deliberately unsound rules.
func CheckLogicalRewrite(before lplan.Node, apply func(lplan.Node) lplan.Node) (lplan.Node, []string) {
	var probs []string
	after := apply(before)
	if after == nil {
		return before, []string{"rewrite returned a nil plan"}
	}
	bc, ac := before.Columns(), after.Columns()
	if len(bc) != len(ac) {
		probs = append(probs, fmt.Sprintf("root schema changed: %d columns became %d", len(bc), len(ac)))
	} else {
		for i := range bc {
			if bc[i].ID != ac[i].ID {
				probs = append(probs, fmt.Sprintf("root column %d changed: #%d became #%d", i, bc[i].ID, ac[i].ID))
				break
			}
		}
	}
	if d := sigDiff(weightSig(before), weightSig(after)); d != "" {
		probs = append(probs, "weight algebra changed: "+d)
	}
	for _, v := range plancheck.New().CheckLogical(after) {
		probs = append(probs, "invariant broken: "+v.String())
	}
	again := apply(after)
	if again == nil || lplan.Format(again) != lplan.Format(after) {
		probs = append(probs, "not idempotent: second application rewrote the plan again")
	}
	return after, probs
}

// CheckPrunedPlan re-derives the partition-prune algebra on a compiled
// plan, independently of prune.go's own arithmetic: at most one scan
// pruned; inflation factors exactly {1, m/k}; the inflated tail mass
// summing back to the tail count m (the Horvitz–Thompson unbiasedness
// identity Σ 1/π over kept tail = m); the tail size matching the
// configured inclusion rate; and the estimator config carrying the
// same design. Exported for the mutation tests.
func CheckPrunedPlan(root exec.PNode, cfg *exec.EstimatorConfig) []string {
	var probs []string
	scans := prunedScans(root)
	if len(scans) > 1 {
		return []string{fmt.Sprintf("%d scans pruned; the pass must prune at most one", len(scans))}
	}
	if len(scans) == 0 {
		if cfg != nil && cfg.PartP != 0 {
			probs = append(probs, fmt.Sprintf("estimator claims tail probability %g but no scan is pruned", cfg.PartP))
		}
		return probs
	}
	pr := scans[0].Prune
	m := pr.TailTotal
	if m < 2 {
		probs = append(probs, fmt.Sprintf("tail of %d partitions: a tail this small must not be subsampled", m))
		return probs
	}
	kTail := 0
	tailMass := 0.0
	for i, f := range pr.Inflate {
		switch {
		case f == 1:
		case f > 1:
			kTail++
			tailMass += f
		default:
			probs = append(probs, fmt.Sprintf("inflation %g < 1 on kept partition %d", f, pr.Keep[i]))
		}
	}
	if kTail == 0 {
		probs = append(probs, "no tail partitions kept: every tail row would have inclusion probability 0")
		return probs
	}
	wantK := int(float64(m)*tailR + 0.5)
	if wantK < 1 {
		wantK = 1
	}
	if kTail != wantK {
		probs = append(probs, fmt.Sprintf("kept %d tail partitions of %d, want %d at inclusion rate %g", kTail, m, wantK, tailR))
	}
	wantInflate := float64(m) / float64(kTail)
	for i, f := range pr.Inflate {
		if f > 1 && f != wantInflate {
			probs = append(probs, fmt.Sprintf("tail inflation %g on partition %d, want exactly m/k = %g", f, pr.Keep[i], wantInflate))
		}
	}
	if math.Abs(tailMass-float64(m)) > 1e-9 {
		probs = append(probs, fmt.Sprintf("inflated tail mass %g does not restore the tail count %d: estimates would be biased", tailMass, m))
	}
	if got, want := pr.TailP, float64(kTail)/float64(m); got != want {
		probs = append(probs, fmt.Sprintf("TailP=%g but k/m=%g", got, want))
	}
	switch {
	case cfg == nil:
		probs = append(probs, "scan pruned with no estimator config: the added variance would never be charged")
	case cfg.PartP != pr.TailP:
		probs = append(probs, fmt.Sprintf("estimator PartP=%g disagrees with the scan's TailP=%g", cfg.PartP, pr.TailP))
	case cfg.PartTail != kTail:
		probs = append(probs, fmt.Sprintf("estimator PartTail=%d disagrees with the %d kept tail partitions", cfg.PartTail, kTail))
	}
	return probs
}

// estCfg builds the estimator config the optimizer would hand the
// physical planner for the generated plan: nil for unsampled plans.
func estCfg(info *genInfo) *exec.EstimatorConfig {
	if info.samplerP <= 0 {
		return nil
	}
	return &exec.EstimatorConfig{
		Type:         info.samplerType,
		P:            info.samplerP,
		UniverseCols: append([]lplan.ColumnID{}, info.universeCols...),
	}
}

// prunedScans returns the scans carrying a pruning decision.
func prunedScans(root exec.PNode) []*exec.PScan {
	var out []*exec.PScan
	exec.WalkP(root, func(n exec.PNode) {
		if s, ok := n.(*exec.PScan); ok && s.Prune != nil {
			out = append(out, s)
		}
	})
	return out
}

// cachedSamples returns the cached-sample wrappers in a compiled plan.
func cachedSamples(root exec.PNode) []*exec.PCachedSample {
	var out []*exec.PCachedSample
	exec.WalkP(root, func(n exec.PNode) {
		if cs, ok := n.(*exec.PCachedSample); ok {
			out = append(out, cs)
		}
	})
	return out
}

// cachedDiff compares the cached-sample rewrites of two compilations of
// the same plan, returning the first difference or "". Keys must match
// exactly: the key is the only thing standing between a warm query and
// someone else's materialized sample.
func cachedDiff(a, b exec.PNode) string {
	ca, cb := cachedSamples(a), cachedSamples(b)
	if len(ca) != len(cb) {
		return fmt.Sprintf("%d cached fragments vs %d on replay", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i].Key != cb[i].Key {
			return fmt.Sprintf("fragment %d keyed %q vs %q on replay", i, ca[i].Key, cb[i].Key)
		}
		if ca[i].SamplerP != cb[i].SamplerP {
			return fmt.Sprintf("fragment %d sampler p=%g vs %g on replay", i, ca[i].SamplerP, cb[i].SamplerP)
		}
	}
	return ""
}

// pruneDiff compares the pruning decisions of two compilations of the
// same plan, returning the first difference or "".
func pruneDiff(a, b exec.PNode) string {
	sa, sb := prunedScans(a), prunedScans(b)
	if len(sa) != len(sb) {
		return fmt.Sprintf("%d pruned scans vs %d on replay", len(sa), len(sb))
	}
	for i := range sa {
		pa, pb := sa[i].Prune, sb[i].Prune
		if pa.TailP != pb.TailP || pa.TailTotal != pb.TailTotal || pa.Pruned != pb.Pruned ||
			len(pa.Keep) != len(pb.Keep) {
			return fmt.Sprintf("decision shape differs: %+v vs %+v", pa, pb)
		}
		for j := range pa.Keep {
			if pa.Keep[j] != pb.Keep[j] || pa.Inflate[j] != pb.Inflate[j] {
				return fmt.Sprintf("kept set differs at %d: partition %d×%g vs %d×%g",
					j, pa.Keep[j], pa.Inflate[j], pb.Keep[j], pb.Inflate[j])
			}
		}
	}
	return ""
}
