package opt

import (
	"quickr/internal/exec"
)

// Sample-cache rewrite (hot-sample reuse): wrap every cacheable sampler
// fragment — a real sampler over a non-breaker filter/project chain
// ending at one base-table scan — in an exec.PCachedSample node, so the
// executor can replay the fragment's materialized weighted output on
// repeated queries instead of re-scanning. The fragment stays in the
// plan as the node's child: semantics, weights and estimator wiring are
// untouched (a cache miss simply runs it), which is what the soundness
// prover verifies when it applies this pass to seeded plans.
//
// The pass runs after partition pruning so the fragment fingerprint
// covers the pruned partition subset: two plans that keep different
// partitions never share a cache entry.

// applySampleCache wraps every cacheable sampler fragment below root in
// a cached-sample node. Like applyPruning it mutates the plan in place
// and, when invoked directly (the soundness prover does), applies
// unconditionally; Plan gates it behind Planner.SampleCache. The plan
// root itself is never wrapped — there is no parent link to rewrite —
// but in practice a sampler never roots a plan (an aggregate or sort
// sits above it).
func (pl *Planner) applySampleCache(root exec.PNode) {
	var rec func(n exec.PNode, set func(exec.PNode))
	rec = func(n exec.PNode, set func(exec.PNode)) {
		if set != nil && exec.CacheableFragment(n) {
			s := n.(*exec.PSample)
			set(&exec.PCachedSample{
				Frag:     s,
				Key:      exec.FragmentKey(s),
				SamplerP: s.Def.P,
			})
			// The fragment below is now cached wholesale; nested samplers
			// inside it are part of the cached stream, not candidates.
			return
		}
		switch x := n.(type) {
		case *exec.PCachedSample:
			// Already rewritten (idempotence under re-application): the
			// fragment below is cached wholesale, leave it untouched.
			return
		case *exec.PSample:
			rec(x.In, func(c exec.PNode) { x.In = c })
		case *exec.PFilter:
			rec(x.In, func(c exec.PNode) { x.In = c })
		case *exec.PProject:
			rec(x.In, func(c exec.PNode) { x.In = c })
		case *exec.PExchange:
			rec(x.In, func(c exec.PNode) { x.In = c })
		case *exec.PHashJoin:
			rec(x.Left, func(c exec.PNode) { x.Left = c })
			rec(x.Right, func(c exec.PNode) { x.Right = c })
		case *exec.PHashAgg:
			rec(x.In, func(c exec.PNode) { x.In = c })
		case *exec.PSort:
			rec(x.In, func(c exec.PNode) { x.In = c })
		case *exec.PLimit:
			rec(x.In, func(c exec.PNode) { x.In = c })
		case *exec.PWindow:
			rec(x.In, func(c exec.PNode) { x.In = c })
		case *exec.PUnion:
			for i := range x.Ins {
				i := i
				rec(x.Ins[i], func(c exec.PNode) { x.Ins[i] = c })
			}
		default:
			for _, k := range n.Kids() {
				rec(k, nil)
			}
		}
	}
	rec(root, nil)
}
