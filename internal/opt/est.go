// Package opt is the cost-based query optimizer substrate: cardinality
// and distinct-value estimation derived from the one-pass table
// statistics (Table 2), normalization rewrites (predicate pushdown,
// column pruning, join-input ordering), a cost model mirroring the
// cluster simulator, and the physical planner that places exchanges,
// picks join strategies and degrees of parallelism.
//
// ASALQA (internal/core) plugs into this package: it explores sampled
// plan alternatives and uses the same estimator and cost model to pick
// among them, which is the paper's "samplers as first-class operators
// in a Cascades-style optimizer" architecture.
package opt

import (
	"math"

	"quickr/internal/catalog"
	"quickr/internal/lplan"
	"quickr/internal/stats"
	"quickr/internal/table"
)

// Props are derived properties of a logical sub-plan.
type Props struct {
	// Rows is the estimated output cardinality.
	Rows float64
	// RowBytes is the estimated average bytes per output row.
	RowBytes float64
}

// Bytes returns the estimated total output bytes.
func (p Props) Bytes() float64 { return p.Rows * p.RowBytes }

// Estimator derives cardinalities, selectivities and distinct-value
// counts for logical plans, using base-table statistics plus
// independence assumptions refined by heavy-hitter information.
type Estimator struct {
	Cat  *catalog.Catalog
	memo map[lplan.Node]Props
}

// NewEstimator creates an estimator over the catalog's statistics.
func NewEstimator(cat *catalog.Catalog) *Estimator {
	return &Estimator{Cat: cat, memo: map[lplan.Node]Props{}}
}

// Props estimates the output of node n.
func (e *Estimator) Props(n lplan.Node) Props {
	if p, ok := e.memo[n]; ok {
		return p
	}
	p := e.derive(n)
	if p.Rows < 0 {
		p.Rows = 0
	}
	if p.RowBytes < 8 {
		p.RowBytes = 8
	}
	e.memo[n] = p
	return p
}

func (e *Estimator) derive(n lplan.Node) Props {
	switch x := n.(type) {
	case *lplan.Scan:
		ts, err := e.Cat.TableStats(x.Table)
		if err != nil {
			return Props{Rows: 1000, RowBytes: 64}
		}
		rb := 64.0
		if ts.RowCount > 0 {
			rb = float64(ts.Bytes) / float64(ts.RowCount)
		}
		// Column pruning shrinks row bytes proportionally.
		if full := len(ts.Columns); full > 0 && len(x.Cols) < full {
			rb *= float64(len(x.Cols)) / float64(full)
		}
		return Props{Rows: float64(ts.RowCount), RowBytes: rb}
	case *lplan.Select:
		in := e.Props(x.Input)
		return Props{Rows: in.Rows * e.Selectivity(x.Pred, x.Input), RowBytes: in.RowBytes}
	case *lplan.Project:
		in := e.Props(x.Input)
		return Props{Rows: in.Rows, RowBytes: 4 + 10*float64(len(x.Exprs))}
	case *lplan.Join:
		return e.deriveJoin(x)
	case *lplan.Aggregate:
		in := e.Props(x.Input)
		rows := 1.0
		if len(x.GroupCols) > 0 {
			rows = math.Min(e.NDV(x.Input, x.GroupCols), in.Rows)
		}
		return Props{Rows: rows, RowBytes: 8 * float64(len(x.GroupCols)+len(x.Aggs))}
	case *lplan.Sample:
		in := e.Props(x.Input)
		p := 0.1
		if x.Def != nil {
			p = x.Def.P
		}
		rows := in.Rows * p
		if x.Def != nil && x.Def.Type == lplan.SamplerDistinct {
			// The distinct sampler leaks δ rows per distinct value.
			rows += float64(x.Def.Delta) * e.NDV(x.Input, x.Def.Cols)
			rows = math.Min(rows, in.Rows)
		}
		if x.Def != nil && x.Def.Type == lplan.SamplerPassThrough {
			rows = in.Rows
		}
		return Props{Rows: rows, RowBytes: in.RowBytes + 8}
	case *lplan.Sort:
		return e.Props(x.Input)
	case *lplan.Limit:
		in := e.Props(x.Input)
		return Props{Rows: math.Min(in.Rows, float64(x.N)), RowBytes: in.RowBytes}
	case *lplan.UnionAll:
		var rows, bytes float64
		for _, in := range x.Inputs {
			p := e.Props(in)
			rows += p.Rows
			bytes += p.Bytes()
		}
		rb := 64.0
		if rows > 0 {
			rb = bytes / rows
		}
		return Props{Rows: rows, RowBytes: rb}
	}
	// Unknown wrappers (e.g. the binder's union wrapper) delegate to
	// children.
	ch := n.Children()
	if len(ch) == 1 {
		return e.Props(ch[0])
	}
	var rows, bytes float64
	for _, c := range ch {
		p := e.Props(c)
		rows += p.Rows
		bytes += p.Bytes()
	}
	rb := 64.0
	if rows > 0 {
		rb = bytes / rows
	}
	return Props{Rows: rows, RowBytes: rb}
}

func (e *Estimator) deriveJoin(j *lplan.Join) Props {
	l, r := e.Props(j.Left), e.Props(j.Right)
	rb := l.RowBytes + r.RowBytes
	if len(j.LeftKeys) == 0 {
		return Props{Rows: l.Rows * r.Rows, RowBytes: rb} // cross join
	}
	var rows float64
	if j.FKJoin {
		// FK join with a dimension table: each left row matches at most
		// one right row; the right side acts as a filter with selectivity
		// |R| / |R_base|.
		sel := 1.0
		if base := e.baseRows(j.Right); base > 0 {
			sel = math.Min(1, r.Rows/base)
		}
		rows = l.Rows * sel
	} else {
		dl := e.NDV(j.Left, j.LeftKeys)
		dr := e.NDV(j.Right, j.RightKeys)
		d := math.Max(dl, dr)
		if d < 1 {
			d = 1
		}
		rows = l.Rows * r.Rows / d
	}
	if j.Kind == lplan.LeftOuterJoin && rows < l.Rows {
		rows = l.Rows
	}
	if sel := e.residualSelectivity(j); sel < 1 {
		rows *= sel
	}
	return Props{Rows: rows, RowBytes: rb}
}

func (e *Estimator) residualSelectivity(j *lplan.Join) float64 {
	if j.Residual == nil {
		return 1
	}
	return e.Selectivity(j.Residual, j)
}

// baseRows finds the unfiltered base-table cardinality under n (first
// scan found), for FK selectivity.
func (e *Estimator) baseRows(n lplan.Node) float64 {
	var rows float64
	lplan.Walk(n, func(x lplan.Node) {
		if s, ok := x.(*lplan.Scan); ok && rows == 0 {
			if ts, err := e.Cat.TableStats(s.Table); err == nil {
				rows = float64(ts.RowCount)
			}
		}
	})
	return rows
}

// NDV estimates the number of distinct value combinations of cols at
// node n, using base-column lineage: per origin table the stored
// column-set NDV, combined across tables by the independence assumption
// and capped at the node's cardinality.
func (e *Estimator) NDV(n lplan.Node, cols []lplan.ColumnID) float64 {
	props := e.Props(n)
	return math.Min(e.NDVNoCap(n, cols), math.Max(1, props.Rows))
}

// NDVNoCap is NDV without the cardinality cap. ASALQA's support check
// multiplies this by the stratification frequency multiplier before
// capping — capping first would destroy the factorization the sfm
// correction relies on (§4.2.4).
func (e *Estimator) NDVNoCap(n lplan.Node, cols []lplan.ColumnID) float64 {
	if len(cols) == 0 {
		return 1
	}
	byTable := map[string][]string{}
	unknown := 0
	boolCols := 0
	outCols := n.Columns()
	for _, id := range cols {
		ci, ok := lplan.ColumnByID(outCols, id)
		if ok && ci.Kind == table.KindBool {
			// Computed booleans (e.g. *IF condition columns) have at most
			// two values however wide their origin columns are.
			boolCols++
			continue
		}
		if !ok || len(ci.Origins) == 0 {
			unknown++
			continue
		}
		for _, o := range ci.Origins {
			byTable[o.Table] = append(byTable[o.Table], o.Column)
		}
	}
	ndv := math.Pow(2, float64(boolCols))
	for tbl, cs := range byTable {
		ts, err := e.Cat.TableStats(tbl)
		if err != nil {
			ndv *= 100
			continue
		}
		ndv *= ts.NDVSet(dedupe(cs))
	}
	for i := 0; i < unknown; i++ {
		ndv *= 10 // computed columns with no lineage: assume few values
	}
	return math.Max(1, ndv)
}

func dedupe(s []string) []string {
	seen := map[string]bool{}
	out := s[:0]
	for _, x := range s {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Selectivity estimates the fraction of input rows passing pred.
func (e *Estimator) Selectivity(pred lplan.Expr, input lplan.Node) float64 {
	s := e.sel(pred, input)
	if s < 1e-9 {
		s = 1e-9
	}
	if s > 1 {
		s = 1
	}
	return s
}

func (e *Estimator) sel(pred lplan.Expr, input lplan.Node) float64 {
	switch x := pred.(type) {
	case *lplan.Binary:
		switch x.Op {
		case lplan.OpAnd:
			return e.sel(x.L, input) * e.sel(x.R, input)
		case lplan.OpOr:
			a, b := e.sel(x.L, input), e.sel(x.R, input)
			return a + b - a*b
		case lplan.OpEq:
			if col, con, ok := colConst(x.L, x.R); ok {
				return e.eqSelectivity(input, col, con)
			}
			return 0.1
		case lplan.OpNe:
			if col, con, ok := colConst(x.L, x.R); ok {
				return 1 - e.eqSelectivity(input, col, con)
			}
			return 0.9
		case lplan.OpLt, lplan.OpLe, lplan.OpGt, lplan.OpGe:
			if col, con, ok := colConst(x.L, x.R); ok {
				return e.rangeSelectivity(input, col, con, x.Op)
			}
			return 1.0 / 3
		}
		return 1.0 / 3
	case *lplan.Not:
		return 1 - e.sel(x.X, input)
	case *lplan.In:
		if col, ok := x.X.(*lplan.ColRef); ok {
			d := e.NDV(input, []lplan.ColumnID{col.ID})
			s := float64(len(x.Vals)) / math.Max(1, d)
			if x.Inv {
				return 1 - s
			}
			return math.Min(1, s)
		}
		return 0.2
	case *lplan.Like:
		if x.Inv {
			return 0.75
		}
		return 0.25
	case *lplan.IsNull:
		if x.Inv {
			return 0.95
		}
		return 0.05
	case *lplan.Const:
		if x.Val.Kind() == table.KindBool && x.Val.Bool() {
			return 1
		}
		return 0
	}
	return 1.0 / 3
}

func colConst(l, r lplan.Expr) (*lplan.ColRef, table.Value, bool) {
	if c, ok := l.(*lplan.ColRef); ok {
		if k, ok2 := r.(*lplan.Const); ok2 {
			return c, k.Val, true
		}
	}
	if c, ok := r.(*lplan.ColRef); ok {
		if k, ok2 := l.(*lplan.Const); ok2 {
			return c, k.Val, true
		}
	}
	return nil, table.Value{}, false
}

func (e *Estimator) eqSelectivity(input lplan.Node, col *lplan.ColRef, con table.Value) float64 {
	// Heavy-hitter refinement: if the constant is a known frequent value
	// of the origin column, use its observed frequency (§4.2.6: "the
	// derivation improves upon prior work by using heavy hitter identity
	// and frequency").
	if ci, ok := lplan.ColumnByID(input.Columns(), col.ID); ok && len(ci.Origins) == 1 {
		o := ci.Origins[0]
		if ts, err := e.Cat.TableStats(o.Table); err == nil && ts.RowCount > 0 {
			if f := ts.HeavyFreq(o.Column, con); f > 0 {
				return float64(f) / float64(ts.RowCount)
			}
			// If the heavy hitters cover essentially the whole column and
			// the constant is not among them, the predicate matches almost
			// nothing.
			if cs := ts.Columns[o.Column]; cs != nil {
				var hhSum int64
				for _, h := range cs.Heavy {
					hhSum += h.Freq
				}
				if float64(hhSum) > 0.95*float64(ts.RowCount) {
					return 1 / float64(ts.RowCount)
				}
			}
		}
	}
	d := e.NDV(input, []lplan.ColumnID{col.ID})
	return 1 / math.Max(1, d)
}

func (e *Estimator) rangeSelectivity(input lplan.Node, col *lplan.ColRef, con table.Value, op lplan.BinOp) float64 {
	cs := e.originStats(input, col)
	if cs == nil || !con.IsNumeric() || cs.Min.IsNull() || !cs.Min.IsNumeric() {
		return 1.0 / 3
	}
	lo, hi, v := cs.Min.Float(), cs.Max.Float(), con.Float()
	if hi <= lo {
		return 1.0 / 3
	}
	frac := (v - lo) / (hi - lo)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	switch op {
	case lplan.OpLt, lplan.OpLe:
		return frac
	default:
		return 1 - frac
	}
}

func (e *Estimator) originStats(input lplan.Node, col *lplan.ColRef) *stats.ColumnStats {
	ci, ok := lplan.ColumnByID(input.Columns(), col.ID)
	if !ok || len(ci.Origins) != 1 {
		return nil
	}
	o := ci.Origins[0]
	ts, err := e.Cat.TableStats(o.Table)
	if err != nil {
		return nil
	}
	return ts.Columns[o.Column]
}
