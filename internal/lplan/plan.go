package lplan

import (
	"fmt"
	"strings"
)

// Node is a logical plan operator.
type Node interface {
	// Columns returns the node's output columns in order.
	Columns() []ColumnInfo
	// Children returns the input operators.
	Children() []Node
	// WithChildren returns a shallow copy with replaced children.
	WithChildren(ch []Node) Node
	// Describe returns a one-line operator description for EXPLAIN.
	Describe() string
}

// Scan reads a base table. When WeightColumn is set, the named column
// holds per-row sampling weights (the apriori-sample path used by the
// BlinkDB baseline): the executor moves it into the row weight instead
// of exposing it as data.
type Scan struct {
	Table        string
	Cols         []ColumnInfo
	WeightColumn string
}

// Columns implements Node.
func (s *Scan) Columns() []ColumnInfo { return s.Cols }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// WithChildren implements Node.
func (s *Scan) WithChildren(ch []Node) Node {
	c := *s
	return &c
}

// Describe implements Node.
func (s *Scan) Describe() string { return "Scan " + s.Table }

// Select filters rows by a predicate.
type Select struct {
	Input Node
	Pred  Expr
}

// Columns implements Node.
func (s *Select) Columns() []ColumnInfo { return s.Input.Columns() }

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Input} }

// WithChildren implements Node.
func (s *Select) WithChildren(ch []Node) Node { return &Select{Input: ch[0], Pred: s.Pred} }

// Describe implements Node.
func (s *Select) Describe() string { return "Select " + s.Pred.String() }

// Project computes output expressions.
type Project struct {
	Input Node
	Exprs []Expr
	Cols  []ColumnInfo // one per expr; IDs may alias input IDs for pass-through ColRefs
}

// Columns implements Node.
func (p *Project) Columns() []ColumnInfo { return p.Cols }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// WithChildren implements Node.
func (p *Project) WithChildren(ch []Node) Node {
	return &Project{Input: ch[0], Exprs: p.Exprs, Cols: p.Cols}
}

// Describe implements Node.
func (p *Project) Describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project " + strings.Join(parts, ", ")
}

// JoinKind enumerates logical join types.
type JoinKind int

// Join kinds (full outer join is unsupported, paper Table 1).
const (
	InnerJoin JoinKind = iota
	LeftOuterJoin
)

func (k JoinKind) String() string {
	if k == LeftOuterJoin {
		return "LeftOuter"
	}
	return "Inner"
}

// Join combines two inputs. Equi-join keys are extracted into
// LeftKeys/RightKeys (positionally paired); any non-equi condition
// remains in Residual.
type Join struct {
	Kind      JoinKind
	Left      Node
	Right     Node
	LeftKeys  []ColumnID
	RightKeys []ColumnID
	Residual  Expr
	// FKJoin marks a foreign-key join with a dimension table on the
	// right: each left row matches exactly one right row (paper §3:
	// "join between a fact and a dimension table is effectively a
	// select").
	FKJoin bool
}

// Columns implements Node.
func (j *Join) Columns() []ColumnInfo {
	out := append([]ColumnInfo{}, j.Left.Columns()...)
	return append(out, j.Right.Columns()...)
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// WithChildren implements Node.
func (j *Join) WithChildren(ch []Node) Node {
	c := *j
	c.Left, c.Right = ch[0], ch[1]
	return &c
}

// Describe implements Node.
func (j *Join) Describe() string {
	keys := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		keys[i] = fmt.Sprintf("%d=%d", j.LeftKeys[i], j.RightKeys[i])
	}
	d := fmt.Sprintf("%sJoin [%s]", j.Kind, strings.Join(keys, ","))
	if j.Residual != nil {
		d += " residual " + j.Residual.String()
	}
	if j.FKJoin {
		d += " (fk)"
	}
	return d
}

// AggKind enumerates aggregate functions.
type AggKind int

// Aggregate kinds including the *IF variants (paper Table 1).
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
	AggCountDistinct
	AggSumIf
	AggCountIf
)

var aggNames = [...]string{"COUNT", "SUM", "AVG", "MIN", "MAX", "COUNT DISTINCT", "SUMIF", "COUNTIF"}

func (k AggKind) String() string { return aggNames[k] }

// AggSpec is one aggregation in an Aggregate node. Arg is the input
// column (NoColumn for COUNT(*)); Cond is the predicate column for *IF
// aggregates.
type AggSpec struct {
	Kind AggKind
	Arg  ColumnID
	Cond ColumnID
	Out  ColumnInfo
}

// NoColumn marks an absent column reference. It is the zero ColumnID
// so zero-valued AggSpecs behave correctly; the binder allocates real
// IDs starting at 1.
const NoColumn ColumnID = 0

// Aggregate groups Input by GroupCols and computes Aggs. The binder
// normalizes group keys and aggregate arguments to bare columns by
// inserting a Project below.
type Aggregate struct {
	Input     Node
	GroupCols []ColumnID
	GroupInfo []ColumnInfo
	Aggs      []AggSpec
}

// Columns implements Node.
func (a *Aggregate) Columns() []ColumnInfo {
	out := append([]ColumnInfo{}, a.GroupInfo...)
	for _, g := range a.Aggs {
		out = append(out, g.Out)
	}
	return out
}

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Input} }

// WithChildren implements Node.
func (a *Aggregate) WithChildren(ch []Node) Node {
	c := *a
	c.Input = ch[0]
	return &c
}

// Describe implements Node.
func (a *Aggregate) Describe() string {
	parts := make([]string, len(a.Aggs))
	for i, g := range a.Aggs {
		parts[i] = g.Kind.String()
	}
	return fmt.Sprintf("Aggregate group=%v aggs=[%s]", a.GroupCols, strings.Join(parts, ","))
}

// Sort orders rows.
type Sort struct {
	Input Node
	Keys  []SortKey
}

// SortKey is one ordering key.
type SortKey struct {
	Col  ColumnID
	Desc bool
}

// Columns implements Node.
func (s *Sort) Columns() []ColumnInfo { return s.Input.Columns() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Input} }

// WithChildren implements Node.
func (s *Sort) WithChildren(ch []Node) Node { return &Sort{Input: ch[0], Keys: s.Keys} }

// Describe implements Node.
func (s *Sort) Describe() string { return fmt.Sprintf("Sort %v", s.Keys) }

// Limit truncates to N rows.
type Limit struct {
	Input Node
	N     int64
}

// Columns implements Node.
func (l *Limit) Columns() []ColumnInfo { return l.Input.Columns() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Input} }

// WithChildren implements Node.
func (l *Limit) WithChildren(ch []Node) Node { return &Limit{Input: ch[0], N: l.N} }

// Describe implements Node.
func (l *Limit) Describe() string { return fmt.Sprintf("Limit %d", l.N) }

// UnionAll concatenates inputs. All inputs share the first input's
// column IDs (the binder inserts aligning projects).
type UnionAll struct {
	Inputs []Node
}

// Columns implements Node.
func (u *UnionAll) Columns() []ColumnInfo { return u.Inputs[0].Columns() }

// Children implements Node.
func (u *UnionAll) Children() []Node { return u.Inputs }

// WithChildren implements Node.
func (u *UnionAll) WithChildren(ch []Node) Node { return &UnionAll{Inputs: ch} }

// Describe implements Node.
func (u *UnionAll) Describe() string { return fmt.Sprintf("UnionAll (%d inputs)", len(u.Inputs)) }

// Walk visits the plan tree in pre-order.
func Walk(n Node, fn func(Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}

// Format renders the plan as an indented tree.
func Format(n Node) string {
	var b strings.Builder
	var rec func(Node, int)
	rec = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Describe())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}

// Depth returns the operator depth of the plan.
func Depth(n Node) int {
	if n == nil {
		return 0
	}
	d := 0
	for _, c := range n.Children() {
		if cd := Depth(c); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Count returns the number of operators in the plan.
func Count(n Node) int {
	c := 0
	Walk(n, func(Node) { c++ })
	return c
}

// ColumnByID finds a column by ID among cols.
func ColumnByID(cols []ColumnInfo, id ColumnID) (ColumnInfo, bool) {
	for _, c := range cols {
		if c.ID == id {
			return c, true
		}
	}
	return ColumnInfo{}, false
}

// OutputIDs returns the set of column IDs produced by n.
func OutputIDs(n Node) ColSet {
	s := ColSet{}
	for _, c := range n.Columns() {
		s.Add(c.ID)
	}
	return s
}
