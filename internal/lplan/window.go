package lplan

import (
	"fmt"
	"strings"
)

// WinKind enumerates window functions.
type WinKind int

// Window function kinds. The aggregate kinds use the standard default
// frame: the whole partition when there is no ORDER BY, the running
// prefix (unbounded preceding .. current row, with peers) when there is.
const (
	WinRowNumber WinKind = iota
	WinRank
	WinSum
	WinCount
	WinAvg
	WinMin
	WinMax
)

var winNames = [...]string{"ROW_NUMBER", "RANK", "SUM", "COUNT", "AVG", "MIN", "MAX"}

func (k WinKind) String() string { return winNames[k] }

// WinSpec is one window function computed by a Window node.
type WinSpec struct {
	Kind        WinKind
	Arg         ColumnID // NoColumn for ROW_NUMBER/RANK/COUNT(*)
	PartitionBy []ColumnID
	OrderBy     []SortKey
	Out         ColumnInfo
}

// Window appends one output column per WinSpec to its input rows
// (paper Table 1 "Others": windowed aggregates).
type Window struct {
	Input Node
	Specs []WinSpec
}

// Columns implements Node.
func (w *Window) Columns() []ColumnInfo {
	out := append([]ColumnInfo{}, w.Input.Columns()...)
	for _, s := range w.Specs {
		out = append(out, s.Out)
	}
	return out
}

// Children implements Node.
func (w *Window) Children() []Node { return []Node{w.Input} }

// WithChildren implements Node.
func (w *Window) WithChildren(ch []Node) Node { return &Window{Input: ch[0], Specs: w.Specs} }

// Describe implements Node.
func (w *Window) Describe() string {
	parts := make([]string, len(w.Specs))
	for i, s := range w.Specs {
		parts[i] = fmt.Sprintf("%s over part=%v order=%v", s.Kind, s.PartitionBy, s.OrderBy)
	}
	return "Window " + strings.Join(parts, "; ")
}
