// Package lplan defines the bound logical query algebra that the binder
// produces, the optimizer transforms, and the physical planner compiles.
//
// Columns are identified by globally unique ColumnIDs rather than
// positions, so transformation rules (join reordering, predicate and
// sampler pushdown) never have to re-index expressions. Every column
// carries its lineage back to base-table columns, which ASALQA uses to
// compute query column sets (QCS) and to ask the statistics store for
// distinct-value counts.
package lplan

import (
	"fmt"
	"strings"

	"quickr/internal/table"
)

// ColumnID uniquely identifies a column within one planning session.
type ColumnID int

// BaseCol names a base-table column; the unit of lineage.
type BaseCol struct {
	Table  string
	Column string
}

func (b BaseCol) String() string { return b.Table + "." + b.Column }

// ColumnInfo describes one output column of a plan node.
type ColumnInfo struct {
	ID   ColumnID
	Name string
	Kind table.Kind
	// Origins is the set of base columns this column derives from. A
	// plain scan column has exactly one origin; computed columns union
	// the origins of their inputs (paper §3: QCS columns are recursively
	// replaced by their generating columns).
	Origins []BaseCol
}

// Expr is a bound scalar expression.
type Expr interface {
	String() string
	// Eval evaluates the expression against a row using the resolver to
	// map ColumnIDs to row positions.
	expr()
}

// ColRef references a column by ID.
type ColRef struct {
	ID   ColumnID
	Name string
	Kind table.Kind
}

func (*ColRef) expr()            {}
func (c *ColRef) String() string { return fmt.Sprintf("%s#%d", c.Name, c.ID) }

// Const is a literal constant.
type Const struct {
	Val table.Value
}

func (*Const) expr() {}
func (c *Const) String() string {
	if c.Val.Kind() == table.KindString {
		return "'" + c.Val.Str() + "'"
	}
	return c.Val.String()
}

// BinOp enumerates binary scalar operators.
type BinOp int

// Binary operators; comparison operators yield booleans with SQL
// three-valued logic collapsed to false-on-NULL.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"}

func (o BinOp) String() string { return binOpNames[o] }

// IsComparison reports whether o is a comparison operator.
func (o BinOp) IsComparison() bool { return o >= OpEq && o <= OpGe }

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	L, R Expr
}

func (*Binary) expr() {}
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Not negates a boolean expression.
type Not struct{ X Expr }

func (*Not) expr()            {}
func (n *Not) String() string { return "NOT " + n.X.String() }

// Neg is unary minus.
type Neg struct{ X Expr }

func (*Neg) expr()            {}
func (n *Neg) String() string { return "-" + n.X.String() }

// Func is a scalar (row-local) function application: a UDF in the
// paper's terminology.
type Func struct {
	Name string
	Args []Expr
}

func (*Func) expr() {}
func (f *Func) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

// In tests membership of X in a literal list.
type In struct {
	X    Expr
	Vals []table.Value
	Inv  bool
}

func (*In) expr() {}
func (e *In) String() string {
	parts := make([]string, len(e.Vals))
	for i, v := range e.Vals {
		parts[i] = v.String()
	}
	not := ""
	if e.Inv {
		not = "NOT "
	}
	return e.X.String() + " " + not + "IN (" + strings.Join(parts, ", ") + ")"
}

// IsNull tests for NULL.
type IsNull struct {
	X   Expr
	Inv bool
}

func (*IsNull) expr() {}
func (e *IsNull) String() string {
	if e.Inv {
		return e.X.String() + " IS NOT NULL"
	}
	return e.X.String() + " IS NULL"
}

// Like is a SQL LIKE match with % and _ wildcards.
type Like struct {
	X       Expr
	Pattern string
	Inv     bool
}

func (*Like) expr() {}
func (e *Like) String() string {
	not := ""
	if e.Inv {
		not = "NOT "
	}
	return e.X.String() + " " + not + "LIKE '" + e.Pattern + "'"
}

// Case is a searched CASE expression.
type Case struct {
	Whens []When
	Else  Expr
}

// When is one arm of a Case.
type When struct {
	Cond Expr
	Then Expr
}

func (*Case) expr() {}
func (e *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.Whens {
		b.WriteString(" WHEN " + w.Cond.String() + " THEN " + w.Then.String())
	}
	if e.Else != nil {
		b.WriteString(" ELSE " + e.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// WalkExpr visits e and all sub-expressions in pre-order.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Binary:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *Not:
		WalkExpr(x.X, fn)
	case *Neg:
		WalkExpr(x.X, fn)
	case *Func:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *In:
		WalkExpr(x.X, fn)
	case *IsNull:
		WalkExpr(x.X, fn)
	case *Like:
		WalkExpr(x.X, fn)
	case *Case:
		for _, w := range x.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Then, fn)
		}
		WalkExpr(x.Else, fn)
	}
}

// ExprColumns returns the set of ColumnIDs referenced by e.
func ExprColumns(e Expr) map[ColumnID]bool {
	out := map[ColumnID]bool{}
	WalkExpr(e, func(x Expr) {
		if c, ok := x.(*ColRef); ok {
			out[c.ID] = true
		}
	})
	return out
}

// ColSet is a set of ColumnIDs with helpers.
type ColSet map[ColumnID]bool

// NewColSet builds a set from ids.
func NewColSet(ids ...ColumnID) ColSet {
	s := ColSet{}
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Add inserts id.
func (s ColSet) Add(id ColumnID) { s[id] = true }

// Has reports membership.
func (s ColSet) Has(id ColumnID) bool { return s[id] }

// Union returns s ∪ o as a new set.
func (s ColSet) Union(o ColSet) ColSet {
	out := ColSet{}
	for k := range s {
		out[k] = true
	}
	for k := range o {
		out[k] = true
	}
	return out
}

// Intersect returns s ∩ o as a new set.
func (s ColSet) Intersect(o ColSet) ColSet {
	out := ColSet{}
	for k := range s {
		if o[k] {
			out[k] = true
		}
	}
	return out
}

// Minus returns s \ o as a new set.
func (s ColSet) Minus(o ColSet) ColSet {
	out := ColSet{}
	for k := range s {
		if !o[k] {
			out[k] = true
		}
	}
	return out
}

// SubsetOf reports whether every element of s is in o.
func (s ColSet) SubsetOf(o ColSet) bool {
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// Sorted returns the ids in ascending order.
func (s ColSet) Sorted() []ColumnID {
	out := make([]ColumnID, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// String renders the set like {3,7}.
func (s ColSet) String() string {
	ids := s.Sorted()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
