package lplan

import (
	"testing"
	"testing/quick"

	"quickr/internal/table"
)

func TestCivilRoundTrip(t *testing.T) {
	f := func(d int32) bool {
		days := int64(d % 100000)
		y, m, dd := CivilFromDays(days)
		return DaysFromCivil(y, m, dd) == days
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Known anchors.
	if y, m, d := CivilFromDays(0); y != 1970 || m != 1 || d != 1 {
		t.Errorf("epoch: %d-%d-%d", y, m, d)
	}
	if days := DaysFromCivil(2000, 3, 1); days != 11017 {
		t.Errorf("2000-03-01 = %d days", days)
	}
}

func TestCallFunc(t *testing.T) {
	i := table.NewInt
	f := table.NewFloat
	s := table.NewString
	cases := []struct {
		name string
		args []table.Value
		want table.Value
	}{
		{"ABS", []table.Value{i(-5)}, i(5)},
		{"ABS", []table.Value{f(-2.5)}, f(2.5)},
		{"FLOOR", []table.Value{f(2.7)}, i(2)},
		{"CEIL", []table.Value{f(2.1)}, i(3)},
		{"CEILDIV", []table.Value{i(250), i(100)}, i(3)},
		{"UPPER", []table.Value{s("abc")}, s("ABC")},
		{"LOWER", []table.Value{s("ABC")}, s("abc")},
		{"LENGTH", []table.Value{s("hello")}, i(5)},
		{"SUBSTR", []table.Value{s("hello"), i(2), i(3)}, s("ell")},
		{"CONCAT", []table.Value{s("a"), i(1)}, s("a1")},
		{"IF", []table.Value{table.NewBool(true), i(1), i(2)}, i(1)},
		{"IF", []table.Value{table.NewBool(false), i(1), i(2)}, i(2)},
		{"COALESCE", []table.Value{table.Null, i(7)}, i(7)},
		{"YEAR", []table.Value{i(11017)}, i(2000)},
		{"MONTH", []table.Value{i(11017)}, i(3)},
		{"STARTSWITH", []table.Value{s("promo-x"), s("promo")}, table.NewBool(true)},
	}
	for _, c := range cases {
		got := CallFunc(c.name, c.args)
		if !got.Equal(c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("%s(%v) = %v want %v", c.name, c.args, got, c.want)
		}
	}
	// NULL propagation.
	if !CallFunc("ABS", []table.Value{table.Null}).IsNull() {
		t.Error("ABS(NULL) must be NULL")
	}
	if !CallFunc("NO_SUCH_FUNC", []table.Value{i(1)}).IsNull() {
		t.Error("unknown function must yield NULL")
	}
	if !CallFunc("CEILDIV", []table.Value{i(5), i(0)}).IsNull() {
		t.Error("CEILDIV by zero must be NULL")
	}
}

func TestColSetOps(t *testing.T) {
	a := NewColSet(1, 2, 3)
	b := NewColSet(3, 4)
	if got := a.Intersect(b); len(got) != 1 || !got.Has(3) {
		t.Errorf("intersect: %v", got)
	}
	if got := a.Minus(b); len(got) != 2 || got.Has(3) {
		t.Errorf("minus: %v", got)
	}
	if got := a.Union(b); len(got) != 4 {
		t.Errorf("union: %v", got)
	}
	if !NewColSet(1, 2).SubsetOf(a) || a.SubsetOf(b) {
		t.Error("subset checks broken")
	}
	if s := NewColSet(3, 1, 2).Sorted(); s[0] != 1 || s[2] != 3 {
		t.Errorf("sorted: %v", s)
	}
	if a.String() != "{1,2,3}" {
		t.Errorf("string: %s", a.String())
	}
}

func TestPlanHelpers(t *testing.T) {
	scan := &Scan{Table: "t", Cols: []ColumnInfo{{ID: 1, Name: "a", Kind: table.KindInt}}}
	sel := &Select{Input: scan, Pred: &Const{Val: table.NewBool(true)}}
	agg := &Aggregate{Input: sel, GroupCols: []ColumnID{1},
		GroupInfo: scan.Cols,
		Aggs:      []AggSpec{{Kind: AggCount, Arg: NoColumn, Out: ColumnInfo{ID: 2, Name: "c", Kind: table.KindInt}}}}
	if Depth(agg) != 3 || Count(agg) != 3 {
		t.Errorf("depth %d count %d", Depth(agg), Count(agg))
	}
	cols := agg.Columns()
	if len(cols) != 2 || cols[1].Name != "c" {
		t.Errorf("agg columns: %v", cols)
	}
	if _, ok := ColumnByID(cols, 2); !ok {
		t.Error("ColumnByID failed")
	}
	if _, ok := ColumnByID(cols, 99); ok {
		t.Error("ColumnByID must fail for unknown id")
	}
	ids := OutputIDs(agg)
	if !ids.Has(1) || !ids.Has(2) {
		t.Errorf("output ids: %v", ids)
	}
}

func TestSamplerStateClone(t *testing.T) {
	st := NewSamplerState(NewColSet(1))
	c := st.Clone()
	c.Strat.Add(2)
	if st.Strat.Has(2) {
		t.Error("clone must not alias the stratification set")
	}
	if st.DS != 1 || st.SFM != 1 {
		t.Errorf("initial state: %+v", st)
	}
}

func TestFindSamplers(t *testing.T) {
	scan := &Scan{Table: "t", Cols: []ColumnInfo{{ID: 1, Name: "a"}}}
	s1 := &Sample{Input: scan, State: NewSamplerState(nil)}
	sel := &Select{Input: s1, Pred: &Const{Val: table.NewBool(true)}}
	if got := FindSamplers(sel); len(got) != 1 || got[0] != s1 {
		t.Errorf("find samplers: %v", got)
	}
}

func TestExprColumns(t *testing.T) {
	e := &Binary{Op: OpAdd,
		L: &ColRef{ID: 3, Name: "a"},
		R: &Func{Name: "ABS", Args: []Expr{&ColRef{ID: 7, Name: "b"}}},
	}
	cols := ExprColumns(e)
	if len(cols) != 2 || !cols[3] || !cols[7] {
		t.Errorf("expr columns: %v", cols)
	}
}
