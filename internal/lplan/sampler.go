package lplan

import (
	"fmt"
	"strings"
)

// SamplerType enumerates the physical sampler implementations (§4.1).
type SamplerType int

// Sampler types. SamplerPassThrough is the "do not sample" fallback the
// costing step may choose (§4.2.6).
const (
	SamplerUniform SamplerType = iota
	SamplerDistinct
	SamplerUniverse
	SamplerPassThrough
)

func (t SamplerType) String() string {
	switch t {
	case SamplerUniform:
		return "UNIFORM"
	case SamplerDistinct:
		return "DISTINCT"
	case SamplerUniverse:
		return "UNIVERSE"
	case SamplerPassThrough:
		return "PASSTHROUGH"
	}
	return "?"
}

// SamplerState is the logical state of a sampler during exploration
// (§4.2.1): {S, U, ds, sfm}.
//
//   - Strat (S): columns the sampler must stratify on so that no group in
//     the answer is missed.
//   - Univ (U): columns the sampler must universe-sample on so that join
//     subspaces line up.
//   - DS: downstream selectivity — the probability that a row passed by
//     this sampler reaches the answer (shrinks as the sampler is pushed
//     below selective operators without stratifying on their columns).
//   - SFM: stratification frequency multiplier — corrects group-support
//     estimates when stratification columns are replaced by join keys
//     with a different number of distinct values (§4.2.4).
type SamplerState struct {
	Strat ColSet
	Univ  ColSet
	DS    float64
	SFM   float64
}

// NewSamplerState returns the optimistic initial state used at seeding
// time (§4.2.2): U=∅, ds=1, sfm=1.
func NewSamplerState(strat ColSet) SamplerState {
	if strat == nil {
		strat = ColSet{}
	}
	return SamplerState{Strat: strat, Univ: ColSet{}, DS: 1, SFM: 1}
}

// Clone deep-copies the state.
func (s SamplerState) Clone() SamplerState {
	return SamplerState{
		Strat: s.Strat.Union(ColSet{}),
		Univ:  s.Univ.Union(ColSet{}),
		DS:    s.DS,
		SFM:   s.SFM,
	}
}

func (s SamplerState) String() string {
	return fmt.Sprintf("{S=%s U=%s ds=%.3g sfm=%.3g}", s.Strat, s.Univ, s.DS, s.SFM)
}

// SamplerDef is the physical realisation chosen by costing (§4.2.6).
type SamplerDef struct {
	Type SamplerType
	// P is the row/subspace pass probability (≤ 0.1 per §4.2.6).
	P float64
	// Cols: stratification columns for DISTINCT; universe columns for
	// UNIVERSE; unused for UNIFORM.
	Cols []ColumnID
	// Delta is the per-distinct-value guaranteed row count for DISTINCT.
	Delta int
	// BucketCols/BucketWidths stratify on ⌈col/width⌉ rather than the
	// raw column — the paper's "stratification over functions of
	// columns" (§4.1.2), used for value-skewed SUM arguments so rare
	// extreme values survive sampling.
	BucketCols   []ColumnID
	BucketWidths []float64
	// Seed feeds the hash so related universe samplers pick the same
	// subspace; planning assigns one seed per universe column set.
	Seed uint64
}

func (d SamplerDef) String() string {
	switch d.Type {
	case SamplerUniform:
		return fmt.Sprintf("UNIFORM(p=%.3g)", d.P)
	case SamplerDistinct:
		if len(d.BucketCols) > 0 {
			return fmt.Sprintf("DISTINCT(p=%.3g, cols=%v, buckets=%v/%v, delta=%d)",
				d.P, d.Cols, d.BucketCols, d.BucketWidths, d.Delta)
		}
		return fmt.Sprintf("DISTINCT(p=%.3g, cols=%v, delta=%d)", d.P, d.Cols, d.Delta)
	case SamplerUniverse:
		return fmt.Sprintf("UNIVERSE(p=%.3g, cols=%v, seed=%d)", d.P, d.Cols, d.Seed)
	default:
		return "PASSTHROUGH"
	}
}

// Sample is the logical sampler operator Γ. During exploration only
// State is meaningful; after costing, Def holds the chosen physical
// sampler. Output columns equal input columns plus the implicit weight
// column, which is tracked out-of-band by the executor (paper §4.1:
// "each sampler appends a metadata column representing the weight").
type Sample struct {
	Input Node
	State SamplerState
	Def   *SamplerDef // nil until costed
}

// Columns implements Node.
func (s *Sample) Columns() []ColumnInfo { return s.Input.Columns() }

// Children implements Node.
func (s *Sample) Children() []Node { return []Node{s.Input} }

// WithChildren implements Node.
func (s *Sample) WithChildren(ch []Node) Node {
	c := *s
	c.Input = ch[0]
	return &c
}

// Describe implements Node.
func (s *Sample) Describe() string {
	var b strings.Builder
	b.WriteString("Sample ")
	b.WriteString(s.State.String())
	if s.Def != nil {
		b.WriteString(" => " + s.Def.String())
	}
	return b.String()
}

// FindSamplers returns all Sample nodes in the plan in pre-order.
func FindSamplers(n Node) []*Sample {
	var out []*Sample
	Walk(n, func(x Node) {
		if s, ok := x.(*Sample); ok {
			out = append(out, s)
		}
	})
	return out
}
