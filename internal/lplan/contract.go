package lplan

import (
	"fmt"
	"time"
)

// Contract is the normalized form of a query's accuracy/latency demand
// (sql.Contract carries the as-written percentages; this carries
// fractions ready for the optimizer and the accuracy layer).
type Contract struct {
	// MaxRelErr is the maximum tolerated relative error as a fraction
	// (0.02 for `ERROR WITHIN 2%`); 0 means no error clause.
	MaxRelErr float64
	// Confidence is the confidence level as a fraction (0.95 for
	// `CONFIDENCE 95%`). Defaults to 0.95 when the clause is absent.
	Confidence float64
	// Deadline is the latency budget; 0 means no deadline clause.
	Deadline time.Duration
}

// String renders the contract for plan notes and diagnostics.
func (c *Contract) String() string {
	if c == nil {
		return "none"
	}
	s := ""
	if c.MaxRelErr > 0 {
		s = fmt.Sprintf("err<=%.4g%%@%.4g%%", c.MaxRelErr*100, c.Confidence*100)
	}
	if c.Deadline > 0 {
		if s != "" {
			s += " "
		}
		s += "within " + c.Deadline.String()
	}
	if s == "" {
		return "none"
	}
	return s
}
