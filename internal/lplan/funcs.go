package lplan

import (
	"math"
	"strings"

	"quickr/internal/table"
)

// Scalar (row-local) functions — the paper's UDFs. Dates are integers
// counting days since 1970-01-01; YEAR/MONTH/DAY use the civil-calendar
// conversion so generated date dimensions stay consistent.

// FuncReturnKind reports the result kind of a scalar function given its
// argument kinds; KindNull if the function is unknown.
func FuncReturnKind(name string, args []table.Kind) table.Kind {
	switch strings.ToUpper(name) {
	case "ABS", "ROUND":
		if len(args) > 0 && args[0] == table.KindInt {
			return table.KindInt
		}
		return table.KindFloat
	case "FLOOR", "CEIL", "CEILDIV", "YEAR", "MONTH", "DAY", "LENGTH", "HASHMOD", "BUCKET":
		return table.KindInt
	case "SQRT", "LN", "EXP", "POW":
		return table.KindFloat
	case "UPPER", "LOWER", "SUBSTR", "CONCAT":
		return table.KindString
	case "IF":
		if len(args) == 3 {
			return args[1]
		}
		return table.KindNull
	case "COALESCE":
		if len(args) > 0 {
			return args[0]
		}
		return table.KindNull
	case "STARTSWITH":
		return table.KindBool
	}
	return table.KindNull
}

// KnownFunc reports whether name is a registered scalar function.
func KnownFunc(name string) bool {
	return FuncReturnKind(name, []table.Kind{table.KindFloat, table.KindFloat, table.KindFloat}) != table.KindNull ||
		strings.EqualFold(name, "IF") || strings.EqualFold(name, "COALESCE")
}

// CallFunc evaluates a scalar function. Unknown functions and NULL
// arguments (except for IF/COALESCE) yield NULL.
func CallFunc(name string, args []table.Value) table.Value {
	up := strings.ToUpper(name)
	switch up {
	case "IF":
		if len(args) != 3 {
			return table.Null
		}
		if args[0].Kind() == table.KindBool && args[0].Bool() {
			return args[1]
		}
		return args[2]
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a
			}
		}
		return table.Null
	}
	for _, a := range args {
		if a.IsNull() {
			return table.Null
		}
	}
	switch up {
	case "ABS":
		if len(args) != 1 || !args[0].IsNumeric() {
			return table.Null
		}
		if args[0].Kind() == table.KindInt {
			v := args[0].Int()
			if v < 0 {
				v = -v
			}
			return table.NewInt(v)
		}
		return table.NewFloat(math.Abs(args[0].Float()))
	case "ROUND":
		if len(args) < 1 || !args[0].IsNumeric() {
			return table.Null
		}
		if len(args) == 2 && args[1].Kind() == table.KindInt {
			scale := math.Pow(10, float64(args[1].Int()))
			return table.NewFloat(math.Round(args[0].Float()*scale) / scale)
		}
		return table.NewFloat(math.Round(args[0].Float()))
	case "FLOOR":
		return table.NewInt(int64(math.Floor(numArg(args, 0))))
	case "CEIL":
		return table.NewInt(int64(math.Ceil(numArg(args, 0))))
	case "CEILDIV":
		// CEILDIV(x, n) = ⌈x/n⌉ — the paper's example of stratifying on a
		// function of a column (§4.1.2, ⌈Y/100⌉).
		if len(args) != 2 {
			return table.Null
		}
		n := numArg(args, 1)
		if n == 0 {
			return table.Null
		}
		return table.NewInt(int64(math.Ceil(numArg(args, 0) / n)))
	case "SQRT":
		return table.NewFloat(math.Sqrt(numArg(args, 0)))
	case "LN":
		return table.NewFloat(math.Log(numArg(args, 0)))
	case "EXP":
		return table.NewFloat(math.Exp(numArg(args, 0)))
	case "POW":
		if len(args) != 2 {
			return table.Null
		}
		return table.NewFloat(math.Pow(numArg(args, 0), numArg(args, 1)))
	case "YEAR", "MONTH", "DAY":
		if len(args) != 1 || args[0].Kind() != table.KindInt {
			return table.Null
		}
		y, m, d := CivilFromDays(args[0].Int())
		switch up {
		case "YEAR":
			return table.NewInt(int64(y))
		case "MONTH":
			return table.NewInt(int64(m))
		default:
			return table.NewInt(int64(d))
		}
	case "LENGTH":
		if args[0].Kind() != table.KindString {
			return table.Null
		}
		return table.NewInt(int64(len(args[0].Str())))
	case "UPPER":
		return table.NewString(strings.ToUpper(args[0].Str()))
	case "LOWER":
		return table.NewString(strings.ToLower(args[0].Str()))
	case "SUBSTR":
		if len(args) < 2 || args[0].Kind() != table.KindString {
			return table.Null
		}
		s := args[0].Str()
		start := int(numArg(args, 1)) - 1
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return table.NewString("")
		}
		end := len(s)
		if len(args) == 3 {
			if e := start + int(numArg(args, 2)); e < end {
				end = e
			}
		}
		return table.NewString(s[start:end])
	case "CONCAT":
		var b strings.Builder
		for _, a := range args {
			b.WriteString(a.String())
		}
		return table.NewString(b.String())
	case "STARTSWITH":
		if len(args) != 2 {
			return table.Null
		}
		return table.NewBool(strings.HasPrefix(args[0].Str(), args[1].Str()))
	case "HASHMOD", "BUCKET":
		// HASHMOD(x, n): deterministic bucketing of any value.
		if len(args) != 2 || args[1].Kind() != table.KindInt || args[1].Int() <= 0 {
			return table.Null
		}
		return table.NewInt(int64(args[0].Hash64() % uint64(args[1].Int())))
	}
	return table.Null
}

func numArg(args []table.Value, i int) float64 {
	if i >= len(args) {
		return 0
	}
	return args[i].Float()
}

// CivilFromDays converts days since 1970-01-01 to (year, month, day)
// using Howard Hinnant's civil-from-days algorithm.
func CivilFromDays(z int64) (year int, month int, day int) {
	z += 719468
	era := z / 146097
	if z < 0 {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	y := yoe + era*400                                     //
	doy := doe - (365*yoe + yoe/4 - yoe/100)               // [0, 365]
	mp := (5*doy + 2) / 153                                // [0, 11]
	d := doy - (153*mp+2)/5 + 1                            // [1, 31]
	m := mp + 3                                            //
	if m > 12 {
		m -= 12
	}
	if m <= 2 {
		y++
	}
	return int(y), int(m), int(d)
}

// DaysFromCivil converts (year, month, day) to days since 1970-01-01.
func DaysFromCivil(y, m, d int) int64 {
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	era := yy / 400
	if yy < 0 {
		era = (yy - 399) / 400
	}
	yoe := yy - era*400
	mm := int64(m)
	var mp int64
	if mm > 2 {
		mp = mm - 3
	} else {
		mp = mm + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return era*146097 + doe - 719468
}
