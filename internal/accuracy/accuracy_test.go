package accuracy

import (
	"math"
	"strings"
	"testing"

	"quickr/internal/lplan"
	"quickr/internal/table"
)

func scan(name string, ids ...lplan.ColumnID) *lplan.Scan {
	cols := make([]lplan.ColumnInfo, len(ids))
	for i, id := range ids {
		cols[i] = lplan.ColumnInfo{ID: id, Name: name, Kind: table.KindInt}
	}
	return &lplan.Scan{Table: name, Cols: cols}
}

func sampled(in lplan.Node, def lplan.SamplerDef) *lplan.Sample {
	return &lplan.Sample{Input: in, State: lplan.NewSamplerState(nil), Def: &def}
}

func TestAnalyzeSingleUniform(t *testing.T) {
	plan := &lplan.Select{
		Input: sampled(scan("t", 1), lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.05}),
		Pred:  &lplan.Const{Val: table.NewBool(true)},
	}
	a := Analyze(plan)
	if !a.Sampled || a.Type != lplan.SamplerUniform || math.Abs(a.P-0.05) > 1e-12 {
		t.Fatalf("analysis: %+v", a)
	}
	if len(a.Trace) == 0 || !strings.Contains(a.Trace[0], "Rule-U2") {
		t.Errorf("trace: %v", a.Trace)
	}
}

func TestAnalyzePairedUniverseMergesOnce(t *testing.T) {
	l := sampled(scan("l", 1), lplan.SamplerDef{Type: lplan.SamplerUniverse, P: 0.1, Cols: []lplan.ColumnID{1}, Seed: 7})
	r := sampled(scan("r", 2), lplan.SamplerDef{Type: lplan.SamplerUniverse, P: 0.1, Cols: []lplan.ColumnID{2}, Seed: 7})
	join := &lplan.Join{Left: l, Right: r, LeftKeys: []lplan.ColumnID{1}, RightKeys: []lplan.ColumnID{2}}
	a := Analyze(join)
	if a.Type != lplan.SamplerUniverse {
		t.Fatalf("type: %v", a.Type)
	}
	// Rule V3a: a paired universe sampler counts once (p, not p²).
	if math.Abs(a.P-0.1) > 1e-12 {
		t.Errorf("effective p %v want 0.1", a.P)
	}
	found := false
	for _, tr := range a.Trace {
		if strings.Contains(tr, "V3a") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing V3a in trace: %v", a.Trace)
	}
	// Universe columns must close over the join equivalence.
	got := map[lplan.ColumnID]bool{}
	for _, c := range a.UniverseCols {
		got[c] = true
	}
	if !got[1] || !got[2] {
		t.Errorf("universe cols not closed over join keys: %v", a.UniverseCols)
	}
}

func TestAnalyzeIndependentSamplersMultiply(t *testing.T) {
	l := sampled(scan("l", 1), lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.5})
	r := sampled(scan("r", 2), lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.2})
	join := &lplan.Join{Left: l, Right: r, LeftKeys: []lplan.ColumnID{1}, RightKeys: []lplan.ColumnID{2}}
	a := Analyze(join)
	if math.Abs(a.P-0.1) > 1e-12 {
		t.Errorf("independent samplers: p %v want 0.1 (Rule U3)", a.P)
	}
}

func TestAnalyzeTypeDominance(t *testing.T) {
	// Universe present anywhere dominates the root-equivalent type.
	l := sampled(scan("l", 1), lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.5})
	r := sampled(scan("r", 2), lplan.SamplerDef{Type: lplan.SamplerUniverse, P: 0.2, Cols: []lplan.ColumnID{2}, Seed: 3})
	join := &lplan.Join{Left: l, Right: r, LeftKeys: []lplan.ColumnID{1}, RightKeys: []lplan.ColumnID{2}}
	if a := Analyze(join); a.Type != lplan.SamplerUniverse {
		t.Errorf("type %v want universe", a.Type)
	}
}

func TestAnalyzeUnsampled(t *testing.T) {
	a := Analyze(scan("t", 1))
	if a.Sampled || a.P != 1 {
		t.Errorf("unsampled: %+v", a)
	}
	// Pass-through samplers do not count.
	pt := sampled(scan("t", 1), lplan.SamplerDef{Type: lplan.SamplerPassThrough})
	if a := Analyze(pt); a.Sampled {
		t.Error("pass-through must not mark the plan sampled")
	}
}

func TestGroupCoverage(t *testing.T) {
	// Proposition 4 shapes.
	if got := GroupCoverage(lplan.SamplerUniform, 0.1, 30, false, 0); got < 0.95 {
		t.Errorf("uniform coverage at support 30: %v", got)
	}
	if got := GroupCoverage(lplan.SamplerUniform, 0.1, 1, false, 0); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("uniform coverage at support 1: %v", got)
	}
	if got := GroupCoverage(lplan.SamplerDistinct, 0.01, 5, true, 0); got != 1 {
		t.Errorf("distinct with covering strat cols must never miss: %v", got)
	}
	// Universe coverage depends on universe values per group, not rows.
	rich := GroupCoverage(lplan.SamplerUniverse, 0.1, 1000, false, 100)
	poor := GroupCoverage(lplan.SamplerUniverse, 0.1, 1000, false, 2)
	if rich < 0.99 || poor > 0.5 {
		t.Errorf("universe coverage: rich %v poor %v", rich, poor)
	}
	if got := GroupCoverage(lplan.SamplerPassThrough, 0, 0, false, 0); got != 1 {
		t.Errorf("pass-through coverage: %v", got)
	}
	if m := MissProbability(lplan.SamplerUniform, 0.1, 30, false, 0); m > 0.05 {
		t.Errorf("miss probability: %v", m)
	}
}

func TestSwitchingRuleOrder(t *testing.T) {
	// Prop. 6: Γ^V ⇒ Γ^U ⇒ Γ^D (distinct most accurate); Dominates(a,b)
	// reads "a is at least as accurate as b".
	if !Dominates(lplan.SamplerUniform, lplan.SamplerUniverse) {
		t.Error("uniform must dominate universe")
	}
	if !Dominates(lplan.SamplerDistinct, lplan.SamplerUniform) {
		t.Error("distinct must dominate uniform")
	}
	if Dominates(lplan.SamplerUniverse, lplan.SamplerDistinct) {
		t.Error("universe must not dominate distinct")
	}
	if !Dominates(lplan.SamplerDistinct, lplan.SamplerDistinct) {
		t.Error("dominance must be reflexive")
	}
}

func TestAnalyzeDistinctSampler(t *testing.T) {
	plan := sampled(scan("t", 1), lplan.SamplerDef{
		Type: lplan.SamplerDistinct, P: 0.1, Cols: []lplan.ColumnID{1}, Delta: 30,
	})
	a := Analyze(plan)
	if a.Type != lplan.SamplerDistinct || a.Delta != 30 || len(a.StratCols) != 1 {
		t.Fatalf("distinct analysis: %+v", a)
	}
	// Distinct with covering stratification never misses groups.
	if GroupCoverage(a.Type, a.P, 5, true, 0) != 1 {
		t.Error("covered distinct must have coverage 1")
	}
}

func TestAnalyzeStackedSamplersThroughSelect(t *testing.T) {
	inner := sampled(scan("t", 1), lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.1})
	sel := &lplan.Select{Input: inner, Pred: &lplan.Const{Val: table.NewBool(true)}}
	outer := sampled(sel, lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.5})
	a := Analyze(outer)
	if math.Abs(a.P-0.05) > 1e-12 {
		t.Errorf("stacked probability %v want 0.05", a.P)
	}
}
