package accuracy

import "math"

// ZScore returns the two-sided normal z value for a confidence level
// given as a fraction (0.95 -> 1.960). Levels between table entries
// round down to the nearest supported level; out-of-range input gets
// the 95% default, which keeps contract handling conservative.
func ZScore(confidence float64) float64 {
	switch {
	case confidence >= 0.99:
		return 2.576
	case confidence >= 0.95:
		return 1.960
	case confidence >= 0.90:
		return 1.645
	case confidence >= 0.80:
		return 1.282
	default:
		return 1.960
	}
}

// PredictRelCI predicts the relative half-width of the confidence
// interval for a Horvitz-Thompson SUM/COUNT estimate over a uniform
// sample with probability p, per-group support rows, and squared
// coefficient of variation cv2 of the aggregated value:
//
//	rel = z * sqrt((1-p)/(p*support)) * sqrt(1+cv2)
//
// This is the binomial-thinning variance of the HT estimator divided
// by the estimate itself; cv2 = Var(x)/Avg(x)^2 accounts for value
// dispersion in SUM aggregates (cv2 = 0 reduces to pure COUNT).
// Returns 0 when p is out of (0,1) or support is non-positive, meaning
// "no sampling error to predict" (exact plan or empty group).
func PredictRelCI(confidence, p, support, cv2 float64) float64 {
	if p <= 0 || p >= 1 || support <= 0 {
		return 0
	}
	if cv2 < 0 {
		cv2 = 0
	}
	return ZScore(confidence) * math.Sqrt((1-p)/(p*support)) * math.Sqrt(1+cv2)
}
