// Package accuracy implements the paper's §4.3 accuracy analysis: it
// unrolls a query plan with samplers at arbitrary locations into an
// equivalent expression with a single sampler at the root, using the
// sampling-dominance transformation rules (Propositions 1 and 5–9), and
// derives from it the Horvitz–Thompson estimator configuration, the
// group-coverage probabilities (Proposition 4) and the error guarantees
// the executor reports.
package accuracy

import (
	"fmt"
	"math"

	"quickr/internal/lplan"
)

// Analysis is the result of unrolling a sampled plan.
type Analysis struct {
	// Sampled reports whether the plan contains any live sampler.
	Sampled bool
	// Type is the dominant sampler type of the equivalent root sampler:
	// by the switching rule (Prop 6) Γ^V ⇒ Γ^U ⇒ Γ^D in increasing
	// accuracy, so the worst type present governs the variance bound.
	Type lplan.SamplerType
	// P is the effective end-to-end sampling probability (product of
	// probabilities of stacked samplers; paired universe samplers across
	// a join count once, Rule V3a).
	P float64
	// UniverseCols are the universe-sampled columns visible at the root
	// (variance for universe plans is computed over these subspaces).
	UniverseCols []lplan.ColumnID
	// StratCols are the stratification columns of a distinct sampler, if
	// one is the root equivalent.
	StratCols []lplan.ColumnID
	// Delta is the distinct sampler's per-value guarantee.
	Delta int
	// Trace lists the dominance rules applied while unrolling (Fig. 9).
	Trace []string
}

// effSampler is one sampler hoisted to the top of a subtree.
type effSampler struct {
	def  lplan.SamplerDef
	pair bool // true when formed by merging a universe pair (V3a)
}

// Analyze unrolls the plan and returns the root-equivalent analysis.
func Analyze(plan lplan.Node) *Analysis {
	a := &Analysis{P: 1, Type: lplan.SamplerPassThrough}
	samplers := unroll(plan, a)
	eq := joinEquivalences(plan)
	for _, s := range samplers {
		if s.def.Type == lplan.SamplerPassThrough {
			continue
		}
		a.Sampled = true
		a.P *= s.def.P
		switch s.def.Type {
		case lplan.SamplerUniverse:
			a.Type = lplan.SamplerUniverse
			// Close the universe columns over join-key equivalences: a
			// universe sample on sr_customer_sk is, through the equi-join,
			// equally a universe sample on ss_customer_sk, and the
			// estimators (COUNT DISTINCT scaling, subspace variance) must
			// see every equivalent column.
			for _, c := range s.def.Cols {
				a.UniverseCols = append(a.UniverseCols, eq.class(c)...)
			}
		case lplan.SamplerUniform:
			if a.Type != lplan.SamplerUniverse {
				a.Type = lplan.SamplerUniform
			}
		case lplan.SamplerDistinct:
			if a.Type == lplan.SamplerPassThrough {
				a.Type = lplan.SamplerDistinct
			}
			a.StratCols = append(a.StratCols, s.def.Cols...)
			if s.def.Delta > a.Delta {
				a.Delta = s.def.Delta
			}
		}
	}
	if !a.Sampled {
		a.P = 1
	}
	return a
}

// unroll hoists samplers in the subtree to its root, recording the
// dominance rules used.
func unroll(n lplan.Node, a *Analysis) []effSampler {
	switch x := n.(type) {
	case nil:
		return nil
	case *lplan.Sample:
		below := unroll(x.Input, a)
		if x.Def == nil || x.Def.Type == lplan.SamplerPassThrough {
			return below
		}
		return append(below, effSampler{def: *x.Def})
	case *lplan.Select:
		below := unroll(x.Input, a)
		for _, s := range below {
			a.trace("σ", s.def, ruleForSelect(s.def))
		}
		return below
	case *lplan.Project:
		below := unroll(x.Input, a)
		for _, s := range below {
			a.trace("π", s.def, ruleForProject(s.def))
		}
		return below
	case *lplan.Join:
		l := unroll(x.Left, a)
		r := unroll(x.Right, a)
		// A uniform sampler on the dimension side of a foreign-key join
		// does NOT stay row-independent across the join: every fact row
		// keyed to the same dimension row survives or dies together, so
		// the join output is cluster-sampled by the join key. That is
		// exactly a universe sample on the key subspace, and the
		// Horvitz–Thompson variance must be computed per subspace or it
		// understates the error by the mean cluster size. Rewrite the
		// root-equivalent sampler accordingly (the physical sampler is
		// untouched; only the estimator configuration changes).
		if x.FKJoin {
			for i, rs := range r {
				if rs.def.Type == lplan.SamplerUniform {
					def := rs.def
					def.Type = lplan.SamplerUniverse
					def.Cols = append([]lplan.ColumnID{}, x.RightKeys...)
					a.trace("⋈", rs.def, "Rule-U3′ (uniform on FK dimension side ⇒ universe on join key)")
					r[i] = effSampler{def: def}
				}
			}
		}
		// Merge paired universe samplers: Γ^V_p(L) ⋈ Γ^V_p(R) with the
		// same subspace unrolls to Γ^V_p(L ⋈ R) — Rule V3a.
		var out []effSampler
		used := make([]bool, len(r))
		for _, ls := range l {
			merged := false
			if ls.def.Type == lplan.SamplerUniverse {
				for i, rs := range r {
					if !used[i] && rs.def.Type == lplan.SamplerUniverse && rs.def.Seed == ls.def.Seed {
						used[i] = true
						merged = true
						a.trace("⋈", ls.def, "Rule-V3a (paired universe merge)")
						out = append(out, effSampler{def: ls.def, pair: true})
						break
					}
				}
			}
			if !merged {
				a.trace("⋈", ls.def, ruleForJoinOneSide(ls.def))
				out = append(out, ls)
			}
		}
		for i, rs := range r {
			if !used[i] {
				a.trace("⋈", rs.def, ruleForJoinOneSide(rs.def))
				out = append(out, rs)
			}
		}
		return out
	default:
		var out []effSampler
		for _, c := range n.Children() {
			out = append(out, unroll(c, a)...)
		}
		return out
	}
}

func (a *Analysis) trace(op string, def lplan.SamplerDef, rule string) {
	a.Trace = append(a.Trace, fmt.Sprintf("hoist %s past %s: %s", def.Type, op, rule))
}

func ruleForSelect(def lplan.SamplerDef) string {
	switch def.Type {
	case lplan.SamplerUniform:
		return "Rule-U2"
	case lplan.SamplerDistinct:
		return "Rule-D2a/b (weak dominance)"
	case lplan.SamplerUniverse:
		return "Rule-V2 (|D∩C| small)"
	}
	return "-"
}

func ruleForProject(def lplan.SamplerDef) string {
	switch def.Type {
	case lplan.SamplerUniform:
		return "Rule-U1"
	case lplan.SamplerDistinct:
		return "Rule-D1"
	case lplan.SamplerUniverse:
		return "Rule-V1"
	}
	return "-"
}

func ruleForJoinOneSide(def lplan.SamplerDef) string {
	switch def.Type {
	case lplan.SamplerUniform:
		return "Rule-U3 (p2=1)"
	case lplan.SamplerDistinct:
		return "Rule-D3a/b"
	case lplan.SamplerUniverse:
		return "Rule-V3b"
	}
	return "-"
}

// GroupCoverage is Proposition 4: the probability that a group with the
// given support appears in the answer.
//
//   - uniform:  1 − (1−p)^|G|
//   - distinct: 1 when the stratification columns contain the group-by
//     dimensions, else bounded below by the uniform expression
//   - universe: 1 − (1−p)^|G(C)| over the distinct universe values in
//     the group
func GroupCoverage(typ lplan.SamplerType, p float64, support float64, stratCoversGroup bool, universeValuesInGroup float64) float64 {
	switch typ {
	case lplan.SamplerPassThrough:
		return 1
	case lplan.SamplerDistinct:
		if stratCoversGroup {
			return 1
		}
		return 1 - math.Pow(1-p, support)
	case lplan.SamplerUniverse:
		n := universeValuesInGroup
		if n <= 0 {
			n = support
		}
		return 1 - math.Pow(1-p, n)
	default:
		return 1 - math.Pow(1-p, support)
	}
}

// PartitionVariance is the additional variance a per-group estimate
// carries when the optimizer's partition-selection pass subsampled the
// scan's tail partitions (cluster sampling on top of row sampling).
// With the tail stratum subsampled without replacement at inclusion
// probability tailP, tailRead tail partitions actually scanned, and the
// tail holding tailFrac of the input rows, a group total ĝ (on the
// weighted-sum scale) gains approximately
//
//	Var ≈ (1−tailP)/(tailP·k) · (tailFrac·ĝ)²
//
// assuming the group spreads evenly over tail partitions (round-robin
// loading); certainty-stratum partitions contribute no selection
// variance. This is the PS3-style cluster term the per-row
// Horvitz–Thompson variance cannot see, because entire partitions
// survive or die together.
func PartitionVariance(estimate, tailP float64, tailRead int, tailFrac float64) float64 {
	if tailP <= 0 || tailP >= 1 || tailRead <= 0 || tailFrac <= 0 {
		return 0
	}
	y := tailFrac * estimate
	return (1 - tailP) / (tailP * float64(tailRead)) * y * y
}

// MissProbability is 1 − GroupCoverage.
func MissProbability(typ lplan.SamplerType, p, support float64, stratCoversGroup bool, uniVals float64) float64 {
	return 1 - GroupCoverage(typ, p, support, stratCoversGroup, uniVals)
}

// Dominates implements the switching rule (Proposition 6) as a partial
// order on sampler types at equal probability: Γ^V ⇒ Γ^U ⇒ Γ^D, i.e.
// the distinct sampler is most accurate and the universe sampler least.
func Dominates(a, b lplan.SamplerType) bool {
	rank := func(t lplan.SamplerType) int {
		switch t {
		case lplan.SamplerUniverse:
			return 0
		case lplan.SamplerUniform:
			return 1
		case lplan.SamplerDistinct:
			return 2
		default:
			return 3
		}
	}
	return rank(a) >= rank(b)
}

// colEquiv is a union-find over ColumnIDs built from equi-join key
// pairs; it closes sampler column sets over value equivalences.
type colEquiv struct {
	parent map[lplan.ColumnID]lplan.ColumnID
}

func joinEquivalences(plan lplan.Node) *colEquiv {
	eq := &colEquiv{parent: map[lplan.ColumnID]lplan.ColumnID{}}
	lplan.Walk(plan, func(n lplan.Node) {
		if j, ok := n.(*lplan.Join); ok {
			for i := range j.LeftKeys {
				eq.union(j.LeftKeys[i], j.RightKeys[i])
			}
		}
	})
	return eq
}

func (e *colEquiv) find(id lplan.ColumnID) lplan.ColumnID {
	p, ok := e.parent[id]
	if !ok || p == id {
		return id
	}
	root := e.find(p)
	e.parent[id] = root
	return root
}

func (e *colEquiv) union(a, b lplan.ColumnID) {
	// Register both ids so class() can enumerate every member.
	if _, ok := e.parent[a]; !ok {
		e.parent[a] = a
	}
	if _, ok := e.parent[b]; !ok {
		e.parent[b] = b
	}
	ra, rb := e.find(a), e.find(b)
	if ra != rb {
		e.parent[ra] = rb
	}
}

// class returns every column known to be value-equivalent to id
// (including id itself).
func (e *colEquiv) class(id lplan.ColumnID) []lplan.ColumnID {
	root := e.find(id)
	out := []lplan.ColumnID{id}
	seen := map[lplan.ColumnID]bool{id: true}
	for member := range e.parent {
		if !seen[member] && e.find(member) == root {
			seen[member] = true
			out = append(out, member)
		}
	}
	return out
}
