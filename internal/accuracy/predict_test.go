package accuracy

import (
	"math"
	"testing"
)

func TestZScore(t *testing.T) {
	cases := []struct{ conf, want float64 }{
		{0.99, 2.576}, {0.995, 2.576},
		{0.95, 1.960}, {0.97, 1.960},
		{0.90, 1.645}, {0.80, 1.282},
		{0.50, 1.960}, // out of table -> conservative default
		{0, 1.960},
	}
	for _, c := range cases {
		if got := ZScore(c.conf); got != c.want {
			t.Errorf("ZScore(%g) = %g, want %g", c.conf, got, c.want)
		}
	}
}

func TestPredictRelCI(t *testing.T) {
	// Pure COUNT (cv2=0): rel = z*sqrt((1-p)/(p*n)).
	got := PredictRelCI(0.95, 0.1, 1000, 0)
	want := 1.960 * math.Sqrt(0.9/(0.1*1000))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("PredictRelCI = %g, want %g", got, want)
	}
	// cv2 widens the interval.
	if a, b := PredictRelCI(0.95, 0.1, 1000, 0), PredictRelCI(0.95, 0.1, 1000, 2); b <= a {
		t.Fatalf("cv2 should widen CI: %g vs %g", a, b)
	}
	// Monotone: larger p -> narrower interval.
	prev := math.Inf(1)
	for _, p := range []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 0.9} {
		r := PredictRelCI(0.95, p, 500, 1)
		if r >= prev {
			t.Fatalf("not monotone at p=%g: %g >= %g", p, r, prev)
		}
		prev = r
	}
	// Degenerate inputs predict zero error.
	for _, r := range []float64{
		PredictRelCI(0.95, 0, 100, 0),
		PredictRelCI(0.95, 1, 100, 0),
		PredictRelCI(0.95, 1.5, 100, 0),
		PredictRelCI(0.95, 0.1, 0, 0),
	} {
		if r != 0 {
			t.Fatalf("degenerate input should predict 0, got %g", r)
		}
	}
	// Negative cv2 is clamped, not amplified.
	if PredictRelCI(0.95, 0.1, 100, -5) != PredictRelCI(0.95, 0.1, 100, 0) {
		t.Fatal("negative cv2 should clamp to 0")
	}
}
