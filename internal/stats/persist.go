package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"quickr/internal/table"
)

// Statistics persistence: the paper computes table statistics once ("by
// the first query that touches the dataset") and reuses them for every
// later query. These helpers serialize a Store to JSON so a process
// restart keeps the warm statistics without rescanning the data.

// storedValue serializes a table.Value with its kind.
type storedValue struct {
	Kind string  `json:"kind"`
	I    int64   `json:"i,omitempty"`
	F    float64 `json:"f,omitempty"`
	S    string  `json:"s,omitempty"`
	B    bool    `json:"b,omitempty"`
}

func toStored(v table.Value) storedValue {
	switch v.Kind() {
	case table.KindInt:
		return storedValue{Kind: "int", I: v.Int()}
	case table.KindFloat:
		return storedValue{Kind: "float", F: v.Float()}
	case table.KindString:
		return storedValue{Kind: "string", S: v.Str()}
	case table.KindBool:
		return storedValue{Kind: "bool", B: v.Bool()}
	default:
		return storedValue{Kind: "null"}
	}
}

func fromStored(sv storedValue) table.Value {
	switch sv.Kind {
	case "int":
		return table.NewInt(sv.I)
	case "float":
		return table.NewFloat(sv.F)
	case "string":
		return table.NewString(sv.S)
	case "bool":
		return table.NewBool(sv.B)
	default:
		return table.Null
	}
}

type storedHeavy struct {
	Value storedValue `json:"value"`
	Freq  int64       `json:"freq"`
}

type storedColumn struct {
	Name      string        `json:"name"`
	Kind      string        `json:"kind"`
	NullCount int64         `json:"null_count"`
	NDV       float64       `json:"ndv"`
	Avg       float64       `json:"avg"`
	Var       float64       `json:"var"`
	Min       storedValue   `json:"min"`
	Max       storedValue   `json:"max"`
	Heavy     []storedHeavy `json:"heavy,omitempty"`
}

type storedTable struct {
	Table     string             `json:"table"`
	RowCount  int64              `json:"row_count"`
	Bytes     int64              `json:"bytes"`
	Columns   []storedColumn     `json:"columns"`
	ColSetNDV map[string]float64 `json:"colset_ndv,omitempty"`
}

type storedStats struct {
	Version int           `json:"version"`
	Tables  []storedTable `json:"tables"`
}

// Save writes every collected table's statistics as JSON.
func (s *Store) Save(w io.Writer) error {
	s.mu.Lock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	out := storedStats{Version: 1}
	for _, name := range names {
		ts := s.tables[name]
		st := storedTable{
			Table:     ts.Table,
			RowCount:  ts.RowCount,
			Bytes:     ts.Bytes,
			ColSetNDV: map[string]float64{},
		}
		colNames := make([]string, 0, len(ts.Columns))
		for c := range ts.Columns {
			colNames = append(colNames, c)
		}
		sort.Strings(colNames)
		for _, c := range colNames {
			cs := ts.Columns[c]
			sc := storedColumn{
				Name: cs.Name, Kind: cs.Kind.String(), NullCount: cs.NullCount,
				NDV: cs.NDV, Avg: cs.Avg, Var: cs.Var,
				Min: toStored(cs.Min), Max: toStored(cs.Max),
			}
			for _, h := range cs.Heavy {
				sc.Heavy = append(sc.Heavy, storedHeavy{Value: toStored(h.Value), Freq: h.Freq})
			}
			st.Columns = append(st.Columns, sc)
		}
		ts.mu.Lock()
		for k, v := range ts.colSetNDV {
			st.ColSetNDV[k] = v
		}
		ts.mu.Unlock()
		out.Tables = append(out.Tables, st)
	}
	s.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// Load reads previously saved statistics into the store. Loaded entries
// carry no source table, so multi-column NDV requests beyond the cached
// sets fall back to the independence estimate.
func (s *Store) Load(r io.Reader) error {
	var in storedStats
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("stats: decoding: %w", err)
	}
	if in.Version != 1 {
		return fmt.Errorf("stats: unsupported version %d", in.Version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range in.Tables {
		ts := &TableStats{
			Table:     st.Table,
			RowCount:  st.RowCount,
			Bytes:     st.Bytes,
			Columns:   map[string]*ColumnStats{},
			colSetNDV: map[string]float64{},
		}
		for _, sc := range st.Columns {
			cs := &ColumnStats{
				Name: sc.Name, NullCount: sc.NullCount, NDV: sc.NDV,
				Avg: sc.Avg, Var: sc.Var,
				Min: fromStored(sc.Min), Max: fromStored(sc.Max),
			}
			for _, h := range sc.Heavy {
				cs.Heavy = append(cs.Heavy, HeavyValue{Value: fromStored(h.Value), Freq: h.Freq})
			}
			ts.Columns[cs.Name] = cs
		}
		for k, v := range st.ColSetNDV {
			ts.colSetNDV[k] = v
		}
		s.tables[st.Table] = ts
	}
	return nil
}
