// Package stats implements the input statistics Quickr uses for sampler
// selection (paper Table 2): row counts, per-column average/variance,
// distinct value counts (also for column sets), and heavy-hitter values
// with frequencies. Statistics are computed in a single pass over each
// table, matching the paper's "computed by the first query that reads
// the table" behaviour, and cached in a Store.
package stats

import (
	"math"
	"strings"
	"sync"

	"quickr/internal/sketch"
	"quickr/internal/table"
)

// HeavyValue is one frequent value of a column with its frequency.
type HeavyValue struct {
	Value table.Value
	Freq  int64
}

// ColumnStats summarizes one column (paper Table 2).
type ColumnStats struct {
	Name      string
	Kind      table.Kind
	NullCount int64
	NDV       float64
	// Avg and Var are populated for numeric columns.
	Avg float64
	Var float64
	Min table.Value
	Max table.Value
	// Heavy holds values with frequency above heavyFraction of rows.
	Heavy []HeavyValue
}

// TableStats summarizes one table.
type TableStats struct {
	Table    string
	RowCount int64
	Bytes    int64
	Columns  map[string]*ColumnStats
	// colSetNDV caches distinct-value counts for multi-column sets,
	// keyed by the joined sorted column names.
	colSetNDV map[string]float64
	src       *table.Table
	mu        sync.Mutex
}

// heavyFraction is the s threshold for reporting heavy hitters (paper
// §4.1.2 uses s=1e-2).
const heavyFraction = 0.01

// lossyEps is the lossy-counting error bound (paper τ=1e-4).
const lossyEps = 1e-4

// Collect computes TableStats in a single pass over t.
func Collect(t *table.Table) *TableStats {
	ts := &TableStats{
		Table:     t.Name,
		Columns:   map[string]*ColumnStats{},
		colSetNDV: map[string]float64{},
		src:       t,
	}
	n := t.Schema.Len()
	type colAcc struct {
		cs    *ColumnStats
		kmv   *sketch.KMV
		lossy *sketch.LossyCounter
		sum   float64
		sumsq float64
		cnt   int64
	}
	accs := make([]*colAcc, n)
	for i, c := range t.Schema.Cols {
		accs[i] = &colAcc{
			cs:    &ColumnStats{Name: c.Name, Kind: c.Kind, Min: table.Null, Max: table.Null},
			kmv:   sketch.NewKMV(1024),
			lossy: sketch.NewLossyCounter(lossyEps),
		}
	}
	for _, part := range t.Partitions {
		for _, row := range part {
			ts.RowCount++
			ts.Bytes += int64(row.ByteSize())
			for i := 0; i < n; i++ {
				v := row[i]
				a := accs[i]
				if v.IsNull() {
					a.cs.NullCount++
					continue
				}
				key := v.Key()
				a.kmv.Add(key)
				a.lossy.Add(key)
				if v.IsNumeric() {
					f := v.Float()
					a.sum += f
					a.sumsq += f * f
					a.cnt++
				}
				if a.cs.Min.IsNull() || v.Compare(a.cs.Min) < 0 {
					a.cs.Min = v
				}
				if a.cs.Max.IsNull() || v.Compare(a.cs.Max) > 0 {
					a.cs.Max = v
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		a := accs[i]
		a.cs.NDV = a.kmv.Estimate()
		if a.cnt > 0 {
			a.cs.Avg = a.sum / float64(a.cnt)
			a.cs.Var = math.Max(0, a.sumsq/float64(a.cnt)-a.cs.Avg*a.cs.Avg)
		}
		for _, hh := range a.lossy.HeavyHitters(heavyFraction) {
			a.cs.Heavy = append(a.cs.Heavy, HeavyValue{Value: keyToValue(hh.Key), Freq: hh.Freq})
		}
		ts.Columns[a.cs.Name] = a.cs
	}
	return ts
}

// keyToValue reconstructs a displayable value from a Value.Key encoding;
// only used for heavy-hitter reporting.
func keyToValue(key string) table.Value {
	if key == "" {
		return table.Null
	}
	switch key[0] {
	case 'i':
		var n int64
		neg := false
		s := key[1:]
		if strings.HasPrefix(s, "-") {
			neg = true
			s = s[1:]
		}
		for _, c := range s {
			if c < '0' || c > '9' {
				return table.NewString(key)
			}
			n = n*10 + int64(c-'0')
		}
		if neg {
			n = -n
		}
		return table.NewInt(n)
	case 's':
		return table.NewString(key[1:])
	case 'b':
		return table.NewBool(key == "bt")
	default:
		return table.NewString(key)
	}
}

// NDVSet returns the (possibly estimated) number of distinct value
// combinations of cols in the table, computing and caching it on first
// use. An empty set has NDV 1.
func (ts *TableStats) NDVSet(cols []string) float64 {
	if len(cols) == 0 {
		return 1
	}
	if len(cols) == 1 {
		if c, ok := ts.Columns[cols[0]]; ok {
			return c.NDV
		}
		return float64(ts.RowCount)
	}
	sorted := append([]string{}, cols...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	key := strings.Join(sorted, "\x00")
	ts.mu.Lock()
	if v, ok := ts.colSetNDV[key]; ok {
		ts.mu.Unlock()
		return v
	}
	ts.mu.Unlock()

	v := ts.computeSetNDV(sorted)
	ts.mu.Lock()
	ts.colSetNDV[key] = v
	ts.mu.Unlock()
	return v
}

func (ts *TableStats) computeSetNDV(cols []string) float64 {
	if ts.src == nil {
		// Fall back to the independence upper bound capped at rowcount.
		prod := 1.0
		for _, c := range cols {
			if cs, ok := ts.Columns[c]; ok {
				prod *= cs.NDV
			}
		}
		return math.Min(prod, float64(ts.RowCount))
	}
	idx := make([]int, 0, len(cols))
	for _, c := range cols {
		if i := ts.src.Schema.Index(c); i >= 0 {
			idx = append(idx, i)
		}
	}
	kmv := sketch.NewKMV(1024)
	var sb strings.Builder
	for _, part := range ts.src.Partitions {
		for _, row := range part {
			sb.Reset()
			for _, i := range idx {
				sb.WriteString(row[i].Key())
				sb.WriteByte(0)
			}
			kmv.Add(sb.String())
		}
	}
	return kmv.Estimate()
}

// HeavyFreq returns the frequency of value v in column col if v is a
// tracked heavy hitter, else 0.
func (ts *TableStats) HeavyFreq(col string, v table.Value) int64 {
	cs, ok := ts.Columns[col]
	if !ok {
		return 0
	}
	for _, h := range cs.Heavy {
		if h.Value.Equal(v) {
			return h.Freq
		}
	}
	return 0
}

// Store caches statistics per table, computing them on first access
// (paper §4.2.6: "if not already available, the statistics are computed
// by the first query that reads the table").
type Store struct {
	mu     sync.Mutex
	tables map[string]*TableStats
}

// NewStore returns an empty statistics store.
func NewStore() *Store {
	return &Store{tables: map[string]*TableStats{}}
}

// Get returns cached stats for t, collecting them on first use.
func (s *Store) Get(t *table.Table) *TableStats {
	s.mu.Lock()
	if ts, ok := s.tables[t.Name]; ok {
		s.mu.Unlock()
		return ts
	}
	s.mu.Unlock()
	ts := Collect(t)
	s.mu.Lock()
	s.tables[t.Name] = ts
	s.mu.Unlock()
	return ts
}

// Lookup returns stats by table name if already collected.
func (s *Store) Lookup(name string) (*TableStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.tables[name]
	return ts, ok
}
