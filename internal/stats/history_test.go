package stats

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"quickr/internal/sql"
)

func TestHistoryRoundTrip(t *testing.T) {
	h := NewHistory()
	h.Record("aaa", Observation{RowsPerSec: 1e6, CIRatio: 1.5, SelRatio: 0.8, GroupRatio: 1.2, PassRate: 0.9, GoodP: 0.05})
	h.Record("aaa", Observation{RowsPerSec: 2e6, CIRatio: 2.0})
	h.Record("bbb", Observation{RowsPerSec: 5e5})

	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	h2 := NewHistory()
	if err := h2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if h2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h2.Len())
	}
	a1, _ := h.Lookup("aaa")
	a2, ok := h2.Lookup("aaa")
	if !ok || a1 != a2 {
		t.Fatalf("round trip mismatch: %+v vs %+v", a1, a2)
	}
	if a2.Runs != 2 || a2.LastGoodP != 0.05 {
		t.Fatalf("unexpected entry: %+v", a2)
	}
	// EWMA: 1e6 then 2e6 with alpha=0.5 -> 1.5e6.
	if a2.RowsPerSec != 1.5e6 {
		t.Fatalf("RowsPerSec EWMA = %g, want 1.5e6", a2.RowsPerSec)
	}
	// Save is deterministic (sorted by fingerprint).
	var buf2 bytes.Buffer
	if err := h2.Save(&buf2); err != nil {
		t.Fatalf("Save2: %v", err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("Save output not deterministic")
	}
}

func TestHistoryLoadCorrupt(t *testing.T) {
	// Every corrupt payload must degrade to a cold store, not error.
	payloads := []string{
		"",                // empty
		"{",               // truncated JSON
		"not json at all", // garbage
		`{"version":99,"queries":[{"fingerprint":"x","runs":3}]}`, // version mismatch
		`[1,2,3]`, // wrong shape
		`{"version":1,"queries":[{"fingerprint":"","runs":1}]}`, // empty fingerprint dropped
	}
	for _, p := range payloads {
		h := NewHistory()
		h.Record("warm", Observation{RowsPerSec: 1})
		if err := h.Load(strings.NewReader(p)); err != nil {
			t.Fatalf("Load(%q) returned error: %v", p, err)
		}
		if h.Len() != 0 {
			t.Fatalf("Load(%q): store not cold, len=%d", p, h.Len())
		}
	}
	// A truncated copy of valid output also loads cold.
	h := NewHistory()
	h.Record("aaa", Observation{RowsPerSec: 1e6})
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	half := buf.String()[:buf.Len()/2]
	h2 := NewHistory()
	if err := h2.Load(strings.NewReader(half)); err != nil {
		t.Fatalf("Load(truncated): %v", err)
	}
	if h2.Len() != 0 {
		t.Fatalf("truncated load not cold: len=%d", h2.Len())
	}
}

func TestHistoryRatioClamp(t *testing.T) {
	h := NewHistory()
	h.Record("x", Observation{CIRatio: 1000, SelRatio: 1e-9})
	q, _ := h.Lookup("x")
	if q.CIRatio != maxRatio || q.SelRatio != minRatio {
		t.Fatalf("ratios not clamped: %+v", q)
	}
}

func TestFingerprintStability(t *testing.T) {
	// Semantically identical statements normalize to the same string
	// via the parser, so their fingerprints collide as intended.
	variants := []string{
		"SELECT a, SUM(b) FROM t GROUP BY a",
		"select a, sum(b) from t group by a",
		"SELECT  a , SUM( b )\nFROM t\tGROUP BY a",
		"SELECT a, SUM(b) FROM t GROUP BY a -- trailing comment",
	}
	var want string
	for i, v := range variants {
		stmt, err := sql.Parse(v)
		if err != nil {
			t.Fatalf("Parse(%q): %v", v, err)
		}
		fp := Fingerprint(stmt.String())
		if i == 0 {
			want = fp
			continue
		}
		if fp != want {
			t.Fatalf("fingerprint of %q = %s, want %s", v, fp, want)
		}
	}
	// Different statements must not collide.
	other, err := sql.Parse("SELECT a, SUM(c) FROM t GROUP BY a")
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(other.String()) == want {
		t.Fatal("distinct statements share a fingerprint")
	}
}

func TestHistoryConcurrentHammer(t *testing.T) {
	// 32 workers record and look up concurrently; run under -race in CI.
	h := NewHistory()
	const workers = 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fp := fmt.Sprintf("fp-%d", w%4)
			for i := 0; i < 500; i++ {
				h.Record(fp, Observation{
					RowsPerSec: float64(1 + i),
					CIRatio:    1 + float64(i%5),
					GoodP:      0.05,
				})
				if q, ok := h.Lookup(fp); ok && q.Runs <= 0 {
					t.Errorf("lookup saw non-positive run count")
					return
				}
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := h.Save(&buf); err != nil {
						t.Errorf("Save: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Len() != 4 {
		t.Fatalf("Len = %d, want 4", h.Len())
	}
	q, _ := h.Lookup("fp-0")
	if q.Runs != 8*500 {
		t.Fatalf("Runs = %d, want %d", q.Runs, 8*500)
	}
}
