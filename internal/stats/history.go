package stats

import (
	"encoding/json"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Query-history store: the learned estimate-correction loop. Every run
// records its actuals (rows/sec, realized vs predicted CI width,
// selectivity and group-count estimate ratios, sampler pass rate)
// keyed by a normalized plan fingerprint; later runs of the same plan
// blend these corrections into contract p selection. The EWMA keeps
// recent behaviour dominant while damping one-off outliers.

// historyAlpha is the EWMA weight of the newest observation.
const historyAlpha = 0.5

// ratio clamps keep a single wild run from poisoning the correction.
const (
	minRatio = 0.1
	maxRatio = 10.0
)

// historyVersion guards the on-disk format; a mismatch loads cold.
const historyVersion = 1

// Fingerprint hashes a normalized statement string to a stable hex key.
func Fingerprint(s string) string {
	h := fnv.New64a()
	_, _ = io.WriteString(h, s)
	return strconv.FormatUint(h.Sum64(), 16)
}

// QueryHistory is the learned per-fingerprint correction state. All
// ratio fields are EWMA of actual/predicted (or actual/estimated), so
// 1.0 means the optimizer's estimate was spot-on.
type QueryHistory struct {
	// Fingerprint is the normalized-plan hash this entry corrects.
	Fingerprint string `json:"fingerprint"`
	// Runs counts recorded observations.
	Runs int64 `json:"runs"`
	// RowsPerSec is the EWMA processing rate (input rows / wall sec).
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`
	// CIRatio is EWMA realized/predicted relative CI width.
	CIRatio float64 `json:"ci_ratio,omitempty"`
	// SelRatio is EWMA actual/estimated rows into the top aggregate.
	SelRatio float64 `json:"sel_ratio,omitempty"`
	// GroupRatio is EWMA actual/estimated output group count.
	GroupRatio float64 `json:"group_ratio,omitempty"`
	// PassRate is EWMA actual/expected sampler pass rate.
	PassRate float64 `json:"pass_rate,omitempty"`
	// LastGoodP is the sampling probability that last satisfied this
	// query's contract (0 = none recorded); warm runs start the ladder
	// here.
	LastGoodP float64 `json:"last_good_p,omitempty"`
}

// Observation is one run's actuals, fed into the EWMA state. Zero
// fields are skipped (not every run observes every quantity).
type Observation struct {
	RowsPerSec float64
	// CIRatio is realized/predicted relative CI for this run.
	CIRatio float64
	// SelRatio is actual/estimated aggregate-input rows.
	SelRatio float64
	// GroupRatio is actual/estimated group count.
	GroupRatio float64
	// PassRate is actual/expected sampler pass rate.
	PassRate float64
	// GoodP, when >0, records a p that satisfied the contract.
	GoodP float64
}

// History is a concurrency-safe query-history store.
type History struct {
	mu      sync.Mutex
	queries map[string]*QueryHistory // guarded-by: mu
}

// NewHistory returns an empty (cold) history store.
func NewHistory() *History {
	return &History{queries: make(map[string]*QueryHistory)}
}

func ewma(old, obs float64) float64 {
	if old == 0 {
		return obs
	}
	return (1-historyAlpha)*old + historyAlpha*obs
}

func clampRatio(r float64) float64 {
	if r < minRatio {
		return minRatio
	}
	if r > maxRatio {
		return maxRatio
	}
	return r
}

// Record folds one run's actuals into the entry for fp.
func (h *History) Record(fp string, obs Observation) {
	h.mu.Lock()
	defer h.mu.Unlock()
	q := h.queries[fp]
	if q == nil {
		q = &QueryHistory{Fingerprint: fp}
		h.queries[fp] = q
	}
	q.Runs++
	if obs.RowsPerSec > 0 {
		q.RowsPerSec = ewma(q.RowsPerSec, obs.RowsPerSec)
	}
	if obs.CIRatio > 0 {
		q.CIRatio = ewma(q.CIRatio, clampRatio(obs.CIRatio))
	}
	if obs.SelRatio > 0 {
		q.SelRatio = ewma(q.SelRatio, clampRatio(obs.SelRatio))
	}
	if obs.GroupRatio > 0 {
		q.GroupRatio = ewma(q.GroupRatio, clampRatio(obs.GroupRatio))
	}
	if obs.PassRate > 0 {
		q.PassRate = ewma(q.PassRate, clampRatio(obs.PassRate))
	}
	if obs.GoodP > 0 {
		q.LastGoodP = obs.GoodP
	}
}

// Lookup returns a copy of the entry for fp, or ok=false when cold.
func (h *History) Lookup(fp string) (QueryHistory, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	q := h.queries[fp]
	if q == nil {
		return QueryHistory{}, false
	}
	return *q, true
}

// Len reports the number of fingerprints with recorded history.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.queries)
}

// Reset drops all recorded history (back to cold estimates).
func (h *History) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.queries = make(map[string]*QueryHistory)
}

// storedHistory is the on-disk envelope.
type storedHistory struct {
	Version int             `json:"version"`
	Queries []*QueryHistory `json:"queries"`
}

// Save serializes the history as versioned, sorted, indented JSON.
func (h *History) Save(w io.Writer) error {
	h.mu.Lock()
	out := storedHistory{Version: historyVersion}
	for _, q := range h.queries {
		cp := *q
		out.Queries = append(out.Queries, &cp)
	}
	h.mu.Unlock()
	sort.Slice(out.Queries, func(i, j int) bool {
		return out.Queries[i].Fingerprint < out.Queries[j].Fingerprint
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Load replaces the store's contents from Save output. A corrupted,
// truncated, or version-mismatched payload degrades to cold estimates
// (empty store, nil error): history is an optimization, never a
// correctness dependency.
func (h *History) Load(r io.Reader) error {
	var in storedHistory
	fresh := make(map[string]*QueryHistory)
	if err := json.NewDecoder(r).Decode(&in); err == nil && in.Version == historyVersion {
		for _, q := range in.Queries {
			if q != nil && q.Fingerprint != "" {
				cp := *q
				fresh[cp.Fingerprint] = &cp
			}
		}
	}
	h.mu.Lock()
	h.queries = fresh
	h.mu.Unlock()
	return nil
}
