package stats

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"quickr/internal/table"
)

func buildTable(rows int) *table.Table {
	sc := table.NewSchema(
		table.Column{Name: "id", Kind: table.KindInt},
		table.Column{Name: "grp", Kind: table.KindString},
		table.Column{Name: "val", Kind: table.KindFloat},
		table.Column{Name: "nul", Kind: table.KindInt},
	)
	t := table.New("tt", sc, 4)
	for i := 0; i < rows; i++ {
		nul := table.Null
		if i%4 == 0 {
			nul = table.NewInt(1)
		}
		grp := fmt.Sprintf("g%d", i%10)
		if i%3 == 0 {
			grp = "heavy" // ~33% heavy hitter
		}
		t.Append(i, table.Row{
			table.NewInt(int64(i)),
			table.NewString(grp),
			table.NewFloat(float64(i % 100)),
			nul,
		})
	}
	return t
}

func TestCollectBasics(t *testing.T) {
	tbl := buildTable(10000)
	ts := Collect(tbl)
	if ts.RowCount != 10000 {
		t.Fatalf("rowcount %d", ts.RowCount)
	}
	id := ts.Columns["id"]
	if rel := math.Abs(id.NDV-10000) / 10000; rel > 0.15 {
		t.Errorf("id NDV %.0f", id.NDV)
	}
	if id.Min.Int() != 0 || id.Max.Int() != 9999 {
		t.Errorf("id min/max %v %v", id.Min, id.Max)
	}
	grp := ts.Columns["grp"]
	if grp.NDV < 10 || grp.NDV > 12 {
		t.Errorf("grp NDV %.0f want 11", grp.NDV)
	}
	nul := ts.Columns["nul"]
	if nul.NullCount != 7500 {
		t.Errorf("null count %d want 7500", nul.NullCount)
	}
}

func TestCollectMoments(t *testing.T) {
	ts := Collect(buildTable(10000))
	val := ts.Columns["val"]
	// values are i%100: mean 49.5, variance (100²-1)/12 ≈ 833.25.
	if math.Abs(val.Avg-49.5) > 0.5 {
		t.Errorf("avg %.2f", val.Avg)
	}
	if math.Abs(val.Var-833.25) > 10 {
		t.Errorf("var %.2f", val.Var)
	}
}

func TestHeavyHitters(t *testing.T) {
	ts := Collect(buildTable(10000))
	grp := ts.Columns["grp"]
	if len(grp.Heavy) == 0 {
		t.Fatal("no heavy hitters found")
	}
	if grp.Heavy[0].Value.Str() != "heavy" {
		t.Errorf("top heavy hitter %v", grp.Heavy[0].Value)
	}
	if f := ts.HeavyFreq("grp", table.NewString("heavy")); f < 3000 || f > 3600 {
		t.Errorf("heavy freq %d want ~3334", f)
	}
	// g1 (~6.7% of rows) is also above the 1% heavy-hitter threshold.
	if f := ts.HeavyFreq("grp", table.NewString("g1")); f < 500 || f > 800 {
		t.Errorf("g1 freq %d want ~667", f)
	}
	if f := ts.HeavyFreq("missing_col", table.NewString("x")); f != 0 {
		t.Errorf("unknown column freq %d", f)
	}
}

func TestNDVSetPairs(t *testing.T) {
	ts := Collect(buildTable(10000))
	// (grp, val) is fully correlated through i: val=i%100 determines
	// grp=g(i%10) unless heavy (i%3==0), giving exactly ~200 observed
	// pairs — far below the 11×100 independence product. NDVSet must
	// count the observed pairs.
	pair := ts.NDVSet([]string{"grp", "val"})
	if pair < 150 || pair > 260 {
		t.Errorf("pair NDV %.0f want ~200 (observed, not the 1100 product)", pair)
	}
	if one := ts.NDVSet([]string{"grp"}); math.Abs(one-ts.Columns["grp"].NDV) > 0.5 {
		t.Errorf("single-column set NDV mismatch: %.1f", one)
	}
	if ts.NDVSet(nil) != 1 {
		t.Error("empty set NDV must be 1")
	}
	// Cached on second call (same value).
	if a, b := ts.NDVSet([]string{"val", "grp"}), ts.NDVSet([]string{"grp", "val"}); a != b {
		t.Errorf("column-order sensitivity: %v vs %v", a, b)
	}
}

func TestStoreCaching(t *testing.T) {
	s := NewStore()
	tbl := buildTable(1000)
	a := s.Get(tbl)
	b := s.Get(tbl)
	if a != b {
		t.Error("store must cache per table")
	}
	if _, ok := s.Lookup("tt"); !ok {
		t.Error("lookup by name failed")
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Error("lookup of unknown table must fail")
	}
}

func TestStatsPersistence(t *testing.T) {
	s := NewStore()
	tbl := buildTable(5000)
	orig := s.Get(tbl)
	orig.NDVSet([]string{"grp", "val"}) // populate a cached column set

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got, ok := restored.Lookup("tt")
	if !ok {
		t.Fatal("restored store missing table")
	}
	if got.RowCount != orig.RowCount || got.Bytes != orig.Bytes {
		t.Errorf("row/bytes mismatch: %d/%d vs %d/%d", got.RowCount, got.Bytes, orig.RowCount, orig.Bytes)
	}
	if math.Abs(got.Columns["id"].NDV-orig.Columns["id"].NDV) > 1e-9 {
		t.Errorf("NDV not preserved")
	}
	if got.Columns["val"].Avg != orig.Columns["val"].Avg || got.Columns["val"].Var != orig.Columns["val"].Var {
		t.Errorf("moments not preserved")
	}
	if f := got.HeavyFreq("grp", table.NewString("heavy")); f == 0 {
		t.Error("heavy hitters not preserved")
	}
	// Cached column-set NDV survives; the restored stats have no source
	// table, so the cached value must be served.
	if a, b := got.NDVSet([]string{"grp", "val"}), orig.NDVSet([]string{"grp", "val"}); a != b {
		t.Errorf("cached set NDV %v vs %v", a, b)
	}
	if err := restored.Load(strings.NewReader("not json")); err == nil {
		t.Error("bad JSON must error")
	}
	if err := restored.Load(strings.NewReader(`{"version":9}`)); err == nil {
		t.Error("unknown version must error")
	}
}
