// Package workload defines the query suites the experiments run: a
// TPC-DS-like suite mirroring the shapes the paper evaluates (fact–dim
// star joins, fact–fact joins on shared keys, group-bys of varying
// cardinality, *IF aggregates, COUNT DISTINCT, ORDER BY ... LIMIT 100),
// plus TPC-H-like and log-analytics ("Other") suites for the Table 9
// cross-benchmark comparison.
package workload

// Query is one benchmark query.
type Query struct {
	ID   string
	SQL  string
	Desc string
	// HasLimit marks queries whose answer is truncated by LIMIT after
	// ordering on an aggregate — the paper's Fig. 8b distinguishes
	// "full" answers (before LIMIT) from truncated ones.
	HasLimit bool
}

// TPCDSQueries returns the TPC-DS-like suite.
func TPCDSQueries() []Query {
	return []Query{
		{ID: "q01", Desc: "profit by item color and year (Fig. 1 style, 3 fact tables)", SQL: `
			SELECT i_color, d_year, SUM(ss_net_profit) AS profit, COUNT(DISTINCT ss_customer_sk) AS customers
			FROM store_sales
			JOIN store_returns ON ss_customer_sk = sr_customer_sk AND ss_item_sk = sr_item_sk
			JOIN catalog_sales ON ss_customer_sk = cs_bill_customer_sk
			JOIN item ON ss_item_sk = i_item_sk
			JOIN date_dim ON ss_sold_date_sk = d_date_sk
			GROUP BY i_color, d_year`},
		{ID: "q02", Desc: "sales by category and year", SQL: `
			SELECT i_category, d_year, SUM(ss_ext_sales_price) AS total, COUNT(*) AS cnt
			FROM store_sales
			JOIN item ON ss_item_sk = i_item_sk
			JOIN date_dim ON ss_sold_date_sk = d_date_sk
			GROUP BY i_category, d_year`},
		{ID: "q03", Desc: "brand revenue for one year, top 100", HasLimit: true, SQL: `
			SELECT i_brand, SUM(ss_ext_sales_price) AS revenue
			FROM store_sales
			JOIN item ON ss_item_sk = i_item_sk
			JOIN date_dim ON ss_sold_date_sk = d_date_sk
			WHERE d_year = 2001
			GROUP BY i_brand
			ORDER BY revenue DESC
			LIMIT 20`},
		{ID: "q04", Desc: "average quantity and profit per store state", SQL: `
			SELECT s_state, AVG(ss_quantity) AS avg_qty, AVG(ss_net_profit) AS avg_profit
			FROM store_sales
			JOIN store ON ss_store_sk = s_store_sk
			JOIN date_dim ON ss_sold_date_sk = d_date_sk
			WHERE d_year BETWEEN 2000 AND 2002
			GROUP BY s_state`},
		{ID: "q05", Desc: "returned vs sold quantity per item class", SQL: `
			SELECT i_class, SUM(sr_return_quantity) AS returned, COUNT(*) AS return_events
			FROM store_returns
			JOIN item ON sr_item_sk = i_item_sk
			GROUP BY i_class`},
		{ID: "q06", Desc: "customers per birth country with store purchases", SQL: `
			SELECT c_birth_country, COUNT(DISTINCT ss_customer_sk) AS buyers, COUNT(*) AS purchases
			FROM store_sales
			JOIN customer ON ss_customer_sk = c_customer_sk
			JOIN item ON ss_item_sk = i_item_sk
			WHERE i_category IN ('Books', 'Music', 'Sports')
			GROUP BY c_birth_country`},
		{ID: "q07", Desc: "store and web cross-channel customers (fact-fact on customer)", SQL: `
			SELECT d_year, COUNT(DISTINCT ss_customer_sk) AS cross_channel
			FROM store_sales
			JOIN web_sales ON ss_customer_sk = ws_bill_customer_sk
			JOIN date_dim ON ss_sold_date_sk = d_date_sk
			GROUP BY d_year`},
		{ID: "q08", Desc: "monthly sales seasonality", SQL: `
			SELECT d_moy, SUM(ss_ext_sales_price) AS total, AVG(ss_sales_price) AS avg_price
			FROM store_sales
			JOIN date_dim ON ss_sold_date_sk = d_date_sk
			GROUP BY d_moy`},
		{ID: "q09", Desc: "quantity buckets via SUMIF/COUNTIF", SQL: `
			SELECT s_state,
			       SUMIF(ss_quantity <= 5, ss_ext_sales_price) AS small_orders,
			       SUMIF(ss_quantity > 5, ss_ext_sales_price) AS big_orders,
			       COUNTIF(ss_quantity > 15) AS bulk_count
			FROM store_sales
			JOIN store ON ss_store_sk = s_store_sk
			JOIN date_dim ON ss_sold_date_sk = d_date_sk
			WHERE d_qoy IN (1, 2)
			GROUP BY s_state`},
		{ID: "q10", Desc: "returns rate per color (store facts joined on ticket+item)", SQL: `
			SELECT i_color, COUNT(*) AS returns_cnt, SUM(sr_return_amt) AS amt
			FROM store_sales
			JOIN store_returns ON ss_ticket_number = sr_ticket_number AND ss_item_sk = sr_item_sk
			JOIN item ON ss_item_sk = i_item_sk
			GROUP BY i_color`},
		{ID: "q11", Desc: "weekend vs weekday revenue", SQL: `
			SELECT d_weekend, SUM(ss_ext_sales_price) AS revenue, COUNT(*) AS cnt
			FROM store_sales
			JOIN date_dim ON ss_sold_date_sk = d_date_sk
			GROUP BY d_weekend`},
		{ID: "q12", Desc: "web revenue by category, one quarter", SQL: `
			SELECT i_category, SUM(ws_ext_sales_price) AS revenue
			FROM web_sales
			JOIN item ON ws_item_sk = i_item_sk
			JOIN date_dim ON ws_sold_date_sk = d_date_sk
			WHERE d_year = 2002 AND d_qoy = 1
			GROUP BY i_category`},
		{ID: "q13", Desc: "average catalog order value by priority bucket", SQL: `
			SELECT cs_warehouse_sk, AVG(cs_ext_sales_price) AS avg_value, COUNT(*) AS orders
			FROM catalog_sales
			GROUP BY cs_warehouse_sk`},
		{ID: "q14", Desc: "high-value customers, top 100 by spend", HasLimit: true, SQL: `
			SELECT ss_customer_sk, SUM(ss_ext_sales_price) AS spend
			FROM store_sales
			GROUP BY ss_customer_sk
			ORDER BY spend DESC
			LIMIT 100`},
		{ID: "q15", Desc: "web vs catalog per item (fact-fact on item)", SQL: `
			SELECT i_category, SUM(ws_ext_sales_price) AS web_rev, SUM(cs_ext_sales_price) AS cat_rev
			FROM web_sales
			JOIN catalog_sales ON ws_item_sk = cs_item_sk
			JOIN item ON ws_item_sk = i_item_sk
			GROUP BY i_category`},
		{ID: "q16", Desc: "gender split of preferred customers' purchases", SQL: `
			SELECT c_gender, COUNT(*) AS purchases, SUM(ss_ext_sales_price) AS revenue
			FROM store_sales
			JOIN customer ON ss_customer_sk = c_customer_sk
			JOIN date_dim ON ss_sold_date_sk = d_date_sk
			WHERE c_preferred_flag = TRUE AND d_year > 2000
			GROUP BY c_gender`},
		{ID: "q17", Desc: "unapproximable: per-ticket detail group", SQL: `
			SELECT ss_ticket_number, SUM(ss_ext_sales_price) AS amt
			FROM store_sales
			GROUP BY ss_ticket_number`},
		{ID: "q18", Desc: "unapproximable: MAX price per category", SQL: `
			SELECT i_category, MAX(ss_sales_price) AS max_price, MIN(ss_sales_price) AS min_price
			FROM store_sales
			JOIN item ON ss_item_sk = i_item_sk
			GROUP BY i_category`},
		{ID: "q19", Desc: "manager revenue for a size subset, top 100", HasLimit: true, SQL: `
			SELECT i_manager_id, SUM(ss_ext_sales_price) AS revenue
			FROM store_sales
			JOIN item ON ss_item_sk = i_item_sk
			WHERE i_size IN ('small', 'medium')
			GROUP BY i_manager_id
			ORDER BY revenue DESC
			LIMIT 25`},
		{ID: "q20", Desc: "promo effectiveness via email channel", SQL: `
			SELECT p_channel_email, SUM(ss_net_profit) AS profit, COUNT(*) AS cnt
			FROM store_sales
			JOIN promotion ON ss_promo_sk = p_promo_sk
			JOIN date_dim ON ss_sold_date_sk = d_date_sk
			WHERE d_weekend = FALSE
			GROUP BY p_channel_email`},
		{ID: "q21", Desc: "yearly web profit trend with filter on price", SQL: `
			SELECT d_year, SUM(ws_net_profit) AS profit
			FROM web_sales
			JOIN date_dim ON ws_sold_date_sk = d_date_sk
			WHERE ws_sales_price > 50
			GROUP BY d_year`},
		{ID: "q22", Desc: "small-input query (critical-path limited)", SQL: `
			SELECT w_state, SUM(w_sq_ft) AS space, COUNT(*) AS cnt
			FROM warehouse
			GROUP BY w_state`},
		{ID: "q23", Desc: "catalog+web returns union per item color", SQL: `
			SELECT i_color, SUM(ret_amt) AS total_returned
			FROM (
				SELECT cr_item_sk AS item_sk, cr_return_amount AS ret_amt FROM catalog_returns
				UNION ALL
				SELECT wr_item_sk AS item_sk, wr_return_amt AS ret_amt FROM web_returns
			) AS r
			JOIN item ON item_sk = i_item_sk
			GROUP BY i_color`},
		{ID: "q24", Desc: "store revenue per city and year", SQL: `
			SELECT s_city, d_year, SUM(ss_ext_sales_price) AS revenue
			FROM store_sales
			JOIN store ON ss_store_sk = s_store_sk
			JOIN date_dim ON ss_sold_date_sk = d_date_sk
			GROUP BY s_city, d_year`},
		{ID: "q25", Desc: "distinct items sold per store", SQL: `
			SELECT s_store_id, COUNT(DISTINCT ss_item_sk) AS items_sold
			FROM store_sales
			JOIN store ON ss_store_sk = s_store_sk
			GROUP BY s_store_id`},
		{ID: "q26", Desc: "orders returned on web (fact-fact on order+item)", SQL: `
			SELECT d_year, COUNT(DISTINCT ws_order_number) AS returned_orders, SUM(wr_return_amt) AS amt
			FROM web_sales
			JOIN web_returns ON ws_order_number = wr_order_number AND ws_item_sk = wr_item_sk
			JOIN date_dim ON ws_sold_date_sk = d_date_sk
			GROUP BY d_year`},
		{ID: "q27", Desc: "average discount effect by brand, filtered", HasLimit: true, SQL: `
			SELECT i_brand, AVG(ss_list_price - ss_sales_price) AS avg_discount
			FROM store_sales
			JOIN item ON ss_item_sk = i_item_sk
			WHERE ss_quantity BETWEEN 5 AND 15
			GROUP BY i_brand
			ORDER BY avg_discount DESC
			LIMIT 20`},
		{ID: "q28", Desc: "profit per category/class rollup level", SQL: `
			SELECT i_category, i_class, SUM(ss_net_profit) AS profit
			FROM store_sales
			JOIN item ON ss_item_sk = i_item_sk
			GROUP BY i_category, i_class`},
		{ID: "q29", Desc: "quarterly catalog sales with HAVING", SQL: `
			SELECT d_qoy, SUM(cs_ext_sales_price) AS revenue
			FROM catalog_sales
			JOIN date_dim ON cs_sold_date_sk = d_date_sk
			GROUP BY d_qoy
			HAVING SUM(cs_ext_sales_price) > 1000`},
		{ID: "q30", Desc: "store sales left join returns: unreturned revenue", SQL: `
			SELECT s_state, SUMIF(sr_ticket_number IS NULL, ss_ext_sales_price) AS kept_revenue,
			       COUNTIF(sr_ticket_number IS NOT NULL) AS returned_cnt
			FROM store_sales
			LEFT JOIN store_returns ON ss_ticket_number = sr_ticket_number AND ss_item_sk = sr_item_sk
			JOIN store ON ss_store_sk = s_store_sk
			GROUP BY s_state`},
		{ID: "q31", Desc: "birth-decade spending profile", SQL: `
			SELECT CEILDIV(c_birth_year, 10) AS decade, SUM(ss_ext_sales_price) AS spend, COUNT(*) AS cnt
			FROM store_sales
			JOIN customer ON ss_customer_sk = c_customer_sk
			GROUP BY CEILDIV(c_birth_year, 10)`},
		{ID: "q32", Desc: "three-channel customer count by year (Fig. 1 variant)", SQL: `
			SELECT d_year, COUNT(DISTINCT ss_customer_sk) AS customers, SUM(ss_net_profit) AS profit
			FROM store_sales
			JOIN store_returns ON ss_customer_sk = sr_customer_sk
			JOIN web_sales ON ss_customer_sk = ws_bill_customer_sk
			JOIN date_dim ON ss_sold_date_sk = d_date_sk
			GROUP BY d_year`},
		{ID: "q33", Desc: "color revenue, red-ish only (selective filter)", SQL: `
			SELECT i_color, SUM(ss_ext_sales_price) AS revenue
			FROM store_sales
			JOIN item ON ss_item_sk = i_item_sk
			WHERE i_color IN ('red', 'pink', 'maroon')
			GROUP BY i_color`},
		{ID: "q34", Desc: "day-name traffic profile", SQL: `
			SELECT d_day_name, COUNT(*) AS transactions, AVG(ss_quantity) AS avg_qty
			FROM store_sales
			JOIN date_dim ON ss_sold_date_sk = d_date_sk
			GROUP BY d_day_name`},
		{ID: "q35", Desc: "unapproximable: per item and day detail", SQL: `
			SELECT ss_item_sk, ss_sold_date_sk, SUM(ss_ext_sales_price) AS amt
			FROM store_sales
			GROUP BY ss_item_sk, ss_sold_date_sk`},
		{ID: "q36", Desc: "catalog profit by warehouse state", SQL: `
			SELECT w_state, SUM(cs_net_profit) AS profit
			FROM catalog_sales
			JOIN warehouse ON cs_warehouse_sk = w_warehouse_sk
			GROUP BY w_state`},
		{ID: "q37", Desc: "derived table: average of per-customer totals", SQL: `
			SELECT c_birth_country, AVG(spend) AS avg_spend
			FROM (
				SELECT ss_customer_sk AS cust, SUM(ss_ext_sales_price) AS spend
				FROM store_sales
				GROUP BY ss_customer_sk
			) AS per_cust
			JOIN customer ON cust = c_customer_sk
			GROUP BY c_birth_country`},
		{ID: "q38", Desc: "store vs catalog buyers per year (fact-fact on customer)", SQL: `
			SELECT d_year, COUNT(DISTINCT cs_bill_customer_sk) AS buyers, SUM(cs_ext_sales_price) AS rev
			FROM catalog_sales
			JOIN store_sales ON cs_bill_customer_sk = ss_customer_sk
			JOIN date_dim ON cs_sold_date_sk = d_date_sk
			GROUP BY d_year`},
		{ID: "q39", Desc: "price-tier revenue via CASE", SQL: `
			SELECT i_category,
			       SUMIF(ss_sales_price < 20, ss_ext_sales_price) AS budget_rev,
			       SUMIF(ss_sales_price >= 20 AND ss_sales_price < 60, ss_ext_sales_price) AS mid_rev,
			       SUMIF(ss_sales_price >= 60, ss_ext_sales_price) AS premium_rev
			FROM store_sales
			JOIN item ON ss_item_sk = i_item_sk
			GROUP BY i_category`},
		{ID: "q40", Desc: "web order size distribution, top 100", HasLimit: true, SQL: `
			SELECT ws_quantity, COUNT(*) AS cnt, AVG(ws_ext_sales_price) AS avg_rev
			FROM web_sales
			GROUP BY ws_quantity
			ORDER BY cnt DESC
			LIMIT 5`},
		{ID: "q41", Desc: "store traffic per market and gender", SQL: `
			SELECT s_market_id, c_gender, COUNT(*) AS visits
			FROM store_sales
			JOIN store ON ss_store_sk = s_store_sk
			JOIN customer ON ss_customer_sk = c_customer_sk
			JOIN date_dim ON ss_sold_date_sk = d_date_sk
			WHERE d_moy BETWEEN 3 AND 9
			GROUP BY s_market_id, c_gender`},
		{ID: "q43", Desc: "skewed-SUM: coupon spend per category (bucket stratification)", SQL: `
			SELECT i_category, SUM(ss_coupon_amt) AS coupons, COUNT(*) AS cnt
			FROM store_sales
			JOIN item ON ss_item_sk = i_item_sk
			GROUP BY i_category`},
		{ID: "q44", Desc: "windowed: rank states by revenue within each year", SQL: `
			SELECT st, yr, rev, RANK() OVER (PARTITION BY yr ORDER BY rev DESC) AS rk,
			       SUM(rev) OVER (PARTITION BY yr) AS year_total
			FROM (
				SELECT s_state AS st, d_year AS yr, SUM(ss_ext_sales_price) AS rev
				FROM store_sales
				JOIN store ON ss_store_sk = s_store_sk
				JOIN date_dim ON ss_sold_date_sk = d_date_sk
				GROUP BY s_state, d_year
			) AS per_state`},
		{ID: "q42", Desc: "returns by day name and year", SQL: `
			SELECT d_day_name, d_year, COUNT(*) AS returns_cnt, AVG(sr_return_amt) AS avg_amt
			FROM store_returns
			JOIN date_dim ON sr_returned_date_sk = d_date_sk
			GROUP BY d_day_name, d_year`},
	}
}
