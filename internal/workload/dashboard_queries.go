package workload

// DashboardQueries returns the repeated-query serving workload: the
// panels of an operations dashboard over the web log, each refreshed
// many times per reporting period. The panels deliberately share
// strata — they aggregate the same weblogs scan under different
// group-bys and filters — which is the shape the sample cache exploits:
// one materialized sampler output per distinct fragment serves every
// refresh of its panel. examples/dashboard drives this set
// interactively; quickr-bench -dashboard uses it as the serving-shape
// benchmark.
func DashboardQueries() []Query {
	return []Query{
		{ID: "d01", Desc: "traffic by country", SQL: `
			SELECT log_country, COUNT(*) AS hits, SUM(log_bytes) AS bytes
			FROM weblogs
			GROUP BY log_country`},
		{ID: "d02", Desc: "error rate by status", SQL: `
			SELECT log_status, COUNT(*) AS hits, AVG(log_latency_ms) AS avg_latency
			FROM weblogs
			GROUP BY log_status`},
		{ID: "d03", Desc: "latency SLO buckets", SQL: `
			SELECT log_country,
			       COUNTIF(log_latency_ms < 50) AS fast,
			       COUNTIF(log_latency_ms >= 50 AND log_latency_ms < 200) AS ok,
			       COUNTIF(log_latency_ms >= 200) AS slow
			FROM weblogs
			GROUP BY log_country`},
		{ID: "d04", Desc: "top pages", HasLimit: true, SQL: `
			SELECT log_url, COUNT(*) AS hits
			FROM weblogs
			GROUP BY log_url
			ORDER BY hits DESC
			LIMIT 10`},
		{ID: "d05", Desc: "error bandwidth by url (filtered fragment)", SQL: `
			SELECT log_url, SUM(log_bytes) AS bytes, COUNT(*) AS hits
			FROM weblogs
			WHERE log_status >= 400
			GROUP BY log_url`},
		{ID: "d06", Desc: "slow-request mix by status (filtered fragment)", SQL: `
			SELECT log_status, COUNT(*) AS hits, SUM(log_bytes) AS bytes
			FROM weblogs
			WHERE log_latency_ms >= 100
			GROUP BY log_status`},
	}
}
