package workload

import (
	"strings"
	"testing"

	"quickr/internal/sql"
)

func TestAllQueriesParse(t *testing.T) {
	suites := map[string][]Query{
		"tpcds": TPCDSQueries(),
		"tpch":  TPCHQueries(),
		"other": OtherQueries(),
	}
	seen := map[string]bool{}
	for name, qs := range suites {
		if len(qs) == 0 {
			t.Fatalf("%s: empty suite", name)
		}
		for _, q := range qs {
			if seen[q.ID] {
				t.Errorf("duplicate query id %s", q.ID)
			}
			seen[q.ID] = true
			if q.Desc == "" {
				t.Errorf("%s: missing description", q.ID)
			}
			stmt, err := sql.Parse(q.SQL)
			if err != nil {
				t.Errorf("%s does not parse: %v", q.ID, err)
				continue
			}
			if q.HasLimit && stmt.Limit < 0 {
				t.Errorf("%s: HasLimit set but no LIMIT clause", q.ID)
			}
			if !q.HasLimit && stmt.Limit >= 0 && len(stmt.OrderBy) > 0 {
				t.Errorf("%s: has ORDER BY ... LIMIT but HasLimit unset", q.ID)
			}
		}
	}
	if len(TPCDSQueries()) < 40 {
		t.Errorf("TPC-DS suite has only %d queries", len(TPCDSQueries()))
	}
}

func TestSuiteShapeDiversity(t *testing.T) {
	// The suite must exercise the paper's Table-1 surface: fact-fact
	// joins, COUNT DISTINCT, *IF aggregates, outer joins, unions,
	// derived tables and LIMIT queries.
	var joins, countDistinct, ifAggs, outer, unions, derived, limits int
	for _, q := range TPCDSQueries() {
		u := strings.ToUpper(q.SQL)
		if strings.Count(u, "JOIN ") >= 2 {
			joins++
		}
		if strings.Contains(u, "COUNT(DISTINCT") {
			countDistinct++
		}
		if strings.Contains(u, "SUMIF") || strings.Contains(u, "COUNTIF") {
			ifAggs++
		}
		if strings.Contains(u, "LEFT JOIN") {
			outer++
		}
		if strings.Contains(u, "UNION ALL") {
			unions++
		}
		if strings.Contains(u, "FROM (") {
			derived++
		}
		if q.HasLimit {
			limits++
		}
	}
	checks := map[string]int{
		"multi-join":     joins,
		"count distinct": countDistinct,
		"*IF aggregates": ifAggs,
		"outer join":     outer,
		"union all":      unions,
		"derived table":  derived,
		"limit":          limits,
	}
	for name, n := range checks {
		if n == 0 {
			t.Errorf("suite lacks %s queries", name)
		}
	}
}
