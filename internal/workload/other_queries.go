package workload

// TPCHQueries returns the TPC-H-like suite (used for Table 9's
// cross-benchmark characteristics; these queries are simpler than the
// TPC-DS-like ones, matching the paper's observation).
func TPCHQueries() []Query {
	return []Query{
		{ID: "h01", Desc: "pricing summary report (Q1-like)", SQL: `
			SELECT l_returnflag, SUM(l_quantity) AS sum_qty, SUM(l_extendedprice) AS sum_base,
			       AVG(l_discount) AS avg_disc, COUNT(*) AS count_order
			FROM lineitem
			GROUP BY l_returnflag`},
		{ID: "h03", Desc: "shipping priority (Q3-like)", HasLimit: true, SQL: `
			SELECT o_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue
			FROM lineitem
			JOIN orders ON l_orderkey = o_orderkey
			JOIN h_customer ON o_custkey = c_custkey
			WHERE c_mktsegment = 'BUILDING'
			GROUP BY o_orderkey
			ORDER BY revenue DESC
			LIMIT 100`},
		{ID: "h05", Desc: "local supplier volume (Q5-like)", SQL: `
			SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
			FROM lineitem
			JOIN orders ON l_orderkey = o_orderkey
			JOIN h_customer ON o_custkey = c_custkey
			JOIN nation ON c_nationkey = n_nationkey
			JOIN region ON n_regionkey = r_regionkey
			WHERE r_name = 'ASIA'
			GROUP BY n_name`},
		{ID: "h06", Desc: "forecasting revenue change (Q6-like)", SQL: `
			SELECT SUM(l_extendedprice * l_discount) AS revenue, COUNT(*) AS cnt
			FROM lineitem
			WHERE l_discount BETWEEN 0.02 AND 0.06 AND l_quantity < 24
			GROUP BY l_returnflag`},
		{ID: "h10", Desc: "returned item reporting (Q10-like)", HasLimit: true, SQL: `
			SELECT c_custkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue
			FROM lineitem
			JOIN orders ON l_orderkey = o_orderkey
			JOIN h_customer ON o_custkey = c_custkey
			WHERE l_returnflag = 'R'
			GROUP BY c_custkey
			ORDER BY revenue DESC
			LIMIT 100`},
		{ID: "h12", Desc: "priority shipping mix (Q12-like)", SQL: `
			SELECT o_orderpriority, COUNT(*) AS order_count, SUM(o_totalprice) AS value
			FROM orders
			GROUP BY o_orderpriority`},
		{ID: "h14", Desc: "promotion effect (Q14-like)", SQL: `
			SELECT SUMIF(p_type LIKE 'PROMO%', l_extendedprice * (1 - l_discount)) AS promo_rev,
			       SUM(l_extendedprice * (1 - l_discount)) AS total_rev
			FROM lineitem
			JOIN part ON l_partkey = p_partkey
			GROUP BY l_returnflag`},
		{ID: "h17", Desc: "small-quantity revenue per brand", SQL: `
			SELECT p_brand, AVG(l_extendedprice) AS avg_price, COUNT(*) AS cnt
			FROM lineitem
			JOIN part ON l_partkey = p_partkey
			WHERE l_quantity < 5
			GROUP BY p_brand`},
		{ID: "h18", Desc: "large volume customers", HasLimit: true, SQL: `
			SELECT o_custkey, SUM(l_quantity) AS total_qty
			FROM lineitem
			JOIN orders ON l_orderkey = o_orderkey
			GROUP BY o_custkey
			ORDER BY total_qty DESC
			LIMIT 100`},
		{ID: "h21", Desc: "supplier order mix by nation", SQL: `
			SELECT n_name, COUNT(*) AS lines, SUM(l_extendedprice) AS value
			FROM lineitem
			JOIN supplier ON l_suppkey = s_suppkey
			JOIN nation ON s_nationkey = n_nationkey
			GROUP BY n_name`},
	}
}

// OtherQueries returns the log-analytics suite standing in for the
// paper's "BigBench ∪ BigData ∪ ..." workloads: dashboard-style
// aggregations over a web request log.
func OtherQueries() []Query {
	return []Query{
		{ID: "o01", Desc: "traffic by country", SQL: `
			SELECT log_country, COUNT(*) AS hits, SUM(log_bytes) AS bytes
			FROM weblogs
			GROUP BY log_country`},
		{ID: "o02", Desc: "error rate per status", SQL: `
			SELECT log_status, COUNT(*) AS hits, AVG(log_latency_ms) AS avg_latency
			FROM weblogs
			GROUP BY log_status`},
		{ID: "o03", Desc: "top pages by traffic", HasLimit: true, SQL: `
			SELECT log_url, COUNT(*) AS hits
			FROM weblogs
			GROUP BY log_url
			ORDER BY hits DESC
			LIMIT 40`},
		{ID: "o04", Desc: "distinct users per country", SQL: `
			SELECT log_country, COUNT(DISTINCT log_uid) AS users
			FROM weblogs
			GROUP BY log_country`},
		{ID: "o05", Desc: "latency SLO buckets", SQL: `
			SELECT log_country,
			       COUNTIF(log_latency_ms < 50) AS fast,
			       COUNTIF(log_latency_ms >= 50 AND log_latency_ms < 200) AS ok,
			       COUNTIF(log_latency_ms >= 200) AS slow
			FROM weblogs
			GROUP BY log_country`},
		{ID: "o06", Desc: "bandwidth by url for errors", SQL: `
			SELECT log_url, SUM(log_bytes) AS bytes
			FROM weblogs
			WHERE log_status >= 400
			GROUP BY log_url`},
		{ID: "o07", Desc: "per-user session intensity", SQL: `
			SELECT log_uid, COUNT(*) AS hits
			FROM weblogs
			GROUP BY log_uid`},
		{ID: "o08", Desc: "global summary", SQL: `
			SELECT log_status, SUM(log_bytes) AS bytes, AVG(log_latency_ms) AS avg_ms, COUNT(*) AS n
			FROM weblogs
			GROUP BY log_status
			HAVING COUNT(*) > 10`},
	}
}
