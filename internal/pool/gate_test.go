package pool

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"quickr/internal/testutil"
)

func TestGateAdmitsWithinBudget(t *testing.T) {
	g := NewGate(100)
	a, err := g.Acquire(context.Background(), 60)
	if err != nil || a.Bytes != 60 {
		t.Fatalf("first acquire: %+v err=%v", a, err)
	}
	b, err := g.Acquire(context.Background(), 40)
	if err != nil || b.Bytes != 40 {
		t.Fatalf("second acquire: %+v err=%v", b, err)
	}
	g.Release(a)
	g.Release(b)
}

func TestGateClampsOversizedQuery(t *testing.T) {
	g := NewGate(100)
	// A query estimated above the whole budget is clamped so it runs
	// alone rather than queueing forever.
	a, err := g.Acquire(context.Background(), 1_000_000)
	if err != nil || a.Bytes != 100 {
		t.Fatalf("oversized acquire: %+v err=%v", a, err)
	}
	g.Release(a)
	if b, err := g.Acquire(context.Background(), 100); err != nil || b.Bytes != 100 {
		t.Fatalf("budget not restored after clamped release: %+v err=%v", b, err)
	}
}

// Over-budget queries queue and are admitted FIFO as budget frees.
func TestGateQueuesFIFO(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	g := NewGate(100)
	hold, err := g.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	started := make(chan struct{}, 2)
	for _, name := range []string{"A", "B"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			started <- struct{}{}
			// Each waiter needs the whole budget, so grants serialize:
			// the recorded order is exactly the admission order.
			a, err := g.Acquire(context.Background(), 100)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			g.Release(a)
		}(name)
		<-started
		// Give this waiter time to enqueue before the next, so arrival
		// order is deterministic.
		for {
			time.Sleep(time.Millisecond)
			g.mu.Lock()
			queued := len(g.waiters)
			g.mu.Unlock()
			if (name == "A" && queued >= 1) || (name == "B" && queued >= 2) {
				break
			}
		}
	}

	if a := order; len(a) != 0 {
		t.Fatalf("waiters admitted while budget held: %v", a)
	}
	g.Release(hold)
	wg.Wait()
	if len(order) != 2 || order[0] != "A" {
		t.Fatalf("admission order %v, want [A B]", order)
	}

	q := g.queuedWait()
	if q != 0 {
		t.Fatalf("%d waiters left queued", q)
	}
}

// queuedWait returns the current queue length (test helper).
func (g *Gate) queuedWait() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.waiters)
}

func TestGateCancelWhileQueuedReturnsBudget(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	g := NewGate(100)
	hold, err := g.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx, 50)
		done <- err
	}()
	for g.queuedWait() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire returned %v, want context.Canceled", err)
	}
	g.Release(hold)
	// The canceled waiter must not have consumed budget or wedged the
	// queue: a full-budget acquire succeeds immediately.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	a, err := g.Acquire(ctx2, 100)
	if err != nil {
		t.Fatalf("budget leaked after canceled waiter: %v", err)
	}
	g.Release(a)
}

func TestGateDeadlineWhileQueued(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	g := NewGate(10)
	hold, _ := g.Acquire(context.Background(), 10)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := g.Acquire(ctx, 5)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	g.Release(hold)
}

// Hammer the gate from many goroutines; under -race this proves the
// waiter queue and budget accounting stay consistent.
func TestGateConcurrentStress(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	g := NewGate(1000)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a, err := g.Acquire(context.Background(), int64(1+(w*37+i*13)%400))
				if err != nil {
					t.Error(err)
					return
				}
				g.Release(a)
			}
		}(w)
	}
	wg.Wait()
	if q := g.queuedWait(); q != 0 {
		t.Fatalf("%d waiters left queued", q)
	}
	a, err := g.Acquire(context.Background(), 1000)
	if err != nil {
		t.Fatalf("full budget not recoverable after stress: %v", err)
	}
	g.Release(a)
}
