package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"quickr/internal/testutil"
)

func TestRunVisitsEveryIndexOnce(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	p := New(4)
	defer p.Close()
	const n = 200
	var visits [n]int64
	st, err := p.Run(context.Background(), n, func(i int) error {
		atomic.AddInt64(&visits[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
	if st.Tasks != n {
		t.Fatalf("stats counted %d tasks, want %d", st.Tasks, n)
	}
	if st.Stolen < 0 || st.Stolen > n {
		t.Fatalf("stolen count %d out of range", st.Stolen)
	}
}

func TestRunSingleTaskInline(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	p := New(4)
	defer p.Close()
	// n==1 must run on the caller's goroutine: this unsynchronized
	// append is proven safe by the race detector.
	var got []int
	st, err := p.Run(context.Background(), 1, func(i int) error {
		got = append(got, i)
		return nil
	})
	if err != nil || len(got) != 1 || got[0] != 0 {
		t.Fatalf("inline run: err=%v got=%v", err, got)
	}
	if st.Tasks != 1 || st.Stolen != 0 {
		t.Fatalf("inline stats %+v", st)
	}
}

func TestRunZeroTasks(t *testing.T) {
	p := New(2)
	defer p.Close()
	called := false
	if _, err := p.Run(context.Background(), 0, func(int) error { called = true; return nil }); err != nil || called {
		t.Fatalf("zero tasks: err=%v called=%v", err, called)
	}
}

// After a task fails, every started task still completes before Run
// returns (teardown always finishes) and unstarted tasks are skipped.
func TestRunFailFastCompletesStartedTasks(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	p := New(4)
	defer p.Close()
	sentinel := errors.New("task failed")
	var started, finished atomic.Int64
	st, err := p.Run(context.Background(), 500, func(i int) error {
		started.Add(1)
		defer finished.Add(1)
		if i == 0 {
			return fmt.Errorf("part %d: %w", i, sentinel)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("expected sentinel error, got %v", err)
	}
	if started.Load() != finished.Load() {
		t.Fatalf("Run returned with %d started but only %d finished", started.Load(), finished.Load())
	}
	if int(started.Load()) != st.Tasks {
		t.Fatalf("stats counted %d tasks, %d actually started", st.Tasks, started.Load())
	}
	// Task 0 is the caller's first claim, so the error lands before most
	// of the 500 tasks are handed out.
	if st.Tasks == 500 {
		t.Fatal("fail-fast did not skip any unstarted tasks")
	}
}

func TestRunCanceledBeforeSubmitRunsNothing(t *testing.T) {
	p := New(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := p.Run(ctx, 64, func(i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if st.Tasks != 0 {
		t.Fatalf("%d tasks ran after pre-canceled context", st.Tasks)
	}
}

// Cancellation mid-job stops further claims: tasks claimed before the
// cancel finish, the rest never start, and Run reports context.Canceled.
func TestRunCancelMidJobSkipsRemainder(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	p := New(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 10_000
	var ran atomic.Int64
	st, err := p.Run(ctx, n, func(i int) error {
		ran.Add(1)
		if i == 0 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if got := ran.Load(); got == n {
		t.Fatal("cancellation skipped no tasks")
	}
	if int(ran.Load()) != st.Tasks {
		t.Fatalf("stats %d vs ran %d", st.Tasks, ran.Load())
	}
}

// Many concurrent jobs share the fixed worker set; every job's every
// index runs exactly once (raced under -race).
func TestRunConcurrentJobsShareWorkers(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	p := New(4)
	defer p.Close()
	const jobs, tasks = 16, 64
	var visits [jobs][tasks]int64
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			_, errs[j] = p.Run(context.Background(), tasks, func(i int) error {
				atomic.AddInt64(&visits[j][i], 1)
				return nil
			})
		}(j)
	}
	wg.Wait()
	for j := 0; j < jobs; j++ {
		if errs[j] != nil {
			t.Fatalf("job %d: %v", j, errs[j])
		}
		for i := 0; i < tasks; i++ {
			if visits[j][i] != 1 {
				t.Fatalf("job %d index %d visited %d times", j, i, visits[j][i])
			}
		}
	}
}

// Nested Run calls (a task that itself fans out on the same pool) must
// not deadlock even when the pool has a single worker: callers always
// claim their own tasks.
func TestRunNestedDoesNotDeadlock(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	p := New(1)
	defer p.Close()
	var inner atomic.Int64
	_, err := p.Run(context.Background(), 8, func(i int) error {
		_, err := p.Run(context.Background(), 8, func(j int) error {
			inner.Add(1)
			return nil
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if inner.Load() != 64 {
		t.Fatalf("inner tasks ran %d times, want 64", inner.Load())
	}
}

// A closed pool still completes jobs on the caller's goroutine.
func TestRunAfterCloseDrainsOnCaller(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	p := New(2)
	p.Close()
	var ran atomic.Int64
	st, err := p.Run(context.Background(), 32, func(i int) error {
		ran.Add(1)
		return nil
	})
	if err != nil || ran.Load() != 32 {
		t.Fatalf("closed-pool run: err=%v ran=%d", err, ran.Load())
	}
	if st.Stolen != 0 {
		t.Fatalf("closed pool stole %d tasks", st.Stolen)
	}
}
