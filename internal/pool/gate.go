package pool

import (
	"context"
	"sync"
	"time"

	"quickr/internal/metrics"
)

// Gate is a byte-budget admission controller: each query acquires its
// estimated in-flight memory before executing, and queries that would
// push the total over budget wait in FIFO order instead of running and
// risking an OOM. A single query estimated above the whole budget is
// clamped to it, so it eventually runs alone rather than queueing
// forever.
type Gate struct {
	mu     sync.Mutex
	budget int64
	// guarded-by: mu
	used int64
	// guarded-by: mu
	waiters []*waiter // FIFO
}

type waiter struct {
	need  int64
	ready chan struct{}
	done  bool
}

// NewGate creates a gate with the given byte budget (values < 1 select
// an effectively unlimited budget).
func NewGate(budget int64) *Gate {
	if budget < 1 {
		budget = 1 << 62
	}
	return &Gate{budget: budget}
}

// Budget returns the configured byte budget.
func (g *Gate) Budget() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.budget
}

// Admission reports how one query fared at the gate.
type Admission struct {
	// Bytes is the admitted (possibly clamped) byte reservation.
	Bytes int64
	// QueuedNanos is the time spent waiting for budget.
	QueuedNanos int64
}

// Acquire reserves bytes of budget, waiting until enough is free or ctx
// is done. On success the caller must Release the returned admission.
func (g *Gate) Acquire(ctx context.Context, bytes int64) (Admission, error) {
	if bytes < 0 {
		bytes = 0
	}
	g.mu.Lock()
	if bytes > g.budget {
		bytes = g.budget
	}
	if len(g.waiters) == 0 && g.used+bytes <= g.budget {
		g.used += bytes
		g.mu.Unlock()
		metrics.AdmittedBytes.Add(bytes)
		return Admission{Bytes: bytes}, nil
	}
	w := &waiter{need: bytes, ready: make(chan struct{})}
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()
	metrics.QueuedQueries.Add(1)
	t0 := time.Now()

	select {
	case <-w.ready:
		metrics.QueuedQueries.Add(-1)
		metrics.AdmittedBytes.Add(bytes)
		return Admission{Bytes: bytes, QueuedNanos: int64(time.Since(t0))}, nil
	case <-ctx.Done():
		g.mu.Lock()
		if w.done {
			// Lost the race: admission was granted concurrently; give the
			// budget back before reporting cancellation.
			g.used -= w.need
			g.grantLocked()
		} else {
			for i, q := range g.waiters {
				if q == w {
					g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
					break
				}
			}
		}
		g.mu.Unlock()
		metrics.QueuedQueries.Add(-1)
		return Admission{}, ctx.Err()
	}
}

// Release returns an admission's bytes to the budget and admits as many
// queued queries as now fit, in arrival order.
func (g *Gate) Release(a Admission) {
	if a.Bytes == 0 {
		// Zero-byte admissions still went through Acquire; nothing to
		// return, but queued waiters may be unblocked by other releases.
		return
	}
	metrics.AdmittedBytes.Add(-a.Bytes)
	g.mu.Lock()
	g.used -= a.Bytes
	g.grantLocked()
	g.mu.Unlock()
}

// grantLocked admits waiting queries from the queue head while they
// fit.
// caller-holds: g.mu
func (g *Gate) grantLocked() {
	for len(g.waiters) > 0 {
		w := g.waiters[0]
		if g.used+w.need > g.budget {
			return
		}
		g.used += w.need
		w.done = true
		g.waiters = g.waiters[1:]
		close(w.ready)
	}
}
