// Package pool provides the process-wide execution resources shared by
// every in-flight query: a size-capped work-stealing worker pool that
// replaces per-query ad-hoc goroutine fan-out, and a byte-budget
// admission gate that queues queries whose estimated in-flight memory
// would not fit.
//
// The pool runs one persistent worker goroutine per configured slot.
// Each Run submission becomes a job — a dense range of task indexes —
// and the calling goroutine immediately starts claiming its own tasks
// while idle workers steal tasks from the oldest submitted job (FIFO
// across jobs, so N concurrent queries share the fixed worker set
// instead of spawning N×partitions goroutines). Because the caller
// always participates, a job makes progress even when every worker is
// busy with other queries, so the pool cannot deadlock under nesting or
// saturation.
package pool

import (
	"context"
	"runtime"
	"sync"
	"time"

	"quickr/internal/metrics"
)

// Pool is a fixed-size work-stealing worker pool.
type Pool struct {
	mu   sync.Mutex
	cond *sync.Cond
	// jobs holds jobs that still have unclaimed tasks, oldest first.
	// guarded-by: mu
	jobs    []*job
	workers int
	// guarded-by: mu
	closed bool
}

// New creates a pool with the given number of persistent workers
// (values < 1 select GOMAXPROCS).
func New(workers int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	metrics.PoolWorkers.Add(int64(workers))
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide shared pool, creating it (with
// GOMAXPROCS workers) on first use.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = New(0) })
	return defaultPool
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops the pool's workers once running tasks finish. Jobs still
// holding unclaimed tasks continue on their callers' goroutines; Close
// is intended for tests — the process-wide Default pool is never
// closed.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		metrics.PoolWorkers.Add(int64(-p.workers))
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Stats reports scheduling telemetry for one Run call.
type Stats struct {
	// Tasks is the number of tasks that actually started.
	Tasks int
	// Stolen counts tasks executed by pool workers rather than the
	// submitting goroutine.
	Stolen int
	// WaitNanos is the coordinator's scheduling wait: the delay between
	// job submission and the first task starting, plus the time spent
	// blocked at the end waiting for tasks stolen by pool workers to
	// finish. Both are real waits of the submitting goroutine — time
	// the job spent scheduled-but-not-computing on behalf of the query.
	WaitNanos int64
}

// job is one Run submission: tasks [0,n) claimed one at a time under
// the pool mutex by the caller and by stealing workers.
type job struct {
	p  *Pool
	fn func(i int) error

	ctx       context.Context
	n         int
	next      int // next unclaimed task; == n when exhausted
	inflight  int // claimed but not yet finished
	listed    bool
	submitted time.Time

	err      error // first task error or ctx error
	stats    Stats
	done     chan struct{}
	finished bool
}

// claimLocked hands out the next task index, or ok=false when the job
// is exhausted, a task failed, or the job's context is done.
// caller-holds: j.p.mu
func (j *job) claimLocked(stolen bool) (int, bool) {
	if j.next >= j.n || j.err != nil {
		j.delistLocked()
		return 0, false
	}
	if err := j.ctx.Err(); err != nil {
		j.err = err
		j.delistLocked()
		return 0, false
	}
	i := j.next
	j.next++
	j.inflight++
	j.stats.Tasks++
	if stolen {
		j.stats.Stolen++
	}
	if j.stats.Tasks == 1 {
		j.stats.WaitNanos += int64(time.Since(j.submitted))
	}
	if j.next >= j.n {
		j.delistLocked()
	}
	return i, true
}

// delistLocked removes the job from the pool's steal list.
// caller-holds: j.p.mu
func (j *job) delistLocked() {
	if !j.listed {
		return
	}
	j.listed = false
	for k, q := range j.p.jobs {
		if q == j {
			j.p.jobs = append(j.p.jobs[:k], j.p.jobs[k+1:]...)
			break
		}
	}
	metrics.PoolQueuedJobs.Add(-1)
}

// finishLocked records a task completion and signals waiters when the
// job has fully drained (no unclaimed and no in-flight tasks).
// caller-holds: j.p.mu
func (j *job) finishLocked(err error) {
	j.inflight--
	if err != nil && j.err == nil {
		j.err = err
		j.delistLocked() // fail fast: no further claims
	}
	if j.inflight == 0 && (j.next >= j.n || j.err != nil) && !j.finished {
		j.finished = true
		close(j.done)
	}
}

// run executes one claimed task outside the pool mutex.
func (j *job) run(i int) {
	metrics.PoolRunningTasks.Add(1)
	err := j.fn(i)
	metrics.PoolRunningTasks.Add(-1)
	metrics.PoolCompletedTasks.Add(1)
	j.p.mu.Lock()
	j.finishLocked(err)
	j.p.mu.Unlock()
}

// worker is the persistent steal loop: take the oldest job with
// unclaimed tasks, claim one, run it.
func (p *Pool) worker() {
	p.mu.Lock()
	for {
		for len(p.jobs) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		j := p.jobs[0]
		i, ok := j.claimLocked(true)
		p.mu.Unlock()
		if ok {
			j.run(i)
		}
		p.mu.Lock()
	}
}

// Run executes fn(i) for every i in [0,n) on the shared pool and the
// calling goroutine, returning the first error. It returns only after
// every started task has finished (teardown always completes); after an
// error or context cancellation, unstarted tasks are skipped and the
// context's error is returned verbatim (context.Canceled or
// context.DeadlineExceeded) so callers can map it to typed query
// errors. n <= 1 runs inline on the caller with no scheduling cost.
func (p *Pool) Run(ctx context.Context, n int, fn func(i int) error) (Stats, error) {
	if n <= 0 {
		return Stats{}, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	if n == 1 {
		if err := fn(0); err != nil {
			return Stats{Tasks: 1}, err
		}
		return Stats{Tasks: 1}, ctx.Err()
	}

	j := &job{p: p, fn: fn, ctx: ctx, n: n, submitted: time.Now(), done: make(chan struct{})}
	p.mu.Lock()
	if !p.closed {
		j.listed = true
		p.jobs = append(p.jobs, j)
		metrics.PoolQueuedJobs.Add(1)
		p.cond.Broadcast()
	}
	// The caller claims tasks from its own job until none remain.
	for {
		i, ok := j.claimLocked(false)
		p.mu.Unlock()
		if !ok {
			break
		}
		j.run(i)
		p.mu.Lock()
	}

	// Wait for stolen in-flight tasks. The job is already delisted, so
	// nothing new can start.
	p.mu.Lock()
	if j.inflight == 0 && !j.finished {
		j.finished = true
		close(j.done)
	}
	p.mu.Unlock()
	t := time.Now()
	<-j.done

	p.mu.Lock()
	stats := j.stats
	err := j.err
	p.mu.Unlock()
	if stats.Stolen > 0 {
		stats.WaitNanos += int64(time.Since(t))
	}
	return stats, err
}
