// Package profiling wires runtime/pprof into the CLIs: -cpuprofile and
// -memprofile flags on quickr and quickr-bench write profiles that `go
// tool pprof` reads directly, for attributing executor time and
// allocations (join build/probe, group lookup, window partitioning) to
// source lines. The query service additionally serves live profiles on
// /debug/pprof.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (empty = disabled) and
// returns a stop function that ends the CPU profile and writes a heap
// profile to memPath (empty = disabled). Call stop on the successful
// exit path; profiles are intentionally best-effort on error exits.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	stop := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recently-freed objects so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}
	return stop, nil
}
