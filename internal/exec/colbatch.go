package exec

// Batch is the column-major unit of data flowing through the vectorized
// pipeline (Options.Columnar). It mirrors the row-mode batch exactly:
// the live rows of a Batch — the lanes covered by sel, in sel order —
// correspond one-to-one, in order, with the []wrow the row-at-a-time
// pipeline would carry at the same operator boundary.
//
//   - cols holds one Vector per column, positionally aligned with the
//     row layout at this point in the pipeline.
//   - n is the physical lane count of each column.
//   - sel is the selection vector: ascending physical lane indexes of
//     the live rows. nil means all n lanes are live (dense).
//   - weights holds the Horvitz–Thompson weight of each physical lane;
//     samplers scale it in place as they thin sel.
//   - bytes is the in-flight size of the live rows, matching row mode's
//     batch.bytes (sum of per-row ByteSize()+8).
//
// Dead lanes (outside sel) hold unspecified zero/NULL payloads; kernels
// may compute them, and must never read them back for live results.
type Batch struct {
	cols    []Vector
	n       int
	sel     []int32
	weights []float64
	bytes   float64
}

// Len returns the number of live rows.
func (b *Batch) Len() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// liveSel returns the live lanes as an explicit selection, using buf
// when the batch is dense. The result must not be retained past the
// batch.
func (b *Batch) liveSel(buf []int32) []int32 {
	if b.sel != nil {
		return b.sel
	}
	buf = buf[:0]
	for i := 0; i < b.n; i++ {
		buf = append(buf, int32(i))
	}
	return buf
}

// liveBytes recomputes the in-flight size of the live rows selected by
// sel: per row, the per-column value bytes plus the 8-byte weight field
// (matching newWRow's sz).
func liveBytes(cols []Vector, sel []int32) float64 {
	total := 8 * float64(len(sel))
	for c := range cols {
		total += cols[c].bytesSel(sel)
	}
	return total
}

// gatherRow materializes physical lane i as an arena-backed row plus
// its cached size, identical to newWRow(row, w) in row mode.
//
//hot:per-lane row materialization at pipeline sinks
func gatherRow(a *rowArena, cols []Vector, lane int32, w float64) wrow {
	row := a.alloc(len(cols))
	sz := 8
	for c := range cols {
		row = append(row, cols[c].Value(int(lane)))
		sz += cols[c].laneBytes(int(lane))
	}
	return wrow{row: row, w: w, sz: float64(sz)}
}

// materialize converts the live rows of a batch to []wrow, appending to
// out. Only pipeline sinks (breaker boundaries) call this.
//
//hot:batch sink materialization, gated by the columnar micro benches
func (b *Batch) materialize(a *rowArena, out []wrow) []wrow {
	if b.sel != nil {
		for _, lane := range b.sel {
			out = append(out, gatherRow(a, b.cols, lane, b.weights[lane]))
		}
		return out
	}
	for i := 0; i < b.n; i++ {
		out = append(out, gatherRow(a, b.cols, int32(i), b.weights[i]))
	}
	return out
}
