// Package exec compiles optimized logical plans into partitioned
// physical plans and executes them, producing real answers while
// accounting simulated cluster costs (machine-hours, runtime,
// intermediate and shuffled data) through internal/cluster.
package exec

import (
	"fmt"
	"strings"

	"quickr/internal/lplan"
	"quickr/internal/table"
)

// colMap resolves ColumnIDs to row positions for one operator input.
type colMap map[lplan.ColumnID]int

func buildColMap(cols []lplan.ColumnInfo) colMap {
	m := make(colMap, len(cols))
	for i, c := range cols {
		if _, dup := m[c.ID]; !dup {
			m[c.ID] = i
		}
	}
	return m
}

// evalFunc evaluates a compiled expression against a row.
type evalFunc func(r table.Row) table.Value

// compileExpr compiles a bound expression to a closure over row
// positions. It returns an error when a referenced column is not
// produced by the input.
func compileExpr(e lplan.Expr, cm colMap) (evalFunc, error) {
	switch x := e.(type) {
	case *lplan.ColRef:
		i, ok := cm[x.ID]
		if !ok {
			return nil, fmt.Errorf("exec: column %s#%d not available", x.Name, x.ID)
		}
		return func(r table.Row) table.Value { return r[i] }, nil
	case *lplan.Const:
		v := x.Val
		return func(table.Row) table.Value { return v }, nil
	case *lplan.Binary:
		l, err := compileExpr(x.L, cm)
		if err != nil {
			return nil, err
		}
		rr, err := compileExpr(x.R, cm)
		if err != nil {
			return nil, err
		}
		op := x.Op
		switch op {
		case lplan.OpAnd:
			return func(r table.Row) table.Value {
				lv := l(r)
				if lv.Kind() == table.KindBool && !lv.Bool() {
					return table.NewBool(false)
				}
				rv := rr(r)
				if rv.Kind() == table.KindBool && !rv.Bool() {
					return table.NewBool(false)
				}
				if lv.IsNull() || rv.IsNull() {
					return table.NewBool(false)
				}
				return table.NewBool(lv.Bool() && rv.Bool())
			}, nil
		case lplan.OpOr:
			return func(r table.Row) table.Value {
				lv := l(r)
				if lv.Kind() == table.KindBool && lv.Bool() {
					return table.NewBool(true)
				}
				rv := rr(r)
				if rv.Kind() == table.KindBool && rv.Bool() {
					return table.NewBool(true)
				}
				return table.NewBool(false)
			}, nil
		case lplan.OpAdd:
			return func(r table.Row) table.Value { return table.Add(l(r), rr(r)) }, nil
		case lplan.OpSub:
			return func(r table.Row) table.Value { return table.Sub(l(r), rr(r)) }, nil
		case lplan.OpMul:
			return func(r table.Row) table.Value { return table.Mul(l(r), rr(r)) }, nil
		case lplan.OpDiv:
			return func(r table.Row) table.Value { return table.Div(l(r), rr(r)) }, nil
		case lplan.OpMod:
			return func(r table.Row) table.Value { return table.Mod(l(r), rr(r)) }, nil
		default: // comparisons
			return func(r table.Row) table.Value {
				lv, rv := l(r), rr(r)
				if lv.IsNull() || rv.IsNull() {
					return table.NewBool(false)
				}
				c := lv.Compare(rv)
				var out bool
				switch op {
				case lplan.OpEq:
					out = lv.Equal(rv)
				case lplan.OpNe:
					out = !lv.Equal(rv)
				case lplan.OpLt:
					out = c < 0
				case lplan.OpLe:
					out = c <= 0
				case lplan.OpGt:
					out = c > 0
				case lplan.OpGe:
					out = c >= 0
				}
				return table.NewBool(out)
			}, nil
		}
	case *lplan.Not:
		in, err := compileExpr(x.X, cm)
		if err != nil {
			return nil, err
		}
		return func(r table.Row) table.Value {
			v := in(r)
			if v.Kind() != table.KindBool {
				return table.NewBool(false)
			}
			return table.NewBool(!v.Bool())
		}, nil
	case *lplan.Neg:
		in, err := compileExpr(x.X, cm)
		if err != nil {
			return nil, err
		}
		return func(r table.Row) table.Value {
			v := in(r)
			switch v.Kind() {
			case table.KindInt:
				return table.NewInt(-v.Int())
			case table.KindFloat:
				return table.NewFloat(-v.Float())
			}
			return table.Null
		}, nil
	case *lplan.Func:
		args := make([]evalFunc, len(x.Args))
		for i, a := range x.Args {
			f, err := compileExpr(a, cm)
			if err != nil {
				return nil, err
			}
			args[i] = f
		}
		name := x.Name
		return func(r table.Row) table.Value {
			vals := make([]table.Value, len(args))
			for i, f := range args {
				vals[i] = f(r)
			}
			return lplan.CallFunc(name, vals)
		}, nil
	case *lplan.In:
		in, err := compileExpr(x.X, cm)
		if err != nil {
			return nil, err
		}
		set := make(map[string]bool, len(x.Vals))
		for _, v := range x.Vals {
			set[v.Key()] = true
		}
		inv := x.Inv
		return func(r table.Row) table.Value {
			v := in(r)
			if v.IsNull() {
				return table.NewBool(false)
			}
			return table.NewBool(set[v.Key()] != inv)
		}, nil
	case *lplan.IsNull:
		in, err := compileExpr(x.X, cm)
		if err != nil {
			return nil, err
		}
		inv := x.Inv
		return func(r table.Row) table.Value {
			return table.NewBool(in(r).IsNull() != inv)
		}, nil
	case *lplan.Like:
		in, err := compileExpr(x.X, cm)
		if err != nil {
			return nil, err
		}
		match := compileLike(x.Pattern)
		inv := x.Inv
		return func(r table.Row) table.Value {
			v := in(r)
			if v.Kind() != table.KindString {
				return table.NewBool(false)
			}
			return table.NewBool(match(v.Str()) != inv)
		}, nil
	case *lplan.Case:
		conds := make([]evalFunc, len(x.Whens))
		thens := make([]evalFunc, len(x.Whens))
		for i, w := range x.Whens {
			c, err := compileExpr(w.Cond, cm)
			if err != nil {
				return nil, err
			}
			t, err := compileExpr(w.Then, cm)
			if err != nil {
				return nil, err
			}
			conds[i], thens[i] = c, t
		}
		var els evalFunc
		if x.Else != nil {
			f, err := compileExpr(x.Else, cm)
			if err != nil {
				return nil, err
			}
			els = f
		}
		return func(r table.Row) table.Value {
			for i, c := range conds {
				v := c(r)
				if v.Kind() == table.KindBool && v.Bool() {
					return thens[i](r)
				}
			}
			if els != nil {
				return els(r)
			}
			return table.Null
		}, nil
	}
	return nil, fmt.Errorf("exec: cannot compile expression %T", e)
}

// compileLike builds a matcher for a SQL LIKE pattern with % and _.
func compileLike(pattern string) func(string) bool {
	// Fast paths for the common shapes.
	if !strings.ContainsAny(pattern, "%_") {
		return func(s string) bool { return s == pattern }
	}
	if strings.Count(pattern, "%") == 1 && !strings.Contains(pattern, "_") {
		switch {
		case strings.HasSuffix(pattern, "%"):
			p := pattern[:len(pattern)-1]
			return func(s string) bool { return strings.HasPrefix(s, p) }
		case strings.HasPrefix(pattern, "%"):
			p := pattern[1:]
			return func(s string) bool { return strings.HasSuffix(s, p) }
		}
	}
	// General recursive matcher.
	var match func(s, p string) bool
	match = func(s, p string) bool {
		for len(p) > 0 {
			switch p[0] {
			case '%':
				for len(p) > 0 && p[0] == '%' {
					p = p[1:]
				}
				if len(p) == 0 {
					return true
				}
				for i := 0; i <= len(s); i++ {
					if match(s[i:], p) {
						return true
					}
				}
				return false
			case '_':
				if len(s) == 0 {
					return false
				}
				s, p = s[1:], p[1:]
			default:
				if len(s) == 0 || s[0] != p[0] {
					return false
				}
				s, p = s[1:], p[1:]
			}
		}
		return len(s) == 0
	}
	return func(s string) bool { return match(s, pattern) }
}

// truthy reports whether a predicate result is true.
func truthy(v table.Value) bool {
	return v.Kind() == table.KindBool && v.Bool()
}
