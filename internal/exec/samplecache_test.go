package exec

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"quickr/internal/cluster"
	"quickr/internal/lplan"
	"quickr/internal/metrics"
	"quickr/internal/table"
)

// sampleOver builds a uniform sampler fragment over the given input.
func sampleOver(in PNode, p float64, seed uint64) *PSample {
	return &PSample{In: in, Def: lplan.SamplerDef{Type: lplan.SamplerUniform, P: p}, Seed: seed}
}

func TestCacheableFragmentShapes(t *testing.T) {
	tbl, _ := buildT("cf", 2, [][2]float64{{1, 10}, {2, 20}, {3, 30}})
	scan := scanOf(tbl)
	kCol := scan.OutCols[0]
	gt := &lplan.Binary{Op: lplan.OpGt,
		L: &lplan.ColRef{ID: kCol.ID, Name: "k", Kind: table.KindInt},
		R: &lplan.Const{Val: table.NewInt(1)}}

	cases := []struct {
		name string
		frag PNode
		want bool
	}{
		{"sampler over scan", sampleOver(scan, 0.5, 7), true},
		{"sampler over filter over scan", sampleOver(&PFilter{In: scan, Pred: gt}, 0.5, 7), true},
		{"sampler over sampler over scan", sampleOver(sampleOver(scan, 0.5, 1), 0.5, 2), true},
		{"pass-through sampler", &PSample{In: scan, Def: lplan.SamplerDef{Type: lplan.SamplerPassThrough, P: 1}}, false},
		{"p = 0", sampleOver(scan, 0, 7), false},
		{"p = 1", sampleOver(scan, 1, 7), false},
		{"bare scan", scan, false},
		{"sampler over breaker", sampleOver(&PExchange{In: scan, Parts: 1}, 0.5, 7), false},
	}
	for _, c := range cases {
		if got := CacheableFragment(c.frag); got != c.want {
			t.Errorf("%s: CacheableFragment = %v, want %v", c.name, got, c.want)
		}
	}
	if s := FragmentScan(sampleOver(&PFilter{In: scan, Pred: gt}, 0.5, 7)); s != scan {
		t.Errorf("FragmentScan did not find the base scan: %v", s)
	}
}

func TestFragmentKeySensitivity(t *testing.T) {
	tbl, _ := buildT("fk", 2, [][2]float64{{1, 10}, {2, 20}})
	build := func(mut func(s *PSample, sc *PScan)) string {
		sc := scanOf(tbl)
		frag := sampleOver(sc, 0.25, 9)
		mut(frag, sc)
		return FragmentKey(frag)
	}
	base := build(func(*PSample, *PScan) {})
	if again := build(func(*PSample, *PScan) {}); again != base {
		t.Fatalf("identical fragments produced different keys:\n%s\n%s", base, again)
	}
	variants := map[string]string{
		"different p":    build(func(s *PSample, _ *PScan) { s.Def.P = 0.5 }),
		"different seed": build(func(s *PSample, _ *PScan) { s.Seed = 10 }),
		"universe seed":  build(func(s *PSample, _ *PScan) { s.Def.Seed = 42 }),
		"sampler type": build(func(s *PSample, sc *PScan) {
			s.Def.Type = lplan.SamplerDistinct
			s.Def.Cols = []lplan.ColumnID{sc.OutCols[0].ID}
		}),
		"prune subset": build(func(_ *PSample, sc *PScan) {
			sc.Prune = &PrunedScan{Keep: []int{0}, Inflate: []float64{2}, Pruned: 1, TailP: 0.5}
		}),
		"fewer scan cols": build(func(_ *PSample, sc *PScan) { sc.ColIdx = sc.ColIdx[:1]; sc.OutCols = sc.OutCols[:1] }),
	}
	for name, key := range variants {
		if key == base {
			t.Errorf("%s: key did not change from base %q", name, base)
		}
	}
}

// cachedFixture materializes n single-column rows into cached parts of a
// known, deterministic byte size for LRU tests.
func cachedFixture(n int) []CachedPart {
	part := make([]wrow, n)
	for i := range part {
		part[i] = newWRow(table.Row{table.NewFloat(float64(i))}, 1)
	}
	return materializeCached([][]wrow{part}, 1)
}

func TestSampleCacheLRUAndAdmission(t *testing.T) {
	parts := cachedFixture(10)
	entryBytes := cachedPartBytes(&parts[0]) + 2 // keys below are all 2 bytes
	// Budget fits exactly eight entries; admission rejects anything over
	// a quarter of the budget, so each entry is comfortably admitted.
	c := NewSampleCache(8 * entryBytes)

	c.Put("a0", cachedFixture(10))
	c.Put("b0", cachedFixture(10))
	if c.Len() != 2 || c.Bytes() != 2*entryBytes {
		t.Fatalf("after two puts: len=%d bytes=%d want 2 x %d", c.Len(), c.Bytes(), entryBytes)
	}
	if _, ok := c.Get("a0"); !ok {
		t.Fatal("a0 missing after put")
	}

	// Fill to the budget, then one more: the LRU victim must be b (a was
	// just touched).
	evict0 := metrics.SampleCacheEvictions.Load()
	for i := 0; i < 7; i++ {
		c.Put(fmt.Sprintf("f%d", i), cachedFixture(10))
	}
	if _, ok := c.Get("b0"); ok {
		t.Error("b0 survived eviction although it was least recently used")
	}
	if _, ok := c.Get("a0"); !ok {
		t.Error("a0 evicted although it was most recently used")
	}
	if got := metrics.SampleCacheEvictions.Load() - evict0; got == 0 {
		t.Error("eviction gauge did not move")
	}
	if c.Bytes() > c.Budget() {
		t.Errorf("cache over budget: %d > %d", c.Bytes(), c.Budget())
	}

	// Admission control: an entry above budget/4 is rejected, not admitted.
	rej0 := metrics.SampleCacheRejects.Load()
	before := c.Len()
	c.Put("giant", cachedFixture(100))
	if c.Len() != before {
		t.Error("oversized entry was admitted")
	}
	if metrics.SampleCacheRejects.Load() == rej0 {
		t.Error("reject gauge did not move for oversized entry")
	}
	if _, ok := c.Get("giant"); ok {
		t.Error("oversized entry retrievable after rejection")
	}

	c.Purge()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("purge left len=%d bytes=%d", c.Len(), c.Bytes())
	}
	if _, ok := c.Get("a0"); ok {
		t.Error("a0 retrievable after purge")
	}
}

func TestCachedRoundTripBitIdentical(t *testing.T) {
	rows := []wrow{
		newWRow(table.Row{table.NewInt(7), table.NewFloat(1.5), table.NewString("x")}, 4.0),
		newWRow(table.Row{table.NewInt(-1), table.NewFloat(math.Inf(1)), table.NewString("")}, 0.125),
		newWRow(table.Row{table.NewInt(0), table.Null, table.NewString("y")}, 1.0),
	}
	orig := [][]wrow{rows, nil}
	cached := materializeCached(orig, 3)

	check := func(parts [][]wrow) {
		t.Helper()
		if len(parts) != 2 || len(parts[0]) != len(rows) || len(parts[1]) != 0 {
			t.Fatalf("part shape: %d parts, %d rows", len(parts), len(parts[0]))
		}
		for i, r := range parts[0] {
			want := rows[i]
			if math.Float64bits(r.w) != math.Float64bits(want.w) {
				t.Errorf("row %d weight %v != %v", i, r.w, want.w)
			}
			for c := range want.row {
				got, exp := r.row[c], want.row[c]
				if got.IsNull() != exp.IsNull() || fmt.Sprintf("%v", got) != fmt.Sprintf("%v", exp) {
					t.Errorf("row %d col %d: %v != %v", i, c, got, exp)
				}
			}
		}
	}
	first := cachedToParts(cached)
	check(first)

	// Replays allocate fresh rows: trashing one replay must not corrupt
	// the cache or a later replay.
	for i := range first[0] {
		first[0][i].row[0] = table.NewInt(999)
		first[0][i].w = -1
	}
	check(cachedToParts(cached))
}

// cachedAggPlan builds SUM(v)/COUNT(*) over a cached uniform sampler on
// tbl. Identical (seed, key) plans must produce identical results
// whether served cold, from the lazy fallback, or from a warm cache.
func cachedAggPlan(tbl *table.Table, seed uint64) PNode {
	scan := scanOf(tbl)
	v := scan.OutCols[1]
	frag := sampleOver(scan, 0.5, seed)
	cs := &PCachedSample{Frag: frag, Key: FragmentKey(frag), SamplerP: 0.5}
	nextID += 2
	return &PHashAgg{
		In: &PExchange{In: cs, Parts: 1},
		Aggs: []lplan.AggSpec{
			{Kind: lplan.AggCount, Arg: lplan.NoColumn, Out: lplan.ColumnInfo{ID: nextID - 1, Name: "c", Kind: table.KindInt}},
			{Kind: lplan.AggSum, Arg: v.ID, Out: lplan.ColumnInfo{ID: nextID, Name: "s", Kind: table.KindFloat}},
		},
		Est: &EstimatorConfig{Type: lplan.SamplerUniform, P: 0.5},
		Top: true,
	}
}

func TestExecCachedSampleWarmReplayBitIdentical(t *testing.T) {
	var rows [][2]float64
	for i := 0; i < 4000; i++ {
		rows = append(rows, [2]float64{float64(i), float64(i) * 1.25})
	}
	tbl, _ := buildT("warm", 4, rows)

	runWith := func(sc *SampleCache) *Result {
		t.Helper()
		res, err := RunWithOptions(context.Background(), cachedAggPlan(tbl, 11), cluster.DefaultConfig(), nil, Options{SampleCache: sc})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fp := func(r *Result) string {
		var b []string
		for _, row := range r.Rows {
			b = append(b, fmt.Sprintf("%v", row))
		}
		return fmt.Sprintf("%v", b)
	}

	lazy := runWith(nil) // no cache: the pure lazy path is the reference

	sc := NewSampleCache(64 << 20)
	hits0 := metrics.SampleCacheHits.Load()
	cold := runWith(sc) // miss: runs the fragment, populates
	if sc.Len() != 1 {
		t.Fatalf("cache holds %d entries after cold run, want 1", sc.Len())
	}
	warm := runWith(sc) // hit: replays materialized output
	if metrics.SampleCacheHits.Load() == hits0 {
		t.Fatal("warm run recorded no cache hit")
	}
	if fp(cold) != fp(lazy) {
		t.Errorf("cold cached run diverges from lazy path:\n%s\n%s", fp(cold), fp(lazy))
	}
	if fp(warm) != fp(cold) {
		t.Errorf("warm replay diverges from cold run:\n%s\n%s", fp(warm), fp(cold))
	}

	// A different sampler seed is a different key: no false sharing.
	res2, err := RunWithOptions(context.Background(), cachedAggPlan(tbl, 12), cluster.DefaultConfig(), nil, Options{SampleCache: sc})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Len() != 2 {
		t.Errorf("cache holds %d entries after second seed, want 2", sc.Len())
	}
	if fp(res2) == fp(warm) {
		t.Error("different seed produced identical sample (suspicious key collision)")
	}
}

// TestSampleCacheTinyBudgetFallsBackLazily drives the eviction/rejection
// path: with a budget too small to admit anything, every run is a miss
// that still answers correctly off the lazy fragment.
func TestSampleCacheTinyBudgetFallsBackLazily(t *testing.T) {
	var rows [][2]float64
	for i := 0; i < 2000; i++ {
		rows = append(rows, [2]float64{float64(i), float64(i)})
	}
	tbl, _ := buildT("tiny", 4, rows)
	sc := NewSampleCache(1) // admission rejects everything (> budget/4)

	lazyRes, err := RunWithOptions(context.Background(), cachedAggPlan(tbl, 5), cluster.DefaultConfig(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rej0 := metrics.SampleCacheRejects.Load()
	for i := 0; i < 3; i++ {
		res, err := RunWithOptions(context.Background(), cachedAggPlan(tbl, 5), cluster.DefaultConfig(), nil, Options{SampleCache: sc})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%v", res.Rows) != fmt.Sprintf("%v", lazyRes.Rows) {
			t.Fatalf("run %d under rejecting cache diverges from lazy path", i)
		}
	}
	if sc.Len() != 0 {
		t.Errorf("cache admitted %d entries under a 1-byte budget", sc.Len())
	}
	if metrics.SampleCacheRejects.Load() == rej0 {
		t.Error("reject gauge did not move")
	}
}

// TestSampleCacheConcurrentHammer races Get/Put/Purge on one cache; run
// under -race it proves the cache's own synchronization.
func TestSampleCacheConcurrentHammer(t *testing.T) {
	c := NewSampleCache(1 << 20)
	keys := []string{"k0", "k1", "k2", "k3", "k4"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keys[(w+i)%len(keys)]
				switch {
				case i%17 == 0:
					c.Purge()
				case i%3 == 0:
					c.Put(k, cachedFixture(8))
				default:
					if parts, ok := c.Get(k); ok {
						// A hit must always be replayable.
						if got := cachedToParts(parts); len(got) != 1 || len(got[0]) != 8 {
							t.Errorf("corrupt hit for %s", k)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Bytes() < 0 {
		t.Errorf("negative byte accounting: %d", c.Bytes())
	}
}
