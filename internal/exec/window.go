package exec

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"quickr/internal/lplan"
	"quickr/internal/table"
)

// PWindow computes window functions (paper Table 1 "Others"): each
// input row gains one column per spec. The planner co-partitions the
// input on the shared PARTITION BY columns (or gathers when the specs
// have none/different ones), so each task sees whole window partitions.
type PWindow struct {
	In    PNode
	Specs []lplan.WinSpec
}

// Cols implements PNode.
func (p *PWindow) Cols() []lplan.ColumnInfo {
	out := append([]lplan.ColumnInfo{}, p.In.Cols()...)
	for _, s := range p.Specs {
		out = append(out, s.Out)
	}
	return out
}

// Kids implements PNode.
func (p *PWindow) Kids() []PNode { return []PNode{p.In} }

// Describe implements PNode.
func (p *PWindow) Describe() string {
	parts := make([]string, len(p.Specs))
	for i, s := range p.Specs {
		parts[i] = s.Kind.String()
	}
	return "Window [" + strings.Join(parts, ",") + "]"
}

// Breaker implements PNode: window functions sort whole partitions.
func (p *PWindow) Breaker() bool { return true }

func (ex *executor) execWindow(p *PWindow) (*stream, error) {
	s, err := ex.exec(p.In)
	if err != nil {
		return nil, err
	}
	ex.ensureStage(s, "window")
	cm := buildColMap(p.In.Cols())
	op := ex.opFor(p)
	op.Grow(len(s.parts))
	t0 := time.Now()
	if err := ex.parallel(len(s.parts), func(i int) error {
		part := s.parts[i]
		// One appended value per spec per row, in input order first; the
		// final row order within the task follows the last spec's
		// partition/order sort (deterministic).
		extra := make([][]table.Value, len(p.Specs))
		for si, spec := range p.Specs {
			vals, err := computeWindow(spec, cm, part)
			if err != nil {
				return err
			}
			extra[si] = vals
		}
		out := make([]wrow, len(part))
		var outBytes float64
		for j, r := range part {
			row := make(table.Row, 0, len(r.row)+len(p.Specs))
			row = append(row, r.row...)
			for si := range p.Specs {
				row = append(row, extra[si][j])
			}
			out[j] = newWRow(row, r.w)
			outBytes += out[j].sz
		}
		s.parts[i] = out
		cost := float64(len(part))
		if cost > 1 {
			s.stage.AddCPU(i, 2*cost*logf(len(part)))
		}
		sl := op.Slot(i)
		sl.RowsIn += int64(len(part))
		sl.RowsOut += int64(len(out))
		if len(out) > 0 {
			sl.NoteBatch(outBytes)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	op.AddWall(time.Since(t0))
	return s, nil
}

// computeWindow returns, for one spec, the output value for each input
// row (indexed like part).
func computeWindow(spec lplan.WinSpec, cm colMap, part []wrow) ([]table.Value, error) {
	partIdx := make([]int, len(spec.PartitionBy))
	for i, id := range spec.PartitionBy {
		pos, ok := cm[id]
		if !ok {
			return nil, fmt.Errorf("exec: window partition column #%d missing", id)
		}
		partIdx[i] = pos
	}
	orderIdx := make([]int, len(spec.OrderBy))
	for i, k := range spec.OrderBy {
		pos, ok := cm[k.Col]
		if !ok {
			return nil, fmt.Errorf("exec: window order column #%d missing", k.Col)
		}
		orderIdx[i] = pos
	}
	argIdx := -1
	if spec.Arg != lplan.NoColumn {
		pos, ok := cm[spec.Arg]
		if !ok {
			return nil, fmt.Errorf("exec: window argument column #%d missing", spec.Arg)
		}
		argIdx = pos
	}

	// Group row indexes by partition key: canonical 64-bit hash into an
	// open-addressing index (equality verified against a representative
	// row on collision), so already-seen partitions cost no allocation
	// beyond the growing index slice. Each group's legacy string key is
	// built once to reproduce the historical partition order.
	hidx := newHashIndex(16)
	var rowLists [][]int
	var skeys []string
	var reps []int
	var keyBuf []byte
	for j, r := range part {
		h := hashRowKey(r.row, partIdx)
		e := hidx.probe(h, func(i int) bool { return rowKeyEqualRows(part[reps[i]].row, r.row, partIdx) })
		if e < 0 {
			keyBuf = appendRowKey(keyBuf[:0], r.row, partIdx)
			e = hidx.add(h)
			rowLists = append(rowLists, nil)
			skeys = append(skeys, string(keyBuf))
			reps = append(reps, j)
		}
		rowLists[e] = append(rowLists[e], j)
	}
	order := make([]int, len(skeys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return skeys[order[a]] < skeys[order[b]] })

	out := make([]table.Value, len(part))
	for _, gi := range order {
		idxs := rowLists[gi]
		// Sort partition rows by the ORDER BY keys (stable; ties broken
		// by full row compare for determinism).
		sort.SliceStable(idxs, func(a, b int) bool {
			ra, rb := part[idxs[a]].row, part[idxs[b]].row
			for oi, key := range spec.OrderBy {
				c := ra[orderIdx[oi]].Compare(rb[orderIdx[oi]])
				if key.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return table.CompareRows(ra, rb) < 0
		})
		computePartition(spec, part, idxs, orderIdx, argIdx, out)
	}
	return out, nil
}

// computePartition fills out[...] for one sorted window partition.
func computePartition(spec lplan.WinSpec, part []wrow, idxs []int, orderIdx []int, argIdx int, out []table.Value) {
	peers := func(a, b int) bool {
		// Rows are peers when all ORDER BY keys are equal.
		ra, rb := part[idxs[a]].row, part[idxs[b]].row
		for _, oi := range orderIdx {
			if ra[oi].Compare(rb[oi]) != 0 {
				return false
			}
		}
		return true
	}

	switch spec.Kind {
	case lplan.WinRowNumber:
		for n, j := range idxs {
			out[j] = table.NewInt(int64(n + 1))
		}
		return
	case lplan.WinRank:
		rank := 1
		for n, j := range idxs {
			if n > 0 && !peers(n-1, n) {
				rank = n + 1
			}
			out[j] = table.NewInt(int64(rank))
		}
		return
	}

	// Aggregate window functions. Without ORDER BY the frame is the
	// whole partition; with ORDER BY it is the running prefix including
	// the current row's peers (RANGE UNBOUNDED PRECEDING..CURRENT ROW).
	running := len(spec.OrderBy) > 0
	var sum float64
	var cnt int64
	minV, maxV := table.Null, table.Null
	consume := func(j int) {
		var v table.Value = table.Null
		if argIdx >= 0 {
			v = part[j].row[argIdx]
		}
		switch spec.Kind {
		case lplan.WinCount:
			if argIdx < 0 || !v.IsNull() {
				cnt++
			}
		default:
			if v.IsNull() {
				return
			}
			sum += v.Float()
			cnt++
			if minV.IsNull() || v.Compare(minV) < 0 {
				minV = v
			}
			if maxV.IsNull() || v.Compare(maxV) > 0 {
				maxV = v
			}
		}
	}
	emit := func() table.Value {
		switch spec.Kind {
		case lplan.WinSum:
			if cnt == 0 {
				return table.Null
			}
			if spec.Out.Kind == table.KindInt {
				return table.NewInt(int64(sum))
			}
			return table.NewFloat(sum)
		case lplan.WinCount:
			return table.NewInt(cnt)
		case lplan.WinAvg:
			if cnt == 0 {
				return table.Null
			}
			return table.NewFloat(sum / float64(cnt))
		case lplan.WinMin:
			return minV
		case lplan.WinMax:
			return maxV
		}
		return table.Null
	}

	if !running {
		for _, j := range idxs {
			consume(j)
		}
		v := emit()
		for _, j := range idxs {
			out[j] = v
		}
		return
	}
	// Running frame: advance in peer groups.
	n := 0
	for n < len(idxs) {
		end := n + 1
		for end < len(idxs) && peers(n, end) {
			end++
		}
		for m := n; m < end; m++ {
			consume(idxs[m])
		}
		v := emit()
		for m := n; m < end; m++ {
			out[idxs[m]] = v
		}
		n = end
	}
}
