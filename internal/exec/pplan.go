package exec

import (
	"fmt"
	"strings"

	"quickr/internal/lplan"
	"quickr/internal/table"
)

// PNode is a physical plan operator. The physical planner (internal/opt)
// decides join strategies, exchange placement and degrees of parallelism
// and emits this algebra; the executor runs it.
type PNode interface {
	Cols() []lplan.ColumnInfo
	Kids() []PNode
	Describe() string
	// Breaker reports whether the operator is a pipeline breaker: it
	// must see (or hand off) whole partitions and therefore materializes
	// its input, ending the fused streaming pipeline below it. Scans,
	// filters, projections and samplers stream batch-at-a-time and
	// return false; exchanges, joins, aggregations, sorts, limits,
	// unions and windows return true. The planner and executor both key
	// off this marker, so stages map one-to-one onto fused pipelines.
	Breaker() bool
}

// PrunedScan records the optimizer's partition-selection decision for a
// scan: only the Keep partitions are read, and each kept partition's
// rows have their weight multiplied by the aligned Inflate factor.
// Certainty-stratum partitions (heavy hitters, sole holders of a group
// key) carry inflation 1; tail partitions are subsampled without
// replacement at probability TailP and inflated 1/TailP so aggregates
// stay Horvitz–Thompson-unbiased.
type PrunedScan struct {
	// Keep lists the stored partition indexes to scan, ascending.
	Keep []int
	// Inflate aligns with Keep: the weight multiplier for each kept
	// partition (1 for the certainty stratum, 1/TailP for the tail).
	Inflate []float64
	// Pruned counts the partitions skipped (total − len(Keep)).
	Pruned int
	// TailP is the tail-partition inclusion probability in (0, 1].
	TailP float64
	// TailTotal is the tail-stratum size before subsampling.
	TailTotal int
}

// PScan reads a base table, one task per stored partition. ColIdx
// projects stored rows onto the (possibly pruned) output columns.
type PScan struct {
	Tbl     *table.Table
	OutCols []lplan.ColumnInfo
	ColIdx  []int
	// WeightIdx, when ≥0, names the stored column holding per-row
	// sampling weights (apriori samples); it is consumed into the row
	// weight rather than projected.
	WeightIdx int
	// Prune, when set, restricts the scan to a weighted partition
	// subset chosen by the optimizer's partition-selection pass.
	Prune *PrunedScan
}

// Cols implements PNode.
func (p *PScan) Cols() []lplan.ColumnInfo { return p.OutCols }

// Kids implements PNode.
func (p *PScan) Kids() []PNode { return nil }

// Describe implements PNode.
func (p *PScan) Describe() string {
	d := "Scan " + p.Tbl.Name
	if p.Prune != nil {
		d += fmt.Sprintf(" [prune %d/%d parts, tail p=%.2g]",
			len(p.Prune.Keep), len(p.Prune.Keep)+p.Prune.Pruned, p.Prune.TailP)
	}
	return d
}

// Breaker implements PNode.
func (p *PScan) Breaker() bool { return false }

// PFilter applies a predicate.
type PFilter struct {
	In   PNode
	Pred lplan.Expr
}

// Cols implements PNode.
func (p *PFilter) Cols() []lplan.ColumnInfo { return p.In.Cols() }

// Kids implements PNode.
func (p *PFilter) Kids() []PNode { return []PNode{p.In} }

// Describe implements PNode.
func (p *PFilter) Describe() string { return "Filter " + p.Pred.String() }

// Breaker implements PNode.
func (p *PFilter) Breaker() bool { return false }

// PProject computes expressions.
type PProject struct {
	In      PNode
	Exprs   []lplan.Expr
	OutCols []lplan.ColumnInfo
}

// Cols implements PNode.
func (p *PProject) Cols() []lplan.ColumnInfo { return p.OutCols }

// Kids implements PNode.
func (p *PProject) Kids() []PNode { return []PNode{p.In} }

// Describe implements PNode.
func (p *PProject) Describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project " + strings.Join(parts, ", ")
}

// Breaker implements PNode.
func (p *PProject) Breaker() bool { return false }

// PSample runs a physical sampler over its input, in place in the
// current stage (samplers are streaming and partitionable, §4.1).
type PSample struct {
	In  PNode
	Def lplan.SamplerDef
	// Seed differentiates sampler instances between plan locations; the
	// per-partition instance seed is Seed^partition except for universe
	// samplers which must agree across instances and locations.
	Seed uint64
}

// Cols implements PNode.
func (p *PSample) Cols() []lplan.ColumnInfo { return p.In.Cols() }

// Kids implements PNode.
func (p *PSample) Kids() []PNode { return []PNode{p.In} }

// Describe implements PNode.
func (p *PSample) Describe() string { return "Sample " + p.Def.String() }

// Breaker implements PNode.
func (p *PSample) Breaker() bool { return false }

// PExchange repartitions its input. With Keys it hash-partitions into
// Parts partitions; without Keys it gathers (Parts=1) or round-robins.
// Exchanges are the stage boundaries of the cluster simulation: input
// tasks write their output (intermediate data) and the data crosses the
// network (shuffled data).
type PExchange struct {
	In    PNode
	Keys  []lplan.ColumnID
	Parts int
}

// Cols implements PNode.
func (p *PExchange) Cols() []lplan.ColumnInfo { return p.In.Cols() }

// Kids implements PNode.
func (p *PExchange) Kids() []PNode { return []PNode{p.In} }

// Describe implements PNode.
func (p *PExchange) Describe() string {
	if len(p.Keys) == 0 {
		return fmt.Sprintf("Exchange gather(parts=%d)", p.Parts)
	}
	return fmt.Sprintf("Exchange hash%v parts=%d", p.Keys, p.Parts)
}

// Breaker implements PNode.
func (p *PExchange) Breaker() bool { return true }

// PHashJoin joins Left and Right. The Right side is always the build
// side. Broadcast=true gathers and replicates the build side to every
// probe task (for small/dimension inputs); otherwise the planner has
// co-partitioned both inputs on the join keys with exchanges.
type PHashJoin struct {
	Kind      lplan.JoinKind
	Left      PNode
	Right     PNode
	LeftKeys  []lplan.ColumnID
	RightKeys []lplan.ColumnID
	Residual  lplan.Expr
	Broadcast bool
	// SharedUniverseP is set (to the sampling probability p) when both
	// inputs carry the same universe sampler: the joined weight is then
	// corrected from 1/p² to 1/p, because the join of two p-probability
	// universe samples is a p-probability sample of the join (§4.1.3).
	SharedUniverseP float64
	// EstOutRows is the optimizer's estimated join output cardinality
	// (0 when unknown); the executor preallocates probe-output buffers
	// from it instead of growing per-row appends.
	EstOutRows float64
}

// Cols implements PNode.
func (p *PHashJoin) Cols() []lplan.ColumnInfo {
	out := append([]lplan.ColumnInfo{}, p.Left.Cols()...)
	return append(out, p.Right.Cols()...)
}

// Kids implements PNode.
func (p *PHashJoin) Kids() []PNode { return []PNode{p.Left, p.Right} }

// Describe implements PNode.
func (p *PHashJoin) Describe() string {
	mode := "shuffle"
	if p.Broadcast {
		mode = "broadcast"
	}
	return fmt.Sprintf("HashJoin(%s,%s) %v=%v", p.Kind, mode, p.LeftKeys, p.RightKeys)
}

// Breaker implements PNode.
func (p *PHashJoin) Breaker() bool { return true }

// EstimatorConfig tells the final aggregation how to compute confidence
// intervals: the dominance analysis (§4.3) reduces the sampled plan to a
// single equivalent sampler at the root, described here.
type EstimatorConfig struct {
	Type lplan.SamplerType
	// P is the effective end-to-end sampling probability.
	P float64
	// UniverseCols are the universe-sampled columns (group variance is
	// computed over subspace subgroups; COUNT DISTINCT over these columns
	// is scaled up by 1/P, Table 8).
	UniverseCols []lplan.ColumnID
	// Partition-pruning terms, set when the optimizer pruned a scan
	// feeding this estimator: PartP is the tail-partition inclusion
	// probability, PartTail the number of tail partitions actually
	// read, and PartTailFrac the fraction of table rows held by the
	// tail stratum. Zero values mean no pruning; the accuracy layer
	// folds these into per-group variance as a cluster-sampling term.
	PartP        float64
	PartTail     int
	PartTailFrac float64
}

// PHashAgg groups and aggregates. The planner co-partitions input on
// the group columns (or gathers when there are none). When Est is set,
// aggregates are Horvitz–Thompson estimates with variance tracking.
type PHashAgg struct {
	In        PNode
	GroupCols []lplan.ColumnID
	GroupInfo []lplan.ColumnInfo
	Aggs      []lplan.AggSpec
	Est       *EstimatorConfig
	// Top marks the aggregate whose estimates are exposed on the result.
	Top bool
}

// Cols implements PNode.
func (p *PHashAgg) Cols() []lplan.ColumnInfo {
	out := append([]lplan.ColumnInfo{}, p.GroupInfo...)
	for _, a := range p.Aggs {
		out = append(out, a.Out)
	}
	return out
}

// Kids implements PNode.
func (p *PHashAgg) Kids() []PNode { return []PNode{p.In} }

// Describe implements PNode.
func (p *PHashAgg) Describe() string {
	parts := make([]string, len(p.Aggs))
	for i, a := range p.Aggs {
		parts[i] = a.Kind.String()
	}
	d := fmt.Sprintf("HashAgg group=%v aggs=[%s]", p.GroupCols, strings.Join(parts, ","))
	if p.Est != nil {
		d += fmt.Sprintf(" est=%s(p=%.3g)", p.Est.Type, p.Est.P)
	}
	return d
}

// Breaker implements PNode.
func (p *PHashAgg) Breaker() bool { return true }

// PSort sorts (the planner gathers to one partition first).
type PSort struct {
	In   PNode
	Keys []lplan.SortKey
}

// Cols implements PNode.
func (p *PSort) Cols() []lplan.ColumnInfo { return p.In.Cols() }

// Kids implements PNode.
func (p *PSort) Kids() []PNode { return []PNode{p.In} }

// Describe implements PNode.
func (p *PSort) Describe() string { return fmt.Sprintf("Sort %v", p.Keys) }

// Breaker implements PNode.
func (p *PSort) Breaker() bool { return true }

// PLimit truncates to N rows (applied on a single partition).
type PLimit struct {
	In PNode
	N  int64
}

// Cols implements PNode.
func (p *PLimit) Cols() []lplan.ColumnInfo { return p.In.Cols() }

// Kids implements PNode.
func (p *PLimit) Kids() []PNode { return []PNode{p.In} }

// Describe implements PNode.
func (p *PLimit) Describe() string { return fmt.Sprintf("Limit %d", p.N) }

// Breaker implements PNode.
func (p *PLimit) Breaker() bool { return true }

// PUnion concatenates inputs positionally.
type PUnion struct {
	Ins     []PNode
	OutCols []lplan.ColumnInfo
}

// Cols implements PNode.
func (p *PUnion) Cols() []lplan.ColumnInfo { return p.OutCols }

// Kids implements PNode.
func (p *PUnion) Kids() []PNode { return p.Ins }

// Describe implements PNode.
func (p *PUnion) Describe() string { return fmt.Sprintf("UnionAll(%d)", len(p.Ins)) }

// Breaker implements PNode.
func (p *PUnion) Breaker() bool { return true }

// FormatPlan renders the physical plan as an indented tree.
func FormatPlan(n PNode) string {
	var b strings.Builder
	var rec func(PNode, int)
	rec = func(n PNode, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Describe())
		b.WriteByte('\n')
		for _, k := range n.Kids() {
			rec(k, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}

// WalkP visits the physical plan in pre-order.
func WalkP(n PNode, fn func(PNode)) {
	if n == nil {
		return
	}
	fn(n)
	for _, k := range n.Kids() {
		WalkP(k, fn)
	}
}
