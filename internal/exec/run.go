package exec

import (
	"context"
	"fmt"
	"sort"
	"time"

	"quickr/internal/cluster"
	"quickr/internal/lplan"
	"quickr/internal/metrics"
	"quickr/internal/pool"
	"quickr/internal/table"
)

// parallelParts runs fn(i) for each partition index on the process-wide
// shared worker pool (plus the calling goroutine), returning the first
// error. Per-stage task accounting is index-disjoint (each partition
// touches only its own task counters), so operators parallelize without
// locks. Cancellation is honored between tasks: after ctx is done, no
// new partition starts, every started partition's teardown completes
// before the call returns, and the typed ErrCanceled/ErrDeadline is
// reported.
func parallelParts(ctx context.Context, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	_, err := pool.Default().Run(ctx, n, fn)
	return mapCtxErr(err)
}

// stream is the in-flight state between pipeline breakers: the data
// partitions plus the stage currently accumulating their cost. A nil
// stage means the data was materialized at a boundary (exchange/union);
// the next compute operator opens a new stage depending on deps.
type stream struct {
	parts [][]wrow
	stage *cluster.Stage
	deps  []int
}

// Result is the outcome of executing a physical plan.
type Result struct {
	Cols    []lplan.ColumnInfo
	Rows    []table.Row
	Metrics cluster.Metrics
	// Estimates holds per-group HT estimates from the top aggregate
	// (confidence intervals for the public API).
	Estimates []GroupEstimate
	// StageReport is a human-readable per-stage accounting dump.
	StageReport string
	// PlanText is the executed physical plan.
	PlanText string
	// Stats holds the per-operator execution counters.
	Stats *metrics.Query
	// AnalyzedPlan is the EXPLAIN ANALYZE rendering: the plan tree
	// annotated with actual and optimizer-estimated cardinalities.
	AnalyzedPlan string
	// PeakInFlightBytes is the run's worst per-operator in-flight
	// footprint: for each operator, the sum over partitions of the
	// biggest batch (pipelined operators) or materialized partition
	// (breakers) it held at once, maxed over operators. Streaming
	// pipelines keep this near parts×batch-bytes where the materializing
	// executor held entire intermediates.
	PeakInFlightBytes float64
	// RowsProcessed counts base-table rows driven through the plan.
	RowsProcessed int64
	// PartitionsScanned counts the stored partitions scan operators
	// actually read; PartitionsPruned counts the partitions the
	// optimizer's partition-selection pass skipped (0 when pruning is
	// off or no scan was eligible).
	PartitionsScanned int64
	PartitionsPruned  int64
	// ExecSeconds is real wall-clock execution time (not simulated).
	ExecSeconds float64
	// PoolWaitNanos is the run's aggregate scheduling wait on the shared
	// worker pool (see pool.Stats.WaitNanos).
	PoolWaitNanos int64
	// PoolTasks and PoolStolen count partition tasks run for this query
	// and how many of them were executed by shared pool workers.
	PoolTasks, PoolStolen int
	// QueuedNanos and AdmittedBytes echo the admission-gate outcome the
	// caller passed in via Options (zero when no admission control ran).
	QueuedNanos   int64
	AdmittedBytes int64
}

// Run executes the physical plan under the given cluster configuration.
func Run(p PNode, cfg cluster.Config) (*Result, error) {
	return RunWithOptions(context.Background(), p, cfg, nil, Options{})
}

// RunInstrumented executes the plan with per-operator metrics
// collection, annotating each operator with the optimizer's estimated
// output cardinality from estRows (keyed by plan-node identity; nil is
// allowed and leaves estimates unknown).
func RunInstrumented(p PNode, cfg cluster.Config, estRows map[PNode]float64) (*Result, error) {
	return RunWithOptions(context.Background(), p, cfg, estRows, Options{})
}

// RunWithOptions is RunInstrumented with a cancellation context and
// execution tuning (batch size, worker pool, admission echo). The
// context is checked between partition tasks and at every pipeline
// batch boundary; a canceled run returns ErrCanceled (ErrDeadline when
// the deadline passed) after all started partition work has unwound.
func RunWithOptions(ctx context.Context, p PNode, cfg cluster.Config, estRows map[PNode]float64, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	qm := metrics.NewQuery()
	registerOps(qm, p, estRows, opts.CorrRows)
	pl := opts.Pool
	if pl == nil {
		pl = pool.Default()
	}
	ex := &executor{run: cluster.NewRun(cfg), qm: qm, batch: resolveBatch(opts.BatchSize), col: opts.Columnar && opts.BatchSize >= 0, ctx: ctx, pl: pl, sc: opts.SampleCache, cacheEpoch: opts.CacheEpoch}
	t0 := time.Now()
	s, err := ex.exec(p)
	if err != nil {
		return nil, err
	}
	ex.ensureStage(s, "final")
	s.stage.Final = true
	var rows []table.Row
	for i, part := range s.parts {
		var bytes float64
		for _, r := range part {
			bytes += wrowBytes(r)
			rows = append(rows, r.row)
		}
		s.stage.AddOutput(i, int64(len(part)), bytes)
		ex.run.JobOutputBytes += bytes
	}
	execSeconds := time.Since(t0).Seconds()

	var peak float64
	var scanned, partsScanned, partsPruned int64
	for _, op := range qm.Ops() {
		t := op.Total()
		if t.PeakBytes > peak {
			peak = t.PeakBytes
		}
		if op.Kind == "Scan" {
			scanned += t.RowsOut
			partsScanned += int64(op.Partitions())
			partsPruned += t.PartsPruned
		}
	}
	res := &Result{
		Cols:              p.Cols(),
		Rows:              rows,
		Metrics:           ex.run.Finish(),
		Estimates:         ex.topEstimates,
		StageReport:       ex.run.String(),
		PlanText:          FormatPlan(p),
		Stats:             qm,
		PeakInFlightBytes: peak,
		RowsProcessed:     scanned,
		PartitionsScanned: partsScanned,
		PartitionsPruned:  partsPruned,
		ExecSeconds:       execSeconds,
		PoolWaitNanos:     ex.poolWaitNanos,
		PoolTasks:         ex.poolTasks,
		PoolStolen:        ex.poolStolen,
		QueuedNanos:       opts.QueuedNanos,
		AdmittedBytes:     opts.AdmittedBytes,
	}
	res.AnalyzedPlan = FormatAnalyze(p, qm) + fmt.Sprintf(
		"service: queued=%.2fms admitted_bytes=%d pool_wait=%.2fms pool_tasks=%d stolen=%d\n",
		float64(res.QueuedNanos)/1e6, res.AdmittedBytes,
		float64(res.PoolWaitNanos)/1e6, res.PoolTasks, res.PoolStolen)
	return res, nil
}

// registerOps creates one collector per plan node, in pre-order (the
// same order FormatPlan prints), recording sampler configuration so
// pass-rate invariants can be checked against the configured p.
func registerOps(qm *metrics.Query, root PNode, estRows, corrRows map[PNode]float64) {
	var rec func(n PNode, depth int)
	rec = func(n PNode, depth int) {
		est := -1.0
		if v, ok := estRows[n]; ok {
			est = v
		}
		op := qm.Register(n, opKind(n), n.Describe(), depth, est)
		if v, ok := corrRows[n]; ok {
			op.CorrRows = v
		}
		if ps, ok := n.(*PSample); ok && ps.Def.Type != lplan.SamplerPassThrough {
			op.SamplerType = ps.Def.Type.String()
			op.SamplerP = ps.Def.P
		}
		for _, k := range n.Kids() {
			rec(k, depth+1)
		}
	}
	rec(root, 0)
}

func opKind(n PNode) string {
	switch n.(type) {
	case *PScan:
		return "Scan"
	case *PFilter:
		return "Filter"
	case *PProject:
		return "Project"
	case *PSample:
		return "Sample"
	case *PExchange:
		return "Exchange"
	case *PHashJoin:
		return "HashJoin"
	case *PHashAgg:
		return "HashAgg"
	case *PSort:
		return "Sort"
	case *PLimit:
		return "Limit"
	case *PUnion:
		return "Union"
	case *PWindow:
		return "Window"
	case *PCachedSample:
		return "CachedSample"
	}
	return fmt.Sprintf("%T", n)
}

type executor struct {
	run          *cluster.Run
	qm           *metrics.Query
	topEstimates []GroupEstimate
	// batch is the streamed pipeline batch size (math.MaxInt in
	// materializing-baseline mode, where one batch spans the partition).
	batch int
	// col selects the columnar vectorized pipeline executor for
	// non-breaker chains (never set in materializing-baseline mode).
	col bool
	// ctx carries the query's cancellation/deadline signal; it is
	// checked between partition tasks and at batch boundaries.
	ctx context.Context
	// pl is the shared worker pool partition fan-out runs on.
	pl *pool.Pool
	// sc resolves PCachedSample nodes (nil = always run fragments
	// lazily); cacheEpoch is folded into its runtime keys.
	sc         *SampleCache
	cacheEpoch uint64
	// Pool telemetry accumulated across this run's parallel regions
	// (written only by the coordinating goroutine).
	poolWaitNanos         int64
	poolTasks, poolStolen int
}

// parallel fans fn out over n partitions on the shared pool,
// accumulating scheduling telemetry and mapping cancellation to the
// typed query errors.
func (ex *executor) parallel(n int, fn func(i int) error) error {
	st, err := ex.pl.Run(ex.ctx, n, fn)
	ex.poolWaitNanos += st.WaitNanos
	ex.poolTasks += st.Tasks
	ex.poolStolen += st.Stolen
	return mapCtxErr(err)
}

// opFor returns the collector for a plan node, registering one on the
// fly for nodes the pre-order walk could not see (never the case for
// planner-emitted plans, but cheap insurance for hand-built ones).
func (ex *executor) opFor(n PNode) *metrics.Op {
	if op := ex.qm.Op(n); op != nil {
		return op
	}
	return ex.qm.Register(n, opKind(n), n.Describe(), 0, -1)
}

// ensureStage opens a stage for a materialized stream so subsequent
// pipelined operators have tasks to charge.
func (ex *executor) ensureStage(s *stream, name string) {
	if s.stage != nil {
		return
	}
	st := ex.run.NewStage(name, len(s.parts), s.deps...)
	for i, part := range s.parts {
		st.AddInput(i, int64(len(part)), rowsBytes(part))
	}
	s.stage = st
	s.deps = nil
}

// materialize closes the stream's stage, recording task outputs; the
// stream becomes stage-less with a dependency on the closed stage.
func (ex *executor) materialize(s *stream, shuffle bool) {
	if s.stage == nil {
		return
	}
	for i, part := range s.parts {
		s.stage.AddOutput(i, int64(len(part)), rowsBytes(part))
	}
	if shuffle {
		s.stage.ShuffleOut = true
	}
	s.deps = []int{s.stage.ID}
	s.stage = nil
}

// exec runs a plan node. Non-breakers (scan, filter, project, sample)
// fuse into streaming per-partition pipelines; breakers materialize.
func (ex *executor) exec(n PNode) (*stream, error) {
	if err := ctxErr(ex.ctx); err != nil {
		return nil, err
	}
	if !n.Breaker() {
		if ex.col && !chainHasCachedSample(n) {
			return ex.execColPipeline(n)
		}
		return ex.execPipeline(n)
	}
	switch p := n.(type) {
	case *PExchange:
		return ex.execExchange(p)
	case *PHashJoin:
		return ex.execJoin(p)
	case *PHashAgg:
		return ex.execAgg(p)
	case *PSort:
		return ex.execSort(p)
	case *PLimit:
		return ex.execLimit(p)
	case *PUnion:
		return ex.execUnion(p)
	case *PWindow:
		return ex.execWindow(p)
	}
	return nil, fmt.Errorf("exec: unknown physical node %T", n)
}

func (ex *executor) execExchange(p *PExchange) (*stream, error) {
	s, err := ex.exec(p.In)
	if err != nil {
		return nil, err
	}
	ex.ensureStage(s, "exchange-src")
	ex.materialize(s, true)
	parts := p.Parts
	if parts < 1 {
		parts = 1
	}
	op := ex.opFor(p)
	op.Grow(parts)
	t0 := time.Now()
	var inRows int64
	for _, part := range s.parts {
		inRows += int64(len(part))
	}
	out := make([][]wrow, parts)
	if len(p.Keys) == 0 {
		for i, part := range s.parts {
			out[i%parts] = append(out[i%parts], part...)
		}
	} else {
		cm := buildColMap(p.In.Cols())
		idx := make([]int, len(p.Keys))
		for i, id := range p.Keys {
			pos, ok := cm[id]
			if !ok {
				return nil, fmt.Errorf("exec: exchange key #%d not available", id)
			}
			idx[i] = pos
		}
		for _, part := range s.parts {
			for _, r := range part {
				h := table.HashRow(r.row, idx, 7) % uint64(parts)
				out[h] = append(out[h], r)
			}
		}
	}
	op.Slot(0).RowsIn += inRows
	for i, part := range out {
		sl := op.Slot(i)
		sl.RowsOut += int64(len(part))
		if len(part) > 0 {
			sl.NoteBatch(rowsBytes(part))
		}
	}
	op.AddWall(time.Since(t0))
	return &stream{parts: out, deps: s.deps}, nil
}

// estHint splits an optimizer cardinality estimate across parts tasks
// for buffer preallocation; 0 means "no estimate, caller falls back".
func estHint(est float64, parts int) int {
	if est <= 0 || parts <= 0 {
		return 0
	}
	h := int(est)/parts + 1
	if h > 1<<20 {
		h = 1 << 20
	}
	return h
}

func (ex *executor) execJoin(p *PHashJoin) (*stream, error) {
	right, err := ex.exec(p.Right)
	if err != nil {
		return nil, err
	}
	rightCols := p.Right.Cols()
	rcm := buildColMap(rightCols)
	rIdx := make([]int, len(p.RightKeys))
	for i, id := range p.RightKeys {
		pos, ok := rcm[id]
		if !ok {
			return nil, fmt.Errorf("exec: right join key #%d not available", id)
		}
		rIdx[i] = pos
	}

	left, err := ex.exec(p.Left)
	if err != nil {
		return nil, err
	}
	lcm := buildColMap(p.Left.Cols())
	lIdx := make([]int, len(p.LeftKeys))
	for i, id := range p.LeftKeys {
		pos, ok := lcm[id]
		if !ok {
			return nil, fmt.Errorf("exec: left join key #%d not available", id)
		}
		lIdx[i] = pos
	}

	var residual evalFunc
	if p.Residual != nil {
		f, err := compileExpr(p.Residual, buildColMap(p.Cols()))
		if err != nil {
			return nil, err
		}
		residual = f
	}

	nRightCols := len(rightCols)
	op := ex.opFor(p)
	// Probe-output preallocation from the optimizer's join cardinality
	// estimate (set before the parallel regions; read-only inside).
	estPerTask := estHint(p.EstOutRows, len(left.parts))
	// joinRows probes one partition against a prebuilt (possibly shared,
	// read-only) build table. buildLen is the number of build rows this
	// task reads — the simulated-cluster CPU and per-slot counters charge
	// it exactly as when every task built its own table. Output rows are
	// carved from a per-task arena instead of one make per row.
	joinRows := func(st *cluster.Stage, task int, lpart []wrow, bt *joinTable, buildLen int) []wrow {
		hint := estPerTask
		if hint <= 0 {
			hint = len(lpart)
		}
		out := make([]wrow, 0, hint)
		var ar rowArena
		var outBytes float64
		for _, l := range lpart {
			h := table.HashRow(l.row, lIdx, 3)
			matched := false
			for ri := bt.lookup(h); ri >= 0; ri = bt.next[ri] {
				r := bt.rows[ri]
				if !keysEqual(l.row, lIdx, r.row, rIdx) {
					continue
				}
				combined := ar.alloc(len(l.row) + len(r.row))
				combined = append(combined, l.row...)
				combined = append(combined, r.row...)
				w := l.w * r.w
				if p.SharedUniverseP > 0 {
					// Both inputs carry the same universe sampler: the join
					// output is a p-probability universe sample, not p², so
					// the double-counted 1/p factor is removed (§4.1.3).
					w *= p.SharedUniverseP
				}
				if residual != nil && !truthy(residual(combined)) {
					continue
				}
				wr := newWRow(combined, w)
				outBytes += wr.sz
				out = append(out, wr)
				matched = true
			}
			if !matched && p.Kind == lplan.LeftOuterJoin {
				combined := ar.alloc(len(l.row) + nRightCols)
				combined = append(combined, l.row...)
				for k := 0; k < nRightCols; k++ {
					combined = append(combined, table.Null)
				}
				wr := newWRow(combined, l.w)
				outBytes += wr.sz
				out = append(out, wr)
			}
		}
		st.AddCPU(task, 2*float64(buildLen)+2*float64(len(lpart)))
		sl := op.Slot(task)
		sl.RowsIn += int64(len(lpart) + buildLen)
		sl.RowsOut += int64(len(out))
		sl.BuildRows += int64(buildLen)
		sl.ProbeRows += int64(len(lpart))
		if len(out) > 0 {
			sl.NoteBatch(outBytes)
		}
		return out
	}

	if p.Broadcast {
		// Build side is gathered and replicated to every probe task. The
		// hash table over it is built ONCE (parallel partitioned build)
		// and shared read-only across all probe tasks; the simulated
		// cluster still charges each task for reading the broadcast copy.
		ex.ensureStage(right, "build-src")
		ex.materialize(right, true)
		var buildRows []wrow
		for _, part := range right.parts {
			buildRows = append(buildRows, part...)
		}
		ex.ensureStage(left, "probe")
		left.stage.Deps = appendDep(left.stage.Deps, right.deps)
		bbytes := rowsBytes(buildRows)
		op.Grow(len(left.parts))
		t0 := time.Now()
		bt, err := buildJoinTable(buildRows, rIdx, ex.parallel)
		if err != nil {
			return nil, err
		}
		if err := ex.parallel(len(left.parts), func(i int) error {
			left.stage.AddInput(i, int64(len(buildRows)), bbytes)
			left.parts[i] = joinRows(left.stage, i, left.parts[i], bt, len(buildRows))
			return nil
		}); err != nil {
			return nil, err
		}
		op.AddWall(time.Since(t0))
		return left, nil
	}

	// Partitioned join: children arrive materialized (below exchanges)
	// and co-partitioned; the join opens a new stage reading both. Each
	// task builds the table over its own co-located build partition.
	ex.ensureStage(left, "join-left-src")
	ex.materialize(left, false)
	ex.ensureStage(right, "join-right-src")
	ex.materialize(right, false)
	if len(left.parts) != len(right.parts) {
		return nil, fmt.Errorf("exec: join inputs have %d vs %d partitions", len(left.parts), len(right.parts))
	}
	deps := append(append([]int{}, left.deps...), right.deps...)
	st := ex.run.NewStage("join", len(left.parts), deps...)
	out := make([][]wrow, len(left.parts))
	op.Grow(len(left.parts))
	t0 := time.Now()
	if err := ex.parallel(len(left.parts), func(i int) error {
		inRows := int64(len(left.parts[i]) + len(right.parts[i]))
		inBytes := rowsBytes(left.parts[i]) + rowsBytes(right.parts[i])
		st.AddInput(i, inRows, inBytes)
		bt, err := buildJoinTable(right.parts[i], rIdx, serialFan)
		if err != nil {
			return err
		}
		out[i] = joinRows(st, i, left.parts[i], bt, len(right.parts[i]))
		return nil
	}); err != nil {
		return nil, err
	}
	op.AddWall(time.Since(t0))
	return &stream{parts: out, stage: st}, nil
}

// serialFan runs fn(0..n-1) on the calling goroutine; used for
// per-task join-table builds, which must not re-enter the shared pool
// from inside a pool task.
func serialFan(n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

func appendDep(deps []int, more []int) []int {
	for _, d := range more {
		found := false
		for _, e := range deps {
			if e == d {
				found = true
				break
			}
		}
		if !found {
			deps = append(deps, d)
		}
	}
	return deps
}

func keysEqual(l table.Row, lIdx []int, r table.Row, rIdx []int) bool {
	for i := range lIdx {
		if !l[lIdx[i]].Equal(r[rIdx[i]]) {
			return false
		}
	}
	return true
}

func (ex *executor) execAgg(p *PHashAgg) (*stream, error) {
	if ex.col && !p.In.Breaker() && !chainHasCachedSample(p.In) {
		return ex.execAggColumnar(p)
	}
	s, err := ex.exec(p.In)
	if err != nil {
		return nil, err
	}
	ex.ensureStage(s, "aggregate")
	cm := buildColMap(p.In.Cols())
	partEsts := make([][]GroupEstimate, len(s.parts))
	op := ex.opFor(p)
	op.Grow(len(s.parts))
	t0 := time.Now()
	if err := ex.parallel(len(s.parts), func(i int) error {
		part := s.parts[i]
		r, err := newAggRunner(p, cm)
		if err != nil {
			return err
		}
		for _, w := range part {
			r.add(w.row, w.w)
		}
		rows, ests := r.emit()
		// A grouped aggregate on a non-first partition must not emit the
		// empty-input global row.
		if len(p.GroupCols) == 0 && i > 0 && len(part) == 0 {
			rows, ests = nil, nil
		}
		s.parts[i] = rows
		s.stage.AddCPU(i, 2*float64(len(part)))
		sl := op.Slot(i)
		sl.RowsIn += int64(len(part))
		sl.RowsOut += int64(len(rows))
		if len(rows) > 0 {
			sl.NoteBatch(rowsBytes(rows))
		}
		if p.Top {
			partEsts[i] = ests
		}
		return nil
	}); err != nil {
		return nil, err
	}
	op.AddWall(time.Since(t0))
	if p.Top {
		var allEsts []GroupEstimate
		for _, es := range partEsts {
			allEsts = append(allEsts, es...)
		}
		ex.topEstimates = allEsts
	}
	return s, nil
}

func (ex *executor) execSort(p *PSort) (*stream, error) {
	s, err := ex.exec(p.In)
	if err != nil {
		return nil, err
	}
	ex.ensureStage(s, "sort")
	cm := buildColMap(p.In.Cols())
	idx := make([]int, len(p.Keys))
	for i, k := range p.Keys {
		pos, ok := cm[k.Col]
		if !ok {
			return nil, fmt.Errorf("exec: sort key #%d not available", k.Col)
		}
		idx[i] = pos
	}
	// Sort keys with their input positions resolved once, outside the
	// comparator: the hot comparison loop does no colMap lookups.
	type sortKey struct {
		pos  int
		desc bool
	}
	keys := make([]sortKey, len(p.Keys))
	for i, k := range p.Keys {
		keys[i] = sortKey{pos: idx[i], desc: k.Desc}
	}
	op := ex.opFor(p)
	op.Grow(len(s.parts))
	t0 := time.Now()
	// Partitions are independent: sort them on the shared pool like
	// join/agg fan-outs (slot and stage accounting are index-disjoint).
	if err := ex.parallel(len(s.parts), func(pi int) error {
		part := s.parts[pi]
		sl := op.Slot(pi)
		sl.RowsIn += int64(len(part))
		sl.RowsOut += int64(len(part))
		if len(part) > 0 {
			sl.NoteBatch(rowsBytes(part))
		}
		n := len(part)
		sort.SliceStable(part, func(a, b int) bool {
			ra, rb := part[a].row, part[b].row
			for _, k := range keys {
				c := ra[k.pos].Compare(rb[k.pos])
				if k.desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			// Deterministic tie-break on the whole row.
			return table.CompareRows(ra, rb) < 0
		})
		if n > 1 {
			s.stage.AddCPU(pi, float64(n)*logf(n))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	op.AddWall(time.Since(t0))
	return s, nil
}

func logf(n int) float64 {
	l := 0.0
	for m := n; m > 1; m >>= 1 {
		l++
	}
	return l + 1
}

func (ex *executor) execLimit(p *PLimit) (*stream, error) {
	s, err := ex.exec(p.In)
	if err != nil {
		return nil, err
	}
	ex.ensureStage(s, "limit")
	op := ex.opFor(p)
	op.Grow(len(s.parts))
	remaining := p.N
	for i, part := range s.parts {
		if int64(len(part)) > remaining {
			s.parts[i] = part[:remaining]
		}
		remaining -= int64(len(s.parts[i]))
		if remaining < 0 {
			remaining = 0
		}
		sl := op.Slot(i)
		sl.RowsIn += int64(len(part))
		sl.RowsOut += int64(len(s.parts[i]))
		if len(s.parts[i]) > 0 {
			sl.NoteBatch(rowsBytes(s.parts[i]))
		}
	}
	return s, nil
}

func (ex *executor) execUnion(p *PUnion) (*stream, error) {
	var parts [][]wrow
	var deps []int
	for _, in := range p.Ins {
		s, err := ex.exec(in)
		if err != nil {
			return nil, err
		}
		ex.ensureStage(s, "union-src")
		ex.materialize(s, false)
		parts = append(parts, s.parts...)
		deps = appendDep(deps, s.deps)
	}
	op := ex.opFor(p)
	op.Grow(len(parts))
	for i, part := range parts {
		sl := op.Slot(i)
		sl.RowsIn += int64(len(part))
		sl.RowsOut += int64(len(part))
		if len(part) > 0 {
			sl.NoteBatch(rowsBytes(part))
		}
	}
	return &stream{parts: parts, deps: deps}, nil
}
