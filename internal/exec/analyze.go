package exec

import (
	"fmt"
	"strings"

	"quickr/internal/metrics"
)

// FormatAnalyze renders the physical plan as an indented tree annotated
// with executed metrics — the EXPLAIN ANALYZE view. Each operator line
// shows the optimizer-estimated output cardinality next to the actual
// row counts, plus sampler telemetry (rows seen/passed and the observed
// pass rate against the configured p), join build/probe sizes, and
// heavy-hitter sketch occupancy where applicable.
func FormatAnalyze(n PNode, qm *metrics.Query) string {
	var b strings.Builder
	var rec func(PNode, int)
	rec = func(n PNode, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Describe())
		if op := qm.Op(n); op != nil {
			t := op.Total()
			b.WriteString("  (")
			if op.EstRows >= 0 {
				fmt.Fprintf(&b, "est=%.4g rows, ", op.EstRows)
			}
			if op.CorrRows >= 0 {
				fmt.Fprintf(&b, "corrected=%.4g rows, ", op.CorrRows)
			}
			fmt.Fprintf(&b, "actual=%d rows", t.RowsOut)
			if t.RowsIn != t.RowsOut {
				fmt.Fprintf(&b, ", in=%d", t.RowsIn)
			}
			if p := op.Partitions(); p > 1 {
				fmt.Fprintf(&b, ", parts=%d", p)
			}
			if w := op.WallNanos(); w > 0 {
				fmt.Fprintf(&b, ", wall=%.2fms", float64(w)/1e6)
			}
			if t.Batches > 0 {
				fmt.Fprintf(&b, ", batches=%d, peak=%.0fB", t.Batches, t.PeakBytes)
			}
			b.WriteString(")")
			if op.SamplerType != "" {
				rate := 0.0
				if t.SamplerSeen > 0 {
					rate = float64(t.SamplerPassed) / float64(t.SamplerSeen)
				}
				fmt.Fprintf(&b, " [sampler %s seen=%d passed=%d rate=%.4g p=%.4g",
					op.SamplerType, t.SamplerSeen, t.SamplerPassed, rate, op.SamplerP)
				if t.SketchEntries > 0 {
					fmt.Fprintf(&b, " sketch=%d", t.SketchEntries)
				}
				b.WriteString("]")
			}
			if t.BuildRows > 0 || t.ProbeRows > 0 {
				fmt.Fprintf(&b, " [build=%d probe=%d]", t.BuildRows, t.ProbeRows)
			}
			if t.PartsPruned > 0 {
				fmt.Fprintf(&b, " [pruned scanned=%d pruned=%d]", t.PartsScanned, t.PartsPruned)
			}
		}
		b.WriteByte('\n')
		for _, k := range n.Kids() {
			rec(k, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}
