package exec

import (
	"context"
	"testing"
	"testing/quick"

	"quickr/internal/lplan"
	"quickr/internal/table"
)

func compile(t *testing.T, e lplan.Expr, cols []lplan.ColumnInfo) evalFunc {
	t.Helper()
	f, err := compileExpr(e, buildColMap(cols))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCompileArithmeticAndComparison(t *testing.T) {
	cols := []lplan.ColumnInfo{
		{ID: 1, Name: "a", Kind: table.KindInt},
		{ID: 2, Name: "b", Kind: table.KindFloat},
	}
	a := &lplan.ColRef{ID: 1, Name: "a", Kind: table.KindInt}
	b := &lplan.ColRef{ID: 2, Name: "b", Kind: table.KindFloat}
	row := table.Row{table.NewInt(7), table.NewFloat(2.5)}

	cases := []struct {
		e    lplan.Expr
		want table.Value
	}{
		{&lplan.Binary{Op: lplan.OpAdd, L: a, R: b}, table.NewFloat(9.5)},
		{&lplan.Binary{Op: lplan.OpMul, L: a, R: a}, table.NewInt(49)},
		{&lplan.Binary{Op: lplan.OpDiv, L: a, R: &lplan.Const{Val: table.NewInt(2)}}, table.NewFloat(3.5)},
		{&lplan.Binary{Op: lplan.OpMod, L: a, R: &lplan.Const{Val: table.NewInt(4)}}, table.NewInt(3)},
		{&lplan.Binary{Op: lplan.OpGt, L: a, R: b}, table.NewBool(true)},
		{&lplan.Binary{Op: lplan.OpEq, L: a, R: &lplan.Const{Val: table.NewFloat(7)}}, table.NewBool(true)},
		{&lplan.Not{X: &lplan.Binary{Op: lplan.OpLt, L: a, R: b}}, table.NewBool(true)},
		{&lplan.Neg{X: a}, table.NewInt(-7)},
		{&lplan.IsNull{X: a}, table.NewBool(false)},
		{&lplan.IsNull{X: a, Inv: true}, table.NewBool(true)},
		{&lplan.In{X: a, Vals: []table.Value{table.NewInt(3), table.NewInt(7)}}, table.NewBool(true)},
		{&lplan.In{X: a, Vals: []table.Value{table.NewInt(3)}, Inv: true}, table.NewBool(true)},
		{&lplan.Case{
			Whens: []lplan.When{{Cond: &lplan.Binary{Op: lplan.OpGt, L: a, R: &lplan.Const{Val: table.NewInt(5)}},
				Then: &lplan.Const{Val: table.NewString("big")}}},
			Else: &lplan.Const{Val: table.NewString("small")},
		}, table.NewString("big")},
		{&lplan.Func{Name: "ABS", Args: []lplan.Expr{&lplan.Neg{X: a}}}, table.NewInt(7)},
	}
	for _, c := range cases {
		got := compile(t, c.e, cols)(row)
		if !got.Equal(c.want) && got.String() != c.want.String() {
			t.Errorf("%s = %v want %v", c.e, got, c.want)
		}
	}
}

func TestCompileNullSemantics(t *testing.T) {
	cols := []lplan.ColumnInfo{{ID: 1, Name: "a", Kind: table.KindInt}}
	a := &lplan.ColRef{ID: 1, Name: "a", Kind: table.KindInt}
	row := table.Row{table.Null}
	// NULL comparisons are false; NULL arithmetic is NULL; IS NULL true.
	if v := compile(t, &lplan.Binary{Op: lplan.OpEq, L: a, R: a}, cols)(row); v.Bool() {
		t.Error("NULL = NULL must be false")
	}
	if v := compile(t, &lplan.Binary{Op: lplan.OpAdd, L: a, R: a}, cols)(row); !v.IsNull() {
		t.Error("NULL + NULL must be NULL")
	}
	if v := compile(t, &lplan.IsNull{X: a}, cols)(row); !v.Bool() {
		t.Error("IS NULL broken")
	}
}

func TestCompileUnknownColumn(t *testing.T) {
	if _, err := compileExpr(&lplan.ColRef{ID: 99, Name: "x"}, colMap{}); err == nil {
		t.Error("unknown column must fail compilation")
	}
}

// Property: the executor's optimized LIKE matcher agrees with a
// straightforward recursive implementation on random inputs.
func TestCompileLikeAgainstNaive(t *testing.T) {
	var naive func(s, p string) bool
	naive = func(s, p string) bool {
		if p == "" {
			return s == ""
		}
		switch p[0] {
		case '%':
			for i := 0; i <= len(s); i++ {
				if naive(s[i:], p[1:]) {
					return true
				}
			}
			return false
		case '_':
			return len(s) > 0 && naive(s[1:], p[1:])
		default:
			return len(s) > 0 && s[0] == p[0] && naive(s[1:], p[1:])
		}
	}
	alphabet := []byte("ab%_")
	f := func(sRaw, pRaw []byte) bool {
		if len(sRaw) > 12 || len(pRaw) > 8 {
			return true // keep the naive matcher's recursion cheap
		}
		s := make([]byte, len(sRaw))
		for i, c := range sRaw {
			s[i] = "ab"[int(c)%2]
		}
		p := make([]byte, len(pRaw))
		for i, c := range pRaw {
			p[i] = alphabet[int(c)%len(alphabet)]
		}
		return compileLike(string(p))(string(s)) == naive(string(s), string(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParallelPartsErrors(t *testing.T) {
	calls := 0
	if err := parallelParts(context.Background(), 0, func(int) error { calls++; return nil }); err != nil || calls != 0 {
		t.Error("zero partitions must be a no-op")
	}
	err := parallelParts(context.Background(), 8, func(i int) error {
		if i == 3 {
			return errColMissing(0)
		}
		return nil
	})
	if err == nil {
		t.Error("worker error must propagate")
	}
}
