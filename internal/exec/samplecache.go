package exec

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"quickr/internal/lplan"
	"quickr/internal/metrics"
	"quickr/internal/table"
)

// Hot-sample reuse: Quickr is deliberately lazy (samplers run at query
// time, nothing is pre-built), but dashboard traffic re-runs the same
// fused scan→filter→sample fragment every few seconds. PCachedSample
// marks such a fragment as reusable: the first execution materializes
// the sampler's weighted output into a byte-budgeted LRU (column-major,
// via the internal/table columnar machinery), and repeated executions
// replay it without touching the base table. The fragment itself stays
// in the plan as the node's only child, so every plan walker — the
// invariant checkers, EXPLAIN, the soundness prover — still sees the
// samplers and scans it replaces, and a cache miss simply runs it (the
// lazy path is always the fallback).
//
// Cached output carries the exact per-row Horvitz–Thompson weights the
// fragment produced, so downstream estimator math (CI95, missed-group
// accounting) is bit-identical between warm and cold runs.

// PCachedSample replaces a cacheable sampler fragment: a real sampler
// over a non-breaker filter/project chain ending at one base-table
// scan. Kids() exposes the replaced fragment, keeping the node
// transparent to plan walkers.
type PCachedSample struct {
	// Frag is the replaced fragment, executed verbatim on a cache miss.
	Frag PNode
	// Key fingerprints the fragment (sampler type/params/seeds, chain
	// expressions, scan columns and prune subset). The executor extends
	// it with the table version and engine config epoch at run time.
	Key string
	// SamplerP echoes the fragment's root sampler pass probability; the
	// plan checker verifies it against the fragment so a hand-built plan
	// cannot claim cached output under different weights.
	SamplerP float64
}

// Cols implements PNode: cached output has exactly the fragment's schema.
func (p *PCachedSample) Cols() []lplan.ColumnInfo {
	if p.Frag == nil {
		return nil
	}
	return p.Frag.Cols()
}

// Kids implements PNode. A fragment-less node (rejected by plancheck,
// but walkers run before checkers report) has no children.
func (p *PCachedSample) Kids() []PNode {
	if p.Frag == nil {
		return nil
	}
	return []PNode{p.Frag}
}

// Describe implements PNode.
func (p *PCachedSample) Describe() string {
	return fmt.Sprintf("CachedSample p=%.3g key=%016x", p.SamplerP, fnv64(p.Key))
}

// Breaker implements PNode: replay streams batch-at-a-time like the
// fragment it replaces.
func (p *PCachedSample) Breaker() bool { return false }

// CacheableFragment reports whether frag has the shape the sample cache
// supports: a real sampler (0 < p < 1) over any chain of filters,
// projections and samplers, ending at exactly one base-table scan. Both
// the optimizer rewrite and the plan checker use it, so a plan cannot
// carry a cached-sample node over a fragment the rewrite would never
// have produced.
func CacheableFragment(frag PNode) bool {
	s, ok := frag.(*PSample)
	if !ok || s.Def.Type == lplan.SamplerPassThrough || s.Def.P <= 0 || s.Def.P >= 1 {
		return false
	}
	n := s.In
	for {
		switch x := n.(type) {
		case *PScan:
			return true
		case *PFilter:
			n = x.In
		case *PProject:
			n = x.In
		case *PSample:
			n = x.In
		default:
			return false
		}
	}
}

// FragmentScan returns the base-table scan at the bottom of a cacheable
// fragment (nil when the shape is not cacheable).
func FragmentScan(frag PNode) *PScan {
	n := frag
	for n != nil {
		if s, ok := n.(*PScan); ok {
			return s
		}
		kids := n.Kids()
		if len(kids) != 1 {
			return nil
		}
		n = kids[0]
	}
	return nil
}

// FragmentKey fingerprints a cacheable fragment. Everything that can
// change the fragment's output stream is folded in: sampler type,
// probability, stratification/universe columns, δ, bucket functions,
// both seeds (the plan-location seed and the shared universe seed),
// filter predicates, projection expressions, the scan's table, column
// projection, apriori-weight column, and the partition-prune subset
// with its inflation factors. The plan checker recomputes it, so a
// cached-sample node's key provably describes its own fragment.
func FragmentKey(frag PNode) string {
	var b strings.Builder
	var rec func(PNode)
	rec = func(n PNode) {
		switch x := n.(type) {
		case *PSample:
			fmt.Fprintf(&b, "sample{t=%d p=%g cols=%v delta=%d bcols=%v bw=%v dseed=%d seed=%d};",
				x.Def.Type, x.Def.P, x.Def.Cols, x.Def.Delta,
				x.Def.BucketCols, x.Def.BucketWidths, x.Def.Seed, x.Seed)
			rec(x.In)
		case *PScan:
			fmt.Fprintf(&b, "scan{%s cols=%v w=%d", x.Tbl.Name, x.ColIdx, x.WeightIdx)
			if x.Prune != nil {
				fmt.Fprintf(&b, " keep=%v inf=%v tailp=%g", x.Prune.Keep, x.Prune.Inflate, x.Prune.TailP)
			}
			b.WriteString("};")
		default:
			fmt.Fprintf(&b, "%s;", n.Describe())
			for _, k := range n.Kids() {
				rec(k)
			}
		}
	}
	rec(frag)
	return b.String()
}

// fnv64 is FNV-1a over s, used only to render keys compactly.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// CachedPart is one materialized fragment-output partition: the rows in
// column-major form plus the per-row sampling weights, both value
// copies independent of any in-flight batch buffers.
type CachedPart struct {
	Cols *table.ColPartition
	W    []float64
}

// cacheEntry is one LRU slot: a fragment's full per-partition output.
type cacheEntry struct {
	key   string
	parts []CachedPart
	bytes int64
}

// SampleCache is a byte-budgeted, process-shareable LRU over
// materialized sampler outputs. Get/Put/Purge are safe for concurrent
// use; keys already embed the table version and engine config epoch, so
// a Put racing an invalidation can at worst insert an entry no future
// lookup can reach (Purge is promptness, correctness is the key).
type SampleCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	items  map[string]*list.Element
	order  *list.List // front = most recently used
}

// NewSampleCache builds a cache holding at most budget bytes of
// materialized sampler output.
func NewSampleCache(budget int64) *SampleCache {
	return &SampleCache{
		budget: budget,
		items:  make(map[string]*list.Element),
		order:  list.New(),
	}
}

// Get returns the cached fragment output for key, if present.
func (c *SampleCache) Get(key string) ([]CachedPart, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		metrics.SampleCacheMisses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	metrics.SampleCacheHits.Add(1)
	return el.Value.(*cacheEntry).parts, true
}

// Put inserts a materialized fragment output. Admission control rejects
// entries larger than a quarter of the budget (one giant fragment must
// not wipe the working set); otherwise least-recently-used entries are
// evicted until the new entry fits.
func (c *SampleCache) Put(key string, parts []CachedPart) {
	var bytes int64
	for i := range parts {
		bytes += cachedPartBytes(&parts[i])
	}
	bytes += int64(len(key))
	if bytes > c.budget/4 {
		metrics.SampleCacheRejects.Add(1)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Concurrent misses can race to populate; keep the first copy
		// (both are bit-identical by construction).
		c.order.MoveToFront(el)
		return
	}
	for c.bytes+bytes > c.budget {
		back := c.order.Back()
		if back == nil {
			break
		}
		c.evict(back)
	}
	e := &cacheEntry{key: key, parts: parts, bytes: bytes}
	c.items[key] = c.order.PushFront(e)
	c.bytes += bytes
	metrics.SampleCacheBytes.Store(c.bytes)
}

// evict removes one entry; callers hold c.mu.
func (c *SampleCache) evict(el *list.Element) {
	e := c.order.Remove(el).(*cacheEntry)
	delete(c.items, e.key)
	c.bytes -= e.bytes
	metrics.SampleCacheEvictions.Add(1)
	metrics.SampleCacheBytes.Store(c.bytes)
}

// Purge drops every entry (config-epoch bumps and DDL call this, the
// same invalidation path the plan cache uses).
func (c *SampleCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = make(map[string]*list.Element)
	c.order.Init()
	c.bytes = 0
	metrics.SampleCacheBytes.Store(0)
}

// Len returns the number of cached fragments.
func (c *SampleCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Bytes returns the cached payload size.
func (c *SampleCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Budget returns the configured byte budget.
func (c *SampleCache) Budget() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budget
}

// cachedPartBytes estimates one partition's resident size for the byte
// budget (payload slices plus dictionary strings; bookkeeping rounded
// into per-value constants).
func cachedPartBytes(p *CachedPart) int64 {
	var b int64
	for i := range p.Cols.Cols {
		v := &p.Cols.Cols[i]
		b += int64(len(v.Ints))*8 + int64(len(v.Floats))*8 + int64(len(v.Nulls))*8
		b += int64(len(v.Vals)) * 32
		for _, s := range v.Dict {
			b += int64(len(s)) + 16
		}
	}
	return b + int64(len(p.W))*8
}

// materializeCached snapshots a fragment's output partitions into
// column-major cached form. Columnarize value-copies every row, so the
// snapshot is independent of the in-flight batch buffers the downstream
// chain will mutate in place.
func materializeCached(parts [][]wrow, width int) []CachedPart {
	out := make([]CachedPart, len(parts))
	for i, part := range parts {
		rows := make([]table.Row, len(part))
		w := make([]float64, len(part))
		for j := range part {
			rows[j] = part[j].row
			w[j] = part[j].w
		}
		out[i] = CachedPart{Cols: table.Columnarize(rows, width), W: w}
	}
	return out
}

// cachedToParts reconstructs fresh weighted-row partitions from cached
// columnar form — bit-identical to the rows the fragment produced
// (ColVec.Value preserves float bits and dictionary strings exactly).
// Every replay allocates new rows, so in-place downstream consumers
// (filter compaction, project rewrites) never touch cached state.
func cachedToParts(cached []CachedPart) [][]wrow {
	parts := make([][]wrow, len(cached))
	for i := range cached {
		cp := cached[i]
		n := cp.Cols.NumRows
		ncols := len(cp.Cols.Cols)
		rows := make([]wrow, n)
		for j := 0; j < n; j++ {
			r := make(table.Row, ncols)
			for c := 0; c < ncols; c++ {
				r[c] = cp.Cols.Cols[c].Value(j)
			}
			rows[j] = newWRow(r, cp.W[j])
		}
		parts[i] = rows
	}
	return parts
}

// chainHasCachedSample reports whether the non-breaker chain rooted at n
// contains a cached-sample node. The columnar executor has no cached
// replay kernel, so such chains fall back to the row pipeline (the two
// are bit-identical by the executor oracle).
func chainHasCachedSample(n PNode) bool {
	//lint:ignore ctxflow walk is bounded by plan depth and terminates at a scan or breaker
	for {
		if _, ok := n.(*PCachedSample); ok {
			return true
		}
		if n.Breaker() {
			return false
		}
		kids := n.Kids()
		if len(kids) != 1 {
			return false
		}
		n = kids[0]
	}
}

// execCachedSample resolves a cached-sample node: replay on a hit, run
// the fragment lazily (and populate) on a miss or when no cache is
// configured. The runtime key extends the plan-time fragment key with
// the scan table's version and the engine's config epoch, reusing the
// exact invalidation discipline of the columnar and plan caches.
func (ex *executor) execCachedSample(cs *PCachedSample) (*stream, error) {
	scan := FragmentScan(cs.Frag)
	var key string
	if ex.sc != nil && scan != nil {
		key = fmt.Sprintf("%s|v%d|e%d", cs.Key, scan.Tbl.Version(), ex.cacheEpoch)
		if cached, ok := ex.sc.Get(key); ok {
			parts := cachedToParts(cached)
			op := ex.opFor(cs)
			op.Grow(len(parts))
			for i, part := range parts {
				sl := op.Slot(i)
				sl.RowsOut += int64(len(part))
				if len(part) > 0 {
					sl.NoteBatch(rowsBytes(part))
				}
			}
			// Replayed output is a materialized boundary: no scan stage
			// exists, the outer pipeline opens its own stage over it.
			return &stream{parts: parts}, nil
		}
	}
	s, err := ex.execPipeline(cs.Frag)
	if err != nil {
		return nil, err
	}
	op := ex.opFor(cs)
	op.Grow(len(s.parts))
	for i, part := range s.parts {
		sl := op.Slot(i)
		sl.RowsIn += int64(len(part))
		sl.RowsOut += int64(len(part))
	}
	if ex.sc != nil && scan != nil {
		// Populate-on-miss tee: snapshot before handing the stream to the
		// outer chain (which compacts batches in place). The key was
		// computed before the fragment ran, so an Append or config bump
		// landing mid-run leaves the entry unreachable, never wrong.
		ex.sc.Put(key, materializeCached(s.parts, len(cs.Frag.Cols())))
	}
	return s, nil
}
