package exec

import (
	"context"
	"time"

	"quickr/internal/cluster"
	"quickr/internal/metrics"
	"quickr/internal/sampler"
	"quickr/internal/table"
)

// This file is the vectorized twin of pipeline.go: with Options.Columnar
// the scan→filter→project→sample chains between pipeline breakers run
// column-at-a-time over exec.Batch instead of row-at-a-time over []wrow.
// Predicates evaluate as per-column kernels and thin the selection
// vector, samplers thin it further and scale the weight column, and rows
// only materialize at the sink (the breaker boundary).
//
// Everything observable is bit-identical to row mode: the live rows of
// every batch correspond one-to-one with the rows the row-at-a-time
// pipeline carries, sampler decision sequences are unchanged (same rng
// draws, same hash inputs, in the same order), and stage/metric
// accounting charges the same stages the same amounts. Running with
// BatchSize<0 disables columnar execution entirely — that mode is the
// row-materializing oracle the CI two-mode gate diffs against.

// colOperator is the columnar pipeline operator: an empty batch
// (Len()==0) means the partition is exhausted. Batches may alias
// operator-owned buffers and are valid until the next Next call.
type colOperator interface {
	Next() (Batch, error)
}

// colScanSource streams one stored partition's columnar mirror,
// windowing each column zero-copy and extracting apriori sample weights
// per batch. Accounting matches scanSource exactly.
type colScanSource struct {
	p    *PScan
	cp   *table.ColPartition
	size int
	pos  int
	// inflate multiplies every lane weight (partition-selection HT
	// factor; 1 for unpruned scans), mirroring scanSource.
	inflate float64

	st   *cluster.Stage
	task int
	slot *metrics.Slot
	raw  *float64

	weights []float64
	cols    []Vector
	wins    []Vector
}

func (s *colScanSource) Next() (Batch, error) {
	remain := s.cp.NumRows - s.pos
	if remain <= 0 {
		return Batch{}, nil
	}
	n := s.size
	if n > remain {
		n = remain
	}
	t0 := time.Now()
	// Window every stored column once: raw bytes account the full
	// stored width, the batch carries only the pruned columns.
	s.wins = s.wins[:0]
	var rawBytes float64
	for c := range s.cp.Cols {
		w := window(&s.cp.Cols[c], s.pos, n)
		rawBytes += w.bytesAll()
		s.wins = append(s.wins, w)
	}
	s.cols = s.cols[:0]
	if prune := len(s.p.ColIdx) > 0; prune {
		for _, ci := range s.p.ColIdx {
			s.cols = append(s.cols, s.wins[ci])
		}
	} else {
		s.cols = append(s.cols, s.wins...)
	}
	if cap(s.weights) < n {
		s.weights = make([]float64, n)
	}
	s.weights = s.weights[:n]
	inflate := s.inflate
	if inflate <= 0 {
		inflate = 1
	}
	if s.p.WeightIdx >= 0 && s.p.WeightIdx < len(s.wins) {
		wv := &s.wins[s.p.WeightIdx]
		for i := 0; i < n; i++ {
			w := wv.laneFloat(i)
			if w <= 0 {
				w = 1
			}
			s.weights[i] = w * inflate
		}
	} else {
		for i := 0; i < n; i++ {
			s.weights[i] = inflate
		}
	}
	outBytes := 8 * float64(n)
	for c := range s.cols {
		outBytes += s.cols[c].bytesAll()
	}
	s.pos += n
	s.st.AddInput(s.task, int64(n), rawBytes)
	s.st.AddCPU(s.task, float64(n))
	s.slot.RowsIn += int64(n)
	s.slot.RowsOut += int64(n)
	s.slot.BytesIn += rawBytes
	s.slot.BytesOut += rawBytes
	s.slot.NoteBatch(outBytes)
	s.slot.KernelLanes += int64(n)
	*s.raw += rawBytes
	s.slot.WallNanos += int64(time.Since(t0))
	return Batch{cols: s.cols, n: n, weights: s.weights, bytes: outBytes}, nil
}

// batchBuilder re-batches materialized weighted rows into columnar form
// (breaker outputs entering a columnar chain, and distinct-sampler
// emissions). Buffers are reused across batches.
type batchBuilder struct {
	blds    []vecBuilder
	weights []float64
	cols    []Vector
}

// fromRows builds a dense batch from rows; bytes is the precomputed
// row-mode batch size (sum of cached wrow sizes).
func (bb *batchBuilder) fromRows(rows []wrow, bytes float64) Batch {
	width := 0
	if len(rows) > 0 {
		width = len(rows[0].row)
	}
	for len(bb.blds) < width {
		bb.blds = append(bb.blds, vecBuilder{})
	}
	for c := 0; c < width; c++ {
		bb.blds[c].reset()
	}
	bb.weights = bb.weights[:0]
	for _, wr := range rows {
		for c := 0; c < width; c++ {
			bb.blds[c].append(wr.row[c])
		}
		bb.weights = append(bb.weights, wr.w)
	}
	bb.cols = bb.cols[:0]
	for c := 0; c < width; c++ {
		bb.cols = append(bb.cols, bb.blds[c].build())
	}
	return Batch{cols: bb.cols, n: len(rows), weights: bb.weights, bytes: bytes}
}

// colRowSource streams an already-materialized partition (a breaker's
// output) in columnar batches.
type colRowSource struct {
	rows []wrow
	size int
	pos  int
	bb   batchBuilder
}

func (s *colRowSource) Next() (Batch, error) {
	remain := len(s.rows) - s.pos
	if remain <= 0 {
		return Batch{}, nil
	}
	n := s.size
	if n > remain {
		n = remain
	}
	rows := s.rows[s.pos : s.pos+n]
	s.pos += n
	return s.bb.fromRows(rows, rowsBytes(rows)), nil
}

// colFilterOp evaluates the predicate kernel and keeps the truthy lanes
// in the selection, pulling more input until it has survivors.
type colFilterOp struct {
	ctx   context.Context
	child colOperator
	kern  colKernel
	sc    *colScratch
	st    *cluster.Stage
	task  int
	slot  *metrics.Slot
	sel   []int32
}

func (f *colFilterOp) Next() (Batch, error) {
	for {
		// Per-pull cancellation point: a selective kernel can consume
		// many input batches before the drive loop sees an output batch.
		if err := ctxErr(f.ctx); err != nil {
			return Batch{}, err
		}
		b, err := f.child.Next()
		if err != nil || b.Len() == 0 {
			return Batch{}, err
		}
		t0 := time.Now()
		v := f.kern(&b)
		liveIn := b.Len()
		f.sel = f.sel[:0]
		switch v.K {
		case VKBool:
			// NULL lanes carry payload 0, so truthiness is the payload.
			if b.sel != nil {
				for _, i := range b.sel {
					if v.Ints[i] != 0 {
						f.sel = append(f.sel, i)
					}
				}
			} else {
				for i := 0; i < b.n; i++ {
					if v.Ints[i] != 0 {
						f.sel = append(f.sel, int32(i))
					}
				}
			}
		case VKAny:
			if b.sel != nil {
				for _, i := range b.sel {
					if truthy(v.Vals[i]) {
						f.sel = append(f.sel, i)
					}
				}
			} else {
				for i := 0; i < b.n; i++ {
					if truthy(v.Vals[i]) {
						f.sel = append(f.sel, int32(i))
					}
				}
			}
		default:
			// Non-boolean predicate result: nothing passes.
		}
		f.st.AddCPU(f.task, float64(liveIn))
		f.slot.RowsIn += int64(liveIn)
		f.slot.RowsOut += int64(len(f.sel))
		f.slot.KernelLanes += int64(b.n)
		f.slot.FallbackRows += f.sc.takeFallback()
		f.slot.WallNanos += int64(time.Since(t0))
		if len(f.sel) > 0 {
			bytes := liveBytes(b.cols, f.sel)
			f.slot.NoteBatch(bytes)
			return Batch{cols: b.cols, n: b.n, sel: f.sel, weights: b.weights, bytes: bytes}, nil
		}
	}
}

// colProjectOp evaluates one kernel per output expression; the batch
// keeps its selection and weights, only the columns change.
type colProjectOp struct {
	child colOperator
	kerns []colKernel
	cost  float64
	sc    *colScratch
	st    *cluster.Stage
	task  int
	slot  *metrics.Slot
	cols  []Vector
}

func (p *colProjectOp) Next() (Batch, error) {
	b, err := p.child.Next()
	if err != nil || b.Len() == 0 {
		return Batch{}, err
	}
	t0 := time.Now()
	p.cols = p.cols[:0]
	for _, k := range p.kerns {
		p.cols = append(p.cols, k(&b))
	}
	live := b.Len()
	var bytes float64
	if b.sel != nil {
		bytes = liveBytes(p.cols, b.sel)
	} else {
		bytes = 8 * float64(b.n)
		for c := range p.cols {
			bytes += p.cols[c].bytesAll()
		}
	}
	p.st.AddCPU(p.task, p.cost*float64(live))
	p.slot.RowsIn += int64(live)
	p.slot.RowsOut += int64(live)
	p.slot.KernelLanes += int64(b.n)
	p.slot.FallbackRows += p.sc.takeFallback()
	p.slot.NoteBatch(bytes)
	p.slot.WallNanos += int64(time.Since(t0))
	return Batch{cols: p.cols, n: b.n, sel: b.sel, weights: b.weights, bytes: bytes}, nil
}

// colPassOp forwards batches untouched, counting them like passOp.
type colPassOp struct {
	child colOperator
	slot  *metrics.Slot
}

func (p *colPassOp) Next() (Batch, error) {
	b, err := p.child.Next()
	if err != nil || b.Len() == 0 {
		return b, err
	}
	live := b.Len()
	p.slot.RowsIn += int64(live)
	p.slot.RowsOut += int64(live)
	p.slot.NoteBatch(b.bytes)
	return b, nil
}

// colSampleOp runs a real sampler columnar-style. Uniform and universe
// samplers thin the selection in place and scale the weight column
// (sampler.AdmitBatch); the distinct sampler needs materialized rows
// for its sketch, reservoirs and stratum keys, so it gathers each live
// lane through a scratch row, admits it, and re-batches its (much
// smaller) output stream.
type colSampleOp struct {
	ctx    context.Context
	child  colOperator
	sm     sampler.Sampler
	unif   *sampler.Uniform
	uni    *sampler.Universe
	dist   *sampler.Distinct
	colIdx []int

	st   *cluster.Stage
	task int
	slot *metrics.Slot
	sc   *colScratch

	selBuf []int32
	valBuf []table.Value
	out    []wrow
	bb     batchBuilder
	done   bool
}

func (s *colSampleOp) Next() (Batch, error) {
	if s.done {
		return Batch{}, nil
	}
	for {
		// Per-pull cancellation point, mirroring the row-mode sampleOp.
		if err := ctxErr(s.ctx); err != nil {
			return Batch{}, err
		}
		b, err := s.child.Next()
		if err != nil {
			return Batch{}, err
		}
		t0 := time.Now()
		if b.Len() == 0 {
			// End of partition: the reservoir flush is the final batch.
			s.done = true
			out := s.out[:0]
			var bytes float64
			for _, fl := range s.sm.Flush() {
				wr := newWRow(fl.Row, fl.W)
				bytes += wr.sz
				out = append(out, wr)
			}
			s.slot.RowsOut += int64(len(out))
			s.slot.SamplerPassed += int64(len(out))
			if s.dist != nil {
				s.slot.SketchEntries += int64(s.dist.MemoryFootprint())
			}
			if len(out) > 0 {
				s.slot.NoteBatch(bytes)
			}
			s.slot.WallNanos += int64(time.Since(t0))
			s.out = out
			if len(out) == 0 {
				return Batch{}, nil
			}
			return s.bb.fromRows(out, bytes), nil
		}
		liveIn := b.Len()
		switch {
		case s.unif != nil:
			sel := b.liveSel(s.selBuf)
			if b.sel == nil {
				s.selBuf = sel
			}
			newSel := s.unif.AdmitBatch(sel, b.weights)
			s.noteThin(liveIn, newSel, t0)
			if len(newSel) > 0 {
				bytes := liveBytes(b.cols, newSel)
				s.slot.NoteBatch(bytes)
				return Batch{cols: b.cols, n: b.n, sel: newSel, weights: b.weights, bytes: bytes}, nil
			}
		case s.uni != nil:
			sel := b.liveSel(s.selBuf)
			if b.sel == nil {
				s.selBuf = sel
			}
			if cap(s.valBuf) < len(s.colIdx) {
				s.valBuf = make([]table.Value, len(s.colIdx))
			}
			vals := s.valBuf[:len(s.colIdx)]
			seed := s.uni.Seed
			hash := func(lane int32) uint64 {
				for j, ci := range s.colIdx {
					vals[j] = b.cols[ci].Value(int(lane))
				}
				return sampler.HashValues(vals, seed)
			}
			newSel := s.uni.AdmitBatch(sel, b.weights, hash)
			s.noteThin(liveIn, newSel, t0)
			if len(newSel) > 0 {
				bytes := liveBytes(b.cols, newSel)
				s.slot.NoteBatch(bytes)
				return Batch{cols: b.cols, n: b.n, sel: newSel, weights: b.weights, bytes: bytes}, nil
			}
		default: // distinct
			out := s.out[:0]
			var bytes float64
			row := s.sc.row(len(b.cols))
			admit := func(lane int32) {
				for c := range b.cols {
					row[c] = b.cols[c].Value(int(lane))
				}
				if pass, w := s.sm.Admit(row, b.weights[lane]); pass {
					wr := newWRow(row.Clone(), w)
					bytes += wr.sz
					out = append(out, wr)
				}
				for _, fl := range s.dist.TakePending() {
					wr := newWRow(fl.Row, fl.W)
					bytes += wr.sz
					out = append(out, wr)
				}
			}
			if b.sel != nil {
				for _, lane := range b.sel {
					admit(lane)
				}
			} else {
				for i := 0; i < b.n; i++ {
					admit(int32(i))
				}
			}
			s.st.AddCPU(s.task, s.sm.CostPerRow()*float64(liveIn))
			s.slot.RowsIn += int64(liveIn)
			s.slot.RowsOut += int64(len(out))
			s.slot.SamplerSeen += int64(liveIn)
			s.slot.SamplerPassed += int64(len(out))
			s.slot.KernelLanes += int64(liveIn)
			s.slot.WallNanos += int64(time.Since(t0))
			s.out = out
			if len(out) > 0 {
				s.slot.NoteBatch(bytes)
				return s.bb.fromRows(out, bytes), nil
			}
		}
	}
}

// noteThin records the per-batch accounting shared by the selection-
// thinning samplers.
func (s *colSampleOp) noteThin(liveIn int, newSel []int32, t0 time.Time) {
	s.st.AddCPU(s.task, s.sm.CostPerRow()*float64(liveIn))
	s.slot.RowsIn += int64(liveIn)
	s.slot.RowsOut += int64(len(newSel))
	s.slot.SamplerSeen += int64(liveIn)
	s.slot.SamplerPassed += int64(len(newSel))
	s.slot.KernelLanes += int64(liveIn)
	s.slot.WallNanos += int64(time.Since(t0))
}

// colChain is the shared setup for a fused columnar chain: the walk,
// stage wiring and per-op compilation mirror execPipeline; per-partition
// operators are built by operatorFor (kernels compile per partition so
// each owns private buffers).
type colChain struct {
	ex      *executor
	nodes   []PNode // bottom-up, aligned with specs
	specs   []*pipeSpec
	scan    *PScan
	scanOp  *metrics.Op
	src     *stream
	st      *cluster.Stage
	parts   int
	partRaw []float64
}

func (ex *executor) buildColChain(top PNode) (*colChain, error) {
	var chain []PNode
	var scan *PScan
	n := top
	//lint:ignore ctxflow walk is bounded by plan depth and terminates at a scan or breaker
	for {
		if s, ok := n.(*PScan); ok {
			scan = s
			break
		}
		if n.Breaker() {
			break
		}
		chain = append(chain, n)
		n = n.Kids()[0]
	}

	cc := &colChain{ex: ex, scan: scan}
	if scan != nil {
		cc.parts = len(scan.Tbl.Partitions)
		if scan.Prune != nil {
			cc.parts = len(scan.Prune.Keep)
		}
		cc.st = ex.run.NewStage("scan:"+scan.Tbl.Name, cc.parts)
		cc.st.Extract = true
		cc.partRaw = make([]float64, cc.parts)
		cc.scanOp = ex.opFor(scan)
		cc.scanOp.Grow(cc.parts)
		if scan.Prune != nil {
			for i := 0; i < cc.parts; i++ {
				cc.scanOp.Slot(i).PartsScanned = 1
			}
			cc.scanOp.Slot(0).PartsPruned = int64(scan.Prune.Pruned)
		}
	} else {
		s, err := ex.exec(n)
		if err != nil {
			return nil, err
		}
		if name := pipelineStageName(chain); name != "" {
			ex.ensureStage(s, name)
		}
		cc.src = s
		cc.st = s.stage
		cc.parts = len(s.parts)
	}

	for i := len(chain) - 1; i >= 0; i-- {
		sp, err := ex.compilePipeOp(chain[i], cc.parts)
		if err != nil {
			return nil, err
		}
		cc.nodes = append(cc.nodes, chain[i])
		cc.specs = append(cc.specs, sp)
	}
	return cc, nil
}

// operatorFor builds the partition-local columnar operator chain.
func (cc *colChain) operatorFor(i int) (colOperator, *colScratch, error) {
	sc := &colScratch{}
	var cur colOperator
	if cc.scan != nil {
		part, inflate := i, 1.0
		if cc.scan.Prune != nil {
			part = cc.scan.Prune.Keep[i]
			inflate = cc.scan.Prune.Inflate[i]
		}
		cur = &colScanSource{
			p: cc.scan, cp: cc.scan.Tbl.Columnar(part), size: cc.ex.batch,
			inflate: inflate,
			st:      cc.st, task: i, slot: cc.scanOp.Slot(i), raw: &cc.partRaw[i],
		}
	} else {
		cur = &colRowSource{rows: cc.src.parts[i], size: cc.ex.batch}
	}
	for k, sp := range cc.specs {
		slot := sp.op.Slot(i)
		switch x := cc.nodes[k].(type) {
		case *PFilter:
			kern, err := compileColKernel(x.Pred, buildColMap(x.In.Cols()), sc)
			if err != nil {
				return nil, nil, err
			}
			cur = &colFilterOp{ctx: cc.ex.ctx, child: cur, kern: kern, sc: sc, st: cc.st, task: i, slot: slot}
		case *PProject:
			cm := buildColMap(x.In.Cols())
			kerns := make([]colKernel, len(x.Exprs))
			for j, e := range x.Exprs {
				kern, err := compileColKernel(e, cm, sc)
				if err != nil {
					return nil, nil, err
				}
				kerns[j] = kern
			}
			cur = &colProjectOp{child: cur, kerns: kerns, cost: sp.cost, sc: sc, st: cc.st, task: i, slot: slot}
		case *PSample:
			if sp.passthrough {
				cur = &colPassOp{child: cur, slot: slot}
				break
			}
			sm := sp.newSampler(i)
			op := &colSampleOp{
				ctx: cc.ex.ctx, child: cur, sm: sm, colIdx: sp.colIdx,
				st: cc.st, task: i, slot: slot, sc: sc,
			}
			switch t := sm.(type) {
			case *sampler.Uniform:
				op.unif = t
			case *sampler.Universe:
				op.uni = t
			case *sampler.Distinct:
				op.dist = t
			}
			cur = op
		}
	}
	return cur, sc, nil
}

// finish folds the per-partition raw scan bytes into the job total.
func (cc *colChain) finish() {
	for _, b := range cc.partRaw {
		cc.ex.run.JobInputBytes += b
	}
}

// result wraps the materialized partitions as the chain's output stream.
func (cc *colChain) result(outParts [][]wrow) *stream {
	if cc.scan != nil {
		return &stream{parts: outParts, stage: cc.st}
	}
	cc.src.parts = outParts
	return cc.src
}

// execColPipeline runs the fused chain rooted at top column-at-a-time,
// materializing rows only at the sink.
func (ex *executor) execColPipeline(top PNode) (*stream, error) {
	cc, err := ex.buildColChain(top)
	if err != nil {
		return nil, err
	}
	hint := 0
	if topOp := ex.opFor(top); topOp.EstRows > 0 && cc.parts > 0 {
		hint = int(topOp.EstRows)/cc.parts + 1
		if hint > 1<<20 {
			hint = 1 << 20
		}
	}
	outParts := make([][]wrow, cc.parts)
	if err := ex.parallel(cc.parts, func(i int) error {
		cur, _, err := cc.operatorFor(i)
		if err != nil {
			return err
		}
		var arena rowArena
		out := make([]wrow, 0, hint)
		for {
			if err := ctxErr(ex.ctx); err != nil {
				return err
			}
			b, err := cur.Next()
			if err != nil {
				return err
			}
			if b.Len() == 0 {
				break
			}
			out = b.materialize(&arena, out)
		}
		outParts[i] = out
		return nil
	}); err != nil {
		return nil, err
	}
	cc.finish()
	return cc.result(outParts), nil
}

// execAggColumnar fuses a columnar chain directly into the hash
// aggregate: batches feed the aggregation runner through a reusable
// gather row instead of materializing the sampled stream first. All
// stage, slot and estimate accounting matches execAgg over the row
// pipeline.
func (ex *executor) execAggColumnar(p *PHashAgg) (*stream, error) {
	cc, err := ex.buildColChain(p.In)
	if err != nil {
		return nil, err
	}
	if cc.st == nil {
		// Pass-through-only chain over a materialized stream: the
		// aggregate opens the stage, exactly like the row path.
		ex.ensureStage(cc.src, "aggregate")
		cc.st = cc.src.stage
	}
	cm := buildColMap(p.In.Cols())
	partEsts := make([][]GroupEstimate, cc.parts)
	op := ex.opFor(p)
	op.Grow(cc.parts)
	outParts := make([][]wrow, cc.parts)
	t0 := time.Now()
	if err := ex.parallel(cc.parts, func(i int) error {
		cur, sc, err := cc.operatorFor(i)
		if err != nil {
			return err
		}
		r, err := newAggRunner(p, cm)
		if err != nil {
			return err
		}
		nrows := 0
		for {
			if err := ctxErr(ex.ctx); err != nil {
				return err
			}
			b, err := cur.Next()
			if err != nil {
				return err
			}
			if b.Len() == 0 {
				break
			}
			nrows += r.addBatch(&b, sc)
		}
		rows, ests := r.emit()
		// A grouped aggregate on a non-first partition must not emit the
		// empty-input global row.
		if len(p.GroupCols) == 0 && i > 0 && nrows == 0 {
			rows, ests = nil, nil
		}
		outParts[i] = rows
		cc.st.AddCPU(i, 2*float64(nrows))
		sl := op.Slot(i)
		sl.RowsIn += int64(nrows)
		sl.RowsOut += int64(len(rows))
		sl.KernelLanes += int64(nrows)
		if len(rows) > 0 {
			sl.NoteBatch(rowsBytes(rows))
		}
		if p.Top {
			partEsts[i] = ests
		}
		return nil
	}); err != nil {
		return nil, err
	}
	op.AddWall(time.Since(t0))
	cc.finish()
	if p.Top {
		var allEsts []GroupEstimate
		for _, es := range partEsts {
			allEsts = append(allEsts, es...)
		}
		ex.topEstimates = allEsts
	}
	return cc.result(outParts), nil
}
