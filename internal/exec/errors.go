package exec

import (
	"context"
	"errors"
)

// Typed execution errors: a query interrupted by its context reports
// which limit stopped it. Cancellation is checked between partition
// tasks in the shared worker pool and at every batch boundary inside
// fused pipelines, so a canceled query unwinds within one batch.
var (
	// ErrCanceled is returned when the query's context was canceled.
	ErrCanceled = errors.New("exec: query canceled")
	// ErrDeadline is returned when the query's context deadline passed.
	ErrDeadline = errors.New("exec: query deadline exceeded")
)

// mapCtxErr converts context errors into the typed query errors,
// passing every other error through unchanged.
func mapCtxErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.Canceled):
		return ErrCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadline
	}
	return err
}

// ctxErr reports the typed error for a done context, or nil.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return mapCtxErr(ctx.Err())
}
