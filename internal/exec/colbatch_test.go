package exec

import (
	"context"
	"fmt"
	"math"
	"testing"

	"quickr/internal/cluster"
	"quickr/internal/lplan"
	"quickr/internal/table"
)

// runColumnar executes a plan on the vectorized columnar executor.
func runColumnar(t *testing.T, p PNode, batch int) *Result {
	t.Helper()
	res, err := RunWithOptions(context.Background(), p, cluster.DefaultConfig(), nil, Options{BatchSize: batch, Columnar: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sameEstimates asserts two results carry bit-identical group estimates.
func sameEstimates(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if len(want.Estimates) != len(got.Estimates) {
		t.Fatalf("%s: %d estimates, want %d", label, len(got.Estimates), len(want.Estimates))
	}
	for i := range want.Estimates {
		w, g := want.Estimates[i], got.Estimates[i]
		if table.CompareRows(w.Key, g.Key) != 0 || g.SampleRows != w.SampleRows {
			t.Fatalf("%s: estimate %d key/rows differ: %+v vs %+v", label, i, g, w)
		}
		if table.CompareRows(w.Values, g.Values) != 0 {
			t.Fatalf("%s: estimate %d values differ: %v vs %v", label, i, g.Values, w.Values)
		}
		for j := range w.StdErr {
			if math.Float64bits(w.StdErr[j]) != math.Float64bits(g.StdErr[j]) {
				t.Fatalf("%s: estimate %d stderr %d differs: %v vs %v", label, i, j, g.StdErr, w.StdErr)
			}
		}
	}
}

// The acceptance bar of the columnar refactor: for every sampler type
// and batch size, the vectorized executor's results are bit-identical
// to the row-materializing oracle (batch < 0, which ignores Columnar).
func TestColumnarBitIdenticalAcrossModes(t *testing.T) {
	samplers := map[string]*lplan.SamplerDef{
		"nosampler": nil,
		"uniform":   {Type: lplan.SamplerUniform, P: 0.25},
		"universe":  {Type: lplan.SamplerUniverse, P: 0.25, Cols: []lplan.ColumnID{1}, Seed: 99},
		"distinct":  {Type: lplan.SamplerDistinct, P: 0.1, Cols: []lplan.ColumnID{1}, Delta: 4},
		"passthru":  {Type: lplan.SamplerPassThrough},
	}
	for name, def := range samplers {
		t.Run(name, func(t *testing.T) {
			tbl, _ := buildT("ct_"+name, 8, pipelineRows(4000))
			base := runBatched(t, chainOf(tbl, def, 7), -1) // row-mode oracle
			for _, bs := range []int{1, 3, 7, 64, 0, DefaultBatchSize + 1} {
				got := runColumnar(t, chainOf(tbl, def, 7), bs)
				sameRows(t, base, got, fmt.Sprintf("columnar batch=%d", bs))
			}
		})
	}
}

// mixedTable builds a table exercising every vector kind: ints, floats,
// strings (with repeats, so dictionaries kick in), bools and NULLs.
func mixedTable(name string, parts, n int) *table.Table {
	sc := table.NewSchema(
		table.Column{Name: "i", Kind: table.KindInt},
		table.Column{Name: "f", Kind: table.KindFloat},
		table.Column{Name: "s", Kind: table.KindString},
		table.Column{Name: "b", Kind: table.KindBool},
		table.Column{Name: "m", Kind: table.KindFloat}, // mixed kinds + nulls
	)
	tbl := table.New(name, sc, parts)
	words := []string{"alpha", "beta", "gamma", "", "delta%x", "epsilon"}
	for i := 0; i < n; i++ {
		iv := table.NewInt(int64(i%97 - 40))
		fv := table.NewFloat(float64(i) / 3)
		sv := table.NewString(words[i%len(words)])
		bv := table.NewBool(i%3 == 0)
		var mv table.Value // cycles through null / int / float / string
		switch i % 4 {
		case 1:
			mv = table.NewInt(int64(i % 13))
		case 2:
			mv = table.NewFloat(float64(i%7) / 2)
		case 3:
			mv = table.NewString(words[i%3])
		}
		if i%11 == 5 {
			iv = table.Value{} // null int lane
		}
		if i%13 == 6 {
			fv = table.Value{}
		}
		if i%17 == 7 {
			sv = table.Value{}
		}
		if i%19 == 8 {
			bv = table.Value{}
		}
		tbl.Append(i, table.Row{iv, fv, sv, bv, mv})
	}
	return tbl
}

// colRefsOf returns one ColRef per scan output column.
func colRefsOf(scan *PScan) []*lplan.ColRef {
	refs := make([]*lplan.ColRef, len(scan.OutCols))
	for i, c := range scan.OutCols {
		refs[i] = &lplan.ColRef{ID: c.ID, Name: c.Name, Kind: c.Kind}
	}
	return refs
}

// Every kernel class — comparisons, arithmetic, AND/OR, NOT/NEG,
// IS NULL, IN, LIKE, and the row-at-a-time fallback (CASE) — must agree
// bit-for-bit with the row-mode closures over mixed-kind, NULL-laden
// input, both as filter predicates and projected expressions.
func TestColumnarExpressionKernels(t *testing.T) {
	tbl := mixedTable("cexpr", 6, 3000)
	mk := func(pred lplan.Expr, exprs ...lplan.Expr) PNode {
		scan := scanOf(tbl)
		r := colRefsOf(scan)
		// Re-resolve refs against this scan's fresh IDs.
		reb := func(e lplan.Expr) lplan.Expr { return rebindExpr(e, r) }
		var node PNode = scan
		if pred != nil {
			node = &PFilter{In: node, Pred: reb(pred)}
		}
		if len(exprs) > 0 {
			out := make([]lplan.ColumnInfo, len(exprs))
			rex := make([]lplan.Expr, len(exprs))
			for i, e := range exprs {
				nextID++
				out[i] = lplan.ColumnInfo{ID: nextID, Name: fmt.Sprintf("e%d", i), Kind: table.KindFloat}
				rex[i] = reb(e)
			}
			node = &PProject{In: node, Exprs: rex, OutCols: out}
		}
		return node
	}
	// Templates use placeholder ColRefs with IDs 0..4 (rebound per scan).
	c := func(i int) lplan.Expr { return &lplan.ColRef{ID: lplan.ColumnID(i)} }
	lit := func(v table.Value) lplan.Expr { return &lplan.Const{Val: v} }
	cases := []struct {
		name  string
		pred  lplan.Expr
		exprs []lplan.Expr
	}{
		{"cmp-int", &lplan.Binary{Op: lplan.OpGt, L: c(0), R: lit(table.NewInt(3))}, nil},
		{"cmp-float-mix", &lplan.Binary{Op: lplan.OpLe, L: c(1), R: c(0)}, nil},
		{"cmp-str-const", &lplan.Binary{Op: lplan.OpGe, L: c(2), R: lit(table.NewString("beta"))}, nil},
		{"cmp-any", &lplan.Binary{Op: lplan.OpEq, L: c(4), R: lit(table.NewInt(5))}, nil},
		{"ne-str", &lplan.Binary{Op: lplan.OpNe, L: c(2), R: lit(table.NewString("gamma"))}, nil},
		{"and-or", &lplan.Binary{Op: lplan.OpOr,
			L: &lplan.Binary{Op: lplan.OpAnd, L: c(3), R: &lplan.Binary{Op: lplan.OpLt, L: c(0), R: lit(table.NewInt(10))}},
			R: &lplan.Binary{Op: lplan.OpGt, L: c(1), R: lit(table.NewFloat(900))}}, nil},
		{"not", &lplan.Not{X: c(3)}, nil},
		{"isnull", &lplan.IsNull{X: c(4)}, nil},
		{"isnotnull", &lplan.IsNull{X: c(1), Inv: true}, nil},
		{"in-int", &lplan.In{X: c(0), Vals: []table.Value{table.NewInt(1), table.NewInt(7), table.NewFloat(12)}}, nil},
		{"in-str-inv", &lplan.In{X: c(2), Vals: []table.Value{table.NewString("alpha"), table.NewString("")}, Inv: true}, nil},
		{"in-any", &lplan.In{X: c(4), Vals: []table.Value{table.NewInt(3), table.NewString("beta"), table.NewFloat(1.5)}}, nil},
		{"like", &lplan.Like{X: c(2), Pattern: "%a"}, nil},
		{"like-esc", &lplan.Like{X: c(2), Pattern: "delta\\%_", Inv: true}, nil},
		{"arith-int", nil, []lplan.Expr{
			&lplan.Binary{Op: lplan.OpAdd, L: c(0), R: lit(table.NewInt(2))},
			&lplan.Binary{Op: lplan.OpMod, L: c(0), R: lit(table.NewInt(5))},
			&lplan.Binary{Op: lplan.OpMod, L: c(0), R: lit(table.NewInt(0))},
		}},
		{"arith-mix", nil, []lplan.Expr{
			&lplan.Binary{Op: lplan.OpMul, L: c(1), R: c(0)},
			&lplan.Binary{Op: lplan.OpDiv, L: c(1), R: c(0)},
			&lplan.Binary{Op: lplan.OpSub, L: c(4), R: lit(table.NewFloat(1))},
			&lplan.Neg{X: c(0)},
			&lplan.Neg{X: c(4)},
		}},
		{"arith-nonnum", nil, []lplan.Expr{
			&lplan.Binary{Op: lplan.OpAdd, L: c(2), R: lit(table.NewInt(1))},
		}},
		{"fallback-case", &lplan.Case{
			Whens: []lplan.When{{Cond: &lplan.Binary{Op: lplan.OpGt, L: c(0), R: lit(table.NewInt(0))}, Then: c(3)}},
			Else:  lit(table.NewBool(false)),
		}, []lplan.Expr{
			&lplan.Case{
				Whens: []lplan.When{{Cond: c(3), Then: c(1)}},
				Else:  &lplan.Neg{X: c(1)},
			},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := runBatched(t, mk(tc.pred, tc.exprs...), -1)
			got := runColumnar(t, mk(tc.pred, tc.exprs...), 113)
			sameRows(t, base, got, tc.name)
		})
	}
}

// rebindExpr rewrites placeholder ColRefs (ID < 100 = positional column
// index) onto the scan's real output IDs.
func rebindExpr(e lplan.Expr, refs []*lplan.ColRef) lplan.Expr {
	switch x := e.(type) {
	case *lplan.ColRef:
		if int(x.ID) < len(refs) {
			return refs[x.ID]
		}
		return x
	case *lplan.Binary:
		return &lplan.Binary{Op: x.Op, L: rebindExpr(x.L, refs), R: rebindExpr(x.R, refs)}
	case *lplan.Not:
		return &lplan.Not{X: rebindExpr(x.X, refs)}
	case *lplan.Neg:
		return &lplan.Neg{X: rebindExpr(x.X, refs)}
	case *lplan.IsNull:
		return &lplan.IsNull{X: rebindExpr(x.X, refs), Inv: x.Inv}
	case *lplan.In:
		return &lplan.In{X: rebindExpr(x.X, refs), Vals: x.Vals, Inv: x.Inv}
	case *lplan.Like:
		return &lplan.Like{X: rebindExpr(x.X, refs), Pattern: x.Pattern, Inv: x.Inv}
	case *lplan.Case:
		out := &lplan.Case{}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, lplan.When{Cond: rebindExpr(w.Cond, refs), Then: rebindExpr(w.Then, refs)})
		}
		if x.Else != nil {
			out.Else = rebindExpr(x.Else, refs)
		}
		return out
	default:
		return e
	}
}

// Selection-vector extremes: predicates that keep nothing, exactly one
// row, and everything must all round-trip identically, as must empty
// tables and partitions (zero-length batches).
func TestColumnarSelectionExtremes(t *testing.T) {
	tbl, _ := buildT("csel", 5, pipelineRows(1000))
	mkPred := func(pred lplan.Expr) PNode {
		scan := scanOf(tbl)
		r := colRefsOf(scan)
		return &PFilter{In: scan, Pred: rebindExpr(pred, r)}
	}
	c0 := &lplan.ColRef{ID: 0}
	c1 := &lplan.ColRef{ID: 1}
	preds := map[string]lplan.Expr{
		"none": &lplan.Binary{Op: lplan.OpLt, L: c0, R: &lplan.Const{Val: table.NewInt(-1)}},
		"one":  &lplan.Binary{Op: lplan.OpEq, L: c1, R: &lplan.Const{Val: table.NewFloat(500)}},
		"all":  &lplan.Binary{Op: lplan.OpGe, L: c0, R: &lplan.Const{Val: table.NewInt(0)}},
	}
	for name, pred := range preds {
		t.Run(name, func(t *testing.T) {
			base := runBatched(t, mkPred(pred), -1)
			got := runColumnar(t, mkPred(pred), 64)
			sameRows(t, base, got, name)
			switch name {
			case "none":
				if len(got.Rows) != 0 {
					t.Fatalf("kept %d rows", len(got.Rows))
				}
			case "one":
				if len(got.Rows) != 1 {
					t.Fatalf("kept %d rows, want 1", len(got.Rows))
				}
			case "all":
				if len(got.Rows) != 1000 {
					t.Fatalf("kept %d rows, want 1000", len(got.Rows))
				}
			}
		})
	}
	t.Run("empty-table", func(t *testing.T) {
		empty, _ := buildT("cempty", 6, nil)
		def := &lplan.SamplerDef{Type: lplan.SamplerDistinct, P: 0.1, Cols: []lplan.ColumnID{1}, Delta: 2}
		res := runColumnar(t, chainOf(empty, def, 3), 0)
		if len(res.Rows) != 0 {
			t.Fatalf("empty table produced %d rows", len(res.Rows))
		}
	})
	t.Run("sparse-partitions", func(t *testing.T) {
		sc := table.NewSchema(
			table.Column{Name: "k", Kind: table.KindInt},
			table.Column{Name: "v", Kind: table.KindFloat},
		)
		sparse := table.New("csparse", sc, 16)
		for i := 0; i < 400; i++ {
			sparse.Append(0, table.Row{table.NewInt(int64(i % 11)), table.NewFloat(float64(i))})
		}
		base := runBatched(t, chainOf(sparse, nil, 0), -1)
		got := runColumnar(t, chainOf(sparse, nil, 0), 32)
		sameRows(t, base, got, "sparse")
	})
}

// An all-null column must survive the columnar scan→project→breaker trip.
func TestColumnarAllNullColumn(t *testing.T) {
	sc := table.NewSchema(
		table.Column{Name: "k", Kind: table.KindInt},
		table.Column{Name: "n", Kind: table.KindFloat},
	)
	tbl := table.New("cnull", sc, 4)
	for i := 0; i < 500; i++ {
		tbl.Append(i, table.Row{table.NewInt(int64(i)), table.Value{}})
	}
	mk := func() PNode {
		scan := scanOf(tbl)
		r := colRefsOf(scan)
		nextID += 2
		return &PProject{In: scan, Exprs: []lplan.Expr{
			r[1],
			&lplan.Binary{Op: lplan.OpAdd, L: r[1], R: r[0]},
		}, OutCols: []lplan.ColumnInfo{
			{ID: nextID - 1, Name: "n2", Kind: table.KindFloat},
			{ID: nextID, Name: "sum", Kind: table.KindFloat},
		}}
	}
	base := runBatched(t, mk(), -1)
	got := runColumnar(t, mk(), 64)
	sameRows(t, base, got, "all-null")
	if !got.Rows[7][0].IsNull() || !got.Rows[7][1].IsNull() {
		t.Fatalf("null column not preserved: %v", got.Rows[7])
	}
}

// Weights must propagate through chained samplers exactly as in row
// mode: two stacked uniform samplers compose their 1/p scalings, which
// the weighted aggregate then surfaces in its estimates.
func TestColumnarChainedSamplerWeights(t *testing.T) {
	tbl, _ := buildT("cchain", 4, pipelineRows(8000))
	mk := func() PNode {
		scan := scanOf(tbl)
		k, v := scan.OutCols[0], scan.OutCols[1]
		s1 := &PSample{In: scan, Def: lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.5}, Seed: 11}
		s2 := &PSample{In: s1, Def: lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.5}, Seed: 12}
		nextID += 2
		return &PHashAgg{
			In:        s2,
			GroupCols: []lplan.ColumnID{k.ID},
			GroupInfo: []lplan.ColumnInfo{k},
			Aggs: []lplan.AggSpec{
				{Kind: lplan.AggSum, Arg: v.ID, Out: lplan.ColumnInfo{ID: nextID - 1, Name: "s", Kind: table.KindFloat}},
				{Kind: lplan.AggCount, Arg: lplan.NoColumn, Out: lplan.ColumnInfo{ID: nextID, Name: "c", Kind: table.KindInt}},
			},
			Top: true,
		}
	}
	base := runBatched(t, mk(), -1)
	got := runColumnar(t, mk(), 97)
	sameRows(t, base, got, "chained-samplers")
	sameEstimates(t, base, got, "chained-samplers")
	// The composed weight 1/(0.5*0.5)=4 must make COUNT estimate ~8000.
	var est float64
	for _, r := range got.Rows {
		est += float64(r[2].Int())
	}
	if est < 4000 || est > 12000 {
		t.Fatalf("composed weights look wrong: total count estimate %v", est)
	}
}

// The fused columnar pre-aggregation must match row mode bit-for-bit,
// including estimates, for grouped and global aggregates.
func TestColumnarFusedAggBitIdentical(t *testing.T) {
	tbl, _ := buildT("cagg", 8, pipelineRows(6000))
	mk := func(global bool) PNode {
		scan := scanOf(tbl)
		k, v := scan.OutCols[0], scan.OutCols[1]
		smp := &PSample{In: scan, Def: lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.25}, Seed: 5}
		nextID += 2
		agg := &PHashAgg{
			In: smp,
			Aggs: []lplan.AggSpec{
				{Kind: lplan.AggSum, Arg: v.ID, Out: lplan.ColumnInfo{ID: nextID - 1, Name: "s", Kind: table.KindFloat}},
				{Kind: lplan.AggCount, Arg: lplan.NoColumn, Out: lplan.ColumnInfo{ID: nextID, Name: "c", Kind: table.KindInt}},
			},
			Top: true,
		}
		if !global {
			agg.GroupCols = []lplan.ColumnID{k.ID}
			agg.GroupInfo = []lplan.ColumnInfo{k}
		}
		return agg
	}
	for _, global := range []bool{false, true} {
		name := map[bool]string{false: "grouped", true: "global"}[global]
		t.Run(name, func(t *testing.T) {
			base := runBatched(t, mk(global), -1)
			got := runColumnar(t, mk(global), 73)
			sameRows(t, base, got, name)
			sameEstimates(t, base, got, name)
		})
	}
}

// Hammer the fused columnar chain across many partitions repeatedly;
// under -race this proves the per-partition kernel scratch, selection
// buffers and metric slots stay disjoint.
func TestColumnarParallelHammerRaceFree(t *testing.T) {
	tbl, _ := buildT("crace", 64, pipelineRows(6400))
	def := &lplan.SamplerDef{Type: lplan.SamplerDistinct, P: 0.2, Cols: []lplan.ColumnID{1}, Delta: 3}
	var want *Result
	for round := 0; round < 8; round++ {
		res := runColumnar(t, chainOf(tbl, def, 11), 17)
		if want == nil {
			want = res
		} else {
			sameRows(t, want, res, fmt.Sprintf("round=%d", round))
		}
	}
	base := runBatched(t, chainOf(tbl, def, 11), -1)
	sameRows(t, base, want, "vs row oracle")
}

// Columnar runs must report kernel telemetry (physical lanes through
// vectorized kernels); row-mode runs must not, keeping their JSON
// reports byte-identical to before the columnar executor existed.
func TestColumnarKernelTelemetry(t *testing.T) {
	tbl, _ := buildT("ctel", 4, pipelineRows(2000))
	colRes := runColumnar(t, chainOf(tbl, nil, 0), 100)
	var colLanes int64
	for _, op := range colRes.Stats.Ops() {
		colLanes += op.Total().KernelLanes
	}
	if colLanes == 0 {
		t.Fatal("columnar run reported no kernel lanes")
	}
	rowRes := runBatched(t, chainOf(tbl, nil, 0), 100)
	for _, op := range rowRes.Stats.Ops() {
		tot := op.Total()
		if tot.KernelLanes != 0 || tot.FallbackRows != 0 {
			t.Fatalf("row-mode run leaked kernel telemetry: %+v", tot)
		}
	}
}

// Dictionary builders must survive growth far past their initial
// capacity: a high-cardinality string column pushed through a columnar
// project (fallback CASE keeps the builder path busy) stays exact.
func TestColumnarDictionaryGrowth(t *testing.T) {
	sc := table.NewSchema(
		table.Column{Name: "k", Kind: table.KindInt},
		table.Column{Name: "s", Kind: table.KindString},
	)
	tbl := table.New("cdict", sc, 3)
	for i := 0; i < 4000; i++ {
		v := table.NewString(fmt.Sprintf("tag-%04d", i%2500)) // > initial dict caps
		if i%29 == 3 {
			v = table.Value{}
		}
		tbl.Append(i, table.Row{table.NewInt(int64(i)), v})
	}
	mk := func() PNode {
		scan := scanOf(tbl)
		r := colRefsOf(scan)
		nextID += 2
		return &PProject{In: scan, Exprs: []lplan.Expr{
			&lplan.Case{ // fallback kernel rebuilds the dict lane by lane
				Whens: []lplan.When{{Cond: &lplan.IsNull{X: r[1], Inv: true}, Then: r[1]}},
				Else:  &lplan.Const{Val: table.NewString("missing")},
			},
			&lplan.Binary{Op: lplan.OpGt, L: r[1], R: &lplan.Const{Val: table.NewString("tag-1000")}},
		}, OutCols: []lplan.ColumnInfo{
			{ID: nextID - 1, Name: "s2", Kind: table.KindString},
			{ID: nextID, Name: "gt", Kind: table.KindBool},
		}}
	}
	base := runBatched(t, mk(), -1)
	got := runColumnar(t, mk(), 512)
	sameRows(t, base, got, "dict-growth")
}
