package exec

import (
	"math"
	"sort"
	"strings"

	"quickr/internal/lplan"
	"quickr/internal/table"
)

// aggRunner computes one PHashAgg over one partition. With an
// EstimatorConfig it produces Horvitz–Thompson estimates (Table 8
// rewrites) plus one-pass variance estimates (Proposition 2/3):
//
//	SUM(X)            -> SUM(w·X)
//	COUNT(*)          -> SUM(w)
//	AVG(X)            -> SUM(w·X)/SUM(w)
//	SUMIF(F, X)       -> SUM(IF(F, w·X, 0))
//	COUNTIF(F)        -> SUM(IF(F, w, 0))
//	COUNT(DISTINCT X) -> COUNT(DISTINCT X)·(univ(X) ? 1/p : 1)
//
// Variance: for the uniform and distinct samplers rows are included
// independently, so Var̂[Σ w·x] = Σ_{i∈sample} (w_i²−w_i)·x_i². For the
// universe sampler whole key-subspaces are included together, so the
// variance is computed over per-subspace partial sums Y_g:
// Var̂ = ((1−p)/p²)·Σ_{g∈sample} Y_g².
type aggRunner struct {
	p        *PHashAgg
	groupIdx []int
	argIdx   []int
	condIdx  []int
	uniIdx   []int // positions of universe columns, if present in input
	groups   map[string]*groupAcc
}

type groupAcc struct {
	key  []table.Value
	n    int64
	aggs []aggAcc
}

type aggAcc struct {
	sumWX    float64
	sumW     float64
	varTerm  float64 // Σ (w²−w)·x² (row-independent samplers)
	distinct map[string]bool
	min, max table.Value
	uniSub   map[string]float64 // per-universe-subspace Σx
	seen     bool
}

func newAggRunner(p *PHashAgg, cm colMap) (*aggRunner, error) {
	r := &aggRunner{p: p, groups: map[string]*groupAcc{}}
	for _, g := range p.GroupCols {
		i, ok := cm[g]
		if !ok {
			return nil, errColMissing(g)
		}
		r.groupIdx = append(r.groupIdx, i)
	}
	for _, a := range p.Aggs {
		ai, ci := -1, -1
		if a.Arg != lplan.NoColumn {
			i, ok := cm[a.Arg]
			if !ok {
				return nil, errColMissing(a.Arg)
			}
			ai = i
		}
		if a.Cond != lplan.NoColumn {
			i, ok := cm[a.Cond]
			if !ok {
				return nil, errColMissing(a.Cond)
			}
			ci = i
		}
		r.argIdx = append(r.argIdx, ai)
		r.condIdx = append(r.condIdx, ci)
	}
	if p.Est != nil && p.Est.Type == lplan.SamplerUniverse {
		for _, u := range p.Est.UniverseCols {
			if i, ok := cm[u]; ok {
				r.uniIdx = append(r.uniIdx, i)
			}
		}
	}
	return r, nil
}

type colMissingError lplan.ColumnID

func (e colMissingError) Error() string { return "exec: aggregate input column missing" }

func errColMissing(id lplan.ColumnID) error { return colMissingError(id) }

func (r *aggRunner) add(row table.Row, w float64) {
	var kb strings.Builder
	for _, i := range r.groupIdx {
		kb.WriteString(row[i].Key())
		kb.WriteByte(0)
	}
	key := kb.String()
	g, ok := r.groups[key]
	if !ok {
		g = &groupAcc{key: make([]table.Value, len(r.groupIdx)), aggs: make([]aggAcc, len(r.p.Aggs))}
		for j, i := range r.groupIdx {
			g.key[j] = row[i]
		}
		r.groups[key] = g
	}
	g.n++

	uniKey := ""
	if len(r.uniIdx) > 0 {
		var ub strings.Builder
		for _, i := range r.uniIdx {
			ub.WriteString(row[i].Key())
			ub.WriteByte(0)
		}
		uniKey = ub.String()
	}

	for j, spec := range r.p.Aggs {
		acc := &g.aggs[j]
		ai, ci := r.argIdx[j], r.condIdx[j]
		condTrue := true
		if ci >= 0 {
			condTrue = truthy(row[ci])
		}
		var x float64
		use := false
		switch spec.Kind {
		case lplan.AggCount:
			if ai < 0 || !row[ai].IsNull() {
				x, use = 1, true
			}
		case lplan.AggCountIf:
			if condTrue {
				x, use = 1, true
			}
		case lplan.AggSum:
			if ai >= 0 && !row[ai].IsNull() {
				x, use = row[ai].Float(), true
			}
		case lplan.AggSumIf:
			if condTrue && ai >= 0 && !row[ai].IsNull() {
				x, use = row[ai].Float(), true
			}
		case lplan.AggAvg:
			if condTrue && ai >= 0 && !row[ai].IsNull() {
				x, use = row[ai].Float(), true
			}
		case lplan.AggCountDistinct:
			if ai >= 0 && !row[ai].IsNull() {
				if acc.distinct == nil {
					acc.distinct = map[string]bool{}
				}
				acc.distinct[row[ai].Key()] = true
			}
		case lplan.AggMin:
			if ai >= 0 && !row[ai].IsNull() {
				if acc.min.IsNull() || row[ai].Compare(acc.min) < 0 {
					acc.min = row[ai]
				}
				acc.seen = true
			}
		case lplan.AggMax:
			if ai >= 0 && !row[ai].IsNull() {
				if acc.max.IsNull() || row[ai].Compare(acc.max) > 0 {
					acc.max = row[ai]
				}
				acc.seen = true
			}
		}
		if use {
			acc.sumWX += w * x
			acc.varTerm += (w*w - w) * x * x
			acc.seen = true
			if uniKey != "" {
				if acc.uniSub == nil {
					acc.uniSub = map[string]float64{}
				}
				acc.uniSub[uniKey] += x
			}
		}
		// Denominator weight for AVG tracks the same condition filter.
		if spec.Kind == lplan.AggAvg && condTrue && ai >= 0 && !row[ai].IsNull() {
			acc.sumW += w
		}
	}
}

// finishGroup converts a group's accumulators into output values and
// standard errors.
func (r *aggRunner) finishGroup(g *groupAcc) ([]table.Value, []float64) {
	est := r.p.Est
	vals := make([]table.Value, len(r.p.Aggs))
	errs := make([]float64, len(r.p.Aggs))
	for j, spec := range r.p.Aggs {
		acc := &g.aggs[j]
		var v float64
		switch spec.Kind {
		case lplan.AggCount, lplan.AggCountIf, lplan.AggSum, lplan.AggSumIf:
			v = acc.sumWX
		case lplan.AggAvg:
			if acc.sumW > 0 {
				v = acc.sumWX / acc.sumW
			} else {
				vals[j] = table.Null
				continue
			}
		case lplan.AggCountDistinct:
			n := float64(len(acc.distinct))
			if est != nil && est.Type == lplan.SamplerUniverse && est.P > 0 && r.argIsUniverse(spec) {
				n /= est.P
			}
			vals[j] = table.NewInt(int64(math.Round(n)))
			continue
		case lplan.AggMin:
			vals[j] = acc.min
			continue
		case lplan.AggMax:
			vals[j] = acc.max
			continue
		}
		// Variance estimate.
		variance := acc.varTerm
		if est != nil && est.Type == lplan.SamplerUniverse && est.P > 0 && len(acc.uniSub) > 0 {
			var sub float64
			for _, y := range acc.uniSub {
				sub += y * y
			}
			uvar := (1 - est.P) / (est.P * est.P) * sub
			if uvar > variance {
				variance = uvar
			}
		}
		if variance > 0 {
			errs[j] = math.Sqrt(variance)
			if spec.Kind == lplan.AggAvg && acc.sumW > 0 {
				errs[j] /= acc.sumW
			}
		}
		switch spec.Out.Kind {
		case table.KindInt:
			vals[j] = table.NewInt(int64(math.Round(v)))
		default:
			vals[j] = table.NewFloat(v)
		}
	}
	return vals, errs
}

// argIsUniverse reports whether the aggregate argument is exactly over
// the universe-sampled columns (the COUNT DISTINCT scaling case of
// Table 8).
func (r *aggRunner) argIsUniverse(spec lplan.AggSpec) bool {
	if r.p.Est == nil {
		return false
	}
	for _, u := range r.p.Est.UniverseCols {
		if u == spec.Arg {
			return true
		}
	}
	return false
}

// emit renders the partition's groups as output rows (deterministically
// ordered) plus estimate records.
func (r *aggRunner) emit() ([]wrow, []GroupEstimate) {
	keys := make([]string, 0, len(r.groups))
	for k := range r.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([]wrow, 0, len(keys))
	ests := make([]GroupEstimate, 0, len(keys))
	for _, k := range keys {
		g := r.groups[k]
		vals, errs := r.finishGroup(g)
		row := make(table.Row, 0, len(g.key)+len(vals))
		row = append(row, g.key...)
		row = append(row, vals...)
		rows = append(rows, newWRow(row, 1))
		ests = append(ests, GroupEstimate{Key: g.key, Values: vals, StdErr: errs, SampleRows: g.n})
	}
	// Global aggregate over an empty input still yields one row.
	if len(r.groups) == 0 && len(r.groupIdx) == 0 {
		row := make(table.Row, len(r.p.Aggs))
		for j, spec := range r.p.Aggs {
			switch spec.Kind {
			case lplan.AggCount, lplan.AggCountIf, lplan.AggCountDistinct:
				row[j] = table.NewInt(0)
			default:
				row[j] = table.Null
			}
		}
		rows = append(rows, newWRow(row, 1))
		ests = append(ests, GroupEstimate{Values: row, StdErr: make([]float64, len(r.p.Aggs))})
	}
	return rows, ests
}

// GroupEstimate is the per-group outcome of the top aggregate: values,
// standard errors of the HT estimators, and sample support.
type GroupEstimate struct {
	Key        []table.Value
	Values     []table.Value
	StdErr     []float64
	SampleRows int64
}
