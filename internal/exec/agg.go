package exec

import (
	"math"
	"sort"

	"quickr/internal/accuracy"
	"quickr/internal/lplan"
	"quickr/internal/table"
)

// aggRunner computes one PHashAgg over one partition. With an
// EstimatorConfig it produces Horvitz–Thompson estimates (Table 8
// rewrites) plus one-pass variance estimates (Proposition 2/3):
//
//	SUM(X)            -> SUM(w·X)
//	COUNT(*)          -> SUM(w)
//	AVG(X)            -> SUM(w·X)/SUM(w)
//	SUMIF(F, X)       -> SUM(IF(F, w·X, 0))
//	COUNTIF(F)        -> SUM(IF(F, w, 0))
//	COUNT(DISTINCT X) -> COUNT(DISTINCT X)·(univ(X) ? 1/p : 1)
//
// Variance: for the uniform and distinct samplers rows are included
// independently, so Var̂[Σ w·x] = Σ_{i∈sample} (w_i²−w_i)·x_i². For the
// universe sampler whole key-subspaces are included together, so the
// variance is computed over per-subspace partial sums Y_g:
// Var̂ = ((1−p)/p²)·Σ_{g∈sample} Y_g².
type aggRunner struct {
	p        *PHashAgg
	groupIdx []int
	argIdx   []int
	condIdx  []int
	uniIdx   []int // positions of universe columns, if present in input
	// Groups are found by 64-bit canonical hash through an
	// open-addressing index (key equality verified on collision), so the
	// per-row hot loop allocates nothing for already-seen groups. The
	// dense group array is in first-seen order; each group's legacy
	// concatenated string key is built once at creation and only used to
	// reproduce the historical emit order.
	idx    *hashIndex
	groups []*groupAcc
	keyBuf []byte // scratch for canonical key strings (new groups only)
}

type groupAcc struct {
	key  []table.Value
	skey string // concatenated Value.Key() form; sorted at emit
	n    int64
	aggs []aggAcc
}

type aggAcc struct {
	sumWX    float64
	sumW     float64
	varTerm  float64 // Σ (w²−w)·x² (row-independent samplers)
	distinct map[string]bool
	min, max table.Value
	uni      *uniAcc // per-universe-subspace Σx
	seen     bool
}

// uniAcc accumulates per-universe-subspace partial sums Y_g for the
// universe variance estimator, hash-indexed like the group table so
// rows of an already-seen subspace cost no allocation.
type uniAcc struct {
	idx  *hashIndex
	keys [][]table.Value
	sums []float64
}

// add folds x into the subspace holding row's universe columns.
func (u *uniAcc) add(h uint64, row table.Row, uniIdx []int, x float64) {
	e := u.idx.probe(h, func(i int) bool { return rowKeyEqualValues(u.keys[i], row, uniIdx) })
	if e < 0 {
		key := make([]table.Value, len(uniIdx))
		for j, i := range uniIdx {
			key[j] = row[i]
		}
		e = u.idx.add(h)
		u.keys = append(u.keys, key)
		u.sums = append(u.sums, 0)
	}
	u.sums[e] += x
}

func newAggRunner(p *PHashAgg, cm colMap) (*aggRunner, error) {
	r := &aggRunner{p: p, idx: newHashIndex(16)}
	for _, g := range p.GroupCols {
		i, ok := cm[g]
		if !ok {
			return nil, errColMissing(g)
		}
		r.groupIdx = append(r.groupIdx, i)
	}
	for _, a := range p.Aggs {
		ai, ci := -1, -1
		if a.Arg != lplan.NoColumn {
			i, ok := cm[a.Arg]
			if !ok {
				return nil, errColMissing(a.Arg)
			}
			ai = i
		}
		if a.Cond != lplan.NoColumn {
			i, ok := cm[a.Cond]
			if !ok {
				return nil, errColMissing(a.Cond)
			}
			ci = i
		}
		r.argIdx = append(r.argIdx, ai)
		r.condIdx = append(r.condIdx, ci)
	}
	if p.Est != nil && p.Est.Type == lplan.SamplerUniverse {
		for _, u := range p.Est.UniverseCols {
			if i, ok := cm[u]; ok {
				r.uniIdx = append(r.uniIdx, i)
			}
		}
	}
	return r, nil
}

type colMissingError lplan.ColumnID

func (e colMissingError) Error() string { return "exec: aggregate input column missing" }

func errColMissing(id lplan.ColumnID) error { return colMissingError(id) }

//hot:per-input-row grouped-aggregation accumulate, gated by BenchmarkGroupedAgg and BenchmarkRowPathPreAgg
func (r *aggRunner) add(row table.Row, w float64) {
	h := hashRowKey(row, r.groupIdx)
	gi := r.idx.probe(h, func(i int) bool { return rowKeyEqualValues(r.groups[i].key, row, r.groupIdx) })
	var g *groupAcc
	if gi >= 0 {
		g = r.groups[gi]
	} else {
		g = &groupAcc{key: make([]table.Value, len(r.groupIdx)), aggs: make([]aggAcc, len(r.p.Aggs))}
		for j, i := range r.groupIdx {
			g.key[j] = row[i]
		}
		r.keyBuf = appendRowKey(r.keyBuf[:0], row, r.groupIdx)
		g.skey = string(r.keyBuf)
		r.idx.add(h)
		r.groups = append(r.groups, g)
	}
	g.n++

	// The universe-subspace hash is only needed on accumulation paths
	// that actually consume it; computed at most once per row.
	uniH := uint64(0)
	uniHashed := false

	for j, spec := range r.p.Aggs {
		acc := &g.aggs[j]
		ai, ci := r.argIdx[j], r.condIdx[j]
		condTrue := true
		if ci >= 0 {
			condTrue = truthy(row[ci])
		}
		var x float64
		use := false
		switch spec.Kind {
		case lplan.AggCount:
			if ai < 0 || !row[ai].IsNull() {
				x, use = 1, true
			}
		case lplan.AggCountIf:
			if condTrue {
				x, use = 1, true
			}
		case lplan.AggSum:
			if ai >= 0 && !row[ai].IsNull() {
				x, use = row[ai].Float(), true
			}
		case lplan.AggSumIf:
			if condTrue && ai >= 0 && !row[ai].IsNull() {
				x, use = row[ai].Float(), true
			}
		case lplan.AggAvg:
			if condTrue && ai >= 0 && !row[ai].IsNull() {
				x, use = row[ai].Float(), true
			}
		case lplan.AggCountDistinct:
			if ai >= 0 && !row[ai].IsNull() {
				if acc.distinct == nil {
					acc.distinct = map[string]bool{}
				}
				acc.distinct[row[ai].Key()] = true
			}
		case lplan.AggMin:
			if ai >= 0 && !row[ai].IsNull() {
				if acc.min.IsNull() || row[ai].Compare(acc.min) < 0 {
					acc.min = row[ai]
				}
				acc.seen = true
			}
		case lplan.AggMax:
			if ai >= 0 && !row[ai].IsNull() {
				if acc.max.IsNull() || row[ai].Compare(acc.max) > 0 {
					acc.max = row[ai]
				}
				acc.seen = true
			}
		}
		if use {
			acc.sumWX += w * x
			acc.varTerm += (w*w - w) * x * x
			acc.seen = true
			if len(r.uniIdx) > 0 {
				if !uniHashed {
					uniH = hashRowKey(row, r.uniIdx)
					uniHashed = true
				}
				if acc.uni == nil {
					acc.uni = &uniAcc{idx: newHashIndex(4)}
				}
				acc.uni.add(uniH, row, r.uniIdx, x)
			}
		}
		// Denominator weight for AVG tracks the same condition filter.
		if spec.Kind == lplan.AggAvg && condTrue && ai >= 0 && !row[ai].IsNull() {
			acc.sumW += w
		}
	}
}

// addBatch folds a columnar batch's live rows into the runner through a
// reusable gather row (the accumulators copy every Value they keep, so
// reusing the row is safe). The add() call sequence — and therefore
// every accumulator state — is identical to running add() over the
// materialized rows. Returns the number of rows folded.
//
//hot:per-batch columnar aggregation gather loop
func (r *aggRunner) addBatch(b *Batch, sc *colScratch) int {
	row := sc.row(len(b.cols))
	if b.sel != nil {
		for _, lane := range b.sel {
			for c := range b.cols {
				row[c] = b.cols[c].Value(int(lane))
			}
			r.add(row, b.weights[lane])
		}
		return len(b.sel)
	}
	for i := 0; i < b.n; i++ {
		for c := range b.cols {
			row[c] = b.cols[c].Value(i)
		}
		r.add(row, b.weights[i])
	}
	return b.n
}

// finishGroup converts a group's accumulators into output values and
// standard errors.
func (r *aggRunner) finishGroup(g *groupAcc) ([]table.Value, []float64) {
	est := r.p.Est
	vals := make([]table.Value, len(r.p.Aggs))
	errs := make([]float64, len(r.p.Aggs))
	for j, spec := range r.p.Aggs {
		acc := &g.aggs[j]
		var v float64
		switch spec.Kind {
		case lplan.AggCount, lplan.AggCountIf, lplan.AggSum, lplan.AggSumIf:
			v = acc.sumWX
		case lplan.AggAvg:
			if acc.sumW > 0 {
				v = acc.sumWX / acc.sumW
			} else {
				vals[j] = table.Null
				continue
			}
		case lplan.AggCountDistinct:
			n := float64(len(acc.distinct))
			if est != nil && est.Type == lplan.SamplerUniverse && est.P > 0 && r.argIsUniverse(spec) {
				n /= est.P
			}
			vals[j] = table.NewInt(int64(math.Round(n)))
			continue
		case lplan.AggMin:
			vals[j] = acc.min
			continue
		case lplan.AggMax:
			vals[j] = acc.max
			continue
		}
		// Variance estimate.
		variance := acc.varTerm
		if est != nil && est.Type == lplan.SamplerUniverse && est.P > 0 && acc.uni != nil && len(acc.uni.sums) > 0 {
			var sub float64
			for _, y := range acc.uni.sums {
				sub += y * y
			}
			uvar := (1 - est.P) / (est.P * est.P) * sub
			if uvar > variance {
				variance = uvar
			}
		}
		if est != nil && est.PartP > 0 && est.PartP < 1 {
			// Partition pruning cluster-samples the scan: add the
			// selection variance on the weighted-sum scale (AVG's ÷sumW
			// below rescales it with the rest).
			variance += accuracy.PartitionVariance(acc.sumWX, est.PartP, est.PartTail, est.PartTailFrac)
		}
		if variance > 0 {
			errs[j] = math.Sqrt(variance)
			if spec.Kind == lplan.AggAvg && acc.sumW > 0 {
				errs[j] /= acc.sumW
			}
		}
		switch spec.Out.Kind {
		case table.KindInt:
			vals[j] = table.NewInt(int64(math.Round(v)))
		default:
			vals[j] = table.NewFloat(v)
		}
	}
	return vals, errs
}

// argIsUniverse reports whether the aggregate argument is exactly over
// the universe-sampled columns (the COUNT DISTINCT scaling case of
// Table 8).
func (r *aggRunner) argIsUniverse(spec lplan.AggSpec) bool {
	if r.p.Est == nil {
		return false
	}
	for _, u := range r.p.Est.UniverseCols {
		if u == spec.Arg {
			return true
		}
	}
	return false
}

// emit renders the partition's groups as output rows (deterministically
// ordered) plus estimate records. Order is by the canonical string key,
// exactly as when groups lived in a string-keyed map.
func (r *aggRunner) emit() ([]wrow, []GroupEstimate) {
	order := make([]*groupAcc, len(r.groups))
	copy(order, r.groups)
	sort.Slice(order, func(a, b int) bool { return order[a].skey < order[b].skey })
	rows := make([]wrow, 0, len(order))
	ests := make([]GroupEstimate, 0, len(order))
	for _, g := range order {
		vals, errs := r.finishGroup(g)
		row := make(table.Row, 0, len(g.key)+len(vals))
		row = append(row, g.key...)
		row = append(row, vals...)
		rows = append(rows, newWRow(row, 1))
		ests = append(ests, GroupEstimate{Key: g.key, Values: vals, StdErr: errs, SampleRows: g.n})
	}
	// Global aggregate over an empty input still yields one row.
	if len(r.groups) == 0 && len(r.groupIdx) == 0 {
		row := make(table.Row, len(r.p.Aggs))
		for j, spec := range r.p.Aggs {
			switch spec.Kind {
			case lplan.AggCount, lplan.AggCountIf, lplan.AggCountDistinct:
				row[j] = table.NewInt(0)
			default:
				row[j] = table.Null
			}
		}
		rows = append(rows, newWRow(row, 1))
		ests = append(ests, GroupEstimate{Values: row, StdErr: make([]float64, len(r.p.Aggs))})
	}
	return rows, ests
}

// GroupEstimate is the per-group outcome of the top aggregate: values,
// standard errors of the HT estimators, and sample support.
type GroupEstimate struct {
	Key        []table.Value
	Values     []table.Value
	StdErr     []float64
	SampleRows int64
}
