package exec

// EstimateAdmissionBytes predicts a plan's in-flight memory footprint
// from the optimizer's cardinality estimates, for byte-budget admission
// control: every pipeline breaker (exchange, join build, aggregation,
// sort, union, window) materializes its estimated output, so the
// reservation sums estRows × estimated row width over breaker nodes
// (hash joins additionally hold their build side). Nodes without an
// estimate fall back to the widest child estimate seen below them. The
// result is floored so even trivial queries reserve something — the
// gate's purpose is ordering under pressure, not exact accounting.
func EstimateAdmissionBytes(p PNode, ests map[PNode]float64) int64 {
	const (
		bytesPerCol = 16
		rowOverhead = 24
		floor       = 64 << 10
	)
	var total float64
	var walk func(n PNode) float64 // returns the node's est rows (or best-effort)
	walk = func(n PNode) float64 {
		var kidMax float64
		for _, k := range n.Kids() {
			if r := walk(k); r > kidMax {
				kidMax = r
			}
		}
		rows, ok := ests[n]
		if !ok || rows <= 0 {
			rows = kidMax
		}
		if n.Breaker() {
			width := float64(len(n.Cols())*bytesPerCol + rowOverhead)
			total += rows * width
			if j, isJoin := n.(*PHashJoin); isJoin {
				// The build side is held in hash tables while probing.
				if br, ok := ests[j.Right]; ok && br > 0 {
					total += br * float64(len(j.Right.Cols())*bytesPerCol+rowOverhead)
				}
			}
		}
		return rows
	}
	root := walk(p)
	// The final result materializes at the coordinator.
	total += root * float64(len(p.Cols())*bytesPerCol+rowOverhead)
	if total < floor {
		total = floor
	}
	return int64(total)
}

// MapCtxErr converts context errors into the typed ErrCanceled /
// ErrDeadline query errors (exported for callers that hit cancellation
// outside plan execution, e.g. while queued at the admission gate).
func MapCtxErr(err error) error { return mapCtxErr(err) }
