package exec

// Microbenchmarks for the executor's three hottest paths — hash-join
// build/probe, grouped aggregation and window partitioning — plus the
// parallel sort. Run with -benchmem: allocs/op on these benchmarks is a
// gated regression surface (cmd/benchcheck -micro against the committed
// testdata/bench_baseline.json; see the bench-gate CI job).

import (
	"fmt"
	"testing"

	"quickr/internal/cluster"
	"quickr/internal/lplan"
	"quickr/internal/table"
)

// benchTables builds a dim table (one row per key) and a fact table
// (rows cycling over the keys), co-located so the same plan can run
// broadcast or co-partitioned. Keys mix an int and a string column so
// the hash paths see both fixed-width and variable-width values.
func benchTables(parts, dimRows, factRows int) (dim, fact *table.Table) {
	sc := table.NewSchema(
		table.Column{Name: "k", Kind: table.KindInt},
		table.Column{Name: "s", Kind: table.KindString},
		table.Column{Name: "v", Kind: table.KindFloat},
	)
	dim = table.New("bench_dim", sc, parts)
	for k := 0; k < dimRows; k++ {
		dim.Append(k, table.Row{
			table.NewInt(int64(k)),
			table.NewString(fmt.Sprintf("key-%04d", k)),
			table.NewFloat(float64(k) * 0.5),
		})
	}
	fact = table.New("bench_fact", sc, parts)
	for i := 0; i < factRows; i++ {
		k := i % dimRows
		fact.Append(k, table.Row{
			table.NewInt(int64(k)),
			table.NewString(fmt.Sprintf("key-%04d", k)),
			table.NewFloat(float64(i)),
		})
	}
	return dim, fact
}

func benchRun(b *testing.B, p PNode) *Result {
	b.Helper()
	res, err := Run(p, cluster.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func benchJoinPlan(broadcast bool) (PNode, int) {
	const parts, dimRows, factRows = 4, 2048, 32768
	dim, fact := benchTables(parts, dimRows, factRows)
	ls, rs := scanOf(fact), scanOf(dim)
	join := &PHashJoin{
		Kind: lplan.InnerJoin, Left: ls, Right: rs,
		LeftKeys:  []lplan.ColumnID{ls.OutCols[0].ID},
		RightKeys: []lplan.ColumnID{rs.OutCols[0].ID},
		Broadcast: broadcast,
	}
	return join, factRows
}

// BenchmarkJoinBroadcast measures the broadcast hash join: the gathered
// build side is shared read-only across every probe task, and probe
// outputs come from per-task arenas.
func BenchmarkJoinBroadcast(b *testing.B) {
	plan, rows := benchJoinPlan(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := benchRun(b, plan)
		if len(res.Rows) != rows {
			b.Fatalf("join rows: %d want %d", len(res.Rows), rows)
		}
	}
}

// BenchmarkJoinCoPartitioned measures the co-partitioned hash join
// (per-task build over the task's co-located build partition).
func BenchmarkJoinCoPartitioned(b *testing.B) {
	plan, rows := benchJoinPlan(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := benchRun(b, plan)
		if len(res.Rows) != rows {
			b.Fatalf("join rows: %d want %d", len(res.Rows), rows)
		}
	}
}

// BenchmarkGroupedAgg measures the grouped-aggregation hot loop: one
// group lookup per input row (int + string group key) with SUM and
// COUNT accumulators. Already-seen groups must not allocate.
func BenchmarkGroupedAgg(b *testing.B) {
	const parts, groups, rows = 4, 256, 65536
	_, fact := benchTables(parts, groups, rows)
	scan := scanOf(fact)
	k, s, v := scan.OutCols[0], scan.OutCols[1], scan.OutCols[2]
	nextID += 2
	agg := &PHashAgg{
		In:        scan,
		GroupCols: []lplan.ColumnID{k.ID, s.ID},
		GroupInfo: []lplan.ColumnInfo{k, s},
		Aggs: []lplan.AggSpec{
			{Kind: lplan.AggSum, Arg: v.ID, Out: lplan.ColumnInfo{ID: nextID - 1, Name: "sum_v", Kind: table.KindFloat}},
			{Kind: lplan.AggCount, Arg: lplan.NoColumn, Out: lplan.ColumnInfo{ID: nextID, Name: "cnt", Kind: table.KindInt}},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := benchRun(b, agg)
		if len(res.Rows) != groups {
			b.Fatalf("groups: %d want %d", len(res.Rows), groups)
		}
	}
}

// BenchmarkWindowPartition measures window-function partitioning: rows
// are bucketed into window partitions (hash path), each partition
// sorted, and a rank plus a running sum computed.
func BenchmarkWindowPartition(b *testing.B) {
	const parts, groups, rows = 4, 64, 16384
	_, fact := benchTables(parts, groups, rows)
	scan := scanOf(fact)
	k, s, v := scan.OutCols[0], scan.OutCols[1], scan.OutCols[2]
	nextID += 2
	win := &PWindow{
		In: scan,
		Specs: []lplan.WinSpec{
			{Kind: lplan.WinRank, Arg: lplan.NoColumn,
				PartitionBy: []lplan.ColumnID{k.ID, s.ID},
				OrderBy:     []lplan.SortKey{{Col: v.ID}},
				Out:         lplan.ColumnInfo{ID: nextID - 1, Name: "rnk", Kind: table.KindInt}},
			{Kind: lplan.WinSum, Arg: v.ID,
				PartitionBy: []lplan.ColumnID{k.ID, s.ID},
				OrderBy:     []lplan.SortKey{{Col: v.ID}},
				Out:         lplan.ColumnInfo{ID: nextID, Name: "run", Kind: table.KindFloat}},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := benchRun(b, win)
		if len(res.Rows) != rows {
			b.Fatalf("window rows: %d want %d", len(res.Rows), rows)
		}
	}
}

// BenchmarkSortPartitions measures the per-partition sort (two keys,
// mixed direction) across independent partitions.
func BenchmarkSortPartitions(b *testing.B) {
	const parts, groups, rows = 8, 512, 65536
	_, fact := benchTables(parts, groups, rows)
	scan := scanOf(fact)
	srt := &PSort{
		In: scan,
		Keys: []lplan.SortKey{
			{Col: scan.OutCols[2].ID, Desc: true},
			{Col: scan.OutCols[0].ID},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := benchRun(b, srt)
		if len(res.Rows) != rows {
			b.Fatalf("sort rows: %d want %d", len(res.Rows), rows)
		}
	}
}
