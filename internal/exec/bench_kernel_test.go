package exec

// Microbenchmarks for the vectorized columnar kernels (filter, project,
// sampler, fused pre-aggregation), each paired with a row-at-a-time
// twin running the identical plan on the row executor. The committed
// baseline (testdata/bench_baseline.json) records the ROW path's
// numbers under the kernel names; CI runs the columnar benchmarks
// against it with max_allocs_ratio 0.5, so the columnar kernels must
// stay at or below half the row path's allocations forever. The row
// twins are deliberately named without the gated substrings
// (BenchmarkRowPath*) so the gate regex never matches them.

import (
	"context"
	"testing"

	"quickr/internal/cluster"
	"quickr/internal/lplan"
	"quickr/internal/table"
)

// benchKernelTable builds the scan input shared by the kernel
// benchmarks: int, string (dictionary-friendly) and float columns with
// a sprinkling of NULLs, pre-columnarized so the timed loop measures
// kernels rather than first-touch columnarization.
func benchKernelTable() *table.Table {
	sc := table.NewSchema(
		table.Column{Name: "k", Kind: table.KindInt},
		table.Column{Name: "s", Kind: table.KindString},
		table.Column{Name: "v", Kind: table.KindFloat},
	)
	tbl := table.New("bench_kernel", sc, 4)
	words := []string{"north", "south", "east", "west", "up", "down"}
	for i := 0; i < 65536; i++ {
		v := table.NewFloat(float64(i))
		if i%97 == 11 {
			v = table.Value{}
		}
		tbl.Append(i, table.Row{
			table.NewInt(int64(i % 1024)),
			table.NewString(words[i%len(words)]),
			v,
		})
	}
	tbl.EnsureColumnar()
	return tbl
}

// benchRunMode executes the plan in row-streamed or columnar mode.
func benchRunMode(b *testing.B, p PNode, columnar bool) *Result {
	b.Helper()
	res, err := RunWithOptions(context.Background(), p, cluster.DefaultConfig(), nil, Options{Columnar: columnar})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func kernelFilterPlan(tbl *table.Table) PNode {
	scan := scanOf(tbl)
	k, _, v := scan.OutCols[0], scan.OutCols[1], scan.OutCols[2]
	return &PFilter{In: scan, Pred: &lplan.Binary{
		Op: lplan.OpAnd,
		L: &lplan.Binary{Op: lplan.OpLt,
			L: &lplan.ColRef{ID: k.ID, Name: "k", Kind: table.KindInt},
			R: &lplan.Const{Val: table.NewInt(512)}},
		R: &lplan.Binary{Op: lplan.OpGe,
			L: &lplan.ColRef{ID: v.ID, Name: "v", Kind: table.KindFloat},
			R: &lplan.Const{Val: table.NewFloat(1000)}},
	}}
}

func kernelProjectPlan(tbl *table.Table) PNode {
	scan := scanOf(tbl)
	k, s, v := scan.OutCols[0], scan.OutCols[1], scan.OutCols[2]
	nextID += 3
	return &PProject{In: scan, Exprs: []lplan.Expr{
		&lplan.Binary{Op: lplan.OpAdd,
			L: &lplan.ColRef{ID: k.ID, Name: "k", Kind: table.KindInt},
			R: &lplan.Const{Val: table.NewInt(7)}},
		&lplan.Binary{Op: lplan.OpMul,
			L: &lplan.ColRef{ID: v.ID, Name: "v", Kind: table.KindFloat},
			R: &lplan.Const{Val: table.NewFloat(0.5)}},
		&lplan.Binary{Op: lplan.OpEq,
			L: &lplan.ColRef{ID: s.ID, Name: "s", Kind: table.KindString},
			R: &lplan.Const{Val: table.NewString("east")}},
	}, OutCols: []lplan.ColumnInfo{
		{ID: nextID - 2, Name: "k7", Kind: table.KindInt},
		{ID: nextID - 1, Name: "vh", Kind: table.KindFloat},
		{ID: nextID, Name: "e", Kind: table.KindBool},
	}}
}

func kernelSamplerPlan(tbl *table.Table) PNode {
	scan := scanOf(tbl)
	return &PSample{In: scan, Def: lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.1}, Seed: 42}
}

func kernelPreAggPlan(tbl *table.Table) PNode {
	scan := scanOf(tbl)
	k, v := scan.OutCols[0], scan.OutCols[2]
	smp := &PSample{In: scan, Def: lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.25}, Seed: 43}
	nextID += 2
	return &PHashAgg{
		In:        smp,
		GroupCols: []lplan.ColumnID{k.ID},
		GroupInfo: []lplan.ColumnInfo{k},
		Aggs: []lplan.AggSpec{
			{Kind: lplan.AggSum, Arg: v.ID, Out: lplan.ColumnInfo{ID: nextID - 1, Name: "s", Kind: table.KindFloat}},
			{Kind: lplan.AggCount, Arg: lplan.NoColumn, Out: lplan.ColumnInfo{ID: nextID, Name: "c", Kind: table.KindInt}},
		},
		Top: true,
	}
}

// benchKernel runs plan-builder mk once per iteration in the given mode.
func benchKernel(b *testing.B, mk func(*table.Table) PNode, columnar bool) {
	tbl := benchKernelTable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRunMode(b, mk(tbl), columnar)
	}
}

// BenchmarkFilterKernel measures the columnar filter: typed comparison
// kernels over dense vectors writing a selection vector.
func BenchmarkFilterKernel(b *testing.B) { benchKernel(b, kernelFilterPlan, true) }

// BenchmarkRowPathFilter is the row-at-a-time twin whose numbers seed
// the BenchmarkFilterKernel baseline.
func BenchmarkRowPathFilter(b *testing.B) { benchKernel(b, kernelFilterPlan, false) }

// BenchmarkProjectKernel measures columnar projection: arithmetic and
// dictionary-compare kernels building output vectors.
func BenchmarkProjectKernel(b *testing.B) { benchKernel(b, kernelProjectPlan, true) }

// BenchmarkRowPathProject is the row-at-a-time twin whose numbers seed
// the BenchmarkProjectKernel baseline.
func BenchmarkRowPathProject(b *testing.B) { benchKernel(b, kernelProjectPlan, false) }

// BenchmarkSamplerKernel measures the columnar uniform sampler:
// selection-vector thinning with in-place weight scaling.
func BenchmarkSamplerKernel(b *testing.B) { benchKernel(b, kernelSamplerPlan, true) }

// BenchmarkRowPathSampler is the row-at-a-time twin whose numbers seed
// the BenchmarkSamplerKernel baseline.
func BenchmarkRowPathSampler(b *testing.B) { benchKernel(b, kernelSamplerPlan, false) }

// BenchmarkPreAggKernel measures the fused columnar sample→group-by
// pre-aggregation (scan batches feed the aggregation without an
// intermediate materialized stream).
func BenchmarkPreAggKernel(b *testing.B) { benchKernel(b, kernelPreAggPlan, true) }

// BenchmarkRowPathPreAgg is the row-at-a-time twin whose numbers seed
// the BenchmarkPreAggKernel baseline.
func BenchmarkRowPathPreAgg(b *testing.B) { benchKernel(b, kernelPreAggPlan, false) }
