package exec

import "quickr/internal/table"

// VecKind enumerates the physical representations of a Vector.
type VecKind uint8

const (
	// VKNull is an all-NULL vector with no payload.
	VKNull VecKind = iota
	// VKInt stores int64 payloads in Ints.
	VKInt
	// VKFloat stores float64 payloads in Floats.
	VKFloat
	// VKStr stores dictionary codes in Ints, strings in Dict.
	VKStr
	// VKBool stores 0/1 in Ints.
	VKBool
	// VKAny stores exact table.Values in Vals (mixed-kind fallback).
	VKAny
)

// Vector is a column of N lanes flowing through the vectorized pipeline.
// It is a cheap value type: copies share the underlying payload slices.
//
// NULL lanes are tracked by a little-endian bitmap; nullOff shifts lane
// indexes into the bitmap so a Vector can window a larger stored column
// (table.ColVec) without copying it. VKAny vectors carry NULLs in Vals
// directly and leave the bitmap nil. Dead lanes (not covered by the
// batch's selection vector) hold unspecified zero/NULL payloads.
type Vector struct {
	K       VecKind
	N       int
	Ints    []int64
	Floats  []float64
	Dict    []string
	Vals    []table.Value
	nulls   []uint64
	nullOff int
	// constVal marks a vector whose non-NULL lanes all hold the same
	// value (produced by constant kernels); enables per-dictionary-entry
	// precomputation in comparison kernels.
	constVal bool
}

// IsNull reports whether lane i is NULL.
func (v *Vector) IsNull(i int) bool {
	switch v.K {
	case VKNull:
		return true
	case VKAny:
		return v.Vals[i].IsNull()
	}
	if v.nulls == nil {
		return false
	}
	j := i + v.nullOff
	return v.nulls[j>>6]&(1<<(uint(j)&63)) != 0
}

// hasNulls reports whether any lane of the vector may be NULL.
func (v *Vector) hasNulls() bool { return v.K == VKNull || v.K == VKAny || v.nulls != nil }

// Value reconstructs lane i as a table.Value, bit-identical to what the
// row-at-a-time executor would hold at the same position.
func (v *Vector) Value(i int) table.Value {
	switch v.K {
	case VKNull:
		return table.Null
	case VKAny:
		return v.Vals[i]
	}
	if v.IsNull(i) {
		return table.Null
	}
	switch v.K {
	case VKInt:
		return table.NewInt(v.Ints[i])
	case VKFloat:
		return table.NewFloat(v.Floats[i])
	case VKStr:
		return table.NewString(v.Dict[v.Ints[i]])
	case VKBool:
		return table.NewBool(v.Ints[i] != 0)
	}
	return table.Null
}

// laneFloat mirrors table.Value.Float for lane i: ints widen, floats
// pass through, everything else (strings, bools, NULL) reads as 0.
func (v *Vector) laneFloat(i int) float64 {
	switch v.K {
	case VKInt:
		return float64(v.Ints[i])
	case VKFloat:
		return v.Floats[i]
	case VKAny:
		return v.Vals[i].Float()
	}
	return 0
}

// laneBytes mirrors table.Value.ByteSize for lane i.
func (v *Vector) laneBytes(i int) int {
	switch v.K {
	case VKNull:
		return 1
	case VKAny:
		return v.Vals[i].ByteSize()
	case VKStr:
		if v.IsNull(i) {
			return 1
		}
		return 8 + len(v.Dict[v.Ints[i]])
	}
	if v.IsNull(i) {
		return 1
	}
	return 8
}

// bytesAll sums laneBytes over every lane (dense window accounting).
func (v *Vector) bytesAll() float64 {
	switch v.K {
	case VKNull:
		return float64(v.N)
	case VKAny:
		n := 0
		for _, val := range v.Vals {
			n += val.ByteSize()
		}
		return float64(n)
	case VKStr:
		n := 0
		for i := 0; i < v.N; i++ {
			n += v.laneBytes(i)
		}
		return float64(n)
	}
	if v.nulls == nil {
		return float64(8 * v.N)
	}
	n := 0
	for i := 0; i < v.N; i++ {
		n += v.laneBytes(i)
	}
	return float64(n)
}

// bytesSel sums laneBytes over the selected lanes.
func (v *Vector) bytesSel(sel []int32) float64 {
	switch v.K {
	case VKNull:
		return float64(len(sel))
	case VKInt, VKFloat, VKBool:
		if v.nulls == nil {
			return float64(8 * len(sel))
		}
	}
	n := 0
	for _, i := range sel {
		n += v.laneBytes(int(i))
	}
	return float64(n)
}

// window wraps lanes [off, off+n) of a stored column as a zero-copy
// Vector.
func window(cv *table.ColVec, off, n int) Vector {
	if cv.Any {
		return Vector{K: VKAny, N: n, Vals: cv.Vals[off : off+n]}
	}
	v := Vector{N: n, nulls: cv.Nulls, nullOff: off}
	switch cv.Kind {
	case table.KindNull:
		return Vector{K: VKNull, N: n}
	case table.KindInt:
		v.K = VKInt
		v.Ints = cv.Ints[off : off+n]
	case table.KindFloat:
		v.K = VKFloat
		v.Floats = cv.Floats[off : off+n]
	case table.KindString:
		v.K = VKStr
		v.Ints = cv.Ints[off : off+n]
		v.Dict = cv.Dict
	case table.KindBool:
		v.K = VKBool
		v.Ints = cv.Ints[off : off+n]
	}
	return v
}

// vecBuilder accumulates values into a Vector, picking the tightest
// representation: typed while all non-NULL values share a kind,
// degrading to VKAny on the first mix. Builders are reused across
// batches; the built Vector aliases the builder's buffers and is valid
// until the next reset.
type vecBuilder struct {
	k       VecKind // VKNull until the first non-NULL value
	n       int
	ints    []int64
	floats  []float64
	dict    []string
	dictIdx map[string]int32
	vals    []table.Value
	nulls   []uint64
	anyNull bool
}

func (bd *vecBuilder) reset() {
	bd.k = VKNull
	bd.n = 0
	bd.ints = bd.ints[:0]
	bd.floats = bd.floats[:0]
	bd.dict = bd.dict[:0]
	for s := range bd.dictIdx {
		delete(bd.dictIdx, s)
	}
	bd.vals = bd.vals[:0]
	bd.nulls = bd.nulls[:0]
	bd.anyNull = false
}

func (bd *vecBuilder) setNull(i int) {
	for len(bd.nulls) <= i>>6 {
		bd.nulls = append(bd.nulls, 0)
	}
	bd.nulls[i>>6] |= 1 << (uint(i) & 63)
	bd.anyNull = true
}

// appendNull adds a NULL lane.
func (bd *vecBuilder) appendNull() {
	bd.setNull(bd.n)
	switch bd.k {
	case VKNull:
	case VKAny:
		bd.vals = append(bd.vals, table.Null)
	case VKFloat:
		bd.floats = append(bd.floats, 0)
	default:
		bd.ints = append(bd.ints, 0)
	}
	bd.n++
}

// append adds one value, adopting or degrading the representation as
// needed.
func (bd *vecBuilder) append(v table.Value) {
	if v.IsNull() {
		bd.appendNull()
		return
	}
	want := VKAny
	switch v.Kind() {
	case table.KindInt:
		want = VKInt
	case table.KindFloat:
		want = VKFloat
	case table.KindString:
		want = VKStr
	case table.KindBool:
		want = VKBool
	}
	if bd.k == VKNull {
		bd.adopt(want)
	} else if bd.k != want && bd.k != VKAny {
		bd.degrade()
	}
	switch bd.k {
	case VKAny:
		bd.vals = append(bd.vals, v)
	case VKInt:
		bd.ints = append(bd.ints, v.Int())
	case VKFloat:
		bd.floats = append(bd.floats, v.Float())
	case VKBool:
		if v.Bool() {
			bd.ints = append(bd.ints, 1)
		} else {
			bd.ints = append(bd.ints, 0)
		}
	case VKStr:
		s := v.Str()
		if bd.dictIdx == nil {
			bd.dictIdx = make(map[string]int32, 8)
		}
		code, ok := bd.dictIdx[s]
		if !ok {
			code = int32(len(bd.dict))
			bd.dict = append(bd.dict, s)
			bd.dictIdx[s] = code
		}
		bd.ints = append(bd.ints, int64(code))
	}
	bd.n++
}

// adopt switches an all-NULL builder to a typed representation,
// backfilling zero payloads for the NULL lanes seen so far.
func (bd *vecBuilder) adopt(k VecKind) {
	bd.k = k
	switch k {
	case VKFloat:
		for i := 0; i < bd.n; i++ {
			bd.floats = append(bd.floats, 0)
		}
	case VKAny:
		for i := 0; i < bd.n; i++ {
			bd.vals = append(bd.vals, table.Null)
		}
	default:
		for i := 0; i < bd.n; i++ {
			bd.ints = append(bd.ints, 0)
		}
	}
}

// padNulls grows the bitmap to cover all n lanes (lanes appended after
// the last NULL never extended it).
func (bd *vecBuilder) padNulls() {
	for len(bd.nulls) < (bd.n+63)/64 {
		bd.nulls = append(bd.nulls, 0)
	}
}

// degrade rewrites the typed payload accumulated so far as exact Values
// and switches to VKAny.
func (bd *vecBuilder) degrade() {
	tmp := Vector{K: bd.k, N: bd.n, Ints: bd.ints, Floats: bd.floats, Dict: bd.dict}
	if bd.anyNull {
		bd.padNulls()
		tmp.nulls = bd.nulls
	}
	bd.vals = bd.vals[:0]
	for i := 0; i < bd.n; i++ {
		bd.vals = append(bd.vals, tmp.Value(i))
	}
	bd.k = VKAny
	bd.ints = bd.ints[:0]
	bd.floats = bd.floats[:0]
	bd.dict = bd.dict[:0]
	for s := range bd.dictIdx {
		delete(bd.dictIdx, s)
	}
}

// build returns the accumulated Vector. It aliases builder buffers.
func (bd *vecBuilder) build() Vector {
	v := Vector{K: bd.k, N: bd.n}
	switch bd.k {
	case VKNull:
		return v
	case VKAny:
		v.Vals = bd.vals
		return v
	case VKFloat:
		v.Floats = bd.floats
	default:
		v.Ints = bd.ints
		v.Dict = bd.dict
	}
	if bd.anyNull {
		bd.padNulls()
		v.nulls = bd.nulls
	}
	return v
}
