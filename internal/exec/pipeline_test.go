package exec

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"quickr/internal/cluster"
	"quickr/internal/lplan"
	"quickr/internal/table"
)

// runBatched executes a plan at the given batch size.
func runBatched(t *testing.T, p PNode, batch int) *Result {
	t.Helper()
	res, err := RunWithOptions(context.Background(), p, cluster.DefaultConfig(), nil, Options{BatchSize: batch})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sameRows asserts two results carry identical rows in identical order.
func sameRows(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if table.CompareRows(want.Rows[i], got.Rows[i]) != 0 {
			t.Fatalf("%s: row %d differs: %v vs %v", label, i, got.Rows[i], want.Rows[i])
		}
	}
}

// chainOf builds a fresh scan→filter→project→sample chain over tbl with
// the given sampler definition (passthrough when def.Type is zero with
// P=0: pass nil to skip the sampler entirely).
func chainOf(tbl *table.Table, def *lplan.SamplerDef, seed uint64) PNode {
	scan := scanOf(tbl)
	kCol, vCol := scan.OutCols[0], scan.OutCols[1]
	filter := &PFilter{In: scan, Pred: &lplan.Binary{
		Op: lplan.OpGt,
		L:  &lplan.ColRef{ID: vCol.ID, Name: "v", Kind: table.KindFloat},
		R:  &lplan.Const{Val: table.NewInt(50)},
	}}
	nextID++
	k2 := lplan.ColumnInfo{ID: nextID, Name: "k2", Kind: table.KindInt}
	nextID++
	v2 := lplan.ColumnInfo{ID: nextID, Name: "v2", Kind: table.KindFloat}
	proj := &PProject{In: filter, Exprs: []lplan.Expr{
		&lplan.ColRef{ID: kCol.ID, Name: "k", Kind: table.KindInt},
		&lplan.Binary{Op: lplan.OpMul,
			L: &lplan.ColRef{ID: vCol.ID, Name: "v", Kind: table.KindFloat},
			R: &lplan.Const{Val: table.NewInt(3)}},
	}, OutCols: []lplan.ColumnInfo{k2, v2}}
	if def == nil {
		return proj
	}
	d := *def
	if len(d.Cols) > 0 {
		// Sampler columns refer to this chain's first projected column.
		d.Cols = []lplan.ColumnID{k2.ID}
	}
	return &PSample{In: proj, Def: d, Seed: seed}
}

func pipelineRows(n int) [][2]float64 {
	rows := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, [2]float64{float64(i % 53), float64(i)})
	}
	return rows
}

// The acceptance bar of the streaming refactor: query results are
// bit-identical for every batch size, including pathological ones (1,
// primes that straddle partition boundaries) and the materializing
// baseline (<0), for every sampler type.
func TestPipelineBitIdenticalAcrossBatchSizes(t *testing.T) {
	samplers := map[string]*lplan.SamplerDef{
		"nosampler": nil,
		"uniform":   {Type: lplan.SamplerUniform, P: 0.25},
		"universe":  {Type: lplan.SamplerUniverse, P: 0.25, Cols: []lplan.ColumnID{1}, Seed: 99},
		"distinct":  {Type: lplan.SamplerDistinct, P: 0.1, Cols: []lplan.ColumnID{1}, Delta: 4},
		"passthru":  {Type: lplan.SamplerPassThrough},
	}
	for name, def := range samplers {
		t.Run(name, func(t *testing.T) {
			tbl, _ := buildT("t_"+name, 8, pipelineRows(4000))
			base := runBatched(t, chainOf(tbl, def, 7), -1) // materializing baseline
			if name == "nosampler" && len(base.Rows) != 4000-51 {
				t.Fatalf("baseline filtered to %d rows", len(base.Rows))
			}
			for _, bs := range []int{1, 3, 7, 64, 0, DefaultBatchSize + 1} {
				got := runBatched(t, chainOf(tbl, def, 7), bs)
				sameRows(t, base, got, fmt.Sprintf("batch=%d", bs))
			}
		})
	}
}

// Limit, union and sort are pipeline breakers; their results must be
// unchanged whatever the upstream batch size.
func TestPipelineLimitUnionSortBatched(t *testing.T) {
	t1, _ := buildT("u1", 3, pipelineRows(500))
	t2, _ := buildT("u2", 5, pipelineRows(300))
	build := func() PNode {
		s1, s2 := scanOf(t1), scanOf(t2)
		union := &PUnion{Ins: []PNode{s1, s2}, OutCols: s1.OutCols}
		filter := &PFilter{In: union, Pred: &lplan.Binary{
			Op: lplan.OpLt,
			L:  &lplan.ColRef{ID: s1.OutCols[0].ID, Name: "k", Kind: table.KindInt},
			R:  &lplan.Const{Val: table.NewInt(40)},
		}}
		gather := &PExchange{In: filter, Parts: 1}
		sort := &PSort{In: gather, Keys: []lplan.SortKey{
			{Col: s1.OutCols[1].ID, Desc: true},
			{Col: s1.OutCols[0].ID},
		}}
		return &PLimit{In: sort, N: 97}
	}
	base := runBatched(t, build(), -1)
	if len(base.Rows) != 97 {
		t.Fatalf("limit produced %d rows, want 97", len(base.Rows))
	}
	if base.Rows[0][1].Float() != 499 {
		t.Fatalf("sort desc: first row %v", base.Rows[0])
	}
	for _, bs := range []int{1, 5, 0} {
		sameRows(t, base, runBatched(t, build(), bs), fmt.Sprintf("batch=%d", bs))
	}
}

// Pipelines must behave at partition-count extremes: a single
// partition, more partitions than GOMAXPROCS, empty partitions, and a
// completely empty table.
func TestPipelinePartitionCounts(t *testing.T) {
	wide := runtime.GOMAXPROCS(0)*2 + 1
	for _, parts := range []int{1, 4, wide, 64} {
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			tbl, _ := buildT(fmt.Sprintf("p%d", parts), parts, pipelineRows(997))
			base := runBatched(t, chainOf(tbl, nil, 0), -1)
			got := runBatched(t, chainOf(tbl, nil, 0), 16)
			sameRows(t, base, got, "streamed")
		})
	}
	t.Run("empty-table", func(t *testing.T) {
		tbl, _ := buildT("pempty", 6, nil)
		def := &lplan.SamplerDef{Type: lplan.SamplerDistinct, P: 0.1, Cols: []lplan.ColumnID{1}, Delta: 2}
		res := runBatched(t, chainOf(tbl, def, 3), 0)
		if len(res.Rows) != 0 {
			t.Fatalf("empty table produced %d rows", len(res.Rows))
		}
	})
	t.Run("sparse-partitions", func(t *testing.T) {
		// All rows in one partition, the other 15 empty.
		sc := table.NewSchema(
			table.Column{Name: "k", Kind: table.KindInt},
			table.Column{Name: "v", Kind: table.KindFloat},
		)
		tbl := table.New("psparse", sc, 16)
		for i := 0; i < 400; i++ {
			tbl.Append(0, table.Row{table.NewInt(int64(i % 11)), table.NewFloat(float64(i))})
		}
		base := runBatched(t, chainOf(tbl, nil, 0), -1)
		got := runBatched(t, chainOf(tbl, nil, 0), 32)
		sameRows(t, base, got, "sparse")
	})
}

// Hammer a fused scan→filter→sample(distinct) chain across many
// partitions repeatedly; under -race this proves the per-batch slot and
// stage writes stay index-disjoint.
func TestPipelineFusedChainRaceFree(t *testing.T) {
	tbl, _ := buildT("race", 64, pipelineRows(6400))
	def := &lplan.SamplerDef{Type: lplan.SamplerDistinct, P: 0.2, Cols: []lplan.ColumnID{1}, Delta: 3}
	var want *Result
	for round := 0; round < 8; round++ {
		plan := chainOf(tbl, def, uint64(11))
		res := runBatched(t, plan, 17)
		if want == nil {
			want = res
		} else {
			sameRows(t, want, res, fmt.Sprintf("round=%d", round))
		}
		samp := res.Stats.Op(plan)
		if samp == nil {
			t.Fatal("sampler op not registered")
		}
		tot := samp.Total()
		if tot.SamplerPassed != int64(len(res.Rows)) {
			t.Fatalf("sampler passed %d, result has %d rows", tot.SamplerPassed, len(res.Rows))
		}
		if tot.Batches <= 0 || tot.PeakBytes <= 0 {
			t.Fatalf("sampler batch telemetry empty: %+v", tot)
		}
	}
}

// EXPLAIN ANALYZE must surface the new batch telemetry: per-operator
// batch counts and peak in-flight bytes.
func TestAnalyzeReportsBatchesAndPeak(t *testing.T) {
	tbl, _ := buildT("ba", 4, pipelineRows(2000))
	plan := chainOf(tbl, &lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.25}, 5)
	res := runBatched(t, plan, 100)
	if !strings.Contains(res.AnalyzedPlan, "batches=") || !strings.Contains(res.AnalyzedPlan, "peak=") {
		t.Fatalf("analyze missing batch telemetry:\n%s", res.AnalyzedPlan)
	}
	scanOp := res.Stats.Op(plan.(*PSample).In.(*PProject).In.(*PFilter).In)
	if scanOp == nil {
		t.Fatal("scan op not registered")
	}
	tot := scanOp.Total()
	// 2000 rows over 4 partitions at 100-row batches: 5 batches per task.
	if tot.Batches != 20 {
		t.Fatalf("scan batches = %d, want 20", tot.Batches)
	}
	if tot.PeakBytes <= 0 {
		t.Fatalf("scan peak bytes = %v", tot.PeakBytes)
	}
	if res.PeakInFlightBytes <= 0 {
		t.Fatalf("run peak in-flight = %v", res.PeakInFlightBytes)
	}
	if res.RowsProcessed != 2000 {
		t.Fatalf("rows processed = %d, want 2000", res.RowsProcessed)
	}
}

// The point of the refactor: a fused pipeline's in-flight footprint must
// stay strictly below what materializing every intermediate held.
func TestStreamingPeakBelowMaterializing(t *testing.T) {
	tbl, _ := buildT("peak", 4, pipelineRows(20000))
	stream := runBatched(t, chainOf(tbl, &lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.1}, 9), 0)
	mat := runBatched(t, chainOf(tbl, &lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.1}, 9), -1)
	sameRows(t, mat, stream, "streamed")
	if stream.PeakInFlightBytes >= mat.PeakInFlightBytes {
		t.Fatalf("streaming peak %.0fB not below materializing peak %.0fB",
			stream.PeakInFlightBytes, mat.PeakInFlightBytes)
	}
}
