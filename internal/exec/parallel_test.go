package exec

// parallelParts error-propagation contract: when one partition fails,
// every partition that already started still runs its teardown to
// completion before parallelParts returns, unstarted partitions are
// skipped, and no goroutine survives the call. These were the gaps the
// old spawn-per-partition implementation left open (a failed partition
// abandoned its siblings mid-teardown and leaked their goroutines).

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"quickr/internal/testutil"
)

func TestParallelPartsErrorStillCompletesTeardown(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sentinel := errors.New("partition blew up")
	var started, tornDown atomic.Int64
	err := parallelParts(context.Background(), 64, func(i int) error {
		started.Add(1)
		defer func() {
			// Teardown is deliberately slow so a premature return would
			// be caught with started > tornDown.
			time.Sleep(time.Millisecond)
			tornDown.Add(1)
		}()
		if i == 3 {
			return fmt.Errorf("part %d: %w", i, sentinel)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error lost: got %v", err)
	}
	if s, d := started.Load(), tornDown.Load(); s != d {
		t.Fatalf("parallelParts returned with %d partitions started but only %d torn down", s, d)
	}
}

func TestParallelPartsFirstErrorWins(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	// Every partition fails; exactly one error (some partition's) must
	// surface, not a garbled merge and not nil.
	err := parallelParts(context.Background(), 16, func(i int) error {
		return fmt.Errorf("part %d failed", i)
	})
	if err == nil {
		t.Fatal("all partitions failed but parallelParts returned nil")
	}
}

func TestParallelPartsCancelMapsToTypedError(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := parallelParts(ctx, 1024, func(i int) error {
		ran.Add(1)
		if i == 0 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if ran.Load() == 1024 {
		t.Fatal("cancellation skipped no partitions")
	}
}

func TestParallelPartsDeadlineMapsToTypedError(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := parallelParts(ctx, 8, func(i int) error { return nil })
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
}

func TestParallelPartsNilContextRuns(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	var ran atomic.Int64
	if err := parallelParts(nil, 32, func(i int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 32 {
		t.Fatalf("ran %d of 32 partitions", ran.Load())
	}
}
