package exec

import (
	"math"
	"testing"

	"quickr/internal/cluster"
	"quickr/internal/lplan"
	"quickr/internal/table"
)

// buildT creates a two-column table (k BIGINT, v DOUBLE) with the given
// rows spread over parts partitions.
func buildT(name string, parts int, rows [][2]float64) (*table.Table, []lplan.ColumnInfo) {
	sc := table.NewSchema(
		table.Column{Name: "k", Kind: table.KindInt},
		table.Column{Name: "v", Kind: table.KindFloat},
	)
	t := table.New(name, sc, parts)
	for i, r := range rows {
		t.Append(i, table.Row{table.NewInt(int64(r[0])), table.NewFloat(r[1])})
	}
	return t, nil
}

var nextID lplan.ColumnID = 100

func scanOf(t *table.Table) *PScan {
	cols := make([]lplan.ColumnInfo, t.Schema.Len())
	idx := make([]int, t.Schema.Len())
	for i, c := range t.Schema.Cols {
		nextID++
		cols[i] = lplan.ColumnInfo{ID: nextID, Name: c.Name, Kind: c.Kind}
		idx[i] = i
	}
	return &PScan{Tbl: t, OutCols: cols, ColIdx: idx, WeightIdx: -1}
}

func run(t *testing.T, p PNode) *Result {
	t.Helper()
	res, err := Run(p, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScanFilterProject(t *testing.T) {
	tbl, _ := buildT("t", 3, [][2]float64{{1, 10}, {2, 20}, {3, 30}, {4, 40}})
	scan := scanOf(tbl)
	kCol, vCol := scan.OutCols[0], scan.OutCols[1]
	filter := &PFilter{In: scan, Pred: &lplan.Binary{
		Op: lplan.OpGt,
		L:  &lplan.ColRef{ID: kCol.ID, Name: "k", Kind: table.KindInt},
		R:  &lplan.Const{Val: table.NewInt(2)},
	}}
	nextID++
	outCol := lplan.ColumnInfo{ID: nextID, Name: "v2", Kind: table.KindFloat}
	proj := &PProject{In: filter, Exprs: []lplan.Expr{
		&lplan.Binary{Op: lplan.OpMul,
			L: &lplan.ColRef{ID: vCol.ID, Name: "v", Kind: table.KindFloat},
			R: &lplan.Const{Val: table.NewInt(2)}},
	}, OutCols: []lplan.ColumnInfo{outCol}}

	res := run(t, proj)
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	sum := res.Rows[0][0].Float() + res.Rows[1][0].Float()
	if sum != 140 { // (30+40)*2
		t.Errorf("sum %v want 140", sum)
	}
}

func TestHashJoinInnerAndOuter(t *testing.T) {
	left, _ := buildT("l", 2, [][2]float64{{1, 1}, {2, 2}, {3, 3}})
	right, _ := buildT("r", 2, [][2]float64{{2, 20}, {3, 30}, {3, 31}})
	ls, rs := scanOf(left), scanOf(right)

	join := &PHashJoin{
		Kind: lplan.InnerJoin, Left: ls, Right: rs,
		LeftKeys:  []lplan.ColumnID{ls.OutCols[0].ID},
		RightKeys: []lplan.ColumnID{rs.OutCols[0].ID},
		Broadcast: true,
	}
	res := run(t, join)
	if len(res.Rows) != 3 { // 2 matches 1, 3 matches 2
		t.Fatalf("inner join rows: %d", len(res.Rows))
	}

	outer := &PHashJoin{
		Kind: lplan.LeftOuterJoin, Left: scanOf(left), Right: scanOf(right),
		LeftKeys:  []lplan.ColumnID{0},
		RightKeys: []lplan.ColumnID{0},
		Broadcast: true,
	}
	outer.LeftKeys[0] = outer.Left.Cols()[0].ID
	outer.RightKeys[0] = outer.Right.Cols()[0].ID
	res = run(t, outer)
	if len(res.Rows) != 4 { // 1 padded, 2→1, 3→2
		t.Fatalf("outer join rows: %d", len(res.Rows))
	}
	padded := 0
	for _, r := range res.Rows {
		if r[2].IsNull() {
			padded++
		}
	}
	if padded != 1 {
		t.Errorf("padded rows %d want 1", padded)
	}
}

func TestPartitionedJoinMatchesBroadcast(t *testing.T) {
	var rows [][2]float64
	for i := 0; i < 500; i++ {
		rows = append(rows, [2]float64{float64(i % 37), float64(i)})
	}
	left, _ := buildT("l", 4, rows)
	right, _ := buildT("r", 4, rows[:200])

	build := func(broadcast bool) int {
		ls, rs := scanOf(left), scanOf(right)
		var l, r PNode = ls, rs
		if !broadcast {
			l = &PExchange{In: ls, Keys: []lplan.ColumnID{ls.OutCols[0].ID}, Parts: 5}
			r = &PExchange{In: rs, Keys: []lplan.ColumnID{rs.OutCols[0].ID}, Parts: 5}
		}
		j := &PHashJoin{
			Kind: lplan.InnerJoin, Left: l, Right: r,
			LeftKeys:  []lplan.ColumnID{ls.OutCols[0].ID},
			RightKeys: []lplan.ColumnID{rs.OutCols[0].ID},
			Broadcast: broadcast,
		}
		return len(run(t, j).Rows)
	}
	if a, b := build(true), build(false); a != b {
		t.Errorf("broadcast %d != partitioned %d", a, b)
	}
}

func TestHashAggExact(t *testing.T) {
	tbl, _ := buildT("t", 4, [][2]float64{{1, 10}, {1, 20}, {2, 5}, {2, 5}, {3, 1}})
	scan := scanOf(tbl)
	k, v := scan.OutCols[0], scan.OutCols[1]
	nextID += 2
	agg := &PHashAgg{
		In:        &PExchange{In: scan, Keys: []lplan.ColumnID{k.ID}, Parts: 2},
		GroupCols: []lplan.ColumnID{k.ID},
		GroupInfo: []lplan.ColumnInfo{k},
		Aggs: []lplan.AggSpec{
			{Kind: lplan.AggSum, Arg: v.ID, Out: lplan.ColumnInfo{ID: nextID - 1, Name: "s", Kind: table.KindFloat}},
			{Kind: lplan.AggCount, Arg: lplan.NoColumn, Out: lplan.ColumnInfo{ID: nextID, Name: "c", Kind: table.KindInt}},
		},
		Top: true,
	}
	res := run(t, agg)
	if len(res.Rows) != 3 {
		t.Fatalf("groups: %v", res.Rows)
	}
	byKey := map[int64][2]float64{}
	for _, r := range res.Rows {
		byKey[r[0].Int()] = [2]float64{r[1].Float(), float64(r[2].Int())}
	}
	if byKey[1] != [2]float64{30, 2} || byKey[2] != [2]float64{10, 2} || byKey[3] != [2]float64{1, 1} {
		t.Errorf("agg values: %v", byKey)
	}
	if len(res.Estimates) != 3 {
		t.Errorf("estimates: %d", len(res.Estimates))
	}
}

func TestWeightedAggregation(t *testing.T) {
	// Rows weighted 4 via a uniform sampler at p=0.25 on a constant
	// column: COUNT estimates the original cardinality.
	var rows [][2]float64
	for i := 0; i < 8000; i++ {
		rows = append(rows, [2]float64{1, 2})
	}
	tbl, _ := buildT("t", 4, rows)
	scan := scanOf(tbl)
	k, v := scan.OutCols[0], scan.OutCols[1]
	smp := &PSample{In: scan, Def: lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.25}, Seed: 9}
	nextID += 2
	agg := &PHashAgg{
		In:        &PExchange{In: smp, Parts: 1},
		GroupCols: nil,
		Aggs: []lplan.AggSpec{
			{Kind: lplan.AggCount, Arg: lplan.NoColumn, Out: lplan.ColumnInfo{ID: nextID - 1, Name: "c", Kind: table.KindInt}},
			{Kind: lplan.AggSum, Arg: v.ID, Out: lplan.ColumnInfo{ID: nextID, Name: "s", Kind: table.KindFloat}},
		},
		Est: &EstimatorConfig{Type: lplan.SamplerUniform, P: 0.25},
		Top: true,
	}
	_ = k
	res := run(t, agg)
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %v", res.Rows)
	}
	cnt := float64(res.Rows[0][0].Int())
	if math.Abs(cnt-8000)/8000 > 0.1 {
		t.Errorf("estimated count %v want ~8000", cnt)
	}
	sum := res.Rows[0][1].Float()
	if math.Abs(sum-16000)/16000 > 0.1 {
		t.Errorf("estimated sum %v want ~16000", sum)
	}
	// CI must be positive and plausible.
	se := res.Estimates[0].StdErr[1]
	if se <= 0 || se > 2000 {
		t.Errorf("stderr %v", se)
	}
}

func TestEmptyGlobalAggregate(t *testing.T) {
	tbl, _ := buildT("t", 2, nil)
	scan := scanOf(tbl)
	nextID += 2
	agg := &PHashAgg{
		In: &PExchange{In: scan, Parts: 1},
		Aggs: []lplan.AggSpec{
			{Kind: lplan.AggCount, Arg: lplan.NoColumn, Out: lplan.ColumnInfo{ID: nextID - 1, Name: "c", Kind: table.KindInt}},
			{Kind: lplan.AggSum, Arg: scan.OutCols[1].ID, Out: lplan.ColumnInfo{ID: nextID, Name: "s", Kind: table.KindFloat}},
		},
		Top: true,
	}
	res := run(t, agg)
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if res.Rows[0][0].Int() != 0 || !res.Rows[0][1].IsNull() {
		t.Errorf("empty agg: %v", res.Rows[0])
	}
}

func TestSortAndLimit(t *testing.T) {
	tbl, _ := buildT("t", 3, [][2]float64{{3, 1}, {1, 2}, {2, 3}, {5, 4}, {4, 5}})
	scan := scanOf(tbl)
	sorted := &PSort{
		In:   &PExchange{In: scan, Parts: 1},
		Keys: []lplan.SortKey{{Col: scan.OutCols[0].ID, Desc: true}},
	}
	lim := &PLimit{In: sorted, N: 3}
	res := run(t, lim)
	if len(res.Rows) != 3 {
		t.Fatalf("limit rows: %d", len(res.Rows))
	}
	if res.Rows[0][0].Int() != 5 || res.Rows[1][0].Int() != 4 || res.Rows[2][0].Int() != 3 {
		t.Errorf("sorted: %v", res.Rows)
	}
}

func TestUnionAll(t *testing.T) {
	a, _ := buildT("a", 2, [][2]float64{{1, 1}, {2, 2}})
	b, _ := buildT("b", 2, [][2]float64{{3, 3}})
	sa, sb := scanOf(a), scanOf(b)
	u := &PUnion{Ins: []PNode{sa, sb}, OutCols: sa.OutCols}
	res := run(t, u)
	if len(res.Rows) != 3 {
		t.Errorf("union rows: %d", len(res.Rows))
	}
}

func TestSharedUniverseJoinWeights(t *testing.T) {
	// Both join inputs universe-sampled on the key with the same seed:
	// joined rows carry weight 1/p (not 1/p²) and SUM stays unbiased.
	var lrows, rrows [][2]float64
	var trueSum float64
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		k := i % 100
		lrows = append(lrows, [2]float64{float64(k), 1})
		counts[k]++
	}
	for k := 0; k < 100; k++ {
		rrows = append(rrows, [2]float64{float64(k), 3})
		trueSum += 3 * float64(counts[k])
	}
	left, _ := buildT("l", 4, lrows)
	right, _ := buildT("r", 2, rrows)

	var mean float64
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		ls, rs := scanOf(left), scanOf(right)
		seed := uint64(trial + 1)
		const p = 0.2
		sl := &PSample{In: ls, Def: lplan.SamplerDef{Type: lplan.SamplerUniverse, P: p, Cols: []lplan.ColumnID{ls.OutCols[0].ID}, Seed: seed}}
		sr := &PSample{In: rs, Def: lplan.SamplerDef{Type: lplan.SamplerUniverse, P: p, Cols: []lplan.ColumnID{rs.OutCols[0].ID}, Seed: seed}}
		j := &PHashJoin{
			Kind: lplan.InnerJoin, Left: sl, Right: sr,
			LeftKeys:        []lplan.ColumnID{ls.OutCols[0].ID},
			RightKeys:       []lplan.ColumnID{rs.OutCols[0].ID},
			Broadcast:       true,
			SharedUniverseP: p,
		}
		nextID++
		agg := &PHashAgg{
			In: &PExchange{In: j, Parts: 1},
			Aggs: []lplan.AggSpec{{Kind: lplan.AggSum, Arg: rs.OutCols[1].ID,
				Out: lplan.ColumnInfo{ID: nextID, Name: "s", Kind: table.KindFloat}}},
			Top: true,
		}
		res := run(t, agg)
		mean += res.Rows[0][0].Float()
	}
	mean /= trials
	if rel := math.Abs(mean-trueSum) / trueSum; rel > 0.1 {
		t.Errorf("paired-universe join SUM biased: %.0f vs %.0f (%.3f)", mean, trueSum, rel)
	}
}

func TestMetricsPopulated(t *testing.T) {
	var rows [][2]float64
	for i := 0; i < 1000; i++ {
		rows = append(rows, [2]float64{float64(i % 10), 1})
	}
	tbl, _ := buildT("t", 4, rows)
	scan := scanOf(tbl)
	nextID++
	agg := &PHashAgg{
		In:        &PExchange{In: scan, Keys: []lplan.ColumnID{scan.OutCols[0].ID}, Parts: 2},
		GroupCols: []lplan.ColumnID{scan.OutCols[0].ID},
		GroupInfo: []lplan.ColumnInfo{scan.OutCols[0]},
		Aggs: []lplan.AggSpec{{Kind: lplan.AggCount, Arg: lplan.NoColumn,
			Out: lplan.ColumnInfo{ID: nextID, Name: "c", Kind: table.KindInt}}},
	}
	res := run(t, agg)
	m := res.Metrics
	if m.MachineHours <= 0 || m.Runtime <= 0 || m.Passes <= 1 || m.ShuffledBytes <= 0 {
		t.Errorf("metrics: %+v", m)
	}
	if m.Stages < 2 {
		t.Errorf("stages: %d", m.Stages)
	}
}
