package exec

import (
	"math"

	"quickr/internal/lplan"
	"quickr/internal/table"
)

// This file compiles bound expressions to columnar kernels: closures
// that evaluate one expression over a whole Batch and return a Vector.
//
// The contract is bit-identity with eval.go's row closures: for every
// live lane, the kernel's Value(lane) equals what the corresponding row
// closure would return for the materialized row. Typed kernels compute
// densely over all physical lanes (dead lanes may hold garbage, which
// is fine — they are never read as live results); the row-fallback
// kernel (Func, Case, and anything without a vector implementation)
// evaluates only live lanes through the compiled row closure.
//
// Kernels are compiled per partition and own their output buffers, so
// parallel partitions never share mutable state. A kernel's output is
// valid until its next invocation.

// colKernel evaluates an expression over a batch.
type colKernel func(b *Batch) Vector

// colScratch is per-partition scratch shared by the fallback kernels:
// a reusable gather row and the count of rows routed through row-at-a-
// time evaluation (reported as the op's FallbackRows).
type colScratch struct {
	fallbackRows int64
	rowBuf       table.Row
	selBuf       []int32
}

func (sc *colScratch) row(n int) table.Row {
	if cap(sc.rowBuf) < n {
		sc.rowBuf = make(table.Row, n)
	}
	return sc.rowBuf[:n]
}

func (sc *colScratch) takeFallback() int64 {
	v := sc.fallbackRows
	sc.fallbackRows = 0
	return v
}

func growInts(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	return buf[:n]
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

// growBits returns a zeroed null bitmap covering n lanes.
func growBits(buf []uint64, n int) []uint64 {
	w := (n + 63) / 64
	if cap(buf) < w {
		return make([]uint64, w)
	}
	buf = buf[:w]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func setBit(bits []uint64, i int) { bits[i>>6] |= 1 << (uint(i) & 63) }

func btoi(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func isNumericVK(k VecKind) bool { return k == VKInt || k == VKFloat }

// allNull returns an n-lane all-NULL vector.
func allNull(n int) Vector { return Vector{K: VKNull, N: n} }

// compileColKernel compiles e into a columnar kernel over the column
// layout described by cm. Expressions without a vector implementation
// compile to a row-fallback kernel; an error is only possible when a
// referenced column is missing (the same condition compileExpr reports).
func compileColKernel(e lplan.Expr, cm colMap, sc *colScratch) (colKernel, error) {
	switch x := e.(type) {
	case *lplan.ColRef:
		i, ok := cm[x.ID]
		if !ok {
			return nil, errColKernel(e, cm, sc)
		}
		return func(b *Batch) Vector { return b.cols[i] }, nil
	case *lplan.Const:
		return constKernel(x.Val), nil
	case *lplan.Binary:
		l, err := compileColKernel(x.L, cm, sc)
		if err != nil {
			return nil, err
		}
		r, err := compileColKernel(x.R, cm, sc)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case lplan.OpAnd:
			return andKernel(l, r), nil
		case lplan.OpOr:
			return orKernel(l, r), nil
		case lplan.OpAdd, lplan.OpSub, lplan.OpMul, lplan.OpDiv, lplan.OpMod:
			return arithKernel(x.Op, l, r), nil
		default:
			return cmpKernel(x.Op, l, r), nil
		}
	case *lplan.Not:
		in, err := compileColKernel(x.X, cm, sc)
		if err != nil {
			return nil, err
		}
		return notKernel(in), nil
	case *lplan.Neg:
		in, err := compileColKernel(x.X, cm, sc)
		if err != nil {
			return nil, err
		}
		return negKernel(in), nil
	case *lplan.IsNull:
		in, err := compileColKernel(x.X, cm, sc)
		if err != nil {
			return nil, err
		}
		return isNullKernel(in, x.Inv), nil
	case *lplan.In:
		in, err := compileColKernel(x.X, cm, sc)
		if err != nil {
			return nil, err
		}
		return inKernel(in, x.Vals, x.Inv), nil
	case *lplan.Like:
		in, err := compileColKernel(x.X, cm, sc)
		if err != nil {
			return nil, err
		}
		return likeKernel(in, x.Pattern, x.Inv), nil
	}
	// Func, Case, anything new: row-at-a-time fallback.
	return fallbackKernel(e, cm, sc)
}

// errColKernel surfaces the row compiler's error message for a missing
// column.
func errColKernel(e lplan.Expr, cm colMap, sc *colScratch) error {
	_, err := compileExpr(e, cm)
	return err
}

// fallbackKernel evaluates e through the compiled row closure, one live
// lane at a time, gathering a scratch row per lane. Dead lanes come out
// NULL.
func fallbackKernel(e lplan.Expr, cm colMap, sc *colScratch) (colKernel, error) {
	f, err := compileExpr(e, cm)
	if err != nil {
		return nil, err
	}
	var bld vecBuilder
	return func(b *Batch) Vector {
		row := sc.row(len(b.cols))
		bld.reset()
		si, sel := 0, b.sel
		for i := 0; i < b.n; i++ {
			live := sel == nil || (si < len(sel) && int(sel[si]) == i)
			if !live {
				bld.appendNull()
				continue
			}
			if sel != nil {
				si++
			}
			for c := range b.cols {
				row[c] = b.cols[c].Value(i)
			}
			bld.append(f(row))
			sc.fallbackRows++
		}
		return bld.build()
	}, nil
}

// constKernel materializes a constant as an n-lane vector, refilled
// only when the batch grows past the cached width.
func constKernel(v table.Value) colKernel {
	var ints []int64
	var floats []float64
	return func(b *Batch) Vector {
		n := b.n
		switch v.Kind() {
		case table.KindNull:
			return allNull(n)
		case table.KindFloat:
			if len(floats) < n {
				floats = growFloats(floats, n)
				for i := range floats {
					floats[i] = v.Float()
				}
			}
			return Vector{K: VKFloat, N: n, Floats: floats[:n], constVal: true}
		case table.KindString:
			if len(ints) < n {
				ints = growInts(ints, n) // codes all 0
				for i := range ints {
					ints[i] = 0
				}
			}
			return Vector{K: VKStr, N: n, Ints: ints[:n], Dict: []string{v.Str()}, constVal: true}
		default: // int, bool
			k := VKInt
			if v.Kind() == table.KindBool {
				k = VKBool
			}
			if len(ints) < n {
				ints = growInts(ints, n)
				for i := range ints {
					ints[i] = v.Int()
				}
			}
			return Vector{K: k, N: n, Ints: ints[:n], constVal: true}
		}
	}
}

// andKernel / orKernel: boolean combination. For VKBool inputs NULL
// lanes carry payload 0, which makes the row semantics (NULL acts as
// false on either side) a plain payload test.
func andKernel(l, r colKernel) colKernel {
	var out []int64
	return func(b *Batch) Vector {
		lv, rv := l(b), r(b)
		n := b.n
		out = growInts(out, n)
		if lv.K == VKBool && rv.K == VKBool {
			for i := 0; i < n; i++ {
				out[i] = btoi(lv.Ints[i] != 0 && rv.Ints[i] != 0)
			}
			return Vector{K: VKBool, N: n, Ints: out[:n]}
		}
		for i := 0; i < n; i++ {
			out[i] = btoi(rowAnd(lv.Value(i), rv.Value(i)))
		}
		return Vector{K: VKBool, N: n, Ints: out[:n]}
	}
}

func orKernel(l, r colKernel) colKernel {
	var out []int64
	return func(b *Batch) Vector {
		lv, rv := l(b), r(b)
		n := b.n
		out = growInts(out, n)
		if lv.K == VKBool && rv.K == VKBool {
			for i := 0; i < n; i++ {
				out[i] = btoi(lv.Ints[i] != 0 || rv.Ints[i] != 0)
			}
			return Vector{K: VKBool, N: n, Ints: out[:n]}
		}
		for i := 0; i < n; i++ {
			out[i] = btoi(rowOr(lv.Value(i), rv.Value(i)))
		}
		return Vector{K: VKBool, N: n, Ints: out[:n]}
	}
}

// rowAnd / rowOr replicate the eval.go closures exactly.
func rowAnd(lv, rv table.Value) bool {
	if lv.Kind() == table.KindBool && !lv.Bool() {
		return false
	}
	if rv.Kind() == table.KindBool && !rv.Bool() {
		return false
	}
	if lv.IsNull() || rv.IsNull() {
		return false
	}
	return lv.Bool() && rv.Bool()
}

func rowOr(lv, rv table.Value) bool {
	if lv.Kind() == table.KindBool && lv.Bool() {
		return true
	}
	return rv.Kind() == table.KindBool && rv.Bool()
}

// arithKernel vectorizes +,-,*,/,% with the exact table.Add/Sub/Mul/
// Div/Mod semantics: int⊕int stays int except /, NULL or non-numeric
// operands yield NULL, division (or modulo) by zero yields NULL.
func arithKernel(op lplan.BinOp, l, r colKernel) colKernel {
	var ints []int64
	var floats []float64
	var nulls []uint64
	var bld vecBuilder
	return func(b *Batch) Vector {
		lv, rv := l(b), r(b)
		n := b.n
		switch {
		case lv.K == VKAny || rv.K == VKAny:
			bld.reset()
			for i := 0; i < n; i++ {
				bld.append(rowArith(op, lv.Value(i), rv.Value(i)))
			}
			return bld.build()
		case op == lplan.OpMod:
			if lv.K != VKInt || rv.K != VKInt {
				return allNull(n)
			}
			ints = growInts(ints, n)
			nulls = growBits(nulls, n)
			lnul, rnul := lv.hasNulls(), rv.hasNulls()
			for i := 0; i < n; i++ {
				if (lnul && lv.IsNull(i)) || (rnul && rv.IsNull(i)) || rv.Ints[i] == 0 {
					setBit(nulls, i)
					ints[i] = 0
					continue
				}
				ints[i] = lv.Ints[i] % rv.Ints[i]
			}
			return Vector{K: VKInt, N: n, Ints: ints[:n], nulls: nulls}
		case lv.K == VKInt && rv.K == VKInt && op != lplan.OpDiv:
			ints = growInts(ints, n)
			nulls = growBits(nulls, n)
			lnul, rnul := lv.hasNulls(), rv.hasNulls()
			li, ri := lv.Ints, rv.Ints
			switch op {
			case lplan.OpAdd:
				for i := 0; i < n; i++ {
					ints[i] = li[i] + ri[i]
				}
			case lplan.OpSub:
				for i := 0; i < n; i++ {
					ints[i] = li[i] - ri[i]
				}
			case lplan.OpMul:
				for i := 0; i < n; i++ {
					ints[i] = li[i] * ri[i]
				}
			}
			if lnul || rnul {
				for i := 0; i < n; i++ {
					if (lnul && lv.IsNull(i)) || (rnul && rv.IsNull(i)) {
						setBit(nulls, i)
					}
				}
			}
			return Vector{K: VKInt, N: n, Ints: ints[:n], nulls: nulls}
		case isNumericVK(lv.K) && isNumericVK(rv.K):
			floats = growFloats(floats, n)
			nulls = growBits(nulls, n)
			lnul, rnul := lv.hasNulls(), rv.hasNulls()
			for i := 0; i < n; i++ {
				if (lnul && lv.IsNull(i)) || (rnul && rv.IsNull(i)) {
					setBit(nulls, i)
					floats[i] = 0
					continue
				}
				a, c := lv.laneFloat(i), rv.laneFloat(i)
				switch op {
				case lplan.OpAdd:
					floats[i] = a + c
				case lplan.OpSub:
					floats[i] = a - c
				case lplan.OpMul:
					floats[i] = a * c
				case lplan.OpDiv:
					if c == 0 {
						setBit(nulls, i)
						floats[i] = 0
						continue
					}
					floats[i] = a / c
				}
			}
			return Vector{K: VKFloat, N: n, Floats: floats[:n], nulls: nulls}
		default:
			// A non-numeric side: every lane is NULL.
			return allNull(n)
		}
	}
}

func rowArith(op lplan.BinOp, lv, rv table.Value) table.Value {
	switch op {
	case lplan.OpAdd:
		return table.Add(lv, rv)
	case lplan.OpSub:
		return table.Sub(lv, rv)
	case lplan.OpMul:
		return table.Mul(lv, rv)
	case lplan.OpDiv:
		return table.Div(lv, rv)
	case lplan.OpMod:
		return table.Mod(lv, rv)
	}
	return table.Null
}

// cmpKernel vectorizes the six comparisons. NULL operands compare
// false (never NULL), matching the row closure, so the output is a
// bitmap-free VKBool vector.
func cmpKernel(op lplan.BinOp, l, r colKernel) colKernel {
	var out []int64
	var dictRes []bool
	return func(b *Batch) Vector {
		lv, rv := l(b), r(b)
		n := b.n
		out = growInts(out, n)
		switch {
		case lv.K == VKInt && rv.K == VKInt:
			lnul, rnul := lv.hasNulls(), rv.hasNulls()
			li, ri := lv.Ints, rv.Ints
			for i := 0; i < n; i++ {
				if (lnul && lv.IsNull(i)) || (rnul && rv.IsNull(i)) {
					out[i] = 0
					continue
				}
				out[i] = btoi(cmpInt(op, li[i], ri[i]))
			}
		case isNumericVK(lv.K) && isNumericVK(rv.K):
			lnul, rnul := lv.hasNulls(), rv.hasNulls()
			for i := 0; i < n; i++ {
				if (lnul && lv.IsNull(i)) || (rnul && rv.IsNull(i)) {
					out[i] = 0
					continue
				}
				out[i] = btoi(cmpFloat(op, lv.laneFloat(i), rv.laneFloat(i)))
			}
		case lv.K == VKStr && rv.K == VKStr && rv.constVal:
			// Compare each dictionary entry against the constant once,
			// then map codes through the result table.
			rs := rv.Dict[0]
			dictRes = growBools(dictRes, len(lv.Dict))
			for code, s := range lv.Dict {
				dictRes[code] = cmpStr(op, s, rs)
			}
			lnul := lv.hasNulls()
			for i := 0; i < n; i++ {
				if lnul && lv.IsNull(i) {
					out[i] = 0
					continue
				}
				out[i] = btoi(dictRes[lv.Ints[i]])
			}
		case lv.K == VKStr && rv.K == VKStr:
			lnul, rnul := lv.hasNulls(), rv.hasNulls()
			for i := 0; i < n; i++ {
				if (lnul && lv.IsNull(i)) || (rnul && rv.IsNull(i)) {
					out[i] = 0
					continue
				}
				out[i] = btoi(cmpStr(op, lv.Dict[lv.Ints[i]], rv.Dict[rv.Ints[i]]))
			}
		case lv.K == VKBool && rv.K == VKBool:
			lnul, rnul := lv.hasNulls(), rv.hasNulls()
			for i := 0; i < n; i++ {
				if (lnul && lv.IsNull(i)) || (rnul && rv.IsNull(i)) {
					out[i] = 0
					continue
				}
				out[i] = btoi(cmpInt(op, lv.Ints[i], rv.Ints[i]))
			}
		default:
			for i := 0; i < n; i++ {
				out[i] = btoi(cmpRow(op, lv.Value(i), rv.Value(i)))
			}
		}
		return Vector{K: VKBool, N: n, Ints: out[:n]}
	}
}

func cmpInt(op lplan.BinOp, a, b int64) bool {
	switch op {
	case lplan.OpEq:
		return a == b
	case lplan.OpNe:
		return a != b
	case lplan.OpLt:
		return a < b
	case lplan.OpLe:
		return a <= b
	case lplan.OpGt:
		return a > b
	case lplan.OpGe:
		return a >= b
	}
	return false
}

// cmpFloat matches Value.Compare/Equal over floats, including NaN:
// Compare reports 0 for NaN vs anything, so Le/Ge hold and Lt/Gt/Eq do
// not.
func cmpFloat(op lplan.BinOp, a, b float64) bool {
	switch op {
	case lplan.OpEq:
		return a == b
	case lplan.OpNe:
		return a != b
	case lplan.OpLt:
		return a < b
	case lplan.OpLe:
		return !(a > b)
	case lplan.OpGt:
		return a > b
	case lplan.OpGe:
		return !(a < b)
	}
	return false
}

func cmpStr(op lplan.BinOp, a, b string) bool {
	switch op {
	case lplan.OpEq:
		return a == b
	case lplan.OpNe:
		return a != b
	case lplan.OpLt:
		return a < b
	case lplan.OpLe:
		return a <= b
	case lplan.OpGt:
		return a > b
	case lplan.OpGe:
		return a >= b
	}
	return false
}

// cmpRow replicates the eval.go comparison closure for arbitrary lanes.
func cmpRow(op lplan.BinOp, lv, rv table.Value) bool {
	if lv.IsNull() || rv.IsNull() {
		return false
	}
	c := lv.Compare(rv)
	switch op {
	case lplan.OpEq:
		return lv.Equal(rv)
	case lplan.OpNe:
		return !lv.Equal(rv)
	case lplan.OpLt:
		return c < 0
	case lplan.OpLe:
		return c <= 0
	case lplan.OpGt:
		return c > 0
	case lplan.OpGe:
		return c >= 0
	}
	return false
}

func notKernel(in colKernel) colKernel {
	var out []int64
	return func(b *Batch) Vector {
		v := in(b)
		n := b.n
		out = growInts(out, n)
		if v.K == VKBool {
			nul := v.hasNulls()
			for i := 0; i < n; i++ {
				out[i] = btoi(!(nul && v.IsNull(i)) && v.Ints[i] == 0)
			}
		} else {
			for i := 0; i < n; i++ {
				lv := v.Value(i)
				out[i] = btoi(lv.Kind() == table.KindBool && !lv.Bool())
			}
		}
		return Vector{K: VKBool, N: n, Ints: out[:n]}
	}
}

func negKernel(in colKernel) colKernel {
	var ints []int64
	var floats []float64
	var nulls []uint64
	var bld vecBuilder
	return func(b *Batch) Vector {
		v := in(b)
		n := b.n
		switch v.K {
		case VKInt:
			ints = growInts(ints, n)
			nulls = growBits(nulls, n)
			nul := v.hasNulls()
			for i := 0; i < n; i++ {
				if nul && v.IsNull(i) {
					setBit(nulls, i)
					ints[i] = 0
					continue
				}
				ints[i] = -v.Ints[i]
			}
			return Vector{K: VKInt, N: n, Ints: ints[:n], nulls: nulls}
		case VKFloat:
			floats = growFloats(floats, n)
			nulls = growBits(nulls, n)
			nul := v.hasNulls()
			for i := 0; i < n; i++ {
				if nul && v.IsNull(i) {
					setBit(nulls, i)
					floats[i] = 0
					continue
				}
				floats[i] = -v.Floats[i]
			}
			return Vector{K: VKFloat, N: n, Floats: floats[:n], nulls: nulls}
		case VKAny:
			bld.reset()
			for i := 0; i < n; i++ {
				lv := v.Vals[i]
				switch lv.Kind() {
				case table.KindInt:
					bld.append(table.NewInt(-lv.Int()))
				case table.KindFloat:
					bld.append(table.NewFloat(-lv.Float()))
				default:
					bld.appendNull()
				}
			}
			return bld.build()
		default:
			// Strings, bools, all-NULL: NULL everywhere.
			return allNull(n)
		}
	}
}

func isNullKernel(in colKernel, inv bool) colKernel {
	var out []int64
	return func(b *Batch) Vector {
		v := in(b)
		n := b.n
		out = growInts(out, n)
		if !v.hasNulls() {
			fill := btoi(inv) // non-NULL lane: IsNull()==false, false != inv == inv
			for i := 0; i < n; i++ {
				out[i] = fill
			}
		} else {
			for i := 0; i < n; i++ {
				out[i] = btoi(v.IsNull(i) != inv)
			}
		}
		return Vector{K: VKBool, N: n, Ints: out[:n]}
	}
}

// inSets canonicalizes an IN list exactly like Value.Key(): integers
// and integral floats below 1e18 share the int set, remaining floats
// match by IEEE bits, strings by content, booleans by truth value.
type inSets struct {
	key   map[string]bool // row-identical Key() set, for VKAny lanes
	ints  map[int64]bool
	bits  map[uint64]bool
	boolv [2]bool
	strs  map[string]bool
}

func buildInSets(vals []table.Value) *inSets {
	s := &inSets{
		key:  make(map[string]bool, len(vals)),
		ints: make(map[int64]bool),
		bits: make(map[uint64]bool),
		strs: make(map[string]bool),
	}
	for _, v := range vals {
		s.key[v.Key()] = true
		switch v.Kind() {
		case table.KindInt:
			s.ints[v.Int()] = true
		case table.KindFloat:
			f := v.Float()
			if f == math.Trunc(f) && !math.IsInf(f, 0) && math.Abs(f) < 1e18 {
				s.ints[int64(f)] = true
			} else {
				s.bits[math.Float64bits(f)] = true
			}
		case table.KindString:
			s.strs[v.Str()] = true
		case table.KindBool:
			s.boolv[v.Int()&1] = true
		}
	}
	return s
}

func (s *inSets) hasFloat(f float64) bool {
	if f == math.Trunc(f) && !math.IsInf(f, 0) && math.Abs(f) < 1e18 {
		return s.ints[int64(f)]
	}
	return s.bits[math.Float64bits(f)]
}

func inKernel(in colKernel, vals []table.Value, inv bool) colKernel {
	sets := buildInSets(vals)
	var out []int64
	var dictRes []bool
	return func(b *Batch) Vector {
		v := in(b)
		n := b.n
		out = growInts(out, n)
		switch v.K {
		case VKNull:
			for i := 0; i < n; i++ {
				out[i] = 0
			}
		case VKInt:
			nul := v.hasNulls()
			for i := 0; i < n; i++ {
				if nul && v.IsNull(i) {
					out[i] = 0
					continue
				}
				out[i] = btoi(sets.ints[v.Ints[i]] != inv)
			}
		case VKFloat:
			nul := v.hasNulls()
			for i := 0; i < n; i++ {
				if nul && v.IsNull(i) {
					out[i] = 0
					continue
				}
				out[i] = btoi(sets.hasFloat(v.Floats[i]) != inv)
			}
		case VKStr:
			dictRes = growBools(dictRes, len(v.Dict))
			for code, s := range v.Dict {
				dictRes[code] = sets.strs[s] != inv
			}
			nul := v.hasNulls()
			for i := 0; i < n; i++ {
				if nul && v.IsNull(i) {
					out[i] = 0
					continue
				}
				out[i] = btoi(dictRes[v.Ints[i]])
			}
		case VKBool:
			nul := v.hasNulls()
			for i := 0; i < n; i++ {
				if nul && v.IsNull(i) {
					out[i] = 0
					continue
				}
				out[i] = btoi(sets.boolv[v.Ints[i]&1] != inv)
			}
		default: // VKAny: exact row path, set[v.Key()]
			for i := 0; i < n; i++ {
				lv := v.Vals[i]
				if lv.IsNull() {
					out[i] = 0
					continue
				}
				out[i] = btoi(sets.key[lv.Key()] != inv)
			}
		}
		return Vector{K: VKBool, N: n, Ints: out[:n]}
	}
}

func likeKernel(in colKernel, pattern string, inv bool) colKernel {
	match := compileLike(pattern)
	var out []int64
	var dictRes []bool
	return func(b *Batch) Vector {
		v := in(b)
		n := b.n
		out = growInts(out, n)
		switch v.K {
		case VKStr:
			if len(v.Dict) <= n {
				// Match each dictionary entry once, map codes through.
				dictRes = growBools(dictRes, len(v.Dict))
				for code, s := range v.Dict {
					dictRes[code] = match(s) != inv
				}
				nul := v.hasNulls()
				for i := 0; i < n; i++ {
					if nul && v.IsNull(i) {
						out[i] = 0
						continue
					}
					out[i] = btoi(dictRes[v.Ints[i]])
				}
			} else {
				nul := v.hasNulls()
				for i := 0; i < n; i++ {
					if nul && v.IsNull(i) {
						out[i] = 0
						continue
					}
					out[i] = btoi(match(v.Dict[v.Ints[i]]) != inv)
				}
			}
		case VKAny:
			for i := 0; i < n; i++ {
				lv := v.Vals[i]
				if lv.Kind() != table.KindString {
					out[i] = 0
					continue
				}
				out[i] = btoi(match(lv.Str()) != inv)
			}
		default:
			// Non-string input: row semantics yield false everywhere.
			for i := 0; i < n; i++ {
				out[i] = 0
			}
		}
		return Vector{K: VKBool, N: n, Ints: out[:n]}
	}
}
