package exec

import (
	"fmt"
	"sync"
	"testing"

	"quickr/internal/lplan"
	"quickr/internal/table"
)

// TestHashIndexCollisions forces every entry onto one crafted 64-bit
// hash: the index must keep them distinct through the equality callback
// and resolve each probe to the right dense entry.
func TestHashIndexCollisions(t *testing.T) {
	const n = 100
	const h = uint64(0xdeadbeefcafef00d)
	idx := newHashIndex(4)
	keys := make([]int, 0, n)
	for k := 0; k < n; k++ {
		if got := idx.probe(h, func(i int) bool { return keys[i] == k }); got != -1 {
			t.Fatalf("key %d found before insert (entry %d)", k, got)
		}
		keys = append(keys, k)
		if e := idx.add(h); e != k {
			t.Fatalf("add(%d) = entry %d", k, e)
		}
	}
	if idx.len() != n {
		t.Fatalf("len = %d want %d", idx.len(), n)
	}
	for k := 0; k < n; k++ {
		if got := idx.probe(h, func(i int) bool { return keys[i] == k }); got != k {
			t.Fatalf("probe key %d = %d", k, got)
		}
	}
	// A colliding-but-unequal key still reports a miss.
	if got := idx.probe(h, func(i int) bool { return false }); got != -1 {
		t.Fatalf("unequal collision probe = %d", got)
	}
}

// TestHashIndexGrowth inserts well past several doubling boundaries and
// checks every entry stays reachable, including hashes that only differ
// in bits above the initial mask.
func TestHashIndexGrowth(t *testing.T) {
	const n = 5000
	idx := newHashIndex(1)
	hash := func(k int) uint64 { return uint64(k) * 0x9e3779b97f4a7c15 }
	keys := make([]int, 0, n)
	for k := 0; k < n; k++ {
		h := hash(k)
		if got := idx.probe(h, func(i int) bool { return keys[i] == k }); got != -1 {
			t.Fatalf("key %d present before insert", k)
		}
		keys = append(keys, k)
		idx.add(h)
		// Spot-check mid-growth: everything inserted so far resolves.
		if k == 7 || k == 63 || k == 1023 {
			for j := 0; j <= k; j++ {
				hj := hash(j)
				if got := idx.probe(hj, func(i int) bool { return keys[i] == j }); got != j {
					t.Fatalf("after %d inserts, probe key %d = %d", k+1, j, got)
				}
			}
		}
	}
	for k := 0; k < n; k++ {
		if got := idx.probe(hash(k), func(i int) bool { return keys[i] == k }); got != k {
			t.Fatalf("probe key %d = %d", k, got)
		}
	}
	if got := idx.probe(hash(n+1), func(i int) bool { return true }); got != -1 {
		t.Fatalf("absent key probe = %d", got)
	}
}

// TestRowKeyNullAndEmpty covers the degenerate key shapes: an empty
// column list (global aggregate) and NULL key columns, which must group
// together exactly like the legacy Value.Key() strings did.
func TestRowKeyNullAndEmpty(t *testing.T) {
	a := table.Row{table.NewInt(1), table.Null, table.NewString("x")}
	b := table.Row{table.NewInt(2), table.Null, table.NewString("y")}

	// Empty key: every row shares one group.
	if hashRowKey(a, nil) != hashRowKey(b, nil) {
		t.Fatal("empty-key hashes differ")
	}
	if !rowKeyEqualRows(a, b, nil) {
		t.Fatal("empty-key rows not equal")
	}
	if got := appendRowKey(nil, a, nil); len(got) != 0 {
		t.Fatalf("empty-key string = %q", got)
	}

	// NULL columns group together (unlike Value.Equal, where NULL≠NULL).
	idx := []int{1}
	if hashRowKey(a, idx) != hashRowKey(b, idx) {
		t.Fatal("NULL-key hashes differ")
	}
	if !rowKeyEqualRows(a, b, idx) {
		t.Fatal("NULL keys not equal")
	}
	if !rowKeyEqualValues([]table.Value{table.Null}, a, idx) {
		t.Fatal("stored NULL key not equal to NULL column")
	}

	// And the canonical string matches Value.Key() + NUL exactly.
	want := table.Null.Key() + "\x00" + table.NewString("x").Key() + "\x00"
	if got := string(appendRowKey(nil, a, []int{1, 2})); got != want {
		t.Fatalf("key string = %q want %q", got, want)
	}

	// Integral float and int keys collapse, as Value.Key() does.
	fi := table.Row{table.NewFloat(42)}
	ii := table.Row{table.NewInt(42)}
	if hashRowKey(fi, []int{0}) != hashRowKey(ii, []int{0}) {
		t.Fatal("float 42.0 and int 42 hash differently")
	}
	if !rowKeyEqualRows(fi, ii, []int{0}) {
		t.Fatal("float 42.0 and int 42 not key-equal")
	}
}

// joinRowsFor builds n single-partition build rows over (k, s, v) with
// keys cycling modulo dups so chains form.
func joinRowsFor(n, dups int) []wrow {
	rows := make([]wrow, n)
	for i := 0; i < n; i++ {
		k := i % dups
		rows[i] = newWRow(table.Row{
			table.NewInt(int64(k)),
			table.NewString(fmt.Sprintf("key-%04d", k)),
			table.NewFloat(float64(i)),
		}, 1)
	}
	return rows
}

// TestJoinTableChainOrder checks that chains visit build rows in global
// build order — the property that keeps probe output bit-identical to
// the old append-to-map build — for both the serial (1-shard) and the
// parallel (sharded) build sizes.
func TestJoinTableChainOrder(t *testing.T) {
	for _, n := range []int{300, 5000} { // below and above the shard cutoff
		rows := joinRowsFor(n, 17)
		bt, err := buildJoinTable(rows, []int{0, 1}, serialFan)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 17; k++ {
			h := table.HashRow(rows[k].row, []int{0, 1}, 3)
			var got []int
			for ri := bt.lookup(h); ri >= 0; ri = bt.next[ri] {
				got = append(got, int(ri))
			}
			var want []int
			for i := k; i < n; i += 17 {
				want = append(want, i)
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d key %d: chain len %d want %d", n, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d key %d: chain[%d]=%d want %d (order broken)", n, k, i, got[i], want[i])
				}
			}
		}
		if bt.lookup(0x1234) != -1 {
			t.Fatal("absent hash found")
		}
	}
}

// TestJoinTableParallelBuildMatchesSerial builds the same sharded table
// through a genuinely concurrent fan-out and through serialFan; the
// resulting directories must be identical structures.
func TestJoinTableParallelBuildMatchesSerial(t *testing.T) {
	rows := joinRowsFor(6000, 113)
	concurrent := func(n int, fn func(i int) error) error {
		var wg sync.WaitGroup
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = fn(i)
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	a, err := buildJoinTable(rows, []int{0, 1}, serialFan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildJoinTable(rows, []int{0, 1}, concurrent)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.next) != len(b.next) {
		t.Fatalf("next len %d vs %d", len(a.next), len(b.next))
	}
	for i := range a.next {
		if a.next[i] != b.next[i] {
			t.Fatalf("next[%d]: %d vs %d", i, a.next[i], b.next[i])
		}
	}
	for i := range rows {
		if a.lookup(a.hashes[i]) != b.lookup(b.hashes[i]) {
			t.Fatalf("lookup(hashes[%d]) differs", i)
		}
	}
}

// TestJoinTableConcurrentProbes hammers one shared build table with 32
// concurrent probers (run under -race in CI): the read-only probe path
// must be free of data races and every prober must see full chains.
func TestJoinTableConcurrentProbes(t *testing.T) {
	const n, dups, probers = 5000, 41, 32
	rows := joinRowsFor(n, dups)
	bt, err := buildJoinTable(rows, []int{0, 1}, serialFan)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, probers)
	for p := 0; p < probers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < dups; k++ {
				probe := table.Row{
					table.NewInt(int64(k)),
					table.NewString(fmt.Sprintf("key-%04d", k)),
				}
				h := table.HashRow(probe, []int{0, 1}, 3)
				cnt := 0
				for ri := bt.lookup(h); ri >= 0; ri = bt.next[ri] {
					if !rowKeyEqualRows(bt.rows[ri].row, probe, []int{0, 1}) {
						errCh <- fmt.Errorf("prober %d key %d: wrong row in chain", p, k)
						return
					}
					cnt++
				}
				want := n / dups
				if k < n%dups {
					want++
				}
				if cnt != want {
					errCh <- fmt.Errorf("prober %d key %d: %d matches want %d", p, k, cnt, want)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestRowArena checks slab carving: disjoint capacity-capped windows,
// oversize requests, and append-past-cap isolation.
func TestRowArena(t *testing.T) {
	var ar rowArena
	a := ar.alloc(2)
	a = append(a, table.NewInt(1), table.NewInt(2))
	b := ar.alloc(3)
	b = append(b, table.NewInt(10), table.NewInt(11), table.NewInt(12))
	if a[0].Int() != 1 || a[1].Int() != 2 {
		t.Fatalf("neighbor stomped: %v", a)
	}
	// Appending past a row's declared capacity must reallocate, not
	// write into b's window.
	a = append(a, table.NewInt(3))
	if b[0].Int() != 10 {
		t.Fatalf("append past cap stomped next row: %v", b)
	}
	// Oversize rows get a dedicated slab.
	big := ar.alloc(2 * arenaSlabValues)
	if cap(big) != 2*arenaSlabValues {
		t.Fatalf("oversize cap = %d", cap(big))
	}
	// Crossing a slab boundary yields fresh backing.
	for i := 0; i < 3*arenaSlabValues/7; i++ {
		r := ar.alloc(7)
		if cap(r) != 7 || len(r) != 0 {
			t.Fatalf("alloc window len=%d cap=%d", len(r), cap(r))
		}
	}
}

// aggAllocFixture builds an aggRunner with SUM and COUNT over a
// two-column (int, string) group key, optionally universe-estimated,
// plus the cycling input rows to feed it.
func aggAllocFixture(est *EstimatorConfig) (*aggRunner, []table.Row, error) {
	cols := []lplan.ColumnInfo{
		{ID: 9001, Name: "k", Kind: table.KindInt},
		{ID: 9002, Name: "s", Kind: table.KindString},
		{ID: 9003, Name: "v", Kind: table.KindFloat},
	}
	p := &PHashAgg{
		GroupCols: []lplan.ColumnID{9001, 9002},
		GroupInfo: cols[:2],
		Aggs: []lplan.AggSpec{
			{Kind: lplan.AggSum, Arg: 9003, Cond: lplan.NoColumn, Out: lplan.ColumnInfo{ID: 9004, Name: "sum_v", Kind: table.KindFloat}},
			{Kind: lplan.AggCount, Arg: lplan.NoColumn, Cond: lplan.NoColumn, Out: lplan.ColumnInfo{ID: 9005, Name: "cnt", Kind: table.KindInt}},
		},
		Est: est,
	}
	r, err := newAggRunner(p, buildColMap(cols))
	if err != nil {
		return nil, nil, err
	}
	const groups = 64
	rows := make([]table.Row, groups)
	for k := 0; k < groups; k++ {
		rows[k] = table.Row{
			table.NewInt(int64(k)),
			table.NewString(fmt.Sprintf("key-%04d", k)),
			table.NewFloat(float64(k) * 1.5),
		}
	}
	return r, rows, nil
}

// TestAggAddSeenGroupsZeroAllocs pins the tentpole's core acceptance
// criterion: once a group exists, folding another row into it allocates
// nothing — no key strings, no map growth, no closure escapes.
func TestAggAddSeenGroupsZeroAllocs(t *testing.T) {
	r, rows, err := aggAllocFixture(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		r.add(row, 1) // materialize every group up front
	}
	i := 0
	got := testing.AllocsPerRun(200, func() {
		r.add(rows[i%len(rows)], 1)
		i++
	})
	if got != 0 {
		t.Fatalf("aggRunner.add on seen groups: %v allocs/op, want 0", got)
	}
}

// TestAggUniverseSeenSubspacesZeroAllocs extends the zero-alloc
// guarantee to the universe-sampled variance path: the subspace hash is
// computed lazily (only on consuming paths) and seen subspaces fold
// into uniAcc without allocating.
func TestAggUniverseSeenSubspacesZeroAllocs(t *testing.T) {
	est := &EstimatorConfig{Type: lplan.SamplerUniverse, P: 0.1, UniverseCols: []lplan.ColumnID{9001}}
	r, rows, err := aggAllocFixture(est)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.uniIdx) == 0 {
		t.Fatal("fixture: universe columns not resolved")
	}
	for _, row := range rows {
		r.add(row, 10)
	}
	i := 0
	got := testing.AllocsPerRun(200, func() {
		r.add(rows[i%len(rows)], 10)
		i++
	})
	if got != 0 {
		t.Fatalf("universe add on seen subspaces: %v allocs/op, want 0", got)
	}
}
