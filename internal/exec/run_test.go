package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"quickr/internal/cluster"
	"quickr/internal/lplan"
	"quickr/internal/metrics"
)

func TestParallelPartsZeroPartitions(t *testing.T) {
	called := false
	if err := parallelParts(context.Background(), 0, func(i int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for zero partitions")
	}
}

func TestParallelPartsOnePartitionRunsInline(t *testing.T) {
	var got []int
	if err := parallelParts(context.Background(), 1, func(i int) error {
		// A single partition runs on the caller's goroutine, so an
		// unsynchronized append here must be safe (the race detector
		// verifies this).
		got = append(got, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("expected exactly index 0, got %v", got)
	}
}

func TestParallelPartsVisitsEveryIndexOnce(t *testing.T) {
	const n = 100
	var visits [n]int64
	if err := parallelParts(context.Background(), n, func(i int) error {
		atomic.AddInt64(&visits[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestParallelPartsPropagatesFirstError(t *testing.T) {
	sentinel := errors.New("partition failed")
	err := parallelParts(context.Background(), 16, func(i int) error {
		if i == 7 {
			return fmt.Errorf("part %d: %w", i, sentinel)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("expected wrapped sentinel error, got %v", err)
	}
}

func TestParallelPartsReportsOneOfManyErrors(t *testing.T) {
	err := parallelParts(context.Background(), 32, func(i int) error {
		if i%2 == 1 {
			return fmt.Errorf("part %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), "failed") {
		t.Fatalf("unexpected error text %q", err)
	}
}

// Partition workers write per-operator counters through index-disjoint
// slots; this hammers those writes from the worker pool so the race
// detector can prove they never alias.
func TestParallelPartsCountersRaceFree(t *testing.T) {
	const parts = 64
	op := &metrics.Op{}
	op.Grow(parts)
	for round := 0; round < 50; round++ {
		if err := parallelParts(context.Background(), parts, func(i int) error {
			sl := op.Slot(i)
			for j := 0; j < 1000; j++ {
				sl.RowsIn++
				sl.RowsOut += 2
				sl.BytesIn += 8
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	tot := op.Total()
	wantIn := int64(parts * 50 * 1000)
	if tot.RowsIn != wantIn || tot.RowsOut != 2*wantIn {
		t.Fatalf("merged counters wrong: in=%d out=%d want in=%d out=%d",
			tot.RowsIn, tot.RowsOut, wantIn, 2*wantIn)
	}
}

// An instrumented end-to-end run: sampler + aggregation over several
// partitions, checked for counter consistency (and raced under -race).
func TestRunInstrumentedCountsAndAnalyze(t *testing.T) {
	rows := make([][2]float64, 0, 4000)
	for i := 0; i < 4000; i++ {
		rows = append(rows, [2]float64{float64(i % 7), float64(i)})
	}
	tbl, _ := buildT("t", 8, rows)
	scan := scanOf(tbl)
	kCol, vCol := scan.OutCols[0], scan.OutCols[1]
	samp := &PSample{
		In:   scan,
		Def:  lplan.SamplerDef{Type: lplan.SamplerUniform, P: 0.25},
		Seed: 7,
	}
	exch := &PExchange{In: samp, Keys: []lplan.ColumnID{kCol.ID}, Parts: 4}
	nextID++
	agg := &PHashAgg{
		In:        exch,
		GroupCols: []lplan.ColumnID{kCol.ID},
		GroupInfo: []lplan.ColumnInfo{kCol},
		Aggs: []lplan.AggSpec{{Kind: lplan.AggSum, Arg: vCol.ID,
			Out: lplan.ColumnInfo{ID: nextID, Name: "s", Kind: vCol.Kind}}},
	}

	res, err := RunInstrumented(agg, cluster.DefaultConfig(), map[PNode]float64{scan: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil {
		t.Fatal("no stats collected")
	}

	scanOp := res.Stats.Op(scan)
	if scanOp == nil {
		t.Fatal("scan not registered")
	}
	if got := scanOp.Total().RowsOut; got != 4000 {
		t.Fatalf("scan counted %d rows, want 4000", got)
	}
	if scanOp.EstRows != 4000 {
		t.Fatalf("scan estimate %v, want 4000", scanOp.EstRows)
	}

	sampOp := res.Stats.Op(samp)
	if sampOp == nil {
		t.Fatal("sampler not registered")
	}
	st := sampOp.Total()
	if st.SamplerSeen != 4000 {
		t.Fatalf("sampler saw %d rows, want 4000", st.SamplerSeen)
	}
	if st.SamplerPassed <= 0 || st.SamplerPassed >= 4000 {
		t.Fatalf("sampler passed %d of 4000; expected a strict subset", st.SamplerPassed)
	}
	rate := float64(st.SamplerPassed) / float64(st.SamplerSeen)
	if rate < 0.15 || rate > 0.35 {
		t.Fatalf("pass rate %.3f far from p=0.25", rate)
	}

	aggOp := res.Stats.Op(agg)
	if aggOp == nil || aggOp.Total().RowsOut != 7 {
		t.Fatalf("agg output miscounted: %+v", aggOp)
	}

	if res.AnalyzedPlan == "" {
		t.Fatal("no analyzed plan")
	}
	if !strings.Contains(res.AnalyzedPlan, "est=4000") ||
		!strings.Contains(res.AnalyzedPlan, "actual=4000") {
		t.Fatalf("analyzed plan missing scan annotations:\n%s", res.AnalyzedPlan)
	}
	if !strings.Contains(res.AnalyzedPlan, "sampler UNIFORM") {
		t.Fatalf("analyzed plan missing sampler annotation:\n%s", res.AnalyzedPlan)
	}
}

// Run (the uninstrumented entry point) must still collect stats, with
// unknown estimates marked.
func TestRunCollectsStatsWithoutEstimates(t *testing.T) {
	tbl, _ := buildT("t", 2, [][2]float64{{1, 1}, {2, 2}, {3, 3}})
	scan := scanOf(tbl)
	res := run(t, scan)
	op := res.Stats.Op(scan)
	if op == nil {
		t.Fatal("scan not registered")
	}
	if op.EstRows != -1 {
		t.Fatalf("expected unknown estimate (-1), got %v", op.EstRows)
	}
	if op.Total().RowsOut != 3 {
		t.Fatalf("counted %d rows, want 3", op.Total().RowsOut)
	}
}
