package exec

import "quickr/internal/table"

// rowArena slab-allocates the table.Value backing arrays of operator
// output rows: one make per slab instead of one per row. Arenas are
// strictly per-task (no synchronization); handed-out windows are
// disjoint and capacity-capped, so an append past a row's declared
// length reallocates instead of stomping a neighbor. Rows keep their
// slab alive after the task ends — the arena trades a little slack
// memory at the tail of each slab for removing the allocator from the
// join's per-output-row path.
type rowArena struct {
	buf []table.Value
}

// arenaSlabValues is the slab size. At 16 B/value a slab is 64 KiB —
// big enough to amortize allocation over thousands of narrow rows,
// small enough that the final partially-used slab wastes little.
const arenaSlabValues = 4096

// alloc returns a zero-length row with capacity exactly n, carved from
// the current slab.
func (a *rowArena) alloc(n int) table.Row {
	if n > len(a.buf) {
		size := arenaSlabValues
		if n > size {
			size = n
		}
		a.buf = make([]table.Value, size)
	}
	out := a.buf[0:0:n]
	a.buf = a.buf[n:]
	return table.Row(out)
}
