package exec

import (
	"math"

	"quickr/internal/pool"
	"quickr/internal/table"
)

// DefaultBatchSize is the number of rows per pipeline batch when the
// caller does not override it. Big enough to amortize per-batch
// accounting, small enough that a fused scan→filter→sample pipeline
// keeps only a few KB in flight per partition instead of the whole
// intermediate result (and small enough to still batch the modest
// per-partition row counts of the CI smoke scale).
const DefaultBatchSize = 256

// Options tunes plan execution.
type Options struct {
	// BatchSize is the number of rows per streamed pipeline batch.
	// 0 selects DefaultBatchSize. Negative disables streaming: every
	// pipeline materializes whole partitions (the pre-batching executor,
	// kept as the comparison baseline for BenchmarkExecutorPipeline).
	BatchSize int
	// Columnar switches non-breaker pipelines to the column-major
	// vectorized executor (typed vectors + selection vectors). It only
	// applies when BatchSize >= 0: the materializing baseline
	// (BatchSize < 0) always runs the row-at-a-time oracle path.
	Columnar bool
	// Pool overrides the worker pool partition fan-out runs on (nil
	// selects the process-wide shared pool).
	Pool *pool.Pool
	// QueuedNanos and AdmittedBytes echo the admission-gate outcome so
	// EXPLAIN ANALYZE and the JSON run report can annotate it alongside
	// the run's own pool telemetry.
	QueuedNanos   int64
	AdmittedBytes int64
	// CorrRows carries history-corrected cardinality estimates keyed by
	// plan-node identity (nil when no learned correction applied);
	// EXPLAIN ANALYZE shows them as `corrected=` next to `est=`.
	CorrRows map[PNode]float64
	// SampleCache, when set, resolves PCachedSample nodes: hits replay
	// materialized sampler output, misses run the fragment lazily and
	// populate. Nil runs every fragment lazily (plans without cached
	// nodes never consult it).
	SampleCache *SampleCache
	// CacheEpoch is the engine's config epoch at submission time; it is
	// folded into sample-cache keys so entries from before a Set*/DDL
	// bump are unreachable even if a purge races a populate.
	CacheEpoch uint64
}

// resolveBatch maps the Options knob onto an effective batch size.
func resolveBatch(n int) int {
	switch {
	case n == 0:
		return DefaultBatchSize
	case n < 0:
		return math.MaxInt // one batch spans the whole partition
	}
	return n
}

// wrow is an in-flight row with its sampling weight and a byte size
// cached at creation, so stage accounting never re-walks row values.
type wrow struct {
	row table.Row
	w   float64
	sz  float64
}

// newWRow wraps a row, computing its accounted size once.
func newWRow(r table.Row, w float64) wrow {
	return wrow{row: r, w: w, sz: float64(r.ByteSize() + 8)}
}

// wrowBytes returns the accounted size of an in-flight row, falling
// back to a fresh computation for rows built without newWRow.
func wrowBytes(r wrow) float64 {
	if r.sz > 0 {
		return r.sz
	}
	return float64(r.row.ByteSize() + 8)
}

// rowsBytes sums the accounted sizes of a row slice.
func rowsBytes(rows []wrow) float64 {
	var b float64
	for i := range rows {
		b += wrowBytes(rows[i])
	}
	return b
}

// batch is one unit of rows flowing through a fused pipeline. Its byte
// size is accumulated once when the batch is produced and reused by
// every downstream consumer (stage accounting, peak tracking).
type batch struct {
	rows  []wrow
	bytes float64
}

// operator is a pull-based batch iterator: Next returns the next batch
// of rows, or an empty batch once the stream is exhausted (operators
// with empty intermediate output keep pulling internally, so an empty
// batch always means done). Batches may alias operator-owned buffers
// that are reused by the following Next call; consumers must copy rows
// they keep.
type operator interface {
	Next() (batch, error)
}
