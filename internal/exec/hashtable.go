package exec

// Open-addressing hash tables for the executor's hot paths. Two shapes
// live here:
//
//   - hashIndex: a growable hash→dense-index table used by grouped
//     aggregation and window partitioning. Keys live in caller-owned
//     dense arrays; the table stores only hashes and entry indexes, so
//     a lookup of an already-seen key allocates nothing. Equality is
//     verified through a callback on hash collision.
//
//   - joinTable: the build side of a hash join, built once and then
//     shared read-only across probe tasks. Rows with equal join-key
//     hash form flat []int32 chains over a single build-row array; the
//     slot directory is sharded so the build parallelizes while chain
//     order stays the global build-row order (bit-identical probe
//     output vs the old per-task map[uint64][]wrow).
//
// Row hashing canonicalizes values exactly like Value.Key(), so the
// hash-based group tables partition rows identically to the string keys
// the engine previously concatenated per row.

import (
	"quickr/internal/table"
)

// hashRowKey folds the canonical key forms of the idx columns of row
// into one 64-bit FNV-1a hash, consistent with rowKeyEqualValues /
// rowKeyEqualRows and with concatenated Value.Key() strings:
// Key()-equal column tuples hash identically, allocation-free.
//
//hot:per-row group/join key hash, gated by BenchmarkGroupedAgg allocs/op
func hashRowKey(row table.Row, idx []int) uint64 {
	h := uint64(table.KeyHashSeed)
	for _, i := range idx {
		h = row[i].KeyHash(h)
	}
	return h
}

// rowKeyEqualValues compares a stored key tuple against the idx columns
// of row under Value.Key() equality.
//
//hot:per-probe key compare on the grouped-agg path
func rowKeyEqualValues(key []table.Value, row table.Row, idx []int) bool {
	for j, i := range idx {
		if !key[j].KeyEqual(row[i]) {
			return false
		}
	}
	return true
}

// rowKeyEqualRows compares the idx columns of two rows under
// Value.Key() equality.
//
//hot:per-probe key compare on the join path
func rowKeyEqualRows(a, b table.Row, idx []int) bool {
	for _, i := range idx {
		if !a[i].KeyEqual(b[i]) {
			return false
		}
	}
	return true
}

// appendRowKey appends the legacy concatenated group key (each column's
// Value.Key() followed by a NUL separator) to b. Group emit order sorts
// these strings, exactly as the per-row strings.Builder keys used to.
//
//hot:per-group key rendering, reuses the caller's byte buffer
func appendRowKey(b []byte, row table.Row, idx []int) []byte {
	for _, i := range idx {
		b = row[i].AppendKey(b)
		b = append(b, 0)
	}
	return b
}

// hashIndex is an open-addressing (linear probing, ≤50% load) table
// mapping 64-bit hashes to dense entry indexes 0..n-1. The caller keeps
// the actual keys in arrays parallel to the entry indexes and passes an
// equality callback to probe; insertion order is the entry order, so
// iteration over caller arrays is deterministic.
type hashIndex struct {
	mask  uint64
	slots []int32  // entry index +1; 0 = empty
	hash  []uint64 // per-slot hash, valid where slots != 0
	entry []uint64 // per-entry hash, for rehash on growth
}

// newHashIndex sizes the table for about hint entries (it grows as
// needed either way).
func newHashIndex(hint int) *hashIndex {
	capSlots := 8
	for capSlots < 2*hint {
		capSlots <<= 1
	}
	return &hashIndex{
		mask:  uint64(capSlots - 1),
		slots: make([]int32, capSlots),
		hash:  make([]uint64, capSlots),
	}
}

// len returns the number of entries.
func (t *hashIndex) len() int { return len(t.entry) }

// probe returns the entry index whose hash is h and for which eq
// reports a true key match, or -1. eq only runs on slots with an exact
// hash match, so with a sound hash it is rarely called more than once.
//
//hot:per-row open-addressing probe, gated by BenchmarkGroupedAgg allocs/op
func (t *hashIndex) probe(h uint64, eq func(int) bool) int {
	//lint:ignore ctxflow open-addressing probe; load factor < 1/2 guarantees a vacant slot within one wrap
	for s := h & t.mask; ; s = (s + 1) & t.mask {
		e := t.slots[s]
		if e == 0 {
			return -1
		}
		if t.hash[s] == h && eq(int(e-1)) {
			return int(e - 1)
		}
	}
}

// add inserts the next dense entry index under hash h (call after a
// failed probe) and returns it.
func (t *hashIndex) add(h uint64) int {
	if 2*(len(t.entry)+1) > len(t.slots) {
		t.grow()
	}
	t.entry = append(t.entry, h)
	e := len(t.entry) // stored +1
	//lint:ignore ctxflow open-addressing insert; grow() above keeps a vacant slot reachable
	for s := h & t.mask; ; s = (s + 1) & t.mask {
		if t.slots[s] == 0 {
			t.slots[s] = int32(e)
			t.hash[s] = h
			return e - 1
		}
	}
}

// grow doubles the slot directory and reinserts every entry.
func (t *hashIndex) grow() {
	capSlots := 2 * len(t.slots)
	t.mask = uint64(capSlots - 1)
	t.slots = make([]int32, capSlots)
	t.hash = make([]uint64, capSlots)
	for i, h := range t.entry {
		//lint:ignore ctxflow open-addressing reinsert into a freshly doubled (half-empty) directory
		for s := h & t.mask; ; s = (s + 1) & t.mask {
			if t.slots[s] == 0 {
				t.slots[s] = int32(i + 1)
				t.hash[s] = h
				break
			}
		}
	}
}

// joinTable is a read-only build-side hash table over a flat build-row
// array. lookup(h) returns the index of the first build row whose join
// keys hashed to h (walk next[] for the rest; -1 terminates). Chains
// are in build-row order regardless of how many shards built the table.
type joinTable struct {
	rows []wrow
	next []int32
	// hashes holds each build row's join-key hash; kept so probes can be
	// cross-checked in tests and shards rebuilt without rehashing.
	hashes    []uint64
	shards    []joinShard
	shardMask uint64
	shardBits uint
}

// joinShard is one slot-directory shard: open addressing over the rows
// whose hash routes to the shard (low bits), probed by the remaining
// hash bits.
type joinShard struct {
	mask uint64
	hash []uint64
	head []int32 // build-row index +1; 0 = empty
	tail []int32 // last row of the chain, +1 (build-time only)
}

// joinTableShards picks the build fan-out: sharding pays off only when
// the build side is big enough to amortize the per-shard scan.
func joinTableShards(n int) int {
	if n < 4096 {
		return 1
	}
	return 8
}

// buildJoinTable hashes rows' keyIdx columns with table.HashRow (seed
// 3, as the join always has) and builds the sharded directory. parallel
// runs fn(i) for i in [0,n) concurrently (the executor passes its pool
// fan-out; tests may pass a serial loop). The build is deterministic:
// each shard inserts its rows in global build order.
func buildJoinTable(rows []wrow, keyIdx []int, parallel func(n int, fn func(i int) error) error) (*joinTable, error) {
	nShards := joinTableShards(len(rows))
	shardBits := uint(0)
	for 1<<shardBits < nShards {
		shardBits++
	}
	t := &joinTable{
		rows:      rows,
		next:      make([]int32, len(rows)),
		hashes:    make([]uint64, len(rows)),
		shards:    make([]joinShard, nShards),
		shardMask: uint64(nShards - 1),
		shardBits: shardBits,
	}
	// Pass 1: per-row hashes, chunked across the pool.
	chunks := nShards
	if chunks == 1 || len(rows) == 0 {
		for i := range rows {
			t.hashes[i] = table.HashRow(rows[i].row, keyIdx, 3)
		}
	} else {
		per := (len(rows) + chunks - 1) / chunks
		if err := parallel(chunks, func(c int) error {
			lo := c * per
			hi := lo + per
			if hi > len(rows) {
				hi = len(rows)
			}
			for i := lo; i < hi; i++ {
				t.hashes[i] = table.HashRow(rows[i].row, keyIdx, 3)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	// Pass 2: per-shard counts and slot directories, then in-order chain
	// inserts. Shards own disjoint row sets, so next[] writes are
	// data-race free across the fan-out.
	buildShard := func(si int) error {
		cnt := 0
		for _, h := range t.hashes {
			if h&t.shardMask == uint64(si) {
				cnt++
			}
		}
		capSlots := 8
		for capSlots < 2*cnt {
			capSlots <<= 1
		}
		sh := &t.shards[si]
		sh.mask = uint64(capSlots - 1)
		sh.hash = make([]uint64, capSlots)
		sh.head = make([]int32, capSlots)
		sh.tail = make([]int32, capSlots)
		for i, h := range t.hashes {
			if h&t.shardMask != uint64(si) {
				continue
			}
			//lint:ignore ctxflow open-addressing insert; directory sized 2x entries, vacancy guaranteed
			for s := (h >> t.shardBits) & sh.mask; ; s = (s + 1) & sh.mask {
				if sh.head[s] == 0 {
					sh.hash[s] = h
					sh.head[s] = int32(i + 1)
					sh.tail[s] = int32(i + 1)
					t.next[i] = -1
					break
				}
				if sh.hash[s] == h {
					t.next[sh.tail[s]-1] = int32(i)
					sh.tail[s] = int32(i + 1)
					t.next[i] = -1
					break
				}
			}
		}
		return nil
	}
	if nShards == 1 {
		if err := buildShard(0); err != nil {
			return nil, err
		}
	} else if err := parallel(nShards, buildShard); err != nil {
		return nil, err
	}
	return t, nil
}

// lookup returns the first build-row index whose join-key hash is h, or
// -1. Follow t.next[i] for the rest of the chain.
//
//hot:per-probe-row join lookup, gated by BenchmarkJoin* allocs/op
func (t *joinTable) lookup(h uint64) int32 {
	sh := &t.shards[h&t.shardMask]
	//lint:ignore ctxflow open-addressing probe; load factor < 1/2 guarantees a vacant slot within one wrap
	for s := (h >> t.shardBits) & sh.mask; ; s = (s + 1) & sh.mask {
		e := sh.head[s]
		if e == 0 {
			return -1
		}
		if sh.hash[s] == h {
			return e - 1
		}
	}
}
