package exec

import (
	"context"
	"fmt"
	"math"
	"time"

	"quickr/internal/cluster"
	"quickr/internal/lplan"
	"quickr/internal/metrics"
	"quickr/internal/sampler"
	"quickr/internal/table"
)

// This file is the streaming execution core: scan→filter→project→sample
// chains between pipeline breakers run as one fused, batch-at-a-time
// pipeline per partition (samplers are one-pass streaming operators,
// §4.1, so nothing in such a chain ever needs the whole intermediate
// result in memory). Only breakers — exchange, hash-join build, hash
// aggregation, sort, limit, union barriers, window — materialize.
//
// Stage accounting and metrics are bitwise-compatible with running the
// chain operator-by-operator over materialized partitions: each fused
// pipeline charges the same single stage (the scan stage for leaf
// pipelines, otherwise the enclosing open stage or a new one named
// after the bottom-most compute operator), and per-batch counter/cost
// increments sum to the per-partition totals the materializing
// executor recorded. Running with Options.BatchSize < 0 makes every
// batch span its whole partition, which *is* the materializing
// executor — the baseline BenchmarkExecutorPipeline compares against.

// scanSource streams one stored table partition, extracting apriori
// sample weights and pruning columns batch by batch. It charges the
// scan stage and metric slot per batch; batch buffers are preallocated
// to exactly the batch's row count.
type scanSource struct {
	p    *PScan
	src  []table.Row
	size int
	pos  int
	// inflate multiplies every row weight; the optimizer's partition
	// selection sets it to the kept partition's Horvitz–Thompson factor
	// (1 for unpruned scans and certainty-stratum partitions).
	inflate float64

	st   *cluster.Stage
	task int
	slot *metrics.Slot
	// raw accumulates the partition's unpruned input bytes for the
	// job-level passes metric (summed by the coordinator afterwards).
	raw *float64
}

func (s *scanSource) Next() (batch, error) {
	remain := len(s.src) - s.pos
	if remain <= 0 {
		return batch{}, nil
	}
	n := s.size
	if n > remain {
		n = remain
	}
	t0 := time.Now()
	rows := make([]wrow, 0, n)
	var rawBytes, outBytes float64
	prune := len(s.p.ColIdx) > 0
	for _, r := range s.src[s.pos : s.pos+n] {
		rawBytes += float64(r.ByteSize())
		w := 1.0
		if s.p.WeightIdx >= 0 && s.p.WeightIdx < len(r) {
			w = r[s.p.WeightIdx].Float()
			if w <= 0 {
				w = 1
			}
		}
		if s.inflate > 0 {
			w *= s.inflate
		}
		if prune {
			pr := make(table.Row, len(s.p.ColIdx))
			for k, ci := range s.p.ColIdx {
				pr[k] = r[ci]
			}
			r = pr
		}
		wr := newWRow(r, w)
		outBytes += wr.sz
		rows = append(rows, wr)
	}
	s.pos += n
	s.st.AddInput(s.task, int64(n), rawBytes)
	s.st.AddCPU(s.task, float64(n))
	s.slot.RowsIn += int64(n)
	s.slot.RowsOut += int64(n)
	// Scan in/out bytes are the raw stored bytes (the pruned width shows
	// up on the downstream operators instead), as before the refactor.
	s.slot.BytesIn += rawBytes
	s.slot.BytesOut += rawBytes
	s.slot.NoteBatch(outBytes)
	*s.raw += rawBytes
	s.slot.WallNanos += int64(time.Since(t0))
	return batch{rows: rows, bytes: outBytes}, nil
}

// rowSource streams an already-materialized partition (the output of a
// pipeline breaker) in batches. Batches alias the underlying slice;
// in-place consumers (filter compaction, project rewrites) only ever
// touch their own batch's window, which is safe because writes trail
// reads within one batch.
type rowSource struct {
	rows []wrow
	size int
	pos  int
}

func (s *rowSource) Next() (batch, error) {
	remain := len(s.rows) - s.pos
	if remain <= 0 {
		return batch{}, nil
	}
	n := s.size
	if n > remain {
		n = remain
	}
	rows := s.rows[s.pos : s.pos+n]
	s.pos += n
	return batch{rows: rows, bytes: rowsBytes(rows)}, nil
}

// filterOp compacts each batch in place, pulling more input until it
// has survivors or the child is exhausted.
type filterOp struct {
	ctx   context.Context
	child operator
	pred  evalFunc
	st    *cluster.Stage
	task  int
	slot  *metrics.Slot
}

func (f *filterOp) Next() (batch, error) {
	for {
		// The input-pull boundary is a cancellation point of its own: a
		// selective predicate can consume many input batches before one
		// output batch reaches the drive loop's check, which would make
		// cancellation latency O(input) instead of O(batch).
		if err := ctxErr(f.ctx); err != nil {
			return batch{}, err
		}
		b, err := f.child.Next()
		if err != nil || len(b.rows) == 0 {
			return batch{}, err
		}
		t0 := time.Now()
		out := b.rows[:0]
		var bytes float64
		for _, r := range b.rows {
			if truthy(f.pred(r.row)) {
				bytes += wrowBytes(r)
				out = append(out, r)
			}
		}
		f.st.AddCPU(f.task, float64(len(b.rows)))
		f.slot.RowsIn += int64(len(b.rows))
		f.slot.RowsOut += int64(len(out))
		f.slot.WallNanos += int64(time.Since(t0))
		if len(out) > 0 {
			f.slot.NoteBatch(bytes)
			return batch{rows: out, bytes: bytes}, nil
		}
	}
}

// projectOp rewrites each batch's rows in place.
type projectOp struct {
	child operator
	fns   []evalFunc
	cost  float64
	st    *cluster.Stage
	task  int
	slot  *metrics.Slot
}

func (p *projectOp) Next() (batch, error) {
	b, err := p.child.Next()
	if err != nil || len(b.rows) == 0 {
		return batch{}, err
	}
	t0 := time.Now()
	var bytes float64
	for j, r := range b.rows {
		out := make(table.Row, len(p.fns))
		for k, f := range p.fns {
			out[k] = f(r.row)
		}
		wr := newWRow(out, r.w)
		bytes += wr.sz
		b.rows[j] = wr
	}
	p.st.AddCPU(p.task, p.cost*float64(len(b.rows)))
	p.slot.RowsIn += int64(len(b.rows))
	p.slot.RowsOut += int64(len(b.rows))
	p.slot.NoteBatch(bytes)
	p.slot.WallNanos += int64(time.Since(t0))
	return batch{rows: b.rows, bytes: bytes}, nil
}

// passOp is a pass-through sampler: it forwards batches untouched and
// only counts them (no stage exists for all-pass-through chains, and no
// CPU is charged — exactly the materializing executor's behavior).
type passOp struct {
	child operator
	slot  *metrics.Slot
}

func (p *passOp) Next() (batch, error) {
	b, err := p.child.Next()
	if err != nil || len(b.rows) == 0 {
		return b, err
	}
	p.slot.RowsIn += int64(len(b.rows))
	p.slot.RowsOut += int64(len(b.rows))
	p.slot.NoteBatch(b.bytes)
	return b, nil
}

// sampleOp streams a real sampler: rows are admitted batch by batch,
// the distinct sampler's overflowed reservoirs drain into the output
// stream as they occur, and Flush emits the remaining reservoirs as the
// end-of-partition batch. It owns its output buffer — unlike filter it
// cannot compact in place, because pending reservoir rows from earlier
// batches can make one output batch larger than the current input
// batch.
type sampleOp struct {
	ctx   context.Context
	child operator
	sm    sampler.Sampler
	dist  *sampler.Distinct
	st    *cluster.Stage
	task  int
	slot  *metrics.Slot
	buf   []wrow
	done  bool
}

func (s *sampleOp) Next() (batch, error) {
	if s.done {
		return batch{}, nil
	}
	for {
		// Like filterOp: a low-p sampler may swallow whole input batches
		// without emitting, so check cancellation per pull, not just per
		// output batch.
		if err := ctxErr(s.ctx); err != nil {
			return batch{}, err
		}
		b, err := s.child.Next()
		if err != nil {
			return batch{}, err
		}
		t0 := time.Now()
		out := s.buf[:0]
		var bytes float64
		if len(b.rows) == 0 {
			// End of partition: the reservoir flush is the final batch.
			s.done = true
			for _, fl := range s.sm.Flush() {
				wr := newWRow(fl.Row, fl.W)
				bytes += wr.sz
				out = append(out, wr)
			}
			s.slot.RowsOut += int64(len(out))
			s.slot.SamplerPassed += int64(len(out))
			if s.dist != nil {
				s.slot.SketchEntries += int64(s.dist.MemoryFootprint())
			}
			if len(out) > 0 {
				s.slot.NoteBatch(bytes)
			}
			s.slot.WallNanos += int64(time.Since(t0))
			s.buf = out
			return batch{rows: out, bytes: bytes}, nil
		}
		for _, r := range b.rows {
			if pass, w := s.sm.Admit(r.row, r.w); pass {
				wr := wrow{row: r.row, w: w, sz: r.sz}
				bytes += wrowBytes(wr)
				out = append(out, wr)
			}
			if s.dist != nil {
				for _, fl := range s.dist.TakePending() {
					wr := newWRow(fl.Row, fl.W)
					bytes += wr.sz
					out = append(out, wr)
				}
			}
		}
		s.st.AddCPU(s.task, s.sm.CostPerRow()*float64(len(b.rows)))
		s.slot.RowsIn += int64(len(b.rows))
		s.slot.RowsOut += int64(len(out))
		s.slot.SamplerSeen += int64(len(b.rows))
		s.slot.SamplerPassed += int64(len(out))
		s.slot.WallNanos += int64(time.Since(t0))
		s.buf = out
		if len(out) > 0 {
			s.slot.NoteBatch(bytes)
			return batch{rows: out, bytes: bytes}, nil
		}
	}
}

// pipeSpec is the partition-independent compilation of one fused chain
// operator: expressions are compiled once per pipeline, while samplers
// are instantiated per partition (they carry per-partition seeds).
type pipeSpec struct {
	op *metrics.Op

	// PFilter
	pred evalFunc
	// PProject
	fns  []evalFunc
	cost float64
	// PSample
	sample       *PSample
	passthrough  bool
	colIdx       []int
	bucketPos    []int
	bucketWidths []float64
	parts        int
}

func (ex *executor) compilePipeOp(n PNode, parts int) (*pipeSpec, error) {
	op := ex.opFor(n)
	op.Grow(parts)
	sp := &pipeSpec{op: op, parts: parts}
	switch x := n.(type) {
	case *PFilter:
		pred, err := compileExpr(x.Pred, buildColMap(x.In.Cols()))
		if err != nil {
			return nil, err
		}
		sp.pred = pred
	case *PProject:
		cm := buildColMap(x.In.Cols())
		sp.fns = make([]evalFunc, len(x.Exprs))
		for i, e := range x.Exprs {
			f, err := compileExpr(e, cm)
			if err != nil {
				return nil, err
			}
			sp.fns[i] = f
		}
		sp.cost = 0.5 + 0.3*float64(len(sp.fns))
	case *PSample:
		if x.Def.Type == lplan.SamplerPassThrough {
			sp.passthrough = true
			break
		}
		sp.sample = x
		cm := buildColMap(x.In.Cols())
		for _, id := range x.Def.Cols {
			i, ok := cm[id]
			if !ok {
				return nil, fmt.Errorf("exec: sampler column #%d not available", id)
			}
			sp.colIdx = append(sp.colIdx, i)
		}
		for _, id := range x.Def.BucketCols {
			pos, ok := cm[id]
			if !ok {
				return nil, fmt.Errorf("exec: bucket column #%d not available", id)
			}
			sp.bucketPos = append(sp.bucketPos, pos)
		}
		sp.bucketWidths = x.Def.BucketWidths
	default:
		return nil, fmt.Errorf("exec: %T is not a pipelined operator", n)
	}
	return sp, nil
}

// newSampler builds the per-partition sampler instance, with the same
// seed derivations the executor has always used (universe instances
// share (cols, seed, p) so every instance — and the paired sampler on
// the other join input — picks the same subspace; the distinct
// sampler's δ is split across partitions).
func (sp *pipeSpec) newSampler(task int) sampler.Sampler {
	p := sp.sample
	switch p.Def.Type {
	case lplan.SamplerUniform:
		return sampler.NewUniform(p.Def.P, p.Seed*2654435761+uint64(task)+1)
	case lplan.SamplerUniverse:
		return sampler.NewUniverse(p.Def.P, sp.colIdx, p.Def.Seed)
	case lplan.SamplerDistinct:
		delta := sampler.DeltaForParallelism(p.Def.Delta, sp.parts)
		ds := sampler.NewDistinct(p.Def.P, sp.colIdx, delta, p.Seed*0x9E3779B9+uint64(task)+1)
		// Bucketized stratification: ⌈col/width⌉ joins the stratum key
		// (the paper's function-of-columns stratification, §4.1.2).
		for bi, pos := range sp.bucketPos {
			pos := pos
			width := sp.bucketWidths[bi]
			if width <= 0 {
				width = 1
			}
			ds.KeyFuncs = append(ds.KeyFuncs, func(r table.Row) table.Value {
				v := r[pos]
				if !v.IsNumeric() {
					return v
				}
				return table.NewInt(int64(math.Ceil(v.Float() / width)))
			})
		}
		return ds
	}
	return nil
}

// instantiate wires the partition-local operator for this spec. ctx is
// observed by the operators whose Next can pull many input batches per
// output batch (filter, sample).
func (sp *pipeSpec) instantiate(ctx context.Context, child operator, st *cluster.Stage, task int) operator {
	slot := sp.op.Slot(task)
	switch {
	case sp.pred != nil:
		return &filterOp{ctx: ctx, child: child, pred: sp.pred, st: st, task: task, slot: slot}
	case sp.fns != nil:
		return &projectOp{child: child, fns: sp.fns, cost: sp.cost, st: st, task: task, slot: slot}
	case sp.passthrough:
		return &passOp{child: child, slot: slot}
	default:
		sm := sp.newSampler(task)
		dist, _ := sm.(*sampler.Distinct)
		return &sampleOp{ctx: ctx, child: child, sm: sm, dist: dist, st: st, task: task, slot: slot}
	}
}

// pipelineStageName names the stage a fused pipeline over a
// materialized stream opens: the bottom-most compute operator wins,
// matching the stage names of the operator-at-a-time executor. A chain
// of only pass-through samplers opens no stage at all.
func pipelineStageName(chain []PNode) string {
	for i := len(chain) - 1; i >= 0; i-- {
		switch x := chain[i].(type) {
		case *PFilter:
			return "filter"
		case *PProject:
			return "project"
		case *PSample:
			if x.Def.Type != lplan.SamplerPassThrough {
				return "sample"
			}
		}
	}
	return ""
}

// execPipeline runs the fused chain rooted at top (a non-breaker node):
// every partition drives one scan-or-rowSource through the chain's
// operators batch-at-a-time, materializing only at the sink.
func (ex *executor) execPipeline(top PNode) (*stream, error) {
	// Walk down to the pipeline's source; the chain holds the fused
	// operators top-down, the node below is a scan or a breaker.
	var chain []PNode
	var scan *PScan
	var cached *PCachedSample
	n := top
	//lint:ignore ctxflow walk is bounded by plan depth and terminates at a scan or breaker
	for {
		if s, ok := n.(*PScan); ok {
			scan = s
			break
		}
		// A cached-sample node ends the fused chain like a scan does: its
		// output (replayed or lazily produced) is the pipeline's source.
		if cs, ok := n.(*PCachedSample); ok {
			cached = cs
			break
		}
		if n.Breaker() {
			break
		}
		chain = append(chain, n)
		n = n.Kids()[0]
	}

	var s *stream
	var st *cluster.Stage
	var parts int
	var partRaw []float64
	if scan != nil {
		parts = len(scan.Tbl.Partitions)
		if scan.Prune != nil {
			parts = len(scan.Prune.Keep)
		}
		st = ex.run.NewStage("scan:"+scan.Tbl.Name, parts)
		st.Extract = true
		partRaw = make([]float64, parts)
	} else {
		var err error
		if cached != nil {
			s, err = ex.execCachedSample(cached)
		} else {
			s, err = ex.exec(n)
		}
		if err != nil {
			return nil, err
		}
		if name := pipelineStageName(chain); name != "" {
			ex.ensureStage(s, name)
		}
		st = s.stage
		parts = len(s.parts)
	}

	// Compile the chain bottom-up so specs[0] consumes the source.
	specs := make([]*pipeSpec, 0, len(chain))
	for i := len(chain) - 1; i >= 0; i-- {
		sp, err := ex.compilePipeOp(chain[i], parts)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	var scanOp *metrics.Op
	if scan != nil {
		scanOp = ex.opFor(scan)
		scanOp.Grow(parts)
		if scan.Prune != nil {
			for i := 0; i < parts; i++ {
				scanOp.Slot(i).PartsScanned = 1
			}
			scanOp.Slot(0).PartsPruned = int64(scan.Prune.Pruned)
		}
	}

	// Sink capacity hint from the optimizer's estimate of the
	// pipeline's output cardinality, split across partitions.
	hint := 0
	if topOp := ex.opFor(top); topOp.EstRows > 0 && parts > 0 {
		hint = int(topOp.EstRows)/parts + 1
		if hint > 1<<20 {
			hint = 1 << 20
		}
	}

	outParts := make([][]wrow, parts)
	if err := ex.parallel(parts, func(i int) error {
		var cur operator
		if scan != nil {
			part, inflate := i, 1.0
			if scan.Prune != nil {
				part = scan.Prune.Keep[i]
				inflate = scan.Prune.Inflate[i]
			}
			cur = &scanSource{
				p: scan, src: scan.Tbl.Partitions[part], size: ex.batch,
				inflate: inflate,
				st:      st, task: i, slot: scanOp.Slot(i), raw: &partRaw[i],
			}
		} else {
			cur = &rowSource{rows: s.parts[i], size: ex.batch}
		}
		for _, sp := range specs {
			cur = sp.instantiate(ex.ctx, cur, st, i)
		}
		out := make([]wrow, 0, hint)
		for {
			// The batch boundary is the cancellation point: a canceled
			// query stops pulling within one batch of the signal.
			if err := ctxErr(ex.ctx); err != nil {
				return err
			}
			b, err := cur.Next()
			if err != nil {
				return err
			}
			if len(b.rows) == 0 {
				break
			}
			out = append(out, b.rows...)
		}
		outParts[i] = out
		return nil
	}); err != nil {
		return nil, err
	}

	if scan != nil {
		for _, b := range partRaw {
			ex.run.JobInputBytes += b
		}
		return &stream{parts: outParts, stage: st}, nil
	}
	s.parts = outParts
	return s, nil
}
