// Package sketch provides the streaming summaries Quickr relies on: a
// Manku–Motwani lossy-counting heavy-hitter sketch (used by the distinct
// sampler, §4.1.2, and table statistics, Table 2) and a KMV distinct-value
// estimator (Table 2).
package sketch

import "sort"

// LossyCounter identifies heavy hitters in one pass using memory
// O(1/eps · log(eps·N)) (Manku & Motwani, VLDB 2002). For an input of
// size N it reports every item with frequency above s·N and estimates
// frequencies to within ±eps·N of truth. The paper uses eps=1e-4, s=1e-2
// for a ~20MB footprint at N=1e10 rows (§4.1.2).
type LossyCounter struct {
	eps     float64
	width   int // bucket width ⌈1/eps⌉
	bucket  int // current bucket id
	n       int64
	entries map[string]*lcEntry
}

type lcEntry struct {
	count int64
	delta int64
}

// NewLossyCounter creates a sketch with error bound eps (0 < eps < 1).
func NewLossyCounter(eps float64) *LossyCounter {
	if eps <= 0 || eps >= 1 {
		eps = 1e-4
	}
	w := int(1/eps) + 1
	return &LossyCounter{eps: eps, width: w, bucket: 1, entries: map[string]*lcEntry{}}
}

// Add records one occurrence of key.
func (c *LossyCounter) Add(key string) {
	c.n++
	if e, ok := c.entries[key]; ok {
		e.count++
	} else {
		c.entries[key] = &lcEntry{count: 1, delta: int64(c.bucket - 1)}
	}
	if c.n%int64(c.width) == 0 {
		c.prune()
	}
}

func (c *LossyCounter) prune() {
	b := int64(c.bucket)
	for k, e := range c.entries {
		if e.count+e.delta <= b {
			delete(c.entries, k)
		}
	}
	c.bucket++
}

// N returns the number of items observed.
func (c *LossyCounter) N() int64 { return c.n }

// Count returns the estimated frequency of key (lower bound; true
// frequency is within +eps·N of it), and whether the key is tracked.
func (c *LossyCounter) Count(key string) (int64, bool) {
	e, ok := c.entries[key]
	if !ok {
		return 0, false
	}
	return e.count, true
}

// EntryCount returns the number of tracked entries (memory proxy).
func (c *LossyCounter) EntryCount() int { return len(c.entries) }

// HeavyHitter is one reported frequent item.
type HeavyHitter struct {
	Key  string
	Freq int64 // estimated frequency (count + delta upper bound)
}

// HeavyHitters returns all items whose estimated frequency exceeds
// s·N, sorted by decreasing frequency then key.
func (c *LossyCounter) HeavyHitters(s float64) []HeavyHitter {
	threshold := int64((s - c.eps) * float64(c.n))
	var out []HeavyHitter
	for k, e := range c.entries {
		if e.count >= threshold && e.count > 0 {
			out = append(out, HeavyHitter{Key: k, Freq: e.count + e.delta})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Merge folds another sketch into c (used when parallel sampler
// instances combine; error bounds add).
func (c *LossyCounter) Merge(o *LossyCounter) {
	c.n += o.n
	for k, e := range o.entries {
		if mine, ok := c.entries[k]; ok {
			mine.count += e.count
			if e.delta > mine.delta {
				mine.delta = e.delta
			}
		} else {
			c.entries[k] = &lcEntry{count: e.count, delta: e.delta + int64(c.bucket-1)}
		}
	}
}
