package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLossyCounterFindsHeavyHitters(t *testing.T) {
	c := NewLossyCounter(1e-3)
	const n = 100000
	rng := rand.New(rand.NewSource(1))
	// Two heavy hitters at ~10% and ~5%; the rest uniform over 10k keys.
	for i := 0; i < n; i++ {
		switch {
		case rng.Float64() < 0.10:
			c.Add("hot1")
		case rng.Float64() < 0.05:
			c.Add("hot2")
		default:
			c.Add(fmt.Sprintf("k%d", rng.Intn(10000)))
		}
	}
	hh := c.HeavyHitters(0.02)
	if len(hh) < 2 {
		t.Fatalf("expected both heavy hitters, got %v", hh)
	}
	if hh[0].Key != "hot1" || hh[1].Key != "hot2" {
		t.Fatalf("order: %v", hh)
	}
	// Frequency estimates within eps*N of truth.
	if math.Abs(float64(hh[0].Freq)-0.10*n) > 2*1e-3*n+0.01*n {
		t.Errorf("hot1 freq estimate %d far from %d", hh[0].Freq, int(0.10*n))
	}
}

func TestLossyCounterMemoryBound(t *testing.T) {
	eps := 1e-3
	c := NewLossyCounter(eps)
	for i := 0; i < 500000; i++ {
		c.Add(fmt.Sprintf("k%d", i)) // all distinct: worst case
	}
	// Lossy counting guarantees ≤ (1/eps)·log(eps·N) entries.
	bound := int(1 / eps * math.Log(eps*float64(c.N())) * 1.5)
	if c.EntryCount() > bound {
		t.Errorf("entries %d exceed bound %d", c.EntryCount(), bound)
	}
}

func TestLossyCounterUndercountBounded(t *testing.T) {
	// Property: reported count never exceeds true count, and undercount
	// is at most eps*N.
	c := NewLossyCounter(1e-2)
	trueCount := map[string]int64{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50000; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(100))
		c.Add(k)
		trueCount[k]++
	}
	for k, tc := range trueCount {
		got, ok := c.Count(k)
		if !ok {
			if tc > int64(1e-2*float64(c.N())) {
				t.Errorf("%s with count %d dropped", k, tc)
			}
			continue
		}
		if got > tc {
			t.Errorf("%s overcounted: %d > %d", k, got, tc)
		}
		if tc-got > int64(1e-2*float64(c.N()))+1 {
			t.Errorf("%s undercounted: %d << %d", k, got, tc)
		}
	}
}

func TestLossyCounterMerge(t *testing.T) {
	a, b := NewLossyCounter(1e-3), NewLossyCounter(1e-3)
	for i := 0; i < 10000; i++ {
		a.Add("x")
		b.Add("x")
		b.Add(fmt.Sprintf("k%d", i))
	}
	a.Merge(b)
	if a.N() != 30000 {
		t.Fatalf("merged N = %d", a.N())
	}
	got, ok := a.Count("x")
	if !ok || got < 19000 {
		t.Errorf("merged count of x: %d", got)
	}
}

func TestKMVExactSmall(t *testing.T) {
	s := NewKMV(64)
	for i := 0; i < 100; i++ {
		s.Add(fmt.Sprintf("v%d", i%10))
	}
	if got := s.Estimate(); got != 10 {
		t.Errorf("small-cardinality estimate %v want exactly 10", got)
	}
}

func TestKMVEstimateLarge(t *testing.T) {
	s := NewKMV(1024)
	const trueNDV = 50000
	for i := 0; i < trueNDV; i++ {
		s.Add(fmt.Sprintf("v%d", i))
		s.Add(fmt.Sprintf("v%d", i)) // duplicates must not matter
	}
	got := s.Estimate()
	if rel := math.Abs(got-trueNDV) / trueNDV; rel > 0.15 {
		t.Errorf("estimate %.0f vs %d (rel err %.2f)", got, trueNDV, rel)
	}
	if s.N() != 2*trueNDV {
		t.Errorf("N = %d", s.N())
	}
}

// Property: duplicates never change the estimate.
func TestKMVDuplicateInvariance(t *testing.T) {
	f := func(keys []uint16) bool {
		a, b := NewKMV(64), NewKMV(64)
		for _, k := range keys {
			a.Add(fmt.Sprint(k))
			b.Add(fmt.Sprint(k))
			b.Add(fmt.Sprint(k))
		}
		return a.Estimate() == b.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
