package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLossyCounterFindsHeavyHitters(t *testing.T) {
	c := NewLossyCounter(1e-3)
	const n = 100000
	rng := rand.New(rand.NewSource(1))
	// Two heavy hitters at ~10% and ~5%; the rest uniform over 10k keys.
	for i := 0; i < n; i++ {
		switch {
		case rng.Float64() < 0.10:
			c.Add("hot1")
		case rng.Float64() < 0.05:
			c.Add("hot2")
		default:
			c.Add(fmt.Sprintf("k%d", rng.Intn(10000)))
		}
	}
	hh := c.HeavyHitters(0.02)
	if len(hh) < 2 {
		t.Fatalf("expected both heavy hitters, got %v", hh)
	}
	if hh[0].Key != "hot1" || hh[1].Key != "hot2" {
		t.Fatalf("order: %v", hh)
	}
	// Frequency estimates within eps*N of truth.
	if math.Abs(float64(hh[0].Freq)-0.10*n) > 2*1e-3*n+0.01*n {
		t.Errorf("hot1 freq estimate %d far from %d", hh[0].Freq, int(0.10*n))
	}
}

func TestLossyCounterMemoryBound(t *testing.T) {
	eps := 1e-3
	c := NewLossyCounter(eps)
	for i := 0; i < 500000; i++ {
		c.Add(fmt.Sprintf("k%d", i)) // all distinct: worst case
	}
	// Lossy counting guarantees ≤ (1/eps)·log(eps·N) entries.
	bound := int(1 / eps * math.Log(eps*float64(c.N())) * 1.5)
	if c.EntryCount() > bound {
		t.Errorf("entries %d exceed bound %d", c.EntryCount(), bound)
	}
}

func TestLossyCounterUndercountBounded(t *testing.T) {
	// Property: reported count never exceeds true count, and undercount
	// is at most eps*N.
	c := NewLossyCounter(1e-2)
	trueCount := map[string]int64{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50000; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(100))
		c.Add(k)
		trueCount[k]++
	}
	for k, tc := range trueCount {
		got, ok := c.Count(k)
		if !ok {
			if tc > int64(1e-2*float64(c.N())) {
				t.Errorf("%s with count %d dropped", k, tc)
			}
			continue
		}
		if got > tc {
			t.Errorf("%s overcounted: %d > %d", k, got, tc)
		}
		if tc-got > int64(1e-2*float64(c.N()))+1 {
			t.Errorf("%s undercounted: %d << %d", k, got, tc)
		}
	}
}

func TestLossyCounterMerge(t *testing.T) {
	a, b := NewLossyCounter(1e-3), NewLossyCounter(1e-3)
	for i := 0; i < 10000; i++ {
		a.Add("x")
		b.Add("x")
		b.Add(fmt.Sprintf("k%d", i))
	}
	a.Merge(b)
	if a.N() != 30000 {
		t.Fatalf("merged N = %d", a.N())
	}
	got, ok := a.Count("x")
	if !ok || got < 19000 {
		t.Errorf("merged count of x: %d", got)
	}
}

func TestKMVExactSmall(t *testing.T) {
	s := NewKMV(64)
	for i := 0; i < 100; i++ {
		s.Add(fmt.Sprintf("v%d", i%10))
	}
	if got := s.Estimate(); got != 10 {
		t.Errorf("small-cardinality estimate %v want exactly 10", got)
	}
}

func TestKMVEstimateLarge(t *testing.T) {
	s := NewKMV(1024)
	const trueNDV = 50000
	for i := 0; i < trueNDV; i++ {
		s.Add(fmt.Sprintf("v%d", i))
		s.Add(fmt.Sprintf("v%d", i)) // duplicates must not matter
	}
	got := s.Estimate()
	if rel := math.Abs(got-trueNDV) / trueNDV; rel > 0.15 {
		t.Errorf("estimate %.0f vs %d (rel err %.2f)", got, trueNDV, rel)
	}
	if s.N() != 2*trueNDV {
		t.Errorf("N = %d", s.N())
	}
}

func TestKMVMergeExactSmall(t *testing.T) {
	a, b := NewKMV(64), NewKMV(64)
	for i := 0; i < 50; i++ {
		a.Add(fmt.Sprintf("a%d", i))
		b.Add(fmt.Sprintf("b%d", i))
		b.Add(fmt.Sprintf("a%d", i)) // overlap must not double-count
	}
	a.Merge(b)
	if got := a.Estimate(); got != 100 {
		t.Errorf("merged exact estimate %v want exactly 100", got)
	}
	if a.N() != 150 {
		t.Errorf("merged N = %d", a.N())
	}
	if n, ok := a.ExactCount(); !ok || n != 100 {
		t.Errorf("ExactCount = %d, %v", n, ok)
	}
}

// Merge must behave as if the other stream had been Added directly: the
// merged estimate equals the single-sketch estimate over the union.
func TestKMVMergeMatchesUnion(t *testing.T) {
	merged, whole := NewKMV(256), NewKMV(256)
	const n = 20000
	a, b := NewKMV(256), NewKMV(256)
	for i := 0; i < n; i++ {
		a.Add(fmt.Sprintf("a%d", i))
		whole.Add(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		b.Add(fmt.Sprintf("b%d", i))
		whole.Add(fmt.Sprintf("b%d", i))
	}
	merged.Merge(a)
	merged.Merge(b)
	if merged.Estimate() != whole.Estimate() {
		t.Errorf("merged estimate %.0f != whole-stream estimate %.0f", merged.Estimate(), whole.Estimate())
	}
	if merged.N() != whole.N() {
		t.Errorf("merged N %d != %d", merged.N(), whole.N())
	}
	if _, ok := merged.ExactCount(); ok {
		t.Error("large merged sketch still claims exact mode")
	}
}

// Hash collisions across the two inputs (shared keys hash identically)
// must not inflate the k-minimum set.
func TestKMVMergeCollisions(t *testing.T) {
	a, b := NewKMV(32), NewKMV(32)
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("v%d", i)
		a.Add(k)
		b.Add(k) // every hash in b collides with one in a
	}
	est := a.Estimate()
	a.Merge(b)
	if a.Estimate() != est {
		t.Errorf("merging identical streams changed estimate %.0f -> %.0f", est, a.Estimate())
	}
	if len(a.hashes) > a.k {
		t.Errorf("hash set overflowed k: %d > %d", len(a.hashes), a.k)
	}
	for i := 1; i < len(a.hashes); i++ {
		if a.hashes[i-1] >= a.hashes[i] {
			t.Fatalf("hashes not strictly ascending at %d", i)
		}
	}
}

// Merging sketches with different k degrades to the smaller k and keeps
// the invariants (boundary: the larger sketch must drop its extra
// minima, which only the smaller k can certify).
func TestKMVMergeMixedK(t *testing.T) {
	big, small := NewKMV(256), NewKMV(16)
	for i := 0; i < 10000; i++ {
		big.Add(fmt.Sprintf("a%d", i))
		small.Add(fmt.Sprintf("b%d", i))
	}
	big.Merge(small)
	if big.k != 16 {
		t.Fatalf("merged k = %d want 16", big.k)
	}
	if len(big.hashes) > 16 {
		t.Fatalf("hash set %d exceeds merged k", len(big.hashes))
	}
	if len(big.seen) != len(big.hashes) {
		t.Fatalf("seen map %d out of sync with hashes %d", len(big.seen), len(big.hashes))
	}
	const trueNDV = 20000
	if rel := math.Abs(big.Estimate()-trueNDV) / trueNDV; rel > 0.6 {
		t.Errorf("k=16 merged estimate %.0f too far from %d", big.Estimate(), trueNDV)
	}
}

func TestKMVMergeEmptyAndNil(t *testing.T) {
	s := NewKMV(64)
	s.Add("x")
	s.Merge(nil)
	s.Merge(NewKMV(64))
	if got := s.Estimate(); got != 1 {
		t.Errorf("estimate after empty merges %v want 1", got)
	}
	empty := NewKMV(64)
	empty.Merge(s)
	if got := empty.Estimate(); got != 1 {
		t.Errorf("merge into empty: estimate %v want 1", got)
	}
}

// Property: duplicates never change the estimate.
func TestKMVDuplicateInvariance(t *testing.T) {
	f := func(keys []uint16) bool {
		a, b := NewKMV(64), NewKMV(64)
		for _, k := range keys {
			a.Add(fmt.Sprint(k))
			b.Add(fmt.Sprint(k))
			b.Add(fmt.Sprint(k))
		}
		return a.Estimate() == b.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
