package sketch

import (
	"hash/fnv"
	"math"
	"sort"
)

// KMV estimates the number of distinct values in a stream with the
// k-minimum-values synopsis (Bar-Yossef et al., RANDOM 2002; Beyer et
// al., SIGMOD 2007 — the paper's citation [16] for distinct-value
// synopses under multiset operations).
type KMV struct {
	k      int
	hashes []uint64 // max-heap-free: kept sorted ascending, len ≤ k
	seen   map[uint64]bool
	exact  map[string]bool // exact mode while small
	n      int64
}

// NewKMV creates a sketch keeping the k minimum hash values. Estimates
// have relative error ~1/sqrt(k).
func NewKMV(k int) *KMV {
	if k < 16 {
		k = 16
	}
	return &KMV{k: k, seen: map[uint64]bool{}, exact: map[string]bool{}}
}

// Add records one value.
func (s *KMV) Add(key string) {
	s.n++
	if s.exact != nil {
		s.exact[key] = true
		if len(s.exact) <= 4*s.k {
			// Stay exact while cheap; also feed hashes so a later switch
			// is seamless.
		}
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	s.insertHash(mix64(h.Sum64()))
	if s.exact != nil && len(s.exact) > 4*s.k {
		s.exact = nil // fall back to the sketch estimate
	}
}

// insertHash folds one (already mixed) hash value into the k-minimum
// set, keeping hashes sorted ascending and capped at k.
func (s *KMV) insertHash(v uint64) {
	if s.seen[v] {
		return
	}
	if len(s.hashes) >= s.k {
		max := s.hashes[len(s.hashes)-1]
		if v >= max {
			return
		}
	}
	s.seen[v] = true
	i := sort.Search(len(s.hashes), func(i int) bool { return s.hashes[i] >= v })
	s.hashes = append(s.hashes, 0)
	copy(s.hashes[i+1:], s.hashes[i:])
	s.hashes[i] = v
	if len(s.hashes) > s.k {
		drop := s.hashes[len(s.hashes)-1]
		delete(s.seen, drop)
		s.hashes = s.hashes[:len(s.hashes)-1]
	}
}

// Merge folds another sketch into s, as if every value o observed had
// been Added to s. The merged k-minimum set stays valid because the
// union's k smallest hashes are a subset of the two inputs' k smallest.
// When the sketches disagree on k, the merged sketch degrades to the
// smaller k (beyond o's k-th minimum o carries no information, so the
// result can only certify min(k) minima). Exact mode survives only
// while both inputs are exact and the union stays small, matching Add's
// fallback rule.
func (s *KMV) Merge(o *KMV) {
	if o == nil {
		return
	}
	s.n += o.n
	if s.exact != nil && o.exact != nil {
		for key := range o.exact {
			s.exact[key] = true
		}
	} else {
		s.exact = nil
	}
	if o.k < s.k {
		s.k = o.k
		for len(s.hashes) > s.k {
			drop := s.hashes[len(s.hashes)-1]
			delete(s.seen, drop)
			s.hashes = s.hashes[:len(s.hashes)-1]
		}
	}
	for _, v := range o.hashes {
		s.insertHash(v)
	}
	if s.exact != nil && len(s.exact) > 4*s.k {
		s.exact = nil
	}
}

// ExactCount returns the exact distinct count while the sketch is still
// in exact mode (small streams), with ok=false once it has fallen back
// to the k-minimum estimate.
func (s *KMV) ExactCount() (int, bool) {
	if s.exact == nil {
		return 0, false
	}
	return len(s.exact), true
}

// Estimate returns the estimated number of distinct values.
func (s *KMV) Estimate() float64 {
	if s.exact != nil {
		return float64(len(s.exact))
	}
	if len(s.hashes) < s.k {
		return float64(len(s.hashes))
	}
	kth := float64(s.hashes[s.k-1])
	if kth == 0 {
		return float64(s.k)
	}
	return float64(s.k-1) / (kth / math.MaxUint64)
}

// N returns the number of values observed (with duplicates).
func (s *KMV) N() int64 { return s.n }

// mix64 is a finalizing bit mixer (splitmix64): FNV alone avalanches
// poorly on short, similar keys, which biases the k-th minimum and
// therefore the estimate.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
