package cluster

// Straggler and wave-scheduling edge cases for the simulated scheduler:
// the Finish() arithmetic must degrade to the serial sum when only one
// slot exists, to the per-stage max when slots cover every task, and
// must charge a straggler's full duration to exactly one wave.

import (
	"math"
	"testing"
)

func almost(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %.4f, want %.4f", name, got, want)
	}
}

// Slot cap 1: waves degenerate to serial execution, so runtime equals
// machine-hours equals the plain sum of task times.
func TestSlotCapOneSerializes(t *testing.T) {
	cfg := Config{SlotCap: 1, TaskStartup: 5, CPURate: 1}
	r := NewRun(cfg)
	s := r.NewStage("s", 4)
	times := []float64{40, 30, 20, 10}
	for i, c := range times {
		s.AddCPU(i, c)
	}
	m := r.Finish()
	want := 0.0
	for _, c := range times {
		want += c + cfg.TaskStartup
	}
	almost(t, "runtime", m.Runtime, want)
	almost(t, "machine-hours", m.MachineHours, want)
}

// Slot cap ≥ task count: a single wave, runtime is the slowest task
// (the straggler), while machine-hours still sums everything.
func TestSlotCapCoversAllTasks(t *testing.T) {
	cfg := Config{SlotCap: 16, TaskStartup: 0, CPURate: 1}
	r := NewRun(cfg)
	s := r.NewStage("s", 5)
	for i, c := range []float64{7, 3, 99, 1, 2} {
		s.AddCPU(i, c)
	}
	m := r.Finish()
	almost(t, "runtime", m.Runtime, 99)
	almost(t, "machine-hours", m.MachineHours, 112)
}

// A straggler dominates its wave but is charged only once: with cap 2
// and times {100, 1, 1, 1}, the descending-sorted waves are {100, 1}
// and {1, 1}, so runtime is 100 + 1 — not 100 + anything larger, and
// not 2×100.
func TestStragglerChargedToOneWave(t *testing.T) {
	cfg := Config{SlotCap: 2, TaskStartup: 0, CPURate: 1}
	r := NewRun(cfg)
	s := r.NewStage("s", 4)
	for i, c := range []float64{100, 1, 1, 1} {
		s.AddCPU(i, c)
	}
	m := r.Finish()
	almost(t, "runtime", m.Runtime, 101)
}

// Uneven task times across a partial last wave: 5 tasks, cap 2 →
// ⌈5/2⌉ = 3 waves over the descending times {50,40}, {30,20}, {10}.
func TestUnevenTasksPartialLastWave(t *testing.T) {
	cfg := Config{SlotCap: 2, TaskStartup: 0, CPURate: 1}
	r := NewRun(cfg)
	s := r.NewStage("s", 5)
	for i, c := range []float64{10, 30, 50, 20, 40} {
		s.AddCPU(i, c)
	}
	m := r.Finish()
	almost(t, "runtime", m.Runtime, 50+30+10)
}

// Dependent stages schedule after their slowest dependency, and the
// wave arithmetic applies per stage: runtime is the critical path of
// per-stage wave sums, with machine-hours invariant to SlotCap.
func TestWaveArithmeticAcrossDependentStages(t *testing.T) {
	build := func(cap int) Metrics {
		cfg := Config{SlotCap: cap, TaskStartup: 1, CPURate: 1}
		r := NewRun(cfg)
		a := r.NewStage("scan-a", 4)
		for i, c := range []float64{9, 9, 9, 9} {
			a.AddCPU(i, c)
		}
		b := r.NewStage("scan-b", 1)
		b.AddCPU(0, 3)
		j := r.NewStage("join", 2, a.ID, b.ID)
		j.AddCPU(0, 5)
		j.AddCPU(1, 7)
		return r.Finish()
	}
	wide := build(8) // everything in one wave per stage
	// scan-a: max 10; scan-b: 4; join starts at 10, runs max(6,8)=8.
	almost(t, "wide runtime", wide.Runtime, 18)

	narrow := build(1) // fully serial waves
	// scan-a: 40; scan-b: 4; join starts at 40, runs 6+8=14.
	almost(t, "narrow runtime", narrow.Runtime, 54)

	almost(t, "machine-hours invariant", wide.MachineHours, narrow.MachineHours)
	almost(t, "machine-hours", wide.MachineHours, 40+4+14)
}

// IO and shuffle costs enter task time (and therefore waves) with the
// configured rates; intermediate/shuffled byte accounting follows the
// stage flags regardless of scheduling.
func TestStragglerFromIOSkew(t *testing.T) {
	cfg := Config{SlotCap: 2, TaskStartup: 0, CPURate: 1, IORate: 0.5, NetRate: 1}
	r := NewRun(cfg)
	s := r.NewStage("shuffle", 3)
	s.ShuffleOut = true
	s.AddOutput(0, 10, 100) // task time 100*0.5 + 100*1 = 150
	s.AddOutput(1, 1, 8)    // 12
	s.AddOutput(2, 1, 8)    // 12
	m := r.Finish()
	// Waves (desc): {150, 12} + {12}.
	almost(t, "runtime", m.Runtime, 162)
	almost(t, "shuffled", m.ShuffledBytes, 116)
	almost(t, "intermediate", m.IntermediateBytes, 116)
}
