package cluster

import (
	"math"
	"testing"
)

func TestMachineHoursSumsTasks(t *testing.T) {
	cfg := Config{SlotCap: 4, TaskStartup: 10, CPURate: 1, IORate: 0, NetRate: 0}
	r := NewRun(cfg)
	s := r.NewStage("scan", 3)
	s.AddCPU(0, 100)
	s.AddCPU(1, 50)
	s.AddCPU(2, 25)
	m := r.Finish()
	want := 3*10.0 + 175
	if math.Abs(m.MachineHours-want) > 1e-9 {
		t.Errorf("machine-hours %.1f want %.1f", m.MachineHours, want)
	}
	if m.Tasks != 3 || m.Stages != 1 {
		t.Errorf("tasks/stages %d/%d", m.Tasks, m.Stages)
	}
}

func TestWaveScheduling(t *testing.T) {
	cfg := Config{SlotCap: 2, TaskStartup: 0, CPURate: 1}
	r := NewRun(cfg)
	s := r.NewStage("s", 4)
	for i, c := range []float64{100, 90, 10, 5} {
		s.AddCPU(i, c)
	}
	m := r.Finish()
	// Two waves: max(100,90) + max(10,5) = 110.
	if math.Abs(m.Runtime-110) > 1e-9 {
		t.Errorf("runtime %.1f want 110", m.Runtime)
	}
}

func TestStageDependenciesCriticalPath(t *testing.T) {
	cfg := Config{SlotCap: 8, TaskStartup: 0, CPURate: 1}
	r := NewRun(cfg)
	a := r.NewStage("a", 1)
	a.AddCPU(0, 100)
	b := r.NewStage("b", 1) // independent
	b.AddCPU(0, 30)
	c := r.NewStage("c", 1, a.ID, b.ID)
	c.AddCPU(0, 10)
	m := r.Finish()
	if math.Abs(m.Runtime-110) > 1e-9 {
		t.Errorf("critical path %.1f want 110", m.Runtime)
	}
}

func TestPassesMetric(t *testing.T) {
	// Passes = (Σ task in+out) / (job in + job out), per the paper.
	cfg := DefaultConfig()
	r := NewRun(cfg)
	r.JobInputBytes = 1000
	r.JobOutputBytes = 100

	scan := r.NewStage("scan", 2)
	scan.AddInput(0, 10, 500)
	scan.AddInput(1, 10, 500)
	scan.AddOutput(0, 10, 400)
	scan.AddOutput(1, 10, 400)
	scan.ShuffleOut = true

	agg := r.NewStage("agg", 1, scan.ID)
	agg.AddInput(0, 20, 800)
	agg.AddOutput(0, 2, 100)
	agg.Final = true

	m := r.Finish()
	want := (1000.0 + 800 + 800 + 100) / 1100
	if math.Abs(m.Passes-want) > 1e-9 {
		t.Errorf("passes %.3f want %.3f", m.Passes, want)
	}
	if m.ShuffledBytes != 800 {
		t.Errorf("shuffled %.0f want 800", m.ShuffledBytes)
	}
	// Intermediate excludes the final stage's output.
	if m.IntermediateBytes != 800 {
		t.Errorf("intermediate %.0f want 800", m.IntermediateBytes)
	}
}

func TestFirstPassTime(t *testing.T) {
	cfg := Config{SlotCap: 4, TaskStartup: 0, CPURate: 1}
	r := NewRun(cfg)
	scan := r.NewStage("scan", 1)
	scan.Extract = true
	scan.AddCPU(0, 40)
	agg := r.NewStage("agg", 1, scan.ID)
	agg.AddCPU(0, 60)
	m := r.Finish()
	if math.Abs(m.FirstPassTime-40) > 1e-9 {
		t.Errorf("first pass %.0f want 40", m.FirstPassTime)
	}
	if math.Abs(m.Runtime-100) > 1e-9 {
		t.Errorf("runtime %.0f want 100", m.Runtime)
	}
}

func TestTaskStartupRewardsLowDOP(t *testing.T) {
	// The same work split into many tasks must cost more machine-time
	// (the §A rationale for reducing DOP after samplers).
	run1 := NewRun(Config{SlotCap: 64, TaskStartup: 50, CPURate: 1})
	s1 := run1.NewStage("wide", 32)
	for i := 0; i < 32; i++ {
		s1.AddCPU(i, 10)
	}
	run2 := NewRun(Config{SlotCap: 64, TaskStartup: 50, CPURate: 1})
	s2 := run2.NewStage("narrow", 2)
	for i := 0; i < 2; i++ {
		s2.AddCPU(i, 160)
	}
	if run1.Finish().MachineHours <= run2.Finish().MachineHours {
		t.Error("wide plan should cost more machine-time at equal work")
	}
}
