// Package cluster simulates the cost side of a big-data cluster run.
// The executor really computes every operator on real data; this package
// only assigns simulated time and IO to tasks and stages so that the
// paper's performance metrics — machine-hours, runtime, intermediate
// data, shuffled data and effective passes over data — can be reported
// for any plan, with or without samplers.
//
// The model: a physical plan splits into stages at exchange boundaries
// (a pair join therefore takes two passes over data and one shuffle,
// exactly the paper's motivating observation). A stage runs one task
// per partition; tasks are scheduled in waves limited by the slot cap.
// Task time is startup overhead plus CPU (per-row operator costs) plus
// IO (bytes read and written at stage boundaries).
package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// Config tunes the simulator. Defaults resemble a datacenter-standard
// node (paper §5.1) in arbitrary but consistent units.
type Config struct {
	// SlotCap is the number of simultaneously running tasks the
	// scheduler grants the query (degree of parallelism available).
	SlotCap int
	// TaskStartup is the fixed per-task overhead; it is what makes
	// degree-of-parallelism reduction after samplers profitable (§A).
	TaskStartup float64
	// CPURate scales per-row operator cost into time.
	CPURate float64
	// IORate scales bytes read/written at stage boundaries into time.
	IORate float64
	// NetRate scales shuffled bytes into time.
	NetRate float64
}

// DefaultConfig returns the simulator defaults used by the experiments.
func DefaultConfig() Config {
	return Config{
		SlotCap:     16,
		TaskStartup: 2_000,
		CPURate:     1.0,
		IORate:      0.05,
		NetRate:     0.1,
	}
}

// Stage is one scheduling unit: a set of parallel tasks between
// exchange boundaries.
type Stage struct {
	ID   int
	Name string
	Deps []int
	// Per-task accumulators (index = partition/task id).
	TaskCPU      []float64
	TaskInBytes  []float64
	TaskOutBytes []float64
	TaskInRows   []int64
	TaskOutRows  []int64
	// Extract marks stages that read base tables (the first pass).
	Extract bool
	// ShuffleOut is set when the stage output crosses the network.
	ShuffleOut bool
	// Final marks the stage producing the job output.
	Final bool

	start, finish float64
}

// Run accumulates a whole query execution.
type Run struct {
	Cfg    Config
	Stages []*Stage

	// JobInputBytes and JobOutputBytes bracket the passes metric.
	JobInputBytes  float64
	JobOutputBytes float64
}

// NewRun starts an empty accounting run.
func NewRun(cfg Config) *Run {
	if cfg.SlotCap <= 0 {
		cfg = DefaultConfig()
	}
	return &Run{Cfg: cfg}
}

// NewStage opens a stage with the given task count and dependencies.
func (r *Run) NewStage(name string, tasks int, deps ...int) *Stage {
	if tasks < 1 {
		tasks = 1
	}
	s := &Stage{
		ID:           len(r.Stages),
		Name:         name,
		Deps:         append([]int{}, deps...),
		TaskCPU:      make([]float64, tasks),
		TaskInBytes:  make([]float64, tasks),
		TaskOutBytes: make([]float64, tasks),
		TaskInRows:   make([]int64, tasks),
		TaskOutRows:  make([]int64, tasks),
	}
	r.Stages = append(r.Stages, s)
	return s
}

// AddCPU charges per-row CPU cost to a task.
func (s *Stage) AddCPU(task int, cost float64) { s.TaskCPU[task%len(s.TaskCPU)] += cost }

// AddInput charges input rows/bytes to a task.
func (s *Stage) AddInput(task int, rows int64, bytes float64) {
	i := task % len(s.TaskInBytes)
	s.TaskInRows[i] += rows
	s.TaskInBytes[i] += bytes
}

// AddOutput charges output rows/bytes to a task.
func (s *Stage) AddOutput(task int, rows int64, bytes float64) {
	i := task % len(s.TaskOutBytes)
	s.TaskOutRows[i] += rows
	s.TaskOutBytes[i] += bytes
}

// Tasks returns the stage's task count.
func (s *Stage) Tasks() int { return len(s.TaskCPU) }

// taskTime is the simulated duration of one task.
func (s *Stage) taskTime(cfg Config, i int) float64 {
	t := cfg.TaskStartup + s.TaskCPU[i]*cfg.CPURate + (s.TaskInBytes[i]+s.TaskOutBytes[i])*cfg.IORate
	if s.ShuffleOut {
		t += s.TaskOutBytes[i] * cfg.NetRate
	}
	return t
}

// Metrics are the paper's performance measures for one run.
type Metrics struct {
	// MachineHours is the sum of all task durations (§5.1: "sum of the
	// runtime of all tasks ... a measure of throughput").
	MachineHours float64
	// Runtime is the simulated completion time on the critical path
	// with wave scheduling under the slot cap.
	Runtime float64
	// IntermediateBytes is "the sum of the output of all tasks less the
	// job output".
	IntermediateBytes float64
	// ShuffledBytes is data moved across the network.
	ShuffledBytes float64
	// Passes is (Σ_task input_t + output_t) / (job input + job output).
	Passes float64
	// FirstPassTime is the duration of the extract stages (used for the
	// total/first-pass ratio in Fig. 2b/8c).
	FirstPassTime float64
	// Tasks and Stages count scheduling units.
	Tasks, Stages int
}

// Finish computes metrics for the run.
func (r *Run) Finish() Metrics {
	var m Metrics
	m.Stages = len(r.Stages)

	// Schedule stages topologically (IDs are already topological since
	// stages are created bottom-up).
	for _, s := range r.Stages {
		start := 0.0
		for _, d := range s.Deps {
			if f := r.Stages[d].finish; f > start {
				start = f
			}
		}
		s.start = start

		// Wave scheduling: sort task times descending, fill SlotCap-wide
		// waves; duration approximated as the sum of per-wave maxima.
		times := make([]float64, s.Tasks())
		for i := range times {
			times[i] = s.taskTime(r.Cfg, i)
			m.MachineHours += times[i]
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(times)))
		dur := 0.0
		for i := 0; i < len(times); i += r.Cfg.SlotCap {
			dur += times[i] // max of this wave
		}
		s.finish = start + dur
		if s.finish > m.Runtime {
			m.Runtime = s.finish
		}
		if s.Extract {
			m.FirstPassTime += dur
		}
		m.Tasks += s.Tasks()

		for i := 0; i < s.Tasks(); i++ {
			if !s.Final {
				m.IntermediateBytes += s.TaskOutBytes[i]
			}
			if s.ShuffleOut {
				m.ShuffledBytes += s.TaskOutBytes[i]
			}
		}
	}

	inout := r.JobInputBytes + r.JobOutputBytes
	if inout > 0 {
		var sum float64
		for _, s := range r.Stages {
			for i := 0; i < s.Tasks(); i++ {
				sum += s.TaskInBytes[i] + s.TaskOutBytes[i]
			}
		}
		m.Passes = sum / inout
	}
	return m
}

// String renders a short per-stage report for EXPLAIN ANALYZE output.
func (r *Run) String() string {
	var b strings.Builder
	for _, s := range r.Stages {
		var in, out float64
		for i := 0; i < s.Tasks(); i++ {
			in += s.TaskInBytes[i]
			out += s.TaskOutBytes[i]
		}
		fmt.Fprintf(&b, "stage %d %-14s tasks=%-4d in=%.0fB out=%.0fB deps=%v\n",
			s.ID, s.Name, s.Tasks(), in, out, s.Deps)
	}
	return b.String()
}
