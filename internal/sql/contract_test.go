package sql

import (
	"strings"
	"testing"
	"time"
)

func TestContractParse(t *testing.T) {
	cases := []struct {
		in      string
		errPct  float64
		confPct float64
		dl      time.Duration
	}{
		{"SELECT a, SUM(b) FROM t GROUP BY a ERROR WITHIN 2% CONFIDENCE 95%", 2, 95, 0},
		{"SELECT a FROM t ERROR WITHIN 2.5%", 2.5, 0, 0},
		{"SELECT a FROM t WITHIN 500ms", 0, 0, 500 * time.Millisecond},
		{"SELECT a FROM t WITHIN 2s", 0, 0, 2 * time.Second},
		{"SELECT a FROM t WITHIN 250us", 0, 0, 250 * time.Microsecond},
		{"SELECT a FROM t ERROR WITHIN 10% CONFIDENCE 99% WITHIN 1s", 10, 99, time.Second},
		// Clauses accepted in either order.
		{"SELECT a FROM t WITHIN 1s ERROR WITHIN 10%", 10, 0, time.Second},
		// Contract after LIMIT.
		{"SELECT a FROM t LIMIT 5 ERROR WITHIN 1%", 1, 0, 0},
	}
	for _, c := range cases {
		s, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if s.Contract == nil {
			t.Fatalf("Parse(%q): no contract", c.in)
		}
		if s.Contract.ErrPct != c.errPct || s.Contract.ConfPct != c.confPct || s.Contract.Deadline != c.dl {
			t.Fatalf("Parse(%q): contract %+v, want err=%g conf=%g dl=%v",
				c.in, s.Contract, c.errPct, c.confPct, c.dl)
		}
	}
}

func TestContractRoundTrip(t *testing.T) {
	cases := []struct{ in, want string }{
		{
			"SELECT a, SUM(b) FROM t GROUP BY a ERROR WITHIN 2% CONFIDENCE 95%",
			"SELECT a, SUM(b) FROM t GROUP BY a ERROR WITHIN 2% CONFIDENCE 95%",
		},
		{"SELECT a FROM t WITHIN 500ms", "SELECT a FROM t WITHIN 500ms"},
		// Fractional durations canonicalize to the largest dividing unit.
		{"SELECT a FROM t WITHIN 0.5s", "SELECT a FROM t WITHIN 500ms"},
		{"SELECT a FROM t WITHIN 1.5ms", "SELECT a FROM t WITHIN 1500us"},
		// Clause order canonicalizes to ERROR then WITHIN.
		{"SELECT a FROM t WITHIN 1s ERROR WITHIN 10%", "SELECT a FROM t ERROR WITHIN 10% WITHIN 1s"},
		// Exponent forms canonicalize via %g.
		{"SELECT a FROM t ERROR WITHIN 1e1%", "SELECT a FROM t ERROR WITHIN 10%"},
	}
	for _, c := range cases {
		s, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		got := s.String()
		if got != c.want {
			t.Fatalf("String(%q) = %q, want %q", c.in, got, c.want)
		}
		// Printed form must re-parse to a fixed point (FuzzParse invariant).
		s2, err := Parse(got)
		if err != nil {
			t.Fatalf("reparse %q: %v", got, err)
		}
		if s2.String() != got {
			t.Fatalf("not a fixed point: %q -> %q", got, s2.String())
		}
	}
}

func TestContractParseErrors(t *testing.T) {
	cases := []struct{ in, wantSub string }{
		{"SELECT a FROM t ERROR 2%", "WITHIN"},
		{"SELECT a FROM t ERROR WITHIN 2% ERROR WITHIN 3%", "duplicate"},
		{"SELECT a FROM t WITHIN 1s WITHIN 2s", "duplicate"},
		{"SELECT a FROM t ERROR WITHIN 0%", "positive"},
		{"SELECT a FROM t ERROR WITHIN 2% CONFIDENCE 100%", "confidence"},
		{"SELECT a FROM t ERROR WITHIN 2% CONFIDENCE 0%", "positive"},
		{"SELECT a FROM t WITHIN 500", "unit"},
		{"SELECT a FROM t WITHIN 500 zorks", "unit"},
		{"SELECT a FROM t WITHIN 0s", "positive"},
		{"SELECT a FROM t ERROR WITHIN 2", "%"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Fatalf("Parse(%q): expected error", c.in)
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.wantSub)) {
			t.Fatalf("Parse(%q): error %q does not mention %q", c.in, err, c.wantSub)
		}
	}
}

func TestContractUnionArms(t *testing.T) {
	// A trailing contract after a UNION ALL arm binds to the whole
	// statement text; it must still round-trip.
	in := "SELECT a FROM t UNION ALL SELECT a FROM u ERROR WITHIN 5%"
	s, err := Parse(in)
	if err != nil {
		t.Fatalf("Parse(%q): %v", in, err)
	}
	got := s.String()
	s2, err := Parse(got)
	if err != nil {
		t.Fatalf("reparse %q: %v", got, err)
	}
	if s2.String() != got {
		t.Fatalf("not a fixed point: %q -> %q", got, s2.String())
	}
}
