package sql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"quickr/internal/table"
)

// Parse parses a single SELECT statement (optionally followed by a
// semicolon) and returns its AST.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.accept(tokOp, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input %q", p.cur().text)
	}
	return sel, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) peek() token { return p.toks[min(p.i+1, len(p.toks)-1)] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.i++
		return t, nil
	}
	return token{}, p.errorf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	s.Distinct = p.accept(tokKeyword, "DISTINCT")

	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.accept(tokOp, ",") {
			break
		}
	}

	if p.accept(tokKeyword, "FROM") {
		from, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		s.From = from
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			it := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				it.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			s.OrderBy = append(s.OrderBy, it)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		s.Limit = n
	}
	if err := p.parseContract(s); err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "UNION") {
		if _, err := p.expect(tokKeyword, "ALL"); err != nil {
			return nil, p.errorf("only UNION ALL is supported")
		}
		u, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		s.UnionAll = append(s.UnionAll, u)
		s.UnionAll = append(s.UnionAll, u.UnionAll...)
		u.UnionAll = nil
	}
	return s, nil
}

// parseContract parses the optional trailing contract clauses, in any
// order and at most once each:
//
//	ERROR WITHIN <pct> % [CONFIDENCE <pct> %]
//	WITHIN <number> <unit>          (unit: s, ms, us, ns)
func (p *parser) parseContract(s *SelectStmt) error {
	for {
		switch {
		case p.accept(tokKeyword, "ERROR"):
			if s.Contract != nil && s.Contract.ErrPct > 0 {
				return p.errorf("duplicate ERROR WITHIN clause")
			}
			if _, err := p.expect(tokKeyword, "WITHIN"); err != nil {
				return err
			}
			v, err := p.parsePercent("ERROR WITHIN")
			if err != nil {
				return err
			}
			if s.Contract == nil {
				s.Contract = &Contract{}
			}
			s.Contract.ErrPct = v
			if p.accept(tokKeyword, "CONFIDENCE") {
				c, err := p.parsePercent("CONFIDENCE")
				if err != nil {
					return err
				}
				if c >= 100 {
					return p.errorf("CONFIDENCE must be below 100%%, got %g%%", c)
				}
				s.Contract.ConfPct = c
			}
		case p.accept(tokKeyword, "WITHIN"):
			if s.Contract != nil && s.Contract.Deadline > 0 {
				return p.errorf("duplicate WITHIN deadline clause")
			}
			d, err := p.parseDuration()
			if err != nil {
				return err
			}
			if s.Contract == nil {
				s.Contract = &Contract{}
			}
			s.Contract.Deadline = d
		default:
			return nil
		}
	}
}

// parsePercent parses `<number> %` and returns the number (which must
// be positive).
func (p *parser) parsePercent(clause string) (float64, error) {
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil || v <= 0 {
		return 0, p.errorf("%s needs a positive percentage, got %q", clause, t.text)
	}
	if _, err := p.expect(tokOp, "%"); err != nil {
		return 0, err
	}
	return v, nil
}

// parseDuration parses `<number><unit>` (the lexer splits "500ms" into
// a number and an identifier).
func (p *parser) parseDuration() (time.Duration, error) {
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil || v <= 0 {
		return 0, p.errorf("WITHIN needs a positive duration, got %q", t.text)
	}
	u, err := p.expect(tokIdent, "")
	if err != nil {
		return 0, p.errorf("WITHIN duration needs a unit (s, ms, us, ns)")
	}
	var unit time.Duration
	switch strings.ToLower(u.text) {
	case "s":
		unit = time.Second
	case "ms":
		unit = time.Millisecond
	case "us":
		unit = time.Microsecond
	case "ns":
		unit = time.Nanosecond
	default:
		return 0, p.errorf("unknown duration unit %q (want s, ms, us, ns)", u.text)
	}
	d := time.Duration(v * float64(unit))
	if d <= 0 {
		return 0, p.errorf("WITHIN duration %q rounds to zero", t.text+u.text)
	}
	return d, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokOp, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.text
	} else if p.at(tokIdent, "") {
		item.Alias = p.cur().text
		p.i++
	}
	return item, nil
}

// parseTableExpr parses a FROM clause: comma-separated cross joins of
// join chains.
func (p *parser) parseTableExpr() (TableExpr, error) {
	left, err := p.parseJoinChain()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOp, ",") {
		right, err := p.parseJoinChain()
		if err != nil {
			return nil, err
		}
		left = &JoinExpr{Kind: JoinInner, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseJoinChain() (TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		kind := JoinInner
		switch {
		case p.accept(tokKeyword, "JOIN"):
		case p.at(tokKeyword, "INNER") && p.peek().text == "JOIN":
			p.i += 2
		case p.at(tokKeyword, "CROSS") && p.peek().text == "JOIN":
			p.i += 2
			right, err := p.parseTablePrimary()
			if err != nil {
				return nil, err
			}
			left = &JoinExpr{Kind: JoinInner, Left: left, Right: right}
			continue
		case p.at(tokKeyword, "LEFT"):
			p.i++
			p.accept(tokKeyword, "OUTER")
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			kind = JoinLeftOuter
		case p.at(tokKeyword, "RIGHT"):
			p.i++
			p.accept(tokKeyword, "OUTER")
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			kind = JoinRightOuter
		case p.at(tokKeyword, "FULL"):
			return nil, p.errorf("FULL OUTER JOIN is not supported")
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		left = &JoinExpr{Kind: kind, Left: left, Right: right, On: on}
	}
}

func (p *parser) parseTablePrimary() (TableExpr, error) {
	if p.accept(tokOp, "(") {
		if p.at(tokKeyword, "SELECT") {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			p.accept(tokKeyword, "AS")
			t, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, p.errorf("derived table requires an alias")
			}
			return &Subquery{Select: sel, Alias: t.text}, nil
		}
		te, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return te, nil
	}
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	tn := &TableName{Name: t.text, Alias: t.text}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		tn.Alias = a.text
	} else if p.at(tokIdent, "") {
		tn.Alias = p.cur().text
		p.i++
	}
	return tn, nil
}

// ---- Expressions (precedence climbing) ----

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

// parsePredicate parses comparisons, IN, BETWEEN, IS NULL, LIKE.
func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	not := false
	if p.at(tokKeyword, "NOT") && (p.peek().text == "IN" || p.peek().text == "BETWEEN" || p.peek().text == "LIKE") {
		not = true
		p.i++
	}
	switch {
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return &InExpr{X: l, List: list, Not: not}, nil
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: l, Lo: lo, Hi: hi, Not: not}, nil
	case p.accept(tokKeyword, "LIKE"):
		t, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return &LikeExpr{X: l, Pattern: t.text, Not: not}, nil
	case p.accept(tokKeyword, "IS"):
		isNot := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: l, Not: isNot}, nil
	}
	if op, ok := p.comparisonOp(); ok {
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) comparisonOp() (BinaryOp, bool) {
	if p.cur().kind != tokOp {
		return 0, false
	}
	var op BinaryOp
	switch p.cur().text {
	case "=":
		op = OpEq
	case "<>":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return 0, false
	}
	p.i++
	return op, true
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.accept(tokOp, "+"):
			op = OpAdd
		case p.accept(tokOp, "-"):
			op = OpSub
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.accept(tokOp, "*"):
			op = OpMul
		case p.accept(tokOp, "/"):
			op = OpDiv
		case p.accept(tokOp, "%"):
			op = OpMod
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*Literal); ok && lit.Val.IsNumeric() {
			if lit.Val.Kind() == table.KindInt {
				return &Literal{Val: table.NewInt(-lit.Val.Int())}, nil
			}
			f := -lit.Val.Float()
			if f == 0 {
				// Avoid IEEE negative zero: it renders as "-0", which
				// re-parses as integer zero instead of this literal.
				f = 0
			}
			return &Literal{Val: table.NewFloat(f)}, nil
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.i++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &Literal{Val: table.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return &Literal{Val: table.NewInt(n)}, nil
	case t.kind == tokString:
		p.i++
		return &Literal{Val: table.NewString(t.text)}, nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.i++
		return &Literal{Val: table.NewBool(true)}, nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.i++
		return &Literal{Val: table.NewBool(false)}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.i++
		return &Literal{Val: table.Null}, nil
	case t.kind == tokKeyword && t.text == "CASE":
		return p.parseCase()
	case t.kind == tokOp && t.text == "(":
		p.i++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.i++
		name := t.text
		// Function call?
		if p.at(tokOp, "(") {
			return p.parseFuncCall(name)
		}
		// Qualified column?
		if p.accept(tokOp, ".") {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Name: c.text}, nil
		}
		return &ColumnRef{Name: name}, nil
	}
	return nil, p.errorf("unexpected token %q", t.text)
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	f := &FuncCall{Name: strings.ToUpper(name)}
	if p.accept(tokOp, "*") {
		f.Star = true
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		if p.at(tokKeyword, "OVER") {
			over, err := p.parseOver()
			if err != nil {
				return nil, err
			}
			f.Over = over
		}
		return f, nil
	}
	f.Distinct = p.accept(tokKeyword, "DISTINCT")
	if !p.at(tokOp, ")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, a)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	if p.at(tokKeyword, "OVER") {
		over, err := p.parseOver()
		if err != nil {
			return nil, err
		}
		f.Over = over
	}
	return f, nil
}

// parseOver parses OVER (PARTITION BY ... ORDER BY ...).
func (p *parser) parseOver() (*WindowSpec, error) {
	if _, err := p.expect(tokKeyword, "OVER"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	w := &WindowSpec{}
	if p.accept(tokKeyword, "PARTITION") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			w.PartitionBy = append(w.PartitionBy, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			it := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				it.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			w.OrderBy = append(w.OrderBy, it)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return w, nil
}

func (p *parser) parseCase() (Expr, error) {
	if _, err := p.expect(tokKeyword, "CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	for p.accept(tokKeyword, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.accept(tokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if _, err := p.expect(tokKeyword, "END"); err != nil {
		return nil, err
	}
	return c, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
