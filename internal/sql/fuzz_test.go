package sql

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// seedQueries is the shared fuzz corpus: every syntactic construct the
// grammar supports (the workload's TPC-DS/TPC-H shapes included), plus
// inputs chosen to sit on lexer edges — comments, escaped quotes,
// exponent forms, multi-byte runes, every operator spelling.
var seedQueries = []string{
	"SELECT 1",
	"SELECT * FROM t",
	"SELECT a, b AS c FROM t WHERE a > 1 AND b < 2 OR NOT c = 3",
	"SELECT DISTINCT a FROM t",
	"SELECT COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x) FROM t",
	"SELECT COUNT(DISTINCT a) FROM t GROUP BY b HAVING COUNT(*) > 10",
	"SELECT a FROM t ORDER BY a DESC, b ASC LIMIT 10",
	"SELECT * FROM a JOIN b ON a.x = b.y",
	"SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y JOIN c ON b.z = c.z",
	"SELECT * FROM a CROSS JOIN b",
	"SELECT * FROM (SELECT a FROM t) AS sub WHERE a IN (1, 2, 3)",
	"SELECT CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' ELSE 'zero' END FROM t",
	"SELECT a FROM t WHERE s LIKE 'x%' AND b BETWEEN 1 AND 2 AND c IS NOT NULL",
	"SELECT a FROM t UNION ALL SELECT b FROM u",
	"SELECT SUM(x) OVER (PARTITION BY g) FROM t",
	"SELECT 'it''s', 1.5e-3, .5, -2, x % 3, y / 2.0 FROM t -- trailing comment",
	"SELECT a <> b, a != b, a <= b, a >= b FROM t;",
	"select \"lower\" from t",
	"SELECT 'unterminated",
	"SELECT héllo FROM wörld",
	"SELECT\n-- comment only\n1",
	"",
	"(",
	"SELECT",
	"\x00\xff",
}

// FuzzParse checks that the parser never panics, and that accepted
// statements round-trip: String() re-parses, and re-parsing reaches a
// fixed point (second String equals the first). The round-trip matters
// beyond hygiene — EXPLAIN output and the experiment reports print
// plans via String(), and a non-reparseable rendering would make those
// artifacts lie about the query that actually ran.
func FuzzParse(f *testing.F) {
	for _, q := range seedQueries {
		f.Add(q)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		if stmt == nil {
			t.Fatalf("Parse(%q) returned nil statement without error", src)
		}
		first := stmt.String()
		again, err := Parse(first)
		if err != nil {
			t.Fatalf("String() output does not re-parse: %v\ninput: %q\nprinted: %q", err, src, first)
		}
		if second := again.String(); second != first {
			t.Fatalf("String() not a fixed point:\nfirst:  %q\nsecond: %q", first, second)
		}
	})
}

// FuzzLex checks the tokenizer's structural invariants on arbitrary
// bytes: no panics, termination, a single trailing EOF token,
// monotonically non-decreasing in-range positions, and non-empty token
// text (an empty token would stall the parser's cursor).
func FuzzLex(f *testing.F) {
	for _, q := range seedQueries {
		f.Add(q)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lex(src)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "sql: ") {
				t.Fatalf("lex error without package prefix: %v", err)
			}
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatalf("token stream must end in EOF: %v", toks)
		}
		prev := 0
		for i, tok := range toks {
			if tok.pos < prev || tok.pos > len(src) {
				t.Fatalf("token %d position %d out of order (prev %d, len %d)", i, tok.pos, prev, len(src))
			}
			prev = tok.pos
			if tok.kind != tokEOF && tok.kind != tokString && tok.text == "" {
				t.Fatalf("token %d has empty text: %+v", i, tok)
			}
			if tok.kind == tokKeyword && tok.text != strings.ToUpper(tok.text) {
				t.Fatalf("keyword token not upper-cased: %+v", tok)
			}
		}
		if utf8.ValidString(src) {
			// Lexing is a pure function of the input.
			again, err2 := lex(src)
			if err2 != nil || len(again) != len(toks) {
				t.Fatalf("lex not deterministic: %v vs %v", toks, again)
			}
		}
	})
}
