// Package sql implements the lexer, parser and AST for the SQL subset that
// Quickr supports (paper Table 1): selections with arbitrary predicate
// expressions, aggregates (COUNT, SUM, AVG, MIN, MAX, DISTINCT and the *IF
// variants), equi- and theta-joins including outer joins (all but full
// outer), derived tables, UNION ALL, GROUP BY/HAVING, ORDER BY and LIMIT.
package sql

import (
	"fmt"
	"strings"
	"time"

	"quickr/internal/table"
)

// Node is any AST node.
type Node interface{ String() string }

// Statement is a parsed top-level statement.
type Statement interface {
	Node
	stmt()
}

// SelectStmt is a SELECT query, possibly the head of a UNION ALL chain.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableExpr // nil means a table-less SELECT (constants only)
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
	// Contract is the query's optional accuracy/latency contract
	// (BlinkDB-style `ERROR WITHIN 2% CONFIDENCE 95%` / `WITHIN 500ms`).
	Contract *Contract
	// UnionAll chains additional SELECTs whose output is concatenated.
	UnionAll []*SelectStmt
}

// Contract is an accuracy and/or latency demand attached to a SELECT.
// Percentages are stored as written (2.5 for `2.5%`) so the canonical
// rendering round-trips bit-exactly through the parser; downstream
// layers convert to fractions.
type Contract struct {
	// ErrPct is the maximum relative error in percent (`ERROR WITHIN
	// <ErrPct>%`); 0 means no error clause.
	ErrPct float64
	// ConfPct is the confidence level in percent (`CONFIDENCE
	// <ConfPct>%`); 0 means the clause was absent (defaults to 95
	// downstream).
	ConfPct float64
	// Deadline is the latency budget (`WITHIN <duration>`); 0 means no
	// deadline clause.
	Deadline time.Duration
}

// clause renders the contract in its canonical trailing-clause form,
// with a leading space (empty for a zero contract).
func (c *Contract) clause() string {
	var b strings.Builder
	if c.ErrPct > 0 {
		fmt.Fprintf(&b, " ERROR WITHIN %g%%", c.ErrPct)
		if c.ConfPct > 0 {
			fmt.Fprintf(&b, " CONFIDENCE %g%%", c.ConfPct)
		}
	}
	if c.Deadline > 0 {
		b.WriteString(" WITHIN " + formatDeadline(c.Deadline))
	}
	return b.String()
}

// formatDeadline renders a duration as <integer><unit> using the
// largest unit that divides it evenly, so parsing the rendering yields
// the identical duration (time.Duration.String's composite forms like
// "1m30s" would not re-parse under the number+unit grammar).
func formatDeadline(d time.Duration) string {
	switch {
	case d%time.Second == 0:
		return fmt.Sprintf("%ds", d/time.Second)
	case d%time.Millisecond == 0:
		return fmt.Sprintf("%dms", d/time.Millisecond)
	case d%time.Microsecond == 0:
		return fmt.Sprintf("%dus", d/time.Microsecond)
	}
	return fmt.Sprintf("%dns", d.Nanoseconds())
}

func (*SelectStmt) stmt() {}

// SelectItem is one output expression with an optional alias. A nil Expr
// with Star=true denotes `*`.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// JoinKind enumerates join types.
type JoinKind int

// Join kinds. Full outer join is intentionally unsupported (paper Table 1).
const (
	JoinInner JoinKind = iota
	JoinLeftOuter
	JoinRightOuter
	JoinSemi // used internally for EXISTS-style rewrites
)

func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "INNER"
	case JoinLeftOuter:
		return "LEFT OUTER"
	case JoinRightOuter:
		return "RIGHT OUTER"
	case JoinSemi:
		return "SEMI"
	}
	return "?"
}

// TableExpr is a FROM-clause item.
type TableExpr interface {
	Node
	tableExpr()
}

// TableName references a base table, optionally aliased.
type TableName struct {
	Name  string
	Alias string
}

func (*TableName) tableExpr() {}

// JoinExpr joins two table expressions on a condition.
type JoinExpr struct {
	Kind  JoinKind
	Left  TableExpr
	Right TableExpr
	On    Expr // nil for cross join
}

func (*JoinExpr) tableExpr() {}

// Subquery is a derived table: (SELECT ...) AS alias.
type Subquery struct {
	Select *SelectStmt
	Alias  string
}

func (*Subquery) tableExpr() {}

// Expr is a scalar or aggregate expression.
type Expr interface {
	Node
	expr()
}

// ColumnRef references column Name, optionally qualified by Table.
type ColumnRef struct {
	Table string
	Name  string
}

func (*ColumnRef) expr() {}

// Literal is a constant value.
type Literal struct {
	Val table.Value
}

func (*Literal) expr() {}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"}

func (o BinaryOp) String() string { return binOpNames[o] }

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   BinaryOp
	L, R Expr
}

func (*BinaryExpr) expr() {}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	X  Expr
}

func (*UnaryExpr) expr() {}

// FuncCall is a function application: either a built-in aggregate
// (COUNT/SUM/AVG/MIN/MAX/SUMIF/COUNTIF), a window function (when Over
// is set), or a scalar UDF.
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr
	Distinct bool // COUNT(DISTINCT x)
	Star     bool // COUNT(*)
	// Over marks a windowed application: f(...) OVER (PARTITION BY ...
	// ORDER BY ...). Paper Table 1 lists windowed aggregates among the
	// supported "Others".
	Over *WindowSpec
}

// WindowSpec is the OVER clause of a window function.
type WindowSpec struct {
	PartitionBy []Expr
	OrderBy     []OrderItem
}

func (*FuncCall) expr() {}

// InExpr is `x [NOT] IN (v1, v2, ...)`.
type InExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

func (*InExpr) expr() {}

// BetweenExpr is `x [NOT] BETWEEN lo AND hi`.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

func (*BetweenExpr) expr() {}

// IsNullExpr is `x IS [NOT] NULL`.
type IsNullExpr struct {
	X   Expr
	Not bool
}

func (*IsNullExpr) expr() {}

// LikeExpr is `x [NOT] LIKE pattern` with % and _ wildcards.
type LikeExpr struct {
	X       Expr
	Pattern string
	Not     bool
}

func (*LikeExpr) expr() {}

// CaseExpr is `CASE WHEN c1 THEN v1 ... [ELSE e] END`.
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr
}

// WhenClause is one WHEN/THEN arm of a CASE.
type WhenClause struct {
	Cond Expr
	Then Expr
}

func (*CaseExpr) expr() {}

// ---- String renderings (stable, used by tests and EXPLAIN) ----

func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteByte('*')
			continue
		}
		b.WriteString(it.Expr.String())
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	if s.From != nil {
		b.WriteString(" FROM " + s.From.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	if s.Contract != nil {
		b.WriteString(s.Contract.clause())
	}
	for _, u := range s.UnionAll {
		b.WriteString(" UNION ALL " + u.String())
	}
	return b.String()
}

func (t *TableName) String() string {
	if t.Alias != "" && t.Alias != t.Name {
		return t.Name + " AS " + t.Alias
	}
	return t.Name
}

func (j *JoinExpr) String() string {
	on := ""
	if j.On != nil {
		on = " ON " + j.On.String()
	}
	kind := ""
	switch j.Kind {
	case JoinInner:
		// An inner join with no condition is a cross join; without the
		// CROSS keyword the grammar would demand an ON clause on re-parse.
		if j.On == nil {
			kind = "CROSS "
		}
	case JoinLeftOuter:
		kind = "LEFT "
	case JoinRightOuter:
		kind = "RIGHT "
	case JoinSemi:
		kind = "SEMI "
	}
	return "(" + j.Left.String() + " " + kind + "JOIN " + j.Right.String() + on + ")"
}

func (s *Subquery) String() string { return "(" + s.Select.String() + ") AS " + s.Alias }

func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

func (l *Literal) String() string {
	if l.Val.Kind() == table.KindString {
		return "'" + strings.ReplaceAll(l.Val.Str(), "'", "''") + "'"
	}
	return l.Val.String()
}

func (e *BinaryExpr) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

func (e *UnaryExpr) String() string {
	if e.Op == "NOT" {
		return "(NOT " + e.X.String() + ")"
	}
	return "(-" + e.X.String() + ")"
}

func (f *FuncCall) String() string {
	var core string
	if f.Star {
		core = f.Name + "(*)"
	} else {
		args := make([]string, len(f.Args))
		for i, a := range f.Args {
			args[i] = a.String()
		}
		d := ""
		if f.Distinct {
			d = "DISTINCT "
		}
		core = f.Name + "(" + d + strings.Join(args, ", ") + ")"
	}
	if f.Over != nil {
		var parts []string
		if len(f.Over.PartitionBy) > 0 {
			cols := make([]string, len(f.Over.PartitionBy))
			for i, e := range f.Over.PartitionBy {
				cols[i] = e.String()
			}
			parts = append(parts, "PARTITION BY "+strings.Join(cols, ", "))
		}
		if len(f.Over.OrderBy) > 0 {
			cols := make([]string, len(f.Over.OrderBy))
			for i, o := range f.Over.OrderBy {
				cols[i] = o.Expr.String()
				if o.Desc {
					cols[i] += " DESC"
				}
			}
			parts = append(parts, "ORDER BY "+strings.Join(cols, ", "))
		}
		core += " OVER (" + strings.Join(parts, " ") + ")"
	}
	return core
}

func (e *InExpr) String() string {
	items := make([]string, len(e.List))
	for i, x := range e.List {
		items[i] = x.String()
	}
	not := ""
	if e.Not {
		not = "NOT "
	}
	return "(" + e.X.String() + " " + not + "IN (" + strings.Join(items, ", ") + "))"
}

func (e *BetweenExpr) String() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return "(" + e.X.String() + " " + not + "BETWEEN " + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

func (e *IsNullExpr) String() string {
	if e.Not {
		return "(" + e.X.String() + " IS NOT NULL)"
	}
	return "(" + e.X.String() + " IS NULL)"
}

func (e *LikeExpr) String() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return "(" + e.X.String() + " " + not + "LIKE '" + e.Pattern + "')"
}

func (e *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.Whens {
		b.WriteString(" WHEN " + w.Cond.String() + " THEN " + w.Then.String())
	}
	if e.Else != nil {
		b.WriteString(" ELSE " + e.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// IsAggregateFunc reports whether name (upper case) is a built-in
// aggregate function.
func IsAggregateFunc(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "SUMIF", "COUNTIF", "AVGIF":
		return true
	}
	return false
}

// HasAggregate reports whether the expression tree contains a (non-
// windowed) aggregate function call.
func HasAggregate(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) {
		if f, ok := x.(*FuncCall); ok && IsAggregateFunc(f.Name) && f.Over == nil {
			found = true
		}
	})
	return found
}

// IsWindowFunc reports whether name (upper case) can be applied as a
// window function.
func IsWindowFunc(name string) bool {
	switch name {
	case "ROW_NUMBER", "RANK", "SUM", "COUNT", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// HasWindow reports whether the expression tree contains a window
// function application.
func HasWindow(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) {
		if f, ok := x.(*FuncCall); ok && f.Over != nil {
			found = true
		}
	})
	return found
}

// WalkExpr visits e and every sub-expression in pre-order.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *UnaryExpr:
		WalkExpr(x.X, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
		if x.Over != nil {
			for _, pe := range x.Over.PartitionBy {
				WalkExpr(pe, fn)
			}
			for _, oe := range x.Over.OrderBy {
				WalkExpr(oe.Expr, fn)
			}
		}
	case *InExpr:
		WalkExpr(x.X, fn)
		for _, a := range x.List {
			WalkExpr(a, fn)
		}
	case *BetweenExpr:
		WalkExpr(x.X, fn)
		WalkExpr(x.Lo, fn)
		WalkExpr(x.Hi, fn)
	case *IsNullExpr:
		WalkExpr(x.X, fn)
	case *LikeExpr:
		WalkExpr(x.X, fn)
	case *CaseExpr:
		for _, w := range x.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Then, fn)
		}
		WalkExpr(x.Else, fn)
	}
}
