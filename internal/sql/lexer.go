package sql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents original case
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true, "LIMIT": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "FULL": true,
	"OUTER": true, "ON": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "BETWEEN": true, "IS": true, "NULL": true,
	"LIKE": true, "CASE": true, "WHEN": true, "THEN": true, "ELSE": true,
	"END": true, "UNION": true, "ALL": true, "ASC": true, "DESC": true,
	"TRUE": true, "FALSE": true, "CROSS": true, "OVER": true, "PARTITION": true,
	"ERROR": true, "WITHIN": true, "CONFIDENCE": true,
}

// lexer turns SQL text into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	// Decode a full rune: identifiers may be multi-byte UTF-8, and an
	// invalid encoding must be rejected here rather than smuggled into
	// an identifier (ToUpper would re-encode it as U+FFFD and the
	// printed statement would no longer re-parse).
	r, size := utf8.DecodeRuneInString(l.src[l.pos:])
	if r == utf8.RuneError && size == 1 && c >= 0x80 {
		return token{}, fmt.Errorf("sql: invalid UTF-8 byte %#x at offset %d", c, l.pos)
	}
	switch {
	case isIdentStart(r):
		l.pos += size
		for l.pos < len(l.src) {
			pr, psize := utf8.DecodeRuneInString(l.src[l.pos:])
			if pr == utf8.RuneError && psize == 1 {
				break
			}
			if !isIdentPart(pr) {
				break
			}
			l.pos += psize
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return token{kind: tokKeyword, text: up, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		seenDot, seenExp := false, false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch >= '0' && ch <= '9' {
				l.pos++
			} else if ch == '.' && !seenDot && !seenExp {
				seenDot = true
				l.pos++
			} else if (ch == 'e' || ch == 'E') && !seenExp && l.pos+1 < len(l.src) &&
				(l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' || l.src[l.pos+1] == '-' || l.src[l.pos+1] == '+') {
				seenExp = true
				l.pos += 2
			} else {
				break
			}
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' { // escaped quote
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: b.String(), pos: start}, nil
			}
			b.WriteByte(ch)
			l.pos++
		}
	default:
		// Multi-char operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<=", ">=", "<>", "!=":
			l.pos += 2
			if two == "!=" {
				two = "<>"
			}
			return token{kind: tokOp, text: two, pos: start}, nil
		}
		switch c {
		case '+', '-', '*', '/', '%', '(', ')', ',', '=', '<', '>', '.', ';':
			l.pos++
			return token{kind: tokOp, text: string(c), pos: start}, nil
		}
		return token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
