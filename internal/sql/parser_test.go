package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *SelectStmt {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return s
}

func TestParseBasicSelect(t *testing.T) {
	s := mustParse(t, "SELECT a, b AS bb FROM t WHERE a > 5")
	if len(s.Items) != 2 || s.Items[1].Alias != "bb" {
		t.Fatalf("items: %+v", s.Items)
	}
	if s.Where == nil {
		t.Fatal("missing WHERE")
	}
	if s.String() != "SELECT a, bb AS bb FROM t WHERE (a > 5)" &&
		!strings.Contains(s.String(), "WHERE (a > 5)") {
		t.Errorf("roundtrip: %s", s.String())
	}
}

func TestParsePrecedence(t *testing.T) {
	s := mustParse(t, "SELECT a + b * c - d FROM t")
	want := "((a + (b * c)) - d)"
	if got := s.Items[0].Expr.String(); got != want {
		t.Errorf("precedence: got %s want %s", got, want)
	}
	s = mustParse(t, "SELECT x FROM t WHERE a = 1 OR b = 2 AND c = 3")
	want = "((a = 1) OR ((b = 2) AND (c = 3)))"
	if got := s.Where.String(); got != want {
		t.Errorf("bool precedence: got %s want %s", got, want)
	}
}

func TestParseJoins(t *testing.T) {
	s := mustParse(t, `SELECT a FROM t1 JOIN t2 ON t1.x = t2.y LEFT JOIN t3 ON t2.z = t3.z`)
	j, ok := s.From.(*JoinExpr)
	if !ok || j.Kind != JoinLeftOuter {
		t.Fatalf("outer join shape: %T %+v", s.From, s.From)
	}
	inner, ok := j.Left.(*JoinExpr)
	if !ok || inner.Kind != JoinInner {
		t.Fatalf("inner join shape: %+v", j.Left)
	}
}

func TestParseRightOuterAndFullOuter(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t1 RIGHT OUTER JOIN t2 ON t1.x = t2.y")
	if j := s.From.(*JoinExpr); j.Kind != JoinRightOuter {
		t.Fatalf("right outer: %v", j.Kind)
	}
	if _, err := Parse("SELECT a FROM t1 FULL OUTER JOIN t2 ON t1.x = t2.y"); err == nil {
		t.Fatal("full outer join must be rejected (paper Table 1)")
	}
}

func TestParseAggregates(t *testing.T) {
	s := mustParse(t, `SELECT g, COUNT(*), COUNT(DISTINCT c), SUM(x), AVG(y),
		SUMIF(x > 1, y), COUNTIF(x > 1)
		FROM t GROUP BY g HAVING SUM(x) > 10 ORDER BY g LIMIT 100`)
	if len(s.GroupBy) != 1 || s.Having == nil || s.Limit != 100 || len(s.OrderBy) != 1 {
		t.Fatalf("clauses: %+v", s)
	}
	cd := s.Items[2].Expr.(*FuncCall)
	if !cd.Distinct || cd.Name != "COUNT" {
		t.Fatalf("COUNT DISTINCT: %+v", cd)
	}
	star := s.Items[1].Expr.(*FuncCall)
	if !star.Star {
		t.Fatal("COUNT(*) star flag")
	}
	if !HasAggregate(s.Items[5].Expr) {
		t.Fatal("SUMIF must register as aggregate")
	}
}

func TestParsePredicates(t *testing.T) {
	s := mustParse(t, `SELECT a FROM t WHERE a IN (1, 2, 3) AND b BETWEEN 4 AND 5
		AND c LIKE 'x%' AND d IS NOT NULL AND e NOT IN (9)`)
	str := s.Where.String()
	for _, want := range []string{"IN (1, 2, 3)", "BETWEEN 4 AND 5", "LIKE 'x%'", "IS NOT NULL", "NOT IN (9)"} {
		if !strings.Contains(str, want) {
			t.Errorf("missing %q in %s", want, str)
		}
	}
}

func TestParseCase(t *testing.T) {
	s := mustParse(t, "SELECT CASE WHEN a > 1 THEN 'hi' WHEN a > 0 THEN 'mid' ELSE 'lo' END FROM t")
	c, ok := s.Items[0].Expr.(*CaseExpr)
	if !ok || len(c.Whens) != 2 || c.Else == nil {
		t.Fatalf("case: %+v", s.Items[0].Expr)
	}
}

func TestParseDerivedTableAndUnion(t *testing.T) {
	s := mustParse(t, `SELECT g, SUM(v) FROM (SELECT a AS g, b AS v FROM t) AS sub GROUP BY g`)
	if _, ok := s.From.(*Subquery); !ok {
		t.Fatalf("derived table: %T", s.From)
	}
	s = mustParse(t, "SELECT a FROM t UNION ALL SELECT b FROM u UNION ALL SELECT c FROM v")
	if len(s.UnionAll) != 2 {
		t.Fatalf("union arms: %d", len(s.UnionAll))
	}
	if _, err := Parse("SELECT a FROM t UNION SELECT b FROM u"); err == nil {
		t.Fatal("bare UNION must be rejected")
	}
}

func TestParseStringEscapes(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE b = 'it''s'")
	lit := s.Where.(*BinaryExpr).R.(*Literal)
	if lit.Val.Str() != "it's" {
		t.Errorf("escaped quote parsed as %q", lit.Val.Str())
	}
	// Rendering must re-escape so the output is valid SQL.
	if !strings.Contains(s.Where.String(), "'it''s'") {
		t.Errorf("rendered: %s", s.Where.String())
	}
}

func TestParseComments(t *testing.T) {
	s := mustParse(t, "SELECT a -- trailing comment\nFROM t -- another\n")
	if len(s.Items) != 1 {
		t.Fatal("comment handling broken")
	}
}

func TestParseNumbers(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE x > 1.5e3 AND y < -2")
	str := s.Where.String()
	if !strings.Contains(str, "1500") || !strings.Contains(str, "-2") {
		t.Errorf("numbers: %s", str)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT abc",
		"SELECT a FROM t JOIN u",          // missing ON
		"SELECT a FROM (SELECT b FROM t)", // derived table needs alias
		"SELECT a FROM t WHERE 'unterminated",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseOrdinalOrderBy(t *testing.T) {
	s := mustParse(t, "SELECT a, b FROM t ORDER BY 2 DESC, a ASC")
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Fatalf("order: %+v", s.OrderBy)
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	s := mustParse(t, "select A from T where A between 1 and 2")
	if s.Where == nil {
		t.Fatal("lowercase keywords must parse")
	}
}

func TestParseWindowFunctions(t *testing.T) {
	s := mustParse(t, `SELECT a, RANK() OVER (PARTITION BY b ORDER BY c DESC),
		SUM(x) OVER (PARTITION BY b), COUNT(*) OVER (ORDER BY c) FROM t`)
	rank := s.Items[1].Expr.(*FuncCall)
	if rank.Over == nil || len(rank.Over.PartitionBy) != 1 || len(rank.Over.OrderBy) != 1 || !rank.Over.OrderBy[0].Desc {
		t.Fatalf("rank window: %+v", rank.Over)
	}
	sum := s.Items[2].Expr.(*FuncCall)
	if sum.Over == nil || len(sum.Over.OrderBy) != 0 {
		t.Fatalf("sum window: %+v", sum.Over)
	}
	cnt := s.Items[3].Expr.(*FuncCall)
	if !cnt.Star || cnt.Over == nil {
		t.Fatalf("count(*) over: %+v", cnt)
	}
	if !HasWindow(s.Items[1].Expr) || HasWindow(s.Items[0].Expr) {
		t.Error("HasWindow detection broken")
	}
	// A windowed aggregate is not a plain aggregate.
	if HasAggregate(s.Items[2].Expr) {
		t.Error("windowed SUM must not count as a plain aggregate")
	}
	if !strings.Contains(s.Items[1].Expr.String(), "OVER (PARTITION BY b ORDER BY c DESC)") {
		t.Errorf("window rendering: %s", s.Items[1].Expr.String())
	}
}

func TestParseWindowErrors(t *testing.T) {
	bad := []string{
		"SELECT RANK() OVER FROM t",
		"SELECT RANK() OVER (PARTITION b) FROM t",
		"SELECT RANK() OVER (ORDER c) FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}
