package experiments

import (
	"fmt"
	"strings"

	"quickr/internal/trace"
)

// Fig2aResult is the heavy-tailed input usage curve (paper Fig. 2a).
type Fig2aResult struct {
	CumSizePB []float64
	CumFrac   []float64
	// Milestones report the cumulative input size at round fractions of
	// cluster time (the paper: half the cluster-hours touch ~20PB).
	HalfPB   float64
	EightyPB float64
	TotalPB  float64
}

// Fig2a regenerates the Fig. 2a series from the synthetic trace.
func Fig2a() *Fig2aResult {
	t := trace.Generate(trace.DefaultConfig())
	size, frac := t.HeavyTailCurve()
	out := &Fig2aResult{CumSizePB: size, CumFrac: frac}
	for i, f := range frac {
		if out.HalfPB == 0 && f >= 0.5 {
			out.HalfPB = size[i]
		}
		if out.EightyPB == 0 && f >= 0.8 {
			out.EightyPB = size[i]
		}
	}
	if len(size) > 0 {
		out.TotalPB = size[len(size)-1]
	}
	return out
}

// Render prints the CDF at decile resolution.
func (r *Fig2aResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2a: cumulative fraction of cluster time vs cumulative size of distinct input files\n")
	b.WriteString("cum-size(PB)  cum-fraction-of-cluster-time\n")
	next := 0.1
	for i, f := range r.CumFrac {
		if f >= next || i == len(r.CumFrac)-1 {
			fmt.Fprintf(&b, "%10.2f    %.2f\n", r.CumSizePB[i], f)
			for next <= f {
				next += 0.1
			}
		}
	}
	fmt.Fprintf(&b, "half of cluster time touches %.1fPB of %.1fPB total (heavy tail: last 20%% of time needs %.1fPB more)\n",
		r.HalfPB, r.TotalPB, r.TotalPB-r.EightyPB)
	return b.String()
}

// Fig2bResult is the production query characteristics table (Fig. 2b).
type Fig2bResult struct {
	Percentiles []float64
	Rows        map[string][]float64
	Order       []string
}

// Fig2b regenerates the Fig. 2b percentile table from the synthetic
// trace.
func Fig2b() *Fig2bResult {
	t := trace.Generate(trace.DefaultConfig())
	ps := []float64{25, 50, 75, 90, 95}
	rows := t.Percentiles(ps)
	return &Fig2bResult{
		Percentiles: ps,
		Rows:        rows,
		Order: []string{
			"# of Passes over Data", "1/firstpass duration frac", "# operators",
			"depth of operators", "# Aggregation Ops.", "# Joins",
			"# user-defined aggs.", "# user-defined functions", "size of QCS+QVS",
		},
	}
}

// Render prints the table.
func (r *Fig2bResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2b: characteristics of queries in a production big-data cluster (synthetic trace)\n")
	fmt.Fprintf(&b, "%-28s", "Metric")
	for _, p := range r.Percentiles {
		fmt.Fprintf(&b, "%8.0fth", p)
	}
	b.WriteByte('\n')
	for _, name := range r.Order {
		fmt.Fprintf(&b, "%-28s", name)
		for _, v := range r.Rows[name] {
			fmt.Fprintf(&b, "%10.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
