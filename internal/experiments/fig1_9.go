package experiments

import (
	"fmt"
	"strings"

	"quickr/internal/workload"
)

// fig1Query is the paper's motivating example (Fig. 1): per item color
// and year, total profit from store sales and the number of unique
// customers who purchased and returned from stores and purchased from
// catalog — three fact tables joined on shared keys plus two dimension
// FK joins. It is our q01.
func fig1Query() workload.Query { return workload.TPCDSQueries()[0] }

// Fig1Result compares Quickr's sampled plan for the motivating query
// against the exact plan.
type Fig1Result struct {
	Outcome  Outcome
	PlanInfo string
	Samplers []string
}

// Fig1 runs the motivating example.
func Fig1(env *Env) (*Fig1Result, error) {
	q := fig1Query()
	info, err := env.Eng.Plan(q.SQL, true)
	if err != nil {
		return nil, err
	}
	out := RunQuery(env, q)
	if out.Err != nil {
		return nil, out.Err
	}
	res := &Fig1Result{Outcome: out, PlanInfo: info.Physical}
	for _, s := range info.Samplers {
		res.Samplers = append(res.Samplers, fmt.Sprintf("%s p=%.3g", s.Type, s.P))
	}
	return res, nil
}

// Render prints the comparison.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 1: the motivating query (profit and unique customers per item color and year)\n")
	fmt.Fprintf(&b, "samplers injected: %v\n", r.Samplers)
	fmt.Fprintf(&b, "machine-hours gain %.2fx, runtime gain %.2fx\n",
		r.Outcome.GainMachineHours, r.Outcome.GainRuntime)
	fmt.Fprintf(&b, "missed groups (full answer): %.1f%%, aggregate error: %.1f%%\n",
		100*r.Outcome.MissedGroupsFull, 100*r.Outcome.AggErrorFull)
	b.WriteString("physical plan:\n")
	b.WriteString(r.PlanInfo)
	return b.String()
}

// Fig9Result is the dominance unrolling trace of the motivating query's
// sampled plan (paper Fig. 9).
type Fig9Result struct {
	Trace       []string
	RootSampler string
	EffectiveP  float64
}

// Fig9 produces the accuracy-analysis unrolling for the motivating
// query.
func Fig9(env *Env) (*Fig9Result, error) {
	q := fig1Query()
	info, err := env.Eng.Plan(q.SQL, true)
	if err != nil {
		return nil, err
	}
	return &Fig9Result{
		Trace:       info.AccuracyTrace,
		RootSampler: info.RootSampler,
		EffectiveP:  info.EffectiveP,
	}, nil
}

// Render prints the trace.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: unrolling the sampled plan to a single root sampler via dominance rules\n")
	for _, t := range r.Trace {
		b.WriteString("  " + t + "\n")
	}
	fmt.Fprintf(&b, "equivalent root sampler: %s with effective p=%.4g\n", r.RootSampler, r.EffectiveP)
	return b.String()
}

// Table8Result lists the aggregate rewrites (paper Table 8); the
// rewrites themselves are implemented in internal/exec's aggregation
// estimators and verified by tests — this table documents them.
type Table8Result struct{ Rows [][2]string }

// Table8 returns the rewrite table.
func Table8() *Table8Result {
	return &Table8Result{Rows: [][2]string{
		{"SUM(X)", "SUM(w · X)"},
		{"COUNT(*)", "SUM(w)"},
		{"AVG(X)", "SUM(w · X) / SUM(w)"},
		{"SUM(IF(F(X)? Y: Z))", "SUM(IF(F(X)? w·Y : w·Z))"},
		{"COUNT(DISTINCT X)", "COUNT(DISTINCT X) · (univ(X)? 1/p : 1)"},
		{"COUNTIF(F)", "SUM(IF(F? w : 0))"},
	}}
}

// Render prints the table.
func (r *Table8Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 8: how Quickr rewrites aggregation operations over weighted samples\n")
	fmt.Fprintf(&b, "%-26s%s\n", "True value", "Estimate rewritten by Quickr")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-26s%s\n", row[0], row[1])
	}
	return b.String()
}
